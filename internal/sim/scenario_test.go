package sim

import (
	"testing"

	"repro/internal/topology"
)

func lineScenario() Scenario {
	net := topology.New("line")
	net.AddNodes(3)
	net.AddChannel(0, 1, 0, "")
	net.AddChannel(1, 2, 0, "")
	net.AddChannel(2, 0, 0, "back")
	return Scenario{
		Name: "line",
		Net:  net,
		Msgs: []MessageSpec{
			{Src: 0, Dst: 2, Length: 2, Path: []topology.ChannelID{0, 1}},
			{Src: 1, Dst: 2, Length: 3, Path: []topology.ChannelID{1}, InjectAt: 4},
		},
	}
}

func TestScenarioNewSim(t *testing.T) {
	sc := lineScenario()
	s := sc.NewSim()
	if s.NumMessages() != 2 {
		t.Fatalf("messages = %d", s.NumMessages())
	}
	if s.Now() != 0 {
		t.Fatalf("Now = %d", s.Now())
	}
	out := s.Run(100)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v", out.Result)
	}
}

func TestScenarioWithLengths(t *testing.T) {
	sc := lineScenario()
	mod := sc.WithLengths([]int{5, 0, 9}) // 0 keeps, extra index ignored
	if mod.Msgs[0].Length != 5 || mod.Msgs[1].Length != 3 {
		t.Fatalf("lengths = %d, %d", mod.Msgs[0].Length, mod.Msgs[1].Length)
	}
	if sc.Msgs[0].Length != 2 {
		t.Fatal("original scenario mutated")
	}
}

func TestScenarioWithInjectTimes(t *testing.T) {
	sc := lineScenario()
	mod := sc.WithInjectTimes([]int{7})
	if mod.Msgs[0].InjectAt != 7 || mod.Msgs[1].InjectAt != 4 {
		t.Fatalf("inject times = %d, %d", mod.Msgs[0].InjectAt, mod.Msgs[1].InjectAt)
	}
	if sc.Msgs[0].InjectAt != 0 {
		t.Fatal("original scenario mutated")
	}
}

func TestScenarioWithBufferDepth(t *testing.T) {
	sc := lineScenario().WithBufferDepth(3)
	if sc.NewSim().BufferDepth() != 3 {
		t.Fatal("buffer depth not applied")
	}
}

func TestCanAdvanceDirect(t *testing.T) {
	sc := lineScenario()
	s := sc.NewSim()
	// Before stepping: message 0 can inject (channel 0 free); message 1 is
	// not ready yet.
	if !s.CanAdvance(0) {
		t.Fatal("message 0 should be able to inject")
	}
	if s.CanAdvance(1) {
		t.Fatal("message 1 is not ready")
	}
	// Freeze message 0: cannot advance.
	s.SetFrozen(0, 1)
	if s.CanAdvance(0) {
		t.Fatal("frozen message cannot advance")
	}
	s.SetFrozen(0, 0)
	// Hold it: cannot advance either.
	s.SetHeld(0, true)
	if s.CanAdvance(0) {
		t.Fatal("held message cannot advance")
	}
	if !s.Held(0) {
		t.Fatal("Held getter wrong")
	}
	s.SetHeld(0, false)
	// Block channel 0 with the other message: message 0 stuck at injection.
	s2 := sc.NewSim()
	s2.Step() // m0 header -> c0
	if !s2.CanAdvance(0) {
		t.Fatal("in-flight message with free next channel advances")
	}
}

func TestAcquirableCandidatesAndIsAdaptive(t *testing.T) {
	sc := lineScenario()
	s := sc.NewSim()
	if s.IsAdaptive(0) {
		t.Fatal("oblivious message reported adaptive")
	}
	cands := s.AcquirableCandidates(0)
	if len(cands) != 1 || cands[0] != 0 {
		t.Fatalf("candidates = %v; want [0]", cands)
	}
	// Occupy channel 0: no acquirable candidates for a would-be injector.
	s.Step() // msg0 into c0
	if got := s.AcquirableCandidates(0); len(got) != 0 {
		// msg0 now wants c1 (free): it should list c1 instead.
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("candidates after injection = %v", got)
		}
	}
}

func TestSetMaskOnObliviousIsHarmless(t *testing.T) {
	sc := lineScenario()
	s := sc.NewSim()
	s.SetMask(0, 1) // oblivious: ignored
	out := s.Run(100)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v", out.Result)
	}
}
