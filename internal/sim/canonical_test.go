package sim

import (
	"bytes"
	"testing"

	"repro/internal/topology"
)

// canonicalFixture builds a 4-node directed ring with two messages on
// opposite halves — M0: n0 -> n2 over [c0, c1], M1: n2 -> n0 over
// [c2, c3] — and the rotate-by-two permutation that swaps them. The
// scenario maps onto itself under the rotation, so states that differ
// only by the swap must share a canonical encoding.
func canonicalFixture() (*topology.Network, []MessageSpec, Permutation) {
	net := topology.NewRing(4, false)
	msgs := []MessageSpec{
		{Src: 0, Dst: 2, Length: 2, Path: []topology.ChannelID{0, 1}},
		{Src: 2, Dst: 0, Length: 2, Path: []topology.ChannelID{2, 3}},
	}
	rot := Permutation{
		MsgAt:  []int{1, 0},
		ChanTo: []topology.ChannelID{2, 3, 0, 1},
		ChanAt: []topology.ChannelID{2, 3, 0, 1},
	}
	return net, msgs, rot
}

func newCanonicalSim(t *testing.T, advance int) *Sim {
	t.Helper()
	net, msgs, _ := canonicalFixture()
	s := New(net, Config{})
	for _, m := range msgs {
		s.MustAdd(m)
	}
	// Hold everyone, then let only message `advance` run for two cycles,
	// producing a state asymmetric between the two ring halves.
	for id := 0; id < s.NumMessages(); id++ {
		s.SetHeld(id, true)
	}
	s.SetHeld(advance, false)
	s.Step()
	s.Step()
	return s
}

// TestCanonicalEncodeEmptyPermsIsEncodeTo: with no permutations the
// canonical encoding is byte-identical to EncodeTo.
func TestCanonicalEncodeEmptyPermsIsEncodeTo(t *testing.T) {
	s := newCanonicalSim(t, 0)
	var plain, canon, scratch []byte
	s.EncodeTo(&plain)
	s.CanonicalEncodeTo(nil, &canon, &scratch)
	if !bytes.Equal(plain, canon) {
		t.Fatalf("canonical %x != plain %x with no permutations", canon, plain)
	}
}

// TestCanonicalEncodeQuotientsSymmetricStates: the state where M0 made
// progress and the state where M1 made the same progress encode
// differently under EncodeTo but identically under the rotation's
// canonical encoding — the core contract of symmetry reduction.
func TestCanonicalEncodeQuotientsSymmetricStates(t *testing.T) {
	_, _, rot := canonicalFixture()
	perms := []Permutation{rot}
	a := newCanonicalSim(t, 0)
	b := newCanonicalSim(t, 1)

	var encA, encB []byte
	a.EncodeTo(&encA)
	b.EncodeTo(&encB)
	if bytes.Equal(encA, encB) {
		t.Fatal("fixture broken: the two mirror states encode identically before reduction")
	}

	var canA, canB, scratch []byte
	a.CanonicalEncodeTo(perms, &canA, &scratch)
	canB = canB[:0]
	b.CanonicalEncodeTo(perms, &canB, &scratch)
	if !bytes.Equal(canA, canB) {
		t.Fatalf("mirror states canonicalize differently:\n a: %x\n b: %x", canA, canB)
	}
	// The representative is the lexicographic minimum of the two plain
	// encodings.
	want := encA
	if bytes.Compare(encB, want) < 0 {
		want = encB
	}
	if !bytes.Equal(canA, want) {
		t.Fatalf("canonical %x is not the orbit minimum %x", canA, want)
	}
}

// TestCanonicalEncodeMapsFaultState: channel outages relocate through
// the permutation's inverse channel map, so mirrored faults also share a
// canonical encoding.
func TestCanonicalEncodeMapsFaultState(t *testing.T) {
	_, _, rot := canonicalFixture()
	perms := []Permutation{rot}
	a := newCanonicalSim(t, 0)
	b := newCanonicalSim(t, 1)
	a.FailChannel(1) // second channel of M0's path
	b.FailChannel(3) // its image: second channel of M1's path

	var canA, canB, scratch []byte
	a.CanonicalEncodeTo(perms, &canA, &scratch)
	b.CanonicalEncodeTo(perms, &canB, &scratch)
	if !bytes.Equal(canA, canB) {
		t.Fatalf("mirrored fault states canonicalize differently:\n a: %x\n b: %x", canA, canB)
	}

	// And a non-mirrored fault must NOT collapse with the mirrored one.
	c := newCanonicalSim(t, 1)
	c.FailChannel(1) // not the image of a's fault under the swap
	var canC []byte
	c.CanonicalEncodeTo(perms, &canC, &scratch)
	if bytes.Equal(canA, canC) {
		t.Fatal("distinct fault placements collapsed to one canonical encoding")
	}
}

// TestCanonicalEncodeIdentityPermIsNoOp: an explicit identity
// permutation never changes the representative.
func TestCanonicalEncodeIdentityPermIsNoOp(t *testing.T) {
	s := newCanonicalSim(t, 1)
	id := Permutation{
		MsgAt:  []int{0, 1},
		ChanTo: []topology.ChannelID{0, 1, 2, 3},
		ChanAt: []topology.ChannelID{0, 1, 2, 3},
	}
	var plain, canon, scratch []byte
	s.EncodeTo(&plain)
	s.CanonicalEncodeTo([]Permutation{id}, &canon, &scratch)
	if !bytes.Equal(plain, canon) {
		t.Fatalf("identity permutation changed the encoding: %x != %x", canon, plain)
	}
}
