// Package sim is a cycle-accurate, flit-level wormhole switching simulator.
//
// It implements the operational model of Dally & Seitz (1987) under the
// exact assumptions Schwiebert (SPAA '97) lists in Section 3:
//
//  1. Nodes generate messages of arbitrary length at any rate (sources may
//     hold a ready message indefinitely before injecting).
//  2. A message arriving at its destination is always consumed, one flit
//     per cycle.
//  3. Once a channel queue accepts a header flit it accepts only that
//     message's flits until the message is through.
//  4. Atomic buffer allocation: a channel queue holds flits of at most one
//     message, and a new header is accepted only strictly after the
//     previous message's last flit has left the queue.
//  5. Simultaneous requests for one output channel are arbitrated;
//     messages already waiting are served starvation-free.
//
// Time advances in synchronous network cycles; each channel forwards at
// most one flit per cycle, and a worm's flits pipeline (a flit moves into
// the buffer slot its predecessor vacates in the same cycle). Assumption 4
// admits two readings, both implemented: by default a released channel is
// acquirable the cycle after the tail departs; with
// Config.SameCycleHandoff it is acquirable the departing cycle itself —
// the reading the paper's Theorem 4 proof uses.
//
// Messages route either obliviously (a fixed channel path) or adaptively
// (a per-hop candidate function, MessageSpec.Route); adaptive paths
// materialize as the header advances.
//
// The simulator supports the paper's Section 6 fault model via per-message
// freeze counters (a frozen message does not move even when its output
// channel is free), and exposes Clone, Encode, explicit arbitration picks
// and adaptive selection masks so the mcheck package can use it as the
// transition function of an exact state-space search.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/topology"
)

// RouteFunc supplies the candidate output channels for an adaptive
// message at node at (arrived on channel in, topology.None at the source)
// heading for dst. The engine acquires whichever candidate arbitration
// grants; candidates that do not leave at, or that the message has already
// used, are ignored. Returning no usable candidate when the message has
// not arrived blocks it forever — routing functions must be connected.
type RouteFunc func(at topology.NodeID, in topology.ChannelID, dst topology.NodeID) []topology.ChannelID

// MessageSpec describes a message to simulate. Exactly one of Path
// (oblivious routing: the fixed channel sequence, from
// routing.Algorithm.Path) and Route (adaptive routing: per-hop candidate
// sets) must be set.
type MessageSpec struct {
	Src, Dst topology.NodeID
	Length   int // flits, >= 1
	Path     []topology.ChannelID
	Route    RouteFunc
	InjectAt int    // earliest cycle the source tries to inject (>= 0)
	Label    string // optional, for diagnostics
}

// message is the runtime state of one message.
type message struct {
	spec MessageSpec
	id   int
	// path is the materialized channel sequence: a copy of spec.Path for
	// oblivious messages, grown hop by hop as the header acquires
	// channels for adaptive ones.
	path           []topology.ChannelID
	queued         []int // flits currently buffered in each path channel
	injected       int   // flits that have left the source
	consumed       int   // flits consumed at the destination
	headerConsumed bool
	frozen         int  // cycles the message will not move (Section 6 faults)
	held           bool // source withholds injection (assumption 1)
	// mask, when not topology.None, restricts an adaptive message's
	// candidate set to that single channel for the current cycle (cleared
	// after each Step); used by search to enumerate selection choices.
	mask topology.ChannelID

	injectedAt  int // cycle the header entered the network, -1 before
	deliveredAt int // cycle the tail was consumed, -1 before
}

func (m *message) adaptive() bool { return m.spec.Route != nil }

func (m *message) delivered() bool { return m.consumed == m.spec.Length }

func (m *message) inNetwork() bool { return m.injected > m.consumed }

// headIdx returns the largest path index holding flits, or -1.
func (m *message) headIdx() int {
	for i := len(m.queued) - 1; i >= 0; i-- {
		if m.queued[i] > 0 {
			return i
		}
	}
	return -1
}

// Config controls simulator behaviour.
type Config struct {
	// BufferDepth is the flit capacity of every channel queue. The paper's
	// hardest case — and the default — is 1.
	BufferDepth int
	// Arbiter resolves simultaneous requests for a free channel. Defaults
	// to FIFO (longest-waiting wins, ties to lowest message ID), which is
	// starvation-free per assumption 5.
	Arbiter Arbiter
	// SameCycleHandoff selects the aggressive reading of assumption 4:
	// when a message's tail leaves a channel this cycle, a waiting header
	// may acquire the channel in the same cycle (the handoff the paper's
	// Theorem 4 proof uses — "immediately after M1 has traversed cs, M2
	// starts traversing cs"). When false (default), a released channel
	// becomes acquirable only on the following cycle. Same-cycle handoff
	// chains are resolved to depth one: a header may enter a channel freed
	// by a message that is not itself acquiring a freed channel this
	// cycle.
	SameCycleHandoff bool
}

// Sim is a simulator instance. Create one with New, add messages, then
// Step or Run.
type Sim struct {
	net   *topology.Network
	cfg   Config
	now   int
	msgs  []*message
	owner []int // channel -> message id, -1 when free
	// waitingSince[msg] is the cycle the message's header began waiting
	// for its next channel, -1 when not waiting; drives FIFO arbitration.
	waitingSince []int

	// perCycleMoved reports whether the last Step moved any flit.
	lastMoved bool
}

// New returns an empty simulator for net.
func New(net *topology.Network, cfg Config) *Sim {
	if cfg.BufferDepth <= 0 {
		cfg.BufferDepth = 1
	}
	if cfg.Arbiter == nil {
		cfg.Arbiter = FIFOArbiter{}
	}
	owner := make([]int, net.NumChannels())
	for i := range owner {
		owner[i] = -1
	}
	return &Sim{net: net, cfg: cfg, owner: owner}
}

// Add validates and registers a message, returning its ID (dense from 0 in
// insertion order).
func (s *Sim) Add(spec MessageSpec) (int, error) {
	if spec.Length < 1 {
		return -1, fmt.Errorf("sim: message length %d < 1", spec.Length)
	}
	if spec.Src == spec.Dst {
		return -1, fmt.Errorf("sim: message source equals destination (%d)", spec.Src)
	}
	if spec.Route != nil {
		if spec.Path != nil {
			return -1, fmt.Errorf("sim: message has both a fixed path and an adaptive route")
		}
	} else {
		if len(spec.Path) == 0 {
			return -1, fmt.Errorf("sim: message has no path")
		}
		if !s.net.IsPath(spec.Src, spec.Dst, spec.Path) {
			return -1, fmt.Errorf("sim: message path %v is not a contiguous %d -> %d path", spec.Path, spec.Src, spec.Dst)
		}
		seen := make(map[topology.ChannelID]bool, len(spec.Path))
		for _, c := range spec.Path {
			if seen[c] {
				return -1, fmt.Errorf("sim: message path %v uses channel %d twice; a message may hold a channel only once", spec.Path, c)
			}
			seen[c] = true
		}
	}
	if spec.InjectAt < 0 {
		return -1, fmt.Errorf("sim: negative injection time %d", spec.InjectAt)
	}
	id := len(s.msgs)
	m := &message{
		spec:        spec,
		id:          id,
		path:        append([]topology.ChannelID(nil), spec.Path...),
		queued:      make([]int, len(spec.Path)),
		mask:        topology.None,
		injectedAt:  -1,
		deliveredAt: -1,
	}
	s.msgs = append(s.msgs, m)
	s.waitingSince = append(s.waitingSince, -1)
	return id, nil
}

// MustAdd is Add that panics on error.
func (s *Sim) MustAdd(spec MessageSpec) int {
	id, err := s.Add(spec)
	if err != nil {
		panic(err)
	}
	return id
}

// Now returns the current cycle.
func (s *Sim) Now() int { return s.now }

// NumMessages returns the number of registered messages.
func (s *Sim) NumMessages() int { return len(s.msgs) }

// Owner returns the ID of the message holding channel c, or -1.
func (s *Sim) Owner(c topology.ChannelID) int { return s.owner[c] }

// SetFrozen freezes message id for the next n cycles: it will not move or
// contend for channels even when able (the Section 6 fault model). Calling
// with n = 0 unfreezes.
func (s *Sim) SetFrozen(id, n int) { s.msgs[id].frozen = n }

// Frozen returns the remaining frozen cycles of message id.
func (s *Sim) Frozen(id int) int { return s.msgs[id].frozen }

// SetHeld controls source-side injection: a held message's source does not
// attempt injection regardless of InjectAt. Holding a message that has
// already begun injecting has no effect. Model checkers use this to
// realize assumption 1's "any injection time".
func (s *Sim) SetHeld(id int, held bool) { s.msgs[id].held = held }

// SetMask restricts an adaptive message to request only the given channel
// during the next Step; the mask clears when the step completes. Model
// checkers use it to enumerate adaptive selection nondeterminism: the
// masked channel must be one of the message's current candidates (this is
// the caller's responsibility — a stale mask simply blocks the message for
// one cycle). Pass topology.None to clear. Masks on oblivious messages are
// ignored.
func (s *Sim) SetMask(id int, c topology.ChannelID) { s.msgs[id].mask = c }

// Held reports whether message id is held at its source.
func (s *Sim) Held(id int) bool { return s.msgs[id].held }

// Contention describes one contested free channel: the messages whose
// header may acquire it this cycle.
type Contention struct {
	Channel    topology.ChannelID
	Contenders []int // message IDs, sorted
}

// AcquirableCandidates returns the channels message id wants and could
// acquire this cycle (free now, or releasing under same-cycle handoff).
// Search code enumerates adaptive selection nondeterminism over this set
// via SetMask.
func (s *Sim) AcquirableCandidates(id int) []topology.ChannelID {
	freeing := s.predictReleases()
	var out []topology.ChannelID
	for _, c := range s.wantedChannels(s.msgs[id]) {
		if s.owner[c] == -1 || freeing[c] {
			out = append(out, c)
		}
	}
	return out
}

// IsAdaptive reports whether message id routes adaptively.
func (s *Sim) IsAdaptive(id int) bool { return s.msgs[id].adaptive() }

// Contentions returns this cycle's channel-acquisition choice points: every
// acquirable channel (free now, or — with same-cycle handoff — freed by a
// departing tail this cycle) that two or more eligible headers request
// simultaneously. Channels requested by a single header are not included
// (no choice).
func (s *Sim) Contentions() []Contention {
	reqs := s.acquisitionRequests(s.predictReleases())
	var out []Contention
	for c, ids := range reqs {
		if len(ids) > 1 {
			sort.Ints(ids)
			out = append(out, Contention{Channel: c, Contenders: ids})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Channel < out[j].Channel })
	return out
}

// acquisitionRequests maps each acquirable channel to the messages whose
// header wants to acquire it this cycle. A channel is acquirable when it is
// free, or when freeing marks it as releasing this cycle (same-cycle
// handoff). Adaptive messages may request several channels at once; grant
// resolution ensures each message wins at most one.
func (s *Sim) acquisitionRequests(freeing map[topology.ChannelID]bool) map[topology.ChannelID][]int {
	reqs := make(map[topology.ChannelID][]int)
	for _, m := range s.msgs {
		for _, c := range s.wantedChannels(m) {
			if s.owner[c] == -1 || freeing[c] {
				reqs[c] = append(reqs[c], m.id)
			}
		}
	}
	return reqs
}

// arrived reports whether the message's materialized path already ends at
// its destination (always true for oblivious messages at the last index).
func (s *Sim) arrived(m *message) bool {
	if !m.adaptive() {
		return true
	}
	n := len(m.path)
	return n > 0 && s.net.Channel(m.path[n-1]).Dst == m.spec.Dst
}

// predictReleases returns the channels whose owner's tail will depart this
// cycle. The owner's own header acquisition is predicted optimistically
// (it moves whenever its next channel is free at the start of the cycle);
// if the owner then loses that arbitration the release does not happen,
// and the acquisition guard in moveMessage makes the granted waiter simply
// stall one more cycle. It returns nil in strict-handoff mode.
func (s *Sim) predictReleases() map[topology.ChannelID]bool {
	if !s.cfg.SameCycleHandoff {
		return nil
	}
	freeing := make(map[topology.ChannelID]bool)
	for _, m := range s.msgs {
		if m.delivered() || m.frozen > 0 || m.injected < m.spec.Length {
			continue
		}
		low := -1
		for i, q := range m.queued {
			if q > 0 {
				low = i
				break
			}
		}
		if low < 0 || m.queued[low] != 1 {
			continue
		}
		// Walk the worm front to back, computing whether one flit departs
		// each occupied channel this cycle (mirrors the movement pass).
		h := m.headIdx()
		last := len(m.path) - 1
		departs := make([]bool, h+1)
		for i := h; i >= low; i-- {
			if m.queued[i] == 0 {
				continue
			}
			if i == last {
				if s.arrived(m) {
					departs[i] = true // consumption never blocks
					continue
				}
				// Adaptive frontier: optimistically departs when any
				// candidate channel is free at the start of the cycle.
				for _, c := range s.wantedChannels(m) {
					if s.owner[c] == -1 {
						departs[i] = true
						break
					}
				}
				continue
			}
			next := m.path[i+1]
			if s.owner[next] != m.id {
				// Header acquisition: optimistically moves when the
				// channel is free at the start of the cycle.
				departs[i] = i == h && !m.headerConsumed && s.owner[next] == -1
				continue
			}
			free := s.cfg.BufferDepth - m.queued[i+1]
			if i+1 <= h && departs[i+1] {
				free++
			}
			departs[i] = free > 0
		}
		if departs[low] {
			freeing[m.path[low]] = true
		}
	}
	return freeing
}

// wantedChannels returns the channels the message's header may acquire
// next, if the message is eligible to request one this cycle (not
// delivered, not frozen, header not consumed, and — for injection — ready
// and not held). Oblivious messages want exactly their next path channel;
// adaptive messages want every usable candidate their route function
// offers.
func (s *Sim) wantedChannels(m *message) []topology.ChannelID {
	if m.delivered() || m.frozen > 0 || m.headerConsumed {
		return nil
	}
	var at topology.NodeID
	in := topology.None
	if m.injected == 0 {
		if m.held || s.now < m.spec.InjectAt {
			return nil
		}
		if !m.adaptive() {
			return m.path[:1]
		}
		at = m.spec.Src
	} else {
		h := m.headIdx()
		if h < 0 {
			return nil
		}
		if !m.adaptive() {
			if h == len(m.path)-1 {
				return nil // header at the destination channel: consumption
			}
			return m.path[h+1 : h+2]
		}
		// An adaptive header is always at the end of the materialized
		// path.
		if h != len(m.path)-1 || s.arrived(m) {
			return nil
		}
		in = m.path[h]
		at = s.net.Channel(in).Dst
	}
	return s.adaptiveCandidates(m, at, in)
}

// adaptiveCandidates filters the route function's candidates: they must
// leave the current node, must not revisit a channel the message already
// used (a message may hold a channel only once), and must match the
// message's selection mask when one is set.
func (s *Sim) adaptiveCandidates(m *message, at topology.NodeID, in topology.ChannelID) []topology.ChannelID {
	raw := m.spec.Route(at, in, m.spec.Dst)
	var out []topology.ChannelID
	for _, c := range raw {
		if c < 0 || int(c) >= s.net.NumChannels() || s.net.Channel(c).Src != at {
			continue
		}
		if m.mask != topology.None && c != m.mask {
			continue
		}
		used := false
		for _, p := range m.path {
			if p == c {
				used = true
				break
			}
		}
		if !used {
			out = append(out, c)
		}
	}
	return out
}

// StepResult reports what happened in one cycle.
type StepResult struct {
	Moved bool // some flit moved (including injection and consumption)
}

// Step advances the simulation one cycle using the configured arbiter.
func (s *Sim) Step() StepResult {
	return s.step(nil)
}

// StepWithPicks advances one cycle, resolving the given contested channels
// in favor of the specified message IDs; remaining contests fall back to
// the configured arbiter. A pick naming a message that is not actually a
// contender for the channel panics: the caller enumerated stale choices.
func (s *Sim) StepWithPicks(picks map[topology.ChannelID]int) StepResult {
	return s.step(picks)
}

func (s *Sim) step(picks map[topology.ChannelID]int) StepResult {
	// Phase 1: arbitration. In strict mode the snapshot is start-of-cycle
	// ownership; with same-cycle handoff, channels releasing this cycle
	// are acquirable too.
	freeing := s.predictReleases()
	reqs := s.acquisitionRequests(freeing)
	// Resolve grants channel by channel in ascending ID order so that an
	// adaptive message contending on several channels wins at most one
	// (deterministically the lowest); contenders that already won an
	// earlier channel drop out of later contests.
	channels := make([]topology.ChannelID, 0, len(reqs))
	for c := range reqs {
		channels = append(channels, c)
	}
	sort.Slice(channels, func(i, j int) bool { return channels[i] < channels[j] })
	granted := make(map[int]topology.ChannelID) // message -> channel won
	for _, c := range channels {
		var ids []int
		for _, id := range reqs[c] {
			if _, won := granted[id]; !won {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			continue
		}
		var winner int
		if pick, ok := picks[c]; ok {
			found := false
			for _, id := range ids {
				if id == pick {
					found = true
				}
			}
			if !found {
				panic(fmt.Sprintf("sim: pick %d is not a contender for channel %d (contenders %v)", pick, c, ids))
			}
			winner = pick
		} else if len(ids) == 1 {
			winner = ids[0]
		} else {
			sort.Ints(ids)
			winner = s.cfg.Arbiter.Pick(s, c, ids)
		}
		granted[winner] = c
	}

	// Track waiting-since for FIFO arbitration: a message that wants a
	// channel (free or not) and does not get one this cycle is waiting.
	for _, m := range s.msgs {
		if wants := s.wantedChannels(m); len(wants) > 0 {
			if _, won := granted[m.id]; !won {
				if s.waitingSince[m.id] < 0 {
					s.waitingSince[m.id] = s.now
				}
				continue
			}
		}
		s.waitingSince[m.id] = -1
	}

	// Phase 2: movement, per message, front slot to back slot. In strict
	// mode the order across messages does not matter: cross-message
	// interaction happens only through acquisition (already arbitrated
	// against the snapshot) and end-of-cycle release. With same-cycle
	// handoff, releases apply immediately, and messages granted a
	// releasing channel move after everyone else so the release has
	// happened by the time they acquire.
	moved := false
	var releases []topology.ChannelID
	release := func(c topology.ChannelID) {
		if s.cfg.SameCycleHandoff {
			s.owner[c] = -1
		} else {
			releases = append(releases, c)
		}
	}
	var deferred []*message
	for _, m := range s.msgs {
		if c, won := granted[m.id]; won && freeing[c] {
			deferred = append(deferred, m)
			continue
		}
		if s.moveMessage(m, granted, release) {
			moved = true
		}
	}
	for _, m := range deferred {
		if s.moveMessage(m, granted, release) {
			moved = true
		}
	}

	// Phase 3: end-of-cycle releases (strict mode) and freeze countdown.
	for _, c := range releases {
		// A release entry is only created when the owning message's tail
		// left the channel; the owner cannot have changed within the cycle
		// because acquisitions were arbitrated against the snapshot, which
		// showed the channel owned.
		s.owner[c] = -1
	}
	for _, m := range s.msgs {
		if m.frozen > 0 {
			m.frozen--
		}
		m.mask = topology.None
	}
	s.now++
	s.lastMoved = moved
	return StepResult{Moved: moved}
}

// moveMessage advances one message's flits front to back for one cycle,
// calling release for each channel its tail departs. It reports whether
// any flit moved. Acquisitions succeed only for channels granted to the
// message that are actually free at the moment of the move (with
// same-cycle handoff a predicted release may not have applied when handoff
// chains exceed depth one; the acquisition is then skipped).
func (s *Sim) moveMessage(m *message, granted map[int]topology.ChannelID, release func(topology.ChannelID)) bool {
	if m.delivered() || m.frozen > 0 {
		return false
	}
	moved := false
	// acquire extends an adaptive message's materialized path by the
	// granted channel; for oblivious messages the slot already exists.
	acquire := func(i int, c topology.ChannelID) {
		s.owner[c] = m.id
		if m.adaptive() {
			m.path = append(m.path, c)
			m.queued = append(m.queued, 0)
		}
		if i >= 0 {
			m.queued[i]--
		}
		m.queued[i+1]++
		moved = true
		if i >= 0 && m.queued[i] == 0 && s.tailBehind(m, i) == 0 {
			release(m.path[i])
		}
	}
	h := m.headIdx()
	last := len(m.path) - 1
	for i := h; i >= 0; i-- {
		if m.queued[i] == 0 {
			continue
		}
		if i == last {
			if s.arrived(m) {
				// One flit per cycle into the destination's sink.
				m.queued[i]--
				m.consumed++
				m.headerConsumed = true
				moved = true
				if m.queued[i] == 0 && s.tailBehind(m, i) == 0 {
					release(m.path[i])
				}
				if m.delivered() {
					m.deliveredAt = s.now
				}
				continue
			}
			// Adaptive header at the frontier of its materialized path:
			// extend it with the granted candidate, if any is free.
			if i == h && !m.headerConsumed {
				if c, won := granted[m.id]; won && s.owner[c] == -1 {
					acquire(i, c)
				}
			}
			continue
		}
		next := m.path[i+1]
		if s.owner[next] == m.id {
			if m.queued[i+1] < s.cfg.BufferDepth {
				m.queued[i]--
				m.queued[i+1]++
				moved = true
				if m.queued[i] == 0 && s.tailBehind(m, i) == 0 {
					release(m.path[i])
				}
			}
			continue
		}
		// Oblivious header acquisition of its fixed next channel.
		if i == h && !m.headerConsumed && s.owner[next] == -1 {
			if c, won := granted[m.id]; won && c == next {
				acquire(i, c)
			}
		}
	}
	// Injection: source -> path[0].
	if m.injected < m.spec.Length && !m.held && s.now >= m.spec.InjectAt {
		if m.injected == 0 {
			if c, won := granted[m.id]; won && s.owner[c] == -1 {
				if !m.adaptive() && c != m.path[0] {
					panic("sim: oblivious message granted a foreign channel")
				}
				s.owner[c] = m.id
				if m.adaptive() {
					m.path = append(m.path, c)
					m.queued = append(m.queued, 0)
				}
				m.queued[0]++
				m.injected++
				m.injectedAt = s.now
				moved = true
			}
		} else if first := m.path[0]; s.owner[first] == m.id && m.queued[0] < s.cfg.BufferDepth {
			m.queued[0]++
			m.injected++
			moved = true
		}
	}
	return moved
}

// tailBehind returns the number of this message's flits strictly behind
// path index i (buffered in earlier channels or still at the source).
func (s *Sim) tailBehind(m *message, i int) int {
	n := m.spec.Length - m.injected // at source
	for j := 0; j < i; j++ {
		n += m.queued[j]
	}
	return n
}

// AllDelivered reports whether every message has been fully consumed.
func (s *Sim) AllDelivered() bool {
	for _, m := range s.msgs {
		if !m.delivered() {
			return false
		}
	}
	return true
}

// quiescent reports whether the state can never change again without
// external intervention: nothing moved last cycle, no message is frozen,
// none is held, and no injection lies in the future. In a quiescent state
// with undelivered messages the network is deadlocked.
func (s *Sim) quiescent() bool {
	if s.lastMoved {
		return false
	}
	for _, m := range s.msgs {
		if m.delivered() {
			continue
		}
		if m.frozen > 0 || m.held || s.now <= m.spec.InjectAt {
			return false
		}
	}
	return true
}

// Result classifies the end state of Run.
type Result int

const (
	// ResultDelivered: every message was fully consumed.
	ResultDelivered Result = iota
	// ResultDeadlock: the network reached a stable state with undelivered
	// messages — no flit can ever move again.
	ResultDeadlock
	// ResultTimeout: the cycle budget was exhausted first.
	ResultTimeout
)

// String renders the result.
func (r Result) String() string {
	switch r {
	case ResultDelivered:
		return "delivered"
	case ResultDeadlock:
		return "deadlock"
	case ResultTimeout:
		return "timeout"
	}
	return fmt.Sprintf("Result(%d)", int(r))
}

// Outcome is the final report of Run.
type Outcome struct {
	Result      Result
	Cycles      int   // cycles executed
	Undelivered []int // message IDs not delivered (deadlock/timeout)
}

// Run steps the simulation until every message is delivered, the network
// deadlocks (a provably stable non-empty state), or maxCycles elapse.
// Deadlock detection is exact, not timeout-based: the transition function
// is deterministic once injections are due and freezes expired, so a cycle
// with no movement proves no movement can ever happen.
func (s *Sim) Run(maxCycles int) Outcome {
	for c := 0; c < maxCycles; c++ {
		if s.AllDelivered() {
			return Outcome{Result: ResultDelivered, Cycles: s.now}
		}
		s.Step()
		if !s.lastMoved && s.quiescent() {
			if s.AllDelivered() {
				return Outcome{Result: ResultDelivered, Cycles: s.now}
			}
			return Outcome{Result: ResultDeadlock, Cycles: s.now, Undelivered: s.undelivered()}
		}
	}
	if s.AllDelivered() {
		return Outcome{Result: ResultDelivered, Cycles: s.now}
	}
	return Outcome{Result: ResultTimeout, Cycles: s.now, Undelivered: s.undelivered()}
}

func (s *Sim) undelivered() []int {
	var ids []int
	for _, m := range s.msgs {
		if !m.delivered() {
			ids = append(ids, m.id)
		}
	}
	return ids
}

// Clone returns a deep copy sharing only the immutable network and message
// specs. Arbiter state is shared if the arbiter is stateful; use stateless
// arbiters (FIFO, Priority) or scripted picks when cloning for search.
func (s *Sim) Clone() *Sim {
	c := &Sim{
		net:          s.net,
		cfg:          s.cfg,
		now:          s.now,
		owner:        append([]int(nil), s.owner...),
		waitingSince: append([]int(nil), s.waitingSince...),
		lastMoved:    s.lastMoved,
	}
	c.msgs = make([]*message, len(s.msgs))
	for i, m := range s.msgs {
		cp := *m
		cp.queued = append([]int(nil), m.queued...)
		cp.path = append([]topology.ChannelID(nil), m.path...)
		c.msgs[i] = &cp
	}
	return c
}

// Encode returns a canonical string of the mutable simulation state,
// excluding the cycle counter and statistics, for use as a visited-set key
// in state-space search. Two states with equal encodings have identical
// future behaviour under identical choice sequences, provided every
// message's InjectAt is already due (searches arrange this by using Held
// instead of InjectAt).
func (s *Sim) Encode() string {
	var b strings.Builder
	for _, m := range s.msgs {
		fmt.Fprintf(&b, "m%d:i%dc%df%d", m.id, m.injected, m.consumed, m.frozen)
		if m.held {
			b.WriteByte('h')
		}
		if m.headerConsumed {
			b.WriteByte('H')
		}
		b.WriteByte('[')
		for _, q := range m.queued {
			fmt.Fprintf(&b, "%d,", q)
		}
		b.WriteByte(']')
		if m.adaptive() {
			// The materialized route is part of an adaptive message's
			// state.
			b.WriteByte('p')
			for _, c := range m.path {
				fmt.Fprintf(&b, "%d.", c)
			}
		}
		b.WriteByte(';')
	}
	return b.String()
}

// MsgView is a read-only snapshot of one message's state.
type MsgView struct {
	ID             int
	Spec           MessageSpec
	Injected       int
	Consumed       int
	HeaderConsumed bool
	Delivered      bool
	InNetwork      bool
	Frozen         int
	Held           bool
	Queued         []int // copy
	// Path is the materialized channel sequence (copy): fixed for
	// oblivious messages, the route chosen so far for adaptive ones.
	Path        []topology.ChannelID
	InjectedAt  int // cycle the header entered the network, -1 before
	DeliveredAt int // cycle the tail was consumed, -1 before
}

// Message returns a snapshot of message id.
func (s *Sim) Message(id int) MsgView {
	m := s.msgs[id]
	return MsgView{
		ID:             m.id,
		Spec:           m.spec,
		Injected:       m.injected,
		Consumed:       m.consumed,
		HeaderConsumed: m.headerConsumed,
		Delivered:      m.delivered(),
		InNetwork:      m.inNetwork(),
		Frozen:         m.frozen,
		Held:           m.held,
		Queued:         append([]int(nil), m.queued...),
		Path:           append([]topology.ChannelID(nil), m.path...),
		InjectedAt:     m.injectedAt,
		DeliveredAt:    m.deliveredAt,
	}
}

// WaitsFor returns the channel message id's header is currently blocked on
// and the blocking owner's message ID. ok is false when the message is not
// blocked (not yet ready, delivered, header consumed, or some wanted
// channel is free). An adaptive message is blocked only when every
// candidate is occupied; the reported channel is then its first candidate
// (Definition 6 is specific to oblivious routing, where the wanted channel
// is unique).
func (s *Sim) WaitsFor(id int) (ch topology.ChannelID, owner int, ok bool) {
	m := s.msgs[id]
	// A frozen or held message still "waits" in the Definition 6 sense
	// only if its next channel is occupied; compute eligibility manually
	// rather than via wantedChannels (which also filters frozen/held).
	if m.delivered() || m.headerConsumed {
		return 0, -1, false
	}
	var wants []topology.ChannelID
	if m.injected == 0 {
		if s.now < m.spec.InjectAt {
			return 0, -1, false
		}
		if m.adaptive() {
			wants = s.adaptiveCandidates(m, m.spec.Src, topology.None)
		} else {
			wants = m.path[:1]
		}
	} else {
		h := m.headIdx()
		if h < 0 {
			return 0, -1, false
		}
		if m.adaptive() {
			if h != len(m.path)-1 || s.arrived(m) {
				return 0, -1, false
			}
			in := m.path[h]
			wants = s.adaptiveCandidates(m, s.net.Channel(in).Dst, in)
		} else {
			if h == len(m.path)-1 {
				return 0, -1, false
			}
			wants = m.path[h+1 : h+2]
		}
	}
	if len(wants) == 0 {
		return 0, -1, false
	}
	for _, c := range wants {
		own := s.owner[c]
		if own == -1 || own == id {
			return 0, -1, false
		}
	}
	return wants[0], s.owner[wants[0]], true
}

// CanAdvance reports whether message id could move at least one flit this
// cycle, assuming it wins every arbitration it enters. Search code uses it
// to prune pointless adversarial stalls: freezing a message that cannot
// move is a no-op.
func (s *Sim) CanAdvance(id int) bool {
	m := s.msgs[id]
	if m.delivered() || m.frozen > 0 {
		return false
	}
	freeing := s.predictReleases()
	acquirable := func(c topology.ChannelID) bool {
		return s.owner[c] == -1 || freeing[c]
	}
	h := m.headIdx()
	last := len(m.path) - 1
	for i := h; i >= 0; i-- {
		if m.queued[i] == 0 {
			continue
		}
		if i == last {
			if s.arrived(m) {
				return true // consumption always proceeds
			}
			for _, c := range s.wantedChannels(m) {
				if acquirable(c) {
					return true
				}
			}
			continue
		}
		next := m.path[i+1]
		if s.owner[next] == m.id && m.queued[i+1] < s.cfg.BufferDepth {
			return true
		}
		if i == h && !m.headerConsumed && acquirable(next) {
			return true
		}
	}
	if m.injected < m.spec.Length && !m.held && s.now >= m.spec.InjectAt {
		if m.injected == 0 {
			for _, c := range s.wantedChannels(m) {
				if acquirable(c) {
					return true
				}
			}
		} else if first := m.path[0]; s.owner[first] == m.id && m.queued[0] < s.cfg.BufferDepth {
			return true
		}
	}
	return false
}

// Network returns the simulated network.
func (s *Sim) Network() *topology.Network { return s.net }

// BufferDepth returns the configured per-channel flit capacity.
func (s *Sim) BufferDepth() int { return s.cfg.BufferDepth }
