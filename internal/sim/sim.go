// Package sim is a cycle-accurate, flit-level wormhole switching simulator.
//
// It implements the operational model of Dally & Seitz (1987) under the
// exact assumptions Schwiebert (SPAA '97) lists in Section 3:
//
//  1. Nodes generate messages of arbitrary length at any rate (sources may
//     hold a ready message indefinitely before injecting).
//  2. A message arriving at its destination is always consumed, one flit
//     per cycle.
//  3. Once a channel queue accepts a header flit it accepts only that
//     message's flits until the message is through.
//  4. Atomic buffer allocation: a channel queue holds flits of at most one
//     message, and a new header is accepted only strictly after the
//     previous message's last flit has left the queue.
//  5. Simultaneous requests for one output channel are arbitrated;
//     messages already waiting are served starvation-free.
//
// Time advances in synchronous network cycles; each channel forwards at
// most one flit per cycle, and a worm's flits pipeline (a flit moves into
// the buffer slot its predecessor vacates in the same cycle). Assumption 4
// admits two readings, both implemented: by default a released channel is
// acquirable the cycle after the tail departs; with
// Config.SameCycleHandoff it is acquirable the departing cycle itself —
// the reading the paper's Theorem 4 proof uses.
//
// Messages route either obliviously (a fixed channel path) or adaptively
// (a per-hop candidate function, MessageSpec.Route); adaptive paths
// materialize as the header advances.
//
// The simulator supports the paper's Section 6 fault model via per-message
// freeze counters (a frozen message does not move even when its output
// channel is free) and via per-channel fault state (a down channel accepts
// no new worm and transfers no flits until its repair cycle, if any; see
// SetChannelDown). It exposes Clone, Encode, explicit arbitration picks
// and adaptive selection masks so the mcheck package can use it as the
// transition function of an exact state-space search, and message-level
// recovery primitives (DropMessage, ResetMessage, SetMessagePath) used by
// the internal/fault recovery policies.
package sim

import (
	"fmt"
	"math"
	"slices"
	"strings"

	"repro/internal/obsv"
	"repro/internal/obsv/telemetry"
	"repro/internal/topology"
)

// DownForever is the repair cycle of a permanently failed channel: it never
// becomes usable again.
const DownForever = math.MaxInt

// RouteFunc supplies the candidate output channels for an adaptive
// message at node at (arrived on channel in, topology.None at the source)
// heading for dst. The engine acquires whichever candidate arbitration
// grants; candidates that do not leave at, or that the message has already
// used, are ignored. Returning no usable candidate when the message has
// not arrived blocks it forever — routing functions must be connected.
type RouteFunc func(at topology.NodeID, in topology.ChannelID, dst topology.NodeID) []topology.ChannelID

// MessageSpec describes a message to simulate. Exactly one of Path
// (oblivious routing: the fixed channel sequence, from
// routing.Algorithm.Path) and Route (adaptive routing: per-hop candidate
// sets) must be set.
type MessageSpec struct {
	Src, Dst topology.NodeID
	Length   int // flits, >= 1
	Path     []topology.ChannelID
	Route    RouteFunc
	InjectAt int    // earliest cycle the source tries to inject (>= 0)
	Label    string // optional, for diagnostics
}

// message is the runtime state of one message.
type message struct {
	spec MessageSpec
	id   int
	// path is the materialized channel sequence: a copy of spec.Path for
	// oblivious messages, grown hop by hop as the header acquires
	// channels for adaptive ones.
	path           []topology.ChannelID
	queued         []int // flits currently buffered in each path channel
	injected       int   // flits that have left the source
	consumed       int   // flits consumed at the destination
	headerConsumed bool
	frozen         int  // cycles the message will not move (Section 6 faults)
	held           bool // source withholds injection (assumption 1)
	// mask, when not topology.None, restricts an adaptive message's
	// candidate set to that single channel for the current cycle (cleared
	// after each Step); used by search to enumerate selection choices.
	mask topology.ChannelID

	injectedAt  int // cycle the header entered the network, -1 before
	deliveredAt int // cycle the tail was consumed, -1 before

	// dropped marks a message removed from the network by a recovery
	// policy: it holds no channels, never moves again, and counts as
	// terminal (but not delivered) for Run.
	dropped bool
	// retries counts how many times a recovery policy reset the message
	// back to its source (ResetMessage).
	retries int
}

func (m *message) adaptive() bool { return m.spec.Route != nil }

func (m *message) delivered() bool { return m.consumed == m.spec.Length }

// terminal reports whether the message will never move again by design:
// fully consumed, or removed by a drop recovery.
func (m *message) terminal() bool { return m.delivered() || m.dropped }

func (m *message) inNetwork() bool { return m.injected > m.consumed }

// headIdx returns the largest path index holding flits, or -1.
func (m *message) headIdx() int {
	for i := len(m.queued) - 1; i >= 0; i-- {
		if m.queued[i] > 0 {
			return i
		}
	}
	return -1
}

// Config controls simulator behaviour.
type Config struct {
	// BufferDepth is the flit capacity of every channel queue. The paper's
	// hardest case — and the default — is 1.
	BufferDepth int
	// Arbiter resolves simultaneous requests for a free channel. Defaults
	// to FIFO (longest-waiting wins, ties to lowest message ID), which is
	// starvation-free per assumption 5.
	Arbiter Arbiter
	// SameCycleHandoff selects the aggressive reading of assumption 4:
	// when a message's tail leaves a channel this cycle, a waiting header
	// may acquire the channel in the same cycle (the handoff the paper's
	// Theorem 4 proof uses — "immediately after M1 has traversed cs, M2
	// starts traversing cs"). When false (default), a released channel
	// becomes acquirable only on the following cycle. Same-cycle handoff
	// chains are resolved to depth one: a header may enter a channel freed
	// by a message that is not itself acquiring a freed channel this
	// cycle.
	SameCycleHandoff bool
}

// Sim is a simulator instance. Create one with New, add messages, then
// Step or Run.
type Sim struct {
	net   *topology.Network
	cfg   Config
	now   int
	msgs  []message // indexed by message ID; stable addresses only between Adds
	owner []int     // channel -> message id, -1 when free
	// downUntil[c] is the cycle at which channel c becomes usable again:
	// the channel is down while downUntil[c] > now (DownForever = never
	// repaired). A down channel transfers no flits and accepts no header.
	downUntil []int
	// waitingSince[msg] is the cycle the message's header began waiting
	// for its next channel, -1 when not waiting; drives FIFO arbitration.
	waitingSince []int

	// active is the working set the per-cycle machinery iterates: every
	// non-terminal message, plus terminal messages whose freeze counter is
	// still counting down (frozen state is encoded, so the countdown must
	// keep running exactly as it did when every cycle visited every
	// message). Sorted ascending; step compacts out finished entries. It
	// may transiently retain terminal entries between steps (e.g. after
	// DropMessage) — every consumer re-checks message state, so stale
	// entries are harmless and vanish on the next compaction.
	active []int32
	// liveCount counts non-terminal messages and droppedCount dropped
	// ones, so AllTerminal/AllDelivered are O(1) on the Run hot loop.
	liveCount    int
	droppedCount int
	// flitsConsumed counts every flit consumed at a destination since New
	// or Reset. It is monotone — recovery resets discard a message's
	// consumed flits but do not rewind this counter — so the traffic
	// engine can read window deltas for accepted throughput.
	flitsConsumed int64

	// perCycleMoved reports whether the last Step moved any flit.
	lastMoved bool
	// lastThawed reports whether the last Step decremented any freeze
	// counter. A countdown is a state change even when no flit moves: the
	// cycle a freeze expires must not satisfy the quiescence certificate,
	// or a frozen-but-otherwise-idle network would be misreported as
	// deadlocked one cycle early.
	lastThawed bool

	// --- per-step scratch arenas -------------------------------------
	// Transient working memory for one Step (or one query), owned by the
	// Sim so steady-state stepping allocates nothing. Arenas are never
	// copied by Clone/CopyFrom and never shrunk; epoch-stamp arrays treat
	// "stamp == current epoch counter" as set, so clearing one is a
	// single counter increment. The counters are bumped before every use
	// and never reset (not even by Reset), so stale stamps — including
	// the zero value of freshly grown slots — always read as unset.

	// releaseEpoch/freeingStamp mark the channels predicted to release
	// this cycle (same-cycle handoff); refreshed by each predictReleases
	// pass.
	releaseEpoch uint64
	freeingStamp []uint64
	// grantEpoch/grantStamp/grantCh record phase-1 arbitration grants,
	// message id -> channel won; refreshed once per step.
	grantEpoch uint64
	grantStamp []uint64
	grantCh    []topology.ChannelID
	// stepReqs holds the step's acquisition requests as packed
	// (channel<<32 | message) pairs; sorting them yields channels in
	// ascending order with each channel's contenders ascending, replacing
	// the per-cycle request map and both its sorts. queryReqs is the same
	// arena for the Contentions query, kept separate so an arbiter that
	// inspects contentions mid-step cannot clobber the grant loop's
	// iteration.
	stepReqs  []uint64
	queryReqs []uint64
	// wantBuf backs adaptiveCandidates; valid only until the next
	// wantedChannels/adaptiveCandidates call.
	wantBuf []topology.ChannelID
	// departsBuf backs the predictReleases front-to-back worm walk.
	departsBuf []bool
	// releases collects strict-mode end-of-cycle channel releases.
	releases []topology.ChannelID
	// deferredBuf collects the messages whose movement waits for a
	// same-cycle handoff release.
	deferredBuf []int32
	// contBuf is the grant loop's per-channel contender list.
	contBuf []int
	// pathSeenEpoch/pathSeenStamp back the duplicate-channel check in
	// Add/SetMessagePath, replacing a per-call map.
	pathSeenEpoch uint64
	pathSeenStamp []uint64

	// tracer receives trace events while attached; nil (the default) is
	// the disabled state, guarded by one branch per emission site. Clone
	// and CopyFrom never propagate it: search clones stay silent.
	tracer obsv.Tracer
	// telemetry receives periodic channel-state samples while attached;
	// nil (the default) is the disabled state, guarded by one branch per
	// step. Like the tracer it is per-instance working memory: never
	// propagated by Clone/CopyFrom, never touched by Reset.
	telemetry *telemetry.Collector
	// waitCh/waitOwner remember the last wait-for edge reported per
	// message, so Step can emit block/unblock and wait-edge add/del
	// transitions. Maintained only while a tracer is attached.
	waitCh    []topology.ChannelID
	waitOwner []int
}

// freeing reports whether channel c was predicted to release this cycle
// by the most recent predictReleases pass. Always false in strict mode.
func (s *Sim) freeing(c topology.ChannelID) bool {
	return s.cfg.SameCycleHandoff && s.freeingStamp[c] == s.releaseEpoch
}

// granted returns the channel message id won in this step's arbitration
// phase. Only meaningful between the grant loop and the end of the same
// step.
func (s *Sim) granted(id int) (topology.ChannelID, bool) {
	if s.grantStamp[id] == s.grantEpoch {
		return s.grantCh[id], true
	}
	return topology.None, false
}

// ensureChannelStamps grows the channel-indexed stamp arenas to cover the
// network. New slots are zero, which every epoch counter has already
// passed (counters are bumped before first use), so they read as unset.
func (s *Sim) ensureChannelStamps() {
	n := s.net.NumChannels()
	for len(s.freeingStamp) < n {
		s.freeingStamp = append(s.freeingStamp, 0)
	}
	for len(s.pathSeenStamp) < n {
		s.pathSeenStamp = append(s.pathSeenStamp, 0)
	}
}

// ensureGrantArena grows the message-indexed grant arena.
func (s *Sim) ensureGrantArena() {
	for len(s.grantStamp) < len(s.msgs) {
		s.grantStamp = append(s.grantStamp, 0)
		s.grantCh = append(s.grantCh, topology.None)
	}
}

// ensureActive inserts id into the sorted active list if absent. Needed
// only when a terminal message re-enters the working set (a freeze placed
// on a delivered message, or a retimed/relengthened pooled message coming
// back to life).
func (s *Sim) ensureActive(id int) {
	i, found := slices.BinarySearch(s.active, int32(id))
	if found {
		return
	}
	s.active = slices.Insert(s.active, i, int32(id))
}

// New returns an empty simulator for net.
func New(net *topology.Network, cfg Config) *Sim {
	if cfg.BufferDepth <= 0 {
		cfg.BufferDepth = 1
	}
	if cfg.Arbiter == nil {
		cfg.Arbiter = FIFOArbiter{}
	}
	owner := make([]int, net.NumChannels())
	for i := range owner {
		owner[i] = -1
	}
	return &Sim{net: net, cfg: cfg, owner: owner, downUntil: make([]int, net.NumChannels())}
}

// Add validates and registers a message, returning its ID (dense from 0 in
// insertion order).
func (s *Sim) Add(spec MessageSpec) (int, error) {
	if spec.Length < 1 {
		return -1, fmt.Errorf("sim: message length %d < 1", spec.Length)
	}
	if spec.Src == spec.Dst {
		return -1, fmt.Errorf("sim: message source equals destination (%d)", spec.Src)
	}
	if spec.Route != nil {
		if spec.Path != nil {
			return -1, fmt.Errorf("sim: message has both a fixed path and an adaptive route")
		}
	} else {
		if len(spec.Path) == 0 {
			return -1, fmt.Errorf("sim: message has no path")
		}
		if !s.net.IsPath(spec.Src, spec.Dst, spec.Path) {
			return -1, fmt.Errorf("sim: message path %v is not a contiguous %d -> %d path", spec.Path, spec.Src, spec.Dst)
		}
		if dup, ok := s.pathDuplicate(spec.Path); ok {
			return -1, fmt.Errorf("sim: message path %v uses channel %d twice; a message may hold a channel only once", spec.Path, dup)
		}
	}
	if spec.InjectAt < 0 {
		return -1, fmt.Errorf("sim: negative injection time %d", spec.InjectAt)
	}
	id := len(s.msgs)
	// Reuse the queued/path backing arrays of a slot parked beyond the
	// length by an earlier Reset, so Add-heavy workloads on a recycled
	// simulator stop allocating per message.
	if cap(s.msgs) > id {
		s.msgs = s.msgs[:id+1]
	} else {
		s.msgs = append(s.msgs, message{})
	}
	m := &s.msgs[id]
	queued, path := m.queued[:0], m.path[:0]
	*m = message{
		spec:        spec,
		id:          id,
		mask:        topology.None,
		injectedAt:  -1,
		deliveredAt: -1,
	}
	m.path = append(path, spec.Path...)
	for range spec.Path {
		queued = append(queued, 0)
	}
	m.queued = queued
	s.waitingSince = append(s.waitingSince, -1)
	s.active = append(s.active, int32(id))
	s.liveCount++
	return id, nil
}

// pathDuplicate reports the first channel a path visits twice, using the
// epoch-stamped scratch arena instead of a per-call map. Paths have
// already passed IsPath, so every ID indexes the stamp array.
func (s *Sim) pathDuplicate(path []topology.ChannelID) (topology.ChannelID, bool) {
	s.ensureChannelStamps()
	s.pathSeenEpoch++
	for _, c := range path {
		if s.pathSeenStamp[c] == s.pathSeenEpoch {
			return c, true
		}
		s.pathSeenStamp[c] = s.pathSeenEpoch
	}
	return topology.None, false
}

// MustAdd is Add that panics on error.
func (s *Sim) MustAdd(spec MessageSpec) int {
	id, err := s.Add(spec)
	if err != nil {
		panic(err)
	}
	return id
}

// SetTracer attaches (or, with nil, detaches) a trace event consumer.
// Events carry only logical quantities, so for a fixed scenario and
// schedule the emitted sequence is deterministic. The tracer is never
// copied by Clone or CopyFrom.
func (s *Sim) SetTracer(t obsv.Tracer) {
	s.tracer = t
	s.waitCh = s.waitCh[:0]
	s.waitOwner = s.waitOwner[:0]
}

// Tracer returns the attached tracer, nil when tracing is disabled.
func (s *Sim) Tracer() obsv.Tracer { return s.tracer }

// SetTelemetry attaches (or, with nil, detaches) a telemetry collector.
// On every cycle divisible by the collector's stride, Step ends with one
// O(channels + live messages) scan recording per-channel busy/occupancy/
// blocked counts — no allocations, so long load runs sample for free.
// Samples depend only on simulation state, never on wall clock, keeping
// telemetry frames deterministic. Like the tracer, the collector is never
// copied by Clone or CopyFrom.
func (s *Sim) SetTelemetry(c *telemetry.Collector) { s.telemetry = c }

// Telemetry returns the attached collector, nil when sampling is off.
func (s *Sim) Telemetry() *telemetry.Collector { return s.telemetry }

// Now returns the current cycle.
func (s *Sim) Now() int { return s.now }

// NumMessages returns the number of registered messages.
func (s *Sim) NumMessages() int { return len(s.msgs) }

// Owner returns the ID of the message holding channel c, or -1.
func (s *Sim) Owner(c topology.ChannelID) int { return s.owner[c] }

// SetFrozen freezes message id for the next n cycles: it will not move or
// contend for channels even when able (the Section 6 fault model). Calling
// with n = 0 unfreezes.
func (s *Sim) SetFrozen(id, n int) {
	m := &s.msgs[id]
	m.frozen = n
	if n > 0 && m.terminal() {
		// A terminal message may already be compacted out of the active
		// list; the freeze countdown is encoded state, so it must rejoin
		// the working set until the counter drains.
		s.ensureActive(id)
	}
}

// Frozen returns the remaining frozen cycles of message id.
func (s *Sim) Frozen(id int) int { return s.msgs[id].frozen }

// SetChannelDown marks channel c faulty until the given cycle: while
// now < until the channel transfers no flits (in or out, including
// consumption at a destination) and no header may acquire it. Flits already
// buffered in the channel stay in place and the owning message keeps its
// ownership — a fault stalls a worm, it does not corrupt it. Pass
// DownForever for a permanent link failure, or until <= Now() to repair.
func (s *Sim) SetChannelDown(c topology.ChannelID, until int) {
	s.downUntil[c] = until
}

// FailChannel permanently fails channel c (SetChannelDown with DownForever).
func (s *Sim) FailChannel(c topology.ChannelID) { s.SetChannelDown(c, DownForever) }

// RepairChannel returns channel c to service immediately.
func (s *Sim) RepairChannel(c topology.ChannelID) { s.SetChannelDown(c, 0) }

// FailRouter downs every channel incident to node n (incoming and outgoing)
// until the given cycle, modeling a router failure that severs the whole
// switch rather than a single link.
func (s *Sim) FailRouter(n topology.NodeID, until int) {
	for _, c := range s.net.Out(n) {
		s.SetChannelDown(c, until)
	}
	for _, c := range s.net.In(n) {
		s.SetChannelDown(c, until)
	}
}

// ChannelDown reports whether channel c is currently faulty.
func (s *Sim) ChannelDown(c topology.ChannelID) bool { return s.downUntil[c] > s.now }

// DownUntil returns the cycle channel c repairs at (DownForever when the
// failure is permanent); values <= Now() mean the channel is in service.
func (s *Sim) DownUntil(c topology.ChannelID) int { return s.downUntil[c] }

// down is ChannelDown on the hot path.
func (s *Sim) down(c topology.ChannelID) bool { return s.downUntil[c] > s.now }

// DropMessage removes message id from the network for good: every channel
// it holds is released, buffered flits are discarded, and the message is
// marked dropped — a terminal state Run counts separately from delivery.
// Dropping a delivered message is a no-op.
func (s *Sim) DropMessage(id int) {
	m := &s.msgs[id]
	if m.delivered() || m.dropped {
		return
	}
	s.clearFromNetwork(m)
	m.dropped = true
	s.liveCount--
	s.droppedCount++
	s.waitingSince[id] = -1
}

// ResetMessage aborts message id and re-arms its source: held channels are
// released, buffered and consumed flits are discarded, and the source will
// attempt to inject the whole message again from cycle reinjectAt. The
// message's retry counter increments. Adaptive messages forget their
// materialized route and re-route from scratch. Resetting a delivered or
// dropped message is a no-op.
func (s *Sim) ResetMessage(id, reinjectAt int) {
	m := &s.msgs[id]
	if m.terminal() {
		return
	}
	s.clearFromNetwork(m)
	if reinjectAt < 0 {
		reinjectAt = 0
	}
	m.spec.InjectAt = reinjectAt
	m.retries++
	s.waitingSince[id] = -1
}

// SetMessagePath replaces the path of an oblivious message that is not in
// the network (never injected, or just reset). The recovery layer uses it
// to re-route a message around failed channels.
func (s *Sim) SetMessagePath(id int, path []topology.ChannelID) error {
	m := &s.msgs[id]
	if m.adaptive() {
		return fmt.Errorf("sim: SetMessagePath(%d): message routes adaptively", id)
	}
	if m.injected > 0 && !m.terminal() {
		return fmt.Errorf("sim: SetMessagePath(%d): message is in the network", id)
	}
	if len(path) == 0 {
		return fmt.Errorf("sim: SetMessagePath(%d): empty path", id)
	}
	if !s.net.IsPath(m.spec.Src, m.spec.Dst, path) {
		return fmt.Errorf("sim: SetMessagePath(%d): %v is not a contiguous %d -> %d path",
			id, path, m.spec.Src, m.spec.Dst)
	}
	if dup, ok := s.pathDuplicate(path); ok {
		return fmt.Errorf("sim: SetMessagePath(%d): path uses channel %d twice", id, dup)
	}
	// spec.Path may be shared with clones of this sim (Clone copies the
	// spec by value), so it gets a fresh array; the materialized path and
	// queue are owned per sim and reuse their backing.
	m.spec.Path = append([]topology.ChannelID(nil), path...)
	m.path = append(m.path[:0], path...)
	m.queued = m.queued[:0]
	for range path {
		m.queued = append(m.queued, 0)
	}
	return nil
}

// Retries returns how many times message id was reset by recovery.
func (s *Sim) Retries(id int) int { return s.msgs[id].retries }

// Dropped reports whether message id was removed by a drop recovery.
func (s *Sim) Dropped(id int) bool { return s.msgs[id].dropped }

// clearFromNetwork releases every channel message m owns and zeroes its
// in-flight state, as if the worm had never entered the network.
func (s *Sim) clearFromNetwork(m *message) {
	for _, c := range m.path {
		if s.owner[c] == m.id {
			if s.tracer != nil {
				ev := obsv.Ev(obsv.KindRelease, s.now)
				ev.Msg = m.id
				ev.Ch = c
				s.tracer.Event(ev)
			}
			s.owner[c] = -1
		}
	}
	if m.adaptive() {
		m.path = nil
		m.queued = nil
	} else {
		for i := range m.queued {
			m.queued[i] = 0
		}
	}
	m.injected = 0
	m.consumed = 0
	m.headerConsumed = false
	m.injectedAt = -1
	m.deliveredAt = -1
	m.mask = topology.None
}

// SetHeld controls source-side injection: a held message's source does not
// attempt injection regardless of InjectAt. Holding a message that has
// already begun injecting has no effect. Model checkers use this to
// realize assumption 1's "any injection time".
func (s *Sim) SetHeld(id int, held bool) { s.msgs[id].held = held }

// SetMask restricts an adaptive message to request only the given channel
// during the next Step; the mask clears when the step completes. Model
// checkers use it to enumerate adaptive selection nondeterminism: the
// masked channel must be one of the message's current candidates (this is
// the caller's responsibility — a stale mask simply blocks the message for
// one cycle). Pass topology.None to clear. Masks on oblivious messages are
// ignored.
func (s *Sim) SetMask(id int, c topology.ChannelID) { s.msgs[id].mask = c }

// Held reports whether message id is held at its source.
func (s *Sim) Held(id int) bool { return s.msgs[id].held }

// Contention describes one contested free channel: the messages whose
// header may acquire it this cycle.
type Contention struct {
	Channel    topology.ChannelID
	Contenders []int // message IDs, sorted
}

// AcquirableCandidates returns the channels message id wants and could
// acquire this cycle (free now, or releasing under same-cycle handoff).
// Search code enumerates adaptive selection nondeterminism over this set
// via SetMask.
func (s *Sim) AcquirableCandidates(id int) []topology.ChannelID {
	s.predictReleases()
	var out []topology.ChannelID
	for _, c := range s.wantedChannels(&s.msgs[id]) {
		if s.owner[c] == -1 || s.freeing(c) {
			out = append(out, c)
		}
	}
	return out
}

// IsAdaptive reports whether message id routes adaptively.
func (s *Sim) IsAdaptive(id int) bool { return s.msgs[id].adaptive() }

// Contentions returns this cycle's channel-acquisition choice points: every
// acquirable channel (free now, or — with same-cycle handoff — freed by a
// departing tail this cycle) that two or more eligible headers request
// simultaneously. Channels requested by a single header are not included
// (no choice).
func (s *Sim) Contentions() []Contention {
	s.predictReleases()
	reqs := s.collectRequests(s.queryReqs)
	s.queryReqs = reqs[:0]
	var out []Contention
	for i := 0; i < len(reqs); {
		c := topology.ChannelID(reqs[i] >> 32)
		j := i
		for j < len(reqs) && topology.ChannelID(reqs[j]>>32) == c {
			j++
		}
		if j-i > 1 {
			ids := make([]int, 0, j-i)
			for k := i; k < j; k++ {
				ids = append(ids, int(uint32(reqs[k])))
			}
			out = append(out, Contention{Channel: c, Contenders: ids})
		}
		i = j
	}
	return out
}

// collectRequests appends this cycle's acquisition requests to buf as
// packed (channel<<32 | message) pairs and sorts them: channels come out
// in ascending ID order, each with its contenders ascending — the exact
// order the old per-cycle request map produced after its two sorts. A
// channel is requestable when it is free, or when the most recent
// predictReleases pass marked it releasing (same-cycle handoff). Adaptive
// messages may request several channels at once; grant resolution ensures
// each message wins at most one.
func (s *Sim) collectRequests(buf []uint64) []uint64 {
	reqs := buf[:0]
	for _, id := range s.active {
		m := &s.msgs[id]
		for _, c := range s.wantedChannels(m) {
			if s.owner[c] == -1 || s.freeing(c) {
				reqs = append(reqs, uint64(c)<<32|uint64(uint32(m.id)))
			}
		}
	}
	slices.Sort(reqs)
	return reqs
}

// arrived reports whether the message's materialized path already ends at
// its destination (always true for oblivious messages at the last index).
func (s *Sim) arrived(m *message) bool {
	if !m.adaptive() {
		return true
	}
	n := len(m.path)
	return n > 0 && s.net.Channel(m.path[n-1]).Dst == m.spec.Dst
}

// predictReleases stamps the channels whose owner's tail will depart this
// cycle into the freeingStamp arena under a fresh releaseEpoch (query the
// result with freeing). The owner's own header acquisition is predicted
// optimistically (it moves whenever its next channel is free at the start
// of the cycle); if the owner then loses that arbitration the release does
// not happen, and the acquisition guard in moveMessage makes the granted
// waiter simply stall one more cycle. In strict-handoff mode it only
// advances the epoch, leaving every channel unmarked.
func (s *Sim) predictReleases() {
	s.releaseEpoch++
	if !s.cfg.SameCycleHandoff {
		return
	}
	s.ensureChannelStamps()
	for _, id := range s.active {
		m := &s.msgs[id]
		if m.terminal() || m.frozen > 0 || m.injected < m.spec.Length {
			continue
		}
		low := -1
		for i, q := range m.queued {
			if q > 0 {
				low = i
				break
			}
		}
		if low < 0 || m.queued[low] != 1 {
			continue
		}
		// Walk the worm front to back, computing whether one flit departs
		// each occupied channel this cycle (mirrors the movement pass).
		h := m.headIdx()
		last := len(m.path) - 1
		departs := s.departsBuf
		if cap(departs) < h+1 {
			departs = make([]bool, h+1)
			s.departsBuf = departs
		} else {
			departs = departs[:h+1]
		}
		for i := range departs {
			departs[i] = false
		}
		for i := h; i >= low; i-- {
			if m.queued[i] == 0 {
				continue
			}
			if s.down(m.path[i]) {
				continue // no flit leaves a dead channel
			}
			if i == last {
				if s.arrived(m) {
					departs[i] = true // consumption never blocks
					continue
				}
				// Adaptive frontier: optimistically departs when any
				// candidate channel is free at the start of the cycle.
				for _, c := range s.wantedChannels(m) {
					if s.owner[c] == -1 {
						departs[i] = true
						break
					}
				}
				continue
			}
			next := m.path[i+1]
			if s.down(next) {
				continue // no flit enters a dead channel
			}
			if s.owner[next] != m.id {
				// Header acquisition: optimistically moves when the
				// channel is free at the start of the cycle.
				departs[i] = i == h && !m.headerConsumed && s.owner[next] == -1
				continue
			}
			free := s.cfg.BufferDepth - m.queued[i+1]
			if i+1 <= h && departs[i+1] {
				free++
			}
			departs[i] = free > 0
		}
		if departs[low] {
			s.freeingStamp[m.path[low]] = s.releaseEpoch
		}
	}
}

// wantedChannels returns the channels the message's header may acquire
// next, if the message is eligible to request one this cycle (not
// delivered or dropped, not frozen, header not consumed, and — for
// injection — ready and not held). Oblivious messages want exactly their
// next path channel; adaptive messages want every usable candidate their
// route function offers. Down channels are never wanted: a faulty link
// accepts no header, and a header sitting in a down channel cannot leave
// it.
func (s *Sim) wantedChannels(m *message) []topology.ChannelID {
	if m.terminal() || m.frozen > 0 || m.headerConsumed {
		return nil
	}
	var at topology.NodeID
	in := topology.None
	if m.injected == 0 {
		if m.held || s.now < m.spec.InjectAt {
			return nil
		}
		if !m.adaptive() {
			if s.down(m.path[0]) {
				return nil
			}
			return m.path[:1]
		}
		at = m.spec.Src
	} else {
		h := m.headIdx()
		if h < 0 {
			return nil
		}
		if s.down(m.path[h]) {
			return nil // the header cannot exit a dead channel
		}
		if !m.adaptive() {
			if h == len(m.path)-1 {
				return nil // header at the destination channel: consumption
			}
			if s.down(m.path[h+1]) {
				return nil
			}
			return m.path[h+1 : h+2]
		}
		// An adaptive header is always at the end of the materialized
		// path.
		if h != len(m.path)-1 || s.arrived(m) {
			return nil
		}
		in = m.path[h]
		at = s.net.Channel(in).Dst
	}
	return s.adaptiveCandidates(m, at, in)
}

// adaptiveCandidates filters the route function's candidates: they must
// leave the current node, must not revisit a channel the message already
// used (a message may hold a channel only once), and must match the
// message's selection mask when one is set. The result is backed by the
// sim-owned wantBuf scratch slice: it is valid only until the next
// wantedChannels/adaptiveCandidates call and must not be retained.
func (s *Sim) adaptiveCandidates(m *message, at topology.NodeID, in topology.ChannelID) []topology.ChannelID {
	raw := m.spec.Route(at, in, m.spec.Dst)
	out := s.wantBuf[:0]
	for _, c := range raw {
		if c < 0 || int(c) >= s.net.NumChannels() || s.net.Channel(c).Src != at {
			continue
		}
		if s.down(c) {
			continue // adaptive routing masks faulty candidates
		}
		if m.mask != topology.None && c != m.mask {
			continue
		}
		used := false
		for _, p := range m.path {
			if p == c {
				used = true
				break
			}
		}
		if !used {
			out = append(out, c)
		}
	}
	s.wantBuf = out[:0]
	return out
}

// StepResult reports what happened in one cycle.
type StepResult struct {
	Moved bool // some flit moved (including injection and consumption)
}

// Step advances the simulation one cycle using the configured arbiter.
func (s *Sim) Step() StepResult {
	return s.step(nil)
}

// StepWithPicks advances one cycle, resolving the given contested channels
// in favor of the specified message IDs; remaining contests fall back to
// the configured arbiter. A pick naming a message that is not actually a
// contender for the channel panics: the caller enumerated stale choices.
func (s *Sim) StepWithPicks(picks map[topology.ChannelID]int) StepResult {
	return s.step(picks)
}

func (s *Sim) step(picks map[topology.ChannelID]int) StepResult {
	// Phase 1: arbitration. In strict mode the snapshot is start-of-cycle
	// ownership; with same-cycle handoff, channels releasing this cycle
	// are acquirable too. All working memory comes from the Sim's scratch
	// arenas: a steady-state step allocates nothing.
	s.ensureGrantArena()
	s.grantEpoch++
	s.predictReleases()
	reqs := s.collectRequests(s.stepReqs)
	s.stepReqs = reqs[:0]
	// Resolve grants channel by channel in ascending ID order so that an
	// adaptive message contending on several channels wins at most one
	// (deterministically the lowest); contenders that already won an
	// earlier channel drop out of later contests. The sorted request
	// pairs deliver each channel's contenders already ascending, which is
	// the order the Arbiter contract requires.
	for i := 0; i < len(reqs); {
		c := topology.ChannelID(reqs[i] >> 32)
		ids := s.contBuf[:0]
		for ; i < len(reqs) && topology.ChannelID(reqs[i]>>32) == c; i++ {
			id := int(uint32(reqs[i]))
			if s.grantStamp[id] != s.grantEpoch {
				ids = append(ids, id)
			}
		}
		s.contBuf = ids
		if len(ids) == 0 {
			continue
		}
		var winner int
		if pick, ok := picks[c]; ok {
			found := false
			for _, id := range ids {
				if id == pick {
					found = true
				}
			}
			if !found {
				panic(fmt.Sprintf("sim: pick %d is not a contender for channel %d (contenders %v)", pick, c, ids))
			}
			winner = pick
		} else if len(ids) == 1 {
			winner = ids[0]
		} else {
			winner = s.cfg.Arbiter.Pick(s, c, ids)
		}
		s.grantStamp[winner] = s.grantEpoch
		s.grantCh[winner] = c
	}

	// Track waiting-since for FIFO arbitration: a message that wants a
	// channel (free or not) and does not get one this cycle is waiting.
	// Terminal messages outside the active list keep waitingSince == -1:
	// it was reset on the cycle their header reached the destination
	// (wantedChannels was already empty) and nothing sets it afterwards.
	for _, id := range s.active {
		m := &s.msgs[id]
		if wants := s.wantedChannels(m); len(wants) > 0 {
			if _, won := s.granted(m.id); !won {
				if s.waitingSince[m.id] < 0 {
					s.waitingSince[m.id] = s.now
				}
				continue
			}
		}
		s.waitingSince[m.id] = -1
	}

	// Phase 2: movement, per message, front slot to back slot. In strict
	// mode the order across messages does not matter: cross-message
	// interaction happens only through acquisition (already arbitrated
	// against the snapshot) and end-of-cycle release. With same-cycle
	// handoff, releases apply immediately, and messages granted a
	// releasing channel move after everyone else so the release has
	// happened by the time they acquire.
	moved := false
	s.releases = s.releases[:0]
	deferred := s.deferredBuf[:0]
	for _, id := range s.active {
		if c, won := s.granted(int(id)); won && s.freeing(c) {
			deferred = append(deferred, id)
			continue
		}
		if s.moveMessage(&s.msgs[id]) {
			moved = true
		}
	}
	for _, id := range deferred {
		if s.moveMessage(&s.msgs[id]) {
			moved = true
		}
	}
	s.deferredBuf = deferred[:0]

	// Phase 3: end-of-cycle releases (strict mode), freeze countdown, and
	// active-list compaction: a terminal message leaves the working set
	// once its freeze counter (encoded state) has drained.
	for _, c := range s.releases {
		// A release entry is only created when the owning message's tail
		// left the channel; the owner cannot have changed within the cycle
		// because acquisitions were arbitrated against the snapshot, which
		// showed the channel owned.
		s.owner[c] = -1
	}
	thawed := false
	kept := s.active[:0]
	for _, id := range s.active {
		m := &s.msgs[id]
		if m.frozen > 0 {
			m.frozen--
			thawed = true
			if s.tracer != nil && m.frozen == 0 {
				ev := obsv.Ev(obsv.KindThaw, s.now)
				ev.Msg = m.id
				s.tracer.Event(ev)
			}
		}
		m.mask = topology.None
		if !m.terminal() || m.frozen > 0 {
			kept = append(kept, id)
		}
	}
	s.active = kept
	if s.tracer != nil {
		s.traceWaits()
	}
	if s.telemetry != nil && s.telemetry.Due(s.now) {
		s.sampleTelemetry()
	}
	s.now++
	s.lastMoved = moved
	s.lastThawed = thawed
	return StepResult{Moved: moved}
}

// sampleTelemetry records one end-of-cycle telemetry sample: which
// channels are held (busy), how many flits each buffers (occupancy), and
// which channels participate in a blocking dependency — held by a
// blocked message (a resource pinned by a stuck worm, the congestion-
// tree signal) or waited for by a blocked header (the Definition 6
// wait-for target). Runs after phase 3, so the sample sees the same
// settled state the next cycle's arbitration will. Allocation-free: the
// collector's accumulators are preallocated and WaitsFor uses the Sim's
// scratch arenas.
func (s *Sim) sampleTelemetry() {
	busy, occ, blocked := s.telemetry.Accum()
	for c, own := range s.owner {
		if own >= 0 {
			busy[c]++
			if s.waitingSince[own] >= 0 {
				blocked[c]++
			}
		}
	}
	for _, id := range s.active {
		m := &s.msgs[id]
		for i, q := range m.queued {
			if q > 0 {
				occ[m.path[i]] += uint32(q)
			}
		}
		if s.waitingSince[id] >= 0 {
			if ch, _, ok := s.WaitsFor(int(id)); ok {
				blocked[ch]++
			}
		}
	}
	s.telemetry.FinishSample(s.now, s.flitsConsumed, s.liveCount)
}

// release records that channel c's tail departed this cycle: immediately
// freeing it under same-cycle handoff, at end of cycle in strict mode.
func (s *Sim) release(c topology.ChannelID) {
	if s.tracer != nil {
		// The owner is still recorded at release time in both handoff
		// modes: strict mode clears it in phase 3, same-cycle mode on
		// the next line.
		ev := obsv.Ev(obsv.KindRelease, s.now)
		ev.Msg = s.owner[c]
		ev.Ch = c
		s.tracer.Event(ev)
	}
	if s.cfg.SameCycleHandoff {
		s.owner[c] = -1
	} else {
		s.releases = append(s.releases, c)
	}
}

// traceWaits diffs each message's current Definition 6 wait-for edge
// against the last one reported and emits the block/unblock and
// wait-edge add/del transitions. Runs at the end of Step — after
// movement and releases — and only while a tracer is attached, so an
// untraced Step never reaches it.
func (s *Sim) traceWaits() {
	for len(s.waitCh) < len(s.msgs) {
		s.waitCh = append(s.waitCh, topology.None)
		s.waitOwner = append(s.waitOwner, -1)
	}
	for id := range s.msgs {
		ch, owner, ok := s.WaitsFor(id)
		had := s.waitCh[id] != topology.None
		if !ok {
			if had {
				ev := obsv.Ev(obsv.KindWaitEdgeDel, s.now)
				ev.Msg = id
				ev.Ch = s.waitCh[id]
				ev.Owner = s.waitOwner[id]
				s.tracer.Event(ev)
				ev.Kind = obsv.KindUnblock
				s.tracer.Event(ev)
				s.waitCh[id] = topology.None
				s.waitOwner[id] = -1
			}
			continue
		}
		if had && s.waitCh[id] == ch && s.waitOwner[id] == owner {
			continue
		}
		if had {
			// Retargeted while still blocked: swap the edge, no unblock.
			ev := obsv.Ev(obsv.KindWaitEdgeDel, s.now)
			ev.Msg = id
			ev.Ch = s.waitCh[id]
			ev.Owner = s.waitOwner[id]
			s.tracer.Event(ev)
		} else {
			ev := obsv.Ev(obsv.KindBlock, s.now)
			ev.Msg = id
			ev.Ch = ch
			ev.Owner = owner
			s.tracer.Event(ev)
		}
		ev := obsv.Ev(obsv.KindWaitEdgeAdd, s.now)
		ev.Msg = id
		ev.Ch = ch
		ev.Owner = owner
		s.tracer.Event(ev)
		s.waitCh[id] = ch
		s.waitOwner[id] = owner
	}
}

// moveMessage advances one message's flits front to back for one cycle,
// releasing each channel its tail departs. It reports whether any flit
// moved. Acquisitions succeed only for channels granted to the message in
// this step's arbitration phase that are actually free at the moment of
// the move (with same-cycle handoff a predicted release may not have
// applied when handoff chains exceed depth one; the acquisition is then
// skipped).
func (s *Sim) moveMessage(m *message) bool {
	if m.terminal() || m.frozen > 0 {
		return false
	}
	moved := false
	h := m.headIdx()
	last := len(m.path) - 1
	for i := h; i >= 0; i-- {
		if m.queued[i] == 0 {
			continue
		}
		if s.down(m.path[i]) {
			continue // a dead channel transfers nothing, not even to a sink
		}
		if i == last {
			if s.arrived(m) {
				// One flit per cycle into the destination's sink.
				m.queued[i]--
				m.consumed++
				m.headerConsumed = true
				s.flitsConsumed++
				moved = true
				if s.tracer != nil {
					ev := obsv.Ev(obsv.KindConsume, s.now)
					ev.Msg = m.id
					ev.Ch = m.path[i]
					s.tracer.Event(ev)
				}
				if m.queued[i] == 0 && s.noTailBehind(m, i) {
					s.release(m.path[i])
				}
				if m.delivered() {
					m.deliveredAt = s.now
					s.liveCount--
					if s.tracer != nil {
						ev := obsv.Ev(obsv.KindDeliver, s.now)
						ev.Msg = m.id
						ev.N = s.now - m.injectedAt + 1
						s.tracer.Event(ev)
					}
				}
				continue
			}
			// Adaptive header at the frontier of its materialized path:
			// extend it with the granted candidate, if any is free.
			if i == h && !m.headerConsumed {
				if c, won := s.granted(m.id); won && s.owner[c] == -1 {
					s.acquire(m, i, c)
					moved = true
				}
			}
			continue
		}
		next := m.path[i+1]
		if s.owner[next] == m.id {
			if m.queued[i+1] < s.cfg.BufferDepth && !s.down(next) {
				m.queued[i]--
				m.queued[i+1]++
				moved = true
				if s.tracer != nil {
					ev := obsv.Ev(obsv.KindFlit, s.now)
					ev.Msg = m.id
					ev.Ch = next
					s.tracer.Event(ev)
				}
				if m.queued[i] == 0 && s.noTailBehind(m, i) {
					s.release(m.path[i])
				}
			}
			continue
		}
		// Oblivious header acquisition of its fixed next channel.
		if i == h && !m.headerConsumed && s.owner[next] == -1 {
			if c, won := s.granted(m.id); won && c == next {
				s.acquire(m, i, c)
				moved = true
			}
		}
	}
	// Injection: source -> path[0].
	if m.injected < m.spec.Length && !m.held && s.now >= m.spec.InjectAt {
		if m.injected == 0 {
			if c, won := s.granted(m.id); won && s.owner[c] == -1 {
				if !m.adaptive() && c != m.path[0] {
					panic("sim: oblivious message granted a foreign channel")
				}
				s.owner[c] = m.id
				if m.adaptive() {
					m.path = append(m.path, c)
					m.queued = append(m.queued, 0)
				}
				m.queued[0]++
				m.injected++
				m.injectedAt = s.now
				moved = true
				if s.tracer != nil {
					ev := obsv.Ev(obsv.KindInject, s.now)
					ev.Msg = m.id
					ev.Ch = c
					s.tracer.Event(ev)
					ev.Kind = obsv.KindAcquire
					s.tracer.Event(ev)
				}
			}
		} else if first := m.path[0]; s.owner[first] == m.id && m.queued[0] < s.cfg.BufferDepth && !s.down(first) {
			m.queued[0]++
			m.injected++
			moved = true
			if s.tracer != nil {
				ev := obsv.Ev(obsv.KindFlit, s.now)
				ev.Msg = m.id
				ev.Ch = first
				s.tracer.Event(ev)
			}
		}
	}
	return moved
}

// acquire hands channel c to message m and moves its head flit forward
// from path index i; for adaptive messages it first extends the
// materialized path by the granted channel (for oblivious ones the slot
// already exists).
func (s *Sim) acquire(m *message, i int, c topology.ChannelID) {
	s.owner[c] = m.id
	if s.tracer != nil {
		ev := obsv.Ev(obsv.KindAcquire, s.now)
		ev.Msg = m.id
		ev.Ch = c
		s.tracer.Event(ev)
	}
	if m.adaptive() {
		m.path = append(m.path, c)
		m.queued = append(m.queued, 0)
	}
	if i >= 0 {
		m.queued[i]--
	}
	m.queued[i+1]++
	if i >= 0 && m.queued[i] == 0 && s.noTailBehind(m, i) {
		s.release(m.path[i])
	}
}

// noTailBehind reports whether none of this message's flits sit strictly
// behind path index i (at the source or buffered in an earlier channel) —
// the release condition for channel i once its buffer empties. While the
// source still holds flits it is O(1), and the scan exits at the first
// occupied slot, so the hot loop never pays a full prefix sum.
func (s *Sim) noTailBehind(m *message, i int) bool {
	if m.injected < m.spec.Length {
		return false
	}
	for j := 0; j < i; j++ {
		if m.queued[j] != 0 {
			return false
		}
	}
	return true
}

// AllDelivered reports whether every message has been fully consumed.
func (s *Sim) AllDelivered() bool {
	return s.liveCount == 0 && s.droppedCount == 0
}

// AllTerminal reports whether every message reached a terminal state:
// delivered, or dropped by a recovery policy.
func (s *Sim) AllTerminal() bool { return s.liveCount == 0 }

// LiveMessages returns the number of messages not yet delivered or
// dropped. The traffic engine polls it instead of scanning every message.
func (s *Sim) LiveMessages() int { return s.liveCount }

// FlitsConsumed returns the total number of flits consumed at
// destinations since New or Reset. The counter is monotone: recovery
// resets discard a message's consumed flits but do not rewind it, so
// window deltas measure accepted throughput.
func (s *Sim) FlitsConsumed() int64 { return s.flitsConsumed }

// quiescent reports whether the state can never change again without
// external intervention: nothing moved last cycle, no message is frozen,
// none is held, no injection lies in the future, and no faulted channel is
// scheduled to repair (a pending repair can unblock a stalled worm; a
// permanent failure cannot). In a quiescent state with undelivered
// messages the network is deadlocked.
func (s *Sim) quiescent() bool {
	if s.lastMoved || s.lastThawed {
		return false
	}
	for _, id := range s.active {
		m := &s.msgs[id]
		if m.terminal() {
			continue
		}
		if m.frozen > 0 || m.held || s.now <= m.spec.InjectAt {
			return false
		}
	}
	for _, until := range s.downUntil {
		if until > s.now && until != DownForever {
			return false
		}
	}
	return true
}

// Quiescent reports whether the simulation provably cannot move again
// without external intervention (see quiescent); with undelivered,
// undropped messages present this is an exact deadlock certificate. The
// fault-recovery watchdog uses it as its exact detection mode.
func (s *Sim) Quiescent() bool { return s.quiescent() }

// Result classifies the end state of Run.
type Result int

const (
	// ResultDelivered: every message was fully consumed.
	ResultDelivered Result = iota
	// ResultDeadlock: the network reached a stable state with undelivered
	// messages — no flit can ever move again.
	ResultDeadlock
	// ResultTimeout: the cycle budget was exhausted first.
	ResultTimeout
	// ResultDegraded: every message reached a terminal state, but some
	// were dropped by a recovery policy rather than delivered.
	ResultDegraded
)

// String renders the result.
func (r Result) String() string {
	switch r {
	case ResultDelivered:
		return "delivered"
	case ResultDeadlock:
		return "deadlock"
	case ResultTimeout:
		return "timeout"
	case ResultDegraded:
		return "degraded"
	}
	return fmt.Sprintf("Result(%d)", int(r))
}

// Outcome is the final report of Run.
type Outcome struct {
	Result      Result
	Cycles      int   // cycles executed
	Undelivered []int // message IDs not delivered (deadlock/timeout)
	Dropped     []int // message IDs removed by a drop recovery
}

// Run steps the simulation until every message is delivered or dropped,
// the network deadlocks (a provably stable non-empty state), or maxCycles
// elapse. Deadlock detection is exact, not timeout-based: the transition
// function is deterministic once injections are due, freezes expired and
// channel repairs done, so a cycle with no movement proves no movement can
// ever happen.
func (s *Sim) Run(maxCycles int) Outcome {
	for c := 0; c < maxCycles; c++ {
		if s.AllTerminal() {
			return s.finishRun(s.terminalOutcome())
		}
		s.Step()
		if !s.lastMoved && s.quiescent() {
			if s.AllTerminal() {
				return s.finishRun(s.terminalOutcome())
			}
			return s.finishRun(Outcome{Result: ResultDeadlock, Cycles: s.now, Undelivered: s.undelivered(), Dropped: s.droppedIDs()})
		}
	}
	if s.AllTerminal() {
		return s.finishRun(s.terminalOutcome())
	}
	return s.finishRun(Outcome{Result: ResultTimeout, Cycles: s.now, Undelivered: s.undelivered(), Dropped: s.droppedIDs()})
}

// finishRun emits the end-of-run trace events (an exact deadlock
// certificate when applicable, then the outcome) and passes the outcome
// through.
func (s *Sim) finishRun(out Outcome) Outcome {
	if s.tracer != nil {
		if out.Result == ResultDeadlock {
			ev := obsv.Ev(obsv.KindDeadlock, s.now)
			ev.N = len(out.Undelivered)
			s.tracer.Event(ev)
		}
		ev := obsv.Ev(obsv.KindOutcome, s.now)
		ev.N = out.Cycles
		ev.Note = out.Result.String()
		s.tracer.Event(ev)
	}
	return out
}

// terminalOutcome classifies an all-terminal state: delivered when every
// message arrived, degraded when drops were needed.
func (s *Sim) terminalOutcome() Outcome {
	dropped := s.droppedIDs()
	if len(dropped) == 0 {
		return Outcome{Result: ResultDelivered, Cycles: s.now}
	}
	return Outcome{Result: ResultDegraded, Cycles: s.now, Dropped: dropped}
}

func (s *Sim) undelivered() []int {
	var ids []int
	for i := range s.msgs {
		if !s.msgs[i].terminal() {
			ids = append(ids, i)
		}
	}
	return ids
}

func (s *Sim) droppedIDs() []int {
	var ids []int
	for i := range s.msgs {
		if s.msgs[i].dropped {
			ids = append(ids, i)
		}
	}
	return ids
}

// Clone returns a deep copy sharing only the immutable network and message
// specs. Arbiters that implement ArbiterCloner are deep-copied so each
// clone carries its own arbiter state; any other arbiter value is shared,
// which is only safe for stateless arbiters (all built-ins qualify and are
// marked StatelessArbiter). The search engines in internal/mcheck enforce
// this: they reject arbiters that implement neither interface.
func (s *Sim) Clone() *Sim {
	cfg := s.cfg
	if a, ok := cfg.Arbiter.(ArbiterCloner); ok {
		cfg.Arbiter = a.CloneArbiter()
	}
	c := &Sim{
		net:           s.net,
		cfg:           cfg,
		now:           s.now,
		owner:         append([]int(nil), s.owner...),
		downUntil:     append([]int(nil), s.downUntil...),
		waitingSince:  append([]int(nil), s.waitingSince...),
		active:        append([]int32(nil), s.active...),
		liveCount:     s.liveCount,
		droppedCount:  s.droppedCount,
		flitsConsumed: s.flitsConsumed,
		lastMoved:     s.lastMoved,
		lastThawed:    s.lastThawed,
	}
	// The scratch arenas deliberately stay zero: they are transient
	// per-step working memory and regrow lazily in the clone.
	c.msgs = make([]message, len(s.msgs))
	for i := range s.msgs {
		m := &s.msgs[i]
		cp := &c.msgs[i]
		*cp = *m
		cp.queued = append([]int(nil), m.queued...)
		cp.path = append([]topology.ChannelID(nil), m.path...)
	}
	return c
}

// Encode returns a canonical string of the mutable simulation state,
// excluding the cycle counter and statistics, for use as a visited-set key
// in state-space search. It is the human-readable sibling of EncodeTo,
// which produces an equivalent binary encoding without allocating and is
// what the search engines use on their hot path. Two states with equal encodings have identical
// future behaviour under identical choice sequences, provided every
// message's InjectAt is already due (searches arrange this by using Held
// instead of InjectAt).
func (s *Sim) Encode() string {
	var b strings.Builder
	for i := range s.msgs {
		m := &s.msgs[i]
		fmt.Fprintf(&b, "m%d:i%dc%df%d", m.id, m.injected, m.consumed, m.frozen)
		if m.held {
			b.WriteByte('h')
		}
		if m.headerConsumed {
			b.WriteByte('H')
		}
		if m.dropped {
			b.WriteByte('D')
		}
		b.WriteByte('[')
		for _, q := range m.queued {
			fmt.Fprintf(&b, "%d,", q)
		}
		b.WriteByte(']')
		if m.adaptive() {
			// The materialized route is part of an adaptive message's
			// state.
			b.WriteByte('p')
			for _, c := range m.path {
				fmt.Fprintf(&b, "%d.", c)
			}
		}
		b.WriteByte(';')
	}
	// Channel fault state, time-relative (remaining outage) so two states
	// that behave identically going forward encode identically regardless
	// of absolute cycle.
	for c, until := range s.downUntil {
		if until <= s.now {
			continue
		}
		if until == DownForever {
			fmt.Fprintf(&b, "X%d:P;", c)
		} else {
			fmt.Fprintf(&b, "X%d:%d;", c, until-s.now)
		}
	}
	return b.String()
}

// MsgView is a read-only snapshot of one message's state.
type MsgView struct {
	ID             int
	Spec           MessageSpec
	Injected       int
	Consumed       int
	HeaderConsumed bool
	Delivered      bool
	InNetwork      bool
	Frozen         int
	Held           bool
	Dropped        bool  // removed by a drop recovery
	Retries        int   // times recovery reset the message to its source
	Queued         []int // copy
	// Path is the materialized channel sequence (copy): fixed for
	// oblivious messages, the route chosen so far for adaptive ones.
	Path        []topology.ChannelID
	InjectedAt  int // cycle the header entered the network, -1 before
	DeliveredAt int // cycle the tail was consumed, -1 before
}

// Message returns a snapshot of message id.
func (s *Sim) Message(id int) MsgView {
	m := &s.msgs[id]
	return MsgView{
		ID:             m.id,
		Spec:           m.spec,
		Injected:       m.injected,
		Consumed:       m.consumed,
		HeaderConsumed: m.headerConsumed,
		Delivered:      m.delivered(),
		InNetwork:      m.inNetwork(),
		Frozen:         m.frozen,
		Held:           m.held,
		Dropped:        m.dropped,
		Retries:        m.retries,
		Queued:         append([]int(nil), m.queued...),
		Path:           append([]topology.ChannelID(nil), m.path...),
		InjectedAt:     m.injectedAt,
		DeliveredAt:    m.deliveredAt,
	}
}

// WaitsFor returns the channel message id's header is currently blocked on
// and the blocking owner's message ID. ok is false when the message is not
// blocked (not yet ready, delivered, header consumed, or some wanted
// channel is free). An adaptive message is blocked only when every
// candidate is occupied; the reported channel is then its first candidate
// (Definition 6 is specific to oblivious routing, where the wanted channel
// is unique).
func (s *Sim) WaitsFor(id int) (ch topology.ChannelID, owner int, ok bool) {
	m := &s.msgs[id]
	// A frozen or held message still "waits" in the Definition 6 sense
	// only if its next channel is occupied; compute eligibility manually
	// rather than via wantedChannels (which also filters frozen/held).
	if m.terminal() || m.headerConsumed {
		return 0, -1, false
	}
	var wants []topology.ChannelID
	if m.injected == 0 {
		if s.now < m.spec.InjectAt {
			return 0, -1, false
		}
		if m.adaptive() {
			wants = s.adaptiveCandidates(m, m.spec.Src, topology.None)
		} else {
			wants = m.path[:1]
		}
	} else {
		h := m.headIdx()
		if h < 0 {
			return 0, -1, false
		}
		if m.adaptive() {
			if h != len(m.path)-1 || s.arrived(m) {
				return 0, -1, false
			}
			in := m.path[h]
			wants = s.adaptiveCandidates(m, s.net.Channel(in).Dst, in)
		} else {
			if h == len(m.path)-1 {
				return 0, -1, false
			}
			wants = m.path[h+1 : h+2]
		}
	}
	if len(wants) == 0 {
		return 0, -1, false
	}
	for _, c := range wants {
		own := s.owner[c]
		if own == -1 || own == id {
			return 0, -1, false
		}
	}
	return wants[0], s.owner[wants[0]], true
}

// CanAdvance reports whether message id could move at least one flit this
// cycle, assuming it wins every arbitration it enters. Search code uses it
// to prune pointless adversarial stalls: freezing a message that cannot
// move is a no-op.
func (s *Sim) CanAdvance(id int) bool {
	m := &s.msgs[id]
	if m.terminal() || m.frozen > 0 {
		return false
	}
	s.predictReleases()
	acquirable := func(c topology.ChannelID) bool {
		return (s.owner[c] == -1 || s.freeing(c)) && !s.down(c)
	}
	h := m.headIdx()
	last := len(m.path) - 1
	for i := h; i >= 0; i-- {
		if m.queued[i] == 0 {
			continue
		}
		if s.down(m.path[i]) {
			continue
		}
		if i == last {
			if s.arrived(m) {
				return true // consumption always proceeds
			}
			for _, c := range s.wantedChannels(m) {
				if acquirable(c) {
					return true
				}
			}
			continue
		}
		next := m.path[i+1]
		if s.owner[next] == m.id && m.queued[i+1] < s.cfg.BufferDepth && !s.down(next) {
			return true
		}
		if i == h && !m.headerConsumed && acquirable(next) {
			return true
		}
	}
	if m.injected < m.spec.Length && !m.held && s.now >= m.spec.InjectAt {
		if m.injected == 0 {
			for _, c := range s.wantedChannels(m) {
				if acquirable(c) {
					return true
				}
			}
		} else if first := m.path[0]; s.owner[first] == m.id && m.queued[0] < s.cfg.BufferDepth && !s.down(first) {
			return true
		}
	}
	return false
}

// FaultBlocked reports whether message id is currently prevented from
// moving specifically by channel fault state, and if so the earliest cycle
// at which a scheduled repair could let it move again (DownForever when
// every blocking channel is permanently failed). A message that can still
// advance, or that is blocked purely by other messages, reports false. The
// fault-recovery watchdog uses this to excuse stalls that a pending repair
// will resolve and to intervene immediately on dead-path starvation.
func (s *Sim) FaultBlocked(id int) (repairAt int, blocked bool) {
	m := &s.msgs[id]
	if m.terminal() || m.frozen > 0 || s.CanAdvance(id) {
		return 0, false
	}
	// For each movement the message could make if the involved channels
	// were live, the move unblocks at the max repair cycle of its down
	// channels; the message unblocks at the min over moves.
	earliest := DownForever
	found := false
	consider := func(chans ...topology.ChannelID) {
		at := 0
		involved := false
		for _, c := range chans {
			if s.down(c) {
				involved = true
				if s.downUntil[c] > at {
					at = s.downUntil[c]
				}
			}
		}
		if involved && at < earliest {
			earliest = at
			found = true
		}
	}
	h := m.headIdx()
	last := len(m.path) - 1
	for i := h; i >= 0; i-- {
		if m.queued[i] == 0 {
			continue
		}
		if i == last {
			if s.arrived(m) {
				consider(m.path[i]) // consumption blocked by the dead last hop
			} else if i == h && !m.headerConsumed && m.adaptive() {
				// Frontier: any free-but-down candidate would do.
				raw := m.spec.Route(s.net.Channel(m.path[h]).Dst, m.path[h], m.spec.Dst)
				for _, c := range raw {
					if c < 0 || int(c) >= s.net.NumChannels() || s.net.Channel(c).Src != s.net.Channel(m.path[h]).Dst {
						continue
					}
					if s.owner[c] == -1 {
						consider(m.path[i], c)
					}
				}
			}
			continue
		}
		next := m.path[i+1]
		if s.owner[next] == m.id {
			if m.queued[i+1] < s.cfg.BufferDepth {
				consider(m.path[i], next)
			}
			continue
		}
		if i == h && !m.headerConsumed && s.owner[next] == -1 {
			consider(m.path[i], next)
		}
	}
	if m.injected < m.spec.Length && !m.held && s.now >= m.spec.InjectAt {
		if m.injected == 0 {
			if !m.adaptive() {
				if s.owner[m.path[0]] == -1 {
					consider(m.path[0])
				}
			} else {
				raw := m.spec.Route(m.spec.Src, topology.None, m.spec.Dst)
				for _, c := range raw {
					if c < 0 || int(c) >= s.net.NumChannels() || s.net.Channel(c).Src != m.spec.Src {
						continue
					}
					if s.owner[c] == -1 {
						consider(c)
					}
				}
			}
		} else if s.owner[m.path[0]] == m.id && m.queued[0] < s.cfg.BufferDepth {
			consider(m.path[0])
		}
	}
	if !found {
		return 0, false
	}
	return earliest, true
}

// Network returns the simulated network.
func (s *Sim) Network() *topology.Network { return s.net }

// BufferDepth returns the configured per-channel flit capacity.
func (s *Sim) BufferDepth() int { return s.cfg.BufferDepth }
