package sim

import (
	"bytes"
	"testing"

	"repro/internal/topology"
)

// Decode tests: DecodeFrom must reconstruct a state whose re-encoding is
// byte-identical, whose derived structures (channel ownership, live
// accounting) match the original, and — for scenarios whose stepping is
// choice-free — whose future under Step is the original's future.

// decodeScenarios returns scenarios with every InjectAt already due (the
// Encode/Decode contract), covering oblivious delivery, a cyclic
// deadlock, adaptive route materialization, and channel faults.
func decodeScenarios() []Scenario {
	line := lineScenario()
	for i := range line.Msgs {
		line.Msgs[i].InjectAt = 0
	}
	line.Name = "line0"

	net, ch := diamond()
	adaptive := Scenario{
		Name: "diamond-adaptive",
		Net:  net,
		Msgs: []MessageSpec{
			{Src: 0, Dst: 3, Length: 3, Route: diamondRoute(net, ch)},
			{Src: 0, Dst: 3, Length: 2, Route: diamondRoute(net, ch)},
		},
	}
	return []Scenario{line, ringScenario4(), adaptive}
}

// decodeCheck decodes orig's current encoding into dst and asserts the
// round trip is exact on every observable the search relies on.
func decodeCheck(t *testing.T, cycle int, orig, dst *Sim) {
	t.Helper()
	var enc []byte
	orig.EncodeTo(&enc)
	if err := dst.DecodeFrom(enc); err != nil {
		t.Fatalf("cycle %d: DecodeFrom: %v", cycle, err)
	}
	var re []byte
	dst.EncodeTo(&re)
	if !bytes.Equal(enc, re) {
		t.Fatalf("cycle %d: re-encoding differs:\n%x\n%x", cycle, enc, re)
	}
	for c := 0; c < orig.net.NumChannels(); c++ {
		if got, want := dst.Owner(topology.ChannelID(c)), orig.Owner(topology.ChannelID(c)); got != want {
			t.Fatalf("cycle %d: channel %d owner = %d, want %d", cycle, c, got, want)
		}
	}
	if dst.LiveMessages() != orig.LiveMessages() || dst.AllDelivered() != orig.AllDelivered() ||
		dst.AllTerminal() != orig.AllTerminal() {
		t.Fatalf("cycle %d: live accounting diverges (live %d vs %d)", cycle, dst.LiveMessages(), orig.LiveMessages())
	}
	for id := 0; id < orig.NumMessages(); id++ {
		if dst.InNetwork(id) != orig.InNetwork(id) || dst.Delivered(id) != orig.Delivered(id) ||
			dst.Dropped(id) != orig.Dropped(id) || dst.Frozen(id) != orig.Frozen(id) {
			t.Fatalf("cycle %d: message %d state diverges after decode", cycle, id)
		}
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	for _, sc := range decodeScenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			orig := sc.NewSim()
			// Decode into a deliberately dirty instance: stale messages,
			// stale ownership, stale faults — everything must be rebuilt.
			dst := sc.NewSim()
			dst.Run(5)
			dst.SetChannelDown(0, DownForever)
			for cycle := 0; cycle < 25; cycle++ {
				decodeCheck(t, cycle, orig, dst)
				orig.Step()
			}
		})
	}
}

// TestDecodeLockstepFuture: for contention-free scenarios (no two
// messages ever race for the same free channel, so Step makes no
// arbitration choices) a decoded state must replay the original's exact
// future cycle by cycle. This is the decode-and-continue property the
// batched frontier path depends on.
func TestDecodeLockstepFuture(t *testing.T) {
	for _, sc := range decodeScenarios()[:2] { // line0, ring4: choice-free
		t.Run(sc.Name, func(t *testing.T) {
			orig := sc.NewSim()
			orig.Step()
			orig.Step()
			var enc []byte
			orig.EncodeTo(&enc)
			dec := sc.NewSim()
			if err := dec.DecodeFrom(enc); err != nil {
				t.Fatal(err)
			}
			var a, b []byte
			for cycle := 0; cycle < 30; cycle++ {
				orig.Step()
				dec.Step()
				a, b = a[:0], b[:0]
				orig.EncodeTo(&a)
				dec.EncodeTo(&b)
				if !bytes.Equal(a, b) {
					t.Fatalf("cycle %d after decode: futures diverge", cycle)
				}
			}
		})
	}
}

// TestDecodeFaultState pins the time-relative fault re-anchoring: a
// timed outage K cycles from repair decodes as downUntil = K at cycle 0,
// and a permanent failure stays permanent.
func TestDecodeFaultState(t *testing.T) {
	sc := ringScenario4()
	orig := sc.NewSim()
	orig.Step()
	orig.Step()
	orig.SetChannelDown(1, orig.Now()+7)
	orig.FailChannel(2)
	var enc []byte
	orig.EncodeTo(&enc)
	dec := sc.NewSim()
	if err := dec.DecodeFrom(enc); err != nil {
		t.Fatal(err)
	}
	if got := dec.DownUntil(1); got != 7 {
		t.Fatalf("timed outage decoded to %d, want 7", got)
	}
	if got := dec.DownUntil(2); got != DownForever {
		t.Fatalf("permanent failure decoded to %d", got)
	}
	if dec.DownUntil(0) != 0 {
		t.Fatalf("healthy channel decoded as down")
	}
	// Re-encode must round-trip the relative times exactly.
	var re []byte
	dec.EncodeTo(&re)
	if !bytes.Equal(enc, re) {
		t.Fatalf("fault state does not round-trip:\n%x\n%x", enc, re)
	}
}

// TestDecodeDroppedAndFrozen covers the recovery-flag corners: a dropped
// message owns nothing after decode, and a frozen-but-delivered message
// stays in the active working set so its countdown keeps running.
func TestDecodeDroppedAndFrozen(t *testing.T) {
	sc := ringScenario4()
	orig := sc.NewSim()
	for i := 0; i < 4; i++ {
		orig.Step()
	}
	orig.DropMessage(0)
	orig.SetFrozen(1, 3)
	var enc []byte
	orig.EncodeTo(&enc)
	dec := sc.NewSim()
	if err := dec.DecodeFrom(enc); err != nil {
		t.Fatal(err)
	}
	decodeCheck(t, 0, orig, dec)
	if !dec.Dropped(0) {
		t.Fatal("dropped flag lost")
	}
	for c := 0; c < sc.Net.NumChannels(); c++ {
		if dec.Owner(topology.ChannelID(c)) == 0 {
			t.Fatalf("dropped message still owns channel %d after decode", c)
		}
	}
	if dec.Frozen(1) != 3 {
		t.Fatalf("freeze countdown = %d, want 3", dec.Frozen(1))
	}
}

func TestDecodeRejectsCorruptEncodings(t *testing.T) {
	sc := ringScenario4()
	orig := sc.NewSim()
	orig.Step()
	var enc []byte
	orig.EncodeTo(&enc)
	dec := sc.NewSim()
	for _, tc := range []struct {
		name string
		enc  []byte
	}{
		{"empty", nil},
		{"truncated", enc[:len(enc)/2]},
		{"flit-imbalance", func() []byte {
			bad := append([]byte(nil), enc...)
			bad[0] ^= 0x01 // injected count of message 0
			return bad
		}()},
	} {
		if err := dec.DecodeFrom(tc.enc); err == nil {
			t.Errorf("%s: corrupt encoding accepted", tc.name)
		}
	}
}
