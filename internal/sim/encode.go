package sim

import (
	"encoding/binary"
	"fmt"

	"repro/internal/topology"
)

// EncodeTo appends a compact, canonical binary encoding of the mutable
// simulation state to *dst. It captures exactly the same state as Encode —
// per-message progress, freeze/held/drop flags, buffered flit counts, the
// materialized route of adaptive messages, and time-relative channel fault
// state — but costs no formatting and, when *dst already has capacity, no
// allocation. Two states encode to identical bytes iff they have identical
// future behaviour under identical choice sequences (the same caveat as
// Encode: every message's InjectAt must already be due; searches arrange
// this via Held).
//
// The format is length-prefixed uvarints, so equal byte strings imply
// equal states even across different prefix lengths:
//
//	per message (ID order):
//	  uvarint injected, consumed, frozen
//	  1 flag byte (bit0 held, bit1 headerConsumed, bit2 dropped)
//	  uvarint len(queued), then uvarint per buffered-flit count
//	  adaptive only: uvarint len(path), then uvarint per channel ID
//	then, for each currently-down channel in ascending ID order:
//	  uvarint channelID+1, uvarint remaining outage (0 = permanent)
//
// The message count and each message's oblivious path are fixed for the
// lifetime of a Sim, so they are deliberately not encoded; encodings are
// only comparable between Sims instantiated from the same scenario.
//
// Stability contract: this format is a storage and wire format, not just
// a dedup key. The out-of-core search layer persists encodings in spill
// runs and frontier batches and reconstructs simulators from them with
// DecodeFrom, and the planned coordinator/worker split exchanges them
// between processes. Changing the field set, the field order, or the
// varint framing is therefore a breaking change to every consumer that
// round-trips states; extend only by appending and keep DecodeFrom, the
// spill-run reader and the frontier-batch codec in lockstep. Everything
// deliberately NOT captured here (wall-clock cycle, arbitration waiting
// times, delivery statistics, retry counters, per-cycle masks) must stay
// behaviorally irrelevant under StepWithPicks-driven exploration — that
// invariant is what makes decode-and-continue exact.
func (s *Sim) EncodeTo(dst *[]byte) {
	b := *dst
	for i := range s.msgs {
		m := &s.msgs[i]
		b = binary.AppendUvarint(b, uint64(m.injected))
		b = binary.AppendUvarint(b, uint64(m.consumed))
		b = binary.AppendUvarint(b, uint64(m.frozen))
		var flags byte
		if m.held {
			flags |= 1
		}
		if m.headerConsumed {
			flags |= 2
		}
		if m.dropped {
			flags |= 4
		}
		b = append(b, flags)
		b = binary.AppendUvarint(b, uint64(len(m.queued)))
		for _, q := range m.queued {
			b = binary.AppendUvarint(b, uint64(q))
		}
		if m.adaptive() {
			// The materialized route is part of an adaptive message's
			// state; an oblivious path is immutable and omitted.
			b = binary.AppendUvarint(b, uint64(len(m.path)))
			for _, c := range m.path {
				b = binary.AppendUvarint(b, uint64(c))
			}
		}
	}
	// Channel fault state, time-relative (remaining outage) so two states
	// that behave identically going forward encode identically regardless
	// of absolute cycle. Down channels are rare; most states append
	// nothing here.
	for c, until := range s.downUntil {
		if until <= s.now {
			continue
		}
		b = binary.AppendUvarint(b, uint64(c)+1)
		if until == DownForever {
			b = binary.AppendUvarint(b, 0)
		} else {
			b = binary.AppendUvarint(b, uint64(until-s.now))
		}
	}
	*dst = b
}

// DecodeFrom overwrites s's mutable state with the state enc describes,
// inverting EncodeTo. s must carry the same message set the encoding was
// produced from (same scenario, same Add order) — the encoding holds no
// specs, so only per-message progress is restored. All derived state is
// reconstructed: channel ownership from each worm's flit occupancy and
// release rule, the active working set, live/dropped counters, and
// time-relative channel outages re-anchored at cycle zero. Quantities the
// encoding deliberately omits are reset to neutral values (waiting times
// cleared, masks to None, statistics zeroed); they never influence
// behaviour under explicit-pick stepping, which is what makes a decoded
// state an exact substitute for the one that was encoded: stepping both
// with identical choice sequences yields identical encodings forever.
//
// The out-of-core search uses this to carry frontiers as compact byte
// batches instead of live simulators; it is equally the deserialization
// half of the future coordinator/worker wire protocol.
func (s *Sim) DecodeFrom(enc []byte) error {
	pos := 0
	next := func() (int, error) {
		v, n := binary.Uvarint(enc[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("sim: DecodeFrom: truncated varint at offset %d", pos)
		}
		pos += n
		return int(v), nil
	}

	s.now = 0
	for i := range s.owner {
		s.owner[i] = -1
	}
	for i := range s.downUntil {
		s.downUntil[i] = 0
	}
	for len(s.waitingSince) < len(s.msgs) {
		s.waitingSince = append(s.waitingSince, -1)
	}
	for i := range s.waitingSince {
		s.waitingSince[i] = -1
	}
	s.lastMoved = false
	s.lastThawed = false
	s.active = s.active[:0]
	s.liveCount = 0
	s.droppedCount = 0
	var consumedTotal int64

	for i := range s.msgs {
		m := &s.msgs[i]
		injected, err := next()
		if err != nil {
			return err
		}
		consumed, err := next()
		if err != nil {
			return err
		}
		frozen, err := next()
		if err != nil {
			return err
		}
		if pos >= len(enc) {
			return fmt.Errorf("sim: DecodeFrom: truncated flags for message %d", i)
		}
		flags := enc[pos]
		pos++
		nq, err := next()
		if err != nil {
			return err
		}
		if !m.adaptive() && nq != len(m.path) {
			return fmt.Errorf("sim: DecodeFrom: message %d has %d queue slots, encoding has %d", i, len(m.path), nq)
		}
		m.queued = m.queued[:0]
		flits := 0
		for j := 0; j < nq; j++ {
			q, err := next()
			if err != nil {
				return err
			}
			m.queued = append(m.queued, q)
			flits += q
		}
		if m.adaptive() {
			np, err := next()
			if err != nil {
				return err
			}
			if np != nq {
				return fmt.Errorf("sim: DecodeFrom: adaptive message %d path length %d != queue length %d", i, np, nq)
			}
			m.path = m.path[:0]
			for j := 0; j < np; j++ {
				c, err := next()
				if err != nil {
					return err
				}
				if c >= s.net.NumChannels() {
					return fmt.Errorf("sim: DecodeFrom: adaptive message %d path channel %d out of range", i, c)
				}
				m.path = append(m.path, topology.ChannelID(c))
			}
		}
		m.injected = injected
		m.consumed = consumed
		m.frozen = frozen
		m.held = flags&1 != 0
		m.headerConsumed = flags&2 != 0
		m.dropped = flags&4 != 0
		m.mask = topology.None
		m.retries = 0
		m.injectedAt = -1
		if m.injected > 0 {
			m.injectedAt = 0
		}
		m.deliveredAt = -1
		if m.delivered() {
			m.deliveredAt = 0
		}
		if !m.dropped && flits != m.injected-m.consumed {
			return fmt.Errorf("sim: DecodeFrom: message %d buffers %d flits, injected-consumed is %d",
				i, flits, m.injected-m.consumed)
		}
		if m.dropped {
			s.droppedCount++
		}
		if !m.terminal() {
			s.liveCount++
		}
		if !m.terminal() || m.frozen > 0 {
			s.active = append(s.active, int32(i)) // message IDs ascend, so active stays sorted
		}
		consumedTotal += int64(consumed)

		// Channel ownership: the worm holds every channel its header has
		// entered (all of them once the header reached the sink) except
		// those its tail has fully departed — queue empty with no flit, at
		// the source or in an earlier channel, still behind (the release
		// rule in moveMessage/noTailBehind).
		if m.dropped || m.injected == 0 {
			continue
		}
		hi := len(m.path) - 1
		if !m.headerConsumed {
			hi = m.headIdx()
		}
		behind := m.injected < m.spec.Length
		for j := 0; j <= hi; j++ {
			if m.queued[j] != 0 || behind {
				s.owner[m.path[j]] = m.id
			}
			if m.queued[j] != 0 {
				behind = true
			}
		}
	}
	s.flitsConsumed = consumedTotal

	for pos < len(enc) {
		c, err := next()
		if err != nil {
			return err
		}
		if c == 0 || c > s.net.NumChannels() {
			return fmt.Errorf("sim: DecodeFrom: down-channel id %d out of range", c-1)
		}
		rem, err := next()
		if err != nil {
			return err
		}
		if rem == 0 {
			s.downUntil[c-1] = DownForever
		} else {
			s.downUntil[c-1] = rem
		}
	}
	return nil
}
