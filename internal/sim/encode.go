package sim

import "encoding/binary"

// EncodeTo appends a compact, canonical binary encoding of the mutable
// simulation state to *dst. It captures exactly the same state as Encode —
// per-message progress, freeze/held/drop flags, buffered flit counts, the
// materialized route of adaptive messages, and time-relative channel fault
// state — but costs no formatting and, when *dst already has capacity, no
// allocation. Two states encode to identical bytes iff they have identical
// future behaviour under identical choice sequences (the same caveat as
// Encode: every message's InjectAt must already be due; searches arrange
// this via Held).
//
// The format is length-prefixed uvarints, so equal byte strings imply
// equal states even across different prefix lengths:
//
//	per message (ID order):
//	  uvarint injected, consumed, frozen
//	  1 flag byte (bit0 held, bit1 headerConsumed, bit2 dropped)
//	  uvarint len(queued), then uvarint per buffered-flit count
//	  adaptive only: uvarint len(path), then uvarint per channel ID
//	then, for each currently-down channel in ascending ID order:
//	  uvarint channelID+1, uvarint remaining outage (0 = permanent)
//
// The message count and each message's oblivious path are fixed for the
// lifetime of a Sim, so they are deliberately not encoded; encodings are
// only comparable between Sims instantiated from the same scenario.
func (s *Sim) EncodeTo(dst *[]byte) {
	b := *dst
	for i := range s.msgs {
		m := &s.msgs[i]
		b = binary.AppendUvarint(b, uint64(m.injected))
		b = binary.AppendUvarint(b, uint64(m.consumed))
		b = binary.AppendUvarint(b, uint64(m.frozen))
		var flags byte
		if m.held {
			flags |= 1
		}
		if m.headerConsumed {
			flags |= 2
		}
		if m.dropped {
			flags |= 4
		}
		b = append(b, flags)
		b = binary.AppendUvarint(b, uint64(len(m.queued)))
		for _, q := range m.queued {
			b = binary.AppendUvarint(b, uint64(q))
		}
		if m.adaptive() {
			// The materialized route is part of an adaptive message's
			// state; an oblivious path is immutable and omitted.
			b = binary.AppendUvarint(b, uint64(len(m.path)))
			for _, c := range m.path {
				b = binary.AppendUvarint(b, uint64(c))
			}
		}
	}
	// Channel fault state, time-relative (remaining outage) so two states
	// that behave identically going forward encode identically regardless
	// of absolute cycle. Down channels are rare; most states append
	// nothing here.
	for c, until := range s.downUntil {
		if until <= s.now {
			continue
		}
		b = binary.AppendUvarint(b, uint64(c)+1)
		if until == DownForever {
			b = binary.AppendUvarint(b, 0)
		} else {
			b = binary.AppendUvarint(b, uint64(until-s.now))
		}
	}
	*dst = b
}
