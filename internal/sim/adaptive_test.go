package sim

import (
	"testing"

	"repro/internal/topology"
)

// diamond builds a 4-node diamond: a -> {b, c} -> d, with return channel
// d -> a for strong connectivity.
func diamond() (*topology.Network, map[string]topology.ChannelID) {
	net := topology.New("diamond")
	a := net.AddNode("a")
	b := net.AddNode("b")
	c := net.AddNode("c")
	d := net.AddNode("d")
	ch := map[string]topology.ChannelID{
		"ab": net.AddChannel(a, b, 0, "ab"),
		"ac": net.AddChannel(a, c, 0, "ac"),
		"bd": net.AddChannel(b, d, 0, "bd"),
		"cd": net.AddChannel(c, d, 0, "cd"),
		"da": net.AddChannel(d, a, 0, "da"),
	}
	return net, ch
}

// diamondRoute routes a -> d adaptively over both branches.
func diamondRoute(net *topology.Network, ch map[string]topology.ChannelID) RouteFunc {
	return func(at topology.NodeID, _ topology.ChannelID, dst topology.NodeID) []topology.ChannelID {
		switch net.Node(at).Label {
		case "a":
			return []topology.ChannelID{ch["ab"], ch["ac"]}
		case "b":
			return []topology.ChannelID{ch["bd"]}
		case "c":
			return []topology.ChannelID{ch["cd"]}
		}
		return nil
	}
}

func TestAdaptiveEngineBasics(t *testing.T) {
	net, ch := diamond()
	s := New(net, Config{})
	id := s.MustAdd(MessageSpec{Src: 0, Dst: 3, Length: 3, Route: diamondRoute(net, ch)})
	out := s.Run(100)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v", out.Result)
	}
	mv := s.Message(id)
	if len(mv.Path) != 2 {
		t.Fatalf("path = %v", mv.Path)
	}
	if !net.IsPath(0, 3, mv.Path) {
		t.Fatalf("materialized path invalid: %v", mv.Path)
	}
}

func TestAdaptiveEngineTakesFreeBranch(t *testing.T) {
	net, ch := diamond()
	s := New(net, Config{})
	// Blocker owns the ab branch.
	blocker := s.MustAdd(MessageSpec{Src: 0, Dst: 1, Length: 30, Path: []topology.ChannelID{ch["ab"]}})
	msg := s.MustAdd(MessageSpec{Src: 0, Dst: 3, Length: 2, Route: diamondRoute(net, ch), InjectAt: 1})
	out := s.Run(200)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v", out.Result)
	}
	mv := s.Message(msg)
	if mv.Path[0] != ch["ac"] {
		t.Fatalf("adaptive message took %v instead of the free branch", mv.Path)
	}
	if mv.DeliveredAt > 6 {
		t.Fatalf("delayed until %d", mv.DeliveredAt)
	}
	_ = blocker
}

func TestAdaptiveCandidateFiltering(t *testing.T) {
	net, ch := diamond()
	s := New(net, Config{})
	// A route function that returns garbage candidates along with good
	// ones: wrong-source channels, out-of-range IDs.
	route := func(at topology.NodeID, in topology.ChannelID, dst topology.NodeID) []topology.ChannelID {
		good := diamondRoute(net, ch)(at, in, dst)
		return append([]topology.ChannelID{99, -1, ch["da"]}, good...)
	}
	id := s.MustAdd(MessageSpec{Src: 0, Dst: 3, Length: 1, Route: route})
	out := s.Run(100)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v", out.Result)
	}
	for _, c := range s.Message(id).Path {
		if c == ch["da"] || c == 99 {
			t.Fatalf("invalid candidate used: %v", s.Message(id).Path)
		}
	}
}

func TestAdaptiveEncodeIncludesRoute(t *testing.T) {
	net, ch := diamond()
	mk := func(prefer string) *Sim {
		s := New(net, Config{})
		route := func(at topology.NodeID, in topology.ChannelID, dst topology.NodeID) []topology.ChannelID {
			if net.Node(at).Label == "a" {
				return []topology.ChannelID{ch[prefer]}
			}
			return diamondRoute(net, ch)(at, in, dst)
		}
		s.MustAdd(MessageSpec{Src: 0, Dst: 3, Length: 2, Route: route})
		s.Step()
		return s
	}
	viaB := mk("ab")
	viaC := mk("ac")
	if viaB.Encode() == viaC.Encode() {
		t.Fatal("different materialized routes must encode differently")
	}
}

func TestAdaptiveWaitsForAllCandidatesBlocked(t *testing.T) {
	net, ch := diamond()
	s := New(net, Config{})
	b1 := s.MustAdd(MessageSpec{Src: 0, Dst: 1, Length: 30, Path: []topology.ChannelID{ch["ab"]}})
	b2 := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 30, Path: []topology.ChannelID{ch["ac"]}})
	msg := s.MustAdd(MessageSpec{Src: 0, Dst: 3, Length: 1, Route: diamondRoute(net, ch), InjectAt: 1})
	s.Step()
	s.Step()
	ch0, owner, ok := s.WaitsFor(msg)
	if !ok {
		t.Fatal("adaptive message with all candidates blocked should wait")
	}
	if ch0 != ch["ab"] || owner != b1 {
		t.Fatalf("WaitsFor = %v, %v", ch0, owner)
	}
	_ = b2
	// Free one branch: no longer waiting.
	s2 := New(net, Config{})
	s2.MustAdd(MessageSpec{Src: 0, Dst: 1, Length: 30, Path: []topology.ChannelID{ch["ab"]}})
	m2 := s2.MustAdd(MessageSpec{Src: 0, Dst: 3, Length: 1, Route: diamondRoute(net, ch), InjectAt: 1})
	s2.Step()
	s2.Step()
	if _, _, ok := s2.WaitsFor(m2); ok {
		t.Fatal("message with a free candidate is not blocked")
	}
}

func TestAdaptiveCloneIndependence(t *testing.T) {
	net, ch := diamond()
	s := New(net, Config{})
	s.MustAdd(MessageSpec{Src: 0, Dst: 3, Length: 3, Route: diamondRoute(net, ch)})
	s.Step()
	c := s.Clone()
	s.Step()
	s.Step()
	if c.Encode() == s.Encode() {
		t.Fatal("clone shares adaptive state with the original")
	}
	if out := c.Run(100); out.Result != ResultDelivered {
		t.Fatalf("clone result = %v", out.Result)
	}
}
