package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// checkInvariants verifies the structural invariants of a simulator state:
// flit conservation, contiguous worm occupancy, ownership consistency with
// queue contents, and buffer capacity.
func checkInvariants(t *testing.T, s *Sim) {
	t.Helper()
	perChannel := make(map[topology.ChannelID]int)
	for id := 0; id < s.NumMessages(); id++ {
		mv := s.Message(id)
		inQueues := 0
		for i, q := range mv.Queued {
			if q < 0 || q > s.BufferDepth() {
				t.Fatalf("m%d queue %d holds %d flits (depth %d)", id, i, q, s.BufferDepth())
			}
			inQueues += q
			if q > 0 {
				perChannel[mv.Path[i]] += q
				if owner := s.Owner(mv.Path[i]); owner != id {
					t.Fatalf("m%d has flits in channel %d owned by %d", id, mv.Path[i], owner)
				}
			}
		}
		// Conservation: at source + in network + consumed = length.
		atSource := mv.Spec.Length - mv.Injected
		if atSource+inQueues+mv.Consumed != mv.Spec.Length || mv.Injected-inQueues != mv.Consumed {
			t.Fatalf("m%d flit conservation broken: source %d, queued %d, consumed %d, length %d",
				id, atSource, inQueues, mv.Consumed, mv.Spec.Length)
		}
		// Occupied channels form one contiguous run (a worm never splits
		// around an empty owned gap beyond transient single-flit motion...
		// the engine moves one flit per channel per cycle, so runs stay
		// contiguous).
		first, last := -1, -1
		for i, q := range mv.Queued {
			if q > 0 {
				if first < 0 {
					first = i
				}
				last = i
			}
		}
		if first >= 0 {
			for i := first; i <= last; i++ {
				if mv.Queued[i] == 0 && s.BufferDepth() == 1 {
					t.Fatalf("m%d worm has a gap at %d with one-flit buffers: %v", id, i, mv.Queued)
				}
			}
		}
		if mv.Delivered && inQueues != 0 {
			t.Fatalf("m%d delivered but still queued: %v", id, mv.Queued)
		}
	}
	// Atomic allocation: one message per channel is implied by the
	// ownership check above; also verify capacity per physical channel.
	for c, n := range perChannel {
		if n > s.BufferDepth() {
			t.Fatalf("channel %d holds %d flits (depth %d)", c, n, s.BufferDepth())
		}
	}
	// Channels owned by nobody must hold no flits (ownership released only
	// after the tail left).
	for _, ch := range s.Network().Channels() {
		if s.Owner(ch.ID) == -1 && perChannel[ch.ID] != 0 {
			t.Fatalf("free channel %d holds flits", ch.ID)
		}
	}
}

// randomScenario builds a random multi-message scenario on a bidirectional
// ring with BFS-shortest paths.
func randomScenario(seed int64, handoff bool, depth int) *Sim {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(4)
	net := topology.NewRing(n, true)
	s := New(net, Config{BufferDepth: depth, SameCycleHandoff: handoff})
	msgs := 2 + rng.Intn(5)
	for i := 0; i < msgs; i++ {
		src := topology.NodeID(rng.Intn(n))
		dst := topology.NodeID(rng.Intn(n))
		if src == dst {
			continue
		}
		path := net.ShortestPath(src, dst)
		s.MustAdd(MessageSpec{
			Src: src, Dst: dst,
			Length:   1 + rng.Intn(6),
			Path:     path,
			InjectAt: rng.Intn(8),
		})
	}
	return s
}

// Property: the structural invariants hold after every cycle of random
// scenarios, in both handoff modes and at several buffer depths.
func TestSimInvariantsProperty(t *testing.T) {
	f := func(seed int64, handoff bool, depthRaw uint8) bool {
		depth := 1 + int(depthRaw%3)
		s := randomScenario(seed, handoff, depth)
		for c := 0; c < 60; c++ {
			s.Step()
			checkInvariants(t, s)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: on a bidirectional ring with shortest paths, one-message
// scenarios always deliver, and the outcome of Run is stable under
// re-running a clone.
func TestSimRunDeterministicProperty(t *testing.T) {
	f := func(seed int64, handoff bool) bool {
		s := randomScenario(seed, handoff, 1)
		c := s.Clone()
		out1 := s.Run(5000)
		out2 := c.Run(5000)
		if out1.Result != out2.Result || out1.Cycles != out2.Cycles {
			return false
		}
		if out1.Result == ResultTimeout {
			return false // 5000 cycles is far beyond any legit run here
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: encodings are equal iff the observable message states are
// equal, along random runs.
func TestEncodeConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := randomScenario(seed, false, 1)
		b := randomScenario(seed, false, 1)
		for c := 0; c < 40; c++ {
			if a.Encode() != b.Encode() {
				return false
			}
			a.Step()
			b.Step()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Same-cycle handoff can only speed things up: a delivered strict-mode
// scenario also delivers with handoff, no later.
func TestHandoffNeverSlower(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		strict := randomScenario(seed, false, 1)
		fast := randomScenario(seed, true, 1)
		o1 := strict.Run(5000)
		o2 := fast.Run(5000)
		if o1.Result == ResultDelivered && o2.Result == ResultDelivered {
			if o2.Cycles > o1.Cycles {
				t.Fatalf("seed %d: handoff slower (%d > %d cycles)", seed, o2.Cycles, o1.Cycles)
			}
		}
	}
}
