package sim

import "repro/internal/topology"

// Scenario bundles a network, a simulator configuration and a fixed message
// set: everything needed to instantiate identical simulations repeatedly.
// The reachability searches in the mcheck package and the paper-network
// constructions in papernets exchange Scenario values.
type Scenario struct {
	Name string
	Net  *topology.Network
	Cfg  Config
	Msgs []MessageSpec
}

// NewSim instantiates a fresh simulator with every message added. It panics
// if any message is invalid; scenarios are static test fixtures whose
// validity is a programming invariant.
func (sc Scenario) NewSim() *Sim {
	s := New(sc.Net, sc.Cfg)
	for _, m := range sc.Msgs {
		s.MustAdd(m)
	}
	return s
}

// WithLengths returns a copy of the scenario with per-message lengths
// replaced (lengths[i] applies to Msgs[i]). Entries with value 0 keep the
// original length.
func (sc Scenario) WithLengths(lengths []int) Scenario {
	out := sc
	out.Msgs = append([]MessageSpec(nil), sc.Msgs...)
	for i, l := range lengths {
		if i >= len(out.Msgs) {
			break
		}
		if l > 0 {
			out.Msgs[i].Length = l
		}
	}
	return out
}

// WithInjectTimes returns a copy of the scenario with per-message injection
// times replaced.
func (sc Scenario) WithInjectTimes(times []int) Scenario {
	out := sc
	out.Msgs = append([]MessageSpec(nil), sc.Msgs...)
	for i, at := range times {
		if i >= len(out.Msgs) {
			break
		}
		out.Msgs[i].InjectAt = at
	}
	return out
}

// WithBufferDepth returns a copy of the scenario with the channel buffer
// depth replaced.
func (sc Scenario) WithBufferDepth(depth int) Scenario {
	out := sc
	out.Cfg.BufferDepth = depth
	return out
}
