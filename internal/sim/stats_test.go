package sim

import "testing"

// TestPercentileEdgeCases pins the nearest-rank percentile on the
// boundary inputs Collect can hand it: no samples, one sample, and
// heavily tied samples.
func TestPercentileEdgeCases(t *testing.T) {
	tests := []struct {
		name   string
		sorted []int
		p      int
		want   int
	}{
		{"empty p50", nil, 50, 0},
		{"empty p99", []int{}, 99, 0},
		{"single p50", []int{7}, 50, 7},
		{"single p99", []int{7}, 99, 7},
		{"single p0 clamps to first", []int{7}, 0, 7},
		{"single p100", []int{7}, 100, 7},
		{"two samples p50 is first", []int{3, 9}, 50, 3},
		{"two samples p51 is second", []int{3, 9}, 51, 9},
		{"all ties", []int{4, 4, 4, 4}, 95, 4},
		{"ties at median", []int{1, 5, 5, 5, 9}, 50, 5},
		{"ties at tail", []int{1, 2, 9, 9, 9, 9, 9, 9, 9, 9}, 99, 9},
		{"p99 of 100 is 99th", seq(100), 99, 99},
		{"p99 of 1000 is 990th", seq(1000), 99, 990},
		{"p50 of 10 is 5th", seq(10), 50, 5},
		{"p100 clamps to last", seq(10), 100, 10},
		{"p over 100 clamps to last", seq(10), 150, 10},
	}
	for _, tt := range tests {
		if got := percentile(tt.sorted, tt.p); got != tt.want {
			t.Errorf("%s: percentile(%v, %d) = %d, want %d", tt.name, tt.sorted, tt.p, got, tt.want)
		}
	}
}

// seq returns 1..n sorted.
func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i + 1
	}
	return s
}

// TestStatsNoDeliveries checks the zero-delivery path: percentiles,
// averages and fractions all stay zero rather than dividing by zero.
func TestStatsNoDeliveries(t *testing.T) {
	st := Stats{Messages: 3}
	if f := st.DeliveredFraction(); f != 0 {
		t.Errorf("DeliveredFraction with nothing delivered = %v, want 0", f)
	}
	var empty Stats
	if f := empty.DeliveredFraction(); f != 0 {
		t.Errorf("DeliveredFraction with no messages = %v, want 0", f)
	}
}
