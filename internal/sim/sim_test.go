package sim

import (
	"testing"

	"repro/internal/topology"
)

// line returns a unidirectional chain 0 -> 1 -> ... -> n-1 with a back
// channel from the last node to node 0 so validation (strong connectivity)
// holds if anyone cares; the back channel is unused by tests.
func line(n int) *topology.Network {
	net := topology.New("line")
	net.AddNodes(n)
	for i := 0; i < n-1; i++ {
		net.AddChannel(topology.NodeID(i), topology.NodeID(i+1), 0, "")
	}
	net.AddChannel(topology.NodeID(n-1), 0, 0, "back")
	return net
}

// pathTo returns channels 0..h-1 of the line network (the first h hops).
func pathTo(net *topology.Network, h int) []topology.ChannelID {
	p := make([]topology.ChannelID, h)
	for i := range p {
		p[i] = topology.ChannelID(i)
	}
	return p
}

func TestAddValidation(t *testing.T) {
	net := line(3)
	s := New(net, Config{})
	cases := []MessageSpec{
		{Src: 0, Dst: 2, Length: 0, Path: pathTo(net, 2)},               // bad length
		{Src: 0, Dst: 0, Length: 1, Path: pathTo(net, 2)},               // src == dst
		{Src: 0, Dst: 2, Length: 1, Path: nil},                          // no path
		{Src: 0, Dst: 2, Length: 1, Path: pathTo(net, 1)},               // wrong path end
		{Src: 0, Dst: 2, Length: 1, Path: pathTo(net, 2), InjectAt: -1}, // negative time
	}
	for i, spec := range cases {
		if _, err := s.Add(spec); err == nil {
			t.Fatalf("case %d should fail: %+v", i, spec)
		}
	}
	if id, err := s.Add(MessageSpec{Src: 0, Dst: 2, Length: 3, Path: pathTo(net, 2)}); err != nil || id != 0 {
		t.Fatalf("valid Add = %d, %v", id, err)
	}
}

func TestSingleMessagePipelineLatency(t *testing.T) {
	// H hops, L flits, buffer depth 1: delivery at cycle H + L - 1.
	for _, tc := range []struct{ h, l int }{{1, 1}, {3, 1}, {1, 4}, {4, 3}, {5, 5}} {
		net := line(tc.h + 1)
		s := New(net, Config{})
		id := s.MustAdd(MessageSpec{Src: 0, Dst: topology.NodeID(tc.h), Length: tc.l, Path: pathTo(net, tc.h)})
		out := s.Run(1000)
		if out.Result != ResultDelivered {
			t.Fatalf("h=%d l=%d: result %v", tc.h, tc.l, out.Result)
		}
		mv := s.Message(id)
		want := tc.h + tc.l - 1
		if mv.DeliveredAt != want {
			t.Fatalf("h=%d l=%d: deliveredAt = %d; want %d", tc.h, tc.l, mv.DeliveredAt, want)
		}
		if mv.InjectedAt != 0 {
			t.Fatalf("injectedAt = %d", mv.InjectedAt)
		}
	}
}

func TestWormholePipelining(t *testing.T) {
	// With buffer depth 1 a 3-flit worm on a 3-hop path occupies 3 channels
	// simultaneously mid-flight.
	net := line(4)
	s := New(net, Config{})
	id := s.MustAdd(MessageSpec{Src: 0, Dst: 3, Length: 3, Path: pathTo(net, 3)})
	s.Step() // header -> c0
	s.Step() // header -> c1, flit2 -> c0
	s.Step() // header -> c2, flit2 -> c1, flit3 -> c0
	mv := s.Message(id)
	if mv.Queued[0] != 1 || mv.Queued[1] != 1 || mv.Queued[2] != 1 {
		t.Fatalf("queued = %v; want [1 1 1]", mv.Queued)
	}
	for c := 0; c < 3; c++ {
		if s.Owner(topology.ChannelID(c)) != id {
			t.Fatalf("channel %d owner = %d", c, s.Owner(topology.ChannelID(c)))
		}
	}
}

func TestChannelReleaseAfterTail(t *testing.T) {
	net := line(3)
	s := New(net, Config{})
	id := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 1, Path: pathTo(net, 2)})
	s.Step() // header -> c0
	if s.Owner(0) != id {
		t.Fatal("c0 should be owned after injection")
	}
	s.Step() // header (also tail) -> c1; c0 released at end of cycle
	if s.Owner(0) != -1 {
		t.Fatal("c0 should be released after the tail leaves")
	}
	if s.Owner(1) != id {
		t.Fatal("c1 should be owned")
	}
	s.Step() // consumed
	if s.Owner(1) != -1 {
		t.Fatal("c1 should be released after consumption")
	}
	if !s.AllDelivered() {
		t.Fatal("message should be delivered")
	}
}

func TestAtomicBufferAllocationStrict(t *testing.T) {
	// Message B may acquire a channel only strictly after A's tail left it:
	// same-cycle release+acquire must not happen.
	net := line(3)
	s := New(net, Config{})
	a := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 1, Path: pathTo(net, 2), Label: "A"})
	b := s.MustAdd(MessageSpec{Src: 0, Dst: 1, Length: 1, Path: pathTo(net, 1), InjectAt: 1, Label: "B"})
	s.Step() // A's header -> c0. B not ready yet.
	s.Step() // A moves to c1 and releases c0 at END of cycle; B requests c0 but it was owned at snapshot.
	if s.Message(b).Injected != 0 {
		t.Fatal("B must not inject in the same cycle A releases c0")
	}
	s.Step() // now B acquires c0
	if s.Message(b).Injected != 1 {
		t.Fatal("B should inject once c0 is free")
	}
	_ = a
}

func TestArbitrationSingleWinner(t *testing.T) {
	// Two messages inject into the same channel at cycle 0; exactly one
	// wins; the other follows after the first's tail clears.
	net := line(3)
	s := New(net, Config{Arbiter: LowestIDArbiter{}})
	a := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 2, Path: pathTo(net, 2), Label: "A"})
	b := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 2, Path: pathTo(net, 2), Label: "B"})
	cons := s.Contentions()
	if len(cons) != 1 || cons[0].Channel != 0 || len(cons[0].Contenders) != 2 {
		t.Fatalf("contentions = %+v", cons)
	}
	s.Step()
	if s.Message(a).Injected != 1 || s.Message(b).Injected != 0 {
		t.Fatalf("after arbitration: A=%d B=%d flits injected", s.Message(a).Injected, s.Message(b).Injected)
	}
	out := s.Run(100)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v", out.Result)
	}
	if s.Message(b).DeliveredAt <= s.Message(a).DeliveredAt {
		t.Fatal("B should finish after A")
	}
}

func TestFIFOArbiterStarvationFree(t *testing.T) {
	// A long-waiting message beats a newcomer under FIFO arbitration.
	net := line(3)
	s := New(net, Config{})
	blocker := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 3, Path: pathTo(net, 2), Label: "blocker"})
	waiter := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 1, Path: pathTo(net, 2), InjectAt: 1, Label: "waiter"})
	newcomer := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 1, Path: pathTo(net, 2), InjectAt: 4, Label: "newcomer"})
	_ = blocker
	out := s.Run(100)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v", out.Result)
	}
	if s.Message(newcomer).DeliveredAt <= s.Message(waiter).DeliveredAt {
		t.Fatalf("newcomer delivered at %d before waiter at %d",
			s.Message(newcomer).DeliveredAt, s.Message(waiter).DeliveredAt)
	}
}

func TestPriorityArbiter(t *testing.T) {
	net := line(3)
	s := New(net, Config{Arbiter: PriorityArbiter{Order: []int{1}}})
	a := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 1, Path: pathTo(net, 2)})
	b := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 1, Path: pathTo(net, 2)})
	s.Step()
	if s.Message(b).Injected != 1 || s.Message(a).Injected != 0 {
		t.Fatal("priority order not respected")
	}
}

// ringDeadlock builds the canonical 4-node unidirectional ring deadlock:
// four messages, each two hops, all injected at cycle 0.
func ringDeadlock(t *testing.T, length int) (*Sim, []int) {
	t.Helper()
	net := topology.NewRing(4, false)
	s := New(net, Config{})
	var ids []int
	for i := 0; i < 4; i++ {
		src := topology.NodeID(i)
		dst := topology.NodeID((i + 2) % 4)
		path := []topology.ChannelID{topology.ChannelID(i), topology.ChannelID((i + 1) % 4)}
		id := s.MustAdd(MessageSpec{Src: src, Dst: dst, Length: length, Path: path})
		ids = append(ids, id)
	}
	return s, ids
}

func TestRingDeadlockDetected(t *testing.T) {
	s, ids := ringDeadlock(t, 2)
	out := s.Run(1000)
	if out.Result != ResultDeadlock {
		t.Fatalf("result = %v; want deadlock", out.Result)
	}
	if len(out.Undelivered) != 4 {
		t.Fatalf("undelivered = %v; want all four", out.Undelivered)
	}
	// Every message waits on a channel held by the next one: Definition 6.
	for i, id := range ids {
		ch, owner, ok := s.WaitsFor(id)
		if !ok {
			t.Fatalf("message %d not blocked", id)
		}
		wantOwner := ids[(i+1)%4]
		if owner != wantOwner {
			t.Fatalf("message %d waits on %d held by %d; want %d", id, ch, owner, wantOwner)
		}
	}
}

func TestRingSingleFlitStillDeadlocks(t *testing.T) {
	// Even one-flit messages deadlock on the ring: each header holds its
	// first channel while waiting for the second.
	s, _ := ringDeadlock(t, 1)
	out := s.Run(1000)
	if out.Result != ResultDeadlock {
		t.Fatalf("result = %v; want deadlock", out.Result)
	}
}

func TestRingNoDeadlockWhenStaggered(t *testing.T) {
	// If the messages run one at a time there is no deadlock.
	net := topology.NewRing(4, false)
	s := New(net, Config{})
	for i := 0; i < 4; i++ {
		s.MustAdd(MessageSpec{
			Src: topology.NodeID(i), Dst: topology.NodeID((i + 2) % 4),
			Length:   2,
			Path:     []topology.ChannelID{topology.ChannelID(i), topology.ChannelID((i + 1) % 4)},
			InjectAt: i * 10,
		})
	}
	out := s.Run(1000)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v; want delivered", out.Result)
	}
}

func TestFreezeStopsMessage(t *testing.T) {
	net := line(3)
	s := New(net, Config{})
	id := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 1, Path: pathTo(net, 2)})
	s.SetFrozen(id, 3)
	s.Step()
	s.Step()
	s.Step()
	if s.Message(id).Injected != 0 {
		t.Fatal("frozen message must not move")
	}
	if s.Frozen(id) != 0 {
		t.Fatalf("frozen counter = %d; want 0", s.Frozen(id))
	}
	out := s.Run(100)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v", out.Result)
	}
}

func TestFreezeMidFlightHoldsChannels(t *testing.T) {
	net := line(4)
	s := New(net, Config{})
	id := s.MustAdd(MessageSpec{Src: 0, Dst: 3, Length: 2, Path: pathTo(net, 3)})
	s.Step() // header in c0
	s.SetFrozen(id, 5)
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if s.Owner(0) != id {
		t.Fatal("frozen message must keep its channels")
	}
	if got := s.Message(id).Queued[0]; got != 1 {
		t.Fatalf("queued[0] = %d", got)
	}
}

func TestHeldMessageDoesNotInject(t *testing.T) {
	net := line(3)
	s := New(net, Config{})
	id := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 1, Path: pathTo(net, 2)})
	s.SetHeld(id, true)
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if s.Message(id).Injected != 0 {
		t.Fatal("held message must not inject")
	}
	s.SetHeld(id, false)
	out := s.Run(100)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v", out.Result)
	}
}

func TestRunTreatsHeldAsNonQuiescent(t *testing.T) {
	net := line(3)
	s := New(net, Config{})
	s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 1, Path: pathTo(net, 2)})
	s.SetHeld(0, true)
	out := s.Run(10)
	if out.Result != ResultTimeout {
		t.Fatalf("result = %v; a held message is not a deadlock", out.Result)
	}
}

func TestBufferDepthTwoPipelines(t *testing.T) {
	// With deeper buffers, flits accumulate behind a blocked header.
	net := line(3)
	s := New(net, Config{BufferDepth: 2})
	blocker := s.MustAdd(MessageSpec{Src: 1, Dst: 2, Length: 10, Path: []topology.ChannelID{1}})
	msg := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 3, Path: pathTo(net, 2), InjectAt: 1})
	_ = blocker
	// Step until msg's header is blocked at c0 waiting for c1.
	for i := 0; i < 4; i++ {
		s.Step()
	}
	mv := s.Message(msg)
	if mv.Queued[0] != 2 {
		t.Fatalf("queued[0] = %d; want 2 (header plus one data flit)", mv.Queued[0])
	}
	out := s.Run(100)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v", out.Result)
	}
}

func TestCloneIndependence(t *testing.T) {
	net := line(4)
	s := New(net, Config{})
	s.MustAdd(MessageSpec{Src: 0, Dst: 3, Length: 3, Path: pathTo(net, 3)})
	s.Step() // header in c0: state will keep evolving
	c := s.Clone()
	if c.Encode() != s.Encode() {
		t.Fatal("clone should encode identically")
	}
	s.Step()
	s.Step()
	if c.Encode() == s.Encode() {
		t.Fatal("advancing the original must not affect the clone")
	}
	// The clone still runs to completion on its own.
	if out := c.Run(100); out.Result != ResultDelivered {
		t.Fatalf("clone result = %v", out.Result)
	}
	// Cloning a deadlocked state preserves the deadlock.
	d, _ := ringDeadlock(t, 2)
	d.Step()
	if out := d.Clone().Run(100); out.Result != ResultDeadlock {
		t.Fatalf("deadlocked clone result = %v", out.Result)
	}
}

func TestEncodeDistinguishesFrozenAndHeld(t *testing.T) {
	net := line(3)
	mk := func() *Sim {
		s := New(net, Config{})
		s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 2, Path: pathTo(net, 2)})
		return s
	}
	a, b, c := mk(), mk(), mk()
	b.SetFrozen(0, 2)
	c.SetHeld(0, true)
	if a.Encode() == b.Encode() || a.Encode() == c.Encode() || b.Encode() == c.Encode() {
		t.Fatal("encodings must distinguish frozen/held states")
	}
}

func TestStatsCollection(t *testing.T) {
	net := line(4)
	s := New(net, Config{})
	s.MustAdd(MessageSpec{Src: 0, Dst: 3, Length: 2, Path: pathTo(net, 3)})
	out := s.Run(100)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v", out.Result)
	}
	st := Collect(s)
	if st.Delivered != 1 || st.Messages != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Latency = deliveredAt - injectedAt + 1 = (3+2-1) - 0 + 1 = 5.
	if st.AvgLatency != 5 || st.MaxLatency != 5 {
		t.Fatalf("latency = %v/%v; want 5", st.AvgLatency, st.MaxLatency)
	}
	if st.FlitsMoved != 2 {
		t.Fatalf("flits = %d", st.FlitsMoved)
	}
	if st.Throughput <= 0 {
		t.Fatal("throughput should be positive")
	}
}

func TestStepWithPicks(t *testing.T) {
	net := line(3)
	s := New(net, Config{})
	a := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 1, Path: pathTo(net, 2)})
	b := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 1, Path: pathTo(net, 2)})
	s.StepWithPicks(map[topology.ChannelID]int{0: b})
	if s.Message(b).Injected != 1 || s.Message(a).Injected != 0 {
		t.Fatal("explicit pick not honored")
	}
}

func TestStepWithStalePickPanics(t *testing.T) {
	net := line(3)
	s := New(net, Config{})
	s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 1, Path: pathTo(net, 2)})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-contender pick")
		}
	}()
	s.StepWithPicks(map[topology.ChannelID]int{0: 99})
}

func TestWaitsForReportsBlocking(t *testing.T) {
	net := line(3)
	s := New(net, Config{})
	blocker := s.MustAdd(MessageSpec{Src: 1, Dst: 2, Length: 10, Path: []topology.ChannelID{1}})
	victim := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 1, Path: pathTo(net, 2), InjectAt: 1})
	s.Step() // blocker acquires c1
	s.Step() // victim injects into c0
	s.Step() // victim blocked on c1
	ch, owner, ok := s.WaitsFor(victim)
	if !ok || ch != 1 || owner != blocker {
		t.Fatalf("WaitsFor = %v,%v,%v", ch, owner, ok)
	}
	// The blocker itself is not waiting (it is consuming).
	if _, _, ok := s.WaitsFor(blocker); ok {
		t.Fatal("blocker should not be reported waiting")
	}
}

func TestInjectionBlockedMessageWaits(t *testing.T) {
	// A ready message whose first channel is occupied reports WaitsFor.
	net := line(3)
	s := New(net, Config{})
	blocker := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 10, Path: pathTo(net, 2)})
	victim := s.MustAdd(MessageSpec{Src: 0, Dst: 1, Length: 1, Path: pathTo(net, 1), InjectAt: 1})
	s.Step()
	s.Step()
	ch, owner, ok := s.WaitsFor(victim)
	if !ok || ch != 0 || owner != blocker {
		t.Fatalf("WaitsFor = %v,%v,%v", ch, owner, ok)
	}
}

func TestResultString(t *testing.T) {
	if ResultDelivered.String() != "delivered" || ResultDeadlock.String() != "deadlock" || ResultTimeout.String() != "timeout" {
		t.Fatal("Result strings wrong")
	}
	if Result(9).String() == "" {
		t.Fatal("unknown result should still render")
	}
}

func TestLongMessageShortPath(t *testing.T) {
	// Length far exceeding the path: source keeps feeding while the sink
	// drains; delivery at H + L - 1.
	net := line(2)
	s := New(net, Config{})
	id := s.MustAdd(MessageSpec{Src: 0, Dst: 1, Length: 10, Path: pathTo(net, 1)})
	out := s.Run(100)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v", out.Result)
	}
	if got := s.Message(id).DeliveredAt; got != 10 {
		t.Fatalf("deliveredAt = %d; want 10", got)
	}
}
