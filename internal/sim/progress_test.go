package sim

import (
	"testing"

	"repro/internal/topology"
)

// TestProgressMonotone: Progress is a strictly-eventful monotone counter —
// it never decreases under Step, and it strictly increases on any cycle in
// which the message injects, advances a flit, or consumes one. This is the
// structural fact the liveness engine's lasso detection rests on: a
// state-graph loop cannot move any flit.
func TestProgressMonotone(t *testing.T) {
	net := line(4)
	s := New(net, Config{})
	id := s.MustAdd(MessageSpec{Src: 0, Dst: 3, Length: 3,
		Path: []topology.ChannelID{0, 1, 2}})
	prev := s.Progress(id)
	moved := 0
	for i := 0; i < 20; i++ {
		s.Step()
		cur := s.Progress(id)
		if cur < prev {
			t.Fatalf("cycle %d: progress decreased %d -> %d", i, prev, cur)
		}
		if cur > prev {
			moved++
		} else if !s.Message(id).Delivered {
			t.Fatalf("cycle %d: undelivered unblocked message made no progress", i)
		}
		prev = cur
	}
	if !s.Message(id).Delivered {
		t.Fatal("message did not deliver")
	}
	if moved == 0 {
		t.Fatal("progress never advanced")
	}
}

// TestProgressFrozenWhenBlocked: a deadlocked message's Progress counter is
// pinned — equal encodings imply equal Progress, so a blocked message
// revisiting the same state reads the same counter forever.
func TestProgressFrozenWhenBlocked(t *testing.T) {
	net := topology.NewRing(4, false)
	s := New(net, Config{})
	for i := 0; i < 4; i++ {
		s.MustAdd(MessageSpec{
			Src: topology.NodeID(i), Dst: topology.NodeID((i + 2) % 4),
			Length: 2,
			Path:   []topology.ChannelID{topology.ChannelID(i), topology.ChannelID((i + 1) % 4)},
		})
	}
	if out := s.Run(100); out.Result != ResultDeadlock {
		t.Fatalf("setup: result = %v", out.Result)
	}
	snap := make([]int, 4)
	for id := 0; id < 4; id++ {
		snap[id] = s.Progress(id)
	}
	for i := 0; i < 10; i++ {
		s.Step()
		for id := 0; id < 4; id++ {
			if got := s.Progress(id); got != snap[id] {
				t.Fatalf("blocked m%d progress moved %d -> %d", id, snap[id], got)
			}
		}
	}
}
