package sim

// Stats aggregates delivery statistics for performance experiments.
type Stats struct {
	Messages   int
	Delivered  int
	Cycles     int     // current simulation cycle
	AvgLatency float64 // mean (deliveredAt - injectAt + 1) over delivered messages
	MaxLatency int
	FlitsMoved int     // total flits consumed at destinations
	Throughput float64 // consumed flits per cycle
}

// Collect computes statistics from the simulator's current state. Latency
// counts from the cycle the header entered the network to the cycle the
// tail was consumed, inclusive.
func Collect(s *Sim) Stats {
	st := Stats{Messages: len(s.msgs), Cycles: s.now}
	totalLatency := 0
	for _, m := range s.msgs {
		st.FlitsMoved += m.consumed
		if !m.delivered() {
			continue
		}
		st.Delivered++
		lat := m.deliveredAt - m.injectedAt + 1
		totalLatency += lat
		if lat > st.MaxLatency {
			st.MaxLatency = lat
		}
	}
	if st.Delivered > 0 {
		st.AvgLatency = float64(totalLatency) / float64(st.Delivered)
	}
	if s.now > 0 {
		st.Throughput = float64(st.FlitsMoved) / float64(s.now)
	}
	return st
}
