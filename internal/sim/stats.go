package sim

import "sort"

// Stats aggregates delivery statistics for performance experiments.
type Stats struct {
	Messages   int
	Delivered  int
	Dropped    int     // messages removed by a drop recovery
	Retries    int     // total recovery resets across all messages
	Cycles     int     // current simulation cycle
	AvgLatency float64 // mean (deliveredAt - injectAt + 1) over delivered messages
	MaxLatency int
	// P50/P95/P99 are nearest-rank latency percentiles over delivered
	// messages (0 when nothing was delivered).
	P50Latency int
	P95Latency int
	P99Latency int
	FlitsMoved int     // total flits consumed at destinations
	Throughput float64 // consumed flits per cycle
}

// DeliveredFraction returns the fraction of messages fully delivered.
func (st Stats) DeliveredFraction() float64 {
	if st.Messages == 0 {
		return 0
	}
	return float64(st.Delivered) / float64(st.Messages)
}

// Collect computes statistics from the simulator's current state. Latency
// counts from the cycle the header entered the network to the cycle the
// tail was consumed, inclusive.
func Collect(s *Sim) Stats {
	st := Stats{Messages: len(s.msgs), Cycles: s.now}
	totalLatency := 0
	var latencies []int
	for i := range s.msgs {
		m := &s.msgs[i]
		st.FlitsMoved += m.consumed
		st.Retries += m.retries
		if m.dropped {
			st.Dropped++
		}
		if !m.delivered() {
			continue
		}
		st.Delivered++
		lat := m.deliveredAt - m.injectedAt + 1
		totalLatency += lat
		latencies = append(latencies, lat)
		if lat > st.MaxLatency {
			st.MaxLatency = lat
		}
	}
	if st.Delivered > 0 {
		st.AvgLatency = float64(totalLatency) / float64(st.Delivered)
		sort.Ints(latencies)
		st.P50Latency = percentile(latencies, 50)
		st.P95Latency = percentile(latencies, 95)
		st.P99Latency = percentile(latencies, 99)
	}
	if s.now > 0 {
		st.Throughput = float64(st.FlitsMoved) / float64(s.now)
	}
	return st
}

// percentile returns the nearest-rank p-th percentile of sorted values:
// the smallest element such that at least p% of samples are <= it.
func percentile(sorted []int, p int) int {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
