package sim

import (
	"bytes"
	"encoding/binary"

	"repro/internal/topology"
)

// Permutation describes one symmetry of a scenario: a relabeling of its
// messages and channels under which the scenario maps onto itself.
// Searches use a set of Permutations to quotient the visited-state space
// by symmetry: CanonicalEncodeTo picks one representative encoding per
// orbit, so two states that are relabelings of each other deduplicate.
//
// A Permutation is only meaningful for a specific scenario. It must
// satisfy, for every message i with image j = σ(i): the specs agree
// under the channel map (same length, ChanTo-image of i's path equals
// j's path, endpoints mapped accordingly). Callers derive valid
// permutations from topology automorphisms (topology.Automorphisms);
// this package only applies them.
type Permutation struct {
	// MsgAt[j] is the original message whose state occupies message slot
	// j of the permuted encoding — the inverse σ⁻¹ of the message
	// bijection.
	MsgAt []int
	// ChanTo[c] is the channel automorphism image π(c); ChanAt[c] its
	// inverse π⁻¹(c). ChanTo relabels materialized adaptive routes,
	// ChanAt relocates per-channel state (fault outages).
	ChanTo []topology.ChannelID
	ChanAt []topology.ChannelID
}

// CanonicalEncodeTo appends the canonical representative of the state's
// symmetry orbit under perms: the lexicographically least byte string
// among the identity encoding (exactly EncodeTo) and the encoding of the
// state relabeled by each permutation. Two states s, s' with s' = p(s)
// for some p in the closure of perms produce identical canonical
// encodings, so a visited set keyed on them stores one entry per orbit.
//
// dst receives the result (appended, like EncodeTo); scratch is caller
// scratch reused across candidates so the steady state allocates
// nothing. With an empty perms it is exactly EncodeTo.
func (s *Sim) CanonicalEncodeTo(perms []Permutation, dst, scratch *[]byte) {
	base := len(*dst)
	s.EncodeTo(dst)
	for i := range perms {
		*scratch = (*scratch)[:0]
		s.encodePermuted(&perms[i], scratch)
		if bytes.Compare(*scratch, (*dst)[base:]) < 0 {
			*dst = append((*dst)[:base], *scratch...)
		}
	}
}

// encodePermuted appends the EncodeTo-format encoding the state would
// have after relabeling by p: message slot j carries the state of
// original message MsgAt[j], adaptive routes are relabeled through
// ChanTo, and channel fault state is read through ChanAt. Because a
// valid permutation maps message MsgAt[j]'s path onto message j's path
// element-for-element, the positional queued counts carry over
// unchanged; the result is byte-identical to EncodeTo on a Sim built
// from the relabeled scenario in the relabeled state.
func (s *Sim) encodePermuted(p *Permutation, dst *[]byte) {
	b := *dst
	for j := range s.msgs {
		m := &s.msgs[p.MsgAt[j]]
		b = binary.AppendUvarint(b, uint64(m.injected))
		b = binary.AppendUvarint(b, uint64(m.consumed))
		b = binary.AppendUvarint(b, uint64(m.frozen))
		var flags byte
		if m.held {
			flags |= 1
		}
		if m.headerConsumed {
			flags |= 2
		}
		if m.dropped {
			flags |= 4
		}
		b = append(b, flags)
		b = binary.AppendUvarint(b, uint64(len(m.queued)))
		for _, q := range m.queued {
			b = binary.AppendUvarint(b, uint64(q))
		}
		if m.adaptive() {
			b = binary.AppendUvarint(b, uint64(len(m.path)))
			for _, c := range m.path {
				b = binary.AppendUvarint(b, uint64(p.ChanTo[c]))
			}
		}
	}
	for c := range s.downUntil {
		until := s.downUntil[p.ChanAt[c]]
		if until <= s.now {
			continue
		}
		b = binary.AppendUvarint(b, uint64(c)+1)
		if until == DownForever {
			b = binary.AppendUvarint(b, 0)
		} else {
			b = binary.AppendUvarint(b, uint64(until-s.now))
		}
	}
	*dst = b
}
