package sim

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

// A freeze applied while a message is mid-injection (some flits in the
// network, some still at the source) must halt injection and consumption
// alike, then let the message resume and deliver.
func TestSetFrozenMidInjection(t *testing.T) {
	net := topology.NewRing(4, false)
	s := New(net, Config{})
	id := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 5, Path: []topology.ChannelID{0, 1}})

	// Advance until the message is partially injected.
	for s.Message(id).Injected == 0 || s.Message(id).Injected == 5 {
		s.Step()
		if s.Now() > 20 {
			t.Fatal("message never reached a mid-injection state")
		}
	}
	before := s.Message(id)
	if before.Injected >= 5 {
		t.Fatalf("injected = %d; want mid-injection", before.Injected)
	}

	const freeze = 4
	s.SetFrozen(id, freeze)
	for i := 0; i < freeze; i++ {
		s.Step()
		mv := s.Message(id)
		if mv.Injected != before.Injected || mv.Consumed != before.Consumed {
			t.Fatalf("frozen message moved at cycle %d: injected %d->%d, consumed %d->%d",
				s.Now(), before.Injected, mv.Injected, before.Consumed, mv.Consumed)
		}
	}
	if got := s.Frozen(id); got != 0 {
		t.Fatalf("frozen counter = %d after %d cycles; want 0", got, freeze)
	}
	out := s.Run(1000)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v; a thawed message must deliver", out.Result)
	}
}

// Freezing the last worm in an otherwise drained network must not be
// misreported as deadlock: the frozen state is externally imposed and
// finite, so Run must wait it out and finish with full delivery.
func TestFreezeLastWormInDrainedNetwork(t *testing.T) {
	net := topology.NewRing(4, false)
	s := New(net, Config{})
	fast := s.MustAdd(MessageSpec{Src: 0, Dst: 1, Length: 1, Path: []topology.ChannelID{0}})
	slow := s.MustAdd(MessageSpec{Src: 2, Dst: 0, Length: 3, Path: []topology.ChannelID{2, 3}, InjectAt: 0})

	for !s.Message(fast).Delivered {
		s.Step()
	}
	if s.Message(slow).Delivered {
		t.Fatal("fixture broken: slow message finished with the fast one")
	}
	// The slow worm is now alone in the network. Freeze it: the network is
	// fully stalled, but not deadlocked.
	s.SetFrozen(slow, 50)
	s.Step()
	if s.Quiescent() {
		t.Fatal("a frozen message must block the quiescence certificate")
	}
	out := s.Run(1000)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v (undelivered %v); a finite freeze is not a deadlock", out.Result, out.Undelivered)
	}
}

// Clone and Encode must round-trip channel-fault and drop state: clones
// behave identically, encodings agree, and the fault section is
// time-relative so equal remaining outages encode equally at different
// absolute cycles.
func TestCloneEncodeFaultState(t *testing.T) {
	mk := func() *Sim {
		net := topology.NewRing(4, false)
		s := New(net, Config{})
		s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 2, Path: []topology.ChannelID{0, 1}})
		s.MustAdd(MessageSpec{Src: 1, Dst: 3, Length: 2, Path: []topology.ChannelID{1, 2}})
		return s
	}

	s := mk()
	s.SetChannelDown(2, 10) // transient: 10 cycles remaining
	s.FailChannel(3)        // permanent
	s.DropMessage(1)

	enc := s.Encode()
	if !strings.Contains(enc, "D") {
		t.Fatalf("encoding %q lacks the dropped flag", enc)
	}
	if !strings.Contains(enc, "X3:P;") {
		t.Fatalf("encoding %q lacks the permanent-fault section", enc)
	}
	if !strings.Contains(enc, "X2:10;") {
		t.Fatalf("encoding %q lacks the transient-fault section", enc)
	}

	c := s.Clone()
	if c.Encode() != enc {
		t.Fatalf("clone encodes differently:\n%q\n%q", c.Encode(), enc)
	}
	// Clone independence: repairing the clone's channel must not leak back.
	c.RepairChannel(2)
	if !s.ChannelDown(2) {
		t.Fatal("repairing the clone repaired the original")
	}

	// Clones behave identically: run both (fresh clone) to completion.
	s2 := s.Clone()
	out1, out2 := s.Run(1000), s2.Run(1000)
	if out1.Result != out2.Result || out1.Cycles != out2.Cycles {
		t.Fatalf("clone diverged: %+v vs %+v", out1, out2)
	}

	// Time-relativity: a sim that downs the same channel later, for the
	// same remaining outage, encodes identically (messages held so nothing
	// else changes).
	a, b := mk(), mk()
	a.SetHeld(0, true)
	a.SetHeld(1, true)
	b.SetHeld(0, true)
	b.SetHeld(1, true)
	a.SetChannelDown(2, a.Now()+5)
	for i := 0; i < 3; i++ {
		b.Step()
	}
	b.SetChannelDown(2, b.Now()+5)
	if a.Encode() != b.Encode() {
		t.Fatalf("equal remaining outage encodes unequally:\n%q\n%q", a.Encode(), b.Encode())
	}
}

// A down channel blocks injection entirely: the header may not enter a
// dead channel, and the message resumes when the repair lands.
func TestInjectionBlockedByDownChannel(t *testing.T) {
	net := topology.NewRing(4, false)
	s := New(net, Config{})
	id := s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 2, Path: []topology.ChannelID{0, 1}})
	s.SetChannelDown(0, 5)
	if at, blocked := s.FaultBlocked(id); !blocked || at != 5 {
		t.Fatalf("FaultBlocked = (%d, %v); want (5, true)", at, blocked)
	}
	for i := 0; i < 5; i++ {
		s.Step()
		if s.Message(id).Injected != 0 {
			t.Fatalf("message injected into a down channel at cycle %d", s.Now())
		}
	}
	out := s.Run(1000)
	if out.Result != ResultDelivered {
		t.Fatalf("result = %v; want delivered after repair", out.Result)
	}
}

// A pending transient repair must block the quiescence certificate — the
// repair can restart the network — while a permanent failure must not.
func TestQuiescenceVsPendingRepair(t *testing.T) {
	net := topology.NewRing(4, false)
	s := New(net, Config{})
	s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 2, Path: []topology.ChannelID{0, 1}})
	s.SetChannelDown(1, 50)
	s.Step()
	for s.Message(0).Injected == 0 && s.Now() < 10 {
		s.Step()
	}
	s.Step() // settle: header now stalled at the down channel
	if s.Quiescent() {
		t.Fatal("pending repair should block quiescence")
	}

	s2 := New(topology.NewRing(4, false), Config{})
	s2.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 2, Path: []topology.ChannelID{0, 1}})
	s2.FailChannel(1)
	out := s2.Run(1000)
	if out.Result != ResultDeadlock {
		t.Fatalf("result = %v; a permanent failure with a stuck worm is a dead state", out.Result)
	}
}
