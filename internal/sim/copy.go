package sim

import "fmt"

// Reset returns the simulator to the empty state New produces — no
// messages, cycle zero, all channels free and in service — while keeping
// the network, configuration and slice capacity. Pools of simulators use
// it to recycle an instance for a fresh message set.
func (s *Sim) Reset() {
	s.now = 0
	s.msgs = s.msgs[:0]
	for i := range s.owner {
		s.owner[i] = -1
	}
	for i := range s.downUntil {
		s.downUntil[i] = 0
	}
	s.waitingSince = s.waitingSince[:0]
	s.lastMoved = false
	s.lastThawed = false
	s.waitCh = s.waitCh[:0]
	s.waitOwner = s.waitOwner[:0]
	s.active = s.active[:0]
	s.liveCount = 0
	s.droppedCount = 0
	s.flitsConsumed = 0
	// Scratch arenas and their epoch counters survive Reset untouched:
	// the counters only ever grow, so stale stamps can never read as set.
	// The tracer and telemetry collector also survive: they are observers
	// of this instance, not simulation state.
}

// CopyFrom overwrites s with a deep copy of src, reusing s's existing
// allocations wherever capacity allows. It is Clone without the
// allocations: a search engine keeps a pool of simulators and CopyFrom's
// them back to a frontier state before applying the next branch. Both
// simulators must have been created for the same network (the immutable
// topology is shared, exactly as in Clone). Arbiters implementing
// ArbiterCloner are deep-copied; other arbiters are shared.
func (s *Sim) CopyFrom(src *Sim) {
	if s.net != src.net {
		panic("sim: CopyFrom across different networks")
	}
	s.cfg = src.cfg
	if c, ok := src.cfg.Arbiter.(ArbiterCloner); ok {
		s.cfg.Arbiter = c.CloneArbiter()
	}
	s.now = src.now
	s.owner = append(s.owner[:0], src.owner...)
	s.downUntil = append(s.downUntil[:0], src.downUntil...)
	s.waitingSince = append(s.waitingSince[:0], src.waitingSince...)
	s.lastMoved = src.lastMoved
	s.lastThawed = src.lastThawed

	// Reuse message structs (and their queued/path backing arrays) from
	// previous generations of this sim where possible.
	if cap(s.msgs) >= len(src.msgs) {
		s.msgs = s.msgs[:len(src.msgs)] // revives structs parked beyond the old length
	} else {
		s.msgs = s.msgs[:cap(s.msgs)]
		for len(s.msgs) < len(src.msgs) {
			s.msgs = append(s.msgs, message{})
		}
	}
	for i := range src.msgs {
		sm := &src.msgs[i]
		dm := &s.msgs[i]
		queued, path := dm.queued, dm.path
		*dm = *sm
		dm.queued = append(queued[:0], sm.queued...)
		dm.path = append(path[:0], sm.path...)
	}
	s.active = append(s.active[:0], src.active...)
	s.liveCount = src.liveCount
	s.droppedCount = src.droppedCount
	s.flitsConsumed = src.flitsConsumed
	// s's scratch arenas and epochs are left alone, and so are its tracer
	// and telemetry collector: per-instance working memory and observers,
	// not simulation state.
}

// SetInjectAt changes the earliest injection cycle of message id. Only
// messages that have not begun injecting (never, or just reset) can be
// retimed; schedule sweeps use this to re-run one pooled simulator over a
// grid of injection schedules without rebuilding it.
func (s *Sim) SetInjectAt(id, at int) error {
	m := &s.msgs[id]
	if m.injected > 0 && !m.terminal() {
		return fmt.Errorf("sim: SetInjectAt(%d): message is in the network", id)
	}
	if at < 0 {
		return fmt.Errorf("sim: SetInjectAt(%d): negative injection time %d", id, at)
	}
	m.spec.InjectAt = at
	return nil
}

// SetLength changes the flit count of message id. Like SetInjectAt it is
// only legal before the message begins injecting.
func (s *Sim) SetLength(id, length int) error {
	m := &s.msgs[id]
	if m.injected > 0 && !m.terminal() {
		return fmt.Errorf("sim: SetLength(%d): message is in the network", id)
	}
	if length < 1 {
		return fmt.Errorf("sim: SetLength(%d): length %d < 1", id, length)
	}
	wasTerminal := m.terminal()
	m.spec.Length = length
	// Lengthening a fully delivered message revives it (it resumes
	// injecting its new tail flits), so it re-enters the live population.
	if wasTerminal && !m.terminal() {
		s.liveCount++
		s.ensureActive(id)
	}
	return nil
}

// SetArbiter replaces the arbitration policy for subsequent cycles.
func (s *Sim) SetArbiter(a Arbiter) {
	if a == nil {
		a = FIFOArbiter{}
	}
	s.cfg.Arbiter = a
}
