package sim

import "repro/internal/topology"

// Arbiter resolves simultaneous requests by several message headers for the
// same free channel (assumption 5). Pick receives the contending message
// IDs sorted ascending and must return one of them.
type Arbiter interface {
	Pick(s *Sim, c topology.ChannelID, contenders []int) int
}

// FIFOArbiter grants the channel to the message that has been waiting for
// an output channel the longest (ties broken by lowest message ID). A
// message that requests a channel the same cycle it becomes eligible has
// waiting time zero, so established waiters always beat newcomers: the
// policy is starvation-free.
type FIFOArbiter struct{}

// Pick implements Arbiter.
func (FIFOArbiter) Pick(s *Sim, _ topology.ChannelID, contenders []int) int {
	best := contenders[0]
	bestSince := s.waitingSince[best]
	for _, id := range contenders[1:] {
		since := s.waitingSince[id]
		// -1 means "not waiting before this cycle": treat as now.
		if since < 0 {
			since = s.now
		}
		cur := bestSince
		if cur < 0 {
			cur = s.now
		}
		if since < cur {
			best, bestSince = id, s.waitingSince[id]
		}
	}
	return best
}

// PriorityArbiter grants contested channels by a fixed message-ID priority:
// the contender appearing earliest in Order wins; messages absent from
// Order lose to every listed one and tie-break by lowest ID. This realizes
// the paper's Section 3 adversarial assumption — "the message that can lead
// to a deadlock acquires the channel" — when Order lists the deadlock-prone
// messages first.
type PriorityArbiter struct {
	Order []int
}

// Pick implements Arbiter.
func (a PriorityArbiter) Pick(_ *Sim, _ topology.ChannelID, contenders []int) int {
	rank := func(id int) int {
		for i, v := range a.Order {
			if v == id {
				return i
			}
		}
		return len(a.Order) + id
	}
	best := contenders[0]
	for _, id := range contenders[1:] {
		if rank(id) < rank(best) {
			best = id
		}
	}
	return best
}

// LowestIDArbiter always grants the contender with the smallest message ID.
// Deterministic and stateless; convenient for reproducible experiments.
type LowestIDArbiter struct{}

// Pick implements Arbiter.
func (LowestIDArbiter) Pick(_ *Sim, _ topology.ChannelID, contenders []int) int {
	return contenders[0]
}
