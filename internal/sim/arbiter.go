package sim

import "repro/internal/topology"

// Arbiter resolves simultaneous requests by several message headers for the
// same free channel (assumption 5). Pick receives the contending message
// IDs sorted ascending and must return one of them.
type Arbiter interface {
	Pick(s *Sim, c topology.ChannelID, contenders []int) int
}

// ArbiterCloner is the optional interface stateful arbiters implement so
// that Clone and CopyFrom can give each simulator copy its own arbiter
// state. Without it, Clone shares the arbiter value between copies — safe
// only for stateless arbiters. The search engines in internal/mcheck
// refuse arbiters that implement neither ArbiterCloner nor
// StatelessArbiter, because silently shared arbiter state would corrupt a
// branching state-space exploration.
type ArbiterCloner interface {
	Arbiter
	// CloneArbiter returns an independent copy carrying the same state.
	CloneArbiter() Arbiter
}

// StatelessArbiter marks arbiters whose Pick never mutates the arbiter
// value itself (it may still read simulator state, like FIFOArbiter).
// Stateless arbiters are safe to share across clones and across the
// parallel workers of the search engines. All built-in arbiters implement
// it.
type StatelessArbiter interface {
	Arbiter
	// StatelessArbiter is a marker method; implementations do nothing.
	StatelessArbiter()
}

// FIFOArbiter grants the channel to the message that has been waiting for
// an output channel the longest (ties broken by lowest message ID). A
// message that requests a channel the same cycle it becomes eligible has
// waiting time zero, so established waiters always beat newcomers: the
// policy is starvation-free.
type FIFOArbiter struct{}

// Pick implements Arbiter.
func (FIFOArbiter) Pick(s *Sim, _ topology.ChannelID, contenders []int) int {
	best := contenders[0]
	bestSince := s.waitingSince[best]
	for _, id := range contenders[1:] {
		since := s.waitingSince[id]
		// -1 means "not waiting before this cycle": treat as now.
		if since < 0 {
			since = s.now
		}
		cur := bestSince
		if cur < 0 {
			cur = s.now
		}
		if since < cur {
			best, bestSince = id, s.waitingSince[id]
		}
	}
	return best
}

// PriorityArbiter grants contested channels by a fixed message-ID priority:
// the contender appearing earliest in Order wins; messages absent from
// Order lose to every listed one and tie-break by lowest ID. This realizes
// the paper's Section 3 adversarial assumption — "the message that can lead
// to a deadlock acquires the channel" — when Order lists the deadlock-prone
// messages first.
type PriorityArbiter struct {
	Order []int
}

// Pick implements Arbiter.
func (a PriorityArbiter) Pick(_ *Sim, _ topology.ChannelID, contenders []int) int {
	rank := func(id int) int {
		for i, v := range a.Order {
			if v == id {
				return i
			}
		}
		return len(a.Order) + id
	}
	best := contenders[0]
	for _, id := range contenders[1:] {
		if rank(id) < rank(best) {
			best = id
		}
	}
	return best
}

// LowestIDArbiter always grants the contender with the smallest message ID.
// Deterministic and stateless; convenient for reproducible experiments.
type LowestIDArbiter struct{}

// Pick implements Arbiter.
func (LowestIDArbiter) Pick(_ *Sim, _ topology.ChannelID, contenders []int) int {
	return contenders[0]
}

// StatelessArbiter marks FIFOArbiter safe to share across simulator clones.
func (FIFOArbiter) StatelessArbiter() {}

// StatelessArbiter marks PriorityArbiter safe to share across simulator
// clones (Order is read-only).
func (PriorityArbiter) StatelessArbiter() {}

// StatelessArbiter marks LowestIDArbiter safe to share across simulator
// clones.
func (LowestIDArbiter) StatelessArbiter() {}
