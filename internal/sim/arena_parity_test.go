package sim

import (
	"bytes"
	"testing"

	"repro/internal/topology"
)

// Parity harness for the arena-based hot path: a fresh simulator, its
// Clone, a pooled CopyFrom copy, and a Reset-recycled instance must stay
// byte-identical under EncodeTo at every cycle. The scratch arenas are
// per-instance working memory, so no trace of one instance's history may
// leak into another's encoded state.

// ringScenario4 is a 4-node unidirectional ring with four 2-hop messages —
// full cyclic contention, which deadlocks with 1-flit buffers and length 3.
func ringScenario4() Scenario {
	net := topology.New("ring4")
	net.AddNodes(4)
	for i := 0; i < 4; i++ {
		net.AddChannel(topology.NodeID(i), topology.NodeID((i+1)%4), 0, "")
	}
	msgs := make([]MessageSpec, 4)
	for i := range msgs {
		msgs[i] = MessageSpec{
			Src: topology.NodeID(i), Dst: topology.NodeID((i + 2) % 4), Length: 3,
			Path: []topology.ChannelID{topology.ChannelID(i), topology.ChannelID((i + 1) % 4)},
		}
	}
	return Scenario{Name: "ring4", Net: net, Msgs: msgs}
}

// stepAll advances every sim one cycle and asserts their encodings match
// the first one's, byte for byte.
func stepAll(t *testing.T, cycle int, sims map[string]*Sim) {
	t.Helper()
	var ref []byte
	var refName string
	for _, name := range []string{"fresh", "clone", "pooled", "recycled"} {
		s, ok := sims[name]
		if !ok {
			continue
		}
		s.Step()
		var enc []byte
		s.EncodeTo(&enc)
		if ref == nil {
			ref, refName = enc, name
			continue
		}
		if !bytes.Equal(enc, ref) {
			t.Fatalf("cycle %d: %s encoding diverges from %s:\n%x\n%x", cycle, name, refName, enc, ref)
		}
	}
}

func TestArenaEncodeParityAcrossCopies(t *testing.T) {
	for _, tc := range []struct {
		name string
		sc   Scenario
	}{
		{"line", lineScenario()},
		{"ring4-deadlock", ringScenario4()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fresh := tc.sc.NewSim()

			// A recycled instance: run it ahead, reset, rebuild the same
			// message set. Any stale arena stamp or counter would surface
			// as an encoding difference.
			recycled := tc.sc.NewSim()
			recycled.Run(7)
			recycled.Reset()
			for _, m := range tc.sc.Msgs {
				recycled.MustAdd(m)
			}

			sims := map[string]*Sim{"fresh": fresh, "recycled": recycled}
			for cycle := 0; cycle < 3; cycle++ {
				stepAll(t, cycle, sims)
			}

			// Mid-flight, fork a Clone and a pooled CopyFrom and continue
			// all four in lockstep.
			sims["clone"] = fresh.Clone()
			pooled := New(tc.sc.Net, fresh.cfg)
			pooled.Run(2) // dirty the pooled instance's arenas first
			pooled.CopyFrom(fresh)
			sims["pooled"] = pooled
			for cycle := 3; cycle < 20; cycle++ {
				stepAll(t, cycle, sims)
			}

			// Terminal facts must agree too.
			for name, s := range sims {
				if s.AllDelivered() != fresh.AllDelivered() || s.AllTerminal() != fresh.AllTerminal() ||
					s.LiveMessages() != fresh.LiveMessages() {
					t.Fatalf("%s: terminal accounting diverges from fresh", name)
				}
			}
		})
	}
}

// TestArenaCountersTrackTerminalStates cross-checks the O(1) liveCount /
// droppedCount accounting against a full scan, through delivery, drop,
// revival (ResetMessage) and freeze transitions.
func TestArenaCountersTrackTerminalStates(t *testing.T) {
	sc := ringScenario4()
	s := sc.NewSim()
	check := func(when string) {
		t.Helper()
		live := 0
		for id := 0; id < s.NumMessages(); id++ {
			if !s.Delivered(id) && !s.Dropped(id) {
				live++
			}
		}
		if s.LiveMessages() != live {
			t.Fatalf("%s: LiveMessages() = %d, scan says %d", when, s.LiveMessages(), live)
		}
	}
	check("initial")
	for i := 0; i < 6; i++ {
		s.Step()
		check("stepping")
	}
	s.DropMessage(0)
	check("after drop")
	s.ResetMessage(0, s.Now()+1)
	check("after revival")
	s.SetFrozen(1, 2)
	for i := 0; i < 10; i++ {
		s.Step()
		check("frozen countdown")
	}
	s.Run(200)
	check("after run")
	if got := int(s.FlitsConsumed()); got != 0 {
		// Deadlocked ring: at most the flits of dropped-then-revived
		// message 0 were consumed. The counter must agree with a scan of
		// per-message consumed counts.
		total := 0
		for id := 0; id < s.NumMessages(); id++ {
			total += s.Message(id).Consumed
		}
		// FlitsConsumed is monotone across ResetMessage, so it may exceed
		// the scan but never undercount.
		if got < total {
			t.Fatalf("FlitsConsumed() = %d < current scan %d", got, total)
		}
	}
}
