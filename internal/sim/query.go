package sim

import "repro/internal/topology"

// Lightweight per-message state queries for the search engines. Message
// returns a MsgView whose Queued/Path slices are defensive copies; the hot
// paths of the model checker only need these scalar facts, so they get
// allocation-free accessors.

// Delivered reports whether message id has been fully consumed at its
// destination.
func (s *Sim) Delivered(id int) bool { return s.msgs[id].delivered() }

// InNetwork reports whether message id currently holds flits in the
// network (injected but not yet fully consumed).
func (s *Sim) InNetwork(id int) bool { return s.msgs[id].inNetwork() }

// PathChannel returns the i-th channel of message id's materialized
// route. For an oblivious message the route is its full fixed path; for
// an adaptive one it is the prefix acquired so far. The search engine's
// partial-order filter uses PathChannel(id, 0) to identify the channel
// an uninjected oblivious message must win to enter the network.
func (s *Sim) PathChannel(id, i int) topology.ChannelID { return s.msgs[id].path[i] }

// Delivering reports whether message id's header has reached the
// destination and consumption has begun or could begin immediately: the
// header is consumed, or flits are buffered on the last channel of its
// materialized route. The Section 6 clock-skew adversary may not stall
// such messages (destination processors consume promptly).
func (s *Sim) Delivering(id int) bool {
	m := &s.msgs[id]
	if m.headerConsumed {
		return true
	}
	n := len(m.queued)
	return n > 0 && m.queued[n-1] > 0
}

// Progress returns a monotone per-message progress counter derived purely
// from encoded state: it strictly increases whenever message id advances
// toward delivery — a flit injected, a flit moved one buffer forward, a
// flit consumed, or (adaptively) the materialized route extended — and is
// unchanged otherwise. Two states with equal encodings have equal
// Progress, so the liveness search can assert non-progress across a lasso
// loop by comparing this one integer, and the fault watchdog can detect
// stalls by watching it plateau.
//
// Monotonicity: a flit at queue position i carries weight i+1, injection
// adds the injected count plus the new flit's weight, a forward hop
// trades weight i+1 for i+2, and consuming the flit at the last position
// trades weight len(queued) for the consumed credit len(queued)+1 — every
// event nets at least +1 and no ordinary transition decreases any term.
// Recovery resets (ResetMessage) are the deliberate exception: they
// rewind the worm and the counter, which is exactly the non-monotonicity
// the watchdog's livelock classification keys on.
func (s *Sim) Progress(id int) int {
	m := &s.msgs[id]
	p := m.injected + (len(m.queued)+1)*m.consumed + len(m.path)
	for i, q := range m.queued {
		p += (i + 1) * q
	}
	if m.headerConsumed {
		p++
	}
	return p
}

// Candidates returns every channel message id's header wants this cycle,
// regardless of whether the channel is free: the full adaptive candidate
// set at the current head, or the single next path channel of an
// oblivious message. Held, frozen, delivering and terminal messages want
// nothing. The liveness engine's extended adversary uses the difference
// between this set and AcquirableCandidates to model stale selections —
// an adaptive router persistently offering a busy output.
func (s *Sim) Candidates(id int) []topology.ChannelID {
	return append([]topology.ChannelID(nil), s.wantedChannels(&s.msgs[id])...)
}

// FullyInjected reports whether every flit of message id has left the
// source: the injection port is free for the next message. The traffic
// engine uses this to serialize each source's open-loop backlog the way a
// real injection queue would.
func (s *Sim) FullyInjected(id int) bool {
	m := &s.msgs[id]
	return m.injected >= m.spec.Length
}

// InjectedAt returns the cycle message id's header entered the network,
// or -1 if it has not injected yet.
func (s *Sim) InjectedAt(id int) int {
	m := &s.msgs[id]
	if m.injected == 0 {
		return -1
	}
	return m.injectedAt
}

// DeliveredAt returns the cycle message id's tail flit was consumed, or
// -1 if it has not been fully delivered.
func (s *Sim) DeliveredAt(id int) int {
	m := &s.msgs[id]
	if !m.delivered() {
		return -1
	}
	return m.deliveredAt
}
