package sim

import "repro/internal/topology"

// Lightweight per-message state queries for the search engines. Message
// returns a MsgView whose Queued/Path slices are defensive copies; the hot
// paths of the model checker only need these scalar facts, so they get
// allocation-free accessors.

// Delivered reports whether message id has been fully consumed at its
// destination.
func (s *Sim) Delivered(id int) bool { return s.msgs[id].delivered() }

// InNetwork reports whether message id currently holds flits in the
// network (injected but not yet fully consumed).
func (s *Sim) InNetwork(id int) bool { return s.msgs[id].inNetwork() }

// PathChannel returns the i-th channel of message id's materialized
// route. For an oblivious message the route is its full fixed path; for
// an adaptive one it is the prefix acquired so far. The search engine's
// partial-order filter uses PathChannel(id, 0) to identify the channel
// an uninjected oblivious message must win to enter the network.
func (s *Sim) PathChannel(id, i int) topology.ChannelID { return s.msgs[id].path[i] }

// Delivering reports whether message id's header has reached the
// destination and consumption has begun or could begin immediately: the
// header is consumed, or flits are buffered on the last channel of its
// materialized route. The Section 6 clock-skew adversary may not stall
// such messages (destination processors consume promptly).
func (s *Sim) Delivering(id int) bool {
	m := s.msgs[id]
	if m.headerConsumed {
		return true
	}
	n := len(m.queued)
	return n > 0 && m.queued[n-1] > 0
}
