package sim

import (
	"bytes"
	"testing"

	"repro/internal/topology"
)

// copyFixture is a two-message sim on the line network, stepped a few
// cycles so messages hold channels and buffers are populated.
func copyFixture(t *testing.T) *Sim {
	t.Helper()
	net := line(5)
	s := New(net, Config{})
	s.MustAdd(MessageSpec{Src: 0, Dst: 4, Length: 3, Path: pathTo(net, 4)})
	s.MustAdd(MessageSpec{Src: 1, Dst: 3, Length: 2, Path: []topology.ChannelID{1, 2}, InjectAt: 1})
	for i := 0; i < 3; i++ {
		s.Step()
	}
	return s
}

func TestEncodeToZeroAllocs(t *testing.T) {
	s := copyFixture(t)
	buf := make([]byte, 0, 256)
	s.EncodeTo(&buf)
	if len(buf) == 0 {
		t.Fatal("EncodeTo produced no bytes")
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		s.EncodeTo(&buf)
	})
	if allocs != 0 {
		t.Fatalf("EncodeTo allocated %.1f times per run with a pre-sized buffer; want 0", allocs)
	}
}

func TestEncodeToDistinguishesStates(t *testing.T) {
	s := copyFixture(t)
	var a, b []byte
	s.EncodeTo(&a)
	s.Step()
	s.EncodeTo(&b)
	if bytes.Equal(a, b) {
		t.Fatal("distinct states encoded identically")
	}
}

func TestCopyFromMatchesClone(t *testing.T) {
	src := copyFixture(t)
	clone := src.Clone()

	// A pooled sim from the same network, previously used for a different
	// state, must become indistinguishable from src after CopyFrom.
	dst := src.Clone()
	dst.Step()
	dst.Step()
	dst.CopyFrom(src)

	var want, got, viaClone []byte
	src.EncodeTo(&want)
	dst.EncodeTo(&got)
	clone.EncodeTo(&viaClone)
	if !bytes.Equal(want, got) {
		t.Fatalf("CopyFrom state differs from source:\n  src %x\n  dst %x", want, got)
	}
	if !bytes.Equal(want, viaClone) {
		t.Fatalf("Clone state differs from source")
	}

	// The copy must evolve independently of the source.
	dst.Step()
	var after []byte
	src.EncodeTo(&after)
	if !bytes.Equal(want, after) {
		t.Fatal("stepping the copy mutated the source")
	}
}

func TestCopyFromStepsLikeOriginal(t *testing.T) {
	src := copyFixture(t)
	dst := src.Clone()
	dst.Step() // desync, then restore
	dst.CopyFrom(src)
	for i := 0; i < 10; i++ {
		src.Step()
		dst.Step()
		var a, b []byte
		src.EncodeTo(&a)
		dst.EncodeTo(&b)
		if !bytes.Equal(a, b) {
			t.Fatalf("step %d: copy diverged from original", i)
		}
	}
}

func TestCopyFromRejectsDifferentNetworks(t *testing.T) {
	a := New(line(3), Config{})
	b := New(line(3), Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom across networks did not panic")
		}
	}()
	a.CopyFrom(b)
}

func TestSetInjectAtAndLength(t *testing.T) {
	net := line(4)
	s := New(net, Config{})
	id := s.MustAdd(MessageSpec{Src: 0, Dst: 3, Length: 2, Path: pathTo(net, 3), InjectAt: 5})
	if err := s.SetInjectAt(id, 0); err != nil {
		t.Fatalf("SetInjectAt before injection: %v", err)
	}
	if err := s.SetLength(id, 4); err != nil {
		t.Fatalf("SetLength before injection: %v", err)
	}
	if err := s.SetInjectAt(id, -1); err == nil {
		t.Fatal("negative inject time accepted")
	}
	if err := s.SetLength(id, 0); err == nil {
		t.Fatal("zero length accepted")
	}
	s.Step() // message injects at cycle 0 now
	if !s.InNetwork(id) {
		t.Fatal("message should be in the network")
	}
	if err := s.SetInjectAt(id, 3); err == nil {
		t.Fatal("retiming an in-network message accepted")
	}
	if err := s.SetLength(id, 2); err == nil {
		t.Fatal("resizing an in-network message accepted")
	}
}

// recordingArbiter counts grants and deep-copies itself for clones.
type recordingArbiter struct{ grants int }

func (a *recordingArbiter) Pick(_ *Sim, _ topology.ChannelID, contenders []int) int {
	a.grants++
	return contenders[0]
}

func (a *recordingArbiter) CloneArbiter() Arbiter {
	cp := *a
	return &cp
}

func TestCloneDeepCopiesArbiterState(t *testing.T) {
	net := line(4)
	root := &recordingArbiter{}
	s := New(net, Config{Arbiter: root})
	// Two messages contending for channel 0 force an arbitration.
	s.MustAdd(MessageSpec{Src: 0, Dst: 3, Length: 2, Path: pathTo(net, 3)})
	s.MustAdd(MessageSpec{Src: 0, Dst: 2, Length: 2, Path: pathTo(net, 2)})

	c := s.Clone()
	for i := 0; i < 6; i++ {
		c.Step()
	}
	if root.grants != 0 {
		t.Fatalf("stepping a clone mutated the original's arbiter (%d grants)", root.grants)
	}

	pooled := s.Clone()
	pooled.Step()
	before := root.grants
	pooled.CopyFrom(s)
	pooled.Step()
	if root.grants != before {
		t.Fatal("stepping a CopyFrom'd sim mutated the original's arbiter")
	}
}

func TestBuiltinArbitersAreStateless(t *testing.T) {
	for _, a := range []Arbiter{FIFOArbiter{}, PriorityArbiter{}, LowestIDArbiter{}} {
		if _, ok := a.(StatelessArbiter); !ok {
			t.Fatalf("%T does not declare StatelessArbiter", a)
		}
	}
}
