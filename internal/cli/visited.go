package cli

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/mcheck"
)

// VisitedFlags holds the visited-set backend flags shared by every
// command that runs an exhaustive search: -visited, -visited-mem,
// -bitstate-bits, -spill-dir. Register them with RegisterVisitedFlags
// before flag.Parse, then resolve with Config.
type VisitedFlags struct {
	Backend   *string
	MemBudget *string
	BloomBits *string
	SpillDir  *string
}

// RegisterVisitedFlags registers the visited-set backend flags on the
// default flag set.
func RegisterVisitedFlags() *VisitedFlags {
	return &VisitedFlags{
		Backend: flag.String("visited", "mem",
			"visited-set backend: mem (in-memory reference), bitstate (Bloom-prefiltered, exact), spill (disk-backed, memory-bounded); verdicts and witnesses are identical across backends"),
		MemBudget: flag.String("visited-mem", "",
			"spill backend resident-memory budget, e.g. 64M or 2Gi (binary suffixes K/M/G/T; default 256M)"),
		BloomBits: flag.String("bitstate-bits", "",
			"bitstate Bloom filter size in bits, e.g. 64M (rounded up to a power of two; default 64M)"),
		SpillDir: flag.String("spill-dir", "",
			"parent directory for spill run files (default: the system temp directory)"),
	}
}

// Config resolves the parsed flags into a search VisitedConfig, exiting
// with a usage error on an unknown backend or a malformed size.
func (f *VisitedFlags) Config() mcheck.VisitedConfig {
	var cfg mcheck.VisitedConfig
	switch *f.Backend {
	case "", "mem":
		cfg.Backend = mcheck.VisitedMem
	case "bitstate":
		cfg.Backend = mcheck.VisitedBitstate
	case "spill":
		cfg.Backend = mcheck.VisitedSpill
	default:
		fmt.Fprintf(os.Stderr, "cli: -visited=%s: unknown backend (want mem, bitstate, spill)\n", *f.Backend)
		os.Exit(2)
	}
	fail := func(flagName string, err error) {
		fmt.Fprintf(os.Stderr, "cli: -%s: %v\n", flagName, err)
		os.Exit(2)
	}
	if *f.MemBudget != "" {
		n, err := ParseByteSize(*f.MemBudget)
		if err != nil {
			fail("visited-mem", err)
		}
		cfg.MemBudget = n
	}
	if *f.BloomBits != "" {
		n, err := ParseByteSize(*f.BloomBits)
		if err != nil {
			fail("bitstate-bits", err)
		}
		cfg.BloomBits = n
	}
	cfg.SpillDir = *f.SpillDir
	return cfg
}

// FormatBytes renders a byte count with a binary suffix, one decimal.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// ParseByteSize parses a human-friendly size: a non-negative integer with
// an optional binary suffix K, M, G or T (Ki/Mi/Gi/Ti and lowercase
// accepted; an optional trailing B too, so "64MiB" works).
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	upper := strings.ToUpper(t)
	upper = strings.TrimSuffix(upper, "B")
	upper = strings.TrimSuffix(upper, "I")
	shift := 0
	switch {
	case strings.HasSuffix(upper, "K"):
		shift = 10
	case strings.HasSuffix(upper, "M"):
		shift = 20
	case strings.HasSuffix(upper, "G"):
		shift = 30
	case strings.HasSuffix(upper, "T"):
		shift = 40
	}
	if shift > 0 {
		upper = upper[:len(upper)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("malformed size %q (want e.g. 1048576, 64M, 2Gi)", s)
	}
	if shift > 0 && n > (1<<62)>>shift {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return n << shift, nil
}
