package cli

import "testing"

func TestParseDims(t *testing.T) {
	d, err := ParseDims("4x4")
	if err != nil || len(d) != 2 || d[0] != 4 || d[1] != 4 {
		t.Fatalf("ParseDims(4x4) = %v, %v", d, err)
	}
	if d, err := ParseDims("8"); err != nil || len(d) != 1 || d[0] != 8 {
		t.Fatalf("ParseDims(8) = %v, %v", d, err)
	}
	for _, bad := range []string{"", "x", "1x4", "axb", "4x-2"} {
		if _, err := ParseDims(bad); err == nil {
			t.Fatalf("ParseDims(%q) should fail", bad)
		}
	}
}

func TestBuildCombos(t *testing.T) {
	good := []struct {
		topo, alg, dims string
		vcs             int
		wantGrid        bool
	}{
		{"mesh", "dor", "3x3", 1, true},
		{"mesh", "negfirst", "3x3", 1, true},
		{"torus", "dallyseitz", "4x4", 2, true},
		{"hypercube", "ecube", "3", 1, false},
		{"ring", "bfs", "5", 1, false},
		{"uring", "bfs", "4", 1, false},
		{"star", "hub", "4", 1, false},
		{"complete", "bfs", "4", 1, false},
	}
	for _, tc := range good {
		alg, grid, err := Build(tc.topo, tc.alg, tc.dims, tc.vcs)
		if err != nil {
			t.Fatalf("Build(%s,%s): %v", tc.topo, tc.alg, err)
		}
		if alg == nil || alg.Network() == nil {
			t.Fatalf("Build(%s,%s): nil algorithm", tc.topo, tc.alg)
		}
		if (grid != nil) != tc.wantGrid {
			t.Fatalf("Build(%s,%s): grid presence = %v", tc.topo, tc.alg, grid != nil)
		}
	}
	bad := []struct{ topo, alg, dims string }{
		{"mesh", "dallyseitz", "3x3"},
		{"torus", "dor", "3x3"},
		{"torus", "valiant", "3x3"},
		{"mesh", "valiantsplit", "3x3"},
		{"ring", "ecube", "4"},
		{"blob", "dor", "3x3"},
		{"mesh", "blob", "3x3"},
		{"mesh", "dor", "bad"},
	}
	for _, tc := range bad {
		if _, _, err := Build(tc.topo, tc.alg, tc.dims, 1); err == nil {
			t.Fatalf("Build(%s,%s,%s) should fail", tc.topo, tc.alg, tc.dims)
		}
	}
}

func TestPaperNet(t *testing.T) {
	for _, name := range []string{"figure1", "fig1", "figure2", "fig2", "figure3a", "fig3f", "gen2"} {
		pn, err := PaperNet(name)
		if err != nil || pn == nil {
			t.Fatalf("PaperNet(%s): %v", name, err)
		}
	}
	for _, name := range []string{"", "figure9", "figure3z", "gen0", "genx", "fig3"} {
		if _, err := PaperNet(name); err == nil {
			t.Fatalf("PaperNet(%q) should fail", name)
		}
	}
}

func TestBuildAdaptive(t *testing.T) {
	good := []struct {
		topo, alg, dims string
		vcs             int
	}{
		{"mesh", "fulladaptive", "3x3", 1},
		{"torus", "fulladaptive", "4x4", 1},
		{"mesh", "westfirst", "3x3", 1},
		{"mesh", "duato", "3x3", 2},
	}
	for _, tc := range good {
		alg, grid, err := BuildAdaptive(tc.topo, tc.alg, tc.dims, tc.vcs)
		if err != nil || alg.Route == nil || grid == nil {
			t.Fatalf("BuildAdaptive(%s,%s): %v", tc.topo, tc.alg, err)
		}
	}
	bad := []struct {
		topo, alg, dims string
		vcs             int
	}{
		{"ring", "fulladaptive", "4", 1},
		{"torus", "westfirst", "3x3", 1},
		{"mesh", "westfirst", "3x3x3", 1},
		{"mesh", "duato", "3x3", 1},
		{"torus", "duato", "3x3", 2},
		{"mesh", "nonsense", "3x3", 1},
		{"mesh", "duato", "junk", 2},
	}
	for _, tc := range bad {
		if _, _, err := BuildAdaptive(tc.topo, tc.alg, tc.dims, tc.vcs); err == nil {
			t.Fatalf("BuildAdaptive(%s,%s,%s) should fail", tc.topo, tc.alg, tc.dims)
		}
	}
	if !AdaptiveNames["duato"] || AdaptiveNames["dor"] {
		t.Fatal("AdaptiveNames wrong")
	}
}
