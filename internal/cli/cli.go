// Package cli resolves command-line names to networks, routing algorithms
// and paper constructions; it is shared by the cmd/ executables.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/papernets"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// ParseDims parses "4x4" or "8" style dimension lists.
func ParseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("cli: bad dimension %q in %q", p, s)
		}
		dims = append(dims, v)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("cli: empty dimension list %q", s)
	}
	return dims, nil
}

// Build constructs a routing algorithm from names:
//
//	topo: mesh, torus, ring, uring, hypercube, star, complete
//	alg:  dor, negfirst, dallyseitz, ecube, bfs, valiant, valiantsplit, hub
//
// dims applies to mesh/torus ("4x4"), and the single radix of
// ring/hypercube/star/complete ("8"). vcs applies to mesh/torus. The
// returned grid is non-nil for mesh/torus topologies.
func Build(topo, alg, dims string, vcs int) (routing.Algorithm, *topology.Grid, error) {
	d, err := ParseDims(dims)
	if err != nil {
		return nil, nil, err
	}
	if vcs < 1 {
		vcs = 1
	}
	var net *topology.Network
	var grid *topology.Grid
	switch topo {
	case "mesh":
		grid = topology.NewMesh(d, vcs)
		net = grid.Network
	case "torus":
		grid = topology.NewTorus(d, vcs)
		net = grid.Network
	case "ring":
		net = topology.NewRing(d[0], true)
	case "uring":
		net = topology.NewRing(d[0], false)
	case "hypercube":
		net = topology.NewHypercube(d[0])
	case "star":
		net = topology.NewStar(d[0])
	case "complete":
		net = topology.NewComplete(d[0])
	default:
		return nil, nil, fmt.Errorf("cli: unknown topology %q", topo)
	}
	switch alg {
	case "dor":
		if grid == nil || grid.Wrap {
			return nil, nil, fmt.Errorf("cli: dor requires a mesh")
		}
		return routing.DimensionOrder(grid), grid, nil
	case "negfirst":
		if grid == nil || grid.Wrap {
			return nil, nil, fmt.Errorf("cli: negfirst requires a mesh")
		}
		return routing.NegativeFirst(grid), grid, nil
	case "dallyseitz":
		if grid == nil || !grid.Wrap {
			return nil, nil, fmt.Errorf("cli: dallyseitz requires a torus")
		}
		return routing.DallySeitzTorus(grid), grid, nil
	case "ecube":
		if topo != "hypercube" {
			return nil, nil, fmt.Errorf("cli: ecube requires a hypercube")
		}
		return routing.ECube(net), grid, nil
	case "bfs":
		return routing.ShortestBFS(net), grid, nil
	case "valiant":
		if grid == nil || grid.Wrap {
			return nil, nil, fmt.Errorf("cli: valiant requires a mesh")
		}
		return routing.Valiant(grid, 1, false), grid, nil
	case "valiantsplit":
		if grid == nil || grid.Wrap || vcs < 2 {
			return nil, nil, fmt.Errorf("cli: valiantsplit requires a mesh with at least 2 virtual channels")
		}
		return routing.Valiant(grid, 1, true), grid, nil
	case "hub":
		return routing.Hub(net, 0), grid, nil
	default:
		return nil, nil, fmt.Errorf("cli: unknown algorithm %q", alg)
	}
}

// AdaptiveNames lists the algorithm names BuildAdaptive accepts.
var AdaptiveNames = map[string]bool{"fulladaptive": true, "westfirst": true, "duato": true}

// BuildAdaptive constructs an adaptive routing algorithm on a grid
// topology: fulladaptive (mesh or torus, any VCs), westfirst (2-D mesh,
// 1+ VCs), duato (mesh, 2+ VCs).
func BuildAdaptive(topo, alg, dims string, vcs int) (adaptive.Algorithm, *topology.Grid, error) {
	d, err := ParseDims(dims)
	if err != nil {
		return adaptive.Algorithm{}, nil, err
	}
	if vcs < 1 {
		vcs = 1
	}
	var grid *topology.Grid
	switch topo {
	case "mesh":
		grid = topology.NewMesh(d, vcs)
	case "torus":
		grid = topology.NewTorus(d, vcs)
	default:
		return adaptive.Algorithm{}, nil, fmt.Errorf("cli: adaptive algorithms need a mesh or torus, not %q", topo)
	}
	switch alg {
	case "fulladaptive":
		return adaptive.FullyAdaptiveMinimal(grid), grid, nil
	case "westfirst":
		if grid.Wrap || len(grid.Dims) != 2 {
			return adaptive.Algorithm{}, nil, fmt.Errorf("cli: westfirst needs a 2-D mesh")
		}
		return adaptive.WestFirst(grid), grid, nil
	case "duato":
		if grid.Wrap {
			return adaptive.Algorithm{}, nil, fmt.Errorf("cli: duato needs a mesh")
		}
		if vcs < 2 {
			return adaptive.Algorithm{}, nil, fmt.Errorf("cli: duato needs at least 2 virtual channels")
		}
		return adaptive.DuatoMesh(grid), grid, nil
	}
	return adaptive.Algorithm{}, nil, fmt.Errorf("cli: unknown adaptive algorithm %q", alg)
}

// PatternNames lists the traffic pattern names BuildPattern accepts.
const PatternNames = "uniform, transpose, bitrev, hotspot, tornado, complement, shuffle, randperm"

// BuildPattern resolves a traffic-pattern name for a network. grid may be
// nil for non-grid topologies (grid-only patterns then error). permSeed
// seeds the randperm pattern's fixed permutation.
func BuildPattern(name string, net *topology.Network, grid *topology.Grid, permSeed int64) (traffic.Pattern, error) {
	n := net.NumNodes()
	needSquare := func() error {
		if grid == nil || len(grid.Dims) != 2 || grid.Dims[0] != grid.Dims[1] {
			return fmt.Errorf("cli: pattern %q needs a square 2-D mesh/torus", name)
		}
		return nil
	}
	switch name {
	case "uniform":
		return traffic.Uniform(n), nil
	case "transpose":
		if err := needSquare(); err != nil {
			return nil, err
		}
		return traffic.Transpose(grid), nil
	case "bitrev":
		return traffic.BitReversal(n), nil
	case "hotspot":
		return traffic.Hotspot(n, 0, 0.3), nil
	case "tornado":
		if grid == nil {
			return nil, fmt.Errorf("cli: pattern %q needs a mesh/torus", name)
		}
		return traffic.Tornado(grid), nil
	case "complement":
		if grid == nil {
			return nil, fmt.Errorf("cli: pattern %q needs a mesh/torus", name)
		}
		return traffic.Complement(grid), nil
	case "shuffle":
		return traffic.Shuffle(n), nil
	case "randperm":
		return traffic.RandomPermutation(n, permSeed), nil
	}
	return nil, fmt.Errorf("cli: unknown pattern %q (want %s)", name, PatternNames)
}

// PaperNet resolves a paper-construction name: figure1, figure2,
// figure3a..figure3f, gen<k>.
func PaperNet(name string) (*papernets.Net, error) {
	switch {
	case name == "figure1" || name == "fig1":
		return papernets.Figure1(), nil
	case name == "figure2" || name == "fig2":
		return papernets.Figure2(), nil
	case strings.HasPrefix(name, "figure3") && len(name) == len("figure3")+1,
		strings.HasPrefix(name, "fig3") && len(name) == len("fig3")+1:
		letter := name[len(name)-1]
		if letter < 'a' || letter > 'f' {
			return nil, fmt.Errorf("cli: figure 3 letter %q out of range a..f", letter)
		}
		return papernets.Figure3(letter), nil
	case strings.HasPrefix(name, "gen"):
		k, err := strconv.Atoi(name[3:])
		if err != nil || k < 1 {
			return nil, fmt.Errorf("cli: bad gen parameter in %q", name)
		}
		return papernets.GenK(k), nil
	}
	return nil, fmt.Errorf("cli: unknown paper network %q (want figure1, figure2, figure3a..f, gen<k>)", name)
}
