package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/mcheck"
	"repro/internal/obsv"
	"repro/internal/topology"
)

// ObsvFlags holds the observability flags shared by every command:
// -trace, -trace-format, -metrics and -progress. Register them with
// RegisterObsvFlags before flag.Parse, then Open an Observer.
type ObsvFlags struct {
	Trace       *string
	TraceFormat *string
	Metrics     *string
	Progress    *bool
}

// RegisterObsvFlags registers the shared observability flags on the
// default flag set.
func RegisterObsvFlags() *ObsvFlags {
	return &ObsvFlags{
		Trace:       flag.String("trace", "", "write a deterministic trace of the run to this file"),
		TraceFormat: flag.String("trace-format", "", "trace format: jsonl, dot, chrome (default: inferred from the -trace extension, else jsonl)"),
		Metrics:     flag.String("metrics", "", "write a metrics snapshot to this file (.prom/.txt = Prometheus text format, else JSON)"),
		Progress:    flag.Bool("progress", false, "print periodic search progress to stderr"),
	}
}

// Enabled reports whether any observability output was requested.
func (f *ObsvFlags) Enabled() bool {
	return *f.Trace != "" || *f.Metrics != ""
}

// Observer bundles the sinks opened from a set of ObsvFlags. Tracer is
// nil when no tracing or metrics were requested, so it can be handed to
// sim.SetTracer / SearchOptions.Tracer / fault.Runner.Tracer directly —
// the producers' nil checks keep the disabled path free.
type Observer struct {
	// Tracer fans out to every requested sink; nil when none.
	Tracer obsv.Tracer
	// Metrics is the live registry behind -metrics; nil when unset.
	Metrics *obsv.Registry

	metricsPath string
	closers     []io.Closer
	file        *os.File
}

// traceFormat resolves the output format from the explicit flag or the
// trace path's extension.
func traceFormat(format, path string) (string, error) {
	if format != "" {
		switch format {
		case "jsonl", "dot", "chrome":
			return format, nil
		}
		return "", fmt.Errorf("cli: unknown trace format %q (want jsonl, dot, chrome)", format)
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".dot", ".gv":
		return "dot", nil
	case ".json":
		return "chrome", nil
	default:
		return "jsonl", nil
	}
}

// Open opens the sinks the flags request. name titles DOT snapshots;
// lanes (one per channel, see ChannelLanes) names the Chrome trace lanes.
// The caller must Close the observer to flush the trace and write the
// metrics snapshot.
func (f *ObsvFlags) Open(name string, lanes []string) (*Observer, error) {
	o := &Observer{}
	var tracers obsv.Multi
	if *f.Metrics != "" {
		o.Metrics = obsv.NewRegistry()
		o.metricsPath = *f.Metrics
		tracers = append(tracers, obsv.NewMetricsSink(o.Metrics))
	}
	if *f.Trace != "" {
		format, err := traceFormat(*f.TraceFormat, *f.Trace)
		if err != nil {
			return nil, err
		}
		file, err := os.Create(*f.Trace)
		if err != nil {
			return nil, fmt.Errorf("cli: -trace: %w", err)
		}
		o.file = file
		switch format {
		case "jsonl":
			s := obsv.NewJSONL(file)
			tracers = append(tracers, s)
			o.closers = append(o.closers, s)
		case "dot":
			s := obsv.NewDOT(file, name)
			tracers = append(tracers, s)
			o.closers = append(o.closers, s)
		case "chrome":
			s := obsv.NewChromeTrace(file, lanes)
			tracers = append(tracers, s)
			o.closers = append(o.closers, s)
		}
	}
	switch len(tracers) {
	case 0:
	case 1:
		o.Tracer = tracers[0]
	default:
		o.Tracer = tracers
	}
	return o, nil
}

// Close flushes and closes the trace sink and writes the metrics
// snapshot, if any.
func (o *Observer) Close() error {
	var first error
	for _, c := range o.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	if o.file != nil {
		if err := o.file.Close(); err != nil && first == nil {
			first = err
		}
	}
	if o.Metrics != nil && o.metricsPath != "" {
		file, err := os.Create(o.metricsPath)
		if err != nil {
			if first == nil {
				first = err
			}
			return first
		}
		switch strings.ToLower(filepath.Ext(o.metricsPath)) {
		case ".prom", ".txt":
			err = o.Metrics.WritePrometheus(file)
		default:
			err = o.Metrics.WriteJSON(file)
		}
		if cerr := file.Close(); err == nil {
			err = cerr
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// RegisterReductionFlag registers the shared -reduction flag on the
// default flag set. Resolve the parsed value with cli.Reduction after
// flag.Parse.
func RegisterReductionFlag() *string {
	return flag.String("reduction", "none",
		"state-space reduction for exhaustive searches: none, por, sym, all (verdict-preserving)")
}

// Reduction parses a -reduction flag value, exiting with a usage error
// on an unknown mode.
func Reduction(value string) mcheck.Reduction {
	r, err := mcheck.ParseReduction(value)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return r
}

// SearchProgress returns a periodic-progress callback printing to stderr
// when -progress is set, nil otherwise. The callback carries wall-clock
// rates and is deliberately kept out of the deterministic trace.
func (f *ObsvFlags) SearchProgress() func(mcheck.ProgressInfo) {
	if !*f.Progress {
		return nil
	}
	return func(p mcheck.ProgressInfo) {
		fmt.Fprintf(os.Stderr, "search: level %d, frontier %d, %d states, %.0f states/sec, %s\n",
			p.Level, p.Frontier, p.States, p.StatesPerSec, p.Elapsed.Round(1e7))
	}
}

// ChannelLanes names one Chrome-trace lane per channel of the network,
// in channel-ID order.
func ChannelLanes(net *topology.Network) []string {
	lanes := make([]string, net.NumChannels())
	for c := range lanes {
		ch := net.Channel(topology.ChannelID(c))
		lanes[c] = fmt.Sprintf("c%d %d->%d", c, ch.Src, ch.Dst)
	}
	return lanes
}
