package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/mcheck"
	"repro/internal/obsv"
	"repro/internal/obsv/manifest"
	"repro/internal/obsv/serve"
	"repro/internal/obsv/telemetry"
	"repro/internal/topology"
)

// ObsvFlags holds the observability flags shared by every command:
// -trace, -trace-format, -metrics, -progress, and the run-observatory
// trio -serve, -profile, -manifest. Register them with RegisterObsvFlags
// before flag.Parse, then Open an Observer.
type ObsvFlags struct {
	Trace             *string
	TraceFormat       *string
	Metrics           *string
	Progress          *bool
	Serve             *string
	Profile           *string
	Manifest          *string
	Telemetry         *int
	TelemetryAdaptive *bool
	TelemetryMax      *int
	TelemetryWindow   *string
	FlightRecorder    *string
}

// RegisterObsvFlags registers the shared observability flags on the
// default flag set.
func RegisterObsvFlags() *ObsvFlags {
	return &ObsvFlags{
		Trace:       flag.String("trace", "", "write a deterministic trace of the run to this file"),
		TraceFormat: flag.String("trace-format", "", "trace format: jsonl, dot, chrome (default: inferred from the -trace extension, else jsonl)"),
		Metrics:     flag.String("metrics", "", "write a metrics snapshot to this file (.prom/.txt = Prometheus text format, else JSON)"),
		Progress:    flag.Bool("progress", false, "print periodic search progress to stderr"),
		Serve:       flag.String("serve", "", "serve /metrics, /progress, /healthz and /debug/pprof on this address while the run executes (e.g. :8080)"),
		Profile:     flag.String("profile", "", "write cpu.pprof and heap.pprof for the run into this directory"),
		Manifest:    flag.String("manifest", "", "write a run-manifest JSON (command, flags, verdicts, timings, peak RSS) to this file"),
		Telemetry: flag.Int("telemetry", 0,
			"sample per-channel telemetry every N cycles (0 = off; implied at stride 64 by -flight-recorder)"),
		TelemetryAdaptive: flag.Bool("telemetry-adaptive", false,
			"adapt the telemetry stride to load: back off geometrically while the network is quiet, tighten to the base stride near saturation (deterministic)"),
		TelemetryMax: flag.Int("telemetry-max-stride", 0,
			"cap for the adaptive telemetry stride (0 = 16x the base stride)"),
		TelemetryWindow: flag.String("telemetry-window", "",
			"retain a delta-compressed long-horizon frame window under this byte budget (e.g. 256K, 4M); flight bundles then carry the whole window instead of the 64-frame ring"),
		FlightRecorder: flag.String("flight-recorder", "",
			"write a flight-recorder dump (telemetry frames, recent events, wait-for DOT, congestion heatmap) into this directory when the run deadlocks, fails liveness, or saturates"),
	}
}

// Enabled reports whether any observability output was requested.
func (f *ObsvFlags) Enabled() bool {
	return *f.Trace != "" || *f.Metrics != ""
}

// Observer bundles the sinks opened from a set of ObsvFlags. Tracer is
// nil when no tracing or metrics were requested, so it can be handed to
// sim.SetTracer / SearchOptions.Tracer / fault.Runner.Tracer directly —
// the producers' nil checks keep the disabled path free. The same
// nil-when-off rule holds for the observatory: Server, Manifest and the
// profiler exist only when their flags were set, so an unobserved run
// pays nothing.
type Observer struct {
	// Tracer fans out to every requested sink; nil when none.
	Tracer obsv.Tracer
	// Metrics is the live registry behind -metrics and -serve; nil when
	// both are unset.
	Metrics *obsv.Registry
	// Server is the live HTTP observatory behind -serve; nil when unset.
	Server *serve.Server
	// Manifest accumulates the invocation's run manifest behind -manifest;
	// nil when unset. Close writes it.
	Manifest *manifest.Builder
	// TelemetryStride is the -telemetry sampling stride (0 when off);
	// FlightDir the -flight-recorder dump directory ("" when off). Build
	// per-run collectors/recorders from them with NewTelemetry.
	// TelemetryAdaptive / TelemetryMaxStride / TelemetryWindowBytes carry
	// the long-horizon knobs into those collectors.
	TelemetryStride      int
	TelemetryAdaptive    bool
	TelemetryMaxStride   int
	TelemetryWindowBytes int
	FlightDir            string

	progress    bool
	profiler    *manifest.Profiler
	metricsPath string
	closers     []io.Closer
	file        *os.File
}

// traceFormat resolves the output format from the explicit flag or the
// trace path's extension.
func traceFormat(format, path string) (string, error) {
	if format != "" {
		switch format {
		case "jsonl", "dot", "chrome":
			return format, nil
		}
		return "", fmt.Errorf("cli: unknown trace format %q (want jsonl, dot, chrome)", format)
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".dot", ".gv":
		return "dot", nil
	case ".json":
		return "chrome", nil
	default:
		return "jsonl", nil
	}
}

// Open opens the sinks the flags request. name titles DOT snapshots;
// lanes (one per channel, see ChannelLanes) names the Chrome trace lanes.
// The caller must Close the observer to flush the trace and write the
// metrics snapshot.
func (f *ObsvFlags) Open(name string, lanes []string) (*Observer, error) {
	o := &Observer{
		progress:           *f.Progress,
		TelemetryStride:    *f.Telemetry,
		TelemetryAdaptive:  *f.TelemetryAdaptive,
		TelemetryMaxStride: *f.TelemetryMax,
		FlightDir:          *f.FlightRecorder,
	}
	if *f.TelemetryWindow != "" {
		wb, err := ParseByteSize(*f.TelemetryWindow)
		if err != nil {
			return nil, fmt.Errorf("cli: -telemetry-window: %w", err)
		}
		o.TelemetryWindowBytes = int(wb)
	}
	var tracers obsv.Multi
	if *f.Metrics != "" || *f.Serve != "" {
		// -serve needs a live registry for /metrics even when no snapshot
		// file was requested.
		o.Metrics = obsv.NewRegistry()
		o.metricsPath = *f.Metrics
		tracers = append(tracers, obsv.NewMetricsSink(o.Metrics))
	}
	if *f.Trace != "" {
		format, err := traceFormat(*f.TraceFormat, *f.Trace)
		if err != nil {
			return nil, err
		}
		file, err := os.Create(*f.Trace)
		if err != nil {
			return nil, fmt.Errorf("cli: -trace: %w", err)
		}
		o.file = file
		switch format {
		case "jsonl":
			s := obsv.NewJSONL(file)
			tracers = append(tracers, s)
			o.closers = append(o.closers, s)
		case "dot":
			s := obsv.NewDOT(file, name)
			tracers = append(tracers, s)
			o.closers = append(o.closers, s)
		case "chrome":
			s := obsv.NewChromeTrace(file, lanes)
			tracers = append(tracers, s)
			o.closers = append(o.closers, s)
		}
	}
	switch len(tracers) {
	case 0:
	case 1:
		o.Tracer = tracers[0]
	default:
		o.Tracer = tracers
	}
	if *f.Serve != "" {
		o.Server = serve.New(o.Metrics)
		addr, err := o.Server.Start(*f.Serve)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "observatory: listening on http://%s\n", addr)
	}
	if *f.Profile != "" {
		p, err := manifest.StartProfiles(*f.Profile)
		if err != nil {
			return nil, err
		}
		o.profiler = p
	}
	if *f.Manifest != "" {
		o.Manifest = manifest.NewBuilder(*f.Manifest, filepath.Base(os.Args[0]), os.Args[1:])
		// Open runs after flag.Parse in every command, so the explicitly
		// set flags are known here.
		o.Manifest.CaptureFlags(flag.CommandLine)
	}
	return o, nil
}

// Close flushes and closes the trace sink, writes the metrics snapshot,
// stops the profiler, writes the run manifest, and stops the HTTP server
// — in that order, so the manifest can record the profile paths and a
// last scrape can still see final metrics.
func (o *Observer) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	for _, c := range o.closers {
		keep(c.Close())
	}
	if o.file != nil {
		keep(o.file.Close())
	}
	if o.Metrics != nil && o.metricsPath != "" {
		file, err := os.Create(o.metricsPath)
		keep(err)
		if err == nil {
			switch strings.ToLower(filepath.Ext(o.metricsPath)) {
			case ".prom", ".txt":
				err = o.Metrics.WritePrometheus(file)
			default:
				err = o.Metrics.WriteJSON(file)
			}
			keep(err)
			keep(file.Close())
		}
	}
	if o.profiler != nil {
		cpu, heap, err := o.profiler.Stop()
		keep(err)
		o.profiler = nil
		if o.Manifest != nil {
			o.Manifest.SetProfiles(cpu, heap)
		}
	}
	if o.Manifest != nil {
		keep(o.Manifest.Write())
	}
	if o.Server != nil {
		keep(o.Server.Close())
	}
	return first
}

// Publish sends a snapshot to the live /progress hub. No-op when -serve
// is off (or the observer is nil), so producers can call it
// unconditionally.
func (o *Observer) Publish(s serve.Snapshot) {
	if o == nil || o.Server == nil {
		return
	}
	o.Server.Hub().Publish(s)
}

// RecordRun appends one run to the manifest. No-op when -manifest is off.
func (o *Observer) RecordRun(r manifest.Run) {
	if o == nil || o.Manifest == nil {
		return
	}
	o.Manifest.AddRun(r)
}

// SearchRun condenses a search result into a manifest run entry.
func SearchRun(name string, net *topology.Network, res mcheck.SearchResult) manifest.Run {
	run := manifest.Run{
		Name:         name,
		TopologyHash: manifest.TopologyHash(net),
		Verdict:      res.Verdict.String(),
		States:       res.States,
		StatesPerSec: int64(res.StatesPerSec),
		PeakVisited:  res.PeakVisited,
		Workers:      res.Workers,
		ElapsedMS:    res.Elapsed.Milliseconds(),
		Warnings:     res.Warnings,
	}
	if res.Reduction != mcheck.RedNone {
		run.Reduction = res.Reduction.String()
		run.StatesPruned = res.StatesPruned
		run.ReductionRatio = manifest.ReductionRatio(res.States, res.StatesPruned)
	}
	// Visited-set accounting: the backend name is recorded only when a
	// non-default backend ran, the byte figures always (peak RSS lives at
	// the manifest top level; this is the structure's own accounting).
	if res.Visited.Backend != "" && res.Visited.Backend != "mem" {
		run.VisitedBackend = res.Visited.Backend
	}
	run.VisitedBytes = res.Visited.Bytes
	run.SpillBytes = res.Visited.SpillBytes
	run.SpillRuns = res.Visited.SpillRuns
	run.BloomFPRate = res.Visited.BloomFPRate
	return run
}

// RegisterReductionFlag registers the shared -reduction flag on the
// default flag set. Resolve the parsed value with cli.Reduction after
// flag.Parse.
func RegisterReductionFlag() *string {
	return flag.String("reduction", "none",
		"state-space reduction for exhaustive searches: none, por, sym, all (verdict-preserving)")
}

// Reduction parses a -reduction flag value, exiting with a usage error
// on an unknown mode.
func Reduction(value string) mcheck.Reduction {
	r, err := mcheck.ParseReduction(value)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return r
}

// SearchProgress returns a periodic-progress callback for the named
// search: it prints to stderr when -progress is set and feeds the live
// /progress endpoint when -serve is on. Nil when both are off, so the
// search engine skips progress bookkeeping entirely. The callback carries
// wall-clock rates and is deliberately kept out of the deterministic
// trace.
func (o *Observer) SearchProgress(name string) func(mcheck.ProgressInfo) {
	live := o != nil && o.Server != nil
	stderr := o != nil && o.progress
	if !live && !stderr {
		return nil
	}
	return func(p mcheck.ProgressInfo) {
		if stderr {
			spill := ""
			if p.SpillBytes > 0 {
				spill = fmt.Sprintf(" (+%s spilled)", FormatBytes(p.SpillBytes))
			}
			fmt.Fprintf(os.Stderr, "search: level %d, frontier %d, %d states, %.0f states/sec, visited %s%s, %s\n",
				p.Level, p.Frontier, p.States, p.StatesPerSec, FormatBytes(p.VisitedBytes), spill, p.Elapsed.Round(1e7))
		}
		if live {
			o.Publish(serve.Snapshot{
				Source:         "search",
				Name:           name,
				Level:          p.Level,
				Frontier:       p.Frontier,
				States:         p.States,
				StatesPerSec:   int64(p.StatesPerSec),
				ElapsedMS:      p.Elapsed.Milliseconds(),
				VisitedEntries: p.VisitedEntries,
				VisitedBytes:   p.VisitedBytes,
				SpillBytes:     p.SpillBytes,
				BloomFPRate:    p.BloomFPRate,
			})
		}
	}
}

// ProgressInterval returns the progress-callback throttle to use with
// SearchProgress: a fast interval when -serve is on (so even sub-second
// searches surface live snapshots to pollers) and 0 otherwise, which
// lets the search engine's stderr-friendly 2s default stand.
func (o *Observer) ProgressInterval() time.Duration {
	if o != nil && o.Server != nil {
		return 100 * time.Millisecond
	}
	return 0
}

// PublishSearchDone marks the live /progress stream finished with the
// search's verdict. No-op when -serve is off.
func (o *Observer) PublishSearchDone(name string, res mcheck.SearchResult) {
	o.Publish(serve.Snapshot{
		Source:       "search",
		Name:         name,
		States:       res.States,
		StatesPerSec: int64(res.StatesPerSec),
		ElapsedMS:    res.Elapsed.Milliseconds(),
		Done:         true,
		Verdict:      res.Verdict.String(),
	})
}

// NewTelemetry builds the sampling-telemetry pair a run on net should
// attach, from the -telemetry / -flight-recorder flags: a collector for
// sim.SetTelemetry (nil when both flags are off) and a flight recorder
// for sim.SetTracer (nil unless -flight-recorder is set). When the live
// observatory or a metrics snapshot is on, each closing frame is bridged
// to the /telemetry endpoint and to telemetry_* gauges. Collectors are
// per-run: sweeps call this once per point/cell.
func (o *Observer) NewTelemetry(net *topology.Network) (*telemetry.Collector, *telemetry.FlightRecorder) {
	if o == nil || (o.TelemetryStride <= 0 && o.FlightDir == "") {
		return nil, nil
	}
	col := telemetry.NewCollector(net.NumChannels(), telemetry.Config{
		Stride:      o.TelemetryStride,
		Adaptive:    o.TelemetryAdaptive,
		MaxStride:   o.TelemetryMaxStride,
		WindowBytes: o.TelemetryWindowBytes,
	})
	if o.Server != nil || o.Metrics != nil {
		srv, reg := o.Server, o.Metrics
		var buf []byte
		col.OnFrame = func(f *telemetry.Frame) {
			if srv != nil {
				buf = f.AppendJSON(buf[:0])
				srv.TelemetryHub().Publish(buf)
			}
			if reg != nil {
				reg.Gauge("telemetry_frames").Set(int64(f.Index + 1))
				reg.Gauge("telemetry_live_messages").Set(int64(f.Live))
				reg.Gauge("telemetry_frame_flits").Set(f.FlitsDelta)
			}
		}
	}
	var rec *telemetry.FlightRecorder
	if o.FlightDir != "" {
		rec = telemetry.NewFlightRecorder(net, 0, col)
	}
	return col, rec
}

// PublishSLO renders the report and sends it to the live /telemetry/slo
// hub. No-op when -serve is off or the report is nil, so producers call
// it unconditionally after each evaluation.
func (o *Observer) PublishSLO(rep *telemetry.SLOReport) {
	if o == nil || o.Server == nil || rep == nil {
		return
	}
	o.Server.SLOHub().Publish(rep.AppendJSON(nil))
}

// DumpFlight writes the recorder's bundle into the observer's flight
// directory (joined with sub when non-empty) and logs where it went.
// No-op when the recorder is nil or -flight-recorder is off, so callers
// invoke it unconditionally on bad verdicts.
func (o *Observer) DumpFlight(rec *telemetry.FlightRecorder, sub, reason string) {
	if o == nil || rec == nil || o.FlightDir == "" {
		return
	}
	dir := o.FlightDir
	if sub != "" {
		dir = filepath.Join(dir, sub)
	}
	if err := rec.Dump(dir, reason); err != nil {
		fmt.Fprintf(os.Stderr, "flight-recorder: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "flight-recorder: wrote %s (%s)\n", dir, reason)
}

// TelemetrySummary flushes the collector's partial frame and returns its
// manifest summary block, with latency quantiles from lat when non-nil.
// Nil in, nil out, so callers can assign it to manifest.Run.Telemetry
// unconditionally.
func TelemetrySummary(col *telemetry.Collector, lat *telemetry.Sketch) *telemetry.Summary {
	if col == nil {
		return nil
	}
	col.Flush()
	s := col.Summary(lat)
	return &s
}

// ChannelLanes names one Chrome-trace lane per channel of the network,
// in channel-ID order.
func ChannelLanes(net *topology.Network) []string {
	lanes := make([]string, net.NumChannels())
	for c := range lanes {
		ch := net.Channel(topology.ChannelID(c))
		lanes[c] = fmt.Sprintf("c%d %d->%d", c, ch.Src, ch.Dst)
	}
	return lanes
}
