// Package topology models interconnection networks as strongly connected
// directed multigraphs, following Definition 1 of Schwiebert (SPAA '97):
// vertices are processors (nodes) and arcs are unidirectional channels that
// connect neighboring processors. Multiple channels — for example several
// virtual channels multiplexed over one physical link — may connect the same
// ordered pair of nodes.
//
// The package provides constructors for the standard regular topologies used
// throughout the wormhole-routing literature (rings, k-ary n-meshes and tori,
// hypercubes, stars) as well as a general builder for the irregular custom
// networks the paper's constructions require (Figures 1–3 and the Section 6
// generalization).
package topology

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a processor in a Network. IDs are dense, starting at 0,
// in order of insertion.
type NodeID int

// ChannelID identifies a unidirectional channel in a Network. IDs are dense,
// starting at 0, in order of insertion.
type ChannelID int

// None is the sentinel returned when no channel applies, e.g. by routing
// functions when a message has reached its destination.
const None ChannelID = -1

// Channel is a unidirectional communication channel from Src to Dst,
// optionally one of several virtual channels (VC) sharing the same physical
// link. Label is purely descriptive and appears in diagnostics and DOT
// output.
type Channel struct {
	ID    ChannelID
	Src   NodeID
	Dst   NodeID
	VC    int
	Label string
}

// String returns a compact human-readable description of the channel.
func (c Channel) String() string {
	if c.Label != "" {
		return c.Label
	}
	if c.VC != 0 {
		return fmt.Sprintf("c%d(%d->%d.v%d)", c.ID, c.Src, c.Dst, c.VC)
	}
	return fmt.Sprintf("c%d(%d->%d)", c.ID, c.Src, c.Dst)
}

// Node is a processor with an optional descriptive label.
type Node struct {
	ID    NodeID
	Label string
}

// String returns the node's label, or a numeric fallback.
func (n Node) String() string {
	if n.Label != "" {
		return n.Label
	}
	return fmt.Sprintf("n%d", n.ID)
}

// Network is a directed multigraph of nodes and channels. The zero value is
// an empty network ready for use; nodes and channels are added with AddNode
// and AddChannel.
type Network struct {
	name     string
	nodes    []Node
	channels []Channel
	out      [][]ChannelID // outgoing channels per node
	in       [][]ChannelID // incoming channels per node
}

// New returns an empty named network.
func New(name string) *Network {
	return &Network{name: name}
}

// Name returns the network's descriptive name.
func (n *Network) Name() string { return n.name }

// NumNodes returns the number of processors.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumChannels returns the number of unidirectional channels.
func (n *Network) NumChannels() int { return len(n.channels) }

// AddNode adds a processor with the given label and returns its ID.
func (n *Network) AddNode(label string) NodeID {
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, Node{ID: id, Label: label})
	n.out = append(n.out, nil)
	n.in = append(n.in, nil)
	return id
}

// AddNodes adds count unlabeled processors and returns the ID of the first.
// Subsequent nodes have consecutive IDs.
func (n *Network) AddNodes(count int) NodeID {
	first := NodeID(len(n.nodes))
	for i := 0; i < count; i++ {
		n.AddNode("")
	}
	return first
}

// AddChannel adds a unidirectional channel from src to dst on virtual
// channel vc and returns its ID. It panics if either endpoint does not
// exist or if src == dst; self-loop channels are meaningless in the model.
func (n *Network) AddChannel(src, dst NodeID, vc int, label string) ChannelID {
	if !n.validNode(src) || !n.validNode(dst) {
		panic(fmt.Sprintf("topology: AddChannel(%d, %d): node out of range [0,%d)", src, dst, len(n.nodes)))
	}
	if src == dst {
		panic(fmt.Sprintf("topology: AddChannel: self-loop at node %d", src))
	}
	id := ChannelID(len(n.channels))
	n.channels = append(n.channels, Channel{ID: id, Src: src, Dst: dst, VC: vc, Label: label})
	n.out[src] = append(n.out[src], id)
	n.in[dst] = append(n.in[dst], id)
	return id
}

// AddBidirectional adds a pair of opposite channels between a and b on
// virtual channel vc and returns their IDs (a->b first).
func (n *Network) AddBidirectional(a, b NodeID, vc int, labelAB, labelBA string) (ChannelID, ChannelID) {
	ab := n.AddChannel(a, b, vc, labelAB)
	ba := n.AddChannel(b, a, vc, labelBA)
	return ab, ba
}

func (n *Network) validNode(id NodeID) bool {
	return id >= 0 && int(id) < len(n.nodes)
}

func (n *Network) validChannel(id ChannelID) bool {
	return id >= 0 && int(id) < len(n.channels)
}

// Node returns the node with the given ID. It panics on out-of-range IDs.
func (n *Network) Node(id NodeID) Node {
	if !n.validNode(id) {
		panic(fmt.Sprintf("topology: Node(%d): out of range [0,%d)", id, len(n.nodes)))
	}
	return n.nodes[id]
}

// Channel returns the channel with the given ID. It panics on out-of-range
// IDs.
func (n *Network) Channel(id ChannelID) Channel {
	if !n.validChannel(id) {
		panic(fmt.Sprintf("topology: Channel(%d): out of range [0,%d)", id, len(n.channels)))
	}
	return n.channels[id]
}

// Nodes returns all nodes in ID order. The returned slice is shared; callers
// must not modify it.
func (n *Network) Nodes() []Node { return n.nodes }

// Channels returns all channels in ID order. The returned slice is shared;
// callers must not modify it.
func (n *Network) Channels() []Channel { return n.channels }

// Out returns the IDs of channels leaving node id. The returned slice is
// shared; callers must not modify it.
func (n *Network) Out(id NodeID) []ChannelID {
	if !n.validNode(id) {
		panic(fmt.Sprintf("topology: Out(%d): out of range", id))
	}
	return n.out[id]
}

// In returns the IDs of channels entering node id. The returned slice is
// shared; callers must not modify it.
func (n *Network) In(id NodeID) []ChannelID {
	if !n.validNode(id) {
		panic(fmt.Sprintf("topology: In(%d): out of range", id))
	}
	return n.in[id]
}

// ChannelsBetween returns the IDs of all channels from src to dst, sorted by
// virtual-channel index then ID.
func (n *Network) ChannelsBetween(src, dst NodeID) []ChannelID {
	var ids []ChannelID
	for _, cid := range n.Out(src) {
		if n.channels[cid].Dst == dst {
			ids = append(ids, cid)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := n.channels[ids[i]], n.channels[ids[j]]
		if a.VC != b.VC {
			return a.VC < b.VC
		}
		return a.ID < b.ID
	})
	return ids
}

// FindNode returns the first node whose label matches, or (-1, false).
func (n *Network) FindNode(label string) (NodeID, bool) {
	for _, nd := range n.nodes {
		if nd.Label == label {
			return nd.ID, true
		}
	}
	return -1, false
}

// FindChannel returns the first channel whose label matches, or (None, false).
func (n *Network) FindChannel(label string) (ChannelID, bool) {
	for _, c := range n.channels {
		if c.Label == label {
			return c.ID, true
		}
	}
	return None, false
}

// Validate checks structural well-formedness: at least two nodes, every
// channel endpoint in range, and strong connectivity (Definition 1 requires
// the network to be strongly connected so every routing problem is
// solvable).
func (n *Network) Validate() error {
	if len(n.nodes) < 2 {
		return fmt.Errorf("topology: network %q has %d nodes; need at least 2", n.name, len(n.nodes))
	}
	for _, c := range n.channels {
		if !n.validNode(c.Src) || !n.validNode(c.Dst) {
			return fmt.Errorf("topology: channel %d has invalid endpoints (%d -> %d)", c.ID, c.Src, c.Dst)
		}
	}
	if !n.StronglyConnected() {
		return fmt.Errorf("topology: network %q is not strongly connected", n.name)
	}
	return nil
}

// StronglyConnected reports whether every node can reach every other node
// along directed channels.
func (n *Network) StronglyConnected() bool {
	if len(n.nodes) == 0 {
		return false
	}
	if len(n.nodes) == 1 {
		return true
	}
	return n.reachesAll(0, false) && n.reachesAll(0, true)
}

// reachesAll reports whether BFS from start visits every node, following
// channels forward (reverse=false) or backward (reverse=true).
func (n *Network) reachesAll(start NodeID, reverse bool) bool {
	adj := n.out
	if reverse {
		adj = n.in
	}
	seen := make([]bool, len(n.nodes))
	seen[start] = true
	queue := []NodeID{start}
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, cid := range adj[u] {
			c := n.channels[cid]
			v := c.Dst
			if reverse {
				v = c.Src
			}
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == len(n.nodes)
}

// DOT renders the network in Graphviz format: one node per processor and
// one edge per channel, labeled with the channel's virtual-channel index
// when nonzero.
func (n *Network) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", n.name)
	for _, nd := range n.nodes {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", nd.ID, nd.String())
	}
	for _, c := range n.channels {
		if c.VC != 0 {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"v%d\"];\n", c.Src, c.Dst, c.VC)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", c.Src, c.Dst)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
