package topology

import (
	"sort"
)

// Automorphism is a structure-preserving relabeling of a network onto
// itself: Nodes[v] is the image of node v and Chans[c] the image of
// channel c. Every channel's endpoints and virtual-channel index are
// preserved — Channel(Chans[c]).Src == Nodes[Channel(c).Src], likewise
// for Dst, and the VC indices match. Node and channel labels are purely
// descriptive and are ignored, so two nodes that differ only in label
// are interchangeable.
//
// When several parallel channels share the same (Src, Dst, VC) triple the
// channel images are paired in ascending ID order, so each node
// permutation contributes exactly one Automorphism. For state-space
// quotienting that canonical choice is all that is needed: any subgroup
// (even a non-closed subset) of the full automorphism group yields a
// sound, if possibly coarser, reduction.
type Automorphism struct {
	Nodes []NodeID
	Chans []ChannelID
}

// IsIdentity reports whether the automorphism fixes every node and
// channel.
func (a *Automorphism) IsIdentity() bool {
	for v, w := range a.Nodes {
		if NodeID(v) != w {
			return false
		}
	}
	for c, d := range a.Chans {
		if ChannelID(c) != d {
			return false
		}
	}
	return true
}

// automorphismStepCap bounds the total number of backtracking extensions
// a single Automorphisms call may attempt, so a pathological highly
// symmetric multigraph cannot hang the caller. The regular topologies in
// this repository resolve in a few thousand steps.
const automorphismStepCap = 1 << 20

// Automorphisms enumerates graph automorphisms of the network, identity
// first, in lexicographic order of the node image array. limit caps the
// number returned (limit <= 0 means 64). The second result reports
// whether the enumeration is complete: false means the group is larger
// than the limit (or the internal step cap fired) and only a prefix was
// returned — still safe for symmetry reduction, which works with any
// subset containing the identity.
//
// The search is a vertex-refinement backtrack: nodes are first colored by
// an iterated Weisfeiler-Leman invariant (degree signature refined by
// neighbor colors until stable), then candidate images are tried within
// color classes with incremental multigraph-consistency checks.
func (n *Network) Automorphisms(limit int) ([]Automorphism, bool) {
	if limit <= 0 {
		limit = 64
	}
	nn := len(n.nodes)
	if nn == 0 {
		return nil, true
	}
	color := n.refineColors()

	// pairKey[(u,v)] is the sorted VC multiset of channels u -> v,
	// interned to a comparable id so the backtracking check is an int
	// compare.
	type pair struct{ u, v NodeID }
	keyID := make(map[string]int)
	pairKey := make(map[pair]int)
	intern := func(vcs []int) int {
		sort.Ints(vcs)
		var b []byte
		for _, vc := range vcs {
			b = appendInt(b, vc)
		}
		k := string(b)
		id, ok := keyID[k]
		if !ok {
			id = len(keyID) + 1
			keyID[k] = id
		}
		return id
	}
	{
		byPair := make(map[pair][]int)
		for _, c := range n.channels {
			p := pair{c.Src, c.Dst}
			byPair[p] = append(byPair[p], c.VC)
		}
		for p, vcs := range byPair {
			pairKey[p] = intern(vcs)
		}
	}
	key := func(u, v NodeID) int { return pairKey[pair{u, v}] }

	img := make([]NodeID, nn)
	used := make([]bool, nn)
	for i := range img {
		img[i] = -1
	}

	var autos []Automorphism
	complete := true
	steps := 0

	var extend func(v int) bool // false = abort enumeration entirely
	extend = func(v int) bool {
		if v == nn {
			if a, ok := n.deriveChannelMap(img); ok {
				autos = append(autos, a)
				if len(autos) >= limit {
					complete = false
					return false
				}
			}
			return true
		}
		for w := 0; w < nn; w++ {
			if used[w] || color[v] != color[w] {
				continue
			}
			steps++
			if steps > automorphismStepCap {
				complete = false
				return false
			}
			ok := true
			for u := 0; u < v; u++ {
				if key(NodeID(v), NodeID(u)) != key(NodeID(w), img[u]) ||
					key(NodeID(u), NodeID(v)) != key(img[u], NodeID(w)) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			img[v] = NodeID(w)
			used[w] = true
			cont := extend(v + 1)
			img[v] = -1
			used[w] = false
			if !cont {
				return false
			}
		}
		return true
	}
	extend(0)
	return autos, complete
}

// deriveChannelMap turns a node permutation into the canonical channel
// permutation: for every ordered node pair, channels are matched to the
// image pair's channels in ascending (VC, ID) order. It reports false if
// the VC multisets do not line up (the node map was not an automorphism
// after all — cannot happen after the backtracking checks, kept as a
// guard).
func (n *Network) deriveChannelMap(img []NodeID) (Automorphism, bool) {
	chans := make([]ChannelID, len(n.channels))
	for i := range chans {
		chans[i] = None
	}
	// Group channels by ordered pair once, in ID order.
	byPair := make(map[[2]NodeID][]ChannelID, len(n.channels))
	for _, c := range n.channels {
		p := [2]NodeID{c.Src, c.Dst}
		byPair[p] = append(byPair[p], c.ID)
	}
	sortByVC := func(ids []ChannelID) {
		sort.Slice(ids, func(i, j int) bool {
			a, b := n.channels[ids[i]], n.channels[ids[j]]
			if a.VC != b.VC {
				return a.VC < b.VC
			}
			return a.ID < b.ID
		})
	}
	for p, src := range byPair {
		dst := byPair[[2]NodeID{img[p[0]], img[p[1]]}]
		if len(dst) != len(src) {
			return Automorphism{}, false
		}
		sortByVC(src)
		sortByVC(dst)
		for i := range src {
			if n.channels[src[i]].VC != n.channels[dst[i]].VC {
				return Automorphism{}, false
			}
			chans[src[i]] = dst[i]
		}
	}
	return Automorphism{Nodes: append([]NodeID(nil), img...), Chans: chans}, true
}

// refineColors computes a stable node coloring invariant under
// automorphism: the initial color is the (in-degree, out-degree, VC
// multiset) signature, refined by the sorted colors of channel-connected
// neighbors until no class splits further.
func (n *Network) refineColors() []int {
	nn := len(n.nodes)
	color := make([]int, nn)
	next := make([]int, nn)
	sig := make([]string, nn)
	for round := 0; round <= nn; round++ {
		classes := make(map[string]int)
		for v := 0; v < nn; v++ {
			var b []byte
			b = appendInt(b, color[v])
			var outs, ins []int
			for _, cid := range n.out[v] {
				c := n.channels[cid]
				outs = append(outs, c.VC<<20|color[c.Dst])
			}
			for _, cid := range n.in[v] {
				c := n.channels[cid]
				ins = append(ins, c.VC<<20|color[c.Src])
			}
			sort.Ints(outs)
			sort.Ints(ins)
			b = appendInt(b, len(outs))
			for _, x := range outs {
				b = appendInt(b, x)
			}
			b = appendInt(b, -1)
			for _, x := range ins {
				b = appendInt(b, x)
			}
			sig[v] = string(b)
			if _, ok := classes[sig[v]]; !ok {
				classes[sig[v]] = len(classes)
			}
		}
		changed := false
		for v := 0; v < nn; v++ {
			next[v] = classes[sig[v]]
			if next[v] != color[v] {
				changed = true
			}
		}
		copy(color, next)
		if !changed {
			break
		}
	}
	return color
}

// appendInt appends a self-delimiting little-endian varint-ish rendering
// of x, adequate for building hash-key byte strings.
func appendInt(b []byte, x int) []byte {
	u := uint64(int64(x))
	for {
		d := byte(u & 0x7f)
		u >>= 7
		if u == 0 {
			return append(b, d|0x80)
		}
		b = append(b, d)
	}
}
