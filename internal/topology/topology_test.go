package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddNodeAndChannel(t *testing.T) {
	net := New("t")
	a := net.AddNode("a")
	b := net.AddNode("b")
	if a != 0 || b != 1 {
		t.Fatalf("node IDs = %d,%d; want 0,1", a, b)
	}
	c := net.AddChannel(a, b, 0, "ab")
	if c != 0 {
		t.Fatalf("channel ID = %d; want 0", c)
	}
	ch := net.Channel(c)
	if ch.Src != a || ch.Dst != b || ch.VC != 0 || ch.Label != "ab" {
		t.Fatalf("channel = %+v", ch)
	}
	if got := net.Out(a); len(got) != 1 || got[0] != c {
		t.Fatalf("Out(a) = %v", got)
	}
	if got := net.In(b); len(got) != 1 || got[0] != c {
		t.Fatalf("In(b) = %v", got)
	}
	if len(net.Out(b)) != 0 || len(net.In(a)) != 0 {
		t.Fatal("unexpected adjacency")
	}
}

func TestAddChannelPanics(t *testing.T) {
	net := New("t")
	a := net.AddNode("a")
	b := net.AddNode("b")
	for _, tc := range []struct {
		name     string
		src, dst NodeID
	}{
		{"self-loop", a, a},
		{"bad src", 99, b},
		{"bad dst", a, -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			net.AddChannel(tc.src, tc.dst, 0, "")
		})
	}
}

func TestAddBidirectional(t *testing.T) {
	net := New("t")
	a := net.AddNode("a")
	b := net.AddNode("b")
	ab, ba := net.AddBidirectional(a, b, 0, "ab", "ba")
	if net.Channel(ab).Src != a || net.Channel(ba).Src != b {
		t.Fatal("bidirectional channels have wrong orientation")
	}
	if !net.StronglyConnected() {
		t.Fatal("two nodes with both channels should be strongly connected")
	}
}

func TestStronglyConnected(t *testing.T) {
	net := New("t")
	a := net.AddNode("a")
	b := net.AddNode("b")
	c := net.AddNode("c")
	net.AddChannel(a, b, 0, "")
	net.AddChannel(b, c, 0, "")
	if net.StronglyConnected() {
		t.Fatal("line graph should not be strongly connected")
	}
	net.AddChannel(c, a, 0, "")
	if !net.StronglyConnected() {
		t.Fatal("directed 3-cycle should be strongly connected")
	}
	if err := net.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateTooSmall(t *testing.T) {
	net := New("t")
	net.AddNode("only")
	if err := net.Validate(); err == nil {
		t.Fatal("single-node network should fail validation")
	}
}

func TestChannelsBetweenSortsByVC(t *testing.T) {
	net := New("t")
	a := net.AddNode("a")
	b := net.AddNode("b")
	c2 := net.AddChannel(a, b, 2, "v2")
	c0 := net.AddChannel(a, b, 0, "v0")
	c1 := net.AddChannel(a, b, 1, "v1")
	got := net.ChannelsBetween(a, b)
	want := []ChannelID{c0, c1, c2}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("ChannelsBetween = %v; want %v", got, want)
	}
}

func TestFindNodeAndChannel(t *testing.T) {
	net := New("t")
	net.AddNode("a")
	b := net.AddNode("b")
	cid := net.AddChannel(0, b, 0, "edge")
	if got, ok := net.FindNode("b"); !ok || got != b {
		t.Fatalf("FindNode(b) = %v,%v", got, ok)
	}
	if _, ok := net.FindNode("zz"); ok {
		t.Fatal("FindNode(zz) should fail")
	}
	if got, ok := net.FindChannel("edge"); !ok || got != cid {
		t.Fatalf("FindChannel(edge) = %v,%v", got, ok)
	}
	if _, ok := net.FindChannel("zz"); ok {
		t.Fatal("FindChannel(zz) should fail")
	}
}

func TestRingDistances(t *testing.T) {
	uni := NewRing(5, false)
	d := uni.Distances()
	if d[0][1] != 1 || d[1][0] != 4 || d[0][0] != 0 {
		t.Fatalf("unidirectional ring distances wrong: %v", d[0])
	}
	bi := NewRing(5, true)
	db := bi.Distances()
	if db[0][4] != 1 || db[0][2] != 2 {
		t.Fatalf("bidirectional ring distances wrong: %v", db[0])
	}
}

func TestShortestPath(t *testing.T) {
	net := NewRing(6, false)
	p := net.ShortestPath(0, 3)
	if len(p) != 3 {
		t.Fatalf("path length = %d; want 3", len(p))
	}
	if !net.IsPath(0, 3, p) {
		t.Fatal("ShortestPath result fails IsPath")
	}
	nodes := net.PathNodes(p)
	if nodes[0] != 0 || nodes[len(nodes)-1] != 3 {
		t.Fatalf("PathNodes endpoints = %v", nodes)
	}
	if p := net.ShortestPath(2, 2); p != nil {
		t.Fatalf("ShortestPath(v,v) = %v; want nil", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	net := New("t")
	a := net.AddNode("a")
	b := net.AddNode("b")
	net.AddChannel(a, b, 0, "")
	if p := net.ShortestPath(b, a); p != nil {
		t.Fatalf("expected nil path, got %v", p)
	}
	if d := net.DistancesFrom(b); d[a] != -1 {
		t.Fatalf("DistancesFrom(b)[a] = %d; want -1", d[a])
	}
}

func TestIsPathRejectsBadPaths(t *testing.T) {
	net := NewRing(4, false)
	p := net.ShortestPath(0, 2)
	if net.IsPath(0, 3, p) {
		t.Fatal("IsPath should reject wrong destination")
	}
	if net.IsPath(1, 2, p) {
		t.Fatal("IsPath should reject wrong source")
	}
	if !net.IsPath(1, 1, nil) {
		t.Fatal("empty path from v to v should be valid")
	}
	if net.IsPath(1, 2, nil) {
		t.Fatal("empty path between distinct nodes should be invalid")
	}
	if net.IsPath(0, 2, []ChannelID{99}) {
		t.Fatal("IsPath should reject out-of-range channel")
	}
}

func TestMeshStructure(t *testing.T) {
	g := NewMesh([]int{3, 4}, 1)
	if g.NumNodes() != 12 {
		t.Fatalf("NumNodes = %d; want 12", g.NumNodes())
	}
	// Interior horizontal links: 2*(3*3) vertical 2*(2*4) = wait, count:
	// links per dimension: dim0 has (3-1)*4 adjacent pairs, dim1 has 3*(4-1).
	wantChannels := 2 * ((3-1)*4 + 3*(4-1))
	if g.NumChannels() != wantChannels {
		t.Fatalf("NumChannels = %d; want %d", g.NumChannels(), wantChannels)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Corner node has exactly 2 out-channels.
	corner := g.NodeAt([]int{0, 0})
	if got := len(g.Out(corner)); got != 2 {
		t.Fatalf("corner out-degree = %d; want 2", got)
	}
}

func TestMeshCoordsRoundTrip(t *testing.T) {
	g := NewMesh([]int{3, 4, 2}, 1)
	for n := 0; n < g.NumNodes(); n++ {
		c := g.Coords(NodeID(n))
		if g.NodeAt(c) != NodeID(n) {
			t.Fatalf("round trip failed for node %d: coords %v", n, c)
		}
	}
}

func TestTorusWrapLinks(t *testing.T) {
	g := NewTorus([]int{4}, 2)
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	// Each node: 2 directions x 2 vcs = 4 out channels.
	wantChannels := 4 * 4
	if g.NumChannels() != wantChannels {
		t.Fatalf("NumChannels = %d; want %d", g.NumChannels(), wantChannels)
	}
	// Wrap link from node 3 in + direction goes to node 0.
	cid, ok := g.Link(3, 0, 0, 1)
	if !ok {
		t.Fatal("missing wrap link")
	}
	if c := g.Channel(cid); c.Dst != 0 || c.VC != 1 {
		t.Fatalf("wrap link = %+v", c)
	}
}

func TestMeshBoundaryHasNoLink(t *testing.T) {
	g := NewMesh([]int{3}, 1)
	if _, ok := g.Link(2, 0, 0, 0); ok {
		t.Fatal("mesh boundary should have no +1 link at the top")
	}
	if _, ok := g.Link(0, 0, 1, 0); ok {
		t.Fatal("mesh boundary should have no -1 link at the bottom")
	}
	if _, ok := g.Link(1, 0, 0, 0); !ok {
		t.Fatal("interior node should have +1 link")
	}
}

func TestHypercube(t *testing.T) {
	h := NewHypercube(3)
	if h.NumNodes() != 8 {
		t.Fatalf("NumNodes = %d; want 8", h.NumNodes())
	}
	if h.NumChannels() != 8*3 {
		t.Fatalf("NumChannels = %d; want 24", h.NumChannels())
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	d := h.Distances()
	if d[0][7] != 3 || d[0][5] != 2 {
		t.Fatalf("hypercube distances wrong: d[0][7]=%d d[0][5]=%d", d[0][7], d[0][5])
	}
}

func TestStar(t *testing.T) {
	s := NewStar(4)
	if s.NumNodes() != 5 || s.NumChannels() != 8 {
		t.Fatalf("star: %d nodes %d channels", s.NumNodes(), s.NumChannels())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	d := s.Distances()
	if d[1][2] != 2 || d[0][3] != 1 {
		t.Fatal("star distances wrong")
	}
}

func TestComplete(t *testing.T) {
	k := NewComplete(4)
	if k.NumChannels() != 12 {
		t.Fatalf("NumChannels = %d; want 12", k.NumChannels())
	}
	for _, row := range k.Distances() {
		for j, v := range row {
			want := 1
			if row[j] == 0 && v == 0 {
				continue
			}
			if v != want {
				t.Fatalf("complete network distance = %d; want 1", v)
			}
		}
	}
}

// Property: on any torus, BFS distance between u and v equals the sum over
// dimensions of the wrap-aware coordinate distance.
func TestTorusDistanceProperty(t *testing.T) {
	g := NewTorus([]int{4, 3}, 1)
	dist := g.Distances()
	f := func(uRaw, vRaw uint8) bool {
		u := NodeID(int(uRaw) % g.NumNodes())
		v := NodeID(int(vRaw) % g.NumNodes())
		cu, cv := g.Coords(u), g.Coords(v)
		want := 0
		for d := range g.Dims {
			delta := cu[d] - cv[d]
			if delta < 0 {
				delta = -delta
			}
			if wrapDelta := g.Dims[d] - delta; wrapDelta < delta {
				delta = wrapDelta
			}
			want += delta
		}
		return dist[u][v] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ShortestPath length always equals the BFS distance, and the path
// is contiguous, for random node pairs on a mesh.
func TestShortestPathMatchesDistanceProperty(t *testing.T) {
	g := NewMesh([]int{4, 4}, 1)
	dist := g.Distances()
	f := func(uRaw, vRaw uint8) bool {
		u := NodeID(int(uRaw) % g.NumNodes())
		v := NodeID(int(vRaw) % g.NumNodes())
		p := g.ShortestPath(u, v)
		if u == v {
			return p == nil
		}
		return len(p) == dist[u][v] && g.IsPath(u, v, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChannelString(t *testing.T) {
	net := New("t")
	a := net.AddNode("a")
	b := net.AddNode("")
	labeled := net.AddChannel(a, b, 0, "fancy")
	plain := net.AddChannel(a, b, 0, "")
	vc := net.AddChannel(a, b, 3, "")
	if s := net.Channel(labeled).String(); s != "fancy" {
		t.Fatalf("labeled String = %q", s)
	}
	if s := net.Channel(plain).String(); s != "c1(0->1)" {
		t.Fatalf("plain String = %q", s)
	}
	if s := net.Channel(vc).String(); s != "c2(0->1.v3)" {
		t.Fatalf("vc String = %q", s)
	}
	if s := net.Node(a).String(); s != "a" {
		t.Fatalf("Node String = %q", s)
	}
	if s := net.Node(b).String(); s != "n1" {
		t.Fatalf("unlabeled Node String = %q", s)
	}
}

func TestPathNodesPanicsOnDiscontiguous(t *testing.T) {
	net := NewRing(4, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// cw0 goes 0->1, cw2 goes 2->3: discontiguous.
	net.PathNodes([]ChannelID{0, 2})
}

func TestNetworkDOT(t *testing.T) {
	net := New("t")
	a := net.AddNode("a")
	b := net.AddNode("b")
	net.AddChannel(a, b, 0, "")
	net.AddChannel(b, a, 2, "")
	dot := net.DOT()
	for _, want := range []string{"digraph", "n0 -> n1;", `n1 -> n0 [label="v2"];`, `[label="a"]`} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}
