package topology_test

// Golden automorphism groups for the paper networks and the standard
// constructions. These pin down the symmetry structure the model
// checker's canonical-state reduction quotients by: Gen(k)'s two-fold
// rotation (swap the M1/M3 and M2/M4 halves of the ring), the full
// rotation group of a directed ring, and — just as load-bearing — the
// networks that must NOT be symmetric (Figure 2's unequal entrants).

import (
	"testing"

	"repro/internal/papernets"
	"repro/internal/topology"
)

// checkGroup asserts basic well-formedness of an automorphism list:
// identity first, and every element a genuine channel-consistent
// permutation.
func checkGroup(t *testing.T, net *topology.Network, autos []topology.Automorphism) {
	t.Helper()
	if len(autos) == 0 || !autos[0].IsIdentity() {
		t.Fatalf("%s: expected the identity first, got %v", net.Name(), autos)
	}
	for i, a := range autos {
		if len(a.Nodes) != net.NumNodes() || len(a.Chans) != net.NumChannels() {
			t.Fatalf("%s: automorphism %d has wrong arity", net.Name(), i)
		}
		seenN := make(map[topology.NodeID]bool)
		for _, w := range a.Nodes {
			if seenN[w] {
				t.Fatalf("%s: automorphism %d node map not a bijection", net.Name(), i)
			}
			seenN[w] = true
		}
		seenC := make(map[topology.ChannelID]bool)
		for c, d := range a.Chans {
			if seenC[d] {
				t.Fatalf("%s: automorphism %d channel map not a bijection", net.Name(), i)
			}
			seenC[d] = true
			src, dst := net.Channel(topology.ChannelID(c)), net.Channel(d)
			if a.Nodes[src.Src] != dst.Src || a.Nodes[src.Dst] != dst.Dst || src.VC != dst.VC {
				t.Fatalf("%s: automorphism %d maps channel %d (%d->%d vc%d) to %d (%d->%d vc%d): endpoints not preserved",
					net.Name(), i, c, src.Src, src.Dst, src.VC, d, dst.Src, dst.Dst, dst.VC)
			}
		}
	}
}

func groupOf(t *testing.T, net *topology.Network, wantComplete bool) []topology.Automorphism {
	t.Helper()
	autos, complete := net.Automorphisms(0)
	if complete != wantComplete {
		t.Fatalf("%s: complete = %v, want %v", net.Name(), complete, wantComplete)
	}
	checkGroup(t, net, autos)
	return autos
}

// TestAutomorphismsGenK: Figure 1 and every Gen(k) have the dihedral
// group of order 4. The undirected ring (forward arcs plus their reverse
// channels) carries only two structurally marked points: the D = k+2
// entry nodes E2 and E4, whose connector chains hang off them. (The
// D = 2 entries E1/E3 are indistinguishable from plain interior ring
// nodes — their one-hop connector from N* is structurally just another
// hub channel.) E2 and E4 sit diametrically opposite, so the symmetries
// are the identity, the half-turn, and the two reflections through the
// E2–E4 axis. Only the half-turn maps forward ring channels to forward
// ring channels; the reflections swap forward and reverse, which is why
// the scenario-level symmetry filter later keeps just the rotation.
func TestAutomorphismsGenK(t *testing.T) {
	for _, pn := range []*papernets.Net{papernets.Figure1(), papernets.GenK(2), papernets.GenK(3)} {
		net := pn.Network
		autos := groupOf(t, net, true)
		if len(autos) != 4 {
			t.Fatalf("%s: |Aut| = %d, want dihedral order 4", pn.Name, len(autos))
		}
		// Exactly one element is the half-turn: it swaps E1<->E3 and
		// E2<->E4 while preserving ring direction (E1's forward arc
		// channel maps to E3's forward arc channel).
		e := make(map[string]topology.NodeID)
		for _, l := range []string{"E1", "E2", "E3", "E4", "Src", "N*"} {
			v, ok := net.FindNode(l)
			if !ok {
				t.Fatalf("%s: no node %s", pn.Name, l)
			}
			e[l] = v
		}
		rotations := 0
		for _, a := range autos[1:] {
			if a.Nodes[e["Src"]] != e["Src"] || a.Nodes[e["N*"]] != e["N*"] {
				t.Errorf("%s: automorphism moves Src or N*", pn.Name)
			}
			if a.Nodes[e["E1"]] == e["E3"] && a.Nodes[e["E2"]] == e["E4"] &&
				a.Nodes[e["E3"]] == e["E1"] && a.Nodes[e["E4"]] == e["E2"] {
				rotations++
			}
		}
		if rotations != 1 {
			t.Errorf("%s: found %d half-turn elements, want exactly 1", pn.Name, rotations)
		}
	}
}

// TestAutomorphismsFigure2: the two entrants differ (D=3/C=4 vs D=2/C=3),
// so no rotation survives; only the reflection through the single marked
// entry node E1 remains, giving a group of order 2 whose non-identity
// element fixes E1 and reverses the ring.
func TestAutomorphismsFigure2(t *testing.T) {
	net := papernets.Figure2().Network
	autos := groupOf(t, net, true)
	if len(autos) != 2 {
		t.Fatalf("figure2: |Aut| = %d, want 2 (identity + reflection)", len(autos))
	}
	e1, _ := net.FindNode("E1")
	if autos[1].Nodes[e1] != e1 {
		t.Errorf("figure2: reflection moves E1")
	}
}

// TestAutomorphismsRing: a directed n-ring has exactly the n rotations; a
// bidirectional n-ring has the full dihedral group of order 2n.
func TestAutomorphismsRing(t *testing.T) {
	uni := topology.NewRing(5, false)
	if autos := groupOf(t, uni, true); len(autos) != 5 {
		t.Fatalf("directed 5-ring: |Aut| = %d, want 5 rotations", len(autos))
	}
	bi := topology.NewRing(4, true)
	if autos := groupOf(t, bi, true); len(autos) != 8 {
		t.Fatalf("bidirectional 4-ring: |Aut| = %d, want dihedral order 8", len(autos))
	}
}

// TestAutomorphismsAsymmetric: a bidirectional 3-path would have the
// end-swapping reflection, but doubling one link's multiplicity breaks
// it — the group must collapse to the identity.
func TestAutomorphismsAsymmetric(t *testing.T) {
	net := topology.New("asym")
	a := net.AddNode("a")
	b := net.AddNode("b")
	c := net.AddNode("c")
	net.AddBidirectional(a, b, 0, "", "")
	net.AddBidirectional(b, c, 0, "", "")
	net.AddChannel(a, b, 1, "extra") // breaks the a<->c reflection
	autos := groupOf(t, net, true)
	if len(autos) != 1 {
		t.Fatalf("asym: |Aut| = %d, want identity only", len(autos))
	}

	// Sanity-check the construction: without the extra channel the
	// reflection exists.
	sym := topology.New("sym")
	a, b, c = sym.AddNode("a"), sym.AddNode("b"), sym.AddNode("c")
	sym.AddBidirectional(a, b, 0, "", "")
	sym.AddBidirectional(b, c, 0, "", "")
	if autos := groupOf(t, sym, true); len(autos) != 2 {
		t.Fatalf("sym: |Aut| = %d, want 2 (identity + reflection)", len(autos))
	}
}

// TestAutomorphismsLimit: asking for fewer elements than the group holds
// truncates and reports incompleteness.
func TestAutomorphismsLimit(t *testing.T) {
	net := topology.NewRing(6, false)
	autos, complete := net.Automorphisms(3)
	if complete {
		t.Fatal("limit 3 on a 6-element group reported complete")
	}
	if len(autos) != 3 {
		t.Fatalf("got %d automorphisms, want 3", len(autos))
	}
	checkGroup(t, net, autos)
}
