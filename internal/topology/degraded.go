package topology

// Degraded is a read-only view of a network with a subset of channels
// masked out — the graph a fault-recovery layer routes on while links are
// down. The view shares the underlying network; Down is consulted on every
// traversal, so the same view tracks a fault set that changes over time.
type Degraded struct {
	Net *Network
	// Down reports whether a channel is currently unusable.
	Down func(ChannelID) bool
}

// usable reports whether the view may traverse channel c.
func (d Degraded) usable(c ChannelID) bool { return d.Down == nil || !d.Down(c) }

// ShortestPath returns one BFS-shortest channel path from src to dst using
// only live channels, or nil when dst is unreachable on the degraded graph
// (or src == dst).
func (d Degraded) ShortestPath(src, dst NodeID) []ChannelID {
	n := d.Net
	if src == dst {
		return nil
	}
	prev := make([]ChannelID, len(n.nodes))
	for i := range prev {
		prev[i] = None
	}
	seen := make([]bool, len(n.nodes))
	seen[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			break
		}
		for _, cid := range n.out[u] {
			if !d.usable(cid) {
				continue
			}
			v := n.channels[cid].Dst
			if !seen[v] {
				seen[v] = true
				prev[v] = cid
				queue = append(queue, v)
			}
		}
	}
	if !seen[dst] {
		return nil
	}
	var rev []ChannelID
	for at := dst; at != src; {
		cid := prev[at]
		rev = append(rev, cid)
		at = n.channels[cid].Src
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Reaches reports whether dst is reachable from src over live channels.
func (d Degraded) Reaches(src, dst NodeID) bool {
	if src == dst {
		return true
	}
	return d.ShortestPath(src, dst) != nil
}

// StronglyConnected reports whether the degraded graph is still strongly
// connected — every node reaches every other over live channels only.
func (d Degraded) StronglyConnected() bool {
	n := d.Net
	if len(n.nodes) == 0 {
		return false
	}
	if len(n.nodes) == 1 {
		return true
	}
	return d.reachesAll(0, false) && d.reachesAll(0, true)
}

// reachesAll is Network.reachesAll restricted to live channels.
func (d Degraded) reachesAll(start NodeID, reverse bool) bool {
	n := d.Net
	adj := n.out
	if reverse {
		adj = n.in
	}
	seen := make([]bool, len(n.nodes))
	seen[start] = true
	queue := []NodeID{start}
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, cid := range adj[u] {
			if !d.usable(cid) {
				continue
			}
			c := n.channels[cid]
			v := c.Dst
			if reverse {
				v = c.Src
			}
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == len(n.nodes)
}

// LiveChannels returns the IDs of all currently usable channels, in ID
// order.
func (d Degraded) LiveChannels() []ChannelID {
	var out []ChannelID
	for _, c := range d.Net.channels {
		if d.usable(c.ID) {
			out = append(out, c.ID)
		}
	}
	return out
}
