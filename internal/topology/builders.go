package topology

import "fmt"

// Grid is a k-ary n-dimensional mesh or torus with a fixed number of virtual
// channels per directed physical link. It embeds the underlying Network and
// adds coordinate bookkeeping used by dimension-ordered routing algorithms.
type Grid struct {
	*Network
	Dims []int // radix per dimension, e.g. {4,4} for a 4x4 mesh
	Wrap bool  // true for a torus (wrap-around links present)
	VCs  int   // virtual channels per directed link (>= 1)

	// chan index: [node][dim][dir][vc] -> ChannelID, dir 0 = +, 1 = -.
	links [][][][]ChannelID
}

// NewMesh builds an n-dimensional mesh with the given per-dimension radices
// and vcs virtual channels per directed link. Every adjacent node pair is
// connected by vcs channels in each direction.
func NewMesh(dims []int, vcs int) *Grid {
	return newGrid(dims, vcs, false)
}

// NewTorus builds an n-dimensional torus (mesh plus wrap-around links) with
// vcs virtual channels per directed link. Dally–Seitz torus routing needs
// vcs >= 2 to be deadlock-free.
func NewTorus(dims []int, vcs int) *Grid {
	return newGrid(dims, vcs, true)
}

func newGrid(dims []int, vcs int, wrap bool) *Grid {
	if len(dims) == 0 {
		panic("topology: grid needs at least one dimension")
	}
	total := 1
	for _, d := range dims {
		if d < 2 {
			panic(fmt.Sprintf("topology: grid dimension radix %d < 2", d))
		}
		total *= d
	}
	if vcs < 1 {
		panic("topology: grid needs vcs >= 1")
	}
	kind := "mesh"
	if wrap {
		kind = "torus"
	}
	g := &Grid{
		Network: New(fmt.Sprintf("%s%v.vc%d", kind, dims, vcs)),
		Dims:    append([]int(nil), dims...),
		Wrap:    wrap,
		VCs:     vcs,
	}
	coords := make([]int, len(dims))
	for i := 0; i < total; i++ {
		g.AddNode(fmt.Sprintf("%v", coords))
		incCoords(coords, dims)
	}
	g.links = make([][][][]ChannelID, total)
	for n := range g.links {
		g.links[n] = make([][][]ChannelID, len(dims))
		for d := range g.links[n] {
			g.links[n][d] = make([][]ChannelID, 2)
			for dir := range g.links[n][d] {
				g.links[n][d][dir] = make([]ChannelID, vcs)
				for vc := range g.links[n][d][dir] {
					g.links[n][d][dir][vc] = None
				}
			}
		}
	}
	for n := 0; n < total; n++ {
		c := g.Coords(NodeID(n))
		for d := range dims {
			for dir := 0; dir < 2; dir++ {
				nc := append([]int(nil), c...)
				if dir == 0 {
					nc[d]++
				} else {
					nc[d]--
				}
				wrapped := false
				if nc[d] == dims[d] {
					if !wrap {
						continue
					}
					nc[d] = 0
					wrapped = true
				}
				if nc[d] < 0 {
					if !wrap {
						continue
					}
					nc[d] = dims[d] - 1
					wrapped = true
				}
				// On a 2-node torus ring the "+1" and "-1" neighbors
				// coincide; still create distinct channels so routing in
				// each direction has its own resource.
				to := g.NodeAt(nc)
				for vc := 0; vc < vcs; vc++ {
					sign := "+"
					if dir == 1 {
						sign = "-"
					}
					mark := ""
					if wrapped {
						mark = "w"
					}
					label := fmt.Sprintf("n%d.d%d%s%s.v%d", n, d, sign, mark, vc)
					g.links[n][d][dir][vc] = g.AddChannel(NodeID(n), to, vc, label)
				}
			}
		}
	}
	return g
}

// incCoords advances coords to the next mixed-radix value (row-major: the
// last dimension varies fastest).
func incCoords(coords, dims []int) {
	for d := len(dims) - 1; d >= 0; d-- {
		coords[d]++
		if coords[d] < dims[d] {
			return
		}
		coords[d] = 0
	}
}

// NodeAt returns the node at the given coordinates (row-major encoding).
func (g *Grid) NodeAt(coords []int) NodeID {
	if len(coords) != len(g.Dims) {
		panic(fmt.Sprintf("topology: NodeAt: %d coords for %d dims", len(coords), len(g.Dims)))
	}
	id := 0
	for d, c := range coords {
		if c < 0 || c >= g.Dims[d] {
			panic(fmt.Sprintf("topology: NodeAt: coord %d out of range [0,%d) in dim %d", c, g.Dims[d], d))
		}
		id = id*g.Dims[d] + c
	}
	return NodeID(id)
}

// Coords returns the coordinates of node id (row-major decoding).
func (g *Grid) Coords(id NodeID) []int {
	coords := make([]int, len(g.Dims))
	n := int(id)
	for d := len(g.Dims) - 1; d >= 0; d-- {
		coords[d] = n % g.Dims[d]
		n /= g.Dims[d]
	}
	return coords
}

// Link returns the channel leaving node in dimension dim, direction dir
// (0 = increasing coordinate, 1 = decreasing), virtual channel vc, or
// (None, false) when no such link exists (mesh boundary).
func (g *Grid) Link(node NodeID, dim, dir, vc int) (ChannelID, bool) {
	cid := g.links[node][dim][dir][vc]
	return cid, cid != None
}

// NewRing builds a ring of n nodes. If bidirectional, channels run both
// clockwise and counter-clockwise; otherwise only clockwise (i -> i+1 mod n).
func NewRing(n int, bidirectional bool) *Network {
	if n < 2 {
		panic("topology: ring needs n >= 2")
	}
	net := New(fmt.Sprintf("ring%d", n))
	net.AddNodes(n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		net.AddChannel(NodeID(i), NodeID(j), 0, fmt.Sprintf("cw%d", i))
		if bidirectional {
			net.AddChannel(NodeID(j), NodeID(i), 0, fmt.Sprintf("ccw%d", i))
		}
	}
	return net
}

// NewHypercube builds a d-dimensional binary hypercube: 2^d nodes, with
// bidirectional channels between nodes differing in exactly one bit.
func NewHypercube(d int) *Network {
	if d < 1 || d > 20 {
		panic("topology: hypercube dimension must be in [1,20]")
	}
	n := 1 << d
	net := New(fmt.Sprintf("hypercube%d", d))
	net.AddNodes(n)
	for u := 0; u < n; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << b)
			if u < v {
				net.AddChannel(NodeID(u), NodeID(v), 0, fmt.Sprintf("h%d.%d+", u, b))
				net.AddChannel(NodeID(v), NodeID(u), 0, fmt.Sprintf("h%d.%d-", u, b))
			}
		}
	}
	return net
}

// NewStar builds a star: node 0 is the hub, nodes 1..leaves are leaves, with
// bidirectional channels between the hub and every leaf.
func NewStar(leaves int) *Network {
	if leaves < 1 {
		panic("topology: star needs at least one leaf")
	}
	net := New(fmt.Sprintf("star%d", leaves))
	net.AddNode("hub")
	for i := 1; i <= leaves; i++ {
		leaf := net.AddNode(fmt.Sprintf("leaf%d", i))
		net.AddChannel(0, leaf, 0, fmt.Sprintf("out%d", i))
		net.AddChannel(leaf, 0, 0, fmt.Sprintf("in%d", i))
	}
	return net
}

// NewComplete builds a complete directed network on n nodes: one channel in
// each direction between every node pair.
func NewComplete(n int) *Network {
	if n < 2 {
		panic("topology: complete network needs n >= 2")
	}
	net := New(fmt.Sprintf("complete%d", n))
	net.AddNodes(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				net.AddChannel(NodeID(u), NodeID(v), 0, fmt.Sprintf("k%d.%d", u, v))
			}
		}
	}
	return net
}
