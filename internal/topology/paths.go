package topology

import "strconv"

// Distances returns the all-pairs hop-count distance matrix computed by BFS
// over the channel graph. Distances()[u][v] is the minimum number of
// channels a message must traverse from u to v, or -1 when v is unreachable
// from u. Multiplicity of channels between a pair of nodes does not affect
// distance.
func (n *Network) Distances() [][]int {
	d := make([][]int, len(n.nodes))
	for u := range n.nodes {
		d[u] = n.DistancesFrom(NodeID(u))
	}
	return d
}

// DistancesFrom returns single-source BFS distances from src, with -1 for
// unreachable nodes.
func (n *Network) DistancesFrom(src NodeID) []int {
	dist := make([]int, len(n.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, cid := range n.out[u] {
			v := n.channels[cid].Dst
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest channel path from src to dst (BFS
// order), or nil when dst is unreachable or src == dst.
func (n *Network) ShortestPath(src, dst NodeID) []ChannelID {
	if src == dst {
		return nil
	}
	prev := make([]ChannelID, len(n.nodes))
	for i := range prev {
		prev[i] = None
	}
	seen := make([]bool, len(n.nodes))
	seen[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			break
		}
		for _, cid := range n.out[u] {
			v := n.channels[cid].Dst
			if !seen[v] {
				seen[v] = true
				prev[v] = cid
				queue = append(queue, v)
			}
		}
	}
	if !seen[dst] {
		return nil
	}
	var rev []ChannelID
	for at := dst; at != src; {
		cid := prev[at]
		rev = append(rev, cid)
		at = n.channels[cid].Src
	}
	// Reverse into forward order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathNodes returns the node sequence visited by a channel path starting at
// the path's first channel source. It returns nil for an empty path. It
// panics if the path is not contiguous (channel i's destination must be
// channel i+1's source).
func (n *Network) PathNodes(path []ChannelID) []NodeID {
	if len(path) == 0 {
		return nil
	}
	nodes := make([]NodeID, 0, len(path)+1)
	nodes = append(nodes, n.Channel(path[0]).Src)
	for i, cid := range path {
		c := n.Channel(cid)
		if c.Src != nodes[len(nodes)-1] {
			panic("topology: PathNodes: discontiguous path at index " + strconv.Itoa(i))
		}
		nodes = append(nodes, c.Dst)
	}
	return nodes
}

// IsPath reports whether path is a contiguous channel path from src to dst.
// An empty path is a valid path only when src == dst.
func (n *Network) IsPath(src, dst NodeID, path []ChannelID) bool {
	at := src
	for _, cid := range path {
		if !n.validChannel(cid) {
			return false
		}
		c := n.channels[cid]
		if c.Src != at {
			return false
		}
		at = c.Dst
	}
	return at == dst
}
