// Package telemetry is the sampling half of the observability layer: a
// continuous, low-cost telemetry plane for long-horizon simulation runs,
// complementing internal/obsv's discrete per-event tracing.
//
// Event tracing records *what happened* (every flit move, every wait-for
// edge) and is priceless on paper-sized scenarios but unusable at
// load-test scale: a 10⁸-cycle open-loop run emits billions of events.
// The telemetry plane instead records *how the network looks* on a
// configurable cycle stride — per-channel utilization, flit occupancy and
// blocked-header counts accumulated into fixed-size arrays — so the cost
// is an O(channels + messages) scan every Stride cycles and zero
// allocations, regardless of run length.
//
// Samples aggregate into Frames (FrameEvery samples each), which are kept
// in a fixed-capacity ring: the run's recent history is always available
// for the flight recorder (see FlightRecorder) without unbounded growth.
// Everything is deterministic: frames carry only logical quantities
// (cycles, counts), sampling cycles are a pure function of the cycle
// counter, and the JSON encodings are hand-rolled with fixed key order —
// two identical runs produce byte-identical frame streams.
package telemetry

import "strconv"

// Config sizes a Collector. Zero values select the defaults.
type Config struct {
	// Stride is the sampling period in cycles: the simulator takes one
	// telemetry sample on every cycle divisible by Stride. Default 64.
	// With Adaptive on, Stride is the base (tightest) stride.
	Stride int
	// FrameEvery is the number of samples aggregated into one frame.
	// Default 16 (one frame per 1024 cycles at the default stride).
	FrameEvery int
	// Ring is the number of most-recent frames retained. Default 64.
	Ring int
	// Adaptive enables stride adaptation: the collector backs the
	// sampling stride off geometrically (doubling, up to MaxStride) while
	// the network is quiet — low busy+blocked heat and a stable live
	// count — and tightens it back toward Stride as utilization
	// approaches saturation. The stride trajectory is a pure function of
	// the sampled (logical, deterministic) state, so adapted frame
	// streams stay byte-identical across runs and worker counts.
	Adaptive bool
	// MaxStride caps the adaptive backoff. Default 16×Stride.
	MaxStride int
	// WindowBytes, when positive, attaches a delta-compressed long-
	// horizon Window of the given byte budget: every closed frame is also
	// appended to the window, which evicts its oldest restart blocks when
	// over budget — a multi-hour history at fixed memory, instead of (in
	// addition to) the fixed Ring-frame history.
	WindowBytes int
}

func (c Config) withDefaults() Config {
	if c.Stride < 1 {
		c.Stride = 64
	}
	if c.FrameEvery < 1 {
		c.FrameEvery = 16
	}
	if c.Ring < 1 {
		c.Ring = 64
	}
	if c.MaxStride < c.Stride {
		c.MaxStride = 16 * c.Stride
	}
	return c
}

// Frame is one closed aggregation window: FrameEvery samples (fewer for a
// final partial frame) over the cycle span [Start, End]. The per-channel
// slices are owned by the collector's ring and are overwritten once the
// ring wraps — copy what must outlive the run.
type Frame struct {
	// Index is the frame's ordinal from the start of the run (frame 0 may
	// have been evicted from the ring; Index keeps the stream addressable).
	Index int
	// Start and End are the cycles of the frame's first and last sample.
	Start, End int
	// Samples is the number of telemetry samples aggregated.
	Samples int
	// Stride is the sampling stride in effect when the frame closed. For
	// a fixed-stride collector this is the configured stride; with
	// adaptive sampling it records the stride trajectory frame by frame,
	// which is what makes adapted streams self-describing (and lets a
	// replay reconstruct sample density without the simulation).
	Stride int
	// Busy[c] counts the samples at which channel c was held by a message;
	// Busy[c]/Samples is the channel's utilization over the frame.
	Busy []uint32
	// Occ[c] sums channel c's buffered flit count over the samples;
	// Occ[c]/Samples is its mean flit occupancy.
	Occ []uint32
	// Blocked[c] counts the samples at which channel c participated in a
	// blocking dependency: held by a blocked message (a resource pinned by
	// a stuck worm) or waited for by a blocked header (Definition 6's
	// "waits for") — the congestion signal that precedes a deadlock cycle
	// closing.
	Blocked []uint32
	// FlitsDelta is the number of flits consumed at destinations during
	// the frame; Live is the live-message count at the closing sample.
	FlitsDelta int64
	Live       int
}

// AppendJSON appends the frame as one deterministic JSON object. Channels
// with no activity are omitted; active ones are emitted in channel-ID
// order as [id, busy, occ, blocked] quadruples.
func (f *Frame) AppendJSON(b []byte) []byte {
	b = append(b, `{"frame":`...)
	b = strconv.AppendInt(b, int64(f.Index), 10)
	b = append(b, `,"start":`...)
	b = strconv.AppendInt(b, int64(f.Start), 10)
	b = append(b, `,"end":`...)
	b = strconv.AppendInt(b, int64(f.End), 10)
	b = append(b, `,"samples":`...)
	b = strconv.AppendInt(b, int64(f.Samples), 10)
	b = append(b, `,"stride":`...)
	b = strconv.AppendInt(b, int64(f.Stride), 10)
	b = append(b, `,"flits":`...)
	b = strconv.AppendInt(b, f.FlitsDelta, 10)
	b = append(b, `,"live":`...)
	b = strconv.AppendInt(b, int64(f.Live), 10)
	b = append(b, `,"channels":[`...)
	first := true
	for c := range f.Busy {
		if f.Busy[c] == 0 && f.Occ[c] == 0 && f.Blocked[c] == 0 {
			continue
		}
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, '[')
		b = strconv.AppendInt(b, int64(c), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(f.Busy[c]), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(f.Occ[c]), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(f.Blocked[c]), 10)
		b = append(b, ']')
	}
	b = append(b, `]}`...)
	return b
}

// Collector accumulates per-channel telemetry samples into frames. Attach
// one to a simulator with sim.SetTelemetry; the simulator fills the
// current sample's arrays (Accum) and closes it (FinishSample) on its own
// deterministic schedule. Everything the steady-state path touches is
// preallocated by NewCollector, so sampling allocates nothing — the same
// contract as the simulator's scratch arenas.
//
// A Collector is per-run working memory, not simulation state: like the
// tracer, it never crosses Clone/CopyFrom and is not reset by Reset.
type Collector struct {
	cfg      Config
	channels int

	// Current accumulating frame.
	busy, occ, blocked []uint32
	samples            int
	frameStart         int

	// Adaptive-stride state. stride is the current sampling period; next
	// the next sampling cycle (adaptive mode only — fixed mode stays on
	// the pure now%Stride==0 schedule). The prev* fields hold the
	// previous sample's accumulator sums and live count, so each sample's
	// own heat (not the frame's running total) drives the policy.
	stride         int
	next           int
	quietStreak    int
	prevBusySum    uint64
	prevBlockedSum uint64
	prevLive       int

	// Frame ring, preallocated: frames[i%Ring] holds frame i.
	frames []Frame
	closed int // frames closed so far

	// Run totals, accumulated at frame close (plus the current partials
	// at Summary time).
	totBusy, totOcc, totBlocked []uint64
	totSamples                  int64
	peakBusy                    uint32 // highest per-frame Busy[c] seen
	peakSamples                 int    // Samples of the frame holding peakBusy

	// Last finished sample, so a partial frame can be flushed at run end.
	lastCycle int
	lastFlits int64
	lastLive  int
	prevFlits int64 // FlitsConsumed at the previous frame boundary

	// window, when configured, receives every closed frame as a
	// delta-compressed record under a fixed byte budget (long-horizon
	// history); nil when Config.WindowBytes is zero.
	window *Window

	// OnFrame, when set, is called with each frame as it closes (the
	// pointer aliases ring memory — consume it synchronously). It feeds
	// the live /telemetry endpoint and metrics bridge; nil (the default)
	// keeps the frame-close path allocation-free.
	OnFrame func(*Frame)
}

// NewCollector returns a collector for a network with the given channel
// count, with every steady-state buffer preallocated.
func NewCollector(channels int, cfg Config) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{
		cfg:        cfg,
		channels:   channels,
		busy:       make([]uint32, channels),
		occ:        make([]uint32, channels),
		blocked:    make([]uint32, channels),
		frames:     make([]Frame, cfg.Ring),
		totBusy:    make([]uint64, channels),
		totOcc:     make([]uint64, channels),
		totBlocked: make([]uint64, channels),
		lastCycle:  -1,
		stride:     cfg.Stride,
	}
	for i := range c.frames {
		c.frames[i].Busy = make([]uint32, channels)
		c.frames[i].Occ = make([]uint32, channels)
		c.frames[i].Blocked = make([]uint32, channels)
	}
	if cfg.WindowBytes > 0 {
		c.window = NewWindow(channels, cfg.WindowBytes)
	}
	return c
}

// Stride returns the base sampling period in cycles.
func (c *Collector) Stride() int { return c.cfg.Stride }

// CurrentStride returns the stride currently in effect: the base stride
// for a fixed collector, the adapted one for an adaptive collector.
func (c *Collector) CurrentStride() int { return c.stride }

// Channels returns the channel count the collector was sized for.
func (c *Collector) Channels() int { return c.channels }

// LastSampleCycle returns the cycle of the most recent finished sample,
// -1 when nothing was sampled yet.
func (c *Collector) LastSampleCycle() int { return c.lastCycle }

// Window returns the long-horizon delta window, nil unless
// Config.WindowBytes was set.
func (c *Collector) Window() *Window { return c.window }

// Due reports whether cycle now is a sampling cycle. Fixed collectors
// sample on every cycle divisible by the stride; adaptive collectors
// sample when the adapted schedule (last sample + current stride)
// reaches now — both are pure functions of sampled logical state, so
// sampling schedules are deterministic across runs and worker counts.
func (c *Collector) Due(now int) bool {
	if !c.cfg.Adaptive {
		return now%c.cfg.Stride == 0
	}
	return now >= c.next
}

// Accum returns the current sample's per-channel accumulators for the
// producer to fill: busy (increment once per held channel), occ (add the
// buffered flit count) and blocked (increment per waited-for channel).
func (c *Collector) Accum() (busy, occ, blocked []uint32) {
	return c.busy, c.occ, c.blocked
}

// FinishSample closes the sample taken at cycle now, given the producer's
// monotone consumed-flit counter and live-message count. It closes a
// frame every FrameEvery samples and, in adaptive mode, reconsiders the
// sampling stride. Allocation-free.
func (c *Collector) FinishSample(now int, flits int64, live int) {
	if c.samples == 0 {
		c.frameStart = now
	}
	c.samples++
	c.lastCycle, c.lastFlits, c.lastLive = now, flits, live
	if c.cfg.Adaptive {
		c.adapt(live)
	}
	if c.samples >= c.cfg.FrameEvery {
		c.closeFrame()
	}
	c.next = now + c.stride
}

// Adaptive-stride policy thresholds, all integer arithmetic over one
// sample's own heat so the trajectory is exactly reproducible:
//
//   - quiet: no blocked dependency anywhere, busy channels at most 1/16
//     of the network, live count not growing. quietStreakLen consecutive
//     quiet samples double the stride (geometric backoff, capped at
//     MaxStride).
//   - hot: any blocked dependency, or at least 1/4 of channels busy —
//     utilization approaching saturation. Each hot sample halves the
//     stride back toward the base (geometric tightening), so the
//     collector re-densifies while a congestion tree is still building
//     rather than after it wedges.
//
// Between the two bands the stride holds and the quiet streak resets.
const (
	quietStreakLen = 4
	quietBusyFrac  = 16 // quiet: busyDelta <= channels/16
	hotBusyFrac    = 4  // hot:   busyDelta >= channels/4
)

// adapt applies the stride policy after one sample. The accumulators hold
// frame-running totals, so the sample's own contribution is the delta
// against the previous sample's sums (reset with the frame).
func (c *Collector) adapt(live int) {
	var busySum, blockedSum uint64
	for i := range c.busy {
		busySum += uint64(c.busy[i])
		blockedSum += uint64(c.blocked[i])
	}
	busyDelta := busySum - c.prevBusySum
	blockedDelta := blockedSum - c.prevBlockedSum
	switch {
	case blockedDelta > 0 || busyDelta*hotBusyFrac >= uint64(c.channels):
		c.quietStreak = 0
		if c.stride > c.cfg.Stride {
			c.stride /= 2
			if c.stride < c.cfg.Stride {
				c.stride = c.cfg.Stride
			}
		}
	case busyDelta*quietBusyFrac <= uint64(c.channels) && live <= c.prevLive:
		c.quietStreak++
		if c.quietStreak >= quietStreakLen {
			c.quietStreak = 0
			if c.stride < c.cfg.MaxStride {
				c.stride *= 2
				if c.stride > c.cfg.MaxStride {
					c.stride = c.cfg.MaxStride
				}
			}
		}
	default:
		c.quietStreak = 0
	}
	c.prevBusySum, c.prevBlockedSum, c.prevLive = busySum, blockedSum, live
}

// Flush closes the current partial frame, if any. Call it at run end so
// short runs (and the tail of long ones) still surface their last frame.
func (c *Collector) Flush() {
	if c.samples > 0 {
		c.closeFrame()
	}
}

func (c *Collector) closeFrame() {
	f := &c.frames[c.closed%c.cfg.Ring]
	f.Index = c.closed
	f.Start = c.frameStart
	// End is the cycle of the frame's LAST SAMPLE — the true sampled
	// span, also for partial frames flushed mid-frame by a dump.
	f.End = c.lastCycle
	f.Samples = c.samples
	f.Stride = c.stride
	f.FlitsDelta = c.lastFlits - c.prevFlits
	f.Live = c.lastLive
	copy(f.Busy, c.busy)
	copy(f.Occ, c.occ)
	copy(f.Blocked, c.blocked)
	for i := range c.busy {
		c.totBusy[i] += uint64(c.busy[i])
		c.totOcc[i] += uint64(c.occ[i])
		c.totBlocked[i] += uint64(c.blocked[i])
		if c.busy[i] > c.peakBusy {
			c.peakBusy = c.busy[i]
			c.peakSamples = c.samples
		}
	}
	c.totSamples += int64(c.samples)
	c.prevFlits = c.lastFlits
	clear(c.busy)
	clear(c.occ)
	clear(c.blocked)
	c.prevBusySum, c.prevBlockedSum = 0, 0
	c.samples = 0
	c.closed++
	if c.window != nil {
		c.window.Append(f)
	}
	if c.OnFrame != nil {
		c.OnFrame(f)
	}
}

// Frames returns the retained frames in chronological order. The returned
// slice is freshly allocated but its Busy/Occ/Blocked share ring memory.
func (c *Collector) Frames() []*Frame {
	n := min(c.closed, c.cfg.Ring)
	out := make([]*Frame, 0, n)
	for i := c.closed - n; i < c.closed; i++ {
		out = append(out, &c.frames[i%c.cfg.Ring])
	}
	return out
}

// FramesClosed returns how many frames have closed since the run started
// (including frames the ring has since evicted).
func (c *Collector) FramesClosed() int { return c.closed }

// Samples returns the total number of samples taken, including the
// current partial frame.
func (c *Collector) Samples() int64 { return c.totSamples + int64(c.samples) }

// Hottest returns the channel with the highest run-total congestion —
// busy plus blocked samples, the channels that are both held and waited
// on — and that total. Ties break to the lowest channel ID. ok is false
// when nothing was sampled busy or blocked.
func (c *Collector) Hottest() (ch int, heat uint64, ok bool) {
	ch = -1
	for i := range c.totBusy {
		h := c.totBusy[i] + c.totBlocked[i] + uint64(c.busy[i]) + uint64(c.blocked[i])
		if h > heat {
			ch, heat = i, h
		}
	}
	return ch, heat, ch >= 0
}

// Heat returns channel ch's run-total busy+blocked sample count, the
// quantity Hottest maximizes and the heatmap renders.
func (c *Collector) Heat(ch int) uint64 {
	return c.totBusy[ch] + c.totBlocked[ch] + uint64(c.busy[ch]) + uint64(c.blocked[ch])
}

// Util returns channel ch's run-mean utilization: the fraction of samples
// at which it was held.
func (c *Collector) Util(ch int) float64 {
	n := c.Samples()
	if n == 0 {
		return 0
	}
	return float64(c.totBusy[ch]+uint64(c.busy[ch])) / float64(n)
}

// Summary condenses a run's telemetry for manifests and reports.
type Summary struct {
	Stride  int   `json:"stride"`
	Frames  int   `json:"frames"`
	Samples int64 `json:"samples"`
	// Adaptive marks a run sampled under the adaptive-stride policy;
	// FinalStride is the stride in effect when the run ended (equal to
	// Stride for fixed collectors, omitted then).
	Adaptive    bool `json:"adaptive,omitempty"`
	FinalStride int  `json:"final_stride,omitempty"`
	// MeanUtil is the run-mean channel utilization averaged over every
	// channel; PeakUtil is the highest single-frame utilization any
	// channel reached.
	MeanUtil float64 `json:"mean_util"`
	PeakUtil float64 `json:"peak_util"`
	// HottestChannel is the channel with the highest busy+blocked sample
	// count (-1 when nothing was sampled); HottestUtil its run-mean
	// utilization and HottestBlocked its blocked-sample total.
	HottestChannel int     `json:"hottest_channel"`
	HottestUtil    float64 `json:"hottest_util"`
	HottestBlocked int64   `json:"hottest_blocked"`
	// Latency quantiles from the run's latency sketch, when one was kept.
	LatencyP50 int `json:"latency_p50,omitempty"`
	LatencyP95 int `json:"latency_p95,omitempty"`
	LatencyP99 int `json:"latency_p99,omitempty"`
}

// Summary computes the run summary, including the current partial frame.
// Pass the run's latency sketch to include its quantiles, or nil.
func (c *Collector) Summary(lat *Sketch) Summary {
	s := Summary{
		Stride:         c.cfg.Stride,
		Frames:         c.closed,
		Samples:        c.Samples(),
		HottestChannel: -1,
	}
	if c.cfg.Adaptive {
		s.Adaptive = true
		s.FinalStride = c.stride
	}
	if s.Samples > 0 {
		var busySum uint64
		for i := range c.totBusy {
			busySum += c.totBusy[i] + uint64(c.busy[i])
		}
		s.MeanUtil = float64(busySum) / (float64(s.Samples) * float64(c.channels))
	}
	if c.peakSamples > 0 {
		s.PeakUtil = float64(c.peakBusy) / float64(c.peakSamples)
	}
	if ch, _, ok := c.Hottest(); ok {
		s.HottestChannel = ch
		s.HottestUtil = c.Util(ch)
		s.HottestBlocked = int64(c.totBlocked[ch] + uint64(c.blocked[ch]))
	}
	if lat != nil && lat.Count() > 0 {
		s.LatencyP50 = lat.Quantile(50)
		s.LatencyP95 = lat.Quantile(95)
		s.LatencyP99 = lat.Quantile(99)
	}
	return s
}
