// Per-source latency SLOs: a bank of mergeable latency sketches keyed by
// source node, plus a tiny declarative objective language ("p99<=500")
// evaluated against the bank. The loadtest engine feeds one bank per
// rate cell and reports violations in its JSON; the serve plane exposes
// the latest report at /telemetry/slo.
package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// SLOObjective is one parsed latency objective: the p-th percentile must
// not exceed Bound cycles.
type SLOObjective struct {
	Spec  string // original text, e.g. "p99<=500"
	P     int    // percentile, 1..100
	Bound int    // latency bound in cycles
}

// ParseSLO parses a comma-separated objective list: "p99<=500" or
// "p50<=120,p99<=800". Percentiles are integers (the sketch quantile
// granularity); bounds are cycles.
func ParseSLO(s string) ([]SLOObjective, error) {
	var objs []SLOObjective
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rest, ok := strings.CutPrefix(part, "p")
		if !ok {
			return nil, fmt.Errorf("telemetry: SLO %q: want pNN<=BOUND", part)
		}
		pstr, bstr, ok := strings.Cut(rest, "<=")
		if !ok {
			return nil, fmt.Errorf("telemetry: SLO %q: want pNN<=BOUND", part)
		}
		p, err := strconv.Atoi(pstr)
		if err != nil || p < 1 || p > 100 {
			return nil, fmt.Errorf("telemetry: SLO %q: percentile must be an integer in 1..100", part)
		}
		bound, err := strconv.Atoi(bstr)
		if err != nil || bound < 0 {
			return nil, fmt.Errorf("telemetry: SLO %q: bound must be a non-negative integer", part)
		}
		objs = append(objs, SLOObjective{Spec: part, P: p, Bound: bound})
	}
	if len(objs) == 0 {
		return nil, fmt.Errorf("telemetry: empty SLO spec")
	}
	return objs, nil
}

// Bank holds one latency sketch per source plus the aggregate. Source
// sketches are allocated lazily on first observation (a sketch costs
// ~270 KiB, so idle sources stay free); the aggregate always exists.
// Banks merge source-wise, the same way sketches do.
type Bank struct {
	agg *Sketch
	src []*Sketch
}

// NewBank returns a bank for the given source-ID space.
func NewBank(sources int) *Bank {
	return &Bank{agg: NewSketch(), src: make([]*Sketch, sources)}
}

// Observe records one latency sample for source (out-of-range sources
// count only toward the aggregate).
func (b *Bank) Observe(source, v int) {
	b.agg.Add(v)
	if source >= 0 && source < len(b.src) {
		if b.src[source] == nil {
			b.src[source] = NewSketch()
		}
		b.src[source].Add(v)
	}
}

// Aggregate returns the all-sources sketch.
func (b *Bank) Aggregate() *Sketch { return b.agg }

// Source returns source i's sketch, nil when it never observed a sample.
func (b *Bank) Source(i int) *Sketch {
	if i < 0 || i >= len(b.src) {
		return nil
	}
	return b.src[i]
}

// Sources returns the size of the bank's source-ID space.
func (b *Bank) Sources() int { return len(b.src) }

// Merge adds another bank's sketches into this one, source-wise. The
// banks must cover the same source-ID space.
func (b *Bank) Merge(o *Bank) {
	b.agg.Merge(o.agg)
	for i, s := range o.src {
		if s == nil {
			continue
		}
		if b.src[i] == nil {
			b.src[i] = NewSketch()
		}
		b.src[i].Merge(s)
	}
}

// SLOResult is one evaluated objective row. Source -1 is the aggregate.
type SLOResult struct {
	Spec     string `json:"spec"`
	Source   int    `json:"source"`
	Observed int64  `json:"observed"`
	Bound    int64  `json:"bound"`
	Count    int64  `json:"count"`
	OK       bool   `json:"ok"`
}

// SLOReport is an evaluation of a bank against an objective list: one
// aggregate row per objective, plus a per-source row for every source
// that violates it (passing sources are elided to keep reports bounded
// on large networks — Violations counts only the rows present).
type SLOReport struct {
	Violations int         `json:"violations"`
	Results    []SLOResult `json:"results"`
}

// OK reports whether no objective was violated.
func (r *SLOReport) OK() bool { return r.Violations == 0 }

// Evaluate checks every objective against the aggregate and each active
// source, in objective order then source order — deterministic for a
// deterministic bank.
func (b *Bank) Evaluate(objs []SLOObjective) *SLOReport {
	rep := &SLOReport{}
	for _, o := range objs {
		q := int64(b.agg.Quantile(o.P))
		ok := q <= int64(o.Bound) || b.agg.Count() == 0
		rep.Results = append(rep.Results, SLOResult{
			Spec: o.Spec, Source: -1, Observed: q,
			Bound: int64(o.Bound), Count: b.agg.Count(), OK: ok,
		})
		if !ok {
			rep.Violations++
		}
		for i, s := range b.src {
			if s == nil || s.Count() == 0 {
				continue
			}
			sq := int64(s.Quantile(o.P))
			if sq <= int64(o.Bound) {
				continue
			}
			rep.Results = append(rep.Results, SLOResult{
				Spec: o.Spec, Source: i, Observed: sq,
				Bound: int64(o.Bound), Count: s.Count(), OK: false,
			})
			rep.Violations++
		}
	}
	return rep
}

// AppendJSON appends the report as one deterministic JSON object with
// fixed key order (the same bytes encoding/json would need a custom
// marshaler for).
func (r *SLOReport) AppendJSON(b []byte) []byte {
	b = append(b, `{"violations":`...)
	b = strconv.AppendInt(b, int64(r.Violations), 10)
	b = append(b, `,"results":[`...)
	for i, res := range r.Results {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"spec":`...)
		b = appendQuoted(b, res.Spec)
		b = append(b, `,"source":`...)
		b = strconv.AppendInt(b, int64(res.Source), 10)
		b = append(b, `,"observed":`...)
		b = strconv.AppendInt(b, res.Observed, 10)
		b = append(b, `,"bound":`...)
		b = strconv.AppendInt(b, res.Bound, 10)
		b = append(b, `,"count":`...)
		b = strconv.AppendInt(b, res.Count, 10)
		b = append(b, `,"ok":`...)
		b = strconv.AppendBool(b, res.OK)
		b = append(b, '}')
	}
	b = append(b, `]}`...)
	return b
}
