package telemetry

import "encoding/binary"

// The long-horizon window: a delta-compressed frame history under a fixed
// BYTE budget, complementing the collector's fixed-capacity frame ring.
//
// The ring answers "what did the last 64 frames look like" at a cost of
// Ring×channels×12 bytes, which is the right trade for paper-sized runs —
// but on a multi-hour load campaign a congestion tree that builds over
// minutes ages out of the ring long before the deadlock or saturation
// trigger fires. The window instead stores each closed frame as
// per-channel COUNTER DELTAS against the previous frame, varint-encoded
// and gap-compressed (the same delta-encoding idiom as the search
// engine's compressed frontier batches, internal/mcheck/frontier.go):
// consecutive frames of a steady network differ in only a handful of
// channels, so a frame that costs channels×12 bytes raw typically encodes
// into a few dozen bytes — and a fixed byte budget retains an order of
// magnitude more cycle history than the ring at equal memory.
//
// Every windowRestart-th frame starts a RESTART BLOCK: its first frame is
// encoded against an all-zero basis, so each block decodes independently
// (the frontier.go restart idiom). Eviction drops whole blocks from the
// front — never a partial block — so the retained history always decodes.
// Appending is allocation-free in steady state: the current block's
// buffer and the recycled block buffers stabilize at their high-water
// capacities, matching the collector's zero-alloc sampling contract.
//
// Frame encoding, uvarints throughout (zigzag for signed deltas):
//
//	index     absolute on restart frames, implicit +1 otherwise
//	start     absolute on restart frames, else delta from previous End
//	span      End - Start
//	samples, stride, flits, live
//	channels  gap-encoded sparse triples: uvarint(channel gap+1),
//	          zigzag(Δbusy), zigzag(Δocc), zigzag(Δblocked) for every
//	          channel where any delta is nonzero; gap 0 terminates.
//	          Restart frames delta against zero, i.e. absolute values.

// windowRestart is the restart-block interval in frames: the eviction
// grain and the independent-decode unit.
const windowRestart = 16

// rawFrameScalars is the accounting size of a frame's scalar fields in
// the uncompressed comparison basis (Index, Start, End, Samples, Stride,
// Live as ints, FlitsDelta as int64): what a fixed ring pays per frame on
// top of the three counter arrays.
const rawFrameScalars = 40

// wblock is one sealed restart block.
type wblock struct {
	data   []byte
	frames int
	first  int // frame index of the block's first frame
	start  int // Start cycle of the block's first frame
	end    int // End cycle of the block's last frame
	raw    int64
}

// Window accumulates closed frames under a byte budget. Build one via
// Config.WindowBytes; the collector appends every closing frame.
type Window struct {
	budget   int
	channels int

	blocks []wblock
	free   [][]byte // recycled buffers of evicted blocks

	cur       []byte
	curFrames int
	curFirst  int
	curStart  int
	curEnd    int
	curRaw    int64

	// Delta basis: the previously appended frame.
	prevBusy, prevOcc, prevBlocked []uint32
	prevEnd                        int

	bytes   int   // encoded bytes retained (sealed blocks + current)
	frames  int   // frames retained
	dropped int   // frames evicted
	raw     int64 // raw-equivalent bytes of retained frames
}

// NewWindow returns an empty window over the given channel count with the
// given byte budget (minimum 1 KiB).
func NewWindow(channels, budget int) *Window {
	if budget < 1<<10 {
		budget = 1 << 10
	}
	return &Window{
		budget:      budget,
		channels:    channels,
		prevBusy:    make([]uint32, channels),
		prevOcc:     make([]uint32, channels),
		prevBlocked: make([]uint32, channels),
	}
}

func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64((v<<1)^(v>>63)))
}

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Append records one closed frame. The frame's counter slices must be
// sized to the window's channel count.
func (w *Window) Append(f *Frame) {
	restart := w.curFrames == 0
	before := len(w.cur)
	if restart {
		w.curFirst = f.Index
		w.curStart = f.Start
		clear(w.prevBusy)
		clear(w.prevOcc)
		clear(w.prevBlocked)
		w.cur = binary.AppendUvarint(w.cur, uint64(f.Index))
		w.cur = binary.AppendUvarint(w.cur, uint64(f.Start))
	} else {
		w.cur = binary.AppendUvarint(w.cur, uint64(f.Start-w.prevEnd))
	}
	w.cur = binary.AppendUvarint(w.cur, uint64(f.End-f.Start))
	w.cur = binary.AppendUvarint(w.cur, uint64(f.Samples))
	w.cur = binary.AppendUvarint(w.cur, uint64(f.Stride))
	w.cur = binary.AppendUvarint(w.cur, uint64(f.FlitsDelta))
	w.cur = binary.AppendUvarint(w.cur, uint64(f.Live))
	last := -1
	for c := 0; c < w.channels; c++ {
		db := int64(f.Busy[c]) - int64(w.prevBusy[c])
		do := int64(f.Occ[c]) - int64(w.prevOcc[c])
		dl := int64(f.Blocked[c]) - int64(w.prevBlocked[c])
		if db == 0 && do == 0 && dl == 0 {
			continue
		}
		w.cur = binary.AppendUvarint(w.cur, uint64(c-last))
		last = c
		w.cur = appendZigzag(w.cur, db)
		w.cur = appendZigzag(w.cur, do)
		w.cur = appendZigzag(w.cur, dl)
	}
	w.cur = binary.AppendUvarint(w.cur, 0)
	copy(w.prevBusy, f.Busy)
	copy(w.prevOcc, f.Occ)
	copy(w.prevBlocked, f.Blocked)
	w.prevEnd = f.End
	w.curFrames++
	w.curEnd = f.End
	fraw := int64(w.channels)*12 + rawFrameScalars
	w.curRaw += fraw
	w.bytes += len(w.cur) - before
	w.frames++
	w.raw += fraw
	if w.curFrames >= windowRestart {
		w.seal()
	}
	w.evict()
}

// seal closes the current block, recycling an evicted buffer when one is
// available.
func (w *Window) seal() {
	var buf []byte
	if n := len(w.free); n > 0 {
		buf = w.free[n-1][:0]
		w.free = w.free[:n-1]
	}
	buf = append(buf, w.cur...)
	w.blocks = append(w.blocks, wblock{
		data: buf, frames: w.curFrames,
		first: w.curFirst, start: w.curStart, end: w.curEnd, raw: w.curRaw,
	})
	w.cur = w.cur[:0]
	w.curFrames = 0
	w.curRaw = 0
}

// evict drops whole blocks from the front until the window fits its
// budget. The current (unsealed) block is never evicted.
func (w *Window) evict() {
	for len(w.blocks) > 0 && w.bytes > w.budget {
		b := w.blocks[0]
		w.bytes -= len(b.data)
		w.frames -= b.frames
		w.dropped += b.frames
		w.raw -= b.raw
		w.free = append(w.free, b.data)
		copy(w.blocks, w.blocks[1:])
		w.blocks[len(w.blocks)-1] = wblock{}
		w.blocks = w.blocks[:len(w.blocks)-1]
	}
}

// Frames decodes the retained frames oldest-first into visit. The Frame
// pointer is reused between calls — copy what must outlive the visit.
// Decoding allocates one scratch frame; it runs on dump/report paths.
func (w *Window) Frames(visit func(*Frame)) {
	f := &Frame{
		Busy:    make([]uint32, w.channels),
		Occ:     make([]uint32, w.channels),
		Blocked: make([]uint32, w.channels),
	}
	for i := range w.blocks {
		w.decodeBlock(w.blocks[i].data, w.blocks[i].frames, f, visit)
	}
	if w.curFrames > 0 {
		w.decodeBlock(w.cur, w.curFrames, f, visit)
	}
}

func (w *Window) decodeBlock(data []byte, frames int, f *Frame, visit func(*Frame)) {
	pos := 0
	read := func() uint64 {
		v, n := binary.Uvarint(data[pos:])
		pos += n
		return v
	}
	clear(f.Busy)
	clear(f.Occ)
	clear(f.Blocked)
	for i := 0; i < frames; i++ {
		if i == 0 {
			f.Index = int(read())
			f.Start = int(read())
		} else {
			f.Index++
			f.Start = f.End + int(read())
		}
		f.End = f.Start + int(read())
		f.Samples = int(read())
		f.Stride = int(read())
		f.FlitsDelta = int64(read())
		f.Live = int(read())
		ch := -1
		for {
			gap := read()
			if gap == 0 {
				break
			}
			ch += int(gap)
			f.Busy[ch] = uint32(int64(f.Busy[ch]) + unzigzag(read()))
			f.Occ[ch] = uint32(int64(f.Occ[ch]) + unzigzag(read()))
			f.Blocked[ch] = uint32(int64(f.Blocked[ch]) + unzigzag(read()))
		}
		visit(f)
	}
}

// WindowStats is the window's accounting block for bundle headers and
// reports. All figures are logical and deterministic.
type WindowStats struct {
	Budget  int   `json:"budget_bytes"`
	Bytes   int   `json:"bytes"`
	Frames  int   `json:"frames"`
	Dropped int   `json:"dropped_frames"`
	Raw     int64 `json:"raw_bytes"`
	// SpanStart/SpanEnd bound the retained cycle history.
	SpanStart int `json:"span_start"`
	SpanEnd   int `json:"span_end"`
	// CompressionX100 is raw-equivalent bytes over encoded bytes, ×100
	// (1250 = 12.5× smaller). HistoryX100 is the cycle-history multiple
	// the window retains versus a plain frame ring at EQUAL memory
	// (budget / raw-frame-size frames), ×100 — the acceptance figure of
	// the long-horizon design. Equal to Raw×100/Budget: both histories
	// grow at the same frames-per-cycle rate, so the byte ratio is the
	// history ratio once the window is evicting.
	CompressionX100 int64 `json:"compression_x100"`
	HistoryX100     int64 `json:"history_x100"`
}

// Stats returns the window's current accounting.
func (w *Window) Stats() WindowStats {
	s := WindowStats{
		Budget:  w.budget,
		Bytes:   w.bytes,
		Frames:  w.frames,
		Dropped: w.dropped,
		Raw:     w.raw,
	}
	if len(w.blocks) > 0 {
		s.SpanStart = w.blocks[0].start
		s.SpanEnd = w.blocks[len(w.blocks)-1].end
	} else if w.curFrames > 0 {
		s.SpanStart = w.curStart
	}
	if w.curFrames > 0 {
		s.SpanEnd = w.curEnd
	}
	if w.bytes > 0 {
		s.CompressionX100 = w.raw * 100 / int64(w.bytes)
	}
	s.HistoryX100 = w.raw * 100 / int64(w.budget)
	return s
}
