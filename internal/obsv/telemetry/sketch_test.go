package telemetry

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

// sliceQuantile is the raw-sample nearest-rank rule the sketch replaces
// (the one traffic.Load used on its grow-forever latency slice): the
// smallest sample such that at least p% of samples are <= it.
func sliceQuantile(sorted []int, p int) int {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestSketchQuantileExactInLinearRange: for any sample set within the
// lossless linear range the sketch must reproduce the raw-slice
// nearest-rank quantiles exactly — the property that keeps loadtest's
// JSON byte-identical after the slice-to-sketch swap.
func TestSketchQuantileExactInLinearRange(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		s := NewSketch()
		samples := make([]int, n)
		for i := range samples {
			samples[i] = rng.Intn(sketchLinearMax)
			s.Add(samples[i])
		}
		sort.Ints(samples)
		for _, p := range []int{0, 1, 25, 50, 90, 95, 99, 100} {
			if got, want := s.Quantile(p), sliceQuantile(samples, p); got != want {
				t.Fatalf("trial %d n=%d p%d: sketch %d, slice %d", trial, n, p, got, want)
			}
		}
		if got, want := s.Max(), samples[n-1]; got != want {
			t.Fatalf("Max = %d, want %d", got, want)
		}
		if got, want := s.Min(), samples[0]; got != want {
			t.Fatalf("Min = %d, want %d", got, want)
		}
	}
}

// TestSketchTailRelativeError: above the linear range the sketch is
// lossy but bounded — a quantile may overestimate by at most one
// sub-bucket width (relative error 1/sketchSubBuckets) and never
// underestimates the true nearest-rank value.
func TestSketchTailRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSketch()
	var samples []int
	for i := 0; i < 5000; i++ {
		v := sketchLinearMax + rng.Intn(1<<28)
		samples = append(samples, v)
		s.Add(v)
	}
	sort.Ints(samples)
	for _, p := range []int{50, 95, 99} {
		want := sliceQuantile(samples, p)
		got := s.Quantile(p)
		if got < want {
			t.Fatalf("p%d: sketch %d underestimates true %d", p, got, want)
		}
		if float64(got-want) > float64(want)/float64(sketchSubBuckets)+1 {
			t.Fatalf("p%d: sketch %d vs true %d exceeds 1/%d relative error", p, got, want, sketchSubBuckets)
		}
	}
	// The top rank still reports the exact max.
	if got := s.Quantile(100); got != samples[len(samples)-1] {
		t.Fatalf("p100 = %d, want exact max %d", got, samples[len(samples)-1])
	}
}

// TestSketchLogIndexRoundTrip: every log bucket's inclusive upper bound
// must map back into that bucket, and bucket boundaries must be
// monotone — the invariants Quantile's conservative reporting relies on.
func TestSketchLogIndexRoundTrip(t *testing.T) {
	prev := sketchLinearMax - 1
	for i := 0; i < sketchLogBuckets-1; i++ { // last bucket clamps, skip
		up := logUpper(i)
		if logIndex(up) != i {
			t.Fatalf("bucket %d: upper bound %d maps to bucket %d", i, up, logIndex(up))
		}
		if up <= prev {
			t.Fatalf("bucket %d: upper bound %d not above previous %d", i, up, prev)
		}
		if logIndex(up+1) != i+1 {
			t.Fatalf("bucket %d: %d (upper+1) maps to bucket %d, want %d", i, up+1, logIndex(up+1), i+1)
		}
		prev = up
	}
	if logIndex(sketchLinearMax) != 0 {
		t.Fatalf("first out-of-linear value maps to bucket %d", logIndex(sketchLinearMax))
	}
}

// TestSketchMerge: merging two sketches must equal one sketch fed both
// streams, including the JSON rendering.
func TestSketchMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b, all := NewSketch(), NewSketch(), NewSketch()
	for i := 0; i < 3000; i++ {
		v := rng.Intn(1 << 20)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		all.Add(v)
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() || a.Max() != all.Max() || a.Min() != all.Min() {
		t.Fatalf("merge scalars diverge: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.Count(), a.Sum(), a.Max(), a.Min(), all.Count(), all.Sum(), all.Max(), all.Min())
	}
	if !bytes.Equal(a.AppendJSON(nil), all.AppendJSON(nil)) {
		t.Fatal("merged sketch JSON differs from single-stream sketch")
	}
}

// TestSketchJSONDeterministic: identical sample sequences render to
// identical bytes, and Reset returns the sketch to the empty rendering.
func TestSketchJSONDeterministic(t *testing.T) {
	feed := func(s *Sketch) {
		for i := 0; i < 1000; i++ {
			s.Add(i * 73 % 70000)
		}
	}
	a, b := NewSketch(), NewSketch()
	feed(a)
	feed(b)
	ja, jb := a.AppendJSON(nil), b.AppendJSON(nil)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("identical streams render differently:\n%s\n%s", ja, jb)
	}
	empty := NewSketch().AppendJSON(nil)
	a.Reset()
	if !bytes.Equal(a.AppendJSON(nil), empty) {
		t.Fatalf("Reset sketch renders %s, want %s", a.AppendJSON(nil), empty)
	}
}

// TestSketchEdgeCases: negative clamping, AddN weights, empty queries.
func TestSketchEdgeCases(t *testing.T) {
	s := NewSketch()
	if s.Quantile(50) != 0 || s.Max() != 0 || s.Min() != 0 || s.Mean() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
	s.Add(-5)
	if s.Min() != 0 || s.Max() != 0 || s.Count() != 1 {
		t.Fatalf("negative sample must clamp to 0: %+v", s)
	}
	s.AddN(10, 9)
	if s.Count() != 10 || s.Sum() != 90 {
		t.Fatalf("AddN: count %d sum %d", s.Count(), s.Sum())
	}
	if s.Quantile(50) != 10 {
		t.Fatalf("p50 of one 0 and nine 10s = %d, want 10", s.Quantile(50))
	}
	s.AddN(99, 0) // no-op
	if s.Count() != 10 {
		t.Fatal("AddN with n<=0 must be a no-op")
	}
}

// TestSketchMergeEmpty: empty⊕empty stays empty, and empty merges are
// identity in both directions.
func TestSketchMergeEmpty(t *testing.T) {
	a, b := NewSketch(), NewSketch()
	a.Merge(b)
	if a.Count() != 0 || a.Sum() != 0 || a.Max() != 0 || a.Min() != 0 {
		t.Fatalf("empty+empty not empty: %+v", a)
	}
	if !bytes.Equal(a.AppendJSON(nil), NewSketch().AppendJSON(nil)) {
		t.Fatal("empty+empty renders differently from empty")
	}
	// empty ⊕ loaded == loaded; loaded ⊕ empty == loaded.
	load := func() *Sketch {
		s := NewSketch()
		for i := 1; i <= 100; i++ {
			s.Add(i * 977)
		}
		return s
	}
	want := load().AppendJSON(nil)
	le := load()
	le.Merge(NewSketch())
	if !bytes.Equal(le.AppendJSON(nil), want) {
		t.Fatal("loaded+empty changed the sketch")
	}
	el := NewSketch()
	el.Merge(load())
	if !bytes.Equal(el.AppendJSON(nil), want) {
		t.Fatal("empty+loaded != loaded")
	}
}

// TestSketchMergeDisjointOctaves: merging sketches whose samples occupy
// disjoint log octaves must preserve per-octave counts and min/max.
func TestSketchMergeDisjointOctaves(t *testing.T) {
	lo, hi := NewSketch(), NewSketch()
	// lo: tail octaves 2^17..2^18; hi: octaves 2^40..2^41 — no overlap.
	for i := 0; i < 500; i++ {
		lo.Add(1<<17 + i*131)
		hi.Add(1<<40 + i*1_000_003)
	}
	m := NewSketch()
	m.Merge(lo)
	m.Merge(hi)
	if m.Count() != 1000 {
		t.Fatalf("count %d, want 1000", m.Count())
	}
	if m.Sum() != lo.Sum()+hi.Sum() {
		t.Fatalf("sum %d, want %d", m.Sum(), lo.Sum()+hi.Sum())
	}
	if m.Min() != lo.Min() || m.Max() != hi.Max() {
		t.Fatalf("min/max %d/%d, want %d/%d", m.Min(), m.Max(), lo.Min(), hi.Max())
	}
	// The halves are cleanly separated, so p50 must fall in lo's range
	// and p51 onward in hi's.
	if q := m.Quantile(50); q < 1<<17 || q >= 1<<19 {
		t.Fatalf("p50 = %d escaped the low octaves", q)
	}
	if q := m.Quantile(90); q < 1<<40 {
		t.Fatalf("p90 = %d below the high octaves", q)
	}
}

// TestSketchMergeLinearBoundary: samples straddling the exact/log-linear
// boundary at 2^16 survive a merge with exact counts on the linear side.
func TestSketchMergeLinearBoundary(t *testing.T) {
	a, b := NewSketch(), NewSketch()
	vals := []int{sketchLinearMax - 2, sketchLinearMax - 1, sketchLinearMax, sketchLinearMax + 1}
	for _, v := range vals {
		a.Add(v)
		b.Add(v)
	}
	a.Merge(b)
	if a.Count() != 8 {
		t.Fatalf("count %d, want 8", a.Count())
	}
	// Below the boundary the sketch is lossless: quantiles landing there
	// must return the exact values, doubled counts notwithstanding.
	if q := a.Quantile(25); q != sketchLinearMax-2 {
		t.Fatalf("p25 = %d, want exact %d", q, sketchLinearMax-2)
	}
	if q := a.Quantile(50); q != sketchLinearMax-1 {
		t.Fatalf("p50 = %d, want exact %d", q, sketchLinearMax-1)
	}
	// At and above the boundary values live in log buckets; the answer
	// may round up within the bucket but never below the true value.
	if q := a.Quantile(75); q < sketchLinearMax {
		t.Fatalf("p75 = %d, below the boundary value %d", q, sketchLinearMax)
	}
	if a.Max() != sketchLinearMax+1 {
		t.Fatalf("max %d, want %d", a.Max(), sketchLinearMax+1)
	}
}

// TestSketchMergeQuantileMonotonic: quantiles of a merged sketch are
// monotone in p, and each merged quantile is bracketed by the two input
// sketches' quantiles at that p (merging cannot extrapolate).
func TestSketchMergeQuantileMonotonic(t *testing.T) {
	a, b := NewSketch(), NewSketch()
	for i := 0; i < 3000; i++ {
		a.Add(i * 37 % 50_000)     // linear-range mass
		b.Add(1 << 20 * (i%5 + 1)) // tail mass
		b.Add(i % 100)             // plus a low spike
	}
	m := NewSketch()
	m.Merge(a)
	m.Merge(b)
	prev := -1
	for p := 1; p <= 100; p++ {
		q := m.Quantile(p)
		if q < prev {
			t.Fatalf("quantile not monotone: p%d=%d < p%d=%d", p, q, p-1, prev)
		}
		prev = q
		// The merged quantile must lie within the envelope of the inputs'
		// full ranges, a safe bracketing for any mixture.
		if q < min(a.Quantile(1), b.Quantile(1)) || q > max(a.Max(), b.Max()) {
			t.Fatalf("p%d = %d outside the merged inputs' range", p, q)
		}
	}
}
