package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obsv"
	"repro/internal/topology"
)

// waitAdd emits the wait-for edge "msg waits for ch, held by owner".
func waitAdd(r *FlightRecorder, cycle, msg int, ch topology.ChannelID, owner int) {
	r.Event(obsv.Event{Kind: obsv.KindWaitEdgeAdd, Cycle: cycle, Msg: msg, Ch: ch, Owner: owner})
}

// TestRecorderEventRing: the ring keeps exactly the last cap events and
// reports the total seen.
func TestRecorderEventRing(t *testing.T) {
	g := topology.NewMesh([]int{2, 2}, 1)
	r := NewFlightRecorder(g.Network, 4, nil)
	for i := 0; i < 10; i++ {
		r.Event(obsv.Event{Kind: obsv.KindInject, Cycle: i, Msg: i})
	}
	if r.Retained() != 4 {
		t.Fatalf("Retained = %d, want 4", r.Retained())
	}
	jsonl := r.renderJSONL("test")
	if !bytes.Contains(jsonl, []byte(`"events_seen":10`)) || !bytes.Contains(jsonl, []byte(`"events_retained":4`)) {
		t.Fatalf("header miscounts events:\n%s", jsonl)
	}
	// Retained events are the newest four, oldest first, after the
	// header, channel-endpoint, and wait-graph lines.
	lines := strings.Split(strings.TrimRight(string(jsonl), "\n"), "\n")
	if len(lines) != 7 { // header + channels + waitgraph + 4 events
		t.Fatalf("got %d lines, want 7:\n%s", len(lines), jsonl)
	}
	if !strings.Contains(lines[1], `"channels":[`) || !strings.Contains(lines[2], `"waitgraph":true`) {
		t.Fatalf("replay lines missing:\n%s", jsonl)
	}
	if !strings.Contains(lines[3], `"cycle":6`) || !strings.Contains(lines[6], `"cycle":9`) {
		t.Fatalf("event window wrong:\n%s", jsonl)
	}
}

// TestRecorderCycleDetection: a three-message wait cycle plus a
// non-cycle bystander; only the cycle members and their channels are
// reported.
func TestRecorderCycleDetection(t *testing.T) {
	g := topology.NewMesh([]int{2, 2}, 1)
	r := NewFlightRecorder(g.Network, 0, nil)
	waitAdd(r, 10, 0, 1, 1)
	waitAdd(r, 10, 1, 2, 2)
	waitAdd(r, 11, 2, 0, 0)
	waitAdd(r, 11, 3, 1, 1) // bystander waiting into the cycle
	// A resolved edge must drop out of the graph.
	waitAdd(r, 12, 4, 3, 0)
	r.Event(obsv.Event{Kind: obsv.KindWaitEdgeDel, Cycle: 13, Msg: 4})

	members := r.Graph().CycleMembers()
	for _, m := range []int{0, 1, 2} {
		if !members[m] {
			t.Fatalf("m%d missing from cycle: %v", m, members)
		}
	}
	if members[3] || members[4] {
		t.Fatalf("non-cycle messages reported: %v", members)
	}
	chs := r.CycleChannels()
	if len(chs) != 3 || chs[0] != 0 || chs[1] != 1 || chs[2] != 2 {
		t.Fatalf("CycleChannels = %v, want [0 1 2]", chs)
	}

	dot := string(r.Graph().RenderDOT("flight wait-for @13 [deadlock]"))
	if !strings.Contains(dot, `m0 -> m1 [label="c1" color=red style=bold]`) {
		t.Fatalf("cycle edge not red:\n%s", dot)
	}
	if !strings.Contains(dot, `m3 -> m1 [label="c1"];`) {
		t.Fatalf("bystander edge must stay plain:\n%s", dot)
	}
	if strings.Contains(dot, "m4 ->") {
		t.Fatalf("deleted edge still rendered:\n%s", dot)
	}
}

// TestRecorderVerdict: liveness events set the verdict; an outcome note
// only fills in when no classification preceded it.
func TestRecorderVerdict(t *testing.T) {
	g := topology.NewMesh([]int{2, 2}, 1)
	r := NewFlightRecorder(g.Network, 0, nil)
	if r.Verdict() != "" {
		t.Fatal("fresh recorder has a verdict")
	}
	r.Event(obsv.Event{Kind: obsv.KindLivelock, Cycle: 5, Msg: 1})
	r.Event(obsv.Event{Kind: obsv.KindOutcome, Cycle: 9, Note: "timeout"})
	if r.Verdict() != "livelock" {
		t.Fatalf("Verdict = %q, want livelock (outcome must not overwrite)", r.Verdict())
	}
}

// TestRecorderDumpBundle: Dump writes the full three-artifact bundle,
// deterministic across two identical recorders, with the hottest channel
// outlined and cycle channels red in the heatmap.
func TestRecorderDumpBundle(t *testing.T) {
	build := func() *FlightRecorder {
		g := topology.NewMesh([]int{2, 2}, 1)
		c := NewCollector(g.Network.NumChannels(), Config{Stride: 2, FrameEvery: 2, Ring: 4})
		fillSample(c, 0, []int{0, 1}, []int{2}, 3, 2)
		fillSample(c, 2, []int{0}, []int{2}, 6, 2)
		fillSample(c, 4, []int{0}, nil, 9, 1) // left partial: Dump must flush it
		r := NewFlightRecorder(g.Network, 8, c)
		waitAdd(r, 3, 0, 1, 1)
		waitAdd(r, 3, 1, 2, 0)
		r.Event(obsv.Event{Kind: obsv.KindDeadlock, Cycle: 4, N: 2})
		return r
	}

	dir := t.TempDir()
	r := build()
	if err := r.Dump(dir, ""); err != nil {
		t.Fatal(err)
	}
	jsonl, err := os.ReadFile(filepath.Join(dir, "flight.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	head := string(jsonl[:bytes.IndexByte(jsonl, '\n')])
	// reason defaults to the recorder's verdict from the event stream.
	if !strings.Contains(head, `"flight_recorder":true`) || !strings.Contains(head, `"reason":"deadlock"`) {
		t.Fatalf("bad header: %s", head)
	}
	if !strings.Contains(head, `"frames_retained":2`) {
		t.Fatalf("partial frame not flushed into the bundle: %s", head)
	}
	if !bytes.Contains(jsonl, []byte(`"frame":0`)) || !bytes.Contains(jsonl, []byte(`"k":"`)) {
		t.Fatalf("bundle missing frames or events:\n%s", jsonl)
	}

	dot, err := os.ReadFile(filepath.Join(dir, "waitfor.dot"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(dot, []byte("digraph")) || !bytes.Contains(dot, []byte("color=red")) {
		t.Fatalf("waitfor.dot missing the red cycle:\n%s", dot)
	}

	svg, err := os.ReadFile(filepath.Join(dir, "heatmap.svg"))
	if err != nil {
		t.Fatal(err)
	}
	// Channel 0 is hottest (3 busy + 0 blocked... see fills: c0 busy 3,
	// c2 blocked 2, c1 busy 1) and gets the black outline; cycle channels
	// (c1, c2 — waited on in the final graph) are outlined red.
	if !bytes.Contains(svg, []byte(`stroke="black"`)) || !bytes.Contains(svg, []byte(`stroke="red"`)) {
		t.Fatalf("heatmap missing hottest/cycle outlines:\n%s", svg)
	}

	// Byte determinism of the whole bundle.
	dir2 := t.TempDir()
	if err := build().Dump(dir2, ""); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"flight.jsonl", "waitfor.dot", "heatmap.svg"} {
		a, _ := os.ReadFile(filepath.Join(dir, name))
		b, _ := os.ReadFile(filepath.Join(dir2, name))
		if !bytes.Equal(a, b) {
			t.Fatalf("%s not deterministic", name)
		}
	}
}

// TestRecorderPartialFrameSpan: a dump that fires mid-frame must record
// the true cycle span — the flushed partial frame ends at the last
// sampled cycle, and the header's span_end covers telemetry samples
// taken after the last event, not just the frame-boundary or event
// cycle.
func TestRecorderPartialFrameSpan(t *testing.T) {
	g := topology.NewMesh([]int{2, 2}, 1)
	c := NewCollector(g.Network.NumChannels(), Config{Stride: 10, FrameEvery: 8, Ring: 4})
	r := NewFlightRecorder(g.Network, 8, c)
	// One early event at cycle 3, then telemetry keeps sampling far past
	// it: 5 samples at cycles 0..40 — frame 0 never closes on its own
	// (FrameEvery 8).
	r.Event(obsv.Event{Kind: obsv.KindInject, Cycle: 3, Msg: 0})
	for i := 0; i <= 4; i++ {
		fillSample(c, i*10, []int{0}, nil, int64(i), 1)
	}
	if c.LastSampleCycle() != 40 {
		t.Fatalf("LastSampleCycle = %d, want 40", c.LastSampleCycle())
	}

	dir := t.TempDir()
	if err := r.Dump(dir, "requested"); err != nil {
		t.Fatal(err)
	}
	jsonl, err := os.ReadFile(filepath.Join(dir, "flight.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	head := string(jsonl[:bytes.IndexByte(jsonl, '\n')])
	// The event cycle stays what it was; the span covers the samples.
	if !strings.Contains(head, `"cycle":3`) || !strings.Contains(head, `"span_end":40`) {
		t.Fatalf("header span does not reflect the mid-frame dump: %s", head)
	}
	// The flushed partial frame must end at the last sampled cycle, not
	// a frame boundary.
	if !bytes.Contains(jsonl, []byte(`"frame":0,"start":0,"end":40,"samples":5`)) {
		t.Fatalf("partial frame span wrong:\n%s", jsonl)
	}
}

// TestRecorderHeatmapGolden pins heatmap.svg byte-for-byte against a
// committed golden so the renderer can be refactored safely: the fixture
// exercises the hottest-channel black outline, the cycle red-border, and
// the green-to-red ramp.
func TestRecorderHeatmapGolden(t *testing.T) {
	g := topology.NewMesh([]int{2, 2}, 1)
	c := NewCollector(g.Network.NumChannels(), Config{Stride: 2, FrameEvery: 2, Ring: 4})
	fillSample(c, 0, []int{0, 1}, []int{2}, 3, 2)
	fillSample(c, 2, []int{0}, []int{2}, 6, 2)
	fillSample(c, 4, []int{0, 3}, nil, 9, 1)
	r := NewFlightRecorder(g.Network, 8, c)
	waitAdd(r, 3, 0, 1, 1)
	waitAdd(r, 3, 1, 2, 0)
	r.Event(obsv.Event{Kind: obsv.KindDeadlock, Cycle: 4, N: 2})
	c.Flush()
	got := r.renderHeatmap("deadlock")

	golden := filepath.Join("testdata", "heatmap_golden.svg")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("heatmap.svg diverged from golden:\n--- got\n%s\n--- want\n%s", got, want)
	}
}
