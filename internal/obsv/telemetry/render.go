// Shared post-mortem renderers: the wait-for graph model and the
// congestion heatmap, used both by the live FlightRecorder at dump time
// and by `telemetry replay` when re-rendering a bundle offline. Keeping
// one implementation is what makes the replayed artifacts byte-identical
// to the originals.
package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/topology"
)

// WaitGraph is the incrementally-maintained wait-for state: one outgoing
// edge per blocked message (the relation is functional, Definition 6's
// "waits for") plus the channel→holder map. The FlightRecorder feeds it
// from live events; replay reconstructs it from the bundle's waitgraph
// line.
type WaitGraph struct {
	WaitCh    []topology.ChannelID // msg -> waited-for channel, None when not waiting
	WaitOwner []int                // msg -> holder of that channel
	WaitSeen  []bool               // msg ever appeared in the wait graph
	HeldBy    []int                // channel -> holding message, -1 when free
}

// NewWaitGraph returns an empty graph over the given channel count.
func NewWaitGraph(channels int) *WaitGraph {
	heldBy := make([]int, channels)
	for i := range heldBy {
		heldBy[i] = -1
	}
	return &WaitGraph{HeldBy: heldBy}
}

func (g *WaitGraph) ensure(id int) {
	for len(g.WaitCh) <= id {
		g.WaitCh = append(g.WaitCh, topology.None)
		g.WaitOwner = append(g.WaitOwner, -1)
		g.WaitSeen = append(g.WaitSeen, false)
	}
}

// Acquire records msg holding ch.
func (g *WaitGraph) Acquire(ch topology.ChannelID, msg int) {
	if int(ch) < len(g.HeldBy) {
		g.HeldBy[ch] = msg
	}
}

// Release records ch becoming free.
func (g *WaitGraph) Release(ch topology.ChannelID) {
	if int(ch) < len(g.HeldBy) {
		g.HeldBy[ch] = -1
	}
}

// AddEdge records msg waiting on ch held by owner.
func (g *WaitGraph) AddEdge(msg int, ch topology.ChannelID, owner int) {
	g.ensure(max(msg, owner))
	g.WaitCh[msg] = ch
	g.WaitOwner[msg] = owner
	g.WaitSeen[msg] = true
	g.WaitSeen[owner] = true
}

// DelEdge clears msg's outgoing wait edge.
func (g *WaitGraph) DelEdge(msg int) {
	g.ensure(msg)
	g.WaitCh[msg] = topology.None
}

// CycleMembers returns the messages on closed wait-for cycles. The
// relation is functional, so a pointer chase from every waiting node
// suffices — same algorithm as obsv.DOTSink.
func (g *WaitGraph) CycleMembers() map[int]bool {
	members := map[int]bool{}
	for start := range g.WaitCh {
		if g.WaitCh[start] == topology.None {
			continue
		}
		visited := map[int]bool{}
		at, ok := start, true
		for ok && !visited[at] {
			visited[at] = true
			if at >= len(g.WaitCh) || g.WaitCh[at] == topology.None {
				ok = false
			} else {
				at = g.WaitOwner[at]
			}
		}
		if ok && visited[at] {
			for c := at; ; {
				members[c] = true
				c = g.WaitOwner[c]
				if c == at {
					break
				}
			}
		}
	}
	return members
}

// CycleChannels returns the channel set of closed wait-for cycles — the
// deadlocked resource cycle in channel terms: every channel a cycle
// member waits for, plus every channel a cycle member holds (its arc).
// Definition 6's cycle is over messages; the corresponding channel cycle
// is exactly this held-plus-waited set.
func (g *WaitGraph) CycleChannels() []topology.ChannelID {
	members := g.CycleMembers()
	set := map[topology.ChannelID]bool{}
	for m := range members {
		if g.WaitCh[m] != topology.None {
			set[g.WaitCh[m]] = true
		}
	}
	for ch, holder := range g.HeldBy {
		if holder >= 0 && members[holder] {
			set[topology.ChannelID(ch)] = true
		}
	}
	chs := make([]topology.ChannelID, 0, len(set))
	for ch := range set {
		chs = append(chs, ch)
	}
	sort.Slice(chs, func(i, j int) bool { return chs[i] < chs[j] })
	return chs
}

// RenderDOT renders the graph as a Graphviz digraph with the given
// title, closed cycles red — the same conventions as obsv.DOTSink, so
// the artifact diffs cleanly against a full DOT trace's last snapshot.
func (g *WaitGraph) RenderDOT(title string) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=LR;\n")
	inCycle := g.CycleMembers()
	var ids []int
	for id, seen := range g.WaitSeen {
		if seen {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		attrs := ""
		if inCycle[id] {
			attrs = " color=red style=bold"
		}
		fmt.Fprintf(&b, "  m%d [label=\"m%d\"%s];\n", id, id, attrs)
	}
	for _, id := range ids {
		if g.WaitCh[id] == topology.None {
			continue
		}
		attrs := ""
		if inCycle[id] && inCycle[g.WaitOwner[id]] {
			attrs = " color=red style=bold"
		}
		fmt.Fprintf(&b, "  m%d -> m%d [label=\"c%d\"%s];\n", id, g.WaitOwner[id], g.WaitCh[id], attrs)
	}
	b.WriteString("}\n")
	return []byte(b.String())
}

// xmlEscaper escapes free text (dump reasons, SLO specs) embedded in
// SVG text nodes; specs like "p99<=100" would otherwise break XML
// well-formedness.
var xmlEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")

func xmlEscape(s string) string { return xmlEscaper.Replace(s) }

// heatmapRows bounds the heatmap to the hottest channels so the artifact
// stays readable on large networks; a footer reports what was cut.
const heatmapRows = 64

// RenderHeatmap renders per-channel congestion (busy+blocked samples,
// heat[c] for channel c) as a deterministic SVG bar chart, hottest
// first. Bars shade from green (cool) to red (hot); channels in cycleChs
// (a closed wait-for cycle) are bordered red, and the single hottest
// channel black. ends(ch) supplies the channel's endpoint nodes for the
// row label.
func RenderHeatmap(reason string, cycle int, heat []uint64, ends func(ch int) (src, dst int), cycleChs []topology.ChannelID) []byte {
	type row struct {
		ch   int
		heat uint64
	}
	rows := make([]row, 0, len(heat))
	var maxHeat uint64
	for ch, h := range heat {
		if h > 0 {
			rows = append(rows, row{ch, h})
			if h > maxHeat {
				maxHeat = h
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].heat != rows[j].heat {
			return rows[i].heat > rows[j].heat
		}
		return rows[i].ch < rows[j].ch
	})
	cut := 0
	if len(rows) > heatmapRows {
		cut = len(rows) - heatmapRows
		rows = rows[:heatmapRows]
	}
	onCycle := map[topology.ChannelID]bool{}
	for _, ch := range cycleChs {
		onCycle[ch] = true
	}

	const rowH, labelW, barW = 18, 150, 500
	width := labelW + barW + 20
	height := (len(rows)+2)*rowH + 30
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="10" y="18">channel congestion (busy+blocked samples) — %s @%d</text>`+"\n", xmlEscape(reason), cycle)
	y := 30
	for i, row := range rows {
		frac := float64(row.heat) / float64(maxHeat)
		w := int(frac * barW)
		if w < 1 {
			w = 1
		}
		// Green-to-red ramp by integer interpolation, deterministic.
		red := int(255 * frac)
		green := 255 - red
		stroke := "none"
		if onCycle[topology.ChannelID(row.ch)] {
			stroke = "red"
		}
		if i == 0 {
			stroke = "black"
		}
		src, dst := ends(row.ch)
		fmt.Fprintf(&b, `<text x="10" y="%d">c%d %d→%d</text>`+"\n", y+13, row.ch, src, dst)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="rgb(%d,%d,0)" stroke="%s"/>`+"\n", labelW, y+2, w, rowH-4, red, green, stroke)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%d</text>`+"\n", labelW+w+5, y+13, row.heat)
		y += rowH
	}
	if cut > 0 {
		fmt.Fprintf(&b, `<text x="10" y="%d">(%d cooler channels omitted)</text>`+"\n", y+13, cut)
	}
	b.WriteString("</svg>\n")
	return []byte(b.String())
}
