// The flight recorder: a fixed-capacity ring of recent obsv events plus
// the collector's frame ring, dumped as a post-mortem bundle only when
// something goes wrong (deadlock, livelock, starvation, saturation). The
// analogy is deliberate — it records continuously at bounded cost and is
// read only after the crash.
package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/obsv"
	"repro/internal/topology"
)

// FlightRecorder is an obsv.Tracer that retains the last N events in a
// ring buffer and tracks the current wait-for graph incrementally, so a
// dump can render the final graph without replaying the trace. Attach it
// to a simulator (typically fanned out with obsv.Multi next to other
// sinks) alongside a Collector on the same run; Dump then writes the
// bundle (format 2, self-contained for `telemetry replay`):
//
//	flight.jsonl  header, channel endpoints, wait-for graph state,
//	              retained telemetry frames, retained events
//	waitfor.dot   the final wait-for graph, closed cycles in red
//	heatmap.svg   per-channel congestion (busy+blocked), hottest outlined
//
// Recording is allocation-free after the wait-edge arrays reach the
// run's message count; a dump allocates freely (it runs once, after the
// verdict).
type FlightRecorder struct {
	net       *topology.Network
	collector *Collector

	events []obsv.Event // ring: events[i%cap] holds event i
	seen   int          // events observed

	graph     WaitGraph
	lastCycle int
	verdict   string // most recent deadlock/livelock/starvation/outcome note
	slo       []byte // optional SLO report JSON, one bundle line when set
}

// DefaultEventCap is the event-ring capacity NewFlightRecorder uses when
// given a non-positive capacity.
const DefaultEventCap = 4096

// BundleFormat is the flight.jsonl header format version. Version 2
// added span fields, the channel-endpoint and wait-graph lines (which
// make a bundle replayable offline), per-frame strides, and the
// long-horizon window accounting.
const BundleFormat = 2

// NewFlightRecorder returns a recorder over net retaining the last cap
// events (DefaultEventCap when cap <= 0). The collector supplies the
// telemetry frames and congestion totals for the dump; it may be nil,
// which drops the frame and heatmap artifacts from the bundle.
func NewFlightRecorder(net *topology.Network, cap int, c *Collector) *FlightRecorder {
	if cap <= 0 {
		cap = DefaultEventCap
	}
	return &FlightRecorder{
		net:       net,
		collector: c,
		events:    make([]obsv.Event, cap),
		graph:     *NewWaitGraph(net.NumChannels()),
	}
}

// Collector returns the telemetry collector feeding the recorder's
// frames, nil when none was attached.
func (r *FlightRecorder) Collector() *Collector { return r.collector }

// SetSLO attaches a pre-rendered SLO report (a single JSON object) to
// the bundle; it is written as its own flight.jsonl line so replay can
// carry the objectives into its timeline without the sketches.
func (r *FlightRecorder) SetSLO(report []byte) { r.slo = report }

// Event implements obsv.Tracer.
func (r *FlightRecorder) Event(e obsv.Event) {
	r.events[r.seen%len(r.events)] = e
	r.seen++
	if e.Cycle > r.lastCycle {
		r.lastCycle = e.Cycle
	}
	switch e.Kind {
	case obsv.KindAcquire:
		r.graph.Acquire(e.Ch, e.Msg)
	case obsv.KindRelease:
		r.graph.Release(e.Ch)
	case obsv.KindWaitEdgeAdd:
		r.graph.AddEdge(e.Msg, e.Ch, e.Owner)
	case obsv.KindWaitEdgeDel:
		r.graph.DelEdge(e.Msg)
	case obsv.KindDeadlock:
		r.verdict = "deadlock"
	case obsv.KindLocalDeadlock:
		r.verdict = "local-deadlock"
	case obsv.KindLivelock:
		r.verdict = "livelock"
	case obsv.KindStarvation:
		r.verdict = "starvation"
	case obsv.KindOutcome:
		if r.verdict == "" {
			r.verdict = e.Note
		}
	}
}

// Retained returns how many events the ring currently holds.
func (r *FlightRecorder) Retained() int { return min(r.seen, len(r.events)) }

// Verdict returns the most recent failure verdict the event stream
// carried ("" when the run looked healthy).
func (r *FlightRecorder) Verdict() string { return r.verdict }

// Graph returns the recorder's live wait-for graph.
func (r *FlightRecorder) Graph() *WaitGraph { return &r.graph }

// CycleChannels returns the channel set of closed wait-for cycles.
func (r *FlightRecorder) CycleChannels() []topology.ChannelID {
	return r.graph.CycleChannels()
}

// spanEnd returns the true end of the recorded history: the last event
// cycle or the last telemetry sample cycle, whichever is later. A dump
// that fires mid-frame still reports the cycles the partial frame
// covered.
func (r *FlightRecorder) spanEnd() int {
	end := r.lastCycle
	if r.collector != nil {
		if s := r.collector.LastSampleCycle(); s > end {
			end = s
		}
	}
	return end
}

// Dump writes the flight bundle into dir (created if needed). reason
// labels why the dump fired ("deadlock", "saturated", ...); when empty
// the recorder's own verdict is used.
func (r *FlightRecorder) Dump(dir, reason string) error {
	if reason == "" {
		reason = r.verdict
	}
	if reason == "" {
		reason = "requested"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if r.collector != nil {
		r.collector.Flush()
	}
	if err := os.WriteFile(filepath.Join(dir, "flight.jsonl"), r.renderJSONL(reason), 0o644); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	dot := r.graph.RenderDOT(fmt.Sprintf("flight wait-for @%d [%s]", r.lastCycle, reason))
	if err := os.WriteFile(filepath.Join(dir, "waitfor.dot"), dot, 0o644); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if r.collector != nil {
		if err := os.WriteFile(filepath.Join(dir, "heatmap.svg"), r.renderHeatmap(reason), 0o644); err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
	}
	return nil
}

// frameSource returns the frames the bundle will carry: the long-horizon
// window when one is attached (its whole retained history), otherwise
// the collector's frame ring.
func (r *FlightRecorder) frameSource() (count int, emit func(func(*Frame))) {
	c := r.collector
	if c == nil {
		return 0, func(func(*Frame)) {}
	}
	if w := c.Window(); w != nil {
		return w.Stats().Frames, w.Frames
	}
	ring := c.Frames()
	return len(ring), func(visit func(*Frame)) {
		for _, f := range ring {
			visit(f)
		}
	}
}

// renderJSONL builds flight.jsonl: one header object, one channel-
// endpoint line, one wait-graph line, then the retained telemetry frames
// oldest-first and the retained events oldest-first. Every line is
// deterministic for a deterministic run.
func (r *FlightRecorder) renderJSONL(reason string) []byte {
	var b []byte
	frames, emit := r.frameSource()
	spanStart := 0
	gotStart := false
	emit(func(f *Frame) {
		if !gotStart {
			spanStart = f.Start
			gotStart = true
		}
	})
	b = append(b, `{"flight_recorder":true,"format":`...)
	b = strconv.AppendInt(b, BundleFormat, 10)
	b = append(b, `,"reason":`...)
	b = appendQuoted(b, reason)
	b = append(b, `,"cycle":`...)
	b = strconv.AppendInt(b, int64(r.lastCycle), 10)
	b = append(b, `,"span_start":`...)
	b = strconv.AppendInt(b, int64(spanStart), 10)
	b = append(b, `,"span_end":`...)
	b = strconv.AppendInt(b, int64(r.spanEnd()), 10)
	b = append(b, `,"events_seen":`...)
	b = strconv.AppendInt(b, int64(r.seen), 10)
	b = append(b, `,"events_retained":`...)
	b = strconv.AppendInt(b, int64(r.Retained()), 10)
	b = append(b, `,"frames_retained":`...)
	b = strconv.AppendInt(b, int64(frames), 10)
	if r.collector != nil {
		if w := r.collector.Window(); w != nil {
			b = append(b, `,"window":`...)
			b = w.Stats().AppendJSON(b)
		}
	}
	b = append(b, '}', '\n')

	// Channel endpoints: what replay needs to label heatmap rows.
	b = append(b, `{"channels":[`...)
	for ch := 0; ch < r.net.NumChannels(); ch++ {
		if ch > 0 {
			b = append(b, ',')
		}
		c := r.net.Channel(topology.ChannelID(ch))
		b = append(b, '[')
		b = strconv.AppendInt(b, int64(c.Src), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(c.Dst), 10)
		b = append(b, ']')
	}
	b = append(b, `]}`...)
	b = append(b, '\n')

	b = r.graph.AppendJSON(b)
	b = append(b, '\n')

	if r.slo != nil {
		b = append(b, `{"slo":`...)
		b = append(b, r.slo...)
		b = append(b, '}', '\n')
	}

	emit(func(f *Frame) {
		b = f.AppendJSON(b)
		b = append(b, '\n')
	})
	first := r.seen - r.Retained()
	for i := first; i < r.seen; i++ {
		b = r.events[i%len(r.events)].AppendJSON(b)
		b = append(b, '\n')
	}
	return b
}

// AppendJSON appends the graph's full state as one deterministic JSON
// object — the bundle line that lets replay rebuild the wait-for graph
// without the event stream.
func (g *WaitGraph) AppendJSON(b []byte) []byte {
	b = append(b, `{"waitgraph":true,"seen":[`...)
	first := true
	for id, seen := range g.WaitSeen {
		if !seen {
			continue
		}
		if !first {
			b = append(b, ',')
		}
		first = false
		b = strconv.AppendInt(b, int64(id), 10)
	}
	b = append(b, `],"edges":[`...)
	first = true
	for id := range g.WaitCh {
		if g.WaitCh[id] == topology.None {
			continue
		}
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, '[')
		b = strconv.AppendInt(b, int64(id), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(g.WaitCh[id]), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(g.WaitOwner[id]), 10)
		b = append(b, ']')
	}
	b = append(b, `],"held":[`...)
	first = true
	for ch, holder := range g.HeldBy {
		if holder < 0 {
			continue
		}
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, '[')
		b = strconv.AppendInt(b, int64(ch), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(holder), 10)
		b = append(b, ']')
	}
	b = append(b, `]}`...)
	return b
}

// AppendJSON appends the window accounting as one deterministic JSON
// object (the bundle header's "window" value).
func (s WindowStats) AppendJSON(b []byte) []byte {
	b = append(b, `{"budget_bytes":`...)
	b = strconv.AppendInt(b, int64(s.Budget), 10)
	b = append(b, `,"bytes":`...)
	b = strconv.AppendInt(b, int64(s.Bytes), 10)
	b = append(b, `,"frames":`...)
	b = strconv.AppendInt(b, int64(s.Frames), 10)
	b = append(b, `,"dropped_frames":`...)
	b = strconv.AppendInt(b, int64(s.Dropped), 10)
	b = append(b, `,"raw_bytes":`...)
	b = strconv.AppendInt(b, s.Raw, 10)
	b = append(b, `,"span_start":`...)
	b = strconv.AppendInt(b, int64(s.SpanStart), 10)
	b = append(b, `,"span_end":`...)
	b = strconv.AppendInt(b, int64(s.SpanEnd), 10)
	b = append(b, `,"compression_x100":`...)
	b = strconv.AppendInt(b, s.CompressionX100, 10)
	b = append(b, `,"history_x100":`...)
	b = strconv.AppendInt(b, s.HistoryX100, 10)
	b = append(b, '}')
	return b
}

// renderHeatmap collects run-total heat from the collector and renders
// the shared heatmap.
func (r *FlightRecorder) renderHeatmap(reason string) []byte {
	c := r.collector
	heat := make([]uint64, c.channels)
	for ch := range heat {
		heat[ch] = c.Heat(ch)
	}
	ends := func(ch int) (int, int) {
		cc := r.net.Channel(topology.ChannelID(ch))
		return int(cc.Src), int(cc.Dst)
	}
	return RenderHeatmap(reason, r.lastCycle, heat, ends, r.graph.CycleChannels())
}

// appendQuoted appends s as a JSON string (telemetry strings are plain
// ASCII identifiers; quotes and backslashes escaped for safety).
func appendQuoted(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"', '\\':
			b = append(b, '\\', c)
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
