// The flight recorder: a fixed-capacity ring of recent obsv events plus
// the collector's frame ring, dumped as a post-mortem bundle only when
// something goes wrong (deadlock, livelock, starvation, saturation). The
// analogy is deliberate — it records continuously at bounded cost and is
// read only after the crash.
package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obsv"
	"repro/internal/topology"
)

// FlightRecorder is an obsv.Tracer that retains the last N events in a
// ring buffer and tracks the current wait-for graph incrementally, so a
// dump can render the final graph without replaying the trace. Attach it
// to a simulator (typically fanned out with obsv.Multi next to other
// sinks) alongside a Collector on the same run; Dump then writes the
// bundle:
//
//	flight.jsonl  header, retained telemetry frames, retained events
//	waitfor.dot   the final wait-for graph, closed cycles in red
//	heatmap.svg   per-channel congestion (busy+blocked), hottest outlined
//
// Recording is allocation-free after the wait-edge arrays reach the
// run's message count; a dump allocates freely (it runs once, after the
// verdict).
type FlightRecorder struct {
	net       *topology.Network
	collector *Collector

	events []obsv.Event // ring: events[i%cap] holds event i
	seen   int          // events observed

	waitCh    []topology.ChannelID // msg -> waited-for channel, None when not waiting
	waitOwner []int
	waitSeen  []bool // msg ever appeared in the wait graph
	heldBy    []int  // channel -> holding message, -1 when free
	lastCycle int
	verdict   string // most recent deadlock/livelock/starvation/outcome note
}

// DefaultEventCap is the event-ring capacity NewFlightRecorder uses when
// given a non-positive capacity.
const DefaultEventCap = 4096

// NewFlightRecorder returns a recorder over net retaining the last cap
// events (DefaultEventCap when cap <= 0). The collector supplies the
// telemetry frames and congestion totals for the dump; it may be nil,
// which drops the frame and heatmap artifacts from the bundle.
func NewFlightRecorder(net *topology.Network, cap int, c *Collector) *FlightRecorder {
	if cap <= 0 {
		cap = DefaultEventCap
	}
	heldBy := make([]int, net.NumChannels())
	for i := range heldBy {
		heldBy[i] = -1
	}
	return &FlightRecorder{
		net:       net,
		collector: c,
		events:    make([]obsv.Event, cap),
		heldBy:    heldBy,
	}
}

// Collector returns the telemetry collector feeding the recorder's
// frames, nil when none was attached.
func (r *FlightRecorder) Collector() *Collector { return r.collector }

// Event implements obsv.Tracer.
func (r *FlightRecorder) Event(e obsv.Event) {
	r.events[r.seen%len(r.events)] = e
	r.seen++
	if e.Cycle > r.lastCycle {
		r.lastCycle = e.Cycle
	}
	switch e.Kind {
	case obsv.KindAcquire:
		if int(e.Ch) < len(r.heldBy) {
			r.heldBy[e.Ch] = e.Msg
		}
	case obsv.KindRelease:
		if int(e.Ch) < len(r.heldBy) {
			r.heldBy[e.Ch] = -1
		}
	case obsv.KindWaitEdgeAdd:
		r.ensureWait(max(e.Msg, e.Owner))
		r.waitCh[e.Msg] = e.Ch
		r.waitOwner[e.Msg] = e.Owner
		r.waitSeen[e.Msg] = true
		r.waitSeen[e.Owner] = true
	case obsv.KindWaitEdgeDel:
		r.ensureWait(e.Msg)
		r.waitCh[e.Msg] = topology.None
	case obsv.KindDeadlock:
		r.verdict = "deadlock"
	case obsv.KindLocalDeadlock:
		r.verdict = "local-deadlock"
	case obsv.KindLivelock:
		r.verdict = "livelock"
	case obsv.KindStarvation:
		r.verdict = "starvation"
	case obsv.KindOutcome:
		if r.verdict == "" {
			r.verdict = e.Note
		}
	}
}

func (r *FlightRecorder) ensureWait(id int) {
	for len(r.waitCh) <= id {
		r.waitCh = append(r.waitCh, topology.None)
		r.waitOwner = append(r.waitOwner, -1)
		r.waitSeen = append(r.waitSeen, false)
	}
}

// Retained returns how many events the ring currently holds.
func (r *FlightRecorder) Retained() int { return min(r.seen, len(r.events)) }

// Verdict returns the most recent failure verdict the event stream
// carried ("" when the run looked healthy).
func (r *FlightRecorder) Verdict() string { return r.verdict }

// cycleMembers returns the messages on closed wait-for cycles. The
// relation is functional (one outgoing edge per blocked message), so a
// pointer chase from every waiting node suffices — same algorithm as
// obsv.DOTSink.
func (r *FlightRecorder) cycleMembers() map[int]bool {
	members := map[int]bool{}
	for start := range r.waitCh {
		if r.waitCh[start] == topology.None {
			continue
		}
		visited := map[int]bool{}
		at, ok := start, true
		for ok && !visited[at] {
			visited[at] = true
			if at >= len(r.waitCh) || r.waitCh[at] == topology.None {
				ok = false
			} else {
				at = r.waitOwner[at]
			}
		}
		if ok && visited[at] {
			for c := at; ; {
				members[c] = true
				c = r.waitOwner[c]
				if c == at {
					break
				}
			}
		}
	}
	return members
}

// CycleChannels returns the channel set of closed wait-for cycles — the
// deadlocked resource cycle in channel terms: every channel a cycle
// member waits for, plus every channel a cycle member holds (its arc).
// Definition 6's cycle is over messages; the corresponding channel cycle
// is exactly this held-plus-waited set.
func (r *FlightRecorder) CycleChannels() []topology.ChannelID {
	members := r.cycleMembers()
	set := map[topology.ChannelID]bool{}
	for m := range members {
		if r.waitCh[m] != topology.None {
			set[r.waitCh[m]] = true
		}
	}
	for ch, holder := range r.heldBy {
		if holder >= 0 && members[holder] {
			set[topology.ChannelID(ch)] = true
		}
	}
	chs := make([]topology.ChannelID, 0, len(set))
	for ch := range set {
		chs = append(chs, ch)
	}
	sort.Slice(chs, func(i, j int) bool { return chs[i] < chs[j] })
	return chs
}

// Dump writes the flight bundle into dir (created if needed). reason
// labels why the dump fired ("deadlock", "saturated", ...); when empty
// the recorder's own verdict is used.
func (r *FlightRecorder) Dump(dir, reason string) error {
	if reason == "" {
		reason = r.verdict
	}
	if reason == "" {
		reason = "requested"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if r.collector != nil {
		r.collector.Flush()
	}
	if err := os.WriteFile(filepath.Join(dir, "flight.jsonl"), r.renderJSONL(reason), 0o644); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "waitfor.dot"), r.renderDOT(reason), 0o644); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if r.collector != nil {
		if err := os.WriteFile(filepath.Join(dir, "heatmap.svg"), r.renderHeatmap(reason), 0o644); err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
	}
	return nil
}

// renderJSONL builds flight.jsonl: one header object, then the retained
// telemetry frames oldest-first, then the retained events oldest-first.
// Every line is deterministic for a deterministic run.
func (r *FlightRecorder) renderJSONL(reason string) []byte {
	var b []byte
	frames := 0
	if r.collector != nil {
		frames = min(r.collector.FramesClosed(), r.collector.cfg.Ring)
	}
	b = append(b, `{"flight_recorder":true,"reason":`...)
	b = appendQuoted(b, reason)
	b = append(b, `,"cycle":`...)
	b = append(b, fmt.Sprint(r.lastCycle)...)
	b = append(b, `,"events_seen":`...)
	b = append(b, fmt.Sprint(r.seen)...)
	b = append(b, `,"events_retained":`...)
	b = append(b, fmt.Sprint(r.Retained())...)
	b = append(b, `,"frames_retained":`...)
	b = append(b, fmt.Sprint(frames)...)
	b = append(b, '}', '\n')
	if r.collector != nil {
		for _, f := range r.collector.Frames() {
			b = f.AppendJSON(b)
			b = append(b, '\n')
		}
	}
	first := r.seen - r.Retained()
	for i := first; i < r.seen; i++ {
		b = r.events[i%len(r.events)].AppendJSON(b)
		b = append(b, '\n')
	}
	return b
}

// renderDOT renders the final wait-for graph, closed cycles red — the
// same conventions as obsv.DOTSink, so the artifact diffs cleanly against
// a full DOT trace's last snapshot.
func (r *FlightRecorder) renderDOT(reason string) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", fmt.Sprintf("flight wait-for @%d [%s]", r.lastCycle, reason))
	b.WriteString("  rankdir=LR;\n")
	inCycle := r.cycleMembers()
	var ids []int
	for id, seen := range r.waitSeen {
		if seen {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		attrs := ""
		if inCycle[id] {
			attrs = " color=red style=bold"
		}
		fmt.Fprintf(&b, "  m%d [label=\"m%d\"%s];\n", id, id, attrs)
	}
	for _, id := range ids {
		if r.waitCh[id] == topology.None {
			continue
		}
		attrs := ""
		if inCycle[id] && inCycle[r.waitOwner[id]] {
			attrs = " color=red style=bold"
		}
		fmt.Fprintf(&b, "  m%d -> m%d [label=\"c%d\"%s];\n", id, r.waitOwner[id], r.waitCh[id], attrs)
	}
	b.WriteString("}\n")
	return []byte(b.String())
}

// heatmapRows bounds the heatmap to the hottest channels so the artifact
// stays readable on large networks; a footer reports what was cut.
const heatmapRows = 64

// renderHeatmap renders per-channel congestion (busy+blocked samples over
// the whole run) as a deterministic SVG bar chart, hottest first. Bars
// shade from green (cool) to red (hot); channels on a closed wait-for
// cycle are bordered red, and the single hottest channel black.
func (r *FlightRecorder) renderHeatmap(reason string) []byte {
	c := r.collector
	type row struct {
		ch   int
		heat uint64
	}
	rows := make([]row, 0, c.channels)
	var maxHeat uint64
	for ch := 0; ch < c.channels; ch++ {
		h := c.Heat(ch)
		if h > 0 {
			rows = append(rows, row{ch, h})
			if h > maxHeat {
				maxHeat = h
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].heat != rows[j].heat {
			return rows[i].heat > rows[j].heat
		}
		return rows[i].ch < rows[j].ch
	})
	cut := 0
	if len(rows) > heatmapRows {
		cut = len(rows) - heatmapRows
		rows = rows[:heatmapRows]
	}
	onCycle := map[topology.ChannelID]bool{}
	for _, ch := range r.CycleChannels() {
		onCycle[ch] = true
	}

	const rowH, labelW, barW = 18, 150, 500
	width := labelW + barW + 20
	height := (len(rows)+2)*rowH + 30
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="10" y="18">channel congestion (busy+blocked samples) — %s @%d</text>`+"\n", reason, r.lastCycle)
	y := 30
	for i, row := range rows {
		frac := float64(row.heat) / float64(maxHeat)
		w := int(frac * barW)
		if w < 1 {
			w = 1
		}
		// Green-to-red ramp by integer interpolation, deterministic.
		red := int(255 * frac)
		green := 255 - red
		stroke := "none"
		if onCycle[topology.ChannelID(row.ch)] {
			stroke = "red"
		}
		if i == 0 {
			stroke = "black"
		}
		ch := r.net.Channel(topology.ChannelID(row.ch))
		fmt.Fprintf(&b, `<text x="10" y="%d">c%d %d→%d</text>`+"\n", y+13, row.ch, ch.Src, ch.Dst)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="rgb(%d,%d,0)" stroke="%s"/>`+"\n", labelW, y+2, w, rowH-4, red, green, stroke)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%d</text>`+"\n", labelW+w+5, y+13, row.heat)
		y += rowH
	}
	if cut > 0 {
		fmt.Fprintf(&b, `<text x="10" y="%d">(%d cooler channels omitted)</text>`+"\n", y+13, cut)
	}
	b.WriteString("</svg>\n")
	return []byte(b.String())
}

// appendQuoted appends s as a JSON string (telemetry strings are plain
// ASCII identifiers; quotes and backslashes escaped for safety).
func appendQuoted(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"', '\\':
			b = append(b, '\\', c)
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
