// Offline bundle replay: parse a dumped flight.jsonl (format 2) back
// into frames, wait-for graph state, and window accounting, and
// re-render the artifacts without re-running the simulation. Everything
// here is a pure function of the bundle bytes, so replay output is
// byte-deterministic — render the same bundle twice, get the same bytes.
package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/topology"
)

// Bundle is a parsed flight.jsonl.
type Bundle struct {
	Format         int
	Reason         string
	Cycle          int
	SpanStart      int
	SpanEnd        int
	EventsSeen     int
	EventsRetained int
	FramesRetained int
	Window         *WindowStats

	Channels [][2]int // channel -> (src, dst) endpoint nodes
	Graph    *WaitGraph
	SLO      *SLOReport
	Frames   []*Frame

	EventLines int // retained event lines (kept as counts, not re-parsed)
}

type bundleHeader struct {
	FlightRecorder bool         `json:"flight_recorder"`
	Format         int          `json:"format"`
	Reason         string       `json:"reason"`
	Cycle          int          `json:"cycle"`
	SpanStart      int          `json:"span_start"`
	SpanEnd        int          `json:"span_end"`
	EventsSeen     int          `json:"events_seen"`
	EventsRetained int          `json:"events_retained"`
	FramesRetained int          `json:"frames_retained"`
	Window         *WindowStats `json:"window"`
}

type bundleFrame struct {
	Frame    int      `json:"frame"`
	Start    int      `json:"start"`
	End      int      `json:"end"`
	Samples  int      `json:"samples"`
	Stride   int      `json:"stride"`
	Flits    int64    `json:"flits"`
	Live     int      `json:"live"`
	Channels [][4]int `json:"channels"`
}

type bundleGraph struct {
	Seen  []int    `json:"seen"`
	Edges [][3]int `json:"edges"`
	Held  [][2]int `json:"held"`
}

// ParseBundle reads a flight.jsonl stream. Format 1 bundles (no channel
// or waitgraph lines) are rejected: they predate replayability.
func ParseBundle(r io.Reader) (*Bundle, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	b := &Bundle{}
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		switch {
		case first:
			var h bundleHeader
			if err := json.Unmarshal(line, &h); err != nil || !h.FlightRecorder {
				return nil, fmt.Errorf("telemetry: not a flight bundle header: %q", line)
			}
			if h.Format < 2 {
				return nil, fmt.Errorf("telemetry: bundle format %d is not replayable (need >= 2)", h.Format)
			}
			b.Format = h.Format
			b.Reason = h.Reason
			b.Cycle = h.Cycle
			b.SpanStart = h.SpanStart
			b.SpanEnd = h.SpanEnd
			b.EventsSeen = h.EventsSeen
			b.EventsRetained = h.EventsRetained
			b.FramesRetained = h.FramesRetained
			b.Window = h.Window
			first = false
		case bytes.HasPrefix(line, []byte(`{"channels":`)):
			var v struct {
				Channels [][2]int `json:"channels"`
			}
			if err := json.Unmarshal(line, &v); err != nil {
				return nil, fmt.Errorf("telemetry: channel line: %w", err)
			}
			b.Channels = v.Channels
		case bytes.HasPrefix(line, []byte(`{"waitgraph":`)):
			var v bundleGraph
			if err := json.Unmarshal(line, &v); err != nil {
				return nil, fmt.Errorf("telemetry: waitgraph line: %w", err)
			}
			g := NewWaitGraph(len(b.Channels))
			for _, e := range v.Edges {
				g.AddEdge(e[0], topology.ChannelID(e[1]), e[2])
			}
			for _, id := range v.Seen {
				g.ensure(id)
				g.WaitSeen[id] = true
			}
			for _, h := range v.Held {
				g.Acquire(topology.ChannelID(h[0]), h[1])
			}
			b.Graph = g
		case bytes.HasPrefix(line, []byte(`{"slo":`)):
			var v struct {
				SLO *SLOReport `json:"slo"`
			}
			if err := json.Unmarshal(line, &v); err != nil {
				return nil, fmt.Errorf("telemetry: slo line: %w", err)
			}
			b.SLO = v.SLO
		case bytes.HasPrefix(line, []byte(`{"frame":`)):
			var v bundleFrame
			if err := json.Unmarshal(line, &v); err != nil {
				return nil, fmt.Errorf("telemetry: frame line: %w", err)
			}
			f := &Frame{
				Index: v.Frame, Start: v.Start, End: v.End,
				Samples: v.Samples, Stride: v.Stride,
				FlitsDelta: v.Flits, Live: v.Live,
				Busy:    make([]uint32, len(b.Channels)),
				Occ:     make([]uint32, len(b.Channels)),
				Blocked: make([]uint32, len(b.Channels)),
			}
			for _, q := range v.Channels {
				if q[0] >= 0 && q[0] < len(b.Channels) {
					f.Busy[q[0]] = uint32(q[1])
					f.Occ[q[0]] = uint32(q[2])
					f.Blocked[q[0]] = uint32(q[3])
				}
			}
			b.Frames = append(b.Frames, f)
		default:
			b.EventLines++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	if first {
		return nil, fmt.Errorf("telemetry: empty bundle")
	}
	if b.Graph == nil {
		b.Graph = NewWaitGraph(len(b.Channels))
	}
	return b, nil
}

// heat sums busy+blocked per channel over the retained frames.
func (b *Bundle) heat() []uint64 {
	heat := make([]uint64, len(b.Channels))
	for _, f := range b.Frames {
		for c := range heat {
			heat[c] += uint64(f.Busy[c]) + uint64(f.Blocked[c])
		}
	}
	return heat
}

func (b *Bundle) ends(ch int) (int, int) {
	if ch < len(b.Channels) {
		return b.Channels[ch][0], b.Channels[ch][1]
	}
	return -1, -1
}

// RenderDOT re-renders the bundle's wait-for graph, byte-identical to
// the recorder's original waitfor.dot.
func (b *Bundle) RenderDOT() []byte {
	return b.Graph.RenderDOT(fmt.Sprintf("flight wait-for @%d [%s]", b.Cycle, b.Reason))
}

// RenderHeatmap renders the congestion heatmap over the bundle's
// retained frames (the original heatmap covers the whole run; replay can
// only see retained evidence, which the title makes explicit).
func (b *Bundle) RenderHeatmap() []byte {
	return RenderHeatmap("replay:"+b.Reason, b.Cycle, b.heat(), b.ends, b.Graph.CycleChannels())
}

// animTopRows bounds the animated heatmap to the hottest channels.
const animTopRows = 32

// frameMS is the animation dwell per frame.
const frameMS = 250

// RenderHeatmapAnim renders a per-frame congestion animation: one row
// per hot channel, bar width and color animated across the retained
// frames (SMIL, loops forever). Pure function of the bundle.
func (b *Bundle) RenderHeatmapAnim() []byte {
	total := b.heat()
	type row struct {
		ch   int
		heat uint64
	}
	rows := make([]row, 0, len(total))
	for ch, h := range total {
		if h > 0 {
			rows = append(rows, row{ch, h})
		}
	}
	// Hottest first, channel ID as tiebreak — same ordering rule as the
	// static heatmap.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && (rows[j].heat > rows[j-1].heat ||
			(rows[j].heat == rows[j-1].heat && rows[j].ch < rows[j-1].ch)); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	if len(rows) > animTopRows {
		rows = rows[:animTopRows]
	}
	// Per-frame maximum heat normalizes bar widths frame by frame.
	var frameMax uint64 = 1
	for _, f := range b.Frames {
		for _, r := range rows {
			h := uint64(f.Busy[r.ch]) + uint64(f.Blocked[r.ch])
			if h > frameMax {
				frameMax = h
			}
		}
	}
	const rowH, labelW, barW = 18, 150, 500
	width := labelW + barW + 20
	height := (len(rows)+3)*rowH + 30
	dur := strconv.Itoa(max(1, len(b.Frames)) * frameMS)
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="10" y="18">per-frame congestion replay — %s, %d frames, cycles %d..%d</text>`+"\n",
		xmlEscape(b.Reason), len(b.Frames), b.SpanStart, b.SpanEnd)
	// Frame cursor: a marker sweeping the footer as the animation runs.
	y := 30
	for _, r := range rows {
		src, dst := b.ends(r.ch)
		fmt.Fprintf(&sb, `<text x="10" y="%d">c%d %d→%d</text>`+"\n", y+13, r.ch, src, dst)
		var widths, fills strings.Builder
		for i, f := range b.Frames {
			if i > 0 {
				widths.WriteByte(';')
				fills.WriteByte(';')
			}
			h := uint64(f.Busy[r.ch]) + uint64(f.Blocked[r.ch])
			w := int(h * barW / frameMax)
			if w < 1 {
				w = 1
			}
			red := int(h * 255 / frameMax)
			fmt.Fprintf(&widths, "%d", w)
			fmt.Fprintf(&fills, "rgb(%d,%d,0)", red, 255-red)
		}
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="1" height="%d" fill="rgb(0,255,0)">`+"\n", labelW, y+2, rowH-4)
		fmt.Fprintf(&sb, `<animate attributeName="width" values="%s" dur="%sms" repeatCount="indefinite"/>`+"\n", widths.String(), dur)
		fmt.Fprintf(&sb, `<animate attributeName="fill" values="%s" dur="%sms" repeatCount="indefinite"/>`+"\n", fills.String(), dur)
		sb.WriteString("</rect>\n")
		y += rowH
	}
	// Sweep cursor along a footer timeline bar.
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="4" fill="#ddd"/>`+"\n", labelW, y+8, barW)
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="4" height="12" fill="black">`+"\n", labelW, y+4)
	fmt.Fprintf(&sb, `<animate attributeName="x" values="%d;%d" dur="%sms" repeatCount="indefinite"/>`+"\n", labelW, labelW+barW-4, dur)
	sb.WriteString("</rect>\n")
	fmt.Fprintf(&sb, `<text x="10" y="%d">frame sweep, %dms/frame</text>`+"\n", y+13, frameMS)
	sb.WriteString("</svg>\n")
	return []byte(sb.String())
}

// RenderTimeline renders the campaign timeline: per-frame total busy and
// blocked heat, live-message count, and the adaptive-stride trajectory,
// with the SLO verdict table underneath when the bundle carries one.
func (b *Bundle) RenderTimeline() []byte {
	const plotW, plotH, padL, padT = 640, 120, 60, 30
	n := len(b.Frames)
	var maxHeat, maxLive, maxStride uint64 = 1, 1, 1
	busy := make([]uint64, n)
	blocked := make([]uint64, n)
	for i, f := range b.Frames {
		for c := range f.Busy {
			busy[i] += uint64(f.Busy[c])
			blocked[i] += uint64(f.Blocked[c])
		}
		if busy[i]+blocked[i] > maxHeat {
			maxHeat = busy[i] + blocked[i]
		}
		if uint64(f.Live) > maxLive {
			maxLive = uint64(f.Live)
		}
		if uint64(f.Stride) > maxStride {
			maxStride = uint64(f.Stride)
		}
	}
	poly := func(vals func(i int) uint64, vmax uint64) string {
		var p strings.Builder
		for i := 0; i < n; i++ {
			if i > 0 {
				p.WriteByte(' ')
			}
			x := padL
			if n > 1 {
				x = padL + i*plotW/(n-1)
			}
			y := padT + plotH - int(vals(i)*uint64(plotH)/vmax)
			fmt.Fprintf(&p, "%d,%d", x, y)
		}
		return p.String()
	}
	sloRows := 0
	if b.SLO != nil {
		sloRows = len(b.SLO.Results) + 1
	}
	height := padT + plotH + 60 + sloRows*16
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="12">`+"\n", padL+plotW+20, height)
	fmt.Fprintf(&sb, `<text x="10" y="18">campaign timeline — %s, cycles %d..%d, %d frames</text>`+"\n", xmlEscape(b.Reason), b.SpanStart, b.SpanEnd, n)
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999"/>`+"\n", padL, padT, plotW, plotH)
	if n > 0 {
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="green"/>`+"\n", poly(func(i int) uint64 { return busy[i] + blocked[i] }, maxHeat))
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="red"/>`+"\n", poly(func(i int) uint64 { return blocked[i] }, maxHeat))
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="blue"/>`+"\n", poly(func(i int) uint64 { return uint64(b.Frames[i].Live) }, maxLive))
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="#888" stroke-dasharray="3,2"/>`+"\n", poly(func(i int) uint64 { return uint64(b.Frames[i].Stride) }, maxStride))
	}
	y := padT + plotH + 20
	fmt.Fprintf(&sb, `<text x="%d" y="%d">green=busy+blocked (max %d)  red=blocked  blue=live (max %d)  dashed=stride (max %d)</text>`+"\n", padL, y, maxHeat, maxLive, maxStride)
	y += 20
	if b.SLO != nil {
		fmt.Fprintf(&sb, `<text x="%d" y="%d">SLO verdicts (%d violation(s)):</text>`+"\n", padL, y, b.SLO.Violations)
		y += 16
		for _, res := range b.SLO.Results {
			color := "green"
			verdict := "ok"
			if !res.OK {
				color = "red"
				verdict = "VIOLATED"
			}
			src := "all"
			if res.Source >= 0 {
				src = "src " + strconv.Itoa(res.Source)
			}
			fmt.Fprintf(&sb, `<text x="%d" y="%d" fill="%s">%s [%s] observed %d bound %d %s</text>`+"\n",
				padL, y, color, xmlEscape(res.Spec), src, res.Observed, res.Bound, verdict)
			y += 16
		}
	}
	sb.WriteString("</svg>\n")
	return []byte(sb.String())
}

// RenderSummary renders the replay summary as one deterministic JSON
// object: the header facts plus what replay derived from the evidence.
func (b *Bundle) RenderSummary() []byte {
	heat := b.heat()
	var totalHeat uint64
	hottest := -1
	var hottestHeat uint64
	for ch, h := range heat {
		totalHeat += h
		if h > hottestHeat || (h == hottestHeat && hottest < 0) {
			hottest, hottestHeat = ch, h
		}
	}
	cyc := b.Graph.CycleChannels()
	var o []byte
	o = append(o, `{"telemetry_replay":true,"format":`...)
	o = strconv.AppendInt(o, int64(b.Format), 10)
	o = append(o, `,"reason":`...)
	o = appendQuoted(o, b.Reason)
	o = append(o, `,"cycle":`...)
	o = strconv.AppendInt(o, int64(b.Cycle), 10)
	o = append(o, `,"span_start":`...)
	o = strconv.AppendInt(o, int64(b.SpanStart), 10)
	o = append(o, `,"span_end":`...)
	o = strconv.AppendInt(o, int64(b.SpanEnd), 10)
	o = append(o, `,"frames":`...)
	o = strconv.AppendInt(o, int64(len(b.Frames)), 10)
	o = append(o, `,"events_seen":`...)
	o = strconv.AppendInt(o, int64(b.EventsSeen), 10)
	o = append(o, `,"events_retained":`...)
	o = strconv.AppendInt(o, int64(b.EventLines), 10)
	o = append(o, `,"channels":`...)
	o = strconv.AppendInt(o, int64(len(b.Channels)), 10)
	o = append(o, `,"total_heat":`...)
	o = strconv.AppendInt(o, int64(totalHeat), 10)
	o = append(o, `,"hottest_channel":`...)
	o = strconv.AppendInt(o, int64(hottest), 10)
	o = append(o, `,"cycle_channels":[`...)
	for i, ch := range cyc {
		if i > 0 {
			o = append(o, ',')
		}
		o = strconv.AppendInt(o, int64(ch), 10)
	}
	o = append(o, ']')
	if b.Window != nil {
		o = append(o, `,"window":`...)
		o = b.Window.AppendJSON(o)
	}
	if b.SLO != nil {
		o = append(o, `,"slo_violations":`...)
		o = strconv.AppendInt(o, int64(b.SLO.Violations), 10)
	}
	o = append(o, '}', '\n')
	return o
}
