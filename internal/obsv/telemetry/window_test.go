package telemetry

import (
	"testing"
)

// mkFrame builds a synthetic closed frame with deterministic counters.
func mkFrame(channels, idx int) *Frame {
	f := &Frame{
		Index:      idx,
		Start:      idx * 100,
		End:        (idx + 1) * 100,
		Samples:    10,
		Stride:     8,
		FlitsDelta: int64(idx * 3),
		Live:       idx % 5,
		Busy:       make([]uint32, channels),
		Occ:        make([]uint32, channels),
		Blocked:    make([]uint32, channels),
	}
	// A few hot channels whose counters drift slowly frame to frame —
	// the temporal-stability shape the delta encoding exploits.
	for _, ch := range []int{1, channels / 2, channels - 1} {
		f.Busy[ch] = uint32(50 + idx%3)
		f.Occ[ch] = uint32(100 + idx%2)
	}
	f.Blocked[channels/2] = uint32(idx % 4)
	return f
}

func TestWindowRoundTrip(t *testing.T) {
	const channels, n = 64, 50
	w := NewWindow(channels, 1<<20) // ample budget: nothing evicts
	want := make([]*Frame, 0, n)
	for i := 0; i < n; i++ {
		f := mkFrame(channels, i)
		w.Append(f)
		want = append(want, f)
	}
	var got []*Frame
	w.Frames(func(f *Frame) {
		cp := *f
		cp.Busy = append([]uint32(nil), f.Busy...)
		cp.Occ = append([]uint32(nil), f.Occ...)
		cp.Blocked = append([]uint32(nil), f.Blocked...)
		got = append(got, &cp)
	})
	if len(got) != n {
		t.Fatalf("decoded %d frames, want %d", len(got), n)
	}
	for i, f := range got {
		ref := want[i]
		if f.Index != ref.Index || f.Start != ref.Start || f.End != ref.End ||
			f.Samples != ref.Samples || f.Stride != ref.Stride ||
			f.FlitsDelta != ref.FlitsDelta || f.Live != ref.Live {
			t.Fatalf("frame %d scalars: got %+v want %+v", i, f, ref)
		}
		for c := 0; c < channels; c++ {
			if f.Busy[c] != ref.Busy[c] || f.Occ[c] != ref.Occ[c] || f.Blocked[c] != ref.Blocked[c] {
				t.Fatalf("frame %d channel %d: got (%d,%d,%d) want (%d,%d,%d)",
					i, c, f.Busy[c], f.Occ[c], f.Blocked[c],
					ref.Busy[c], ref.Occ[c], ref.Blocked[c])
			}
		}
	}
	st := w.Stats()
	if st.Frames != n || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.SpanStart != 0 || st.SpanEnd != n*100 {
		t.Fatalf("span [%d,%d], want [0,%d]", st.SpanStart, st.SpanEnd, n*100)
	}
	if st.CompressionX100 < 200 {
		t.Fatalf("compression %d (×100) — delta encoding should beat 2× on a stable stream", st.CompressionX100)
	}
}

func TestWindowEvictionKeepsDecodableSuffix(t *testing.T) {
	const channels, n = 128, 400
	w := NewWindow(channels, 2<<10) // tight: forces block eviction
	for i := 0; i < n; i++ {
		w.Append(mkFrame(channels, i))
	}
	st := w.Stats()
	if st.Dropped == 0 {
		t.Fatal("tight budget never evicted")
	}
	if st.Frames+st.Dropped != n {
		t.Fatalf("frames %d + dropped %d != %d", st.Frames, st.Dropped, n)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("retained %d bytes over budget %d", st.Bytes, st.Budget)
	}
	// Eviction is whole restart blocks from the front, so the retained
	// history is a contiguous suffix that decodes exactly.
	first := -1
	count := 0
	w.Frames(func(f *Frame) {
		if first < 0 {
			first = f.Index
			if f.Index != st.Dropped {
				t.Fatalf("first retained index %d, want %d", f.Index, st.Dropped)
			}
			if f.Index%windowRestart != 0 {
				t.Fatalf("suffix does not start on a restart frame: %d", f.Index)
			}
		}
		ref := mkFrame(channels, f.Index)
		if f.Start != ref.Start || f.End != ref.End || f.Busy[1] != ref.Busy[1] ||
			f.Blocked[channels/2] != ref.Blocked[channels/2] {
			t.Fatalf("frame %d decoded wrong after eviction", f.Index)
		}
		count++
	})
	if count != st.Frames {
		t.Fatalf("decoded %d frames, stats say %d", count, st.Frames)
	}
	if st.SpanStart != st.Dropped*100 {
		t.Fatalf("span start %d, want %d", st.SpanStart, st.Dropped*100)
	}
}

// TestWindowHistoryMultiple checks the acceptance figure: at equal
// memory, the delta window retains ≥8× the cycle history of a plain
// frame ring.
func TestWindowHistoryMultiple(t *testing.T) {
	const channels = 256
	budget := 8 << 10
	w := NewWindow(channels, budget)
	for i := 0; i < 2000; i++ {
		w.Append(mkFrame(channels, i))
	}
	st := w.Stats()
	if st.Dropped == 0 {
		t.Fatal("window never filled — ratio not meaningful")
	}
	// A plain ring at the same budget holds budget/rawFrame frames.
	rawFrame := channels*12 + rawFrameScalars
	ringFrames := budget / rawFrame
	if st.Frames < 8*ringFrames {
		t.Fatalf("window retains %d frames vs ring %d — under the 8× bar", st.Frames, ringFrames)
	}
	if st.HistoryX100 < 800 {
		t.Fatalf("history_x100 = %d, want >= 800", st.HistoryX100)
	}
	if got := st.Raw * 100 / int64(budget); st.HistoryX100 != got {
		t.Fatalf("history_x100 %d inconsistent with raw/budget %d", st.HistoryX100, got)
	}
	// The EXPERIMENTS.md long-horizon table is regenerated from this line.
	t.Logf("budget %d B: %d frames retained (ring: %d), %d dropped, compression %.2fx, history %.2fx",
		budget, st.Frames, ringFrames, st.Dropped,
		float64(st.CompressionX100)/100, float64(st.HistoryX100)/100)
}

func TestWindowAppendSteadyStateZeroAlloc(t *testing.T) {
	const channels = 64
	w := NewWindow(channels, 4<<10)
	f := mkFrame(channels, 0)
	idx := 0
	push := func() {
		*f = *mkFrame(channels, idx) // reuse: mkFrame alloc outside measurement below
		idx++
		w.Append(f)
	}
	// Warm past the first evictions so buffers hit their high-water marks.
	for i := 0; i < 600; i++ {
		push()
	}
	frames := [3]*Frame{mkFrame(channels, 0), mkFrame(channels, 0), mkFrame(channels, 0)}
	avg := testing.AllocsPerRun(300, func() {
		fr := frames[idx%3]
		fr.Index = idx
		fr.Start = idx * 100
		fr.End = (idx + 1) * 100
		fr.Blocked[channels/2] = uint32(idx % 4)
		idx++
		w.Append(fr)
	})
	if avg != 0 {
		t.Fatalf("steady-state Append allocates %v allocs/op, want 0", avg)
	}
}

func TestWindowEmptyStats(t *testing.T) {
	w := NewWindow(16, 1<<12)
	st := w.Stats()
	if st.Frames != 0 || st.Bytes != 0 || st.CompressionX100 != 0 || st.HistoryX100 != 0 {
		t.Fatalf("empty window stats %+v", st)
	}
	w.Frames(func(*Frame) { t.Fatal("visit on empty window") })
}
