package telemetry

import (
	"bytes"
	"testing"
)

// runAdaptive drives an adaptive collector over cycles [0, n) using the
// producer protocol, feeding per-sample channel activity from drive
// (called with the sample cycle; returns busy channels, blocked
// channels, live count).
func runAdaptive(c *Collector, n int, drive func(cycle int) (busy, blocked []int, live int)) {
	var flits int64
	for now := 0; now < n; now++ {
		if !c.Due(now) {
			continue
		}
		b, o, bl := c.Accum()
		busy, blocked, live := drive(now)
		for _, ch := range busy {
			b[ch]++
			o[ch]++
		}
		for _, ch := range blocked {
			bl[ch]++
		}
		flits++
		c.FinishSample(now, flits, live)
	}
}

func TestAdaptiveStrideBacksOffWhenQuiet(t *testing.T) {
	c := NewCollector(64, Config{Stride: 8, FrameEvery: 4, Ring: 8, Adaptive: true})
	if c.CurrentStride() != 8 {
		t.Fatalf("initial stride %d, want base 8", c.CurrentStride())
	}
	// A silent network: every sample is quiet, so every quietStreakLen
	// samples the stride doubles until it hits the 16×base cap.
	runAdaptive(c, 20000, func(int) ([]int, []int, int) { return nil, nil, 0 })
	if got, want := c.CurrentStride(), 16*8; got != want {
		t.Fatalf("stride after long quiet run = %d, want cap %d", got, want)
	}
}

func TestAdaptiveStrideTightensWhenHot(t *testing.T) {
	c := NewCollector(8, Config{Stride: 4, FrameEvery: 4, Ring: 8, Adaptive: true, MaxStride: 32})
	// Quiet phase: back off to the cap.
	runAdaptive(c, 4000, func(int) ([]int, []int, int) { return nil, nil, 0 })
	if c.CurrentStride() != 32 {
		t.Fatalf("stride after quiet phase = %d, want 32", c.CurrentStride())
	}
	// Hot phase: blocked flits force a halving per sample back to base.
	last := 4000 - (4000-1)%1 // continue cycles after the quiet run
	runAdaptive2 := func(n int, drive func(int) ([]int, []int, int)) {
		var flits int64 = 1 << 20
		for now := last; now < last+n; now++ {
			if !c.Due(now) {
				continue
			}
			b, _, bl := c.Accum()
			busy, blocked, live := drive(now)
			for _, ch := range busy {
				b[ch]++
			}
			for _, ch := range blocked {
				bl[ch]++
			}
			flits++
			c.FinishSample(now, flits, live)
		}
	}
	runAdaptive2(1000, func(int) ([]int, []int, int) {
		return []int{0, 1, 2, 3}, []int{4, 5}, 6
	})
	if c.CurrentStride() != 4 {
		t.Fatalf("stride after hot phase = %d, want base 4", c.CurrentStride())
	}
}

func TestAdaptiveStrideNeverBelowBaseOrAboveCap(t *testing.T) {
	c := NewCollector(4, Config{Stride: 8, FrameEvery: 2, Ring: 4, Adaptive: true, MaxStride: 16})
	seen := map[int]bool{}
	for now, flits := 0, int64(0); now < 5000; now++ {
		if !c.Due(now) {
			continue
		}
		b, _, bl := c.Accum()
		// Alternate hot and quiet stretches.
		if (now/500)%2 == 0 {
			b[0] += 9
			bl[1] += 3
		}
		flits++
		c.FinishSample(now, flits, 1)
		seen[c.CurrentStride()] = true
		if s := c.CurrentStride(); s < 8 || s > 16 {
			t.Fatalf("stride %d escaped [8,16]", s)
		}
	}
	if !seen[8] || !seen[16] {
		t.Fatalf("expected both bounds visited, saw %v", seen)
	}
}

func TestAdaptiveFrameRecordsStride(t *testing.T) {
	c := NewCollector(16, Config{Stride: 2, FrameEvery: 2, Ring: 16, Adaptive: true, MaxStride: 8})
	runAdaptive(c, 600, func(int) ([]int, []int, int) { return nil, nil, 0 })
	c.Flush()
	frames := c.Frames()
	if len(frames) == 0 {
		t.Fatal("no frames")
	}
	widened := false
	for _, f := range frames {
		if f.Stride < 2 || f.Stride > 8 {
			t.Fatalf("frame %d stride %d outside [2,8]", f.Index, f.Stride)
		}
		if f.Stride > 2 {
			widened = true
		}
	}
	if !widened {
		t.Fatal("stride trajectory never widened over a quiet run")
	}
	var buf []byte
	buf = frames[0].AppendJSON(buf)
	if !bytes.Contains(buf, []byte(`"stride":`)) {
		t.Fatalf("frame JSON missing stride field: %s", buf)
	}
}

// TestAdaptiveStreamDeterminism re-runs the same synthetic campaign and
// requires byte-identical frame JSON, including the stride trajectory.
func TestAdaptiveStreamDeterminism(t *testing.T) {
	run := func() []byte {
		c := NewCollector(32, Config{Stride: 4, FrameEvery: 4, Ring: 64, Adaptive: true})
		var out []byte
		c.OnFrame = func(f *Frame) { out = f.AppendJSON(out); out = append(out, '\n') }
		runAdaptive(c, 3000, func(now int) ([]int, []int, int) {
			if (now/300)%3 == 0 {
				return []int{now % 32, (now * 7) % 32}, []int{(now * 3) % 32}, 5
			}
			return nil, nil, 0
		})
		c.Flush()
		return out
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("adaptive frame streams differ between identical runs")
	}
	if len(a) == 0 {
		t.Fatal("empty frame stream")
	}
}

func TestAdaptiveSummaryFields(t *testing.T) {
	c := NewCollector(8, Config{Stride: 4, Adaptive: true, MaxStride: 8})
	runAdaptive(c, 500, func(int) ([]int, []int, int) { return nil, nil, 0 })
	s := c.Summary(nil)
	if !s.Adaptive {
		t.Fatal("summary missing adaptive flag")
	}
	if s.FinalStride != c.CurrentStride() || s.FinalStride != 8 {
		t.Fatalf("final stride %d, want %d", s.FinalStride, c.CurrentStride())
	}
	// Fixed-stride summaries leave the fields zero so existing JSON is
	// byte-stable.
	if s2 := NewCollector(8, Config{Stride: 4}).Summary(nil); s2.Adaptive || s2.FinalStride != 0 {
		t.Fatalf("fixed-stride summary grew adaptive fields: %+v", s2)
	}
}
