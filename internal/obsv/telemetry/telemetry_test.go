package telemetry

import (
	"bytes"
	"testing"
)

// fillSample pushes one synthetic sample through the collector's
// producer protocol: Due gate, Accum fill, FinishSample close.
func fillSample(c *Collector, cycle int, busy, blocked []int, flits int64, live int) {
	if !c.Due(cycle) {
		return
	}
	b, o, bl := c.Accum()
	for _, ch := range busy {
		b[ch]++
		o[ch] += 2
	}
	for _, ch := range blocked {
		bl[ch]++
	}
	c.FinishSample(cycle, flits, live)
}

func TestCollectorDue(t *testing.T) {
	c := NewCollector(4, Config{Stride: 8})
	for now := 0; now < 64; now++ {
		if got, want := c.Due(now), now%8 == 0; got != want {
			t.Fatalf("Due(%d) = %v", now, got)
		}
	}
}

// TestCollectorFrameMath drives a small collector through exact frame
// boundaries and checks every aggregated figure.
func TestCollectorFrameMath(t *testing.T) {
	c := NewCollector(4, Config{Stride: 10, FrameEvery: 3, Ring: 8})
	var frames []Frame
	c.OnFrame = func(f *Frame) {
		cp := *f
		cp.Busy = append([]uint32(nil), f.Busy...)
		cp.Occ = append([]uint32(nil), f.Occ...)
		cp.Blocked = append([]uint32(nil), f.Blocked...)
		frames = append(frames, cp)
	}
	// Seven samples: two full frames of three plus one partial.
	for i := 0; i < 7; i++ {
		fillSample(c, i*10, []int{1}, []int{2}, int64(5*(i+1)), 3)
	}
	if c.FramesClosed() != 2 {
		t.Fatalf("FramesClosed = %d, want 2", c.FramesClosed())
	}
	if c.Samples() != 7 {
		t.Fatalf("Samples = %d, want 7 (partials included)", c.Samples())
	}
	c.Flush()
	if c.FramesClosed() != 3 || len(frames) != 3 {
		t.Fatalf("after Flush: closed %d, OnFrame saw %d", c.FramesClosed(), len(frames))
	}
	f0, f2 := frames[0], frames[2]
	if f0.Index != 0 || f0.Start != 0 || f0.End != 20 || f0.Samples != 3 {
		t.Fatalf("frame 0 span: %+v", f0)
	}
	if f0.Busy[1] != 3 || f0.Occ[1] != 6 || f0.Blocked[2] != 3 || f0.Busy[0] != 0 {
		t.Fatalf("frame 0 accumulators: %+v", f0)
	}
	if f0.FlitsDelta != 15 || f0.Live != 3 {
		t.Fatalf("frame 0 flits/live: %+v", f0)
	}
	// Frame 1 covers samples 4..6 (flits 20..30): delta 30-15=15.
	if frames[1].FlitsDelta != 15 {
		t.Fatalf("frame 1 flits delta: %+v", frames[1])
	}
	if f2.Samples != 1 || f2.Start != 60 || f2.End != 60 || f2.FlitsDelta != 5 {
		t.Fatalf("partial frame: %+v", f2)
	}
	// Flush with nothing pending is a no-op.
	c.Flush()
	if c.FramesClosed() != 3 {
		t.Fatal("empty Flush closed a frame")
	}
}

// TestCollectorRingEviction: only the last Ring frames stay retained,
// chronologically ordered, with global indices preserved.
func TestCollectorRingEviction(t *testing.T) {
	c := NewCollector(2, Config{Stride: 1, FrameEvery: 1, Ring: 4})
	for i := 0; i < 10; i++ {
		fillSample(c, i, []int{0}, nil, int64(i), 1)
	}
	got := c.Frames()
	if len(got) != 4 {
		t.Fatalf("retained %d frames, want 4", len(got))
	}
	for i, f := range got {
		if f.Index != 6+i {
			t.Fatalf("frame %d has index %d, want %d", i, f.Index, 6+i)
		}
	}
	if c.FramesClosed() != 10 {
		t.Fatalf("FramesClosed = %d, want 10 (evictions still counted)", c.FramesClosed())
	}
}

// TestCollectorHottest: heat is busy+blocked across the whole run
// including the current partial frame; ties break to the lowest ID.
func TestCollectorHottest(t *testing.T) {
	c := NewCollector(4, Config{Stride: 1, FrameEvery: 2, Ring: 2})
	fillSample(c, 0, []int{1, 3}, []int{3}, 0, 2)
	fillSample(c, 1, []int{1, 3}, []int{3}, 0, 2) // frame closes
	fillSample(c, 2, []int{1, 3}, []int{3}, 0, 2) // partial
	ch, heat, ok := c.Hottest()
	if !ok || ch != 3 || heat != 6 {
		t.Fatalf("Hottest = (%d, %d, %v), want (3, 6, true)", ch, heat, ok)
	}
	if c.Heat(1) != 3 || c.Heat(0) != 0 {
		t.Fatalf("Heat: c1=%d c0=%d", c.Heat(1), c.Heat(0))
	}
	if got := c.Util(1); got != 1.0 {
		t.Fatalf("Util(1) = %v, want 1.0", got)
	}
	// Tie between 1 and 3 if 1 gains blocked samples: lowest ID wins.
	b, _, bl := c.Accum()
	_ = b
	bl[1] += 3
	c.FinishSample(3, 0, 2)
	if ch, _, _ := c.Hottest(); ch != 1 {
		t.Fatalf("tie must break to lowest ID, got c%d", ch)
	}

	empty := NewCollector(2, Config{})
	if _, _, ok := empty.Hottest(); ok {
		t.Fatal("empty collector reported a hottest channel")
	}
}

// TestCollectorSummary checks the manifest block's figures.
func TestCollectorSummary(t *testing.T) {
	c := NewCollector(2, Config{Stride: 5, FrameEvery: 2, Ring: 4})
	fillSample(c, 0, []int{0}, nil, 0, 1)
	fillSample(c, 5, []int{0}, []int{1}, 8, 1)
	fillSample(c, 10, []int{0, 1}, nil, 16, 0) // partial
	lat := NewSketch()
	for _, v := range []int{10, 20, 30, 40} {
		lat.Add(v)
	}
	s := c.Summary(lat)
	if s.Stride != 5 || s.Frames != 1 || s.Samples != 3 {
		t.Fatalf("summary shape: %+v", s)
	}
	// busy totals: c0=3, c1=1 over 3 samples × 2 channels.
	if want := 4.0 / 6.0; s.MeanUtil != want {
		t.Fatalf("MeanUtil = %v, want %v", s.MeanUtil, want)
	}
	if s.HottestChannel != 0 || s.HottestUtil != 1.0 || s.HottestBlocked != 0 {
		t.Fatalf("hottest block: %+v", s)
	}
	if s.PeakUtil != 1.0 {
		t.Fatalf("PeakUtil = %v, want 1.0", s.PeakUtil)
	}
	if s.LatencyP50 != 20 || s.LatencyP95 != 40 || s.LatencyP99 != 40 {
		t.Fatalf("latency quantiles: %+v", s)
	}

	if s := NewCollector(2, Config{}).Summary(nil); s.HottestChannel != -1 || s.Samples != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

// TestFrameJSONDeterministic: two identically-driven collectors render
// identical frame bytes, and all-zero channels are omitted.
func TestFrameJSONDeterministic(t *testing.T) {
	drive := func() []byte {
		c := NewCollector(3, Config{Stride: 2, FrameEvery: 2, Ring: 4})
		var out []byte
		c.OnFrame = func(f *Frame) { out = f.AppendJSON(out); out = append(out, '\n') }
		for i := 0; i < 8; i++ {
			fillSample(c, i*2, []int{1}, []int{2}, int64(i), 1)
		}
		c.Flush()
		return out
	}
	a, b := drive(), drive()
	if !bytes.Equal(a, b) {
		t.Fatalf("frame streams differ:\n%s\n%s", a, b)
	}
	if bytes.Contains(a, []byte("[0,")) {
		t.Fatalf("idle channel 0 must be omitted from frame JSON: %s", a)
	}
}
