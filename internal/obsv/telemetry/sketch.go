package telemetry

import (
	"math/bits"
	"strconv"
)

// Sketch bucket layout. Values in [0, sketchLinearMax) get exact
// width-1 buckets, so every latency a sub-saturation (and most
// saturated) runs produce is recorded losslessly and nearest-rank
// quantiles over the sketch are byte-identical to quantiles over the
// raw sample list. Values at or above the linear range fall into
// log-linear buckets — sketchSubBuckets per power of two — with a
// worst-case relative error of 1/sketchSubBuckets, which keeps the
// sketch fixed-size no matter how pathological the tail gets.
const (
	sketchLinearMax  = 1 << 16 // exact buckets for values 0..65535
	sketchSubBits    = 6
	sketchSubBuckets = 1 << sketchSubBits // log-linear buckets per octave
	sketchMaxExp     = 62                 // values above 2^62 clamp to the top bucket
	sketchLogBuckets = (sketchMaxExp - 16 + 1) * sketchSubBuckets
)

// Sketch is a fixed-size streaming histogram of non-negative integer
// samples (latencies in cycles). Unlike the grow-forever sample slices it
// replaces, its memory is constant — ~260 KiB regardless of how many
// billions of samples it absorbs — so 10⁸-cycle load runs no longer
// accumulate per-delivery state. It is mergeable (Merge adds another
// sketch's buckets) and byte-deterministic: the bucket layout is pure
// integer arithmetic, AppendJSON emits fixed-key-order output, and two
// sketches fed the same sample sequence are identical byte for byte.
//
// The zero value is NOT ready to use; call NewSketch.
type Sketch struct {
	linear []uint32 // exact counts for values < sketchLinearMax
	logs   []uint32 // log-linear counts for the tail
	count  int64
	sum    int64
	max    int
	min    int
}

// NewSketch returns an empty sketch.
func NewSketch() *Sketch {
	return &Sketch{
		linear: make([]uint32, sketchLinearMax),
		logs:   make([]uint32, sketchLogBuckets),
		min:    -1,
	}
}

// logIndex maps a value >= sketchLinearMax to its log-linear bucket.
func logIndex(v int) int {
	u := uint64(v)
	exp := 63 - bits.LeadingZeros64(u) // floor(log2 v), >= 16
	if exp > sketchMaxExp {
		return sketchLogBuckets - 1
	}
	// The sub-bucket is the top sketchSubBits bits below the leading one.
	sub := int((u >> (uint(exp) - sketchSubBits)) & (sketchSubBuckets - 1))
	return (exp-16)*sketchSubBuckets + sub
}

// logUpper returns the inclusive upper bound of log bucket i: the largest
// value mapping to it, which Quantile reports as the bucket's
// representative (a conservative latency estimate).
func logUpper(i int) int {
	exp := i/sketchSubBuckets + 16
	sub := i % sketchSubBuckets
	base := uint64(1) << uint(exp)
	width := base >> sketchSubBits
	return int(base + uint64(sub+1)*width - 1)
}

// Add records one sample. Negative samples are clamped to 0.
func (s *Sketch) Add(v int) { s.AddN(v, 1) }

// AddN records n occurrences of sample v.
func (s *Sketch) AddN(v int, n int64) {
	if n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	if v < sketchLinearMax {
		s.linear[v] += uint32(n)
	} else {
		s.logs[logIndex(v)] += uint32(n)
	}
	s.count += n
	s.sum += int64(v) * n
	if v > s.max {
		s.max = v
	}
	if s.min < 0 || v < s.min {
		s.min = v
	}
}

// Merge adds every bucket of o into s. Both sketches share the fixed
// layout, so merging is exact.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.linear {
		if c != 0 {
			s.linear[i] += c
		}
	}
	for i, c := range o.logs {
		if c != 0 {
			s.logs[i] += c
		}
	}
	s.count += o.count
	s.sum += o.sum
	if o.max > s.max {
		s.max = o.max
	}
	if s.min < 0 || (o.min >= 0 && o.min < s.min) {
		s.min = o.min
	}
}

// Reset empties the sketch without releasing its buckets.
func (s *Sketch) Reset() {
	clear(s.linear)
	clear(s.logs)
	s.count, s.sum, s.max, s.min = 0, 0, 0, -1
}

// Count returns the number of recorded samples.
func (s *Sketch) Count() int64 { return s.count }

// Sum returns the exact sum of recorded samples.
func (s *Sketch) Sum() int64 { return s.sum }

// Max returns the exact largest recorded sample (0 when empty).
func (s *Sketch) Max() int { return s.max }

// Min returns the exact smallest recorded sample (0 when empty).
func (s *Sketch) Min() int {
	if s.min < 0 {
		return 0
	}
	return s.min
}

// Mean returns the exact arithmetic mean (0 when empty).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.count)
}

// Quantile returns the nearest-rank p-th percentile: the smallest bucket
// value such that at least p% of samples are <= it — the same rule the
// raw-slice percentile helpers use, so results agree exactly whenever the
// samples fall in the sketch's lossless linear range. Tail values report
// their bucket's upper bound; the very last sample reports the exact max.
func (s *Sketch) Quantile(p int) int {
	if s.count == 0 {
		return 0
	}
	rank := (int64(p)*s.count + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > s.count {
		rank = s.count
	}
	var seen int64
	for v, c := range s.linear {
		if c == 0 {
			continue
		}
		seen += int64(c)
		if seen >= rank {
			return v
		}
	}
	for i, c := range s.logs {
		if c == 0 {
			continue
		}
		seen += int64(c)
		if seen >= rank {
			if seen == s.count {
				// The rank lands in the final occupied bucket; the exact
				// max is known and is a tighter answer than the bucket
				// bound.
				return s.max
			}
			return logUpper(i)
		}
	}
	return s.max
}

// AppendJSON appends the sketch as one deterministic JSON object:
// summary scalars followed by the occupied buckets as [value, count]
// pairs (linear buckets report their exact value, log buckets their
// upper bound). Hand-rolled fixed key order — no maps, no reflection.
func (s *Sketch) AppendJSON(b []byte) []byte {
	b = append(b, `{"count":`...)
	b = strconv.AppendInt(b, s.count, 10)
	b = append(b, `,"sum":`...)
	b = strconv.AppendInt(b, s.sum, 10)
	b = append(b, `,"min":`...)
	b = strconv.AppendInt(b, int64(s.Min()), 10)
	b = append(b, `,"max":`...)
	b = strconv.AppendInt(b, int64(s.max), 10)
	b = append(b, `,"p50":`...)
	b = strconv.AppendInt(b, int64(s.Quantile(50)), 10)
	b = append(b, `,"p95":`...)
	b = strconv.AppendInt(b, int64(s.Quantile(95)), 10)
	b = append(b, `,"p99":`...)
	b = strconv.AppendInt(b, int64(s.Quantile(99)), 10)
	b = append(b, `,"buckets":[`...)
	first := true
	emit := func(v int, c uint32) {
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, '[')
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(c), 10)
		b = append(b, ']')
	}
	for v, c := range s.linear {
		if c != 0 {
			emit(v, c)
		}
	}
	for i, c := range s.logs {
		if c != 0 {
			emit(logUpper(i), c)
		}
	}
	b = append(b, `]}`...)
	return b
}
