package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/topology"
)

// Registry is a metrics registry: named counters, gauges and histograms
// with a Prometheus text-format exporter and a deterministic JSON snapshot
// exporter. Series are created on first use and are safe for concurrent
// update; exports are sorted by name so two snapshots of identical state
// are byte-identical.
//
// Series names may carry labels in canonical Prometheus form, e.g.
// `sim_channel_occupancy_cycles{channel="3"}` (see Label); the exporter
// groups label variants under one TYPE header per base name.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string // per-registry HELP overrides, by base name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		help:       make(map[string]string),
	}
}

// SetHelp sets the HELP text for a metric family (by base name, without
// labels). Families without explicit help fall back to the package-level
// table of known names, then to a generated placeholder, so the exposition
// always carries a HELP line per family.
func (r *Registry) SetHelp(base, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[base] = text
}

// Label renders one key="value" label pair onto a metric name.
func Label(name, key string, value any) string {
	return fmt.Sprintf("%s{%s=%q}", name, key, fmt.Sprint(value))
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that may go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Max raises the value to n if n is larger.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a cumulative-bucket histogram over float64 observations.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds; +Inf implicit
	buckets []int64   // len(bounds)+1, last is the +Inf bucket
	sum     float64
	count   int64
}

// DefaultBuckets is the power-of-two bucket ladder used when a histogram
// is created without explicit bounds: suitable for cycle counts and sizes.
var DefaultBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Counter returns the named counter, creating it if needed. Counter base
// names must carry the Prometheus `_total` suffix; violating that (or
// reusing a series name already registered with another type) is a
// programming error and panics, so a lint-breaking family can never reach
// an exposition.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		if !strings.HasSuffix(baseName(name), "_total") {
			panic(fmt.Sprintf("obsv: counter %q must have a _total-suffixed base name", name))
		}
		r.checkUnregistered(name, "counter")
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		r.checkUnregistered(name, "gauge")
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds (nil means DefaultBuckets) if needed. Bounds are fixed at
// creation; later calls ignore the argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		r.checkUnregistered(name, "histogram")
		if bounds == nil {
			bounds = DefaultBuckets
		}
		h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]int64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// checkUnregistered panics if the series name is already registered under a
// different metric type — that would split one family across two TYPE
// declarations, which the Prometheus exposition format forbids. Caller
// holds r.mu.
func (r *Registry) checkUnregistered(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("obsv: series %q already registered as a counter, cannot re-register as a %s", name, kind))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obsv: series %q already registered as a gauge, cannot re-register as a %s", name, kind))
	}
	if _, ok := r.histograms[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("obsv: series %q already registered as a histogram, cannot re-register as a %s", name, kind))
	}
}

// baseName strips a label suffix: `foo{bar="1"}` -> `foo`.
func baseName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// fmtFloat renders a float the way the Prometheus text format expects.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// builtinHelp documents every metric family the repository's producers
// emit, keyed by base name. Families not listed here (and not covered by
// SetHelp) get a generated placeholder, so the exposition always lints.
var builtinHelp = map[string]string{
	"sim_messages_injected_total":         "Messages whose header flit entered the network.",
	"sim_flits_moved_total":               "Individual flit advances, including body-flit injection.",
	"sim_flits_delivered_total":           "Flits consumed at their destination.",
	"sim_messages_delivered_total":        "Messages whose tail flit was consumed.",
	"sim_message_latency_cycles":          "Injection-to-delivery latency per delivered message, in cycles.",
	"sim_channel_acquires_total":          "Channel acquisitions by message headers.",
	"sim_channel_occupancy_cycles":        "Cycles a channel was held between acquire and release.",
	"sim_channel_held_cycles_total":       "Cycles each labeled channel was held (per-channel mode).",
	"sim_blocks_total":                    "Transitions of a message into the blocked state.",
	"sim_cycles_blocked_total":            "Total message-cycles spent blocked on a held channel.",
	"sim_blocked_duration_cycles":         "Duration of individual blocked episodes, in cycles.",
	"sim_freeze_expiries_total":           "Section 6 freeze counters that expired.",
	"sim_deadlocks_detected_total":        "Exact Definition 6 deadlock certificates detected.",
	"fault_injected_total":                "Fault events applied to the simulator.",
	"fault_injected_by_kind_total":        "Fault events applied, labeled by fault kind.",
	"fault_interventions_total":           "Watchdog recovery interventions of any kind.",
	"fault_interventions_by_action_total": "Watchdog recovery interventions, labeled by action.",
	"warnings_total":                      "Structured warnings surfaced by a run.",
	"mcheck_search_level":                 "BFS level (network cycle depth) the search is merging.",
	"mcheck_frontier_size":                "States in the BFS level currently being expanded.",
	"mcheck_frontier_peak":                "Largest BFS frontier seen so far.",
	"mcheck_states":                       "Distinct states accepted by the search so far.",
	"mcheck_peak_visited":                 "Entries retained by the visited set at search end.",
	"mcheck_workers":                      "Worker goroutines the search ran with.",
	"mcheck_visited_shard_entries":        "Visited-set entries per shard at search end.",
	"mcheck_visited_bytes":                "Resident bytes of the visited-set backend (excludes spilled runs).",
	"mcheck_visited_spill_bytes":          "Bytes in the spill backend's on-disk run files at search end.",
	"mcheck_visited_spill_runs":           "Live run files of the spill backend at search end.",
	"mcheck_bloom_probes":                 "Bitstate Bloom prefilter probes during the search.",
	"mcheck_bloom_false_positives":        "Bloom prefilter hits whose exact re-check found no entry.",
	"mcheck_states_pruned":                "Successor candidates discarded by state-space reductions.",
	"mcheck_sleep_set_hits":               "Expanded states with a non-empty sleep set.",
	"mcheck_symmetry_group":               "Order of the symmetry group the canonical encoding quotients by.",
	"cdg_dependencies":                    "Edges of the channel dependency graph.",
	"cdg_cycles_found":                    "Simple cycles enumerated in the channel dependency graph.",
	"cdg_sccs":                            "Nontrivial strongly connected components of the CDG.",
	"cdg_acyclic":                         "1 when the channel dependency graph is acyclic, else 0.",
}

// helpFor resolves the HELP text for a family. Caller holds r.mu.
func (r *Registry) helpFor(base, kind string) string {
	if h, ok := r.help[base]; ok {
		return h
	}
	if h, ok := builtinHelp[base]; ok {
		return h
	}
	return strings.ReplaceAll(base, "_", " ") + " (" + kind + ")."
}

// escapeHelp escapes a HELP text per the exposition format (backslash and
// newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promFamily is one metric family of an exposition: every series sharing a
// base name, all of one type.
type promFamily struct {
	kind   string
	series []string
}

// WritePrometheus writes every series in Prometheus text exposition
// format. Series are grouped into families by base name — a family is
// never split or interleaved, and each gets exactly one HELP and one TYPE
// line — families sorted by base name, label variants sorted within a
// family, so the output passes `promtool check metrics`-style lint rules
// and identical registry states export byte-identically.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make(map[string]*promFamily)
	addFamily := func(n, kind string) {
		base := baseName(n)
		f, ok := fams[base]
		if !ok {
			f = &promFamily{kind: kind}
			fams[base] = f
		}
		f.series = append(f.series, n)
	}
	for n := range r.counters {
		addFamily(n, "counter")
	}
	for n := range r.gauges {
		addFamily(n, "gauge")
	}
	for n := range r.histograms {
		addFamily(n, "histogram")
	}
	bases := sortedKeys(fams)
	for _, base := range bases {
		f := fams[base]
		sort.Strings(f.series)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			base, escapeHelp(r.helpFor(base, f.kind)), base, f.kind); err != nil {
			return err
		}
		for _, n := range f.series {
			switch f.kind {
			case "counter":
				fmt.Fprintf(w, "%s %d\n", n, r.counters[n].Value())
			case "gauge":
				fmt.Fprintf(w, "%s %d\n", n, r.gauges[n].Value())
			case "histogram":
				h := r.histograms[n]
				h.mu.Lock()
				cum := int64(0)
				for i, bound := range h.bounds {
					cum += h.buckets[i]
					fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, fmtFloat(bound), cum)
				}
				cum += h.buckets[len(h.bounds)]
				fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
				fmt.Fprintf(w, "%s_sum %s\n", n, fmtFloat(h.sum))
				fmt.Fprintf(w, "%s_count %d\n", n, h.count)
				h.mu.Unlock()
			}
		}
	}
	return nil
}

// WriteJSON writes a deterministic JSON snapshot: one object with
// "counters", "gauges" and "histograms" sections, series sorted by name.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	b.WriteString("{\n  \"counters\": {")
	writeScalarSection(&b, sortedKeys(r.counters), func(n string) string {
		return strconv.FormatInt(r.counters[n].Value(), 10)
	})
	b.WriteString("},\n  \"gauges\": {")
	writeScalarSection(&b, sortedKeys(r.gauges), func(n string) string {
		return strconv.FormatInt(r.gauges[n].Value(), 10)
	})
	b.WriteString("},\n  \"histograms\": {")
	names := sortedKeys(r.histograms)
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		h := r.histograms[n]
		h.mu.Lock()
		fmt.Fprintf(&b, "\n    %s: {\"count\": %d, \"sum\": %s, \"buckets\": {", strconv.Quote(n), h.count, fmtFloat(h.sum))
		cum := int64(0)
		for j, bound := range h.bounds {
			cum += h.buckets[j]
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%q: %d", fmtFloat(bound), cum)
		}
		if len(h.bounds) > 0 {
			b.WriteString(", ")
		}
		cum += h.buckets[len(h.bounds)]
		fmt.Fprintf(&b, "\"+Inf\": %d}}", cum)
		h.mu.Unlock()
	}
	if len(names) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("}\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeScalarSection(b *strings.Builder, names []string, value func(string) string) {
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "\n    %s: %s", strconv.Quote(n), value(n))
	}
	if len(names) > 0 {
		b.WriteString("\n  ")
	}
}

// MetricsSink is a Tracer that folds the event stream into a Registry:
// flits delivered, channel acquisitions, per-channel occupancy histograms,
// block/unblock counts with blocked-duration histograms, faults,
// recoveries and warnings. Attach it (alone, or in a Multi alongside a
// trace sink) and export the registry at the end of the run.
type MetricsSink struct {
	R *Registry
	// PerChannel adds per-channel labeled occupancy counters on top of the
	// aggregate histogram (one series per channel — enable only for small
	// networks).
	PerChannel bool

	acquiredAt map[topology.ChannelID]int
	blockedAt  map[int]int
}

// NewMetricsSink returns a sink recording into r.
func NewMetricsSink(r *Registry) *MetricsSink {
	return &MetricsSink{
		R:          r,
		acquiredAt: make(map[topology.ChannelID]int),
		blockedAt:  make(map[int]int),
	}
}

// Event implements Tracer.
func (m *MetricsSink) Event(e Event) {
	switch e.Kind {
	case KindInject:
		m.R.Counter("sim_messages_injected_total").Inc()
	case KindFlit:
		m.R.Counter("sim_flits_moved_total").Inc()
	case KindConsume:
		m.R.Counter("sim_flits_delivered_total").Inc()
	case KindDeliver:
		m.R.Counter("sim_messages_delivered_total").Inc()
		m.R.Histogram("sim_message_latency_cycles", nil).Observe(float64(e.N))
	case KindAcquire:
		m.R.Counter("sim_channel_acquires_total").Inc()
		m.acquiredAt[e.Ch] = e.Cycle
	case KindRelease:
		if at, ok := m.acquiredAt[e.Ch]; ok {
			delete(m.acquiredAt, e.Ch)
			held := float64(e.Cycle - at + 1)
			m.R.Histogram("sim_channel_occupancy_cycles", nil).Observe(held)
			if m.PerChannel {
				m.R.Counter(Label("sim_channel_held_cycles_total", "channel", int(e.Ch))).Add(int64(held))
			}
		}
	case KindBlock:
		m.R.Counter("sim_blocks_total").Inc()
		m.blockedAt[e.Msg] = e.Cycle
	case KindUnblock:
		if at, ok := m.blockedAt[e.Msg]; ok {
			delete(m.blockedAt, e.Msg)
			blocked := float64(e.Cycle - at)
			m.R.Counter("sim_cycles_blocked_total").Add(int64(blocked))
			m.R.Histogram("sim_blocked_duration_cycles", nil).Observe(blocked)
		}
	case KindThaw:
		m.R.Counter("sim_freeze_expiries_total").Inc()
	case KindFault:
		m.R.Counter("fault_injected_total").Inc()
		m.R.Counter(Label("fault_injected_by_kind_total", "kind", e.Note)).Inc()
	case KindRecovery:
		m.R.Counter("fault_interventions_total").Inc()
		m.R.Counter(Label("fault_interventions_by_action_total", "action", e.Note)).Inc()
	case KindWarning:
		m.R.Counter("warnings_total").Inc()
	case KindDeadlock:
		m.R.Counter("sim_deadlocks_detected_total").Inc()
	case KindSearchLevel:
		m.R.Gauge("mcheck_search_level").Set(int64(e.Cycle))
		m.R.Gauge("mcheck_frontier_size").Set(int64(e.N))
		m.R.Gauge("mcheck_frontier_peak").Max(int64(e.N))
		m.R.Gauge("mcheck_states").Set(int64(e.M))
	case KindSearchDone:
		m.R.Gauge("mcheck_states").Set(int64(e.N))
	}
}
