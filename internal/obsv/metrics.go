package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/topology"
)

// Registry is a metrics registry: named counters, gauges and histograms
// with a Prometheus text-format exporter and a deterministic JSON snapshot
// exporter. Series are created on first use and are safe for concurrent
// update; exports are sorted by name so two snapshots of identical state
// are byte-identical.
//
// Series names may carry labels in canonical Prometheus form, e.g.
// `sim_channel_occupancy_cycles{channel="3"}` (see Label); the exporter
// groups label variants under one TYPE header per base name.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Label renders one key="value" label pair onto a metric name.
func Label(name, key string, value any) string {
	return fmt.Sprintf("%s{%s=%q}", name, key, fmt.Sprint(value))
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that may go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Max raises the value to n if n is larger.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a cumulative-bucket histogram over float64 observations.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds; +Inf implicit
	buckets []int64   // len(bounds)+1, last is the +Inf bucket
	sum     float64
	count   int64
}

// DefaultBuckets is the power-of-two bucket ladder used when a histogram
// is created without explicit bounds: suitable for cycle counts and sizes.
var DefaultBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds (nil means DefaultBuckets) if needed. Bounds are fixed at
// creation; later calls ignore the argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultBuckets
		}
		h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]int64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// baseName strips a label suffix: `foo{bar="1"}` -> `foo`.
func baseName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// fmtFloat renders a float the way the Prometheus text format expects.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every series in Prometheus text exposition
// format, sorted by series name, with one TYPE header per base name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	kind := make(map[string]string)
	for n := range r.counters {
		names = append(names, n)
		kind[n] = "counter"
	}
	for n := range r.gauges {
		names = append(names, n)
		kind[n] = "gauge"
	}
	for n := range r.histograms {
		names = append(names, n)
		kind[n] = "histogram"
	}
	sort.Strings(names)
	typed := make(map[string]bool)
	for _, n := range names {
		base := baseName(n)
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind[n]); err != nil {
				return err
			}
		}
		switch kind[n] {
		case "counter":
			fmt.Fprintf(w, "%s %d\n", n, r.counters[n].Value())
		case "gauge":
			fmt.Fprintf(w, "%s %d\n", n, r.gauges[n].Value())
		case "histogram":
			h := r.histograms[n]
			h.mu.Lock()
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += h.buckets[i]
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, fmtFloat(bound), cum)
			}
			cum += h.buckets[len(h.bounds)]
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
			fmt.Fprintf(w, "%s_sum %s\n", n, fmtFloat(h.sum))
			fmt.Fprintf(w, "%s_count %d\n", n, h.count)
			h.mu.Unlock()
		}
	}
	return nil
}

// WriteJSON writes a deterministic JSON snapshot: one object with
// "counters", "gauges" and "histograms" sections, series sorted by name.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	b.WriteString("{\n  \"counters\": {")
	writeScalarSection(&b, sortedKeys(r.counters), func(n string) string {
		return strconv.FormatInt(r.counters[n].Value(), 10)
	})
	b.WriteString("},\n  \"gauges\": {")
	writeScalarSection(&b, sortedKeys(r.gauges), func(n string) string {
		return strconv.FormatInt(r.gauges[n].Value(), 10)
	})
	b.WriteString("},\n  \"histograms\": {")
	names := sortedKeys(r.histograms)
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		h := r.histograms[n]
		h.mu.Lock()
		fmt.Fprintf(&b, "\n    %s: {\"count\": %d, \"sum\": %s, \"buckets\": {", strconv.Quote(n), h.count, fmtFloat(h.sum))
		cum := int64(0)
		for j, bound := range h.bounds {
			cum += h.buckets[j]
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%q: %d", fmtFloat(bound), cum)
		}
		if len(h.bounds) > 0 {
			b.WriteString(", ")
		}
		cum += h.buckets[len(h.bounds)]
		fmt.Fprintf(&b, "\"+Inf\": %d}}", cum)
		h.mu.Unlock()
	}
	if len(names) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("}\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeScalarSection(b *strings.Builder, names []string, value func(string) string) {
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "\n    %s: %s", strconv.Quote(n), value(n))
	}
	if len(names) > 0 {
		b.WriteString("\n  ")
	}
}

// MetricsSink is a Tracer that folds the event stream into a Registry:
// flits delivered, channel acquisitions, per-channel occupancy histograms,
// block/unblock counts with blocked-duration histograms, faults,
// recoveries and warnings. Attach it (alone, or in a Multi alongside a
// trace sink) and export the registry at the end of the run.
type MetricsSink struct {
	R *Registry
	// PerChannel adds per-channel labeled occupancy counters on top of the
	// aggregate histogram (one series per channel — enable only for small
	// networks).
	PerChannel bool

	acquiredAt map[topology.ChannelID]int
	blockedAt  map[int]int
}

// NewMetricsSink returns a sink recording into r.
func NewMetricsSink(r *Registry) *MetricsSink {
	return &MetricsSink{
		R:          r,
		acquiredAt: make(map[topology.ChannelID]int),
		blockedAt:  make(map[int]int),
	}
}

// Event implements Tracer.
func (m *MetricsSink) Event(e Event) {
	switch e.Kind {
	case KindInject:
		m.R.Counter("sim_messages_injected_total").Inc()
	case KindFlit:
		m.R.Counter("sim_flits_moved_total").Inc()
	case KindConsume:
		m.R.Counter("sim_flits_delivered_total").Inc()
	case KindDeliver:
		m.R.Counter("sim_messages_delivered_total").Inc()
		m.R.Histogram("sim_message_latency_cycles", nil).Observe(float64(e.N))
	case KindAcquire:
		m.R.Counter("sim_channel_acquires_total").Inc()
		m.acquiredAt[e.Ch] = e.Cycle
	case KindRelease:
		if at, ok := m.acquiredAt[e.Ch]; ok {
			delete(m.acquiredAt, e.Ch)
			held := float64(e.Cycle - at + 1)
			m.R.Histogram("sim_channel_occupancy_cycles", nil).Observe(held)
			if m.PerChannel {
				m.R.Counter(Label("sim_channel_held_cycles_total", "channel", int(e.Ch))).Add(int64(held))
			}
		}
	case KindBlock:
		m.R.Counter("sim_blocks_total").Inc()
		m.blockedAt[e.Msg] = e.Cycle
	case KindUnblock:
		if at, ok := m.blockedAt[e.Msg]; ok {
			delete(m.blockedAt, e.Msg)
			blocked := float64(e.Cycle - at)
			m.R.Counter("sim_cycles_blocked_total").Add(int64(blocked))
			m.R.Histogram("sim_blocked_duration_cycles", nil).Observe(blocked)
		}
	case KindThaw:
		m.R.Counter("sim_freeze_expiries_total").Inc()
	case KindFault:
		m.R.Counter("fault_injected_total").Inc()
		m.R.Counter(Label("fault_injected_by_kind_total", "kind", e.Note)).Inc()
	case KindRecovery:
		m.R.Counter("fault_interventions_total").Inc()
		m.R.Counter(Label("fault_interventions_by_action_total", "action", e.Note)).Inc()
	case KindWarning:
		m.R.Counter("warnings_total").Inc()
	case KindDeadlock:
		m.R.Counter("sim_deadlocks_detected_total").Inc()
	case KindSearchLevel:
		m.R.Gauge("mcheck_search_level").Set(int64(e.Cycle))
		m.R.Gauge("mcheck_frontier_size").Set(int64(e.N))
		m.R.Gauge("mcheck_frontier_peak").Max(int64(e.N))
		m.R.Gauge("mcheck_states").Set(int64(e.M))
	case KindSearchDone:
		m.R.Gauge("mcheck_states").Set(int64(e.N))
	}
}
