package obsv

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestEventJSONOmitsInactiveFields(t *testing.T) {
	e := Ev(KindSearchLevel, 3)
	e.N = 12
	e.M = 40
	got := string(e.appendJSON(nil))
	want := `{"k":"search-level","cycle":3,"n":12,"m":40}`
	if got != want {
		t.Errorf("appendJSON = %s, want %s", got, want)
	}

	full := Ev(KindBlock, 7)
	full.Msg = 2
	full.Ch = topology.ChannelID(5)
	full.Owner = 1
	full.Note = `says "hi"`
	got = string(full.appendJSON(nil))
	want = `{"k":"block","cycle":7,"msg":2,"ch":5,"owner":1,"note":"says \"hi\""}`
	if got != want {
		t.Errorf("appendJSON = %s, want %s", got, want)
	}

	// Msg 0 and Ch 0 are real IDs, not sentinels, and must be kept.
	zero := Ev(KindAcquire, 0)
	zero.Msg = 0
	zero.Ch = topology.ChannelID(0)
	got = string(zero.appendJSON(nil))
	want = `{"k":"acquire","cycle":0,"msg":0,"ch":0}`
	if got != want {
		t.Errorf("appendJSON = %s, want %s", got, want)
	}
}

func TestEventJSONIsValidJSON(t *testing.T) {
	for k := KindInject; k <= KindSearchDone; k++ {
		e := Ev(k, 1)
		e.Note = "quote\" backslash\\ newline\n"
		var decoded map[string]any
		if err := json.Unmarshal(e.appendJSON(nil), &decoded); err != nil {
			t.Errorf("kind %v: invalid JSON: %v", k, err)
		}
		if decoded["k"] != k.String() {
			t.Errorf("kind %v: k = %v", k, decoded["k"])
		}
		if k.String() == "unknown" {
			t.Errorf("kind %v has no wire name", uint8(k))
		}
	}
}

func TestJSONLSink(t *testing.T) {
	var sb strings.Builder
	s := NewJSONL(&sb)
	e := Ev(KindInject, 0)
	e.Msg = 1
	s.Event(e)
	e = Ev(KindOutcome, 9)
	e.Note = "delivered"
	s.Event(e)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"k":"inject","cycle":0,"msg":1}` + "\n" +
		`{"k":"outcome","cycle":9,"note":"delivered"}` + "\n"
	if sb.String() != want {
		t.Errorf("JSONL output:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// waitEdge emits a wait-add of msg -> owner over ch at the given cycle.
func waitEdge(t Tracer, cycle, msg, owner, ch int) {
	e := Ev(KindWaitEdgeAdd, cycle)
	e.Msg = msg
	e.Owner = owner
	e.Ch = topology.ChannelID(ch)
	t.Event(e)
}

func TestDOTSinkMarksClosedCycle(t *testing.T) {
	var sb strings.Builder
	s := NewDOT(&sb, "test")
	// Cycle 1: a chain m0 -> m1 -> m2 (no cycle).
	waitEdge(s, 1, 0, 1, 10)
	waitEdge(s, 1, 1, 2, 11)
	// Cycle 2: m2 -> m0 closes the loop.
	waitEdge(s, 2, 2, 0, 12)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	snaps := strings.Count(out, "digraph")
	if snaps != 2 {
		t.Fatalf("got %d snapshots, want 2:\n%s", snaps, out)
	}
	first := out[:strings.Index(out, "digraph \"test wait-for @2\"")]
	second := out[len(first):]
	if strings.Contains(first, "color=red") {
		t.Errorf("chain snapshot marked a cycle:\n%s", first)
	}
	if got := strings.Count(second, "color=red style=bold"); got != 6 {
		// 3 member nodes + 3 cycle edges.
		t.Errorf("closed-cycle snapshot has %d red marks, want 6:\n%s", got, second)
	}
}

func TestDOTSinkDropsResolvedEdges(t *testing.T) {
	var sb strings.Builder
	s := NewDOT(&sb, "test")
	waitEdge(s, 1, 0, 1, 10)
	del := Ev(KindWaitEdgeDel, 3)
	del.Msg = 0
	del.Owner = 1
	del.Ch = topology.ChannelID(10)
	s.Event(del)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "m0 -> m1") != 1 {
		t.Errorf("edge should appear in exactly the first snapshot:\n%s", out)
	}
	// Both messages stay as nodes in the final (edge-free) snapshot.
	last := out[strings.LastIndex(out, "digraph"):]
	if !strings.Contains(last, "m0 [") || !strings.Contains(last, "m1 [") || strings.Contains(last, "->") {
		t.Errorf("final snapshot should keep nodes and drop the edge:\n%s", last)
	}
}

func TestChromeTraceSinkIsValidJSON(t *testing.T) {
	var sb strings.Builder
	s := NewChromeTrace(&sb, []string{"c0 0->1", "c1 1->2"})
	acq := Ev(KindAcquire, 0)
	acq.Msg = 3
	acq.Ch = topology.ChannelID(1)
	s.Event(acq)
	rel := Ev(KindRelease, 4)
	rel.Msg = 3
	rel.Ch = topology.ChannelID(1)
	s.Event(rel)
	out := Ev(KindOutcome, 5)
	out.Note = "delivered"
	s.Event(out)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var records []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &records); err != nil {
		t.Fatalf("invalid trace_event JSON: %v\n%s", err, sb.String())
	}
	// 1 process_name + 2 thread_name + B + E + instant.
	if len(records) != 6 {
		t.Fatalf("got %d records, want 6", len(records))
	}
	if records[3]["ph"] != "B" || records[4]["ph"] != "E" {
		t.Errorf("span records = %v %v", records[3], records[4])
	}
	if records[3]["tid"] != records[4]["tid"] {
		t.Errorf("span changed lanes: %v vs %v", records[3]["tid"], records[4]["tid"])
	}
}

func TestMultiSkipsNilMembers(t *testing.T) {
	rec := &Recorder{}
	m := Multi{nil, rec, nil}
	m.Event(Ev(KindInject, 0))
	if len(rec.Events) != 1 {
		t.Fatalf("recorded %d events, want 1", len(rec.Events))
	}
	if rec.Count(KindInject) != 1 || rec.Count(KindDeliver) != 0 {
		t.Error("Count mismatch")
	}
}
