package serve

import (
	"encoding/json"
	"sync"
)

// Snapshot is one live progress report published to the /progress
// endpoint. It is a union over the repository's long-running producers:
// exhaustive searches fill the Level/Frontier/States block, fault
// campaigns the Cycle/Delivered block. Unlike obsv trace events a
// snapshot carries wall-clock quantities (rates, elapsed time) — it is
// interactive telemetry, never a deterministic artifact.
type Snapshot struct {
	// Seq is a per-hub monotonically increasing sequence number, assigned
	// by Publish.
	Seq int64 `json:"seq"`
	// Source labels the producer: "search", "campaign", "run".
	Source string `json:"source"`
	// Name identifies the workload: scenario, experiment or sweep cell.
	Name string `json:"name,omitempty"`

	// Search telemetry (Source == "search").
	Level        int   `json:"level,omitempty"`
	Frontier     int   `json:"frontier,omitempty"`
	States       int   `json:"states,omitempty"`
	StatesPerSec int64 `json:"states_per_sec,omitempty"`
	// Visited-set memory accounting (exhaustive searches; zero elsewhere).
	VisitedEntries int     `json:"visited_entries,omitempty"`
	VisitedBytes   int64   `json:"visited_bytes,omitempty"`
	SpillBytes     int64   `json:"spill_bytes,omitempty"`
	BloomFPRate    float64 `json:"bloom_fp_rate,omitempty"`

	// Campaign telemetry (Source == "campaign").
	Cycle         int `json:"cycle,omitempty"`
	Messages      int `json:"messages,omitempty"`
	Delivered     int `json:"delivered,omitempty"`
	Dropped       int `json:"dropped,omitempty"`
	Faults        int `json:"faults,omitempty"`
	Interventions int `json:"interventions,omitempty"`

	ElapsedMS int64 `json:"elapsed_ms"`
	// Done marks the producer's final snapshot; Verdict carries the
	// outcome when one exists (search verdict, sim result).
	Done    bool   `json:"done,omitempty"`
	Verdict string `json:"verdict,omitempty"`
}

// Hub fans progress snapshots out to any number of /progress subscribers
// and retains the most recent one for plain GET polling. Publishing never
// blocks: a subscriber that cannot keep up has events dropped (each event
// is a full snapshot, so a dropped one is superseded by the next).
type Hub struct {
	mu   sync.Mutex
	seq  int64
	last []byte
	subs map[chan []byte]struct{}
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[chan []byte]struct{})}
}

// Publish assigns the snapshot its sequence number, stores it as the
// latest, and broadcasts it to every subscriber.
func (h *Hub) Publish(s Snapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	s.Seq = h.seq
	buf, err := json.Marshal(s)
	if err != nil {
		return // a Snapshot always marshals; defensive only
	}
	h.last = buf
	for ch := range h.subs {
		select {
		case ch <- buf:
		default: // slow subscriber: drop, the next snapshot supersedes
		}
	}
}

// Latest returns the most recently published snapshot as JSON, or nil
// when nothing was published yet.
func (h *Hub) Latest() []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last
}

// Subscribe registers a new subscriber. The returned channel receives
// every subsequently published snapshot (pre-seeded with the latest one,
// if any); cancel unregisters it. The channel is buffered — a subscriber
// must drain it or lose intermediate snapshots, never block publishers.
func (h *Hub) Subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, 16)
	h.mu.Lock()
	if h.last != nil {
		ch <- h.last
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	cancel := func() {
		h.mu.Lock()
		delete(h.subs, ch)
		h.mu.Unlock()
	}
	return ch, cancel
}
