// Package serve is the live half of the observability layer: an opt-in
// HTTP server that exposes a running search, simulation or fault campaign
// while it executes. Every cmd/ binary wires it behind the shared
// `-serve :addr` flag (internal/cli); with the flag unset nothing in this
// package runs and the producers keep their nil-guard fast paths.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition of the run's obsv.Registry
//	/healthz       liveness JSON (pid, uptime, Go version)
//	/progress      latest progress snapshot as JSON; with ?stream=sse (or
//	               Accept: text/event-stream) an SSE stream of snapshots
//	/telemetry     latest telemetry frame as JSON; with ?stream=sse an SSE
//	               stream of frames as the sampling collector closes them
//	/telemetry/slo latest per-source SLO evaluation as JSON; with
//	               ?stream=sse an SSE stream of reports as rate cells close
//	/debug/pprof/  the standard runtime profiling endpoints
//
// The server reports; it never steers. Nothing reachable over HTTP can
// change a verdict, which keeps the determinism contract of internal/obsv
// intact even with a scraper attached mid-search.
package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/obsv"
)

// Server bundles the observatory endpoints over one registry and one
// progress hub.
type Server struct {
	reg     *obsv.Registry
	hub     *Hub
	thub    *RawHub
	shub    *RawHub
	mux     *http.ServeMux
	started time.Time

	ln   net.Listener
	http *http.Server
}

// New returns a server exposing the registry (may be nil: /metrics then
// serves an empty exposition), a fresh progress hub, and a fresh
// telemetry hub.
func New(reg *obsv.Registry) *Server {
	s := &Server{reg: reg, hub: NewHub(), thub: NewRawHub(), shub: NewRawHub(), mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/progress", s.handleProgress)
	s.mux.HandleFunc("/telemetry", s.handleTelemetry)
	s.mux.HandleFunc("/telemetry/slo", s.handleSLO)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Hub returns the progress hub feeding /progress.
func (s *Server) Hub() *Hub { return s.hub }

// TelemetryHub returns the raw-payload hub feeding /telemetry.
func (s *Server) TelemetryHub() *RawHub { return s.thub }

// SLOHub returns the raw-payload hub feeding /telemetry/slo.
func (s *Server) SLOHub() *RawHub { return s.shub }

// Handler returns the server's routing handler, for tests that mount it
// on an httptest.Server instead of a real listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (":8080", "127.0.0.1:0", ...) and serves in a
// background goroutine until Close. It returns the bound address, which
// differs from addr when a ":0" ephemeral port was requested.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: %w", err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.mux}
	go s.http.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), nil
}

// Close stops the listener. In-flight requests are abandoned — the server
// exists for the duration of one process's run.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "run observatory\n\n"+
		"/metrics       Prometheus exposition of the live registry\n"+
		"/healthz       liveness\n"+
		"/progress      latest progress snapshot (?stream=sse to follow)\n"+
		"/telemetry     latest telemetry frame (?stream=sse to follow)\n"+
		"/telemetry/slo latest SLO evaluation (?stream=sse to follow)\n"+
		"/debug/pprof/  runtime profiles\n")
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":    "ok",
		"pid":       os.Getpid(),
		"go":        runtime.Version(),
		"uptime_ms": time.Since(s.started).Milliseconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.reg == nil {
		return
	}
	if err := s.reg.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

// handleProgress serves the latest snapshot as JSON, or an SSE stream when
// the client asks for one (?stream=sse or Accept: text/event-stream).
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	stream := r.URL.Query().Get("stream") == "sse" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if !stream {
		w.Header().Set("Content-Type", "application/json")
		if last := s.hub.Latest(); last != nil {
			w.Write(last)
			w.Write([]byte("\n"))
			return
		}
		w.Write([]byte("{}\n"))
		return
	}

	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fl.Flush()

	events, cancel := s.hub.Subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case buf := <-events:
			if _, err := fmt.Fprintf(w, "data: %s\n\n", buf); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
