package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// RawHub fans pre-serialized JSON payloads out to subscribers and retains
// the most recent one — the same drop-on-slow semantics as Hub, but for
// producers (the telemetry collector) that already own a deterministic
// encoding and should not be re-marshaled. Publish copies the payload, so
// producers may reuse their buffers.
type RawHub struct {
	mu   sync.Mutex
	last []byte
	subs map[chan []byte]struct{}
}

// NewRawHub returns an empty hub.
func NewRawHub() *RawHub {
	return &RawHub{subs: make(map[chan []byte]struct{})}
}

// Publish stores a copy of buf as the latest payload and broadcasts it.
// Slow subscribers have payloads dropped, never block the producer.
func (h *RawHub) Publish(buf []byte) {
	cp := append([]byte(nil), buf...)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.last = cp
	for ch := range h.subs {
		select {
		case ch <- cp:
		default: // slow subscriber: drop, the next payload supersedes
		}
	}
}

// Latest returns the most recent payload, nil when nothing was published.
func (h *RawHub) Latest() []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last
}

// Subscribe registers a subscriber (pre-seeded with the latest payload,
// if any); cancel unregisters it.
func (h *RawHub) Subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, 16)
	h.mu.Lock()
	if h.last != nil {
		ch <- h.last
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	cancel := func() {
		h.mu.Lock()
		delete(h.subs, ch)
		h.mu.Unlock()
	}
	return ch, cancel
}

// handleTelemetry serves the latest telemetry frame as JSON, or an SSE
// stream of frames (?stream=sse or Accept: text/event-stream) — the
// /telemetry sibling of /progress, fed by the sampling collector instead
// of the progress hub.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	serveRawHub(s.thub, w, r)
}

// handleSLO serves the latest per-source SLO evaluation as JSON (or an
// SSE stream of reports), fed by the loadtest engine as rate cells close.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	serveRawHub(s.shub, w, r)
}

// serveRawHub is the shared raw-payload endpoint: latest JSON payload,
// or an SSE stream with ?stream=sse / Accept: text/event-stream.
func serveRawHub(h *RawHub, w http.ResponseWriter, r *http.Request) {
	stream := r.URL.Query().Get("stream") == "sse" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if !stream {
		w.Header().Set("Content-Type", "application/json")
		if last := h.Latest(); last != nil {
			w.Write(last)
			w.Write([]byte("\n"))
			return
		}
		w.Write([]byte("{}\n"))
		return
	}

	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fl.Flush()

	events, cancel := h.Subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case buf := <-events:
			if _, err := fmt.Fprintf(w, "data: %s\n\n", buf); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
