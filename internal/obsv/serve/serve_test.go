package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obsv"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	reg := obsv.NewRegistry()
	reg.Counter("sim_flits_moved_total").Add(42)
	reg.Gauge("mcheck_states").Set(7)
	s := New(reg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return resp.StatusCode, sb.String()
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, body)
	}
	if doc["status"] != "ok" {
		t.Errorf("status field = %v", doc["status"])
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"# HELP sim_flits_moved_total",
		"# TYPE sim_flits_moved_total counter",
		"sim_flits_moved_total 42",
		"mcheck_states 7",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsEndpointNilRegistry(t *testing.T) {
	s := New(nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK || body != "" {
		t.Fatalf("nil-registry /metrics: status %d body %q", code, body)
	}
}

func TestProgressSnapshotJSON(t *testing.T) {
	s, ts := newTestServer(t)

	// Before any publish: an empty object, still valid JSON.
	_, body := get(t, ts.URL+"/progress")
	if strings.TrimSpace(body) != "{}" {
		t.Errorf("empty progress = %q", body)
	}

	s.Hub().Publish(Snapshot{Source: "search", Name: "gen4", Level: 3, States: 120})
	s.Hub().Publish(Snapshot{Source: "search", Name: "gen4", Level: 4, States: 250})
	_, body = get(t, ts.URL+"/progress")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("progress body: %v\n%s", err, body)
	}
	if snap.States != 250 || snap.Seq != 2 {
		t.Errorf("latest snapshot = %+v, want states 250 seq 2", snap)
	}
}

func TestProgressSSEStream(t *testing.T) {
	s, ts := newTestServer(t)
	s.Hub().Publish(Snapshot{Source: "search", States: 1}) // pre-seeded for late subscribers

	resp, err := http.Get(ts.URL + "/progress?stream=sse")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	go func() {
		// Give the handler a moment to subscribe, then publish two more.
		time.Sleep(50 * time.Millisecond)
		s.Hub().Publish(Snapshot{Source: "search", States: 2})
		s.Hub().Publish(Snapshot{Source: "search", States: 3, Done: true, Verdict: "no-deadlock"})
	}()

	var states []int
	sc := bufio.NewScanner(resp.Body)
	deadline := time.Now().Add(5 * time.Second)
	for sc.Scan() && time.Now().Before(deadline) {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var snap Snapshot
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
			t.Fatalf("bad SSE event %q: %v", line, err)
		}
		states = append(states, snap.States)
		if snap.Done {
			break
		}
	}
	if len(states) < 3 || states[0] != 1 || states[len(states)-1] != 3 {
		t.Errorf("streamed states = %v, want [1 2 3]", states)
	}
}

func TestHubDropsSlowSubscribers(t *testing.T) {
	h := NewHub()
	ch, cancel := h.Subscribe()
	defer cancel()
	// Publish far more than the subscriber buffer without draining: must
	// not block, and the channel must still deliver up to its capacity.
	for i := 0; i < 100; i++ {
		h.Publish(Snapshot{States: i})
	}
	if got := len(ch); got == 0 || got > 16 {
		t.Errorf("buffered events = %d, want 1..16", got)
	}
}

func TestStartBindsEphemeralPort(t *testing.T) {
	s := New(nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, _ := get(t, "http://"+addr+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz over real listener: status %d", code)
	}
	// pprof index must answer too (the handlers are wired, not inherited
	// from DefaultServeMux).
	code, body := get(t, "http://"+addr+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Fatalf("pprof index: status %d", code)
	}
}
