package obsv

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/topology"
)

// appendJSON appends the event as a single JSON object with a fixed key
// order (k, cycle, msg, ch, owner, n, m, note), omitting inactive fields.
// Hand-rolled so the bytes are deterministic: no map iteration, no
// reflection, no float formatting.
func (e Event) appendJSON(b []byte) []byte {
	b = append(b, `{"k":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","cycle":`...)
	b = strconv.AppendInt(b, int64(e.Cycle), 10)
	if e.Msg >= 0 {
		b = append(b, `,"msg":`...)
		b = strconv.AppendInt(b, int64(e.Msg), 10)
	}
	if e.Ch != topology.None {
		b = append(b, `,"ch":`...)
		b = strconv.AppendInt(b, int64(e.Ch), 10)
	}
	if e.Owner >= 0 {
		b = append(b, `,"owner":`...)
		b = strconv.AppendInt(b, int64(e.Owner), 10)
	}
	if e.N != 0 {
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, int64(e.N), 10)
	}
	if e.M != 0 {
		b = append(b, `,"m":`...)
		b = strconv.AppendInt(b, int64(e.M), 10)
	}
	if e.Note != "" {
		b = append(b, `,"note":`...)
		b = strconv.AppendQuote(b, e.Note)
	}
	b = append(b, '}')
	return b
}

// AppendJSON appends the event's deterministic JSONL encoding — the
// format JSONLSink writes — for sinks outside this package (the flight
// recorder) that serialize retained events themselves.
func (e Event) AppendJSON(b []byte) []byte { return e.appendJSON(b) }

// JSONLSink writes one JSON object per event, newline-separated. The
// output is byte-deterministic for a deterministic event sequence, so a
// JSONL trace of a fixed scenario is a diffable regression artifact.
type JSONLSink struct {
	w   *bufio.Writer
	buf []byte
}

// NewJSONL returns a JSONL sink writing to w. Call Close to flush.
func NewJSONL(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Event implements Tracer.
func (s *JSONLSink) Event(e Event) {
	s.buf = e.appendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	s.w.Write(s.buf)
}

// Close flushes buffered output.
func (s *JSONLSink) Close() error { return s.w.Flush() }

// dotEdge is one wait-for edge as tracked by the DOT sink.
type dotEdge struct {
	ch    topology.ChannelID
	owner int
}

// DOTSink renders the evolving wait-for graph as a sequence of Graphviz
// digraphs, one snapshot per cycle in which the graph changed (the same
// conventions as cdgtool's CDG output: red bold marks cycle members). The
// resulting stream makes Theorem 1's unreachability argument visible: on
// a false-resource-cycle network the CDG has a cycle, but no snapshot in
// the trace ever shows a closed wait-for cycle.
type DOTSink struct {
	w     *bufio.Writer
	name  string
	edges map[int]dotEdge
	seen  map[int]bool // every message that ever appeared
	last  int          // cycle of the pending snapshot
	dirty bool
	note  string // extra snapshot annotation (e.g. "deadlock")
}

// NewDOT returns a DOT sink writing snapshots named after name.
func NewDOT(w io.Writer, name string) *DOTSink {
	return &DOTSink{
		w:     bufio.NewWriter(w),
		name:  name,
		edges: make(map[int]dotEdge),
		seen:  make(map[int]bool),
	}
}

// Event implements Tracer.
func (s *DOTSink) Event(e Event) {
	if e.Cycle != s.last && s.dirty {
		s.flush()
	}
	s.last = e.Cycle
	switch e.Kind {
	case KindWaitEdgeAdd:
		s.edges[e.Msg] = dotEdge{ch: e.Ch, owner: e.Owner}
		s.seen[e.Msg] = true
		s.seen[e.Owner] = true
		s.dirty = true
	case KindWaitEdgeDel:
		delete(s.edges, e.Msg)
		s.dirty = true
	case KindDeadlock:
		s.note = "deadlock"
		s.dirty = true
	case KindOutcome:
		s.note = e.Note
		s.dirty = true
	}
}

// cycleMembers returns the messages on a closed wait-for cycle. The
// wait-for relation is functional (one outgoing edge per blocked message),
// so a pointer chase from every node suffices.
func (s *DOTSink) cycleMembers() map[int]bool {
	members := make(map[int]bool)
	for start := range s.edges {
		slow, ok := start, true
		visited := make(map[int]bool)
		for ok && !visited[slow] {
			visited[slow] = true
			var e dotEdge
			e, ok = s.edges[slow]
			if ok {
				slow = e.owner
			}
		}
		if ok && visited[slow] {
			// slow is on a cycle: walk it once to collect members.
			for c := slow; ; {
				members[c] = true
				c = s.edges[c].owner
				if c == slow {
					break
				}
			}
		}
	}
	return members
}

// flush writes the pending snapshot as one digraph.
func (s *DOTSink) flush() {
	title := fmt.Sprintf("%s wait-for @%d", s.name, s.last)
	if s.note != "" {
		title += " [" + s.note + "]"
		s.note = ""
	}
	fmt.Fprintf(s.w, "digraph %q {\n", title)
	s.w.WriteString("  rankdir=LR;\n")
	inCycle := s.cycleMembers()
	ids := make([]int, 0, len(s.seen))
	for id := range s.seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		attrs := ""
		if inCycle[id] {
			attrs = " color=red style=bold"
		}
		fmt.Fprintf(s.w, "  m%d [label=\"m%d\"%s];\n", id, id, attrs)
	}
	for _, id := range ids {
		e, ok := s.edges[id]
		if !ok {
			continue
		}
		attrs := ""
		if inCycle[id] && inCycle[e.owner] {
			attrs = " color=red style=bold"
		}
		fmt.Fprintf(s.w, "  m%d -> m%d [label=\"c%d\"%s];\n", id, e.owner, e.ch, attrs)
	}
	s.w.WriteString("}\n")
	s.dirty = false
}

// Close flushes the final snapshot and buffered output.
func (s *DOTSink) Close() error {
	if s.dirty {
		s.flush()
	}
	return s.w.Flush()
}

// ChromeTraceSink emits Chrome trace_event JSON (the JSON-array format),
// loadable in Perfetto or chrome://tracing: one lane (thread) per channel,
// with a duration span for every channel occupancy (acquire to release,
// named after the owning message) and instant markers for faults and
// deadlock. Timestamps are simulation cycles interpreted as microseconds.
type ChromeTraceSink struct {
	w     *bufio.Writer
	first bool
}

// NewChromeTrace returns a Chrome-trace sink. lanes names the channel
// lanes in channel-ID order (one thread-name metadata record each); pass
// nil to fall back to bare channel IDs in the UI.
func NewChromeTrace(w io.Writer, lanes []string) *ChromeTraceSink {
	s := &ChromeTraceSink{w: bufio.NewWriter(w), first: true}
	s.w.WriteString("[\n")
	s.entry(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"wormhole network"}}`)
	for i, name := range lanes {
		s.entry(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, i, name))
	}
	return s
}

// entry writes one record with array-comma bookkeeping.
func (s *ChromeTraceSink) entry(rec string) {
	if !s.first {
		s.w.WriteString(",\n")
	}
	s.first = false
	s.w.WriteString(rec)
}

// Event implements Tracer.
func (s *ChromeTraceSink) Event(e Event) {
	switch e.Kind {
	case KindAcquire:
		s.entry(fmt.Sprintf(`{"name":"m%d","ph":"B","ts":%d,"pid":1,"tid":%d}`, e.Msg, e.Cycle, e.Ch))
	case KindRelease:
		// The end timestamp is the releasing cycle itself: under same-cycle
		// handoff the successor's acquire lands on the same ts, and the
		// lane must stay properly nested.
		s.entry(fmt.Sprintf(`{"name":"m%d","ph":"E","ts":%d,"pid":1,"tid":%d}`, e.Msg, e.Cycle, e.Ch))
	case KindFault:
		tid := 0
		if e.Ch != topology.None {
			tid = int(e.Ch)
		}
		s.entry(fmt.Sprintf(`{"name":"fault:%s","ph":"i","s":"p","ts":%d,"pid":1,"tid":%d}`, e.Note, e.Cycle, tid))
	case KindRecovery:
		s.entry(fmt.Sprintf(`{"name":"recovery:%s m%d","ph":"i","s":"p","ts":%d,"pid":1,"tid":0}`, e.Note, e.Msg, e.Cycle))
	case KindDeadlock:
		s.entry(fmt.Sprintf(`{"name":"deadlock","ph":"i","s":"g","ts":%d,"pid":1,"tid":0}`, e.Cycle))
	case KindOutcome:
		s.entry(fmt.Sprintf(`{"name":"outcome:%s","ph":"i","s":"g","ts":%d,"pid":1,"tid":0}`, e.Note, e.Cycle))
	}
}

// Close terminates the JSON array and flushes.
func (s *ChromeTraceSink) Close() error {
	s.w.WriteString("\n]\n")
	return s.w.Flush()
}
