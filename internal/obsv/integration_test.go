package obsv_test

// End-to-end tests of the observability layer against the real
// producers: the simulator, the exhaustive search, and the fault
// campaign runner.

import (
	"strings"
	"testing"

	"repro/internal/cdg"
	"repro/internal/fault"
	"repro/internal/mcheck"
	"repro/internal/obsv"
	"repro/internal/papernets"
	"repro/internal/topology"
)

// searchTrace runs the Theorem 1 search with a JSONL sink and the given
// worker count, returning the trace bytes.
func searchTrace(t *testing.T, workers int) string {
	t.Helper()
	var sb strings.Builder
	s := obsv.NewJSONL(&sb)
	res := mcheck.Search(papernets.Figure1().Scenario, mcheck.SearchOptions{
		Tracer:      s,
		Parallelism: workers,
	})
	if res.Verdict != mcheck.VerdictNoDeadlock {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestSearchTraceDeterminism is the trace side of the determinism
// contract: the JSONL trace of a fixed scenario is byte-identical across
// runs and across Parallelism settings, because search events are
// emitted only from the single-threaded level merge.
func TestSearchTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search in -short mode")
	}
	first := searchTrace(t, 1)
	if again := searchTrace(t, 1); again != first {
		t.Error("same-options traces differ between runs")
	}
	if par := searchTrace(t, 4); par != first {
		t.Error("Parallelism=4 trace differs from Parallelism=1 trace")
	}
	if !strings.Contains(first, `"k":"search-level"`) || !strings.Contains(first, `"k":"search-done"`) {
		t.Errorf("trace is missing search events:\n%.400s", first)
	}
	if !strings.Contains(first, `"note":"no-deadlock"`) {
		t.Errorf("search-done should carry the verdict:\n%.400s", first)
	}
}

// TestSimTraceDeterminism: the concrete simulation's event stream is a
// pure function of the scenario.
func TestSimTraceDeterminism(t *testing.T) {
	run := func() string {
		var sb strings.Builder
		sink := obsv.NewJSONL(&sb)
		s := papernets.Figure1().Scenario.NewSim()
		s.SetTracer(sink)
		s.Run(10_000)
		sink.Close()
		return sb.String()
	}
	if run() != run() {
		t.Error("sim traces of the same scenario differ")
	}
}

// TestFigure1TraceShowsTheorem1 drives the paper's central argument out
// of a trace: the Figure 1 network's CDG has a (14-channel) cycle, yet
// the wait-for graph of the actual run — snapshotted by the DOT sink at
// every change — never closes a cycle, and the run delivers.
func TestFigure1TraceShowsTheorem1(t *testing.T) {
	pn := papernets.Figure1()

	cycles, _ := cdg.New(pn.Alg).Cycles(0)
	if len(cycles) != 1 || len(cycles[0]) != 14 {
		t.Fatalf("CDG cycles = %d", len(cycles))
	}

	var sb strings.Builder
	sink := obsv.NewDOT(&sb, pn.Scenario.Name)
	s := pn.Scenario.NewSim()
	s.SetTracer(sink)
	out := s.Run(10_000)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()

	if out.Result.String() != "delivered" {
		t.Fatalf("outcome = %v", out.Result)
	}
	if !strings.Contains(dot, "->") {
		t.Fatalf("no wait-for edges ever formed — the adversarial message set should contend:\n%s", dot)
	}
	if strings.Contains(dot, "color=red") {
		t.Errorf("a wait-for cycle closed on Figure 1 — Theorem 1 violated:\n%s", dot)
	}
	if !strings.Contains(dot, "[delivered]") {
		t.Errorf("final snapshot should carry the outcome:\n%s", dot)
	}
}

// TestSimEventStreamInvariants checks the recorded event sequence of a
// delivered run for internal consistency.
func TestSimEventStreamInvariants(t *testing.T) {
	pn := papernets.Figure1()
	rec := &obsv.Recorder{}
	s := pn.Scenario.NewSim()
	s.SetTracer(rec)
	s.Run(10_000)

	msgs := len(pn.Scenario.Msgs)
	if got := rec.Count(obsv.KindInject); got != msgs {
		t.Errorf("injects = %d, want %d", got, msgs)
	}
	if got := rec.Count(obsv.KindDeliver); got != msgs {
		t.Errorf("delivers = %d, want %d", got, msgs)
	}
	if a, r := rec.Count(obsv.KindAcquire), rec.Count(obsv.KindRelease); a != r {
		t.Errorf("acquires (%d) != releases (%d) on a fully delivered run", a, r)
	}
	if b, u := rec.Count(obsv.KindBlock), rec.Count(obsv.KindUnblock); b != u {
		t.Errorf("blocks (%d) != unblocks (%d) on a fully delivered run", b, u)
	}
	if add, del := rec.Count(obsv.KindWaitEdgeAdd), rec.Count(obsv.KindWaitEdgeDel); add != del {
		t.Errorf("wait-adds (%d) != wait-dels (%d) on a fully delivered run", add, del)
	}
	if rec.Count(obsv.KindBlock) == 0 {
		t.Error("the Figure 1 message set should block at least once")
	}

	// Per-channel acquire/release alternation.
	held := map[topology.ChannelID]int{}
	for _, e := range rec.Events {
		switch e.Kind {
		case obsv.KindAcquire:
			if owner, ok := held[e.Ch]; ok {
				t.Fatalf("c%d acquired by m%d while held by m%d", e.Ch, e.Msg, owner)
			}
			held[e.Ch] = e.Msg
		case obsv.KindRelease:
			if owner, ok := held[e.Ch]; !ok || owner != e.Msg {
				t.Fatalf("c%d released by m%d but held by %v", e.Ch, e.Msg, held[e.Ch])
			}
			delete(held, e.Ch)
		}
	}
	if len(held) != 0 {
		t.Errorf("channels still held after delivery: %v", held)
	}

	// The stream ends with the outcome, and latency events are sane.
	last := rec.Events[len(rec.Events)-1]
	if last.Kind != obsv.KindOutcome || last.Note != "delivered" {
		t.Errorf("last event = %+v, want outcome/delivered", last)
	}
	for _, e := range rec.Events {
		if e.Kind == obsv.KindDeliver && e.N <= 0 {
			t.Errorf("deliver of m%d carries latency %d", e.Msg, e.N)
		}
	}
}

// TestDeadlockEmitsCertificate: a run into a true deadlock (Figure 2's
// two-sharer configuration) traces a deadlock event before the outcome.
func TestDeadlockEmitsCertificate(t *testing.T) {
	rec := &obsv.Recorder{}
	s := papernets.Figure2().Scenario.NewSim()
	s.SetTracer(rec)
	s.Run(10_000)
	if rec.Count(obsv.KindDeadlock) != 1 {
		t.Fatalf("deadlock events = %d, want 1", rec.Count(obsv.KindDeadlock))
	}
	last := rec.Events[len(rec.Events)-1]
	if last.Kind != obsv.KindOutcome || last.Note != "deadlock" {
		t.Errorf("last event = %+v, want outcome/deadlock", last)
	}
}

// TestFreezeExpiryWarning: satellite check that a MessageFreeze expiring
// mid-flight surfaces as a structured warning on the campaign report and
// as a warning event on the trace.
func TestFreezeExpiryWarning(t *testing.T) {
	rec := &obsv.Recorder{}
	s := papernets.Figure1().Scenario.NewSim()
	s.SetTracer(rec)
	r := fault.Runner{
		Sim: s,
		Schedule: fault.Schedule{Events: []fault.Event{
			{At: 1, Kind: fault.MessageFreeze, Message: 0, Repair: 3},
		}},
		Recovery: fault.DefaultRecovery(fault.AbortRetry),
		Tracer:   rec,
	}
	rep := r.Run(10_000)
	if rep.Outcome.Result.String() != "delivered" {
		t.Fatalf("outcome = %v", rep.Outcome.Result)
	}
	found := false
	for _, w := range rep.Warnings {
		if w.Msg == 0 && strings.Contains(w.Text, "freeze expired") {
			found = true
		}
	}
	if !found {
		t.Errorf("no freeze-expiry warning in report: %v", rep.Warnings)
	}
	if rec.Count(obsv.KindWarning) != len(rep.Warnings) {
		t.Errorf("trace has %d warning events, report has %d warnings",
			rec.Count(obsv.KindWarning), len(rep.Warnings))
	}
	if rec.Count(obsv.KindFault) != 1 {
		t.Errorf("fault events = %d, want 1", rec.Count(obsv.KindFault))
	}
	if rec.Count(obsv.KindThaw) != 1 {
		t.Errorf("thaw events = %d, want 1", rec.Count(obsv.KindThaw))
	}
}
