//go:build linux || darwin

package manifest

import (
	"runtime"
	"syscall"
	"time"
)

// cpuTime returns the process's cumulative user+system CPU time.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return tvDuration(ru.Utime) + tvDuration(ru.Stime)
}

// peakRSSBytes returns the process's peak resident set size in bytes.
// getrusage reports Maxrss in kilobytes on Linux and bytes on Darwin.
func peakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	if runtime.GOOS == "darwin" {
		return int64(ru.Maxrss)
	}
	return int64(ru.Maxrss) * 1024
}

func tvDuration(tv syscall.Timeval) time.Duration {
	return time.Duration(tv.Sec)*time.Second + time.Duration(tv.Usec)*time.Microsecond
}
