package manifest

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// Profiler owns the pprof files behind the -profile flag: a CPU profile
// running from StartProfiles to Stop, and a heap profile snapshotted at
// Stop. With the flag unset no Profiler exists, so profiling costs
// nothing when off.
type Profiler struct {
	dir     string
	cpuFile *os.File
	cpuPath string
}

// StartProfiles creates dir, opens cpu.pprof there, and starts the CPU
// profile.
func StartProfiles(dir string) (*Profiler, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	p := &Profiler{dir: dir, cpuPath: filepath.Join(dir, "cpu.pprof")}
	f, err := os.Create(p.cpuPath)
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profile: %w", err)
	}
	p.cpuFile = f
	return p, nil
}

// Stop ends the CPU profile and writes heap.pprof (after a GC, so the
// heap profile reflects live objects). It returns the two file paths.
func (p *Profiler) Stop() (cpu, heap string, err error) {
	pprof.StopCPUProfile()
	if cerr := p.cpuFile.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("profile: %w", cerr)
	}
	heapPath := filepath.Join(p.dir, "heap.pprof")
	f, ferr := os.Create(heapPath)
	if ferr != nil {
		return p.cpuPath, "", fmt.Errorf("profile: %w", ferr)
	}
	defer f.Close()
	runtime.GC()
	if werr := pprof.WriteHeapProfile(f); werr != nil {
		return p.cpuPath, "", fmt.Errorf("profile: %w", werr)
	}
	return p.cpuPath, heapPath, err
}
