// Package manifest turns every invocation of a cmd/ binary into an
// evidence artifact: a run-manifest JSON recording what was run (command,
// flags, scenario, topology hash), what came out (verdicts, state counts,
// reduction ratios, throughput), and what it cost (wall and CPU time,
// peak RSS, optional CPU/heap profiles). A checker run that cannot be
// inspected, attributed and compared is half a result — the manifest is
// the attribution half, and cmd/benchdiff consumes directories of
// manifests as a perf time series.
//
// Determinism: the JSON is emitted with a fixed field order (Go struct
// marshaling) and no map-ordered content, so two manifests of the same
// run differ only where the runs actually differed (timings, RSS). The
// manifest is written by Builder.Write at process end; with the -manifest
// flag unset no Builder exists and nothing here runs.
package manifest

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obsv/telemetry"
	"repro/internal/topology"
)

// Run is one unit of observed work inside an invocation: a search, a
// simulation, a sweep cell, or a benchmark row. Fields that do not apply
// stay at their zero value and are omitted from the JSON.
type Run struct {
	// Name identifies the run within the invocation (scenario name,
	// experiment ID, benchmark name, sweep cell).
	Name string `json:"name"`
	// Scenario is the scenario name when the run executed one.
	Scenario string `json:"scenario,omitempty"`
	// TopologyHash fingerprints the network the run executed on; two runs
	// with equal hashes ran on structurally identical networks.
	TopologyHash string `json:"topology_hash,omitempty"`
	// Verdict is the search verdict or simulation result.
	Verdict string `json:"verdict,omitempty"`
	// States / StatesPerSec / PeakVisited / Workers mirror
	// mcheck.SearchResult.
	States       int   `json:"states,omitempty"`
	StatesPerSec int64 `json:"states_per_sec,omitempty"`
	PeakVisited  int   `json:"peak_visited,omitempty"`
	Workers      int   `json:"workers,omitempty"`
	// Reduction stats: the mode that ran, candidates pruned, and the
	// pruned fraction of the candidate pool (pruned / (states + pruned)).
	Reduction      string  `json:"reduction,omitempty"`
	StatesPruned   int     `json:"states_pruned,omitempty"`
	ReductionRatio float64 `json:"reduction_ratio,omitempty"`
	// Visited-set backend accounting (exhaustive searches). VisitedBackend
	// is recorded only for non-default backends; the byte figures mirror
	// mcheck.VisitedStats.
	VisitedBackend string  `json:"visited_backend,omitempty"`
	VisitedBytes   int64   `json:"visited_bytes,omitempty"`
	SpillBytes     int64   `json:"spill_bytes,omitempty"`
	SpillRuns      int     `json:"spill_runs,omitempty"`
	BloomFPRate    float64 `json:"bloom_fp_rate,omitempty"`
	// Benchmark columns (cmd/benchjson rows).
	NsPerOp     int64 `json:"ns_per_op,omitempty"`
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
	// ElapsedMS is the run's own wall time, when measured.
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
	// Warnings surfaced by the run (e.g. a panicking progress callback).
	Warnings []string `json:"warnings,omitempty"`
	// Telemetry summarizes the run's sampling telemetry when a collector
	// was attached (-telemetry / -flight-recorder): stride, frame and
	// sample counts, mean/peak channel utilization, the hottest channel,
	// and latency sketch quantiles.
	Telemetry *telemetry.Summary `json:"telemetry,omitempty"`
	// SLO is the per-source latency-SLO evaluation for the run, present
	// when the command ran with an -slo spec.
	SLO *telemetry.SLOReport `json:"slo,omitempty"`
}

// Profiles records where the -profile flag wrote pprof data.
type Profiles struct {
	CPU  string `json:"cpu,omitempty"`
	Heap string `json:"heap,omitempty"`
}

// Manifest is the on-disk document.
type Manifest struct {
	// Command is the binary's base name; Args its raw argument vector.
	Command string   `json:"command"`
	Args    []string `json:"args"`
	// Flags holds every flag explicitly set on the command line, in flag
	// name order.
	Flags map[string]string `json:"flags,omitempty"`
	// Start is the invocation's wall-clock start, RFC 3339.
	Start     string `json:"start"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	// Runs lists the invocation's observed work, in execution order.
	Runs []Run `json:"runs"`

	// Resource accounting for the whole invocation.
	WallTimeMS   int64 `json:"wall_time_ms"`
	CPUTimeMS    int64 `json:"cpu_time_ms"`
	PeakRSSBytes int64 `json:"peak_rss_bytes"`

	Profiles *Profiles `json:"profiles,omitempty"`
}

// Builder accumulates a Manifest over an invocation and writes it once at
// the end. Safe for concurrent AddRun.
type Builder struct {
	mu    sync.Mutex
	m     Manifest
	path  string
	start time.Time
}

// NewBuilder starts a manifest for the named command. path is where Write
// will put the JSON.
func NewBuilder(path, command string, args []string) *Builder {
	now := time.Now()
	return &Builder{
		path:  path,
		start: now,
		m: Manifest{
			Command:   command,
			Args:      args,
			Start:     now.UTC().Format(time.RFC3339),
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
		},
	}
}

// CaptureFlags records every flag explicitly set on fs (call after
// fs.Parse). Defaulted flags are left out: the manifest records the
// operator's intent, and the binary's defaults are versioned with it.
func (b *Builder) CaptureFlags(fs *flag.FlagSet) {
	flags := make(map[string]string)
	fs.Visit(func(f *flag.Flag) { flags[f.Name] = f.Value.String() })
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m.Flags = flags
}

// AddRun appends one observed run.
func (b *Builder) AddRun(r Run) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m.Runs = append(b.m.Runs, r)
}

// SetProfiles records the pprof output paths.
func (b *Builder) SetProfiles(cpu, heap string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m.Profiles = &Profiles{CPU: cpu, Heap: heap}
}

// Write stamps the invocation's wall/CPU/RSS totals and writes the
// manifest JSON (fixed field order, trailing newline) to the builder's
// path, creating parent directories as needed.
func (b *Builder) Write() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m.WallTimeMS = time.Since(b.start).Milliseconds()
	b.m.CPUTimeMS = cpuTime().Milliseconds()
	b.m.PeakRSSBytes = peakRSSBytes()
	blob, err := json.MarshalIndent(&b.m, "", "  ")
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	blob = append(blob, '\n')
	if dir := filepath.Dir(b.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
	}
	if err := os.WriteFile(b.path, blob, 0o644); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return nil
}

// Path returns where Write puts the manifest.
func (b *Builder) Path() string { return b.path }

// Load reads one manifest back.
func Load(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("manifest: %s: %w", path, err)
	}
	return &m, nil
}

// LoadDir reads every *.json manifest in a directory, sorted by file
// name, skipping files that do not parse as manifests (a mixed artifact
// directory is fine).
func LoadDir(dir string) ([]*Manifest, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []*Manifest
	for _, n := range names {
		m, err := Load(filepath.Join(dir, n))
		if err != nil || m.Command == "" {
			continue // not a manifest; skip
		}
		out = append(out, m)
	}
	return out, nil
}

// ReductionRatio computes the pruned fraction of the successor-candidate
// pool: pruned / (states + pruned). 0 when nothing was pruned.
func ReductionRatio(states, pruned int) float64 {
	if pruned <= 0 || states+pruned <= 0 {
		return 0
	}
	return float64(pruned) / float64(states+pruned)
}

// TopologyHash fingerprints a network's structure: node count, channel
// count, and every channel's (src, dst) endpoint pair in channel-ID
// order, SHA-256-hashed and truncated to 16 hex digits. Structurally
// identical networks hash identically regardless of how they were built.
func TopologyHash(net *topology.Network) string {
	if net == nil {
		return ""
	}
	h := sha256.New()
	var buf [8]byte
	put := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(net.NumNodes())
	put(net.NumChannels())
	for c := 0; c < net.NumChannels(); c++ {
		ch := net.Channel(topology.ChannelID(c))
		put(int(ch.Src))
		put(int(ch.Dst))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
