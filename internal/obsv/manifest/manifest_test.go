package manifest

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestBuilderWriteRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out", "run.json")
	b := NewBuilder(path, "deadlock", []string{"-paper", "figure1", "-verify"})

	fs := flag.NewFlagSet("deadlock", flag.ContinueOnError)
	fs.String("paper", "", "")
	fs.Bool("verify", false, "")
	fs.Int("stall", 3, "") // left at default: must not appear in Flags
	if err := fs.Parse([]string{"-paper", "figure1", "-verify"}); err != nil {
		t.Fatal(err)
	}
	b.CaptureFlags(fs)

	b.AddRun(Run{
		Name:         "figure1",
		Scenario:     "figure1",
		TopologyHash: "0123456789abcdef",
		Verdict:      "deadlock",
		States:       2996,
		StatesPerSec: 1_000_000,
		Workers:      4,
	})
	b.SetProfiles("prof/cpu.pprof", "prof/heap.pprof")
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}

	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Command != "deadlock" || len(m.Args) != 3 {
		t.Errorf("command/args = %q %v", m.Command, m.Args)
	}
	if m.Flags["paper"] != "figure1" || m.Flags["verify"] != "true" {
		t.Errorf("flags = %v", m.Flags)
	}
	if _, ok := m.Flags["stall"]; ok {
		t.Errorf("defaulted flag recorded: %v", m.Flags)
	}
	if len(m.Runs) != 1 || m.Runs[0].Verdict != "deadlock" || m.Runs[0].States != 2996 {
		t.Errorf("runs = %+v", m.Runs)
	}
	if m.Profiles == nil || m.Profiles.CPU != "prof/cpu.pprof" {
		t.Errorf("profiles = %+v", m.Profiles)
	}
	if m.WallTimeMS < 0 || m.GoVersion == "" {
		t.Errorf("resource stamps: wall %d, go %q", m.WallTimeMS, m.GoVersion)
	}
}

func TestWriteOmitsEmptyRunFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	b := NewBuilder(path, "benchjson", nil)
	b.AddRun(Run{Name: "EncodeTo", NsPerOp: 120, AllocsPerOp: 0})
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"verdict", "topology_hash", "reduction", "warnings"} {
		if strings.Contains(string(raw), `"`+absent+`"`) {
			t.Errorf("empty field %q serialized:\n%s", absent, raw)
		}
	}
	if !strings.Contains(string(raw), `"ns_per_op": 120`) {
		t.Errorf("ns_per_op missing:\n%s", raw)
	}
}

func TestLoadDirSkipsNonManifests(t *testing.T) {
	dir := t.TempDir()
	for i, name := range []string{"b.json", "a.json"} {
		b := NewBuilder(filepath.Join(dir, name), "repro", nil)
		b.AddRun(Run{Name: "E1", States: 100 * (i + 1)})
		if err := b.Write(); err != nil {
			t.Fatal(err)
		}
	}
	// Distractors: a non-manifest JSON and a non-JSON file.
	if err := os.WriteFile(filepath.Join(dir, "bench.json"), []byte(`{"rows":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	ms, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("loaded %d manifests, want 2", len(ms))
	}
	// Sorted by file name: a.json (written second, states 200) first.
	if ms[0].Runs[0].States != 200 || ms[1].Runs[0].States != 100 {
		t.Errorf("order = %d, %d", ms[0].Runs[0].States, ms[1].Runs[0].States)
	}
}

func TestTopologyHash(t *testing.T) {
	ring := func(n int) *topology.Network {
		net := topology.New("ring")
		net.AddNodes(n)
		for i := 0; i < n; i++ {
			net.AddChannel(topology.NodeID(i), topology.NodeID((i+1)%n), 1, "")
		}
		return net
	}
	h4a, h4b, h5 := TopologyHash(ring(4)), TopologyHash(ring(4)), TopologyHash(ring(5))
	if h4a != h4b {
		t.Errorf("identical topologies hash differently: %s vs %s", h4a, h4b)
	}
	if h4a == h5 {
		t.Errorf("distinct topologies collide: %s", h4a)
	}
	if len(h4a) != 16 {
		t.Errorf("hash length = %d, want 16", len(h4a))
	}
	if TopologyHash(nil) != "" {
		t.Error("nil network must hash to empty string")
	}
}

func TestReductionRatio(t *testing.T) {
	if got := ReductionRatio(818, 0); got != 0 {
		t.Errorf("no pruning ratio = %v", got)
	}
	if got := ReductionRatio(75, 25); got != 0.25 {
		t.Errorf("ratio = %v, want 0.25", got)
	}
}

func TestProfilerWritesBothProfiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "prof")
	p, err := StartProfiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i % 7
	}
	_ = x
	cpu, heap, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, heap} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestManifestJSONFieldOrderStable(t *testing.T) {
	// Two writes of the same builder content must produce the same field
	// sequence (struct order), so manifests diff cleanly across runs.
	path := filepath.Join(t.TempDir(), "m.json")
	b := NewBuilder(path, "x", nil)
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		t.Fatal(err)
	}
	idx := strings.Index
	if !(idx(string(raw), `"command"`) < idx(string(raw), `"start"`) &&
		idx(string(raw), `"start"`) < idx(string(raw), `"wall_time_ms"`)) {
		t.Errorf("field order unstable:\n%s", raw)
	}
}
