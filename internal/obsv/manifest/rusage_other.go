//go:build !linux && !darwin

package manifest

import "time"

// cpuTime is unavailable without getrusage; the manifest records 0.
func cpuTime() time.Duration { return 0 }

// peakRSSBytes is unavailable without getrusage; the manifest records 0.
func peakRSSBytes() int64 { return 0 }
