package obsv

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total")
	c.Inc()
	c.Add(4)
	if r.Counter("hits_total") != c {
		t.Error("Counter should return the same series on re-lookup")
	}
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}

	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	g.Max(3) // below current: no-op
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	g.Max(11)
	if g.Value() != 11 {
		t.Errorf("gauge after Max = %d, want 11", g.Value())
	}

	h := r.Histogram("lat", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106.5 {
		t.Errorf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestLabel(t *testing.T) {
	if got := Label("held_total", "channel", 3); got != `held_total{channel="3"}` {
		t.Errorf("Label = %s", got)
	}
	if got := baseName(`held_total{channel="3"}`); got != "held_total" {
		t.Errorf("baseName = %s", got)
	}
	if got := baseName("plain"); got != "plain" {
		t.Errorf("baseName = %s", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter(Label("a_by_kind_total", "kind", "fail")).Inc()
	r.Counter(Label("a_by_kind_total", "kind", "stall")).Add(3)
	r.Gauge("level").Set(9)
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE a_by_kind_total counter
a_by_kind_total{kind="fail"} 1
a_by_kind_total{kind="stall"} 3
# TYPE b_total counter
b_total 2
# TYPE lat histogram
lat_bucket{le="1"} 1
lat_bucket{le="10"} 2
lat_bucket{le="+Inf"} 3
lat_sum 55.5
lat_count 3
# TYPE level gauge
level 9
`
	if sb.String() != want {
		t.Errorf("Prometheus output:\n%s\nwant:\n%s", sb.String(), want)
	}

	// One TYPE header per base name even with multiple label variants.
	if strings.Count(sb.String(), "# TYPE a_by_kind_total") != 1 {
		t.Error("duplicate TYPE header for labeled series")
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total").Inc()
	r.Counter("a_total").Add(2)
	r.Gauge("g").Set(-4)
	r.Histogram("h", []float64{2}).Observe(1)

	var first, second strings.Builder
	if err := r.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("two snapshots of identical state differ")
	}
	want := `{
  "counters": {
    "a_total": 2,
    "z_total": 1
  },
  "gauges": {
    "g": -4
  },
  "histograms": {
    "h": {"count": 1, "sum": 1, "buckets": {"2": 1, "+Inf": 1}}
  }
}
`
	if first.String() != want {
		t.Errorf("JSON snapshot:\n%s\nwant:\n%s", first.String(), want)
	}
}

func TestMetricsSinkFoldsEvents(t *testing.T) {
	r := NewRegistry()
	s := NewMetricsSink(r)

	inject := Ev(KindInject, 0)
	inject.Msg = 0
	s.Event(inject)

	acq := Ev(KindAcquire, 0)
	acq.Msg = 0
	acq.Ch = topology.ChannelID(2)
	s.Event(acq)

	blk := Ev(KindBlock, 1)
	blk.Msg = 0
	blk.Ch = topology.ChannelID(3)
	blk.Owner = 1
	s.Event(blk)

	unb := Ev(KindUnblock, 4)
	unb.Msg = 0
	s.Event(unb)

	rel := Ev(KindRelease, 5)
	rel.Msg = 0
	rel.Ch = topology.ChannelID(2)
	s.Event(rel)

	del := Ev(KindDeliver, 6)
	del.Msg = 0
	del.N = 7
	s.Event(del)

	flt := Ev(KindFault, 2)
	flt.Note = "fail"
	s.Event(flt)

	if got := r.Counter("sim_messages_injected_total").Value(); got != 1 {
		t.Errorf("injected = %d", got)
	}
	if got := r.Counter("sim_cycles_blocked_total").Value(); got != 3 {
		t.Errorf("cycles blocked = %d, want 3 (cycle 1 to 4)", got)
	}
	if got := r.Histogram("sim_channel_occupancy_cycles", nil).Count(); got != 1 {
		t.Errorf("occupancy observations = %d", got)
	}
	if got := r.Histogram("sim_channel_occupancy_cycles", nil).Sum(); got != 6 {
		t.Errorf("occupancy sum = %v, want 6 (held cycles 0-5 inclusive)", got)
	}
	if got := r.Histogram("sim_message_latency_cycles", nil).Sum(); got != 7 {
		t.Errorf("latency sum = %v, want 7", got)
	}
	if got := r.Counter(Label("fault_injected_by_kind_total", "kind", "fail")).Value(); got != 1 {
		t.Errorf("fault by kind = %d", got)
	}
}
