package obsv

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total")
	c.Inc()
	c.Add(4)
	if r.Counter("hits_total") != c {
		t.Error("Counter should return the same series on re-lookup")
	}
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}

	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	g.Max(3) // below current: no-op
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	g.Max(11)
	if g.Value() != 11 {
		t.Errorf("gauge after Max = %d, want 11", g.Value())
	}

	h := r.Histogram("lat", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106.5 {
		t.Errorf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestLabel(t *testing.T) {
	if got := Label("held_total", "channel", 3); got != `held_total{channel="3"}` {
		t.Errorf("Label = %s", got)
	}
	if got := baseName(`held_total{channel="3"}`); got != "held_total" {
		t.Errorf("baseName = %s", got)
	}
	if got := baseName("plain"); got != "plain" {
		t.Errorf("baseName = %s", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter(Label("a_by_kind_total", "kind", "fail")).Inc()
	r.Counter(Label("a_by_kind_total", "kind", "stall")).Add(3)
	r.Gauge("level").Set(9)
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_by_kind_total a by kind total (counter).
# TYPE a_by_kind_total counter
a_by_kind_total{kind="fail"} 1
a_by_kind_total{kind="stall"} 3
# HELP b_total b total (counter).
# TYPE b_total counter
b_total 2
# HELP lat lat (histogram).
# TYPE lat histogram
lat_bucket{le="1"} 1
lat_bucket{le="10"} 2
lat_bucket{le="+Inf"} 3
lat_sum 55.5
lat_count 3
# HELP level level (gauge).
# TYPE level gauge
level 9
`
	if sb.String() != want {
		t.Errorf("Prometheus output:\n%s\nwant:\n%s", sb.String(), want)
	}

	// One HELP and one TYPE header per base name even with multiple label
	// variants.
	if strings.Count(sb.String(), "# TYPE a_by_kind_total") != 1 {
		t.Error("duplicate TYPE header for labeled series")
	}
	if strings.Count(sb.String(), "# HELP a_by_kind_total") != 1 {
		t.Error("duplicate HELP header for labeled series")
	}
}

// TestWritePrometheusLint is the golden exposition-format test for the
// promtool-style lint rules: every family carries HELP then TYPE, families
// are never interleaved (a plain series, a sibling family sorting between
// it and its label variants, and the label variants all stay grouped), and
// known families resolve their curated help text.
func TestWritePrometheusLint(t *testing.T) {
	r := NewRegistry()
	// "foo_sub_total" sorts between "foo_total" and `foo_total{...}` as raw
	// strings ('_' < '{'): grouping by base name must keep the foo_total
	// family contiguous anyway.
	r.Counter("foo_total").Inc()
	r.Counter(Label("foo_total", "kind", "x")).Add(2)
	r.Counter("foo_sub_total").Add(7)
	r.Counter("sim_messages_injected_total").Add(4)
	r.SetHelp("foo_total", `line with \ and
newline`)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP foo_sub_total foo sub total (counter).
# TYPE foo_sub_total counter
foo_sub_total 7
# HELP foo_total line with \\ and\nnewline
# TYPE foo_total counter
foo_total 1
foo_total{kind="x"} 2
# HELP sim_messages_injected_total Messages whose header flit entered the network.
# TYPE sim_messages_injected_total counter
sim_messages_injected_total 4
`
	if sb.String() != want {
		t.Errorf("Prometheus lint output:\n%s\nwant:\n%s", sb.String(), want)
	}

	// Structural lint pass over the full producer metric set: every family
	// has exactly one HELP immediately followed by one TYPE, and no family
	// reappears after another family started.
	full := NewRegistry()
	sink := NewMetricsSink(full)
	sink.PerChannel = true
	for _, e := range []Event{
		{Kind: KindInject, Msg: 0}, {Kind: KindFlit, Msg: 0, Ch: 1},
		{Kind: KindAcquire, Msg: 0, Ch: 1}, {Kind: KindRelease, Msg: 0, Ch: 1, Cycle: 3},
		{Kind: KindBlock, Msg: 0, Ch: 2, Owner: 1}, {Kind: KindUnblock, Msg: 0, Cycle: 5},
		{Kind: KindConsume, Msg: 0}, {Kind: KindDeliver, Msg: 0, N: 9},
		{Kind: KindFault, Note: "fail"}, {Kind: KindRecovery, Note: "drop"},
		{Kind: KindWarning, Note: "w"}, {Kind: KindDeadlock, N: 2},
		{Kind: KindSearchLevel, Cycle: 1, N: 4, M: 8}, {Kind: KindSearchDone, N: 8},
	} {
		sink.Event(e)
	}
	var full1 strings.Builder
	if err := full.WritePrometheus(&full1); err != nil {
		t.Fatal(err)
	}
	lintExposition(t, full1.String())
}

// lintExposition applies the promtool-style structural rules to an
// exposition.
func lintExposition(t *testing.T, text string) {
	t.Helper()
	seen := map[string]bool{}
	cur := ""
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for i, line := range lines {
		if strings.HasPrefix(line, "# HELP ") {
			base := strings.Fields(line)[2]
			if seen[base] {
				t.Errorf("line %d: family %s declared twice", i+1, base)
			}
			seen[base] = true
			cur = base
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE "+base+" ") {
				t.Errorf("line %d: HELP for %s not followed by its TYPE", i+1, base)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			base, kind := f[2], f[3]
			if base != cur {
				t.Errorf("line %d: TYPE %s without preceding HELP", i+1, base)
			}
			if kind == "counter" && !strings.HasSuffix(base, "_total") {
				t.Errorf("line %d: counter family %s lacks _total suffix", i+1, base)
			}
			continue
		}
		name := line
		if j := strings.IndexAny(line, "{ "); j >= 0 {
			name = line[:j]
		}
		if !strings.HasPrefix(name, cur) {
			t.Errorf("line %d: series %s outside its family block (%s)", i+1, name, cur)
		}
	}
}

func TestRegistryRejectsLintViolations(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("counter without _total", func() { NewRegistry().Counter("hits") })
	expectPanic("labeled counter without _total", func() { NewRegistry().Counter(Label("hits", "k", 1)) })
	expectPanic("cross-type re-registration", func() {
		r := NewRegistry()
		r.Gauge("x_total")
		r.Counter("x_total")
	})
	expectPanic("histogram over existing gauge", func() {
		r := NewRegistry()
		r.Gauge("lat")
		r.Histogram("lat", nil)
	})
}

func TestWriteJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total").Inc()
	r.Counter("a_total").Add(2)
	r.Gauge("g").Set(-4)
	r.Histogram("h", []float64{2}).Observe(1)

	var first, second strings.Builder
	if err := r.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("two snapshots of identical state differ")
	}
	want := `{
  "counters": {
    "a_total": 2,
    "z_total": 1
  },
  "gauges": {
    "g": -4
  },
  "histograms": {
    "h": {"count": 1, "sum": 1, "buckets": {"2": 1, "+Inf": 1}}
  }
}
`
	if first.String() != want {
		t.Errorf("JSON snapshot:\n%s\nwant:\n%s", first.String(), want)
	}
}

func TestMetricsSinkFoldsEvents(t *testing.T) {
	r := NewRegistry()
	s := NewMetricsSink(r)

	inject := Ev(KindInject, 0)
	inject.Msg = 0
	s.Event(inject)

	acq := Ev(KindAcquire, 0)
	acq.Msg = 0
	acq.Ch = topology.ChannelID(2)
	s.Event(acq)

	blk := Ev(KindBlock, 1)
	blk.Msg = 0
	blk.Ch = topology.ChannelID(3)
	blk.Owner = 1
	s.Event(blk)

	unb := Ev(KindUnblock, 4)
	unb.Msg = 0
	s.Event(unb)

	rel := Ev(KindRelease, 5)
	rel.Msg = 0
	rel.Ch = topology.ChannelID(2)
	s.Event(rel)

	del := Ev(KindDeliver, 6)
	del.Msg = 0
	del.N = 7
	s.Event(del)

	flt := Ev(KindFault, 2)
	flt.Note = "fail"
	s.Event(flt)

	if got := r.Counter("sim_messages_injected_total").Value(); got != 1 {
		t.Errorf("injected = %d", got)
	}
	if got := r.Counter("sim_cycles_blocked_total").Value(); got != 3 {
		t.Errorf("cycles blocked = %d, want 3 (cycle 1 to 4)", got)
	}
	if got := r.Histogram("sim_channel_occupancy_cycles", nil).Count(); got != 1 {
		t.Errorf("occupancy observations = %d", got)
	}
	if got := r.Histogram("sim_channel_occupancy_cycles", nil).Sum(); got != 6 {
		t.Errorf("occupancy sum = %v, want 6 (held cycles 0-5 inclusive)", got)
	}
	if got := r.Histogram("sim_message_latency_cycles", nil).Sum(); got != 7 {
		t.Errorf("latency sum = %v, want 7", got)
	}
	if got := r.Counter(Label("fault_injected_by_kind_total", "kind", "fail")).Value(); got != 1 {
		t.Errorf("fault by kind = %d", got)
	}
}
