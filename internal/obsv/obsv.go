// Package obsv is the observability layer of the repository: typed trace
// events, pluggable trace sinks, and a metrics registry, shared by the
// simulator (internal/sim), the search engines (internal/mcheck) and the
// fault campaign runner (internal/fault).
//
// The design goal is zero overhead when disabled: every producer keeps a
// Tracer field that is nil by default and guards each emission with a
// single nil check, so an untraced run pays one predictable branch per
// emission site and allocates nothing. When a Tracer is attached, the
// producers emit Events — flit movement, channel acquisition and release,
// message blocking, wait-for edges, deadlock and quiescence certificates,
// fault injections and recoveries, search levels — that sinks turn into
// deterministic JSONL, Graphviz DOT snapshots of the evolving wait-for
// graph, or Chrome trace_event JSON loadable in Perfetto.
//
// Determinism contract: an Event carries only logical quantities (cycles,
// message IDs, channel IDs, counts) — never wall-clock time — and every
// producer emits from deterministic single-threaded code (the simulator's
// step loop; the search engine's sequential merge). A trace of a fixed
// scenario is therefore byte-identical across runs and across worker
// counts, and doubles as a regression artifact: diffing two traces diffs
// the causal history of the runs. The inspectable wait-for/configuration
// traces follow the methodology of Verbeek & Schmaltz (deadlock detection
// verification) and Stramaglia et al. (deadlock in packet switching):
// a deadlock argument should be auditable from the trace, not just
// asserted by a verdict.
package obsv

import "repro/internal/topology"

// Kind classifies a trace event.
type Kind uint8

const (
	// KindInject: a message's header flit entered the network.
	KindInject Kind = iota
	// KindFlit: one flit advanced into channel Ch (including body-flit
	// injection at the source).
	KindFlit
	// KindConsume: one flit of message Msg was consumed at its destination.
	KindConsume
	// KindDeliver: message Msg's tail was consumed; N is its latency in
	// cycles (delivery - injection + 1).
	KindDeliver
	// KindAcquire: message Msg's header acquired channel Ch.
	KindAcquire
	// KindRelease: message Msg's tail released channel Ch.
	KindRelease
	// KindBlock: message Msg became blocked, waiting for channel Ch held
	// by message Owner (Definition 6's "waits for").
	KindBlock
	// KindUnblock: previously blocked message Msg is no longer waiting.
	KindUnblock
	// KindWaitEdgeAdd: wait-for edge Msg -> Owner over channel Ch appeared.
	KindWaitEdgeAdd
	// KindWaitEdgeDel: wait-for edge Msg -> Owner over channel Ch vanished.
	KindWaitEdgeDel
	// KindThaw: message Msg's Section 6 freeze counter expired.
	KindThaw
	// KindFault: a fault was injected. Note names the fault kind; Ch/Msg
	// identify the victim; N is the scheduled outage length (0 permanent).
	KindFault
	// KindRecovery: the watchdog intervened on message Msg; Note names the
	// action (abort-retry, drop, reroute).
	KindRecovery
	// KindWarning: a structured warning; Note holds the text.
	KindWarning
	// KindDeadlock: an exact deadlock certificate — the state is quiescent
	// with N undelivered messages.
	KindDeadlock
	// KindOutcome: a run ended; Note holds the sim result string.
	KindOutcome
	// KindSearchLevel: the state-space search starts BFS level Cycle with
	// a frontier of N states, having accepted M states so far.
	KindSearchLevel
	// KindSearchDone: the search finished with N states; Note holds the
	// verdict string.
	KindSearchDone
	// KindLocalDeadlock: an exact local-deadlock certificate — a permanent
	// Definition 6 cycle of N members while other traffic stays live.
	KindLocalDeadlock
	// KindLivelock: the watchdog classified an intervention as livelock —
	// message Msg keeps being reset and re-blocked without net progress.
	KindLivelock
	// KindStarvation: the watchdog classified an intervention as
	// starvation — message Msg has made no progress at all within the
	// timeout while the network stayed live.
	KindStarvation
)

// String returns the stable wire name of the kind, used by every sink.
func (k Kind) String() string {
	switch k {
	case KindInject:
		return "inject"
	case KindFlit:
		return "flit"
	case KindConsume:
		return "consume"
	case KindDeliver:
		return "deliver"
	case KindAcquire:
		return "acquire"
	case KindRelease:
		return "release"
	case KindBlock:
		return "block"
	case KindUnblock:
		return "unblock"
	case KindWaitEdgeAdd:
		return "wait-add"
	case KindWaitEdgeDel:
		return "wait-del"
	case KindThaw:
		return "thaw"
	case KindFault:
		return "fault"
	case KindRecovery:
		return "recovery"
	case KindWarning:
		return "warning"
	case KindDeadlock:
		return "deadlock"
	case KindOutcome:
		return "outcome"
	case KindSearchLevel:
		return "search-level"
	case KindSearchDone:
		return "search-done"
	case KindLocalDeadlock:
		return "local-deadlock"
	case KindLivelock:
		return "livelock"
	case KindStarvation:
		return "starvation"
	}
	return "unknown"
}

// Event is one typed trace record. Fields that do not apply to a kind use
// their inactive sentinels (Msg/Owner -1, Ch topology.None, N/M 0, Note
// empty); sinks omit inactive fields. Construct events with Ev and fill in
// the fields the kind needs, so unrelated fields keep their sentinels.
type Event struct {
	Kind  Kind
	Cycle int                // simulation cycle, or BFS level for search events
	Msg   int                // message ID, -1 when not message-related
	Ch    topology.ChannelID // channel, topology.None when not channel-related
	Owner int                // blocking channel's owner, -1 when not applicable
	N     int                // kind-specific count (flits, states, outage, latency)
	M     int                // second kind-specific count (accepted states)
	Note  string             // kind-specific text (verdicts, warnings, fault kinds)
}

// Ev returns an Event of the given kind at the given cycle with every
// optional field set to its inactive sentinel.
func Ev(k Kind, cycle int) Event {
	return Event{Kind: k, Cycle: cycle, Msg: -1, Ch: topology.None, Owner: -1}
}

// Tracer consumes trace events. Implementations are driven from a single
// goroutine per producer and need not be safe for concurrent use; fan a
// tracer out with Multi when several producers share it sequentially.
//
// The disabled state is a nil Tracer value — producers guard emissions
// with `if tracer != nil`, which is the entire cost of disabled tracing.
type Tracer interface {
	Event(Event)
}

// Multi fans events out to several tracers in order. Nil members are
// skipped, so optional sinks can be composed without special cases.
type Multi []Tracer

// Event implements Tracer.
func (m Multi) Event(e Event) {
	for _, t := range m {
		if t != nil {
			t.Event(e)
		}
	}
}

// Recorder is a Tracer that retains every event in memory; tests use it to
// assert on emitted sequences.
type Recorder struct {
	Events []Event
}

// Event implements Tracer.
func (r *Recorder) Event(e Event) { r.Events = append(r.Events, e) }

// Count returns how many recorded events have the given kind.
func (r *Recorder) Count(k Kind) int {
	n := 0
	for _, e := range r.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}
