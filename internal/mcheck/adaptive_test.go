package mcheck

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// twoBranch builds a diamond network and an adaptive message with two
// branch choices, plus an oblivious message camping on one branch.
func twoBranchScenario() (sim.Scenario, map[string]topology.ChannelID) {
	net := topology.New("diamond")
	a := net.AddNode("a")
	b := net.AddNode("b")
	c := net.AddNode("c")
	d := net.AddNode("d")
	ch := map[string]topology.ChannelID{
		"ab": net.AddChannel(a, b, 0, "ab"),
		"ac": net.AddChannel(a, c, 0, "ac"),
		"bd": net.AddChannel(b, d, 0, "bd"),
		"cd": net.AddChannel(c, d, 0, "cd"),
		"da": net.AddChannel(d, a, 0, "da"),
	}
	route := func(at topology.NodeID, _ topology.ChannelID, dst topology.NodeID) []topology.ChannelID {
		switch at {
		case a:
			return []topology.ChannelID{ch["ab"], ch["ac"]}
		case b:
			return []topology.ChannelID{ch["bd"]}
		case c:
			return []topology.ChannelID{ch["cd"]}
		}
		return nil
	}
	sc := sim.Scenario{
		Name: "diamond",
		Net:  net,
		Msgs: []sim.MessageSpec{
			{Src: a, Dst: d, Length: 2, Route: route},
			// A second message whose only path is the b branch.
			{Src: a, Dst: d, Length: 2, Path: []topology.ChannelID{ch["ab"], ch["bd"]}},
		},
	}
	return sc, ch
}

func TestSearchExploresAdaptiveSelection(t *testing.T) {
	// Neither interleaving deadlocks, but the search must consider both
	// branch choices of the adaptive message: with masks disabled it would
	// always take the lowest channel (ab) and never exercise ac.
	sc, _ := twoBranchScenario()
	res := Search(sc, SearchOptions{})
	if res.Verdict != VerdictNoDeadlock {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	// The trace-free way to confirm selection is explored: the state count
	// must exceed the mask-free single-choice run. A single-choice
	// exploration of this scenario visits fewer distinct states because
	// the ac branch is never materialized.
	if res.States < 20 {
		t.Fatalf("suspiciously few states: %d", res.States)
	}
}

func TestMaskEnumeration(t *testing.T) {
	sc, ch := twoBranchScenario()
	s := sc.NewSim()
	e := newDecisionEnum(s)
	e.probe.CopyFrom(s)
	// Before injection, the adaptive message has two acquirable first
	// hops: 2 mask assignments (each possibly crossed with several
	// arbitration picks downstream).
	seen := map[topology.ChannelID]bool{}
	e.maskLoop(func(d *Decision) bool {
		seen[d.Masks[0]] = true
		return true
	})
	if len(seen) != 2 {
		t.Fatalf("mask assignments = %d; want 2", len(seen))
	}
	if !seen[ch["ab"]] || !seen[ch["ac"]] {
		t.Fatalf("mask targets = %v", seen)
	}
}

func TestReplayWithMasks(t *testing.T) {
	sc, ch := twoBranchScenario()
	trace := []Decision{
		{Activate: []int{0}, Masks: map[int]topology.ChannelID{0: ch["ac"]}},
		{},
	}
	s := Replay(sc, trace)
	mv := s.Message(0)
	if len(mv.Path) == 0 || mv.Path[0] != ch["ac"] {
		t.Fatalf("masked replay took %v; want the ac branch", mv.Path)
	}
}
