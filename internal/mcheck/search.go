// Package mcheck decides deadlock reachability for finite wormhole-routing
// scenarios by exhaustive search.
//
// Two complementary engines are provided:
//
//   - Search: an exact breadth-first state-space exploration of the
//     simulator's transition system under full adversarial nondeterminism —
//     sources may delay injection arbitrarily (assumption 1), every
//     arbitration choice is enumerated (assumption 5), and an optional
//     stall budget lets the adversary freeze moving messages (Section 6's
//     relaxation of tight synchrony). For a fixed finite message set this
//     is a complete decision procedure: VerdictNoDeadlock means no
//     reachable state of the scenario contains a Definition 6 deadlock
//     configuration.
//
//   - Sweep: a bounded sweep over concrete injection-time tuples, message
//     lengths and arbitration policies. It is cheaper, produces
//     human-readable witnesses (an actual schedule), and regenerates the
//     paper's "inject M2 before M1..." style case analyses, but unlike
//     Search it is only exhaustive over its stated bounds.
//
// A deadlock verdict always carries a witness: the decision trace (Search)
// or schedule (Sweep) plus the Definition 6 cycle, and Replay re-executes
// traces so tests can validate witnesses independently.
//
// Search is parallel but exactly deterministic: frontier expansion — the
// expensive part, cloning and stepping the simulator once per decision —
// fans out across a worker pool level by level, while all bookkeeping that
// the verdict depends on (visited insertion, state counting, provenance,
// deadlock detection order) happens in a single-threaded merge that
// processes the level in the same order a sequential FIFO queue would.
// Verdicts, state counts and witness traces are therefore byte-identical
// across any worker count, including 1.
package mcheck

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/waitfor"
)

// Verdict classifies a search outcome.
type Verdict int

const (
	// VerdictNoDeadlock: the full reachable state space was explored and
	// no Definition 6 deadlock configuration exists.
	VerdictNoDeadlock Verdict = iota
	// VerdictDeadlock: a reachable deadlock was found; see the witness.
	VerdictDeadlock
	// VerdictExhausted: the state or run budget was exceeded before the
	// search completed; the result is inconclusive.
	VerdictExhausted
	// VerdictLocalDeadlock: a reachable state contains a permanent
	// Definition 6 cycle while traffic outside the blocked subnetwork can
	// still be delivered — a local deadlock in the sense of Stramaglia,
	// Keiren & Zantema. Reported only by SearchLiveness; the plain engine
	// folds these into VerdictDeadlock.
	VerdictLocalDeadlock
	// VerdictLivelock: SearchLiveness found a reachable cycle of states
	// along which some in-flight message never advances — a lasso; see
	// SearchResult.Lasso for the replayable witness.
	VerdictLivelock
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictNoDeadlock:
		return "no-deadlock"
	case VerdictDeadlock:
		return "deadlock"
	case VerdictExhausted:
		return "exhausted"
	case VerdictLocalDeadlock:
		return "local-deadlock"
	case VerdictLivelock:
		return "livelock"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Decision is one cycle's worth of adversarial choices in a Search trace.
type Decision struct {
	// Activate lists messages whose source begins injecting this cycle.
	Activate []int
	// Freeze lists in-flight messages stalled for this one cycle, each
	// consuming one unit of the stall budget.
	Freeze []int
	// Masks restricts adaptive messages to a single candidate channel for
	// this cycle (adaptive selection nondeterminism).
	Masks map[int]topology.ChannelID
	// Picks resolves each contested channel acquisition.
	Picks map[topology.ChannelID]int
}

// SearchOptions bounds a Search.
type SearchOptions struct {
	// StallBudget is the total number of message-cycles the adversary may
	// freeze otherwise-movable messages (0 = routers never stall, the
	// paper's Section 3 model; > 0 = Section 6's clock-skew model).
	StallBudget int
	// MaxStates caps the number of distinct states explored. 0 means
	// DefaultMaxStates.
	MaxStates int
	// FreezeInTransitOnly restricts adversarial stalls to messages whose
	// header has not yet reached its destination channel. This models the
	// paper's Section 6 clock-skew adversary, where routers may delay a
	// message in transit but destination processors consume arriving
	// flits promptly. Without it, stalls may also delay consumption
	// (legal under assumption 2's "eventually consumed", but outside the
	// paper's skew model).
	FreezeInTransitOnly bool
	// Parallelism is the number of frontier-expansion workers. 0 means
	// GOMAXPROCS. The result is identical for every value; only wall
	// time changes.
	Parallelism int
	// Visited configures the visited-set backend: the in-memory reference
	// (default), the Bloom-prefiltered bitstate mode, or the disk-spilling
	// out-of-core mode, plus compressed frontier batching. Every backend
	// is exact; verdicts, state counts and witnesses do not depend on it.
	Visited VisitedConfig
	// Reduction selects verdict-preserving state-space reductions
	// (partial-order and/or symmetry). The zero value explores the full
	// unreduced space, byte-identical to the engine without reductions;
	// with reductions enabled the verdict and the validity of any
	// deadlock witness are unchanged, but state counts, traces and
	// witness details may differ from the unreduced run. Reductions
	// whose soundness gating the scenario fails are silently cleared;
	// SearchResult.Reduction reports what actually ran.
	Reduction Reduction

	// Tracer, when set, receives one obsv.KindSearchLevel event per BFS
	// level and a final obsv.KindSearchDone. Events are emitted from the
	// single-threaded merge and carry only logical quantities (level,
	// frontier size, state count), so the traced sequence is identical
	// across Parallelism values. Nil disables search tracing at the cost
	// of one branch per level.
	Tracer obsv.Tracer
	// Progress, when set, is called periodically with live search
	// telemetry — unlike Tracer it carries wall-clock rates and is meant
	// for interactive feedback (stderr), not for deterministic artifacts.
	Progress func(ProgressInfo)
	// ProgressEvery throttles Progress calls to at most one per interval
	// (plus one per level boundary check). 0 means a 2s default.
	ProgressEvery time.Duration
	// Metrics, when set, receives live search gauges (level, frontier
	// size, peak frontier, states) and, at the end, the visited-set
	// shard-load histogram.
	Metrics *obsv.Registry
}

// ProgressInfo is one periodic search progress report.
type ProgressInfo struct {
	Level        int // BFS level (network cycle depth) being merged
	Frontier     int // states in the current level
	States       int // distinct states accepted so far
	Elapsed      time.Duration
	StatesPerSec float64

	// Visited-set memory accounting, from the live backend.
	VisitedEntries int     // distinct encodings recorded
	VisitedBytes   int64   // resident bytes (heap; excludes spilled runs)
	SpillBytes     int64   // bytes in on-disk run files (spill backend)
	BloomFPRate    float64 // measured false-positive rate (bitstate backend)
}

// DefaultMaxStates bounds state exploration when SearchOptions.MaxStates
// is zero.
const DefaultMaxStates = 2_000_000

// SearchResult reports the outcome of Search.
type SearchResult struct {
	Verdict Verdict
	// States is the number of distinct states visited.
	States int
	// Trace, for VerdictDeadlock, is the per-cycle decision sequence from
	// the empty network to the deadlocked state.
	Trace []Decision
	// Deadlock, for VerdictDeadlock, is the Definition 6 cycle in the
	// final state.
	Deadlock *waitfor.Deadlock
	// Local, for VerdictLocalDeadlock, is the blocked-subnetwork witness
	// (the cycle, the channels it kills, and the surviving traffic).
	Local *waitfor.LocalDeadlock
	// Lasso, for VerdictLivelock, is the replayable stem+loop witness.
	Lasso *Lasso

	// Elapsed is the wall time the search took.
	Elapsed time.Duration
	// StatesPerSec is States / Elapsed, the headline throughput figure.
	StatesPerSec float64
	// PeakVisited is the number of distinct state encodings retained by
	// the deduplication structure when the search ended (its memory high
	// water mark, one entry per encoding).
	PeakVisited int
	// Visited is the visited-set backend's final accounting snapshot:
	// which backend ran, resident bytes, per-shard high-water mark, and
	// the Bloom/spill counters where applicable.
	Visited VisitedStats
	// Workers is the worker count the search actually ran with.
	Workers int

	// Reduction is the reduction set that actually ran, after scenario
	// gating (RedNone when reductions were off or gated away).
	Reduction Reduction
	// StatesPruned counts successor candidates the reductions discarded
	// before or just after stepping: skipped activation subsets, freeze
	// subsets and arbitration combinations, plus post-step futile
	// activations. Zero when partial-order reduction is off.
	StatesPruned int
	// SleepSetHits counts expanded states whose sleep set was non-empty
	// (at least one held message provably unable to inject that cycle).
	SleepSetHits int
	// SymmetryGroup is 1 + the number of scenario symmetries the
	// canonical encoding quotients by (1 when symmetry reduction is off
	// or the scenario has no usable symmetry).
	SymmetryGroup int

	// Warnings lists non-fatal problems the search survived — today, a
	// Progress callback that panicked (the panic is contained and
	// reporting disabled; the verdict is unaffected).
	Warnings []string
}

// provNode is one slot of the flat provenance arena: which frontier state
// a state was expanded from, and the ordinal of the decision that produced
// it within the parent's canonical decision enumeration. Decisions are
// reconstructed from ordinals only when a witness is actually needed,
// which keeps the per-state provenance cost at 8 bytes.
type provNode struct {
	parent int32 // arena index of the parent, -1 for the root
	dec    int32 // decision ordinal within the parent's enumeration
}

// frontierEntry is one state of the current BFS level.
type frontierEntry struct {
	s      *sim.Sim
	budget int
	node   int32 // provenance arena index
}

// succState is a successor produced during parallel expansion, waiting for
// the deterministic merge to accept or discard it.
type succState struct {
	s      *sim.Sim
	enc    []byte
	hash   uint64
	budget int
	dec    int32
}

// expandResult is everything the merge needs to know about one frontier
// entry: whether it terminated (delivered / deadlocked), else its novel
// successors in canonical decision order.
type expandResult struct {
	delivered  bool
	deadlocked bool
	succs      []succState
}

// engine holds the state shared between the search loop and its workers.
type engine struct {
	opts    SearchOptions
	cfg     enumConfig        // enumeration variant; shared with rebuildTrace
	perms   []sim.Permutation // scenario symmetries; empty = plain encoding
	visited visitedStore
	batched bool      // frontiers travel as encoded batches, not live sims
	pool    sync.Pool // recycled *sim.Sim successors
	workers []*searchWorker

	shardBuf []int        // reused shard-size buffer for the metrics path
	vstats   VisitedStats // reused stats snapshot for the progress path
}

// searchWorker is the per-goroutine scratch state for frontier expansion.
type searchWorker struct {
	eng      *engine
	enum     *decisionEnum
	probe    *sim.Sim // deadlock-check scratch
	curSim   *sim.Sim // batch-entry decode scratch (batched mode only)
	encBuf   []byte
	canonBuf []byte // canonical-encoding scratch (symmetry reduction)

	stats      enumStats // pre-clone pruning counters, summed at finish
	postPruned int64     // post-step futile-activation discards
}

func newEngine(opts SearchOptions, cfg enumConfig, perms []sim.Permutation, root *sim.Sim, workers int) *engine {
	eng := &engine{
		opts:    opts,
		cfg:     cfg,
		perms:   perms,
		visited: newVisitedStore(opts.Visited),
		batched: opts.Visited.CompressFrontier,
	}
	eng.workers = make([]*searchWorker, workers)
	for i := range eng.workers {
		eng.workers[i] = &searchWorker{
			eng:   eng,
			enum:  newDecisionEnum(root),
			probe: root.Clone(),
		}
		if eng.batched {
			eng.workers[i].curSim = root.Clone()
		}
	}
	return eng
}

// fillVisited copies the backend's live accounting into a progress report.
// Runs only on the merge goroutine (the stats contract).
func (eng *engine) fillVisited(p *ProgressInfo) {
	eng.visited.stats(&eng.vstats)
	p.VisitedEntries = eng.vstats.Entries
	p.VisitedBytes = eng.vstats.Bytes
	p.SpillBytes = eng.vstats.SpillBytes
	p.BloomFPRate = eng.vstats.BloomFPRate
}

// getSim returns a pooled simulator holding a deep copy of src.
func (eng *engine) getSim(src *sim.Sim) *sim.Sim {
	if v := eng.pool.Get(); v != nil {
		s := v.(*sim.Sim)
		s.CopyFrom(src)
		return s
	}
	return src.Clone()
}

func (eng *engine) putSim(s *sim.Sim) { eng.pool.Put(s) }

// expand computes one frontier entry's fate. It runs concurrently with
// other expands but touches only worker-local scratch, the sim pool, and
// lock-shared visited reads, so it is safe and — because the visited set
// is frozen during expansion (insertions happen only in the merge) — its
// result is independent of scheduling.
func (w *searchWorker) expand(cur *frontierEntry) expandResult {
	var r expandResult
	if cur.s.AllDelivered() {
		r.delivered = true
		return r
	}
	if w.deadlocked(cur.s) {
		r.deadlocked = true
		return r
	}
	dec := int32(-1)
	w.enum.forEach(cur.s, cur.budget, w.eng.cfg, &w.stats, func(d *Decision) bool {
		dec++
		next := w.eng.getSim(cur.s)
		apply(next, *d)
		next.StepWithPicks(d.Picks)
		// Post-step backstop for partial-order reduction: an activation
		// that failed to inject (message neither in network nor delivered
		// after the step) produced a state dominated by the same decision
		// without it — identical except the held bit, with the held
		// variant keeping strictly more adversary power. The pre-clone
		// filters catch almost all of these; this catches the rest. It
		// fires after dec++, so provenance ordinals are unaffected.
		if w.eng.cfg.por {
			for _, id := range d.Activate {
				if !next.InNetwork(id) && !next.Delivered(id) {
					w.postPruned++
					w.eng.putSim(next)
					return true
				}
			}
		}
		newBudget := cur.budget - len(d.Freeze)
		w.encBuf = w.encBuf[:0]
		if len(w.eng.perms) > 0 {
			next.CanonicalEncodeTo(w.eng.perms, &w.encBuf, &w.canonBuf)
		} else {
			next.EncodeTo(&w.encBuf)
		}
		h := w.eng.visited.hash(w.encBuf)
		// Pre-filter against states accepted in previous levels. Visited
		// only grows at merge time, so a rejection here is final: budgets
		// recorded there can only increase, never making a rejected
		// (encoding, budget) pair novel again.
		if !w.eng.visited.novel(h, w.encBuf, newBudget) {
			w.eng.putSim(next)
			return true
		}
		enc := append([]byte(nil), w.encBuf...)
		if w.eng.batched {
			// Batched mode keeps only the encoding: the merge re-encodes
			// accepted successors into the next level's batch, so the live
			// simulator can be recycled immediately.
			w.eng.putSim(next)
			next = nil
		}
		r.succs = append(r.succs, succState{s: next, enc: enc, hash: h, budget: newBudget, dec: dec})
		return true
	})
	return r
}

// expandBatch is expandLevel for an encoded frontier: workers claim
// restart blocks, decode each entry into their scratch simulator and
// expand it in place. Results land at the entry's batch index, so the
// merge consumes them in exactly the order an unbatched frontier slice
// would have.
func (eng *engine) expandBatch(batch *frontierBatch, results []expandResult) {
	nw := len(eng.workers)
	if nw > batch.blocks() {
		nw = batch.blocks()
	}
	if nw <= 1 {
		w := eng.workers[0]
		var it batchIter
		it.seekAll(batch)
		for it.next() {
			if err := w.curSim.DecodeFrom(it.cur); err != nil {
				panic(fmt.Sprintf("mcheck: internal error: frontier entry does not decode: %v", err))
			}
			cur := frontierEntry{s: w.curSim, budget: it.budget, node: it.node}
			results[it.idx-1] = w.expand(&cur)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for _, w := range eng.workers[:nw] {
		wg.Add(1)
		go func(w *searchWorker) {
			defer wg.Done()
			var it batchIter
			for {
				bi := int(cursor.Add(1)) - 1
				if bi >= batch.blocks() {
					return
				}
				it.seekBlock(batch, bi)
				for it.next() {
					if err := w.curSim.DecodeFrom(it.cur); err != nil {
						panic(fmt.Sprintf("mcheck: internal error: frontier entry does not decode: %v", err))
					}
					cur := frontierEntry{s: w.curSim, budget: it.budget, node: it.node}
					results[it.idx-1] = w.expand(&cur)
				}
			}
		}(w)
	}
	wg.Wait()
}

// deadlocked reports whether the state is a reachable deadlock: no flit can
// ever move again among the active messages (held messages are the
// adversary's to withhold forever) and some message is stuck in-network.
// Movement possibility is arbitration-independent, so stepping a scratch
// copy once decides it exactly.
func (w *searchWorker) deadlocked(s *sim.Sim) bool {
	inNetwork := false
	for id := 0; id < s.NumMessages(); id++ {
		if !s.Delivered(id) && s.InNetwork(id) {
			inNetwork = true
			break
		}
	}
	if !inNetwork {
		return false
	}
	w.probe.CopyFrom(s)
	return !w.probe.Step().Moved
}

// expandLevel fans the frontier out across the workers and fills results
// (same indexing as frontier). With one worker or a one-entry level it
// stays on the calling goroutine.
func (eng *engine) expandLevel(frontier []frontierEntry, results []expandResult) {
	nw := len(eng.workers)
	if nw > len(frontier) {
		nw = len(frontier)
	}
	if nw <= 1 {
		w := eng.workers[0]
		for i := range frontier {
			results[i] = w.expand(&frontier[i])
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for _, w := range eng.workers[:nw] {
		wg.Add(1)
		go func(w *searchWorker) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(frontier) {
					return
				}
				results[i] = w.expand(&frontier[i])
			}
		}(w)
	}
	wg.Wait()
}

// requireSearchableArbiter rejects arbiters that may carry hidden
// per-instance mutable state: the engines clone simulators constantly, and
// a stateful arbiter silently shared across clones would let one branch's
// arbitration history leak into another. Arbiters must either declare
// statelessness (StatelessArbiter) or provide deep copies (ArbiterCloner).
func requireSearchableArbiter(a sim.Arbiter) {
	switch a.(type) {
	case nil, sim.ArbiterCloner, sim.StatelessArbiter:
	default:
		panic(fmt.Sprintf("mcheck: arbiter %T implements neither sim.StatelessArbiter nor sim.ArbiterCloner; "+
			"a stateful arbiter shared across clones corrupts the search", a))
	}
}

// Search exhaustively explores every reachable state of the scenario under
// adversarial injection timing, arbitration, and (optionally) stalling. The
// scenario's InjectAt fields are ignored: injection timing is part of the
// adversary's choice, which strictly generalizes any fixed schedule.
func Search(sc sim.Scenario, opts SearchOptions) SearchResult {
	start := time.Now()
	requireSearchableArbiter(sc.Cfg.Arbiter)
	opts = normalizeSearchOptions(sc, opts)
	maxStates := opts.MaxStates
	workers := opts.Parallelism

	// Derive the scenario's symmetries once per search; with none usable
	// the symmetry bit is cleared so the result reports what ran.
	var perms []sim.Permutation
	if opts.Reduction.Symmetry() {
		perms = scenarioSymmetries(sc)
		if len(perms) == 0 {
			opts.Reduction &^= RedSymmetry
		}
	}
	cfg := enumConfig{inTransitOnly: opts.FreezeInTransitOnly, por: opts.Reduction.POR()}
	// Frontier batching round-trips states through their encoding; under
	// symmetry reduction the encoding is the canonical representative,
	// which decodes to a permuted state and would change the traversal.
	// The visited backends themselves are unaffected.
	if len(perms) > 0 {
		opts.Visited.CompressFrontier = false
	}

	root := newHeldSim(sc)
	eng := newEngine(opts, cfg, perms, root, workers)
	defer eng.visited.close()

	var rootEnc, rootScratch []byte
	if len(perms) > 0 {
		root.CanonicalEncodeTo(perms, &rootEnc, &rootScratch)
	} else {
		root.EncodeTo(&rootEnc)
	}
	eng.visited.insert(eng.visited.hash(rootEnc), rootEnc, opts.StallBudget)

	nodes := []provNode{{parent: -1, dec: -1}}
	frontier := []frontierEntry{{s: root, budget: opts.StallBudget, node: 0}}
	states := 1
	level := 0

	// emitProgress shields the search from the caller's Progress callback:
	// a panic there is contained, surfaced as a result warning, and
	// disables further reporting — it never corrupts the verdict.
	var warnings []string
	progressBroken := false
	emitProgress := func(p ProgressInfo) {
		if opts.Progress == nil || progressBroken {
			return
		}
		defer func() {
			if rec := recover(); rec != nil {
				progressBroken = true
				warnings = append(warnings,
					fmt.Sprintf("progress callback panicked: %v (progress reporting disabled for the rest of the search)", rec))
			}
		}()
		opts.Progress(p)
	}

	finish := func(r SearchResult) SearchResult {
		r.Elapsed = time.Since(start)
		if secs := r.Elapsed.Seconds(); secs > 0 {
			r.StatesPerSec = float64(r.States) / secs
		}
		eng.visited.stats(&r.Visited)
		r.PeakVisited = r.Visited.Entries
		r.Workers = workers
		r.Reduction = opts.Reduction
		r.SymmetryGroup = 1 + len(perms)
		// Worker pruning counters sum deterministically: expandLevel is a
		// barrier, so every level that influenced the result was expanded
		// in full before its merge (including the final, early-returning
		// one), and the per-worker split of a level never changes totals.
		var st enumStats
		var post int64
		for _, w := range eng.workers {
			st.add(&w.stats)
			post += w.postPruned
		}
		r.StatesPruned = int(st.sleepSkips + st.freezeSkips + st.pickSkips + post)
		r.SleepSetHits = int(st.sleepSets)
		if opts.Tracer != nil {
			ev := obsv.Ev(obsv.KindSearchDone, 0)
			ev.N = r.States
			ev.Note = r.Verdict.String()
			opts.Tracer.Event(ev)
		}
		if opts.Metrics != nil {
			opts.Metrics.Gauge("mcheck_states").Set(int64(r.States))
			opts.Metrics.Gauge("mcheck_peak_visited").Set(int64(r.PeakVisited))
			opts.Metrics.Gauge("mcheck_workers").Set(int64(r.Workers))
			opts.Metrics.Gauge("mcheck_visited_bytes").Set(r.Visited.Bytes)
			shardLoad := opts.Metrics.Histogram("mcheck_visited_shard_entries", nil)
			eng.shardBuf = eng.visited.shardSizes(eng.shardBuf)
			for _, n := range eng.shardBuf {
				shardLoad.Observe(float64(n))
			}
			// Backend-specific gauges only exist when that backend ran,
			// keeping default-backend metric snapshots identical to the
			// historical ones.
			if r.Visited.BloomProbes > 0 {
				opts.Metrics.Gauge("mcheck_bloom_probes").Set(r.Visited.BloomProbes)
				opts.Metrics.Gauge("mcheck_bloom_false_positives").Set(r.Visited.BloomFalsePositives)
			}
			if opts.Visited.Backend == VisitedSpill {
				opts.Metrics.Gauge("mcheck_visited_spill_bytes").Set(r.Visited.SpillBytes)
				opts.Metrics.Gauge("mcheck_visited_spill_runs").Set(int64(r.Visited.SpillRuns))
			}
			// Reduction gauges only exist when a reduction ran, keeping
			// unreduced metric snapshots identical to the historical ones.
			if opts.Reduction != RedNone {
				opts.Metrics.Gauge("mcheck_states_pruned").Set(int64(r.StatesPruned))
				opts.Metrics.Gauge("mcheck_sleep_set_hits").Set(int64(r.SleepSetHits))
				opts.Metrics.Gauge("mcheck_symmetry_group").Set(int64(r.SymmetryGroup))
			}
		}
		p := ProgressInfo{Level: level, States: r.States, Elapsed: r.Elapsed, StatesPerSec: r.StatesPerSec}
		p.VisitedEntries = r.Visited.Entries
		p.VisitedBytes = r.Visited.Bytes
		p.SpillBytes = r.Visited.SpillBytes
		p.BloomFPRate = r.Visited.BloomFPRate
		emitProgress(p)
		r.Warnings = warnings
		return r
	}

	progressEvery := opts.ProgressEvery // normalized: always positive
	lastProgress := start

	// levelTelemetry is the per-level reporting shared by both frontier
	// representations. The trace event is emitted here — before the
	// level's merge, from this single goroutine — so the traced sequence
	// is the same for every Parallelism value.
	levelTelemetry := func(frontierSize int) {
		if opts.Tracer != nil {
			ev := obsv.Ev(obsv.KindSearchLevel, level)
			ev.N = frontierSize
			ev.M = states
			opts.Tracer.Event(ev)
		}
		if opts.Metrics != nil {
			opts.Metrics.Gauge("mcheck_search_level").Set(int64(level))
			opts.Metrics.Gauge("mcheck_frontier_size").Set(int64(frontierSize))
			opts.Metrics.Gauge("mcheck_frontier_peak").Max(int64(frontierSize))
			opts.Metrics.Gauge("mcheck_states").Set(int64(states))
		}
		if opts.Progress != nil && !progressBroken {
			if now := time.Now(); now.Sub(lastProgress) >= progressEvery {
				lastProgress = now
				elapsed := now.Sub(start)
				sps := 0.0
				if secs := elapsed.Seconds(); secs > 0 {
					sps = float64(states) / secs
				}
				p := ProgressInfo{Level: level, Frontier: frontierSize, States: states, Elapsed: elapsed, StatesPerSec: sps}
				eng.fillVisited(&p)
				emitProgress(p)
			}
		}
	}

	if eng.batched {
		// Batched path: the frontier is a delta-encoded byte batch; the
		// merge decodes it sequentially (same order as the slice loop
		// below) and re-encodes accepted successors into the next batch.
		// Verdicts, counts and witnesses are byte-identical to the
		// unbatched path — the backend-parity tests pin this.
		var builders [2]batchBuilder
		cur := 0
		builders[cur].add(rootEnc, opts.StallBudget, 0)
		eng.putSim(root) // the batch carries no live sims; recycle the root
		var results []expandResult
		var it batchIter
		for {
			batch := &builders[cur].batch
			if batch.count == 0 {
				return finish(SearchResult{Verdict: VerdictNoDeadlock, States: states})
			}
			levelTelemetry(batch.count)
			if cap(results) < batch.count {
				results = make([]expandResult, batch.count)
			}
			results = results[:batch.count]
			eng.expandBatch(batch, results)
			nxt := 1 - cur
			builders[nxt].reset()
			it.seekAll(batch)
			for it.next() {
				res := &results[it.idx-1]
				if res.delivered {
					continue
				}
				if res.deadlocked {
					// The batch entry decodes to the deadlocked state, but
					// its wall clock and fault anchors are relative; replay
					// the witness trace instead so waitfor sees the state
					// exactly as the unbatched engine would.
					trace := rebuildTrace(sc, nodes, it.node, opts, cfg)
					return finish(SearchResult{
						Verdict:  VerdictDeadlock,
						States:   states,
						Trace:    trace,
						Deadlock: waitfor.Find(Replay(sc, trace)),
					})
				}
				for _, su := range res.succs {
					if !eng.visited.insert(su.hash, su.enc, su.budget) {
						continue
					}
					states++
					if states > maxStates {
						return finish(SearchResult{Verdict: VerdictExhausted, States: states})
					}
					nodes = append(nodes, provNode{parent: it.node, dec: su.dec})
					builders[nxt].add(su.enc, su.budget, int32(len(nodes)-1))
				}
			}
			cur = nxt
			level++
		}
	}

	for len(frontier) > 0 {
		levelTelemetry(len(frontier))

		results := make([]expandResult, len(frontier))
		eng.expandLevel(frontier, results)

		// Deterministic merge: process entries in frontier order, which is
		// exactly the order a sequential FIFO queue would dequeue them, so
		// every visited insertion, state count and early return matches
		// the single-threaded engine bit for bit.
		var next []frontierEntry
		for i := range frontier {
			cur := &frontier[i]
			res := &results[i]
			if res.delivered {
				eng.putSim(cur.s)
				continue
			}
			if res.deadlocked {
				d := waitfor.Find(cur.s)
				return finish(SearchResult{
					Verdict:  VerdictDeadlock,
					States:   states,
					Trace:    rebuildTrace(sc, nodes, cur.node, opts, cfg),
					Deadlock: d,
				})
			}
			for _, su := range res.succs {
				// Re-check against states merged earlier this level; the
				// workers' pre-filter only saw previous levels.
				if !eng.visited.insert(su.hash, su.enc, su.budget) {
					eng.putSim(su.s)
					continue
				}
				states++
				if states > maxStates {
					return finish(SearchResult{Verdict: VerdictExhausted, States: states})
				}
				nodes = append(nodes, provNode{parent: cur.node, dec: su.dec})
				next = append(next, frontierEntry{s: su.s, budget: su.budget, node: int32(len(nodes) - 1)})
			}
			eng.putSim(cur.s)
		}
		frontier = next
		level++
	}
	return finish(SearchResult{Verdict: VerdictNoDeadlock, States: states})
}

// newHeldSim instantiates the scenario with every message held at its
// source and ready (InjectAt normalized to 0 so state encodings are
// time-invariant).
func newHeldSim(sc sim.Scenario) *sim.Sim {
	s := sim.New(sc.Net, sc.Cfg)
	for _, m := range sc.Msgs {
		m.InjectAt = 0
		id := s.MustAdd(m)
		s.SetHeld(id, true)
	}
	return s
}

// apply performs a decision's activations, freezes and masks on the
// simulator.
func apply(s *sim.Sim, d Decision) {
	for _, id := range d.Activate {
		s.SetHeld(id, false)
	}
	for _, id := range d.Freeze {
		s.SetFrozen(id, 1)
	}
	for id, c := range d.Masks {
		s.SetMask(id, c)
	}
}

// rebuildTrace turns a provenance arena path into a witness trace. The
// arena stores only decision ordinals, so the trace is reconstructed by
// replaying from the root: at each state the canonical enumeration is run
// just far enough to recover decision #dec, which is applied and the walk
// continues. This trades O(depth × decisions-per-state) work at witness
// time — paid once, only on a deadlock verdict — for never materializing
// Decisions during the search itself.
func rebuildTrace(sc sim.Scenario, nodes []provNode, idx int32, opts SearchOptions, cfg enumConfig) []Decision {
	var rev []int32
	for i := idx; nodes[i].parent >= 0; i = nodes[i].parent {
		rev = append(rev, nodes[i].dec)
	}
	trace := make([]Decision, 0, len(rev))
	s := newHeldSim(sc)
	enum := newDecisionEnum(s)
	budget := opts.StallBudget
	for k := len(rev) - 1; k >= 0; k-- {
		target := rev[k]
		var chosen Decision
		found := false
		ord := int32(-1)
		enum.forEach(s, budget, cfg, nil, func(d *Decision) bool {
			ord++
			if ord == target {
				chosen = copyDecision(d)
				found = true
				return false
			}
			return true
		})
		if !found {
			panic("mcheck: internal error: provenance decision ordinal out of range")
		}
		apply(s, chosen)
		s.StepWithPicks(chosen.Picks)
		budget -= len(chosen.Freeze)
		trace = append(trace, chosen)
	}
	return trace
}

// Replay re-executes a Search trace on a fresh instance of the scenario and
// returns the resulting simulator, so tests can independently verify that
// the trace leads to the claimed deadlock.
func Replay(sc sim.Scenario, trace []Decision) *sim.Sim {
	s := newHeldSim(sc)
	for _, dec := range trace {
		apply(s, dec)
		s.StepWithPicks(dec.Picks)
	}
	return s
}
