// Package mcheck decides deadlock reachability for finite wormhole-routing
// scenarios by exhaustive search.
//
// Two complementary engines are provided:
//
//   - Search: an exact breadth-first state-space exploration of the
//     simulator's transition system under full adversarial nondeterminism —
//     sources may delay injection arbitrarily (assumption 1), every
//     arbitration choice is enumerated (assumption 5), and an optional
//     stall budget lets the adversary freeze moving messages (Section 6's
//     relaxation of tight synchrony). For a fixed finite message set this
//     is a complete decision procedure: VerdictNoDeadlock means no
//     reachable state of the scenario contains a Definition 6 deadlock
//     configuration.
//
//   - Sweep: a bounded sweep over concrete injection-time tuples, message
//     lengths and arbitration policies. It is cheaper, produces
//     human-readable witnesses (an actual schedule), and regenerates the
//     paper's "inject M2 before M1..." style case analyses, but unlike
//     Search it is only exhaustive over its stated bounds.
//
// A deadlock verdict always carries a witness: the decision trace (Search)
// or schedule (Sweep) plus the Definition 6 cycle, and Replay re-executes
// traces so tests can validate witnesses independently.
package mcheck

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/waitfor"
)

// Verdict classifies a search outcome.
type Verdict int

const (
	// VerdictNoDeadlock: the full reachable state space was explored and
	// no Definition 6 deadlock configuration exists.
	VerdictNoDeadlock Verdict = iota
	// VerdictDeadlock: a reachable deadlock was found; see the witness.
	VerdictDeadlock
	// VerdictExhausted: the state or run budget was exceeded before the
	// search completed; the result is inconclusive.
	VerdictExhausted
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictNoDeadlock:
		return "no-deadlock"
	case VerdictDeadlock:
		return "deadlock"
	case VerdictExhausted:
		return "exhausted"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Decision is one cycle's worth of adversarial choices in a Search trace.
type Decision struct {
	// Activate lists messages whose source begins injecting this cycle.
	Activate []int
	// Freeze lists in-flight messages stalled for this one cycle, each
	// consuming one unit of the stall budget.
	Freeze []int
	// Masks restricts adaptive messages to a single candidate channel for
	// this cycle (adaptive selection nondeterminism).
	Masks map[int]topology.ChannelID
	// Picks resolves each contested channel acquisition.
	Picks map[topology.ChannelID]int
}

// SearchOptions bounds a Search.
type SearchOptions struct {
	// StallBudget is the total number of message-cycles the adversary may
	// freeze otherwise-movable messages (0 = routers never stall, the
	// paper's Section 3 model; > 0 = Section 6's clock-skew model).
	StallBudget int
	// MaxStates caps the number of distinct states explored. 0 means
	// DefaultMaxStates.
	MaxStates int
	// FreezeInTransitOnly restricts adversarial stalls to messages whose
	// header has not yet reached its destination channel. This models the
	// paper's Section 6 clock-skew adversary, where routers may delay a
	// message in transit but destination processors consume arriving
	// flits promptly. Without it, stalls may also delay consumption
	// (legal under assumption 2's "eventually consumed", but outside the
	// paper's skew model).
	FreezeInTransitOnly bool
}

// DefaultMaxStates bounds state exploration when SearchOptions.MaxStates
// is zero.
const DefaultMaxStates = 2_000_000

// SearchResult reports the outcome of Search.
type SearchResult struct {
	Verdict Verdict
	// States is the number of distinct states visited.
	States int
	// Trace, for VerdictDeadlock, is the per-cycle decision sequence from
	// the empty network to the deadlocked state.
	Trace []Decision
	// Deadlock, for VerdictDeadlock, is the Definition 6 cycle in the
	// final state.
	Deadlock *waitfor.Deadlock
}

// node tracks BFS provenance for witness reconstruction.
type node struct {
	parent   string
	decision Decision
}

// Search exhaustively explores every reachable state of the scenario under
// adversarial injection timing, arbitration, and (optionally) stalling. The
// scenario's InjectAt fields are ignored: injection timing is part of the
// adversary's choice, which strictly generalizes any fixed schedule.
func Search(sc sim.Scenario, opts SearchOptions) SearchResult {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}

	root := newHeldSim(sc)
	rootKey := stateKey(root, opts.StallBudget)

	// visited maps an encoding (without budget) to the best remaining
	// budget seen: a state revisited with no more budget than before can
	// reach nothing new.
	visited := map[string]int{root.Encode(): opts.StallBudget}
	// parents records provenance for every non-root state.
	parents := make(map[string]node)

	type qent struct {
		s      *sim.Sim
		budget int
		key    string
	}
	queue := []qent{{s: root, budget: opts.StallBudget, key: rootKey}}
	states := 1

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]

		if cur.s.AllDelivered() {
			continue
		}
		if deadlocked(cur.s) {
			d := waitfor.Find(cur.s)
			return SearchResult{
				Verdict:  VerdictDeadlock,
				States:   states,
				Trace:    rebuildTrace(parents, cur.key),
				Deadlock: d,
			}
		}

		for _, dec := range decisions(cur.s, cur.budget, opts.FreezeInTransitOnly) {
			next := cur.s.Clone()
			apply(next, dec)
			next.StepWithPicks(dec.Picks)
			newBudget := cur.budget - len(dec.Freeze)
			enc := next.Encode()
			if best, ok := visited[enc]; ok && best >= newBudget {
				continue
			}
			visited[enc] = newBudget
			states++
			if states > maxStates {
				return SearchResult{Verdict: VerdictExhausted, States: states}
			}
			key := stateKey(next, newBudget)
			parents[key] = node{parent: cur.key, decision: dec}
			queue = append(queue, qent{s: next, budget: newBudget, key: key})
		}
	}
	return SearchResult{Verdict: VerdictNoDeadlock, States: states}
}

// newHeldSim instantiates the scenario with every message held at its
// source and ready (InjectAt normalized to 0 so state encodings are
// time-invariant).
func newHeldSim(sc sim.Scenario) *sim.Sim {
	s := sim.New(sc.Net, sc.Cfg)
	for _, m := range sc.Msgs {
		m.InjectAt = 0
		id := s.MustAdd(m)
		s.SetHeld(id, true)
	}
	return s
}

func stateKey(s *sim.Sim, budget int) string {
	return fmt.Sprintf("%s|b%d", s.Encode(), budget)
}

// deadlocked reports whether the state is a reachable deadlock: no flit can
// ever move again among the active messages (held messages are the
// adversary's to withhold forever) and some message is stuck in-network.
// Movement possibility is arbitration-independent, so stepping a clone once
// decides it exactly.
func deadlocked(s *sim.Sim) bool {
	inNetwork := false
	for id := 0; id < s.NumMessages(); id++ {
		mv := s.Message(id)
		if !mv.Delivered && mv.InNetwork {
			inNetwork = true
			break
		}
	}
	if !inNetwork {
		return false
	}
	probe := s.Clone()
	return !probe.Step().Moved
}

// decisions enumerates every adversarial choice available in the state:
// all subsets of held messages to activate, all subsets of movable
// in-flight messages to freeze (bounded by budget), and all arbitration
// outcomes for the resulting contentions.
func decisions(s *sim.Sim, budget int, inTransitOnly bool) []Decision {
	var held []int
	for id := 0; id < s.NumMessages(); id++ {
		if s.Held(id) {
			held = append(held, id)
		}
	}

	var out []Decision
	for _, act := range subsets(held) {
		// Freezing depends on which messages can move after activation;
		// activation only enables injections, which cannot disable any
		// other message's movement, so compute movability on a clone with
		// the activation applied.
		probe := s.Clone()
		for _, id := range act {
			probe.SetHeld(id, false)
		}
		var movable []int
		if budget > 0 {
			for id := 0; id < probe.NumMessages(); id++ {
				if !probe.CanAdvance(id) {
					continue
				}
				if inTransitOnly {
					mv := probe.Message(id)
					lastQueued := len(mv.Queued) > 0 && mv.Queued[len(mv.Queued)-1] > 0
					if mv.HeaderConsumed || lastQueued {
						continue // already delivering: consumption may not stall
					}
				}
				movable = append(movable, id)
			}
		}
		for _, frz := range subsets(movable) {
			if len(frz) > budget {
				continue
			}
			probe2 := probe.Clone()
			for _, id := range frz {
				probe2.SetFrozen(id, 1)
			}
			// Adaptive selection nondeterminism: enumerate, for every
			// adaptive message with several acquirable candidates, which
			// one it requests this cycle.
			for _, masks := range maskCombos(probe2) {
				probe3 := probe2
				if len(masks) > 0 {
					probe3 = probe2.Clone()
					for id, c := range masks {
						probe3.SetMask(id, c)
					}
				}
				cons := probe3.Contentions()
				for _, picks := range pickCombos(cons) {
					out = append(out, Decision{Activate: act, Freeze: frz, Masks: masks, Picks: picks})
				}
			}
		}
	}
	return out
}

// maskCombos enumerates the cartesian product of candidate selections for
// every adaptive message that could acquire more than one channel this
// cycle. It returns a single nil map when there is nothing to choose.
func maskCombos(s *sim.Sim) []map[int]topology.ChannelID {
	out := []map[int]topology.ChannelID{nil}
	for id := 0; id < s.NumMessages(); id++ {
		if !s.IsAdaptive(id) {
			continue
		}
		cands := s.AcquirableCandidates(id)
		if len(cands) < 2 {
			continue
		}
		var next []map[int]topology.ChannelID
		for _, c := range cands {
			for _, base := range out {
				m := make(map[int]topology.ChannelID, len(base)+1)
				for k, v := range base {
					m[k] = v
				}
				m[id] = c
				next = append(next, m)
			}
		}
		out = next
	}
	return out
}

// apply performs a decision's activations, freezes and masks on the
// simulator.
func apply(s *sim.Sim, d Decision) {
	for _, id := range d.Activate {
		s.SetHeld(id, false)
	}
	for _, id := range d.Freeze {
		s.SetFrozen(id, 1)
	}
	for id, c := range d.Masks {
		s.SetMask(id, c)
	}
}

// subsets returns every subset of ids, the empty set first. The input must
// be small; the paper's scenarios have at most a handful of messages.
func subsets(ids []int) [][]int {
	n := len(ids)
	if n > 16 {
		panic("mcheck: subset enumeration over more than 16 items")
	}
	out := make([][]int, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		var sub []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, ids[i])
			}
		}
		out = append(out, sub)
	}
	return out
}

// pickCombos returns the cartesian product of contender choices across all
// contested channels. With no contentions it returns a single nil map.
func pickCombos(cons []sim.Contention) []map[topology.ChannelID]int {
	out := []map[topology.ChannelID]int{nil}
	for _, c := range cons {
		var next []map[topology.ChannelID]int
		for _, id := range c.Contenders {
			for _, base := range out {
				m := make(map[topology.ChannelID]int, len(base)+1)
				for k, v := range base {
					m[k] = v
				}
				m[c.Channel] = id
				next = append(next, m)
			}
		}
		out = next
	}
	return out
}

// rebuildTrace walks the BFS provenance chain back to the root (which has
// no parents entry).
func rebuildTrace(parents map[string]node, key string) []Decision {
	var rev []Decision
	for {
		n, ok := parents[key]
		if !ok {
			break
		}
		rev = append(rev, n.decision)
		key = n.parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Replay re-executes a Search trace on a fresh instance of the scenario and
// returns the resulting simulator, so tests can independently verify that
// the trace leads to the claimed deadlock.
func Replay(sc sim.Scenario, trace []Decision) *sim.Sim {
	s := newHeldSim(sc)
	for _, dec := range trace {
		apply(s, dec)
		s.StepWithPicks(dec.Picks)
	}
	return s
}
