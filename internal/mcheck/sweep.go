package mcheck

import (
	"fmt"
	"sync"

	"repro/internal/sim"
	"repro/internal/waitfor"
)

// SweepOptions bounds a schedule sweep.
type SweepOptions struct {
	// Window sweeps every message's injection time over [0, Window).
	// Window must be >= 1; 1 means "all messages injected at cycle 0".
	Window int
	// Lengths optionally sweeps message lengths: Lengths[i] lists the
	// candidate lengths for message i (nil or empty keeps the scenario's
	// length). Messages beyond len(Lengths) keep their length.
	Lengths [][]int
	// Arbiters lists the arbitration policies to try per schedule. Nil
	// uses the scenario's configured arbiter only.
	Arbiters []sim.Arbiter
	// MaxCycles bounds each simulation run. 0 means DefaultMaxCycles.
	MaxCycles int
	// Parallelism runs the sweep's independent simulations on a worker
	// pool of this size. 0 means GOMAXPROCS; 1 runs sequentially. The
	// result is deterministic for every value (the first witness is the
	// first in sweep order, not completion order).
	Parallelism int
}

// DefaultMaxCycles bounds individual sweep runs.
const DefaultMaxCycles = 100_000

// SweepWitness is a concrete deadlocking schedule.
type SweepWitness struct {
	InjectTimes []int
	Lengths     []int
	ArbiterIdx  int
	Deadlock    *waitfor.Deadlock
	Cycles      int // cycle at which the network deadlocked
}

// String renders the witness schedule.
func (w *SweepWitness) String() string {
	return fmt.Sprintf("inject=%v lengths=%v arbiter#%d cycle=%d: %s",
		w.InjectTimes, w.Lengths, w.ArbiterIdx, w.Cycles, w.Deadlock)
}

// SweepResult summarizes a sweep.
type SweepResult struct {
	Runs      int
	Deadlocks int
	// First is the first deadlocking schedule found, or nil.
	First *SweepWitness
}

// Sweep simulates the scenario under every combination of injection times
// (within the window), candidate message lengths, and arbitration policy,
// and reports how many runs deadlock. Unlike Search it explores only the
// enumerated schedules — arbitrary source delays beyond the window and
// mid-flight stalls are out of scope — but each deadlock it finds comes
// with a directly replayable concrete schedule, mirroring the paper's
// injection-order case analyses.
//
// The grid runs on a worker pool (GOMAXPROCS wide by default); each worker
// keeps a single pooled simulator that is CopyFrom-reset and retimed per
// schedule instead of rebuilding a simulator per run, so the sweep's
// steady-state allocation cost is the witness records alone.
func Sweep(sc sim.Scenario, opts SweepOptions) SweepResult {
	if opts.Window < 1 {
		opts.Window = 1
	}
	maxCycles := opts.MaxCycles
	if maxCycles <= 0 {
		maxCycles = DefaultMaxCycles
	}
	arbiters := opts.Arbiters
	if len(arbiters) == 0 {
		arbiters = []sim.Arbiter{sc.Cfg.Arbiter}
	}
	for _, a := range arbiters {
		requireSearchableArbiter(a)
	}

	n := len(sc.Msgs)
	lengthChoices := make([][]int, n)
	for i := range lengthChoices {
		if i < len(opts.Lengths) && len(opts.Lengths[i]) > 0 {
			lengthChoices[i] = opts.Lengths[i]
		} else {
			lengthChoices[i] = []int{sc.Msgs[i].Length}
		}
	}

	// Enumerate the job list up front so execution can be sequential or
	// parallel with identical (deterministic) results.
	type job struct {
		times, lengths []int
		ai             int
	}
	var jobs []job
	times := make([]int, n)
	lengths := make([]int, n)
	var sweepLengths func(i int)
	var sweepTimes func(i int)
	sweepTimes = func(i int) {
		if i == n {
			for ai := range arbiters {
				jobs = append(jobs, job{
					times:   append([]int(nil), times...),
					lengths: append([]int(nil), lengths...),
					ai:      ai,
				})
			}
			return
		}
		for t := 0; t < opts.Window; t++ {
			times[i] = t
			sweepTimes(i + 1)
		}
	}
	sweepLengths = func(i int) {
		if i == n {
			sweepTimes(0)
			return
		}
		for _, l := range lengthChoices[i] {
			lengths[i] = l
			sweepLengths(i + 1)
		}
	}
	sweepLengths(0)

	// proto is the pristine template every run is restored from; it is
	// never stepped.
	proto := sc.NewSim()

	// runOne restores the worker's pooled simulator to the template,
	// retimes it for the job, and runs it to completion.
	runOne := func(s *sim.Sim, j job) *SweepWitness {
		s.CopyFrom(proto)
		for i := range j.times {
			if err := s.SetInjectAt(i, j.times[i]); err != nil {
				panic(err)
			}
			if err := s.SetLength(i, j.lengths[i]); err != nil {
				panic(err)
			}
		}
		a := arbiters[j.ai]
		if c, ok := a.(sim.ArbiterCloner); ok {
			a = c.CloneArbiter() // each run gets private arbiter state
		}
		s.SetArbiter(a)
		out := s.Run(maxCycles)
		if out.Result != sim.ResultDeadlock {
			return nil
		}
		return &SweepWitness{
			InjectTimes: j.times,
			Lengths:     j.lengths,
			ArbiterIdx:  j.ai,
			Deadlock:    waitfor.Find(s),
			Cycles:      out.Cycles,
		}
	}

	witnesses := make([]*SweepWitness, len(jobs))
	workers := normalizeParallelism(opts.Parallelism)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		s := proto.Clone()
		for i, j := range jobs {
			witnesses[i] = runOne(s, j)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := proto.Clone()
				for i := range work {
					witnesses[i] = runOne(s, jobs[i])
				}
			}()
		}
		for i := range jobs {
			work <- i
		}
		close(work)
		wg.Wait()
	}

	result := SweepResult{Runs: len(jobs)}
	for _, w := range witnesses {
		if w == nil {
			continue
		}
		result.Deadlocks++
		if result.First == nil {
			result.First = w
		}
	}
	return result
}

// AllPriorityArbiters returns one PriorityArbiter per permutation of the
// message IDs 0..n-1, realizing every fixed tie-breaking order. For the
// paper's four-message scenarios this is 24 policies; n above 6 panics to
// prevent factorial blowups.
func AllPriorityArbiters(n int) []sim.Arbiter {
	if n > 6 {
		panic("mcheck: refusing to enumerate more than 6! priority orders")
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	var out []sim.Arbiter
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			out = append(out, sim.PriorityArbiter{Order: append([]int(nil), ids...)})
			return
		}
		for i := k; i < n; i++ {
			ids[k], ids[i] = ids[i], ids[k]
			permute(k + 1)
			ids[k], ids[i] = ids[i], ids[k]
		}
	}
	permute(0)
	return out
}
