package mcheck

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/papernets"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/waitfor"
)

// parityCase is one scenario the sequential and parallel engines must agree
// on bit for bit.
type parityCase struct {
	name  string
	sc    sim.Scenario
	opts  SearchOptions
	heavy bool // skipped with -short
}

func parityCases() []parityCase {
	cases := []parityCase{
		{name: "figure1", sc: papernets.Figure1().Scenario},
		{name: "figure1-skew", sc: papernets.Figure1().Scenario,
			opts: SearchOptions{StallBudget: 1, FreezeInTransitOnly: true}},
		{name: "figure2", sc: papernets.Figure2().Scenario},
		{name: "ring4", sc: ringScenario(2)},
		{name: "safe", sc: safeScenario()},
	}
	for letter := byte('a'); letter <= 'f'; letter++ {
		cases = append(cases, parityCase{
			name:  fmt.Sprintf("figure3%c", letter),
			sc:    papernets.Figure3(letter).Scenario,
			heavy: letter != 'a', // one representative stays in short mode
		})
	}
	for k := 1; k <= 3; k++ {
		cases = append(cases, parityCase{
			name:  fmt.Sprintf("gen%d", k),
			sc:    papernets.GenK(k).Scenario,
			opts:  SearchOptions{StallBudget: k, FreezeInTransitOnly: true},
			heavy: k > 1,
		})
	}
	return cases
}

// TestSearchParallelMatchesSequential asserts that the parallel engine is
// observationally identical to one-worker execution: same verdict, same
// state count, and — for deadlock verdicts — a witness trace that replays
// to the same Definition 6 cycle. This is the determinism contract the
// level-synchronized merge is designed around. Short mode keeps the cheap
// cases (including parallel runs, so `go test -race -short` exercises the
// concurrent paths); heavy cases need a full run.
func TestSearchParallelMatchesSequential(t *testing.T) {
	for _, tc := range parityCases() {
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("heavy parity case; run without -short")
			}
			seqOpts := tc.opts
			seqOpts.Parallelism = 1
			seq := Search(tc.sc, seqOpts)
			for _, workers := range []int{2, 4} {
				parOpts := tc.opts
				parOpts.Parallelism = workers
				par := Search(tc.sc, parOpts)
				if par.Verdict != seq.Verdict {
					t.Fatalf("workers=%d: verdict %v != sequential %v", workers, par.Verdict, seq.Verdict)
				}
				if par.States != seq.States {
					t.Fatalf("workers=%d: states %d != sequential %d", workers, par.States, seq.States)
				}
				if par.Workers != workers {
					t.Errorf("workers=%d: result reports %d workers", workers, par.Workers)
				}
				if seq.Verdict != VerdictDeadlock {
					continue
				}
				if !reflect.DeepEqual(par.Trace, seq.Trace) {
					t.Fatalf("workers=%d: witness trace differs from sequential", workers)
				}
				if !reflect.DeepEqual(par.Deadlock.Cycle, seq.Deadlock.Cycle) {
					t.Fatalf("workers=%d: deadlock cycle %v != sequential %v",
						workers, par.Deadlock.Cycle, seq.Deadlock.Cycle)
				}
				// The witness must independently replay to the claimed cycle.
				s := Replay(tc.sc, par.Trace)
				if err := waitfor.Verify(s, par.Deadlock); err != nil {
					t.Fatalf("workers=%d: replayed witness invalid: %v", workers, err)
				}
			}
		})
	}
}

// TestSearchReportsThroughput sanity-checks the new perf fields.
func TestSearchReportsThroughput(t *testing.T) {
	res := Search(ringScenario(2), SearchOptions{})
	if res.Elapsed <= 0 {
		t.Fatalf("Elapsed = %v", res.Elapsed)
	}
	if res.StatesPerSec <= 0 {
		t.Fatalf("StatesPerSec = %v", res.StatesPerSec)
	}
	// With no stall budget there are no budget-improving re-insertions, so
	// counted states and retained encodings correspond one to one.
	if res.PeakVisited != res.States {
		t.Fatalf("PeakVisited = %d, States = %d; want equal for a budget-0 search", res.PeakVisited, res.States)
	}
	if res.Workers < 1 {
		t.Fatalf("Workers = %d", res.Workers)
	}
}

// statefulArbiter carries per-instance mutable state and implements
// neither StatelessArbiter nor ArbiterCloner: the engines must refuse it.
type statefulArbiter struct{ grants map[int]int }

func (a *statefulArbiter) Pick(_ *sim.Sim, _ topology.ChannelID, contenders []int) int {
	id := contenders[0]
	a.grants[id]++
	return id
}

// cloningArbiter is stateful but clone-safe.
type cloningArbiter struct{ grants map[int]int }

func (a *cloningArbiter) Pick(_ *sim.Sim, _ topology.ChannelID, contenders []int) int {
	id := contenders[0]
	a.grants[id]++
	return id
}

func (a *cloningArbiter) CloneArbiter() sim.Arbiter {
	g := make(map[int]int, len(a.grants))
	for k, v := range a.grants {
		g[k] = v
	}
	return &cloningArbiter{grants: g}
}

func TestSearchRejectsOpaqueStatefulArbiter(t *testing.T) {
	sc := ringScenario(2)
	sc.Cfg.Arbiter = &statefulArbiter{grants: map[int]int{}}
	defer func() {
		if recover() == nil {
			t.Fatal("Search accepted an arbiter with hidden per-instance state")
		}
	}()
	Search(sc, SearchOptions{})
}

func TestSweepRejectsOpaqueStatefulArbiter(t *testing.T) {
	sc := ringScenario(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Sweep accepted an arbiter with hidden per-instance state")
		}
	}()
	Sweep(sc, SweepOptions{Window: 1, Arbiters: []sim.Arbiter{&statefulArbiter{grants: map[int]int{}}}})
}

func TestSearchAcceptsCloningArbiter(t *testing.T) {
	sc := ringScenario(2)
	root := &cloningArbiter{grants: map[int]int{}}
	sc.Cfg.Arbiter = root
	res := Search(sc, SearchOptions{})
	if res.Verdict != VerdictDeadlock {
		t.Fatalf("verdict = %v; want deadlock", res.Verdict)
	}
	// The search's own picks bypass the arbiter (StepWithPicks), so the
	// root instance must be untouched — branches get private clones.
	if len(root.grants) != 0 {
		t.Fatalf("root arbiter mutated by the search: %v", root.grants)
	}
}
