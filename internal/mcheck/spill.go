package mcheck

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"os"
	"sort"
	"sync"
)

// spillVisited is the disk-spillable backend: each of the 64 shards keeps
// a bounded in-memory portion (same chained-hash structure as the
// reference set), and when a shard crosses its byte budget the resident
// entries are sorted by (digest, encoding) and written out as one
// immutable, prefix-compressed run file with an in-memory fence index.
// novel/insert probe memory first, then the shard's runs newest-first via
// positioned reads (pread), so the answer every probe returns is exactly
// the reference backend's: runs are snapshots and the freshest record of
// an encoding — a later budget upgrade lands in memory or in a newer run
// — always shadows older ones. When a shard accumulates too many runs
// they are k-way merged into one, keeping the newest record of each
// encoding, which bounds both lookup fan-out and disk growth.
//
// The result is a search whose resident set is O(MemBudget + fence
// indexes) regardless of state count; only the run files grow, at the
// (compressed) size of the distinct encodings. Disk I/O failures are
// unrecoverable mid-search and panic with context.
//
// Concurrency: insert/spill/compaction run only on the merge goroutine
// under the shard write lock; concurrent novel calls hold the read lock,
// and run files are immutable once written (os.File.ReadAt is safe for
// concurrent use), so readers never see a run mid-construction.
type spillVisited struct {
	seed     maphash.Seed
	dir      string // run-file directory, created by and private to this store
	perShard int64  // in-memory byte budget per shard
	shards   [visitedShards]spillShard

	readers     sync.Pool // *runReader lookup scratch
	compactions int       // merge-goroutine only
}

type spillShard struct {
	mu      sync.RWMutex
	index   map[uint64]int32
	entries []spillEntry
	bytes   int64 // resident bytes of the in-memory portion

	distinct   int         // distinct encodings ever recorded (mem + runs)
	runs       []*spillRun // oldest first; lookups scan newest first
	runBytes   int64
	runEntries int64 // entries residing in runs (incl. superseded dups)
	fenceBytes int64
}

// spillEntry is one in-memory record; unlike visitedEntry it carries its
// digest so a shard can be sorted and spilled without re-hashing.
type spillEntry struct {
	h      uint64
	enc    []byte
	budget int32
	next   int32
}

// spillRun is one immutable sorted run file plus its fence index: the
// digest and byte offset of every restart block, enough to land a lookup
// on the one or two blocks that can contain a digest.
type spillRun struct {
	f     *os.File
	size  int64
	fence []runFence
	count int
}

type runFence struct {
	h   uint64
	off int64
}

const (
	// spillBlockEntries is the restart interval: each block's first entry
	// is written in full, subsequent entries delta-encode their digest and
	// share a varint-length prefix with their predecessor.
	spillBlockEntries = 64
	// spillMaxRuns triggers a shard compaction: probes touch at most this
	// many runs plus the in-memory portion.
	spillMaxRuns = 6
	// spillMinSpillEntries keeps a pathological byte budget from emitting
	// near-empty runs.
	spillMinSpillEntries = 16
	spillFenceOverhead   = 16 // bytes per runFence
)

func newSpillVisited(cfg VisitedConfig) *spillVisited {
	dir, err := os.MkdirTemp(cfg.SpillDir, "mcheck-spill-*")
	if err != nil {
		panic(fmt.Sprintf("mcheck: spill backend: creating spill directory: %v", err))
	}
	per := cfg.MemBudget / visitedShards
	if per < 1<<10 {
		per = 1 << 10
	}
	v := &spillVisited{seed: maphash.MakeSeed(), dir: dir, perShard: per}
	for i := range v.shards {
		v.shards[i].index = make(map[uint64]int32)
	}
	return v
}

func (v *spillVisited) hash(enc []byte) uint64 {
	return maphash.Bytes(v.seed, enc)
}

// memLookup walks the in-memory chain for (h, enc). Caller holds the
// shard lock (either mode).
func (sh *spillShard) memLookup(h uint64, enc []byte) (int32, bool) {
	i, ok := sh.index[h]
	for ok && i >= 0 {
		e := &sh.entries[i]
		if bytes.Equal(e.enc, enc) {
			return e.budget, true
		}
		i = e.next
	}
	return 0, false
}

// lookupRuns probes the shard's runs newest-first. Caller holds the shard
// lock (either mode), which pins the run list; file reads are positioned
// and lock-free.
func (sh *spillShard) lookupRuns(h uint64, enc []byte, rd *runReader) (int32, bool) {
	for i := len(sh.runs) - 1; i >= 0; i-- {
		if b, ok := sh.runs[i].lookup(h, enc, rd); ok {
			return b, true
		}
	}
	return 0, false
}

// addEntry appends (h, enc, budget) to the in-memory portion. Caller
// holds the write lock and has established the encoding is not resident.
func (sh *spillShard) addEntry(h uint64, enc []byte, budget int) {
	head, ok := sh.index[h]
	if !ok {
		head = -1
	}
	sh.entries = append(sh.entries, spillEntry{h: h, enc: enc, budget: int32(budget), next: head})
	sh.index[h] = int32(len(sh.entries) - 1)
	sh.bytes += int64(len(enc)) + visitedEntryOverhead
}

func (v *spillVisited) novel(h uint64, enc []byte, budget int) bool {
	sh := &v.shards[h&(visitedShards-1)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if b, ok := sh.memLookup(h, enc); ok {
		return int(b) < budget
	}
	if len(sh.runs) == 0 {
		return true
	}
	rd := v.getReader()
	b, ok := sh.lookupRuns(h, enc, rd)
	v.putReader(rd)
	if ok {
		return int(b) < budget
	}
	return true
}

func (v *spillVisited) insert(h uint64, enc []byte, budget int) bool {
	sh := &v.shards[h&(visitedShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if i, ok := sh.index[h]; ok {
		for i >= 0 {
			e := &sh.entries[i]
			if bytes.Equal(e.enc, enc) {
				if int(e.budget) >= budget {
					return false
				}
				e.budget = int32(budget)
				return true
			}
			i = e.next
		}
	}
	found := false
	if len(sh.runs) > 0 {
		rd := v.getReader()
		b, ok := sh.lookupRuns(h, enc, rd)
		v.putReader(rd)
		if ok {
			if int(b) >= budget {
				return false
			}
			// Budget upgrade of a spilled encoding: the new record lives in
			// memory and shadows the run copy at every future probe.
			found = true
		}
	}
	sh.addEntry(h, enc, budget)
	if !found {
		sh.distinct++
	}
	if sh.bytes > v.perShard && len(sh.entries) >= spillMinSpillEntries {
		v.spill(sh)
		if len(sh.runs) > spillMaxRuns {
			v.compact(sh)
		}
	}
	return true
}

// spill sorts the shard's resident entries by (digest, encoding) and
// writes them as one new run, then resets the in-memory portion. Caller
// holds the write lock.
func (v *spillVisited) spill(sh *spillShard) {
	sort.Slice(sh.entries, func(i, j int) bool {
		a, b := &sh.entries[i], &sh.entries[j]
		if a.h != b.h {
			return a.h < b.h
		}
		return bytes.Compare(a.enc, b.enc) < 0
	})
	f, err := os.CreateTemp(v.dir, "run-*.spill")
	if err != nil {
		panic(fmt.Sprintf("mcheck: spill backend: creating run file: %v", err))
	}
	w := newRunWriter(f)
	for i := range sh.entries {
		e := &sh.entries[i]
		w.add(e.h, e.enc, e.budget)
	}
	run := w.finish()
	sh.runs = append(sh.runs, run)
	sh.runBytes += run.size
	sh.runEntries += int64(run.count)
	sh.fenceBytes += int64(len(run.fence)) * spillFenceOverhead
	for k := range sh.index {
		delete(sh.index, k)
	}
	sh.entries = sh.entries[:0]
	sh.bytes = 0
}

// compact k-way-merges every run of the shard into one, keeping the
// newest record of each (digest, encoding) and dropping superseded
// duplicates. Caller holds the write lock.
func (v *spillVisited) compact(sh *spillShard) {
	cursors := make([]*runCursor, len(sh.runs))
	for i, r := range sh.runs {
		cursors[i] = newRunCursor(r)
		cursors[i].next() // prime; every run has >= 1 entry
	}
	f, err := os.CreateTemp(v.dir, "run-*.spill")
	if err != nil {
		panic(fmt.Sprintf("mcheck: spill backend: creating compaction file: %v", err))
	}
	w := newRunWriter(f)
	var keyEnc []byte
	for {
		// Pick the smallest live (h, enc); among equal keys the newest run
		// (highest index) wins and the stale copies are skipped.
		best := -1
		for i, c := range cursors {
			if c.done {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			b := cursors[best]
			if c.h < b.h || (c.h == b.h && bytes.Compare(c.cur, b.cur) < 0) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		// Newest-wins among duplicates: scan above best for the same key.
		winner := best
		for i := best + 1; i < len(cursors); i++ {
			c := cursors[i]
			if !c.done && c.h == cursors[best].h && bytes.Equal(c.cur, cursors[best].cur) {
				winner = i
			}
		}
		// Snapshot the key before advancing anything: every cursor's cur is
		// scratch that mutates on next(), and comparing later cursors
		// against an already-advanced winner would skip their next key.
		keyH := cursors[winner].h
		keyEnc = append(keyEnc[:0], cursors[winner].cur...)
		w.add(keyH, keyEnc, cursors[winner].budget)
		for i := best; i < len(cursors); i++ {
			c := cursors[i]
			if !c.done && c.h == keyH && bytes.Equal(c.cur, keyEnc) {
				c.next()
			}
		}
	}
	merged := w.finish()
	for _, r := range sh.runs {
		name := r.f.Name()
		r.f.Close()
		os.Remove(name)
	}
	sh.runs = append(sh.runs[:0], merged)
	sh.runBytes = merged.size
	sh.runEntries = int64(merged.count)
	sh.fenceBytes = int64(len(merged.fence)) * spillFenceOverhead
	v.compactions++
}

func (v *spillVisited) size() int {
	n := 0
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.RLock()
		n += sh.distinct
		sh.mu.RUnlock()
	}
	return n
}

func (v *spillVisited) shardSizes(buf []int) []int {
	buf = sizeBuf(buf)
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.RLock()
		buf[i] = sh.distinct
		sh.mu.RUnlock()
	}
	return buf
}

func (v *spillVisited) stats(st *VisitedStats) {
	*st = VisitedStats{Backend: "spill", Compactions: v.compactions}
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.RLock()
		st.Entries += sh.distinct
		st.Bytes += sh.bytes + sh.fenceBytes
		if sh.distinct > st.PeakShardEntries {
			st.PeakShardEntries = sh.distinct
		}
		st.SpillBytes += sh.runBytes
		st.SpillRuns += len(sh.runs)
		st.SpilledEntries += sh.runEntries
		sh.mu.RUnlock()
	}
}

func (v *spillVisited) close() {
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.Lock()
		for _, r := range sh.runs {
			r.f.Close()
		}
		sh.runs = nil
		sh.mu.Unlock()
	}
	os.RemoveAll(v.dir)
}

func (v *spillVisited) getReader() *runReader {
	if x := v.readers.Get(); x != nil {
		return x.(*runReader)
	}
	return &runReader{}
}

func (v *spillVisited) putReader(rd *runReader) { v.readers.Put(rd) }

// --- run file format ---------------------------------------------------
//
// A run is a sequence of blocks of up to spillBlockEntries entries, each
// entry:
//
//	uvarint digest delta (block-first entry: the full digest)
//	uvarint budget
//	uvarint shared   (prefix length shared with the previous entry; 0 at
//	                  a block start)
//	uvarint suffixLen, then suffixLen encoding bytes
//
// Entries are sorted by (digest, encoding), so digest deltas are
// non-negative and neighbouring state encodings — which differ in a few
// trailing counters far more often than anywhere else under a sorted
// digest tie — compress against each other. The fence index holds one
// (digest, offset) pair per block.

type runWriter struct {
	f      *os.File
	bw     *bufio.Writer
	fence  []runFence
	count  int
	blockN int
	off    int64
	prevH  uint64
	prev   []byte
	tmp    [binary.MaxVarintLen64]byte
}

func newRunWriter(f *os.File) *runWriter {
	return &runWriter{f: f, bw: bufio.NewWriter(f)}
}

func (w *runWriter) uvarint(x uint64) {
	n := binary.PutUvarint(w.tmp[:], x)
	if _, err := w.bw.Write(w.tmp[:n]); err != nil {
		panic(fmt.Sprintf("mcheck: spill backend: writing run: %v", err))
	}
	w.off += int64(n)
}

func (w *runWriter) add(h uint64, enc []byte, budget int32) {
	if w.blockN == spillBlockEntries {
		w.blockN = 0
	}
	if w.blockN == 0 {
		w.fence = append(w.fence, runFence{h: h, off: w.off})
		w.prevH = 0
		w.prev = w.prev[:0]
	}
	w.uvarint(h - w.prevH)
	w.uvarint(uint64(budget))
	shared := 0
	for shared < len(w.prev) && shared < len(enc) && w.prev[shared] == enc[shared] {
		shared++
	}
	w.uvarint(uint64(shared))
	w.uvarint(uint64(len(enc) - shared))
	if _, err := w.bw.Write(enc[shared:]); err != nil {
		panic(fmt.Sprintf("mcheck: spill backend: writing run: %v", err))
	}
	w.off += int64(len(enc) - shared)
	w.prevH = h
	w.prev = append(w.prev[:0], enc...)
	w.blockN++
	w.count++
}

func (w *runWriter) finish() *spillRun {
	if err := w.bw.Flush(); err != nil {
		panic(fmt.Sprintf("mcheck: spill backend: flushing run: %v", err))
	}
	return &spillRun{f: w.f, size: w.off, fence: w.fence, count: w.count}
}

// runReader is the pooled per-lookup scratch: one block buffer and one
// entry-reconstruction buffer.
type runReader struct {
	block []byte
	cur   []byte
}

// lookup finds (h, enc) in the run. The fence index narrows the scan to
// the block run of candidate digests; blocks are fetched with positioned
// reads, so concurrent lookups share the immutable file safely.
func (r *spillRun) lookup(h uint64, enc []byte, rd *runReader) (int32, bool) {
	bi := sort.Search(len(r.fence), func(i int) bool { return r.fence[i].h > h }) - 1
	if bi < 0 {
		return 0, false
	}
	// Equal digests can span a block boundary; back up over blocks that
	// START at h, since the sequence may begin in an earlier one.
	for bi > 0 && r.fence[bi].h == h {
		bi--
	}
	for ; bi < len(r.fence); bi++ {
		if r.fence[bi].h > h {
			return 0, false
		}
		start := r.fence[bi].off
		end := r.size
		if bi+1 < len(r.fence) {
			end = r.fence[bi+1].off
		}
		if int64(cap(rd.block)) < end-start {
			rd.block = make([]byte, end-start)
		}
		rd.block = rd.block[:end-start]
		if _, err := r.f.ReadAt(rd.block, start); err != nil {
			panic(fmt.Sprintf("mcheck: spill backend: reading run block: %v", err))
		}
		pos := 0
		var prevH uint64
		rd.cur = rd.cur[:0]
		for pos < len(rd.block) {
			dh, n := binary.Uvarint(rd.block[pos:])
			pos += n
			budget, n := binary.Uvarint(rd.block[pos:])
			pos += n
			shared, n := binary.Uvarint(rd.block[pos:])
			pos += n
			slen, n := binary.Uvarint(rd.block[pos:])
			pos += n
			if n <= 0 || pos+int(slen) > len(rd.block) || int(shared) > len(rd.cur) {
				panic("mcheck: spill backend: corrupt run block")
			}
			eh := prevH + dh
			rd.cur = append(rd.cur[:shared], rd.block[pos:pos+int(slen)]...)
			pos += int(slen)
			prevH = eh
			if eh > h {
				return 0, false
			}
			if eh == h && bytes.Equal(rd.cur, enc) {
				return int32(budget), true
			}
		}
	}
	return 0, false
}

// runCursor streams a run's entries in order for compaction.
type runCursor struct {
	br     *bufio.Reader
	left   int
	blockN int
	prevH  uint64
	h      uint64
	budget int32
	cur    []byte
	done   bool
}

func newRunCursor(r *spillRun) *runCursor {
	if _, err := r.f.Seek(0, 0); err != nil {
		panic(fmt.Sprintf("mcheck: spill backend: seeking run: %v", err))
	}
	return &runCursor{br: bufio.NewReader(r.f), left: r.count}
}

func (c *runCursor) next() bool {
	if c.left == 0 {
		c.done = true
		return false
	}
	c.left--
	if c.blockN == spillBlockEntries {
		c.blockN = 0
	}
	if c.blockN == 0 {
		c.prevH = 0
		c.cur = c.cur[:0]
	}
	read := func() uint64 {
		x, err := binary.ReadUvarint(c.br)
		if err != nil {
			panic(fmt.Sprintf("mcheck: spill backend: reading run for compaction: %v", err))
		}
		return x
	}
	dh := read()
	budget := read()
	shared := read()
	slen := read()
	if int(shared) > len(c.cur) {
		panic("mcheck: spill backend: corrupt run during compaction")
	}
	c.cur = c.cur[:shared]
	for i := uint64(0); i < slen; i++ {
		b, err := c.br.ReadByte()
		if err != nil {
			panic(fmt.Sprintf("mcheck: spill backend: reading run for compaction: %v", err))
		}
		c.cur = append(c.cur, b)
	}
	c.h = c.prevH + dh
	c.prevH = c.h
	c.budget = int32(budget)
	c.blockN++
	return true
}
