package mcheck

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/waitfor"
)

// ringScenario: the canonical 4-node unidirectional ring with four two-hop
// messages — deadlock reachable under simultaneous injection.
func ringScenario(length int) sim.Scenario {
	net := topology.NewRing(4, false)
	sc := sim.Scenario{Name: "ring4", Net: net}
	for i := 0; i < 4; i++ {
		sc.Msgs = append(sc.Msgs, sim.MessageSpec{
			Src: topology.NodeID(i), Dst: topology.NodeID((i + 2) % 4),
			Length: length,
			Path:   []topology.ChannelID{topology.ChannelID(i), topology.ChannelID((i + 1) % 4)},
		})
	}
	return sc
}

// safeScenario: two messages on disjoint paths of a bidirectional ring —
// no interaction, no deadlock possible.
func safeScenario() sim.Scenario {
	net := topology.NewRing(4, true)
	cw01 := net.ChannelsBetween(0, 1)[0]
	cw23 := net.ChannelsBetween(2, 3)[0]
	return sim.Scenario{
		Name: "safe",
		Net:  net,
		Msgs: []sim.MessageSpec{
			{Src: 0, Dst: 1, Length: 2, Path: []topology.ChannelID{cw01}},
			{Src: 2, Dst: 3, Length: 2, Path: []topology.ChannelID{cw23}},
		},
	}
}

func TestSearchFindsRingDeadlock(t *testing.T) {
	res := Search(ringScenario(2), SearchOptions{})
	if res.Verdict != VerdictDeadlock {
		t.Fatalf("verdict = %v; want deadlock", res.Verdict)
	}
	if res.Deadlock == nil || len(res.Deadlock.Cycle) != 4 {
		t.Fatalf("deadlock = %v", res.Deadlock)
	}
	// The witness trace must replay to a state containing the same
	// deadlock configuration.
	s := Replay(ringScenario(2), res.Trace)
	if err := waitfor.Verify(s, res.Deadlock); err != nil {
		t.Fatalf("replayed witness invalid: %v", err)
	}
}

func TestSearchSafeScenarioNoDeadlock(t *testing.T) {
	res := Search(safeScenario(), SearchOptions{})
	if res.Verdict != VerdictNoDeadlock {
		t.Fatalf("verdict = %v; want no-deadlock", res.Verdict)
	}
	if res.States < 2 {
		t.Fatalf("states = %d; search did not explore", res.States)
	}
}

func TestSearchSafeScenarioWithStallBudget(t *testing.T) {
	// Stalls cannot create a deadlock when paths never share channels.
	res := Search(safeScenario(), SearchOptions{StallBudget: 3})
	if res.Verdict != VerdictNoDeadlock {
		t.Fatalf("verdict = %v; want no-deadlock", res.Verdict)
	}
}

func TestSearchExhaustion(t *testing.T) {
	res := Search(ringScenario(2), SearchOptions{MaxStates: 2})
	if res.Verdict != VerdictExhausted {
		t.Fatalf("verdict = %v; want exhausted", res.Verdict)
	}
}

func TestSearchSingleFlitRing(t *testing.T) {
	// Single-flit messages still deadlock on the ring.
	res := Search(ringScenario(1), SearchOptions{})
	if res.Verdict != VerdictDeadlock {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestSearchHonorsPartialInjection(t *testing.T) {
	// Only three of the four ring messages: a 3-member cycle cannot close
	// on a 4-ring (message i+1's first channel is message i's second, so
	// with one message absent some message's second channel stays free —
	// its owner drains and the rest follow).
	sc := ringScenario(2)
	sc.Msgs = sc.Msgs[:3]
	res := Search(sc, SearchOptions{})
	if res.Verdict != VerdictNoDeadlock {
		t.Fatalf("verdict = %v; want no-deadlock with three messages", res.Verdict)
	}
}

func TestSweepFindsRingDeadlock(t *testing.T) {
	res := Sweep(ringScenario(2), SweepOptions{Window: 2})
	if res.Deadlocks == 0 || res.First == nil {
		t.Fatalf("sweep found no deadlock: %+v", res)
	}
	if res.Runs != 16 { // 2^4 schedules x 1 arbiter
		t.Fatalf("runs = %d; want 16", res.Runs)
	}
	if res.First.Deadlock == nil {
		t.Fatal("witness missing Definition 6 cycle")
	}
	if !strings.Contains(res.First.String(), "inject=") {
		t.Fatalf("witness String = %q", res.First.String())
	}
	// Replay the witness schedule directly.
	run := ringScenario(2).WithInjectTimes(res.First.InjectTimes).WithLengths(res.First.Lengths)
	out := run.NewSim().Run(10_000)
	if out.Result != sim.ResultDeadlock {
		t.Fatalf("witness schedule does not deadlock: %v", out.Result)
	}
}

func TestSweepSafeScenario(t *testing.T) {
	res := Sweep(safeScenario(), SweepOptions{Window: 3, Arbiters: AllPriorityArbiters(2)})
	if res.Deadlocks != 0 {
		t.Fatalf("safe scenario deadlocked: %+v", res.First)
	}
	if res.Runs != 9*2 {
		t.Fatalf("runs = %d; want 18", res.Runs)
	}
}

func TestSweepLengthBands(t *testing.T) {
	sc := ringScenario(1)
	res := Sweep(sc, SweepOptions{Window: 1, Lengths: [][]int{{1, 2}, {1, 2}}})
	// 2 lengths for messages 0 and 1, 1 each for 2 and 3 => 4 runs.
	if res.Runs != 4 {
		t.Fatalf("runs = %d; want 4", res.Runs)
	}
	if res.Deadlocks != 4 {
		t.Fatalf("deadlocks = %d; all simultaneous ring schedules deadlock", res.Deadlocks)
	}
}

func TestAllPriorityArbiters(t *testing.T) {
	if got := len(AllPriorityArbiters(3)); got != 6 {
		t.Fatalf("3! = %d; want 6", got)
	}
	if got := len(AllPriorityArbiters(1)); got != 1 {
		t.Fatalf("1! = %d; want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n > 6")
		}
	}()
	AllPriorityArbiters(7)
}

func TestSubsetEnumeration(t *testing.T) {
	// Ascending bitmask order: {}, {1}, {2}, {1,2}.
	var got [][]int
	ids := []int{1, 2}
	for mask := 0; mask < 1<<len(ids); mask++ {
		got = append(got, subsetInto(nil, ids, mask))
	}
	if len(got) != 4 {
		t.Fatalf("subsets = %v", got)
	}
	if len(got[0]) != 0 {
		t.Fatal("first subset should be empty")
	}
	if len(got[1]) != 1 || got[1][0] != 1 {
		t.Fatalf("second subset = %v; want [1]", got[1])
	}
	if len(got[3]) != 2 {
		t.Fatalf("last subset = %v; want [1 2]", got[3])
	}
}

func TestPickEnumeration(t *testing.T) {
	cons := []sim.Contention{
		{Channel: 1, Contenders: []int{0, 1}},
		{Channel: 2, Contenders: []int{2, 3, 4}},
	}
	e := &decisionEnum{picks: make(map[topology.ChannelID]int)}
	seen := make(map[string]bool)
	n := 0
	e.pickLoop(cons, nil, func(d *Decision) bool {
		n++
		key := ""
		for ch := topology.ChannelID(1); ch <= 2; ch++ {
			key += string(rune('0' + d.Picks[ch]))
		}
		seen[key] = true
		return true
	})
	if n != 6 {
		t.Fatalf("combos = %d; want 6", n)
	}
	if len(seen) != 6 {
		t.Fatalf("combos not distinct: %v", seen)
	}
	// The first contested channel varies fastest (canonical order).
	first := ""
	e.pickLoop(cons, nil, func(d *Decision) bool {
		first = string(rune('0'+d.Picks[1])) + string(rune('0'+d.Picks[2]))
		return false
	})
	if first != "02" {
		t.Fatalf("first combo = %q; want picks {1:0, 2:2}", first)
	}
	// With no contentions, a single decision with nil picks.
	n = 0
	e.pickLoop(nil, nil, func(d *Decision) bool {
		n++
		if d.Picks != nil {
			t.Fatalf("empty contentions yielded picks %v", d.Picks)
		}
		return true
	})
	if n != 1 {
		t.Fatalf("empty contentions yielded %d decisions; want 1", n)
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictNoDeadlock.String() != "no-deadlock" ||
		VerdictDeadlock.String() != "deadlock" ||
		VerdictExhausted.String() != "exhausted" {
		t.Fatal("verdict strings wrong")
	}
	if Verdict(9).String() == "" {
		t.Fatal("unknown verdict should render")
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	s := Replay(safeScenario(), nil)
	if s.NumMessages() != 2 {
		t.Fatal("replay should instantiate the scenario")
	}
	// All messages held at the root state.
	if !s.Held(0) || !s.Held(1) {
		t.Fatal("root state should hold every message")
	}
}

func TestSweepParallelMatchesSequential(t *testing.T) {
	sc := ringScenario(2)
	seq := Sweep(sc, SweepOptions{Window: 3})
	par := Sweep(sc, SweepOptions{Window: 3, Parallelism: 4})
	if seq.Runs != par.Runs || seq.Deadlocks != par.Deadlocks {
		t.Fatalf("sequential %+v vs parallel %+v", seq, par)
	}
	if (seq.First == nil) != (par.First == nil) {
		t.Fatal("witness presence differs")
	}
	if seq.First != nil {
		for i := range seq.First.InjectTimes {
			if seq.First.InjectTimes[i] != par.First.InjectTimes[i] {
				t.Fatalf("first witness differs: %v vs %v", seq.First.InjectTimes, par.First.InjectTimes)
			}
		}
		if seq.First.ArbiterIdx != par.First.ArbiterIdx {
			t.Fatal("first witness arbiter differs")
		}
	}
}
