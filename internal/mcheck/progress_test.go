package mcheck

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
)

// emptyScenario has a network but no messages: the search's whole state
// space is the root state.
func emptyScenario() sim.Scenario {
	return sim.Scenario{Name: "empty", Net: topology.NewRing(4, false)}
}

// A search over zero messages explores exactly the root state and still
// reports progress exactly once — the final report, with the real totals.
func TestProgressEmptyScenario(t *testing.T) {
	var calls []ProgressInfo
	res := Search(emptyScenario(), SearchOptions{
		Progress: func(p ProgressInfo) { calls = append(calls, p) },
	})
	if res.Verdict != VerdictNoDeadlock {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.States != 1 {
		t.Fatalf("states = %d, want 1", res.States)
	}
	if len(calls) != 1 {
		t.Fatalf("progress calls = %d, want exactly the final report", len(calls))
	}
	if calls[0].States != res.States {
		t.Errorf("final report states = %d, result states = %d", calls[0].States, res.States)
	}
}

// A search that finishes before the first throttle tick still delivers
// exactly one Progress call: the final report with the result's totals.
func TestProgressFinishBeforeFirstTick(t *testing.T) {
	var calls []ProgressInfo
	res := Search(ringScenario(2), SearchOptions{
		ProgressEvery: time.Hour,
		Progress:      func(p ProgressInfo) { calls = append(calls, p) },
	})
	if len(calls) != 1 {
		t.Fatalf("progress calls = %d, want 1 (finish-before-first-tick)", len(calls))
	}
	if calls[0].States != res.States {
		t.Errorf("final report states = %d, result states = %d", calls[0].States, res.States)
	}
	if res.Warnings != nil {
		t.Errorf("unexpected warnings: %v", res.Warnings)
	}
}

// With an aggressive tick the per-level reports must show monotonically
// non-decreasing state counts, ending on the exact final total.
func TestProgressStatesMonotonic(t *testing.T) {
	var calls []ProgressInfo
	res := Search(ringScenario(2), SearchOptions{
		ProgressEvery: time.Nanosecond,
		Progress:      func(p ProgressInfo) { calls = append(calls, p) },
	})
	if len(calls) < 2 {
		t.Fatalf("progress calls = %d, want per-level reports", len(calls))
	}
	for i := 1; i < len(calls); i++ {
		if calls[i].States < calls[i-1].States {
			t.Fatalf("states regressed: call %d = %d, call %d = %d",
				i-1, calls[i-1].States, i, calls[i].States)
		}
	}
	if last := calls[len(calls)-1]; last.States != res.States {
		t.Errorf("last report states = %d, result states = %d", last.States, res.States)
	}
}

// A panicking Progress callback must not change the verdict or the state
// count: the panic is contained, reporting stops, and the result carries
// exactly one warning.
func TestProgressCallbackPanicContained(t *testing.T) {
	baseline := Search(ringScenario(2), SearchOptions{})

	calls := 0
	res := Search(ringScenario(2), SearchOptions{
		ProgressEvery: time.Nanosecond,
		Progress: func(ProgressInfo) {
			calls++
			panic("observer bug")
		},
	})
	if res.Verdict != baseline.Verdict || res.States != baseline.States {
		t.Fatalf("panicking callback changed the result: %v/%d vs %v/%d",
			res.Verdict, res.States, baseline.Verdict, baseline.States)
	}
	if calls != 1 {
		t.Errorf("callback ran %d times after panicking, want 1 (disabled after first panic)", calls)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "panicked") {
		t.Errorf("warnings = %v, want one panic warning", res.Warnings)
	}
}

// A panic on the final report (the only one, with a huge tick) is
// contained the same way.
func TestProgressFinalCallPanicContained(t *testing.T) {
	baseline := Search(ringScenario(2), SearchOptions{})
	res := Search(ringScenario(2), SearchOptions{
		ProgressEvery: time.Hour,
		Progress:      func(ProgressInfo) { panic("final-report bug") },
	})
	if res.Verdict != baseline.Verdict || res.States != baseline.States {
		t.Fatalf("panicking final report changed the result: %v/%d vs %v/%d",
			res.Verdict, res.States, baseline.Verdict, baseline.States)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "panicked") {
		t.Errorf("warnings = %v, want one panic warning", res.Warnings)
	}
}
