package mcheck

import (
	"testing"

	"repro/internal/papernets"
	"repro/internal/sim"
	"repro/internal/waitfor"
)

// Seed-engine golden anchors: verdicts and exhaustive state counts the
// pre-arena (map-per-cycle) simulator produced for the paper scenarios, as
// committed in BENCH_mcheck.json at the time of the hot-path refactor. The
// arena-based simulator must reproduce every one exactly — state counts
// are a strong fingerprint of the whole transition relation, so a single
// drifted count means the refactor changed simulation semantics, not just
// its memory layout.
type goldenCase struct {
	name    string
	sc      sim.Scenario
	opts    SearchOptions
	verdict Verdict
	states  int
	heavy   bool // skipped with -short
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{name: "figure1", sc: papernets.Figure1().Scenario,
			verdict: VerdictNoDeadlock, states: 2996},
		{name: "figure1-skew1", sc: papernets.Figure1().Scenario,
			opts:    SearchOptions{StallBudget: 1, FreezeInTransitOnly: true},
			verdict: VerdictDeadlock, states: 4768, heavy: true},
		{name: "figure2", sc: papernets.Figure2().Scenario,
			verdict: VerdictDeadlock, states: 57},
		{name: "gen2-stall2", sc: papernets.GenK(2).Scenario,
			opts:    SearchOptions{StallBudget: 2, FreezeInTransitOnly: true},
			verdict: VerdictDeadlock, states: 8385, heavy: true},
		{name: "gen3-stall3", sc: papernets.GenK(3).Scenario,
			opts:    SearchOptions{StallBudget: 3, FreezeInTransitOnly: true},
			verdict: VerdictDeadlock, heavy: true}, // count asserted across workers only
		{name: "gen4-stall4", sc: papernets.GenK(4).Scenario,
			opts:    SearchOptions{StallBudget: 4, FreezeInTransitOnly: true},
			verdict: VerdictDeadlock, states: 19733, heavy: true},
	}
}

// TestArenaGoldenStateCounts pins the arena-based engine to the seed
// engine's verdicts and state counts, sequentially and with Parallelism >
// 1 (the pooled CopyFrom path), so `go test -race` exercises the scratch
// arenas under the parallel expansion workers.
func TestArenaGoldenStateCounts(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("heavy golden case skipped in -short mode")
			}
			seq := Search(tc.sc, withWorkers(tc.opts, 1))
			if seq.Verdict != tc.verdict {
				t.Fatalf("sequential verdict %v, want %v", seq.Verdict, tc.verdict)
			}
			if tc.states != 0 && seq.States != tc.states {
				t.Fatalf("sequential states %d, seed engine recorded %d", seq.States, tc.states)
			}
			for _, workers := range []int{2, 4} {
				par := Search(tc.sc, withWorkers(tc.opts, workers))
				if par.Verdict != seq.Verdict || par.States != seq.States {
					t.Fatalf("workers=%d: (%v, %d states) != sequential (%v, %d states)",
						workers, par.Verdict, par.States, seq.Verdict, seq.States)
				}
			}
		})
	}
	// The six Figure 3 searches are anchored as a sum, matching the seed
	// engine's E5_Figure3_SearchAll row.
	t.Run("figure3-all", func(t *testing.T) {
		if testing.Short() {
			t.Skip("heavy golden case skipped in -short mode")
		}
		total := 0
		for l := byte('a'); l <= 'f'; l++ {
			total += Search(papernets.Figure3(l).Scenario, SearchOptions{Parallelism: 1}).States
		}
		if total != 8743 {
			t.Fatalf("figure3 a..f total states %d, seed engine recorded 8743", total)
		}
	})
}

func withWorkers(o SearchOptions, n int) SearchOptions {
	o.Parallelism = n
	return o
}

// TestArenaGoldenWitnessReplay re-checks that deadlock witnesses out of
// the arena-based engine still replay: the witness path drives a fresh
// simulator into a state the local-deadlock verifier confirms.
func TestArenaGoldenWitnessReplay(t *testing.T) {
	res := Search(papernets.Figure2().Scenario, SearchOptions{Parallelism: 4})
	if res.Verdict != VerdictDeadlock {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if len(res.Trace) == 0 {
		t.Fatal("deadlock verdict without a witness trace")
	}
	s := Replay(papernets.Figure2().Scenario, res.Trace)
	if err := waitfor.Verify(s, res.Deadlock); err != nil {
		t.Fatalf("witness replay failed: %v", err)
	}
}
