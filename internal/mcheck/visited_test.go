package mcheck

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"testing"
)

// allBackendStores builds one store per backend, hostile sizes (minimum
// Bloom filter, one-byte spill budget). Callers must close them.
func allBackendStores(t *testing.T) map[string]visitedStore {
	t.Helper()
	return map[string]visitedStore{
		"mem":      newVisitedSet(),
		"bitstate": newBloomVisited(1 << 16),
		"spill":    newSpillVisited(normalizeVisitedConfig(VisitedConfig{Backend: VisitedSpill, MemBudget: 1, SpillDir: t.TempDir()})),
	}
}

// TestVisitedDigestCollisions: two different encodings inserted under the
// SAME 64-bit digest must chain, not conflate — every backend verifies
// the full encoding bytes behind the digest.
func TestVisitedDigestCollisions(t *testing.T) {
	for name, st := range allBackendStores(t) {
		t.Run(name, func(t *testing.T) {
			defer st.close()
			const h = uint64(0xdeadbeefcafef00d)
			a := []byte("encoding-alpha")
			b := []byte("encoding-beta-longer")
			c := []byte("encoding-gamma")
			if !st.insert(h, a, 0) || !st.insert(h, b, 0) {
				t.Fatal("fresh colliding encodings rejected")
			}
			if st.novel(h, a, 0) || st.novel(h, b, 0) {
				t.Fatal("inserted encoding still novel")
			}
			if !st.novel(h, c, 0) {
				t.Fatal("distinct encoding conflated with a digest collision")
			}
			if st.insert(h, a, 0) {
				t.Fatal("re-inserting a chained encoding claimed novelty")
			}
			if st.size() != 2 {
				t.Fatalf("size = %d, want 2", st.size())
			}
		})
	}
}

// TestVisitedBudgetReexpansion: a state revisited with a strictly larger
// stall budget is novel again (it can reach successors the smaller budget
// could not), smaller or equal budgets never are — and a tightening never
// erases the recorded high-water budget.
func TestVisitedBudgetReexpansion(t *testing.T) {
	for name, st := range allBackendStores(t) {
		t.Run(name, func(t *testing.T) {
			defer st.close()
			enc := []byte("some-state-encoding")
			h := st.hash(enc)
			if !st.insert(h, enc, 2) {
				t.Fatal("fresh insert rejected")
			}
			if st.novel(h, enc, 1) || st.novel(h, enc, 2) {
				t.Fatal("smaller/equal budget reported novel")
			}
			if st.insert(h, enc, 1) {
				t.Fatal("budget-tightening insert claimed novelty")
			}
			if !st.novel(h, enc, 3) {
				t.Fatal("larger budget not novel")
			}
			if !st.insert(h, enc, 3) {
				t.Fatal("budget-raising insert rejected")
			}
			if st.novel(h, enc, 3) {
				t.Fatal("recorded budget did not rise to 3")
			}
			if st.size() != 1 {
				t.Fatalf("size = %d, want 1 (budget updates are not new entries)", st.size())
			}
		})
	}
}

// TestBitstateExactRecheck pins the soundness mechanism: a filter hit
// proves nothing and must fall through to the exact set. A probe with an
// inserted digest but different encoding bytes (a simulated 64-bit
// collision) must come back novel, and be counted as a measured false
// positive of the filter-as-oracle.
func TestBitstateExactRecheck(t *testing.T) {
	st := newBloomVisited(1 << 16)
	enc := []byte("state-one")
	h := st.hash(enc)
	st.insert(h, enc, 0)

	other := []byte("state-two")
	if !st.novel(h, other, 0) {
		t.Fatal("filter hit short-circuited the exact recheck")
	}
	var vs VisitedStats
	st.stats(&vs)
	if vs.BloomFalsePositives != 1 {
		t.Fatalf("false positives = %d, want exactly the collision probe", vs.BloomFalsePositives)
	}
	if st.novel(h, enc, 0) {
		t.Fatal("exact hit reported novel")
	}
	st.stats(&vs)
	if vs.BloomProbes != 2 || vs.BloomHits != 2 {
		t.Fatalf("probes/hits = %d/%d, want 2/2", vs.BloomProbes, vs.BloomHits)
	}
	if vs.BloomFPRate <= 0 || vs.BloomFPRate > 1 {
		t.Fatalf("FP rate = %v", vs.BloomFPRate)
	}
}

// TestSpillVisitedMatchesReference drives the spill backend with a
// deterministic random workload against a plain map model: thousands of
// entries under a one-byte budget, so every shard spills repeatedly and
// compacts several times, with budget upgrades mixed in throughout.
func TestSpillVisitedMatchesReference(t *testing.T) {
	st := newSpillVisited(normalizeVisitedConfig(VisitedConfig{
		Backend: VisitedSpill, MemBudget: 1, SpillDir: t.TempDir()}))
	defer st.close()

	rng := rand.New(rand.NewSource(7))
	model := make(map[string]int)
	var keys []string
	for i := 0; i < 20000; i++ {
		var enc []byte
		var budget int
		if len(keys) > 0 && rng.Intn(10) < 3 {
			enc = []byte(keys[rng.Intn(len(keys))])
			budget = rng.Intn(5)
		} else {
			enc = make([]byte, 8+rng.Intn(32))
			rng.Read(enc)
			budget = rng.Intn(5)
		}
		key := string(enc)
		old, seen := model[key]
		wantNew := !seen || old < budget
		h := st.hash(enc)
		if got := st.novel(h, enc, budget); got != wantNew {
			t.Fatalf("op %d: novel = %v, model says %v", i, got, wantNew)
		}
		if got := st.insert(h, enc, budget); got != wantNew {
			t.Fatalf("op %d: insert = %v, model says %v", i, got, wantNew)
		}
		if wantNew {
			if !seen {
				keys = append(keys, key)
			}
			model[key] = budget
		}
	}

	if st.size() != len(model) {
		t.Fatalf("size = %d, model has %d distinct encodings", st.size(), len(model))
	}
	// Every recorded encoding: not novel at its budget, novel just above.
	for _, key := range keys {
		enc := []byte(key)
		h := st.hash(enc)
		if st.novel(h, enc, model[key]) {
			t.Fatalf("recorded encoding novel at its own budget %d", model[key])
		}
		if !st.novel(h, enc, model[key]+1) {
			t.Fatalf("recorded encoding not novel above its budget")
		}
	}

	var vs VisitedStats
	st.stats(&vs)
	if vs.Backend != "spill" || vs.Entries != len(model) {
		t.Fatalf("stats = %+v, want spill/%d", vs, len(model))
	}
	if vs.SpillRuns <= 0 || vs.SpillBytes <= 0 || vs.SpilledEntries <= 0 {
		t.Fatalf("one-byte budget never spilled: %+v", vs)
	}
	if vs.Compactions <= 0 {
		t.Fatalf("20k entries over a one-byte budget never compacted: %+v", vs)
	}
	if vs.SpillRuns > visitedShards*(spillMaxRuns+1) {
		t.Fatalf("compaction is not bounding run count: %d runs", vs.SpillRuns)
	}
}

// TestSpillCloseRemovesFiles: close must leave nothing on disk.
func TestSpillCloseRemovesFiles(t *testing.T) {
	parent := t.TempDir()
	st := newSpillVisited(normalizeVisitedConfig(VisitedConfig{
		Backend: VisitedSpill, MemBudget: 1, SpillDir: parent}))
	for i := 0; i < 5000; i++ {
		enc := []byte(fmt.Sprintf("state-encoding-%06d", i))
		st.insert(st.hash(enc), enc, 0)
	}
	var vs VisitedStats
	st.stats(&vs)
	if vs.SpillRuns == 0 {
		t.Fatal("workload never spilled; close test is vacuous")
	}
	dir := st.dir
	st.close()
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill directory %s survives close (err=%v)", dir, err)
	}
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d entries left under the spill parent", len(ents))
	}
}

// TestFrontierBatchRoundTrip: the delta-encoded batch must return every
// entry byte-identically, in insertion order, both via the sequential
// iterator and via independent per-block iterators, and a reset builder
// must not leak state between levels.
func TestFrontierBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type entry struct {
		enc    []byte
		budget int
		node   int32
	}
	var bb batchBuilder
	for round := 0; round < 3; round++ {
		bb.reset()
		n := 1 + rng.Intn(200)
		entries := make([]entry, n)
		prefix := []byte("common-prefix-most-entries-share-")
		for i := range entries {
			var enc []byte
			if rng.Intn(4) > 0 {
				enc = append(append([]byte(nil), prefix...), byte(i), byte(i>>8))
			} else {
				enc = make([]byte, 1+rng.Intn(50))
				rng.Read(enc)
			}
			entries[i] = entry{enc: enc, budget: rng.Intn(10), node: int32(rng.Intn(1 << 20))}
			bb.add(enc, entries[i].budget, entries[i].node)
		}
		b := &bb.batch
		if b.count != n {
			t.Fatalf("round %d: count = %d, want %d", round, b.count, n)
		}

		var it batchIter
		it.seekAll(b)
		for i := 0; it.next(); i++ {
			if it.idx-1 != i {
				t.Fatalf("round %d: iterator index %d, want %d", round, it.idx-1, i)
			}
			e := entries[i]
			if !bytes.Equal(it.cur, e.enc) || it.budget != e.budget || it.node != e.node {
				t.Fatalf("round %d entry %d: decoded (%x,%d,%d), want (%x,%d,%d)",
					round, i, it.cur, it.budget, it.node, e.enc, e.budget, e.node)
			}
		}
		if it.idx != n {
			t.Fatalf("round %d: sequential iteration stopped at %d of %d", round, it.idx, n)
		}

		seen := 0
		for bi := 0; bi < b.blocks(); bi++ {
			var blk batchIter
			blk.seekBlock(b, bi)
			for blk.next() {
				e := entries[blk.idx-1]
				if !bytes.Equal(blk.cur, e.enc) || blk.budget != e.budget || blk.node != e.node {
					t.Fatalf("round %d block %d entry %d: decode mismatch", round, bi, blk.idx-1)
				}
				seen++
			}
		}
		if seen != n {
			t.Fatalf("round %d: block iteration covered %d of %d entries", round, seen, n)
		}
	}
}
