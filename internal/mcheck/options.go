package mcheck

import (
	"runtime"
	"time"

	"repro/internal/sim"
)

// normalizeParallelism resolves a worker-count option: non-positive means
// one worker per available CPU. Search and Sweep share this so the two
// engines can never drift on what "default parallelism" means.
func normalizeParallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// normalizeSearchOptions resolves every defaulted SearchOptions field and
// applies the scenario's reduction gating, so the engine proper can read
// the options verbatim and SearchResult can echo exactly what ran.
func normalizeSearchOptions(sc sim.Scenario, opts SearchOptions) SearchOptions {
	if opts.MaxStates <= 0 {
		opts.MaxStates = DefaultMaxStates
	}
	opts.Parallelism = normalizeParallelism(opts.Parallelism)
	if opts.ProgressEvery <= 0 {
		opts.ProgressEvery = 2 * time.Second
	}
	opts.Reduction = effectiveReduction(sc, opts.Reduction)
	return opts
}
