package mcheck

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/sim"
)

// normalizeParallelism resolves a worker-count option: non-positive means
// one worker per available CPU. Search and Sweep share this so the two
// engines can never drift on what "default parallelism" means.
func normalizeParallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// VisitedBackend selects the deduplication structure behind a search.
// Every backend is exact — verdicts, state counts and witnesses are
// byte-identical across backends at any worker count; they differ only in
// memory ceiling and constant factors. See visitedStore.
type VisitedBackend int

const (
	// VisitedMem is the in-memory reference backend (the default): a
	// sharded exact hash set holding every encoding on the heap.
	VisitedMem VisitedBackend = iota
	// VisitedBitstate puts a fixed-size double-hashed Bloom prefilter in
	// front of the exact set. Filter misses skip the shard-locked exact
	// probe; filter hits are always re-verified exactly, so unlike
	// classical bitstate hashing no state is ever dropped or conflated.
	VisitedBitstate
	// VisitedSpill bounds resident memory: shards that outgrow their byte
	// budget spill sorted, prefix-compressed runs to disk and are probed
	// there via fence indexes. Combine with CompressFrontier (forced on)
	// for a search whose resident set no longer scales with state count.
	VisitedSpill
)

// String renders the backend the way the -visited CLI flag spells it.
func (b VisitedBackend) String() string {
	switch b {
	case VisitedMem:
		return "mem"
	case VisitedBitstate:
		return "bitstate"
	case VisitedSpill:
		return "spill"
	}
	return fmt.Sprintf("VisitedBackend(%d)", int(b))
}

// Defaults for VisitedConfig's zero fields.
const (
	// DefaultVisitedMemBudget is the spill backend's total in-memory
	// byte budget when VisitedConfig.MemBudget is zero.
	DefaultVisitedMemBudget = 256 << 20
	// DefaultBloomBits sizes the bitstate filter when
	// VisitedConfig.BloomBits is zero: 2^26 bits = 8 MiB, comfortably
	// over 16 bits per state at DefaultMaxStates scale.
	DefaultBloomBits = 1 << 26
)

// VisitedConfig configures the visited-set backend of a search.
type VisitedConfig struct {
	// Backend selects the implementation; the zero value is VisitedMem.
	Backend VisitedBackend
	// MemBudget caps the spill backend's resident bytes across all shards
	// (run files and fence indexes excluded). 0 means
	// DefaultVisitedMemBudget. Ignored by the other backends.
	MemBudget int64
	// BloomBits sizes the bitstate filter in bits, rounded up to a power
	// of two. 0 means DefaultBloomBits. Ignored by the other backends.
	BloomBits int64
	// SpillDir is the parent directory for the spill backend's private
	// run-file directory. "" means the system temp directory.
	SpillDir string
	// CompressFrontier carries BFS frontiers as delta-encoded batches of
	// binary state encodings instead of live simulators, decoding each
	// entry in the workers. Forced on for the spill backend (otherwise the
	// frontier, not the visited set, is the memory ceiling) and forced off
	// when symmetry reduction runs (canonical encodings decode to permuted
	// representatives, which would change the traversal).
	CompressFrontier bool
}

// normalizeVisitedConfig resolves the defaulted fields and the
// backend-forced batching choice.
func normalizeVisitedConfig(cfg VisitedConfig) VisitedConfig {
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = DefaultVisitedMemBudget
	}
	if cfg.BloomBits <= 0 {
		cfg.BloomBits = DefaultBloomBits
	}
	if cfg.Backend == VisitedSpill {
		cfg.CompressFrontier = true
	}
	return cfg
}

// normalizeSearchOptions resolves every defaulted SearchOptions field and
// applies the scenario's reduction gating, so the engine proper can read
// the options verbatim and SearchResult can echo exactly what ran.
func normalizeSearchOptions(sc sim.Scenario, opts SearchOptions) SearchOptions {
	if opts.MaxStates <= 0 {
		opts.MaxStates = DefaultMaxStates
	}
	opts.Parallelism = normalizeParallelism(opts.Parallelism)
	if opts.ProgressEvery <= 0 {
		opts.ProgressEvery = 2 * time.Second
	}
	opts.Reduction = effectiveReduction(sc, opts.Reduction)
	opts.Visited = normalizeVisitedConfig(opts.Visited)
	return opts
}
