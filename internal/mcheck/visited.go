package mcheck

import (
	"bytes"
	"hash/maphash"
	"sync"
)

// visitedShards is the stripe count of the visited set. Power of two so the
// shard index is a mask; 64 stripes keep mutex contention negligible up to
// far more workers than GOMAXPROCS will reasonably be.
const visitedShards = 64

// visitedEntryOverhead approximates the resident cost of one entry beyond
// its encoding bytes: the entry struct (slice header + budget + chain
// link) plus the amortized shard-index slot. Accounting, not allocation —
// it only feeds the memory budget and the stats surface.
const visitedEntryOverhead = 48

// visitedStore is the deduplication structure behind the search engines,
// pluggable via SearchOptions.Visited. Every backend is exact: novel and
// insert answer precisely the same questions as the in-memory reference
// (collisions verified against full encodings, budgets compared with the
// same monotone rule), so verdicts, state counts and witnesses are
// byte-identical across backends. Backends differ only in where encodings
// reside (heap, Bloom-prefiltered heap, or disk runs) and therefore in
// memory ceiling and constant factors.
//
// Concurrency contract (inherited from the engine): novel may be called
// from many workers concurrently, but insert, stats, shardSizes, size and
// close only ever run on the single merge goroutine, strictly between
// expansion phases. Backends exploit this phase separation (e.g. the
// Bloom bit array takes no locks).
type visitedStore interface {
	// hash digests an encoding. Digests are only meaningful within one
	// search (the seed is per-store), which is all the visited set needs.
	hash(enc []byte) uint64
	// novel reports whether visiting the state (enc, budget) could still
	// reach anything new: the state is unseen, or was only seen with a
	// strictly smaller stall budget. Safe for concurrent use.
	novel(h uint64, enc []byte, budget int) bool
	// insert records (enc, budget) and reports whether it was new in the
	// novel sense — exactly the condition under which the search counts a
	// state and enqueues it.
	insert(h uint64, enc []byte, budget int) bool
	// size returns the number of distinct state encodings recorded.
	size() int
	// shardSizes fills buf (growing it if needed) with the distinct-entry
	// count of every shard, in shard order, and returns it. The caller
	// owns buf across calls, so the hot progress path never allocates.
	shardSizes(buf []int) []int
	// stats fills st with the store's accounting snapshot.
	stats(st *VisitedStats)
	// close releases backend resources (spill files). The store is
	// unusable afterwards.
	close()
}

// VisitedStats is the memory-accounting snapshot of a visited-set
// backend, surfaced in SearchResult, obsv gauges and the live /progress
// stream.
type VisitedStats struct {
	// Backend names the store that ran: "mem", "bitstate", "spill".
	Backend string
	// Entries is the number of distinct state encodings recorded.
	Entries int
	// Bytes is the store's resident memory: encodings + per-entry
	// overhead, plus the Bloom bit array and spill fence indexes where
	// applicable. Spilled run bytes live on disk and are NOT included.
	Bytes int64
	// PeakShardEntries is the largest per-shard distinct-entry count (the
	// high-water mark; entries are never removed, so peak = current max).
	PeakShardEntries int

	// Bloom prefilter accounting (bitstate backend only). A false
	// positive is a filter hit whose exact re-check finds no matching
	// encoding — the case the exact recheck exists for.
	BloomProbes         int64
	BloomHits           int64
	BloomFalsePositives int64
	// BloomFPRate is BloomFalsePositives / BloomProbes (0 when unused).
	BloomFPRate float64

	// Spill accounting (spill backend only).
	SpillBytes     int64 // bytes currently in on-disk run files
	SpillRuns      int   // run files currently live
	SpilledEntries int64 // entries currently residing in runs
	Compactions    int   // run-compaction passes performed
}

// visitedSet is the in-memory reference backend: a sharded hash map from
// a 64-bit maphash digest of a state's binary encoding to the best stall
// budget the state has been reached with. Each entry keeps the full
// encoding bytes as a collision-verification slot — two distinct states
// that collide on the 64-bit digest are chained, never conflated, so the
// search stays exact. Shards are guarded by striped RW mutexes: the
// parallel expansion phase performs lock-shared lookups from every worker,
// while insertions happen only in the single-threaded per-level merge.
type visitedSet struct {
	seed   maphash.Seed
	shards [visitedShards]visitedShard
}

type visitedShard struct {
	mu sync.RWMutex
	// index maps a digest to the head of its entry chain.
	index   map[uint64]int32
	entries []visitedEntry
	bytes   int64 // encodings + visitedEntryOverhead per entry
}

// visitedEntry records one distinct state encoding.
type visitedEntry struct {
	enc    []byte // canonical bytes; verifies the 64-bit digest match
	budget int32  // best (largest) remaining stall budget seen
	next   int32  // next entry with the same digest, -1 at chain end
}

func newVisitedSet() *visitedSet {
	v := &visitedSet{seed: maphash.MakeSeed()}
	for i := range v.shards {
		v.shards[i].index = make(map[uint64]int32)
	}
	return v
}

func (v *visitedSet) hash(enc []byte) uint64 {
	return maphash.Bytes(v.seed, enc)
}

// lookup returns the recorded budget for (h, enc), reporting whether the
// encoding is present at all. Callers hold no lock; lookup takes the
// shard read lock itself.
func (v *visitedSet) lookup(h uint64, enc []byte) (int, bool) {
	sh := &v.shards[h&(visitedShards-1)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	i, ok := sh.index[h]
	for ok && i >= 0 {
		e := &sh.entries[i]
		if bytes.Equal(e.enc, enc) {
			return int(e.budget), true
		}
		i = e.next
	}
	return 0, false
}

func (v *visitedSet) novel(h uint64, enc []byte, budget int) bool {
	b, ok := v.lookup(h, enc)
	return !ok || b < budget
}

// insert records (enc, budget): reached-again states with a larger budget
// update in place (and still count as new: they can reach successors the
// smaller budget could not). Only the per-level merge calls insert, so
// insertion order — and with it every verdict, count and witness — is
// deterministic.
func (v *visitedSet) insert(h uint64, enc []byte, budget int) bool {
	sh := &v.shards[h&(visitedShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	head, ok := sh.index[h]
	if ok {
		for i := head; i >= 0; {
			e := &sh.entries[i]
			if bytes.Equal(e.enc, enc) {
				if int(e.budget) >= budget {
					return false
				}
				e.budget = int32(budget)
				return true
			}
			i = e.next
		}
	} else {
		head = -1
	}
	sh.entries = append(sh.entries, visitedEntry{enc: enc, budget: int32(budget), next: head})
	sh.index[h] = int32(len(sh.entries) - 1)
	sh.bytes += int64(len(enc)) + visitedEntryOverhead
	return true
}

// shardSizes reports the entry count of every shard into the caller's
// buffer. The metrics layer exports it as a load histogram: a healthy
// maphash spread keeps the shards within a small factor of each other.
func (v *visitedSet) shardSizes(buf []int) []int {
	buf = sizeBuf(buf)
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.RLock()
		buf[i] = len(sh.entries)
		sh.mu.RUnlock()
	}
	return buf
}

func (v *visitedSet) size() int {
	n := 0
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

func (v *visitedSet) stats(st *VisitedStats) {
	*st = VisitedStats{Backend: "mem"}
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.RLock()
		n := len(sh.entries)
		st.Entries += n
		st.Bytes += sh.bytes
		if n > st.PeakShardEntries {
			st.PeakShardEntries = n
		}
		sh.mu.RUnlock()
	}
}

func (v *visitedSet) close() {}

// sizeBuf resizes a shard-size buffer to exactly visitedShards slots,
// reusing its backing array when capacity allows.
func sizeBuf(buf []int) []int {
	if cap(buf) < visitedShards {
		return make([]int, visitedShards)
	}
	return buf[:visitedShards]
}

// newVisitedStore builds the backend a normalized VisitedConfig selects.
func newVisitedStore(cfg VisitedConfig) visitedStore {
	switch cfg.Backend {
	case VisitedBitstate:
		return newBloomVisited(cfg.BloomBits)
	case VisitedSpill:
		return newSpillVisited(cfg)
	default:
		return newVisitedSet()
	}
}
