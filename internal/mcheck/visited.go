package mcheck

import (
	"bytes"
	"hash/maphash"
	"sync"
)

// visitedShards is the stripe count of the visited set. Power of two so the
// shard index is a mask; 64 stripes keep mutex contention negligible up to
// far more workers than GOMAXPROCS will reasonably be.
const visitedShards = 64

// visitedSet is the search's deduplication structure: a sharded hash map
// from a 64-bit maphash digest of a state's binary encoding to the best
// stall budget the state has been reached with. Each entry keeps the full
// encoding bytes as a collision-verification slot — two distinct states
// that collide on the 64-bit digest are chained, never conflated, so the
// search stays exact. Shards are guarded by striped RW mutexes: the
// parallel expansion phase performs lock-shared lookups from every worker,
// while insertions happen only in the single-threaded per-level merge.
type visitedSet struct {
	seed   maphash.Seed
	shards [visitedShards]visitedShard
}

type visitedShard struct {
	mu sync.RWMutex
	// index maps a digest to the head of its entry chain.
	index   map[uint64]int32
	entries []visitedEntry
}

// visitedEntry records one distinct state encoding.
type visitedEntry struct {
	enc    []byte // canonical bytes; verifies the 64-bit digest match
	budget int32  // best (largest) remaining stall budget seen
	next   int32  // next entry with the same digest, -1 at chain end
}

func newVisitedSet() *visitedSet {
	v := &visitedSet{seed: maphash.MakeSeed()}
	for i := range v.shards {
		v.shards[i].index = make(map[uint64]int32)
	}
	return v
}

// hash digests an encoding. Digests are only meaningful within one search
// (the seed is per-set), which is all the visited set needs.
func (v *visitedSet) hash(enc []byte) uint64 {
	return maphash.Bytes(v.seed, enc)
}

// novel reports whether visiting the state (enc, budget) could still reach
// anything new: the state is unseen, or was only seen with a strictly
// smaller stall budget. Safe for concurrent use; the expansion workers use
// it to discard duplicate successors before paying for their retention.
func (v *visitedSet) novel(h uint64, enc []byte, budget int) bool {
	sh := &v.shards[h&(visitedShards-1)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	i, ok := sh.index[h]
	for ok && i >= 0 {
		e := &sh.entries[i]
		if bytes.Equal(e.enc, enc) {
			return int(e.budget) < budget
		}
		i = e.next
	}
	return true
}

// insert records (enc, budget) and reports whether it was new in the novel
// sense — exactly the condition under which the search counts a state and
// enqueues it. Reached-again states with a larger budget update in place
// (and still count: they can reach successors the smaller budget could
// not). Only the per-level merge calls insert, so insertion order — and
// with it every verdict, count and witness — is deterministic.
func (v *visitedSet) insert(h uint64, enc []byte, budget int) bool {
	sh := &v.shards[h&(visitedShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	head, ok := sh.index[h]
	if ok {
		for i := head; i >= 0; {
			e := &sh.entries[i]
			if bytes.Equal(e.enc, enc) {
				if int(e.budget) >= budget {
					return false
				}
				e.budget = int32(budget)
				return true
			}
			i = e.next
		}
	} else {
		head = -1
	}
	sh.entries = append(sh.entries, visitedEntry{enc: enc, budget: int32(budget), next: head})
	sh.index[h] = int32(len(sh.entries) - 1)
	return true
}

// shardSizes returns the entry count of every shard, in shard order. The
// metrics layer exports it as a load histogram: a healthy maphash spread
// keeps the shards within a small factor of each other.
func (v *visitedSet) shardSizes() []int {
	sizes := make([]int, visitedShards)
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.RLock()
		sizes[i] = len(sh.entries)
		sh.mu.RUnlock()
	}
	return sizes
}

// size returns the number of distinct state encodings recorded.
func (v *visitedSet) size() int {
	n := 0
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}
