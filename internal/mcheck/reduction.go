package mcheck

// State-space reduction for Search: partial-order reduction over
// commuting adversarial decisions, and symmetry reduction over topology
// automorphisms. Both are opt-in via SearchOptions.Reduction and both
// preserve the verdict exactly (see DESIGN §5 for the soundness
// arguments); with Reduction zero the engine is byte-identical to the
// unreduced one.

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Reduction selects the state-space reductions a Search applies. It is a
// bit set; RedNone (the zero value) explores the full unreduced space.
type Reduction uint8

const (
	// RedPOR enables partial-order reduction: adversarial decisions that
	// provably lead to a state dominated by another enumerated decision's
	// successor — activating a message that cannot inject this cycle
	// (sleep-set filter), freezing a message the same decision just
	// activated, or granting an activated message's entry channel to a
	// rival — are pruned before the simulator is cloned, plus a post-step
	// backstop that discards successors whose activation turned out
	// futile. Verdict-preserving for oblivious and adaptive scenarios
	// alike, but gated off automatically when any message routes
	// adaptively (the domination argument needs fixed entry channels).
	RedPOR Reduction = 1 << iota
	// RedSymmetry enables canonical-state symmetry reduction: the
	// visited set keys on sim.CanonicalEncodeTo over the scenario's
	// symmetries (topology automorphisms that map the message set onto
	// itself), storing one representative per orbit. Gated off
	// automatically for adaptive scenarios and for same-cycle-handoff
	// configurations with buffer depth > 1 (where movement order can
	// depend on message IDs).
	RedSymmetry

	// RedNone explores the full state space (the default).
	RedNone Reduction = 0
	// RedAll enables every reduction.
	RedAll = RedPOR | RedSymmetry
)

// POR reports whether partial-order reduction is enabled.
func (r Reduction) POR() bool { return r&RedPOR != 0 }

// Symmetry reports whether symmetry reduction is enabled.
func (r Reduction) Symmetry() bool { return r&RedSymmetry != 0 }

// String renders the reduction set ("none", "por", "sym", "por+sym").
func (r Reduction) String() string {
	var parts []string
	if r.POR() {
		parts = append(parts, "por")
	}
	if r.Symmetry() {
		parts = append(parts, "sym")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// ParseReduction parses a -reduction flag value: "none" (or empty),
// "por", "sym" (or "symmetry"), "all" (or "por+sym").
func ParseReduction(s string) (Reduction, error) {
	r := RedNone
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none":
	case "por":
		r = RedPOR
	case "sym", "symmetry":
		r = RedSymmetry
	case "all", "por+sym", "sym+por":
		r = RedAll
	default:
		return RedNone, fmt.Errorf("mcheck: unknown reduction %q (want none, por, sym, all)", s)
	}
	return r, nil
}

// effectiveReduction applies the scenario gating: reductions whose
// soundness argument does not cover the scenario's features are cleared,
// so SearchResult.Reduction always reports what actually ran.
//
//   - Any adaptive message disables both reductions: POR's domination
//     argument identifies an uninjected message with a single entry
//     channel, and symmetry would have to map dynamically materialized
//     routes.
//   - Same-cycle handoff with buffer depth > 1 disables symmetry: the
//     movement pass resolves handoff chains in message-ID order, and
//     with deeper buffers a deferred owner can both release and acquire,
//     making one cycle's outcome depend on the (relabeled) IDs. At
//     depth 1 the deferral cannot fire (a predicted release never counts
//     an owner's own freed-channel acquisition), so ID order is
//     immaterial and the quotient is exact.
func effectiveReduction(sc sim.Scenario, r Reduction) Reduction {
	if r == RedNone {
		return r
	}
	for _, m := range sc.Msgs {
		if m.Route != nil {
			return RedNone
		}
	}
	if r.Symmetry() && sc.Cfg.SameCycleHandoff && sc.Cfg.BufferDepth > 1 {
		r &^= RedSymmetry
	}
	return r
}

// Caps for the once-per-search symmetry derivation. Papernets groups
// have 2-4 automorphisms and a single surviving scenario symmetry;
// regular topologies (rings, hypercubes) can have many more, and the
// canonical encoding costs one permuted-encode pass per kept symmetry
// per state, so the set is bounded.
const (
	symmetryAutoLimit = 64
	symmetryPermLimit = 32
)

// scenarioSymmetries derives the scenario's usable symmetries: pairs of
// a topology automorphism π and a message bijection σ with
// spec_{σ(i)} = π·spec_i — same length, σ(i)'s path the element-wise
// π-image of i's path. InjectAt and labels are ignored: Search holds
// every message at its source and normalizes injection times to zero, so
// they are not part of the searched state. Identity pairs are dropped
// (they cannot distinguish orbits); the identity encoding is always a
// canonicalization candidate anyway.
//
// The result may be any subset of the scenario's full symmetry group —
// soundness does not require closure, only that each returned
// permutation really is a symmetry — so the caps above are safe.
func scenarioSymmetries(sc sim.Scenario) []sim.Permutation {
	n := len(sc.Msgs)
	for _, m := range sc.Msgs {
		if m.Route != nil {
			return nil
		}
	}
	autos, _ := sc.Net.Automorphisms(symmetryAutoLimit)
	var perms []sim.Permutation

	sigma := make([]int, n)
	used := make([]bool, n)
	for ai := range autos {
		a := &autos[ai]
		chanIdentity := true
		for c, d := range a.Chans {
			if int(d) != c {
				chanIdentity = false
				break
			}
		}
		var match func(i int)
		match = func(i int) {
			if len(perms) >= symmetryPermLimit {
				return
			}
			if i == n {
				msgIdentity := true
				for k, v := range sigma {
					if k != v {
						msgIdentity = false
						break
					}
				}
				if msgIdentity && chanIdentity {
					return
				}
				p := sim.Permutation{
					MsgAt:  make([]int, n),
					ChanTo: append([]topology.ChannelID(nil), a.Chans...),
					ChanAt: make([]topology.ChannelID, len(a.Chans)),
				}
				for orig, img := range sigma {
					p.MsgAt[img] = orig
				}
				for c, d := range a.Chans {
					p.ChanAt[d] = topology.ChannelID(c)
				}
				perms = append(perms, p)
				return
			}
			mi := &sc.Msgs[i]
			for j := 0; j < n; j++ {
				if used[j] {
					continue
				}
				mj := &sc.Msgs[j]
				if mj.Length != mi.Length || len(mj.Path) != len(mi.Path) {
					continue
				}
				if a.Nodes[mi.Src] != mj.Src || a.Nodes[mi.Dst] != mj.Dst {
					continue
				}
				ok := true
				for k, c := range mi.Path {
					if a.Chans[c] != mj.Path[k] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				sigma[i] = j
				used[j] = true
				match(i + 1)
				used[j] = false
			}
		}
		match(0)
	}
	return perms
}
