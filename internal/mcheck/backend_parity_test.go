package mcheck

import (
	"reflect"
	"testing"

	"repro/internal/papernets"
	"repro/internal/waitfor"
)

// backendParityConfigs are the visited-set configurations that must be
// observationally identical to the default in-memory backend. Sizes are
// deliberately hostile: the Bloom filter is at its minimum (dense enough
// to produce real false positives on thousand-state searches, so the
// exact-recheck path runs for real) and the spill budget is one byte (so
// every shard spills constantly and most probes hit disk runs).
func backendParityConfigs() []struct {
	name string
	cfg  VisitedConfig
} {
	return []struct {
		name string
		cfg  VisitedConfig
	}{
		{"mem-batched", VisitedConfig{Backend: VisitedMem, CompressFrontier: true}},
		{"bitstate", VisitedConfig{Backend: VisitedBitstate, BloomBits: 1 << 16}},
		{"spill", VisitedConfig{Backend: VisitedSpill, MemBudget: 1}},
	}
}

// TestVisitedBackendParity is the exactness contract of the pluggable
// visited layer: for every scenario, every backend — bitstate prefilter,
// disk-spilling shards, compressed frontier batching — and every worker
// count, the verdict, state count, retained-encoding count and (for
// deadlocks) the full witness must be byte-identical to the in-memory
// reference. CI runs the gen3 subtest under -race as the parity smoke.
func TestVisitedBackendParity(t *testing.T) {
	for _, tc := range parityCases() {
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("heavy parity case; run without -short")
			}
			refOpts := tc.opts
			refOpts.Parallelism = 1
			ref := Search(tc.sc, refOpts)
			for _, bc := range backendParityConfigs() {
				for _, workers := range []int{1, 3} {
					opts := tc.opts
					opts.Parallelism = workers
					opts.Visited = bc.cfg
					res := Search(tc.sc, opts)
					if res.Verdict != ref.Verdict {
						t.Fatalf("%s workers=%d: verdict %v != reference %v", bc.name, workers, res.Verdict, ref.Verdict)
					}
					if res.States != ref.States {
						t.Fatalf("%s workers=%d: states %d != reference %d", bc.name, workers, res.States, ref.States)
					}
					if res.PeakVisited != ref.PeakVisited {
						t.Fatalf("%s workers=%d: peak visited %d != reference %d",
							bc.name, workers, res.PeakVisited, ref.PeakVisited)
					}
					if ref.Verdict == VerdictDeadlock {
						if !reflect.DeepEqual(res.Trace, ref.Trace) {
							t.Fatalf("%s workers=%d: witness trace differs from reference", bc.name, workers)
						}
						if !reflect.DeepEqual(res.Deadlock.Cycle, ref.Deadlock.Cycle) {
							t.Fatalf("%s workers=%d: deadlock cycle %v != reference %v",
								bc.name, workers, res.Deadlock.Cycle, ref.Deadlock.Cycle)
						}
						s := Replay(tc.sc, res.Trace)
						if err := waitfor.Verify(s, res.Deadlock); err != nil {
							t.Fatalf("%s workers=%d: replayed witness invalid: %v", bc.name, workers, err)
						}
					}
				}
			}
		})
	}
}

// TestVisitedBackendReported pins the accounting surface: the result
// names the backend that ran and its counters are live.
func TestVisitedBackendReported(t *testing.T) {
	sc := ringScenario(2)

	mem := Search(sc, SearchOptions{})
	if mem.Visited.Backend != "mem" {
		t.Fatalf("default backend reported as %q", mem.Visited.Backend)
	}
	if mem.Visited.Entries != mem.PeakVisited || mem.Visited.Bytes <= 0 || mem.Visited.PeakShardEntries <= 0 {
		t.Fatalf("mem accounting implausible: %+v", mem.Visited)
	}

	bit := Search(sc, SearchOptions{Visited: VisitedConfig{Backend: VisitedBitstate, BloomBits: 1 << 16}})
	if bit.Visited.Backend != "bitstate" {
		t.Fatalf("bitstate backend reported as %q", bit.Visited.Backend)
	}
	if bit.Visited.BloomProbes <= 0 {
		t.Fatalf("bitstate ran with zero filter probes: %+v", bit.Visited)
	}
	if bit.Visited.BloomFalsePositives > bit.Visited.BloomHits || bit.Visited.BloomHits > bit.Visited.BloomProbes {
		t.Fatalf("bloom counters inconsistent: %+v", bit.Visited)
	}

	// ring4's 56 states leave every shard under the minimum spill batch;
	// Figure 1's ~3k states guarantee real spills under a one-byte budget.
	scSpill := papernets.Figure1().Scenario
	memSpill := Search(scSpill, SearchOptions{})
	sp := Search(scSpill, SearchOptions{Visited: VisitedConfig{Backend: VisitedSpill, MemBudget: 1}})
	if sp.Visited.Backend != "spill" {
		t.Fatalf("spill backend reported as %q", sp.Visited.Backend)
	}
	if sp.Visited.SpillRuns <= 0 || sp.Visited.SpillBytes <= 0 || sp.Visited.SpilledEntries <= 0 {
		t.Fatalf("spill backend with a 1-byte budget never spilled: %+v", sp.Visited)
	}
	if sp.Visited.Entries != memSpill.Visited.Entries {
		t.Fatalf("spill distinct entries %d != mem %d", sp.Visited.Entries, memSpill.Visited.Entries)
	}
	if sp.Visited.Bytes >= memSpill.Visited.Bytes {
		t.Fatalf("spill resident bytes %d not below mem %d despite a 1-byte budget",
			sp.Visited.Bytes, memSpill.Visited.Bytes)
	}
}

// TestLivenessBackendParity: the DFS liveness engine shares the visited
// layer; its verdicts must not depend on the backend either.
func TestLivenessBackendParity(t *testing.T) {
	for _, bc := range backendParityConfigs() {
		sc := ringScenario(2)
		ref := SearchLiveness(sc, SearchOptions{})
		opts := SearchOptions{Visited: bc.cfg}
		res := SearchLiveness(sc, opts)
		if res.Verdict != ref.Verdict || res.States != ref.States || res.PeakVisited != ref.PeakVisited {
			t.Fatalf("%s: liveness %v/%d/%d != reference %v/%d/%d", bc.name,
				res.Verdict, res.States, res.PeakVisited, ref.Verdict, ref.States, ref.PeakVisited)
		}
	}
}
