package mcheck

import "sync/atomic"

// bloomVisited is the "bitstate" backend: a fixed-size double-hashed
// Bloom filter in front of the exact in-memory set. The filter's only
// power is a fast, lock-free "definitely not seen" answer — a clean miss
// short-circuits the shard-locked exact probe that dominates duplicate
// detection on wide frontiers. A filter hit proves nothing and is always
// re-verified against the exact set, so unlike classical bitstate hashing
// (Holzmann's SPIN mode, which trades soundness for memory) this mode
// never drops or conflates states: verdicts, state counts and witnesses
// stay byte-identical to the reference backend. The price is that the
// exact set still holds every encoding — bitstate is a probe accelerator,
// not a memory reducer; combine with the spill backend when memory is the
// ceiling.
//
// Concurrency: the bit array is written only by insert, which the engine
// calls exclusively from the single-threaded merge, strictly after the
// expansion barrier (wg.Wait() in expandLevel establishes the
// happens-before edge). Workers therefore read the bits plainly, with no
// locks or atomics. The probe counters are the one concurrently-mutated
// surface, so they are atomics.
type bloomVisited struct {
	exact *visitedSet
	bits  []uint64
	mask  uint64 // bit-index mask; len(bits)*64 is a power of two

	probes atomic.Int64
	hits   atomic.Int64
	fps    atomic.Int64
}

// bloomHashes is the number of filter probes per key (k). With m/n around
// 16 bits per state at the default filter size and typical frontiers,
// k = 4 keeps the false-positive rate well under 1% without measurable
// probe cost.
const bloomHashes = 4

// newBloomVisited builds the filter with the given bit count, rounded up
// to a power of two (minimum 1<<16).
func newBloomVisited(bits int64) *bloomVisited {
	m := uint64(1) << 16
	for int64(m) < bits {
		m <<= 1
	}
	return &bloomVisited{
		exact: newVisitedSet(),
		bits:  make([]uint64, m/64),
		mask:  m - 1,
	}
}

// bloomSecond derives the double-hashing stride from the digest with a
// splitmix64-style finalizer, forced odd so every probe sequence walks
// the whole (power-of-two) table.
func bloomSecond(h uint64) uint64 {
	z := h + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return (z ^ (z >> 31)) | 1
}

func (v *bloomVisited) mayContain(h uint64) bool {
	g, step := h, bloomSecond(h)
	for i := 0; i < bloomHashes; i++ {
		bit := g & v.mask
		if v.bits[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
		g += step
	}
	return true
}

func (v *bloomVisited) setBits(h uint64) {
	g, step := h, bloomSecond(h)
	for i := 0; i < bloomHashes; i++ {
		bit := g & v.mask
		v.bits[bit>>6] |= 1 << (bit & 63)
		g += step
	}
}

func (v *bloomVisited) hash(enc []byte) uint64 { return v.exact.hash(enc) }

func (v *bloomVisited) novel(h uint64, enc []byte, budget int) bool {
	v.probes.Add(1)
	if !v.mayContain(h) {
		// Definitely-novel fast path: nothing with this digest was ever
		// inserted, so no exact entry can match and no recorded budget can
		// exist. Sound because insert always sets the bits before (well,
		// atomically with respect to the phase barrier) the exact entry
		// becomes probeable.
		return true
	}
	v.hits.Add(1)
	b, ok := v.exact.lookup(h, enc)
	if !ok {
		v.fps.Add(1) // filter hit, exact miss: a measured false positive
		return true
	}
	return b < budget
}

func (v *bloomVisited) insert(h uint64, enc []byte, budget int) bool {
	v.setBits(h)
	return v.exact.insert(h, enc, budget)
}

func (v *bloomVisited) size() int { return v.exact.size() }

func (v *bloomVisited) shardSizes(buf []int) []int { return v.exact.shardSizes(buf) }

func (v *bloomVisited) stats(st *VisitedStats) {
	v.exact.stats(st)
	st.Backend = "bitstate"
	st.Bytes += int64(len(v.bits)) * 8
	st.BloomProbes = v.probes.Load()
	st.BloomHits = v.hits.Load()
	st.BloomFalsePositives = v.fps.Load()
	if st.BloomProbes > 0 {
		st.BloomFPRate = float64(st.BloomFalsePositives) / float64(st.BloomProbes)
	}
}

func (v *bloomVisited) close() {}
