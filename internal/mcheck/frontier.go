package mcheck

import (
	"encoding/binary"
	"fmt"
)

// Compressed frontier batching: instead of carrying a BFS level as a
// slice of live simulators (each a full heap object), the batched engine
// path carries it as one contiguous byte buffer of delta-encoded state
// encodings, decoded back into a worker-local simulator at expansion
// time. Neighbouring frontier entries are siblings or cousins in the
// state graph and share long encoding prefixes, so varint prefix
// compression against the previous entry shrinks a level far below the
// sum of its encodings — and the frontier stops being the memory ceiling
// that defeats an out-of-core visited set.
//
// Entries are stored in INSERTION order, never sorted: the merge iterates
// a batch exactly as it iterated the simulator slice, so acceptance
// order, provenance and witnesses stay byte-identical to the unbatched
// engine. (Only spill run files sort; a frontier must not.)
//
// Entry format, uvarints throughout:
//
//	shared    prefix length shared with the previous entry (forced 0 at
//	          every batchRestart-th entry, so blocks decode independently)
//	suffixLen, then suffixLen encoding bytes
//	budget    remaining stall budget of the entry
//	node      provenance arena index of the entry
//
// Restart points double as the parallel work-division grain: workers
// claim whole blocks and decode them sequentially, so no entry is ever
// decoded twice and no offsets but the restarts need indexing. The batch
// layout is also the planned coordinator/worker wire format for
// distributed search — a block is self-contained, so a coordinator can
// ship blocks to remote expanders verbatim.

// batchRestart is the prefix-compression restart interval and the
// parallel claim grain.
const batchRestart = 32

// frontierBatch is one immutable encoded BFS level.
type frontierBatch struct {
	data     []byte
	restarts []int32 // byte offset of entries 0, batchRestart, 2·batchRestart, ...
	count    int
}

// blocks returns the number of restart blocks.
func (b *frontierBatch) blocks() int { return len(b.restarts) }

// batchBuilder accumulates a level in insertion order.
type batchBuilder struct {
	batch frontierBatch
	prev  []byte
}

func (bb *batchBuilder) reset() {
	bb.batch = frontierBatch{data: bb.batch.data[:0], restarts: bb.batch.restarts[:0]}
	bb.prev = bb.prev[:0]
}

func (bb *batchBuilder) add(enc []byte, budget int, node int32) {
	b := &bb.batch
	if b.count%batchRestart == 0 {
		b.restarts = append(b.restarts, int32(len(b.data)))
		bb.prev = bb.prev[:0]
	}
	shared := 0
	for shared < len(bb.prev) && shared < len(enc) && bb.prev[shared] == enc[shared] {
		shared++
	}
	b.data = binary.AppendUvarint(b.data, uint64(shared))
	b.data = binary.AppendUvarint(b.data, uint64(len(enc)-shared))
	b.data = append(b.data, enc[shared:]...)
	b.data = binary.AppendUvarint(b.data, uint64(budget))
	b.data = binary.AppendUvarint(b.data, uint64(node))
	b.count++
	bb.prev = append(bb.prev[:0], enc...)
}

// batchIter decodes a batch sequentially, or one claimed block at a time.
// cur aliases the iterator's scratch and is valid until the next call.
type batchIter struct {
	batch  *frontierBatch
	pos    int
	idx    int // entry index of the NEXT entry
	end    int // one past the last entry this iterator may decode
	cur    []byte
	budget int
	node   int32
}

// seekAll positions the iterator at the start of the whole batch.
func (it *batchIter) seekAll(b *frontierBatch) {
	it.batch, it.pos, it.idx, it.end = b, 0, 0, b.count
	it.cur = it.cur[:0]
}

// seekBlock positions the iterator at restart block bi, bounding it to
// that block.
func (it *batchIter) seekBlock(b *frontierBatch, bi int) {
	it.batch = b
	it.pos = int(b.restarts[bi])
	it.idx = bi * batchRestart
	it.end = it.idx + batchRestart
	if it.end > b.count {
		it.end = b.count
	}
	it.cur = it.cur[:0]
}

// next decodes the next entry into cur/budget/node, reporting whether one
// was available. Corruption panics: batches never leave this process.
func (it *batchIter) next() bool {
	if it.idx >= it.end {
		return false
	}
	data := it.batch.data
	read := func() int {
		v, n := binary.Uvarint(data[it.pos:])
		if n <= 0 {
			panic(fmt.Sprintf("mcheck: corrupt frontier batch at offset %d", it.pos))
		}
		it.pos += n
		return int(v)
	}
	shared := read()
	suffix := read()
	if shared > len(it.cur) || it.pos+suffix > len(data) {
		panic(fmt.Sprintf("mcheck: corrupt frontier batch entry %d", it.idx))
	}
	it.cur = append(it.cur[:shared], data[it.pos:it.pos+suffix]...)
	it.pos += suffix
	it.budget = read()
	it.node = int32(read())
	it.idx++
	return true
}
