package mcheck

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/papernets"
	"repro/internal/waitfor"
)

// TestLivenessLocalDeadlockTwoRings is the local-deadlock acceptance case:
// a network whose ring A deadlocks while ring B traffic stays deliverable
// must yield VerdictLocalDeadlock with exactly ring A's channels as the
// blocked subnetwork, and the witness must replay.
func TestLivenessLocalDeadlockTwoRings(t *testing.T) {
	sc := papernets.LocalRings()
	res := SearchLiveness(sc, SearchOptions{})
	if res.Verdict != VerdictLocalDeadlock {
		t.Fatalf("verdict = %v; want local-deadlock", res.Verdict)
	}
	if res.Local == nil {
		t.Fatal("no local-deadlock witness")
	}
	if got, want := fmt.Sprint(res.Local.Blocked), "[0 1 2 3]"; got != want {
		t.Fatalf("blocked subnetwork = %v; want exactly ring A %v", got, want)
	}
	foundB := false
	for _, id := range res.Local.Live {
		if id == 4 {
			foundB = true
		}
	}
	if !foundB {
		t.Fatalf("live set %v does not contain the ring B message", res.Local.Live)
	}
	s := Replay(sc, res.Trace)
	if err := waitfor.VerifyLocal(s, res.Local); err != nil {
		t.Fatalf("replayed witness: %v", err)
	}
}

// TestLivenessLivelockStaleSelection is the livelock acceptance case: the
// stale-selection scenario is deadlock-free under the plain engine but
// must yield a replayable lasso under the liveness engine, with the
// adaptive message and the oblivious message it blocks both starved.
func TestLivenessLivelockStaleSelection(t *testing.T) {
	sc := papernets.StaleSelection()
	plain := Search(sc, SearchOptions{})
	if plain.Verdict != VerdictNoDeadlock {
		t.Fatalf("plain verdict = %v; the scenario must be deadlock-free", plain.Verdict)
	}
	res := SearchLiveness(sc, SearchOptions{})
	if res.Verdict != VerdictLivelock {
		t.Fatalf("liveness verdict = %v; want livelock", res.Verdict)
	}
	if res.Lasso == nil {
		t.Fatal("no lasso witness")
	}
	if err := VerifyLasso(sc, res.Lasso); err != nil {
		t.Fatalf("lasso witness: %v", err)
	}
	starved := map[int]bool{}
	for _, id := range res.Lasso.Starved {
		starved[id] = true
	}
	if !starved[0] || !starved[1] {
		t.Fatalf("starved = %v; want both messages", res.Lasso.Starved)
	}
	// Replay the loop several times by hand: the encoding must be pinned
	// and no starved message's progress counter may ever change.
	head := ReplayLasso(sc, res.Lasso, 1)
	var want, got []byte
	head.EncodeTo(&want)
	p0, p1 := head.Progress(0), head.Progress(1)
	more := ReplayLasso(sc, res.Lasso, 4)
	more.EncodeTo(&got)
	if !bytes.Equal(want, got) {
		t.Fatal("loop iterations do not reproduce the loop head")
	}
	if more.Progress(0) != p0 || more.Progress(1) != p1 {
		t.Fatal("a starved message advanced across loop iterations")
	}
}

// TestLivenessPureRingIsGlobalDeadlock: when the cycle leaves nothing
// outside it deliverable, the verdict must stay the plain VerdictDeadlock
// — the deadlock is global, not local.
func TestLivenessPureRingIsGlobalDeadlock(t *testing.T) {
	sc := ringScenario(2)
	res := SearchLiveness(sc, SearchOptions{})
	if res.Verdict != VerdictDeadlock {
		t.Fatalf("verdict = %v; want deadlock", res.Verdict)
	}
	if res.Local != nil {
		t.Fatalf("unexpected local witness %v for a global deadlock", res.Local)
	}
	if res.Deadlock == nil {
		t.Fatal("no Definition 6 witness")
	}
	s := Replay(sc, res.Trace)
	if err := waitfor.Verify(s, res.Deadlock); err != nil {
		t.Fatalf("replayed witness: %v", err)
	}
}

// TestLivenessParity pins the liveness engine to the plain engine across
// every paper scenario and Gen(2..4). All of these are purely oblivious,
// where the two transition systems coincide, so the mapping is exact:
// plain no-deadlock ⇔ liveness no-deadlock (with identical state counts
// at stall budget 0, where neither engine recounts budget improvements),
// plain deadlock ⇔ liveness deadlock-or-local-deadlock, and livelock is
// impossible — oblivious messages have no selection to hold stale.
func TestLivenessParity(t *testing.T) {
	cases := parityCases()
	cases = append(cases, parityCase{
		name:  "gen4",
		sc:    papernets.GenK(4).Scenario,
		opts:  SearchOptions{StallBudget: 4, FreezeInTransitOnly: true},
		heavy: true,
	})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("heavy parity case; run without -short")
			}
			plain := Search(tc.sc, tc.opts)
			liv := SearchLiveness(tc.sc, tc.opts)
			switch plain.Verdict {
			case VerdictNoDeadlock:
				if liv.Verdict != VerdictNoDeadlock {
					t.Fatalf("liveness verdict %v; plain engine proved no-deadlock", liv.Verdict)
				}
				if tc.opts.StallBudget == 0 && liv.States != plain.States {
					t.Fatalf("liveness explored %d states, plain %d; budget-0 spaces must match", liv.States, plain.States)
				}
			case VerdictDeadlock:
				if liv.Verdict != VerdictDeadlock && liv.Verdict != VerdictLocalDeadlock {
					t.Fatalf("liveness verdict %v; plain engine found a deadlock", liv.Verdict)
				}
				s := Replay(tc.sc, liv.Trace)
				if liv.Verdict == VerdictLocalDeadlock {
					if err := waitfor.VerifyLocal(s, liv.Local); err != nil {
						t.Fatalf("local witness: %v", err)
					}
				} else if liv.Deadlock != nil {
					if err := waitfor.Verify(s, liv.Deadlock); err != nil {
						t.Fatalf("deadlock witness: %v", err)
					}
				}
			default:
				t.Fatalf("plain verdict %v; parity cases must be decidable", plain.Verdict)
			}
		})
	}
}

// TestLivenessExhausted: the state cap applies to the DFS exactly as it
// does to the BFS.
func TestLivenessExhausted(t *testing.T) {
	res := SearchLiveness(papernets.Figure1().Scenario, SearchOptions{MaxStates: 3})
	if res.Verdict != VerdictExhausted {
		t.Fatalf("verdict = %v; want exhausted", res.Verdict)
	}
}

// TestLivenessIgnoresReductions: a requested reduction is cleared and
// surfaced as a warning, never silently applied.
func TestLivenessIgnoresReductions(t *testing.T) {
	res := SearchLiveness(ringScenario(2), SearchOptions{Reduction: RedPOR})
	if res.Reduction != RedNone {
		t.Fatalf("reduction %v ran; liveness must explore the full space", res.Reduction)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("no warning about the ignored reduction")
	}
	if res.Verdict != VerdictDeadlock {
		t.Fatalf("verdict = %v; want deadlock", res.Verdict)
	}
}
