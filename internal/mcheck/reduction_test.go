package mcheck

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/papernets"
	"repro/internal/waitfor"
)

// reductionCases is the parity corpus for the reductions: every engine
// parity case plus the larger Gen(k) instances the reductions exist to
// make tractable.
func reductionCases() []parityCase {
	cases := parityCases()
	for k := 4; k <= 5; k++ {
		cases = append(cases, parityCase{
			name:  fmt.Sprintf("gen%d", k),
			sc:    papernets.GenK(k).Scenario,
			opts:  SearchOptions{StallBudget: k, FreezeInTransitOnly: true},
			heavy: true,
		})
	}
	return cases
}

// TestReductionParity is the soundness contract of the reductions: for
// every scenario and every reduction mode, the verdict is identical to
// the unreduced search, the explored state count never grows, and a
// deadlock verdict's witness independently replays to a valid
// Definition 6 cycle. (Traces and state counts are allowed to differ —
// the reductions prune dominated branches and merge symmetric orbits —
// but the answer is not.)
func TestReductionParity(t *testing.T) {
	for _, tc := range reductionCases() {
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("heavy reduction parity case; run without -short")
			}
			baseOpts := tc.opts
			baseOpts.Parallelism = 1
			base := Search(tc.sc, baseOpts)
			for _, red := range []Reduction{RedPOR, RedSymmetry, RedAll} {
				t.Run(red.String(), func(t *testing.T) {
					o := tc.opts
					o.Parallelism = 1
					o.Reduction = red
					r := Search(tc.sc, o)
					if r.Verdict != base.Verdict {
						t.Fatalf("reduction %v: verdict %v != unreduced %v", red, r.Verdict, base.Verdict)
					}
					if r.States > base.States {
						t.Fatalf("reduction %v: %d states > unreduced %d", red, r.States, base.States)
					}
					if base.Verdict != VerdictDeadlock {
						return
					}
					// The reduced witness must stand on its own: replay it on
					// a fresh scenario instance and verify the claimed cycle.
					s := Replay(tc.sc, r.Trace)
					if err := waitfor.Verify(s, r.Deadlock); err != nil {
						t.Fatalf("reduction %v: replayed witness invalid: %v", red, err)
					}
				})
			}
		})
	}
}

// TestReductionWorkerParity: the determinism contract survives the
// reductions — a reduced search is byte-identical across worker counts,
// exactly like the unreduced one.
func TestReductionWorkerParity(t *testing.T) {
	for _, tc := range reductionCases() {
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("heavy reduction parity case; run without -short")
			}
			seqOpts := tc.opts
			seqOpts.Parallelism = 1
			seqOpts.Reduction = RedAll
			seq := Search(tc.sc, seqOpts)
			parOpts := tc.opts
			parOpts.Parallelism = 4
			parOpts.Reduction = RedAll
			par := Search(tc.sc, parOpts)
			if par.Verdict != seq.Verdict || par.States != seq.States {
				t.Fatalf("workers=4: (%v, %d states) != sequential (%v, %d states)",
					par.Verdict, par.States, seq.Verdict, seq.States)
			}
			if par.StatesPruned != seq.StatesPruned || par.SleepSetHits != seq.SleepSetHits {
				t.Fatalf("workers=4: pruning stats (%d, %d) != sequential (%d, %d)",
					par.StatesPruned, par.SleepSetHits, seq.StatesPruned, seq.SleepSetHits)
			}
			if seq.Verdict == VerdictDeadlock && !reflect.DeepEqual(par.Trace, seq.Trace) {
				t.Fatalf("workers=4: witness trace differs from sequential")
			}
		})
	}
}

// TestReductionGen4ThreeFold pins the headline scaling claim: on
// Gen(4) at its critical stall budget the combined reductions explore at
// most a third of the unreduced state space.
func TestReductionGen4ThreeFold(t *testing.T) {
	if testing.Short() {
		t.Skip("gen4 reduction ratio; run without -short")
	}
	sc := papernets.GenK(4).Scenario
	opts := SearchOptions{StallBudget: 4, FreezeInTransitOnly: true}
	base := Search(sc, opts)
	opts.Reduction = RedAll
	red := Search(sc, opts)
	if red.Verdict != base.Verdict {
		t.Fatalf("verdict %v != unreduced %v", red.Verdict, base.Verdict)
	}
	if base.States < 3*red.States {
		t.Fatalf("reduction ratio %d/%d < 3x", base.States, red.States)
	}
	t.Logf("gen4: %d states unreduced, %d reduced (%.2fx)",
		base.States, red.States, float64(base.States)/float64(red.States))
}

// TestReductionStatsReported: the result surfaces what the reductions
// did — and reports inert zero values when they are off.
func TestReductionStatsReported(t *testing.T) {
	sc := papernets.Figure1().Scenario
	red := Search(sc, SearchOptions{Reduction: RedAll, Parallelism: 1})
	if red.Reduction != RedAll {
		t.Fatalf("Reduction = %v, want %v", red.Reduction, RedAll)
	}
	if red.StatesPruned == 0 {
		t.Error("StatesPruned = 0 on a reduced Figure 1 search")
	}
	if red.SleepSetHits == 0 {
		t.Error("SleepSetHits = 0 on a reduced Figure 1 search")
	}
	// Figure 1's only scenario symmetry is the half-turn swapping the
	// M1/M3 and M2/M4 pairs: group of size 2.
	if red.SymmetryGroup != 2 {
		t.Errorf("SymmetryGroup = %d, want 2", red.SymmetryGroup)
	}

	base := Search(sc, SearchOptions{Parallelism: 1})
	if base.Reduction != RedNone || base.StatesPruned != 0 || base.SleepSetHits != 0 {
		t.Errorf("unreduced search reports reduction activity: %+v", base)
	}
	if base.SymmetryGroup != 1 {
		t.Errorf("unreduced SymmetryGroup = %d, want 1", base.SymmetryGroup)
	}
	if red.States >= base.States {
		t.Errorf("reduced States = %d, not below unreduced %d", red.States, base.States)
	}
}

// TestReductionGating: scenarios outside a reduction's soundness
// argument silently clear it, and the result reports what actually ran.
func TestReductionGating(t *testing.T) {
	// Adaptive routing disables everything.
	adaptive, _ := twoBranchScenario()
	r := Search(adaptive, SearchOptions{Reduction: RedAll})
	if r.Reduction != RedNone {
		t.Errorf("adaptive scenario: Reduction = %v, want none", r.Reduction)
	}

	// Same-cycle handoff with deep buffers keeps POR but drops symmetry.
	buffered := papernets.Figure1().Scenario
	buffered.Cfg.BufferDepth = 2
	r = Search(buffered, SearchOptions{Reduction: RedAll})
	if r.Reduction != RedPOR {
		t.Errorf("buffered handoff scenario: Reduction = %v, want por", r.Reduction)
	}

	// A symmetry-free scenario clears the symmetry bit even when gating
	// passes: Figure 2's entrants differ, no usable permutation exists.
	r = Search(papernets.Figure2().Scenario, SearchOptions{Reduction: RedSymmetry})
	if r.Reduction != RedNone {
		t.Errorf("figure2: Reduction = %v, want none (no scenario symmetry)", r.Reduction)
	}
	if r.SymmetryGroup != 1 {
		t.Errorf("figure2: SymmetryGroup = %d, want 1", r.SymmetryGroup)
	}
}

// TestScenarioSymmetries pins the derived symmetry sets for the paper
// scenarios: every Gen(k) has exactly the half-turn (the ring
// reflections invert channel direction and so never match the forward
// message paths), Figure 2 has none.
func TestScenarioSymmetries(t *testing.T) {
	for k := 1; k <= 3; k++ {
		sc := papernets.GenK(k).Scenario
		perms := scenarioSymmetries(sc)
		if len(perms) != 1 {
			t.Fatalf("gen%d: %d symmetries, want exactly the half-turn", k, len(perms))
		}
		// The half-turn swaps M1<->M3 and M2<->M4 (scenario order M1..M4).
		want := []int{2, 3, 0, 1} // MsgAt is its own inverse for a swap
		if !reflect.DeepEqual(perms[0].MsgAt, want) {
			t.Errorf("gen%d: MsgAt = %v, want %v", k, perms[0].MsgAt, want)
		}
	}
	if perms := scenarioSymmetries(papernets.Figure2().Scenario); len(perms) != 0 {
		t.Errorf("figure2: %d symmetries, want 0", len(perms))
	}
}

// TestParseReduction covers the flag grammar.
func TestParseReduction(t *testing.T) {
	cases := []struct {
		in   string
		want Reduction
		err  bool
	}{
		{"", RedNone, false},
		{"none", RedNone, false},
		{"por", RedPOR, false},
		{"sym", RedSymmetry, false},
		{"symmetry", RedSymmetry, false},
		{"all", RedAll, false},
		{"por+sym", RedAll, false},
		{"POR", RedPOR, false},
		{" all ", RedAll, false},
		{"bogus", RedNone, true},
	}
	for _, tc := range cases {
		got, err := ParseReduction(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("ParseReduction(%q): err = %v, want err=%v", tc.in, err, tc.err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseReduction(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, r := range []Reduction{RedNone, RedPOR, RedSymmetry, RedAll} {
		back, err := ParseReduction(r.String())
		if err != nil || back != r {
			t.Errorf("round trip %v -> %q -> %v (err %v)", r, r.String(), back, err)
		}
	}
}
