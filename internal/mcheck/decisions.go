package mcheck

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// decisionEnum streams the adversarial decisions available in a state
// without materializing the cartesian product the old engine built: every
// subset of held messages to activate, every subset of movable in-flight
// messages to freeze (bounded by the stall budget), every adaptive
// candidate selection, and every arbitration outcome. All intermediate
// storage — the probe simulator, subset slices, mask/pick maps — is owned
// by the enumerator and reused across calls, so enumeration allocates only
// what the simulator's own query methods allocate.
//
// The enumeration order is canonical and load-bearing: the search engine
// identifies a decision by its ordinal (the provenance arena stores
// (parent, decisionIndex) pairs), and witness reconstruction re-runs the
// enumerator to turn ordinals back into Decisions. The order is the same
// nesting the materialized enumeration used — activations by ascending
// subset bitmask, then freezes by ascending subset bitmask, then adaptive
// selections (first adaptive message varying fastest), then arbitration
// picks (lowest contested channel varying fastest) — so state counts and
// witnesses are identical to the historical engine's.
type decisionEnum struct {
	probe *sim.Sim // scratch: activation + freeze + mask state applied here

	held    []int
	movable []int
	act     []int
	frz     []int

	maskIDs    []int
	maskCands  [][]topology.ChannelID
	maskDigits []int
	masks      map[int]topology.ChannelID

	pickDigits []int
	picks      map[topology.ChannelID]int
}

// newDecisionEnum returns an enumerator whose probe is a clone of proto;
// proto must be structurally identical (same scenario) to every state the
// enumerator will be asked to expand.
func newDecisionEnum(proto *sim.Sim) *decisionEnum {
	return &decisionEnum{
		probe: proto.Clone(),
		masks: make(map[int]topology.ChannelID),
		picks: make(map[topology.ChannelID]int),
	}
}

// maxSubsetItems guards the 2^n subset enumerations; the paper's scenarios
// have at most a handful of messages.
const maxSubsetItems = 16

// forEach streams every decision available in state s with the given stall
// budget to fn, in canonical order. The *Decision passed to fn — including
// its slices and maps — is scratch storage valid only during the call; the
// callee must apply or copy it before returning. Returning false from fn
// stops the enumeration; forEach reports whether it ran to completion.
func (e *decisionEnum) forEach(s *sim.Sim, budget int, inTransitOnly bool, fn func(d *Decision) bool) bool {
	e.held = e.held[:0]
	for id := 0; id < s.NumMessages(); id++ {
		if s.Held(id) {
			e.held = append(e.held, id)
		}
	}
	if len(e.held) > maxSubsetItems {
		panic("mcheck: subset enumeration over more than 16 items")
	}
	for actMask := 0; actMask < 1<<len(e.held); actMask++ {
		e.act = subsetInto(e.act[:0], e.held, actMask)
		// Freezing depends on which messages can move after activation;
		// activation only enables injections, which cannot disable any
		// other message's movement, so compute movability on the probe
		// with the activation applied.
		e.probe.CopyFrom(s)
		for _, id := range e.act {
			e.probe.SetHeld(id, false)
		}
		e.movable = e.movable[:0]
		if budget > 0 {
			for id := 0; id < e.probe.NumMessages(); id++ {
				if !e.probe.CanAdvance(id) {
					continue
				}
				if inTransitOnly && e.probe.Delivering(id) {
					continue // already delivering: consumption may not stall
				}
				e.movable = append(e.movable, id)
			}
		}
		if len(e.movable) > maxSubsetItems {
			panic("mcheck: subset enumeration over more than 16 items")
		}
		for frzMask := 0; frzMask < 1<<len(e.movable); frzMask++ {
			e.frz = subsetInto(e.frz[:0], e.movable, frzMask)
			if len(e.frz) > budget {
				continue
			}
			for _, id := range e.frz {
				e.probe.SetFrozen(id, 1)
			}
			ok := e.maskLoop(fn)
			for _, id := range e.frz {
				e.probe.SetFrozen(id, 0)
			}
			if !ok {
				return false
			}
		}
	}
	return true
}

// maskLoop enumerates adaptive selection nondeterminism on the prepared
// probe: for every adaptive message with several acquirable candidates,
// which one it requests this cycle. With nothing to choose it yields a
// single nil mask assignment, mirroring the historical maskCombos.
func (e *decisionEnum) maskLoop(fn func(d *Decision) bool) bool {
	e.maskIDs = e.maskIDs[:0]
	e.maskCands = e.maskCands[:0]
	for id := 0; id < e.probe.NumMessages(); id++ {
		if !e.probe.IsAdaptive(id) {
			continue
		}
		cands := e.probe.AcquirableCandidates(id)
		if len(cands) < 2 {
			continue
		}
		e.maskIDs = append(e.maskIDs, id)
		e.maskCands = append(e.maskCands, cands)
	}
	n := len(e.maskIDs)
	e.maskDigits = resetDigits(e.maskDigits, n)
	for {
		var masks map[int]topology.ChannelID
		if n > 0 {
			clear(e.masks)
			for j, id := range e.maskIDs {
				c := e.maskCands[j][e.maskDigits[j]]
				e.masks[id] = c
				e.probe.SetMask(id, c)
			}
			masks = e.masks
		}
		cons := e.probe.Contentions()
		ok := e.pickLoop(cons, masks, fn)
		for _, id := range e.maskIDs {
			e.probe.SetMask(id, topology.None)
		}
		if !ok {
			return false
		}
		j := 0
		for j < n {
			e.maskDigits[j]++
			if e.maskDigits[j] < len(e.maskCands[j]) {
				break
			}
			e.maskDigits[j] = 0
			j++
		}
		if j == n {
			return true
		}
	}
}

// pickLoop enumerates arbitration outcomes for the probed contentions and
// yields one complete Decision per combination. With no contentions it
// yields a single nil pick assignment.
func (e *decisionEnum) pickLoop(cons []sim.Contention, masks map[int]topology.ChannelID, fn func(d *Decision) bool) bool {
	n := len(cons)
	e.pickDigits = resetDigits(e.pickDigits, n)
	for {
		var picks map[topology.ChannelID]int
		if n > 0 {
			clear(e.picks)
			for j := range cons {
				e.picks[cons[j].Channel] = cons[j].Contenders[e.pickDigits[j]]
			}
			picks = e.picks
		}
		d := Decision{Activate: e.act, Freeze: e.frz, Masks: masks, Picks: picks}
		if !fn(&d) {
			return false
		}
		j := 0
		for j < n {
			e.pickDigits[j]++
			if e.pickDigits[j] < len(cons[j].Contenders) {
				break
			}
			e.pickDigits[j] = 0
			j++
		}
		if j == n {
			return true
		}
	}
}

// subsetInto appends the subset of ids selected by mask (bit i selects
// ids[i]) to dst and returns it; ascending-bitmask iteration over masks
// reproduces the historical subsets() order, empty set first.
func subsetInto(dst, ids []int, mask int) []int {
	for i := 0; mask != 0; i, mask = i+1, mask>>1 {
		if mask&1 != 0 {
			dst = append(dst, ids[i])
		}
	}
	return dst
}

// resetDigits returns a zeroed digit slice of length n, reusing d.
func resetDigits(d []int, n int) []int {
	if cap(d) < n {
		d = make([]int, n)
	}
	d = d[:n]
	for i := range d {
		d[i] = 0
	}
	return d
}

// copyDecision deep-copies a scratch Decision from the enumerator into an
// independently-owned value for a witness trace. Empty collections stay
// nil, matching the historical materialized decisions.
func copyDecision(d *Decision) Decision {
	var out Decision
	if len(d.Activate) > 0 {
		out.Activate = append([]int(nil), d.Activate...)
	}
	if len(d.Freeze) > 0 {
		out.Freeze = append([]int(nil), d.Freeze...)
	}
	if len(d.Masks) > 0 {
		out.Masks = make(map[int]topology.ChannelID, len(d.Masks))
		for k, v := range d.Masks {
			out.Masks[k] = v
		}
	}
	if len(d.Picks) > 0 {
		out.Picks = make(map[topology.ChannelID]int, len(d.Picks))
		for k, v := range d.Picks {
			out.Picks[k] = v
		}
	}
	return out
}
