package mcheck

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// decisionEnum streams the adversarial decisions available in a state
// without materializing the cartesian product the old engine built: every
// subset of held messages to activate, every subset of movable in-flight
// messages to freeze (bounded by the stall budget), every adaptive
// candidate selection, and every arbitration outcome. All intermediate
// storage — the probe simulator, subset slices, mask/pick maps — is owned
// by the enumerator and reused across calls, so enumeration allocates only
// what the simulator's own query methods allocate.
//
// The enumeration order is canonical and load-bearing: the search engine
// identifies a decision by its ordinal (the provenance arena stores
// (parent, decisionIndex) pairs), and witness reconstruction re-runs the
// enumerator to turn ordinals back into Decisions. The order is the same
// nesting the materialized enumeration used — activations by ascending
// subset bitmask, then freezes by ascending subset bitmask, then adaptive
// selections (first adaptive message varying fastest), then arbitration
// picks (lowest contested channel varying fastest) — so state counts and
// witnesses are identical to the historical engine's.
type decisionEnum struct {
	probe *sim.Sim // scratch: activation + freeze + mask state applied here

	cfg   enumConfig
	stats *enumStats // nil when the caller doesn't collect statistics

	held    []int
	movable []int
	act     []int
	frz     []int

	maskIDs    []int
	maskCands  [][]topology.ChannelID
	maskDigits []int
	masks      map[int]topology.ChannelID

	pickDigits []int
	picks      map[topology.ChannelID]int
}

// newDecisionEnum returns an enumerator whose probe is a clone of proto;
// proto must be structurally identical (same scenario) to every state the
// enumerator will be asked to expand.
func newDecisionEnum(proto *sim.Sim) *decisionEnum {
	return &decisionEnum{
		probe: proto.Clone(),
		masks: make(map[int]topology.ChannelID),
		picks: make(map[topology.ChannelID]int),
	}
}

// maxSubsetItems guards the 2^n subset enumerations; the paper's scenarios
// have at most a handful of messages.
const maxSubsetItems = 16

// enumConfig selects the enumeration variant. It is part of the ordinal
// contract: search-time expansion and witness reconstruction must run
// forEach with the same config, or provenance ordinals would point at
// different decisions.
type enumConfig struct {
	// inTransitOnly mirrors SearchOptions.FreezeInTransitOnly.
	inTransitOnly bool
	// por enables the partial-order filters: decisions pruned here are
	// dominated by other enumerated decisions (see DESIGN §5), so the
	// reachable-deadlock verdict is unchanged while the branching factor
	// shrinks. All filters run before fn — and therefore before the
	// caller clones the simulator — and are deterministic functions of
	// the state, keeping ordinals aligned between search and rebuild.
	por bool
	// maskAll widens adaptive selection nondeterminism to every wanted
	// candidate, not just acquirable ones: selecting an owned candidate
	// stalls the message for the cycle at no budget cost — a "stale"
	// selection, modeling an adaptive router that persistently offers a
	// busy output. The liveness engine enables this to expose starvation
	// loops; the plain deadlock engine keeps it off, because a stale
	// selection is a stutter step that can neither create nor destroy a
	// reachable deadlock.
	maskAll bool
}

// enumStats counts partial-order pruning activity across an enumeration's
// lifetime (one searchWorker keeps one, summed at search end).
type enumStats struct {
	// sleepSets counts expanded states whose sleep set was non-empty.
	sleepSets int64
	// sleepSkips counts activation subsets skipped because they included
	// a sleeping (cannot-inject-this-cycle) message.
	sleepSkips int64
	// freezeSkips counts freeze subsets skipped because they froze a
	// message the same decision just activated.
	freezeSkips int64
	// pickSkips counts arbitration combinations skipped because an
	// activated message lost its entry channel to a rival.
	pickSkips int64
}

func (a *enumStats) add(b *enumStats) {
	a.sleepSets += b.sleepSets
	a.sleepSkips += b.sleepSkips
	a.freezeSkips += b.freezeSkips
	a.pickSkips += b.pickSkips
}

// intersects reports whether the two small id slices share an element.
func intersects(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// forEach streams every decision available in state s with the given stall
// budget to fn, in canonical order. The *Decision passed to fn — including
// its slices and maps — is scratch storage valid only during the call; the
// callee must apply or copy it before returning. Returning false from fn
// stops the enumeration; forEach reports whether it ran to completion.
func (e *decisionEnum) forEach(s *sim.Sim, budget int, cfg enumConfig, stats *enumStats, fn func(d *Decision) bool) bool {
	e.cfg = cfg
	e.stats = stats
	e.held = e.held[:0]
	for id := 0; id < s.NumMessages(); id++ {
		if s.Held(id) {
			e.held = append(e.held, id)
		}
	}
	if len(e.held) > maxSubsetItems {
		panic("mcheck: subset enumeration over more than 16 items")
	}
	// Sleep-set filter: a held message that cannot inject this cycle even
	// when activated (its entry channel is occupied by a flit that no
	// predicted release frees) contributes nothing to any decision that
	// activates it — the successor matches the same decision without the
	// activation except for the held bit, and the held variant retains
	// strictly more adversary power. CanAdvance for an uninjected message
	// is independent of the other activations (predicted releases only
	// consider fully-injected messages, and activations occupy no
	// channels), so one probe pass decides every subset.
	sleep := 0
	if cfg.por && len(e.held) > 0 {
		e.probe.CopyFrom(s)
		for _, id := range e.held {
			e.probe.SetHeld(id, false)
		}
		for i, id := range e.held {
			if !e.probe.CanAdvance(id) {
				sleep |= 1 << i
			}
		}
		if sleep != 0 && stats != nil {
			stats.sleepSets++
		}
	}
	for actMask := 0; actMask < 1<<len(e.held); actMask++ {
		if actMask&sleep != 0 {
			if stats != nil {
				stats.sleepSkips++
			}
			continue
		}
		e.act = subsetInto(e.act[:0], e.held, actMask)
		// Freezing depends on which messages can move after activation;
		// activation only enables injections, which cannot disable any
		// other message's movement, so compute movability on the probe
		// with the activation applied.
		e.probe.CopyFrom(s)
		for _, id := range e.act {
			e.probe.SetHeld(id, false)
		}
		e.movable = e.movable[:0]
		if budget > 0 {
			for id := 0; id < e.probe.NumMessages(); id++ {
				if !e.probe.CanAdvance(id) {
					continue
				}
				if cfg.inTransitOnly && e.probe.Delivering(id) {
					continue // already delivering: consumption may not stall
				}
				e.movable = append(e.movable, id)
			}
		}
		if len(e.movable) > maxSubsetItems {
			panic("mcheck: subset enumeration over more than 16 items")
		}
		for frzMask := 0; frzMask < 1<<len(e.movable); frzMask++ {
			e.frz = subsetInto(e.frz[:0], e.movable, frzMask)
			if len(e.frz) > budget {
				continue
			}
			// Activate-then-freeze futility: freezing a message the same
			// decision just activated burns a budget unit to keep it out of
			// the network for the cycle — the decision without either choice
			// reaches the same state modulo the held bit with a full budget
			// unit to spare, and holding retains strictly more adversary
			// power than an unheld source that must inject when it can.
			if cfg.por && len(e.act) > 0 && intersects(e.frz, e.act) {
				if stats != nil {
					stats.freezeSkips++
				}
				continue
			}
			for _, id := range e.frz {
				e.probe.SetFrozen(id, 1)
			}
			ok := e.maskLoop(fn)
			for _, id := range e.frz {
				e.probe.SetFrozen(id, 0)
			}
			if !ok {
				return false
			}
		}
	}
	return true
}

// maskLoop enumerates adaptive selection nondeterminism on the prepared
// probe: for every adaptive message with several acquirable candidates,
// which one it requests this cycle. With nothing to choose it yields a
// single nil mask assignment, mirroring the historical maskCombos.
func (e *decisionEnum) maskLoop(fn func(d *Decision) bool) bool {
	e.maskIDs = e.maskIDs[:0]
	e.maskCands = e.maskCands[:0]
	for id := 0; id < e.probe.NumMessages(); id++ {
		if !e.probe.IsAdaptive(id) {
			continue
		}
		cands := e.probe.AcquirableCandidates(id)
		// Under maskAll, a message that could acquire something may
		// instead be handed a stale selection onto an owned candidate;
		// with nothing acquirable it is blocked whatever it selects, so
		// the extra choices would only duplicate successors.
		if e.cfg.maskAll && len(cands) > 0 {
			if all := e.probe.Candidates(id); len(all) > len(cands) {
				cands = all
			}
		}
		if len(cands) < 2 {
			continue
		}
		e.maskIDs = append(e.maskIDs, id)
		e.maskCands = append(e.maskCands, cands)
	}
	n := len(e.maskIDs)
	e.maskDigits = resetDigits(e.maskDigits, n)
	for {
		var masks map[int]topology.ChannelID
		if n > 0 {
			clear(e.masks)
			for j, id := range e.maskIDs {
				c := e.maskCands[j][e.maskDigits[j]]
				e.masks[id] = c
				e.probe.SetMask(id, c)
			}
			masks = e.masks
		}
		cons := e.probe.Contentions()
		ok := e.pickLoop(cons, masks, fn)
		for _, id := range e.maskIDs {
			e.probe.SetMask(id, topology.None)
		}
		if !ok {
			return false
		}
		j := 0
		for j < n {
			e.maskDigits[j]++
			if e.maskDigits[j] < len(e.maskCands[j]) {
				break
			}
			e.maskDigits[j] = 0
			j++
		}
		if j == n {
			return true
		}
	}
}

// pickLoop enumerates arbitration outcomes for the probed contentions and
// yields one complete Decision per combination. With no contentions it
// yields a single nil pick assignment.
func (e *decisionEnum) pickLoop(cons []sim.Contention, masks map[int]topology.ChannelID, fn func(d *Decision) bool) bool {
	n := len(cons)
	e.pickDigits = resetDigits(e.pickDigits, n)
	for {
		var picks map[topology.ChannelID]int
		if n > 0 {
			clear(e.picks)
			for j := range cons {
				e.picks[cons[j].Channel] = cons[j].Contenders[e.pickDigits[j]]
			}
			picks = e.picks
		}
		// Pick-loss futility: an activated oblivious message whose entry
		// channel is contested and granted to a rival cannot inject this
		// cycle, so the combination is dominated by the same one without
		// the activation — removing the loser either leaves the grant
		// unchanged or hands the channel to the very rival these picks
		// already chose, producing the identical successor modulo the
		// loser's held bit. (A non-slept activated message always requests
		// its entry channel, so a contested channel always carries a pick
		// for it.)
		skip := false
		if e.cfg.por && n > 0 {
			for _, id := range e.act {
				if e.probe.IsAdaptive(id) {
					continue
				}
				if w, ok := picks[e.probe.PathChannel(id, 0)]; ok && w != id {
					skip = true
					break
				}
			}
		}
		if skip {
			if e.stats != nil {
				e.stats.pickSkips++
			}
		} else {
			d := Decision{Activate: e.act, Freeze: e.frz, Masks: masks, Picks: picks}
			if !fn(&d) {
				return false
			}
		}
		j := 0
		for j < n {
			e.pickDigits[j]++
			if e.pickDigits[j] < len(cons[j].Contenders) {
				break
			}
			e.pickDigits[j] = 0
			j++
		}
		if j == n {
			return true
		}
	}
}

// subsetInto appends the subset of ids selected by mask (bit i selects
// ids[i]) to dst and returns it; ascending-bitmask iteration over masks
// reproduces the historical subsets() order, empty set first.
func subsetInto(dst, ids []int, mask int) []int {
	for i := 0; mask != 0; i, mask = i+1, mask>>1 {
		if mask&1 != 0 {
			dst = append(dst, ids[i])
		}
	}
	return dst
}

// resetDigits returns a zeroed digit slice of length n, reusing d.
func resetDigits(d []int, n int) []int {
	if cap(d) < n {
		d = make([]int, n)
	}
	d = d[:n]
	for i := range d {
		d[i] = 0
	}
	return d
}

// copyDecision deep-copies a scratch Decision from the enumerator into an
// independently-owned value for a witness trace. Empty collections stay
// nil, matching the historical materialized decisions.
func copyDecision(d *Decision) Decision {
	var out Decision
	if len(d.Activate) > 0 {
		out.Activate = append([]int(nil), d.Activate...)
	}
	if len(d.Freeze) > 0 {
		out.Freeze = append([]int(nil), d.Freeze...)
	}
	if len(d.Masks) > 0 {
		out.Masks = make(map[int]topology.ChannelID, len(d.Masks))
		for k, v := range d.Masks {
			out.Masks[k] = v
		}
	}
	if len(d.Picks) > 0 {
		out.Picks = make(map[topology.ChannelID]int, len(d.Picks))
		for k, v := range d.Picks {
			out.Picks[k] = v
		}
	}
	return out
}
