package waitfor

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// twoRingsSim builds and deadlocks two disjoint 4-rings (the fixture from
// TestFindWithTwoDisjointCycles): messages 0..3 cycle on channels 0..3,
// messages 4..7 on channels 4..7.
func twoRingsSim(t *testing.T) *sim.Sim {
	t.Helper()
	net := topology.New("tworings")
	net.AddNodes(8)
	var chans [8]topology.ChannelID
	for r := 0; r < 2; r++ {
		base := topology.NodeID(4 * r)
		for i := 0; i < 4; i++ {
			chans[4*r+i] = net.AddChannel(base+topology.NodeID(i), base+topology.NodeID((i+1)%4), 0, "")
		}
	}
	s := sim.New(net, sim.Config{})
	for r := 0; r < 2; r++ {
		base := topology.NodeID(4 * r)
		for i := 0; i < 4; i++ {
			s.MustAdd(sim.MessageSpec{
				Src: base + topology.NodeID(i), Dst: base + topology.NodeID((i+2)%4),
				Length: 2,
				Path:   []topology.ChannelID{chans[4*r+i], chans[4*r+(i+1)%4]},
			})
		}
	}
	if out := s.Run(100); out.Result != sim.ResultDeadlock {
		t.Fatalf("setup: result = %v", out.Result)
	}
	return s
}

func TestSCCsTwoDisjointCycles(t *testing.T) {
	s := twoRingsSim(t)
	comps := SCCs(Build(s))
	if len(comps) != 2 {
		t.Fatalf("components = %v; want two disjoint cycles", comps)
	}
	if got := fmt.Sprint(comps[0]); got != "[0 1 2 3]" {
		t.Fatalf("first component = %v", got)
	}
	if got := fmt.Sprint(comps[1]); got != "[4 5 6 7]" {
		t.Fatalf("second component = %v", got)
	}
}

// TestSCCsWithDownChannels: SCC enumeration on a degraded network. Failing
// ring B's channel 4 before any traffic moves keeps message 4 out of the
// network, so ring B degrades to an acyclic chain ending at message 7 —
// which waits on the down-but-free channel 4 and therefore has no wait
// edge at all (down-ness is not ownership). Only ring A's cycle remains.
// Once an ownership cycle HAS formed, failing one of its channels changes
// nothing: the members block each other, not the link — which is exactly
// why all-oblivious cycles are permanent under faults.
func TestSCCsWithDownChannels(t *testing.T) {
	net := topology.New("tworings")
	net.AddNodes(8)
	var chans [8]topology.ChannelID
	for r := 0; r < 2; r++ {
		base := topology.NodeID(4 * r)
		for i := 0; i < 4; i++ {
			chans[4*r+i] = net.AddChannel(base+topology.NodeID(i), base+topology.NodeID((i+1)%4), 0, "")
		}
	}
	s := sim.New(net, sim.Config{})
	for r := 0; r < 2; r++ {
		base := topology.NodeID(4 * r)
		for i := 0; i < 4; i++ {
			s.MustAdd(sim.MessageSpec{
				Src: base + topology.NodeID(i), Dst: base + topology.NodeID((i+2)%4),
				Length: 2,
				Path:   []topology.ChannelID{chans[4*r+i], chans[4*r+(i+1)%4]},
			})
		}
	}
	s.FailChannel(chans[4])
	for i := 0; i < 20; i++ {
		s.Step()
	}
	g := Build(s)
	comps := SCCs(g)
	if len(comps) != 1 || fmt.Sprint(comps[0]) != "[0 1 2 3]" {
		t.Fatalf("components = %v; want only ring A's cycle", comps)
	}
	if _, ok := g.WaitsOn(7); ok {
		t.Fatal("message 7 waits on a down-but-free channel; that is not ownership blocking")
	}
	if _, ok := g.WaitsOn(5); !ok {
		t.Fatal("message 5 should still chain behind message 6")
	}
	if ld := FindLocal(s); ld == nil || fmt.Sprint(ld.Cycle) != "[0 1 2 3]" {
		t.Fatalf("FindLocal = %v; want ring A's cycle", ld)
	}
}

// TestTransientFaultNeverLocalDeadlock is the regression for fault-induced
// stalls: a message blocked purely by a transient outage forms no wait
// edge, so it can never be reported as (part of) a local deadlock — and
// after the repair the network drains.
func TestTransientFaultNeverLocalDeadlock(t *testing.T) {
	net := topology.NewRing(4, false)
	s := sim.New(net, sim.Config{})
	s.MustAdd(sim.MessageSpec{Src: 0, Dst: 2, Length: 2,
		Path: []topology.ChannelID{0, 1}})
	s.SetChannelDown(1, 6) // transient: repaired at cycle 6
	for i := 0; i < 20; i++ {
		if g := Build(s); len(g.Edges) != 0 {
			t.Fatalf("cycle %d: fault-only blocking produced wait edges %v", i, g.Edges)
		}
		if ld := FindLocal(s); ld != nil {
			t.Fatalf("cycle %d: transient outage reported as local deadlock %v", i, ld)
		}
		s.Step()
	}
	if !s.AllDelivered() {
		t.Fatal("message did not drain after the repair")
	}
}

// TestFindLocalIgnoresAdaptiveCycle: a Definition 6 cycle through an
// adaptive member is not *certain* — the member may later route around —
// so FindLocal must not report it even though Find does.
func TestFindLocalIgnoresAdaptiveCycle(t *testing.T) {
	net := topology.NewRing(4, false)
	s := sim.New(net, sim.Config{})
	for i := 0; i < 3; i++ {
		s.MustAdd(sim.MessageSpec{
			Src: topology.NodeID(i), Dst: topology.NodeID((i + 2) % 4),
			Length: 2,
			Path:   []topology.ChannelID{topology.ChannelID(i), topology.ChannelID((i + 1) % 4)},
		})
	}
	// The fourth member routes "adaptively" with a single candidate per
	// hop, reproducing the ring deadlock exactly.
	s.MustAdd(sim.MessageSpec{
		Src: 3, Dst: 1, Length: 2,
		Route: func(at topology.NodeID, in topology.ChannelID, dst topology.NodeID) []topology.ChannelID {
			switch at {
			case 3:
				return []topology.ChannelID{3}
			case 0:
				return []topology.ChannelID{0}
			}
			return nil
		},
	})
	if out := s.Run(100); out.Result != sim.ResultDeadlock {
		t.Fatalf("setup: result = %v", out.Result)
	}
	if d := Find(s); d == nil {
		t.Fatal("setup: Find should still report the cycle")
	}
	if ld := FindLocal(s); ld != nil {
		t.Fatalf("FindLocal = %v; an adaptive member makes the cycle uncertain", ld)
	}
}

// TestLocalDeadlockLiveSetClassification: outside messages whose remaining
// route needs a blocked channel are starving, not live; disjoint traffic
// is live.
func TestLocalDeadlockLiveSetClassification(t *testing.T) {
	net := topology.New("ringplus")
	net.AddNodes(6)
	var chans [4]topology.ChannelID
	for i := 0; i < 4; i++ {
		chans[i] = net.AddChannel(topology.NodeID(i), topology.NodeID((i+1)%4), 0, "")
	}
	side := net.AddChannel(4, 5, 0, "side")
	s := sim.New(net, sim.Config{})
	for i := 0; i < 4; i++ {
		s.MustAdd(sim.MessageSpec{
			Src: topology.NodeID(i), Dst: topology.NodeID((i + 2) % 4),
			Length: 2,
			Path:   []topology.ChannelID{chans[i], chans[(i+1)%4]},
		})
	}
	// Chained behind the cycle: needs blocked channel 0.
	chained := s.MustAdd(sim.MessageSpec{Src: 0, Dst: 1, Length: 1,
		Path: []topology.ChannelID{chans[0]}, InjectAt: 50})
	// Disjoint: never touches the ring.
	free := s.MustAdd(sim.MessageSpec{Src: 4, Dst: 5, Length: 1,
		Path: []topology.ChannelID{side}, InjectAt: 50})
	// Step until the ring cycle closes; the late injections keep both
	// outside messages pending so the classification is observable.
	for i := 0; i < 10; i++ {
		s.Step()
	}
	ld := FindLocal(s)
	if ld == nil {
		t.Fatal("no local deadlock found")
	}
	if got := fmt.Sprint(ld.Blocked); got != "[0 1 2 3]" {
		t.Fatalf("blocked = %v; want the ring channels", got)
	}
	if got := fmt.Sprint(ld.Live); got != fmt.Sprint([]int{free}) {
		t.Fatalf("live = %v; want only the disjoint message %d (not chained %d)", got, free, chained)
	}
	if err := VerifyLocal(s, ld); err != nil {
		t.Fatalf("VerifyLocal: %v", err)
	}
	if !strings.Contains(ld.String(), "blocking channels") {
		t.Fatalf("String = %q", ld.String())
	}
}

func TestVerifyLocalRejectsTamperedBlockedSet(t *testing.T) {
	s := twoRingsSim(t)
	ld := FindLocal(s)
	if ld == nil {
		t.Fatal("setup: no local deadlock")
	}
	if err := VerifyLocal(s, ld); err != nil {
		t.Fatalf("genuine witness rejected: %v", err)
	}
	bad := *ld
	bad.Blocked = append([]topology.ChannelID(nil), ld.Blocked...)
	bad.Blocked[0] = 7
	if err := VerifyLocal(s, &bad); err == nil {
		t.Fatal("VerifyLocal should reject a tampered blocked set")
	}
	if err := VerifyLocal(s, nil); err == nil {
		t.Fatal("VerifyLocal should reject nil")
	}
}
