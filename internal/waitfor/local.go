package waitfor

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Local deadlock detection, after Stramaglia, Keiren & Zantema: a local
// deadlock is a permanently blocked subnetwork inside a network that as a
// whole stays live. The blocked core is a Definition 6 cycle whose members
// can never release what the next member waits for; the channels that
// cycle pins down are dead forever, while traffic routed away from them
// still flows.

// SCCs returns the nontrivial strongly connected components of the
// wait-for graph, computed with Tarjan's algorithm. The graph restricted
// to blocked messages is functional (one out-edge each), so every
// nontrivial component is a simple cycle; a message never waits on a
// channel it owns itself, so there are no self-loops and singleton
// components are trivial. Members are returned ascending and components
// are ordered by their smallest member, making the enumeration
// deterministic.
func SCCs(g *Graph) [][]int {
	ids := make([]int, 0, len(g.Edges))
	for _, e := range g.Edges {
		ids = append(ids, e.From)
	}
	sort.Ints(ids)

	index := make(map[int]int, len(ids))
	low := make(map[int]int, len(ids))
	onStack := make(map[int]bool, len(ids))
	var stack []int
	next := 0
	var comps [][]int

	var strong func(v int)
	strong = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		// The single successor, when the target is itself a blocked node;
		// an unblocked owner is a sink and cannot be on any cycle.
		if e, ok := g.WaitsOn(v); ok {
			if _, blocked := g.next[e.To]; blocked {
				w := e.To
				if _, seen := index[w]; !seen {
					strong(w)
					if low[w] < low[v] {
						low[v] = low[w]
					}
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				sort.Ints(comp)
				comps = append(comps, comp)
			}
		}
	}
	for _, id := range ids {
		if _, seen := index[id]; !seen {
			strong(id)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// LocalDeadlock is a local-deadlock witness: a Definition 6 cycle that is
// provably permanent — every member is an in-network oblivious message, so
// no member can ever release the channel its predecessor waits for —
// together with the subnetwork it kills and the traffic that survives.
type LocalDeadlock struct {
	Deadlock
	// Blocked is the minimal blocked subnetwork: every channel owned by a
	// cycle member, ascending. No flit will ever traverse one of these
	// channels again.
	Blocked []topology.ChannelID
	// Live lists the non-terminal messages outside the cycle whose
	// remaining route avoids every Blocked channel — traffic the network
	// can still deliver. Adaptive outsiders are counted optimistically
	// (they may route around the dead set). A non-empty Live set is what
	// makes the deadlock local: the network as a whole stays live.
	Live []int
}

// String renders the cycle plus the channels it permanently blocks.
func (ld *LocalDeadlock) String() string {
	if ld == nil {
		return "<no local deadlock>"
	}
	return fmt.Sprintf("%s blocking channels %v (live: %v)", ld.Deadlock.String(), ld.Blocked, ld.Live)
}

// FindLocal looks for a permanently blocked Definition 6 cycle in the
// simulator's current state and, when one exists, reports the blocked
// subnetwork and the surviving traffic. Unlike Find it returns only
// *certain* cycles — every member in-network and oblivious. A cycle
// through an adaptive member may dissolve when that member routes around
// the contention, and a fault-induced stall never forms an edge at all:
// WaitsFor reports ownership blocking only, so a down-but-free channel
// breaks the chain and transient outages cannot masquerade as local
// deadlocks.
func FindLocal(s *sim.Sim) *LocalDeadlock {
	g := Build(s)
	for _, comp := range SCCs(g) {
		if ld := makeLocal(s, g, comp); ld != nil {
			return ld
		}
	}
	return nil
}

// makeLocal assembles and certainty-checks one SCC: members are walked in
// cycle order from the smallest, and the component qualifies only when
// every member holds a channel and routes obliviously.
func makeLocal(s *sim.Sim, g *Graph, comp []int) *LocalDeadlock {
	member := make(map[int]bool, len(comp))
	for _, id := range comp {
		if !s.Message(id).InNetwork || s.IsAdaptive(id) {
			return nil
		}
		member[id] = true
	}
	ld := &LocalDeadlock{}
	for id := comp[0]; len(ld.Cycle) < len(comp); {
		e, ok := g.WaitsOn(id)
		if !ok || !member[e.To] {
			return nil // not a closed cycle over the component
		}
		ld.Cycle = append(ld.Cycle, id)
		ld.Channels = append(ld.Channels, e.Channel)
		id = e.To
	}
	blocked := make(map[topology.ChannelID]bool)
	for c := 0; c < s.Network().NumChannels(); c++ {
		ch := topology.ChannelID(c)
		if member[s.Owner(ch)] {
			blocked[ch] = true
			ld.Blocked = append(ld.Blocked, ch)
		}
	}
	for id := 0; id < s.NumMessages(); id++ {
		if member[id] {
			continue
		}
		mv := s.Message(id)
		if mv.Delivered || mv.Dropped {
			continue
		}
		if s.IsAdaptive(id) {
			ld.Live = append(ld.Live, id)
			continue
		}
		// The oblivious remainder of the route: everything past the head.
		h := -1
		for i := len(mv.Queued) - 1; i >= 0; i-- {
			if mv.Queued[i] > 0 {
				h = i
				break
			}
		}
		live := true
		for _, c := range mv.Path[h+1:] {
			if blocked[c] {
				live = false
				break
			}
		}
		if live {
			ld.Live = append(ld.Live, id)
		}
	}
	return ld
}

// VerifyLocal checks a local-deadlock witness against the simulator state:
// the embedded Definition 6 clauses, the certainty conditions (oblivious
// in-network members), and that Blocked is exactly the set of channels the
// cycle owns. It returns an error describing the first violated clause.
func VerifyLocal(s *sim.Sim, ld *LocalDeadlock) error {
	if ld == nil {
		return fmt.Errorf("waitfor: empty local-deadlock configuration")
	}
	if err := Verify(s, &ld.Deadlock); err != nil {
		return err
	}
	member := make(map[int]bool, len(ld.Cycle))
	for _, id := range ld.Cycle {
		if s.IsAdaptive(id) {
			return fmt.Errorf("waitfor: member m%d is adaptive; the cycle is not certain", id)
		}
		member[id] = true
	}
	var owned []topology.ChannelID
	for c := 0; c < s.Network().NumChannels(); c++ {
		if member[s.Owner(topology.ChannelID(c))] {
			owned = append(owned, topology.ChannelID(c))
		}
	}
	if len(owned) != len(ld.Blocked) {
		return fmt.Errorf("waitfor: blocked set %v does not match channels owned by the cycle %v", ld.Blocked, owned)
	}
	for i, c := range owned {
		if ld.Blocked[i] != c {
			return fmt.Errorf("waitfor: blocked set %v does not match channels owned by the cycle %v", ld.Blocked, owned)
		}
	}
	return nil
}
