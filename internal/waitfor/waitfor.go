// Package waitfor builds message wait-for graphs over simulator states and
// extracts Definition 6 deadlock configurations.
//
// In a wormhole network each blocked message waits for exactly one channel
// — the next channel on its path — so the wait-for relation restricted to
// blocked messages is a functional graph: cycle detection is a pointer
// chase. A cycle in which every member has acquired at least one channel
// and waits on a channel owned by the next member is the cyclic deadlock
// configuration of Schwiebert's Definition 6 (and the packet wait-for cycle
// of Dally & Aoki).
package waitfor

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Edge records that message From is blocked waiting for Channel, which is
// currently owned by message To.
type Edge struct {
	From, To int
	Channel  topology.ChannelID
}

// Graph is the wait-for graph of one simulator state.
type Graph struct {
	// Edges holds one entry per blocked message, indexed by message ID
	// order. Messages that are not blocked have no entry.
	Edges []Edge
	// next maps a blocked message to its single outgoing edge index, -1
	// otherwise.
	next map[int]int
}

// Build captures the wait-for graph of the simulator's current state.
// Messages blocked at injection (holding no channel yet) are included as
// graph edges — they wait like any other message — but are never members
// of a Definition 6 cycle, because a cycle member must hold a channel.
func Build(s *sim.Sim) *Graph {
	g := &Graph{next: make(map[int]int)}
	for id := 0; id < s.NumMessages(); id++ {
		ch, owner, ok := s.WaitsFor(id)
		if !ok {
			continue
		}
		g.next[id] = len(g.Edges)
		g.Edges = append(g.Edges, Edge{From: id, To: owner, Channel: ch})
	}
	return g
}

// WaitsOn returns the edge leaving message id, if it is blocked.
func (g *Graph) WaitsOn(id int) (Edge, bool) {
	i, ok := g.next[id]
	if !ok {
		return Edge{}, false
	}
	return g.Edges[i], true
}

// Deadlock is a Definition 6 deadlock configuration: a cycle of messages
// each blocked on a channel held by the next member.
type Deadlock struct {
	// Cycle lists the member message IDs in cycle order: Cycle[i] waits
	// for Channels[i], which is held by Cycle[(i+1) % len].
	Cycle    []int
	Channels []topology.ChannelID
}

// String renders the deadlock cycle.
func (d *Deadlock) String() string {
	if d == nil {
		return "<no deadlock>"
	}
	var b strings.Builder
	for i, m := range d.Cycle {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "m%d(waits c%d)", m, d.Channels[i])
	}
	return b.String()
}

// Find looks for a Definition 6 deadlock cycle in the simulator's current
// state. It returns nil when none exists. The cycle it returns consists
// only of messages that have acquired at least one channel (in-network);
// injection-blocked messages may chain into a cycle but cannot belong to
// one, since the channel they would "hold" does not exist.
func Find(s *sim.Sim) *Deadlock {
	g := Build(s)
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make(map[int]int)
	for id := 0; id < s.NumMessages(); id++ {
		if _, blocked := g.next[id]; !blocked || state[id] != unvisited {
			continue
		}
		// Chase the functional graph from id.
		var stack []int
		cur := id
		for {
			if st := state[cur]; st == done {
				for _, v := range stack {
					state[v] = done
				}
				break
			} else if st == inStack {
				// Found a cycle: extract it from the stack.
				start := -1
				for i, v := range stack {
					if v == cur {
						start = i
						break
					}
				}
				cycle := stack[start:]
				if d := makeDeadlock(s, g, cycle); d != nil {
					return d
				}
				for _, v := range stack {
					state[v] = done
				}
				break
			}
			state[cur] = inStack
			stack = append(stack, cur)
			e, blocked := g.WaitsOn(cur)
			if !blocked {
				for _, v := range stack {
					state[v] = done
				}
				break
			}
			cur = e.To
		}
	}
	return nil
}

// makeDeadlock validates that every cycle member holds at least one channel
// (Definition 6 requires members to have acquired a channel) and assembles
// the report. A cycle containing an injection-blocked message is not a
// Definition 6 configuration.
func makeDeadlock(s *sim.Sim, g *Graph, cycle []int) *Deadlock {
	d := &Deadlock{}
	for _, id := range cycle {
		if !s.Message(id).InNetwork {
			return nil
		}
		e, _ := g.WaitsOn(id)
		d.Cycle = append(d.Cycle, id)
		d.Channels = append(d.Channels, e.Channel)
	}
	return d
}

// Verify checks the structural clauses of Definition 6 against the
// simulator state, returning an error describing the first violated clause.
// It is used to validate deadlock witnesses produced by searches.
func Verify(s *sim.Sim, d *Deadlock) error {
	if d == nil || len(d.Cycle) == 0 {
		return fmt.Errorf("waitfor: empty deadlock configuration")
	}
	for i, id := range d.Cycle {
		mv := s.Message(id)
		if mv.Delivered {
			return fmt.Errorf("waitfor: member m%d is delivered", id)
		}
		if mv.HeaderConsumed {
			return fmt.Errorf("waitfor: member m%d has its header at the destination", id)
		}
		if !mv.InNetwork {
			return fmt.Errorf("waitfor: member m%d holds no channel", id)
		}
		ch, owner, ok := s.WaitsFor(id)
		if !ok {
			return fmt.Errorf("waitfor: member m%d is not blocked", id)
		}
		if ch != d.Channels[i] {
			return fmt.Errorf("waitfor: member m%d waits on c%d, configuration claims c%d", id, ch, d.Channels[i])
		}
		next := d.Cycle[(i+1)%len(d.Cycle)]
		if owner != next {
			return fmt.Errorf("waitfor: member m%d's wanted channel c%d is held by m%d, not cycle successor m%d", id, ch, owner, next)
		}
	}
	return nil
}
