package waitfor

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// ringScenario is the canonical 4-node unidirectional ring deadlock.
func ringScenario(length int) sim.Scenario {
	net := topology.NewRing(4, false)
	sc := sim.Scenario{Name: "ring4", Net: net}
	for i := 0; i < 4; i++ {
		sc.Msgs = append(sc.Msgs, sim.MessageSpec{
			Src: topology.NodeID(i), Dst: topology.NodeID((i + 2) % 4),
			Length: length,
			Path:   []topology.ChannelID{topology.ChannelID(i), topology.ChannelID((i + 1) % 4)},
		})
	}
	return sc
}

func TestFindRingDeadlock(t *testing.T) {
	s := ringScenario(2).NewSim()
	out := s.Run(100)
	if out.Result != sim.ResultDeadlock {
		t.Fatalf("result = %v", out.Result)
	}
	d := Find(s)
	if d == nil {
		t.Fatal("deadlock cycle not found")
	}
	if len(d.Cycle) != 4 {
		t.Fatalf("cycle = %v; want all four messages", d.Cycle)
	}
	if err := Verify(s, d); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !strings.Contains(d.String(), "->") {
		t.Fatalf("String = %q", d.String())
	}
}

func TestNoDeadlockInFreeFlow(t *testing.T) {
	net := topology.NewRing(4, false)
	s := sim.New(net, sim.Config{})
	s.MustAdd(sim.MessageSpec{Src: 0, Dst: 2, Length: 2,
		Path: []topology.ChannelID{0, 1}})
	s.Step()
	if d := Find(s); d != nil {
		t.Fatalf("unexpected deadlock: %v", d)
	}
	g := Build(s)
	if len(g.Edges) != 0 {
		t.Fatalf("edges = %v; want none", g.Edges)
	}
}

func TestInjectionBlockedMessageNotInCycle(t *testing.T) {
	// Deadlocked ring plus a fifth message blocked at injection behind the
	// cycle: it must appear in the graph but not in the Definition 6 cycle.
	sc := ringScenario(2)
	sc.Msgs = append(sc.Msgs, sim.MessageSpec{
		Src: 0, Dst: 1, Length: 1,
		Path:     []topology.ChannelID{0},
		InjectAt: 1,
	})
	s := sc.NewSim()
	out := s.Run(100)
	if out.Result != sim.ResultDeadlock {
		t.Fatalf("result = %v", out.Result)
	}
	g := Build(s)
	if _, ok := g.WaitsOn(4); !ok {
		t.Fatal("injection-blocked message should wait in the graph")
	}
	d := Find(s)
	if d == nil {
		t.Fatal("cycle not found")
	}
	for _, id := range d.Cycle {
		if id == 4 {
			t.Fatal("injection-blocked message must not be a cycle member")
		}
	}
}

func TestVerifyRejectsBogusConfigurations(t *testing.T) {
	s := ringScenario(2).NewSim()
	s.Run(100)
	good := Find(s)
	if good == nil {
		t.Fatal("setup: no deadlock")
	}
	// Wrong channel.
	bad := &Deadlock{Cycle: append([]int(nil), good.Cycle...), Channels: append([]topology.ChannelID(nil), good.Channels...)}
	bad.Channels[0] = 99
	if err := Verify(s, bad); err == nil {
		t.Fatal("Verify should reject a wrong channel")
	}
	// Wrong successor order.
	bad2 := &Deadlock{Cycle: []int{good.Cycle[0], good.Cycle[2], good.Cycle[1], good.Cycle[3]},
		Channels: append([]topology.ChannelID(nil), good.Channels...)}
	if err := Verify(s, bad2); err == nil {
		t.Fatal("Verify should reject a scrambled cycle")
	}
	// Empty.
	if err := Verify(s, nil); err == nil {
		t.Fatal("Verify should reject nil")
	}
}

func TestVerifyRejectsUnblockedMember(t *testing.T) {
	net := topology.NewRing(4, false)
	s := sim.New(net, sim.Config{})
	a := s.MustAdd(sim.MessageSpec{Src: 0, Dst: 2, Length: 2, Path: []topology.ChannelID{0, 1}})
	b := s.MustAdd(sim.MessageSpec{Src: 2, Dst: 0, Length: 2, Path: []topology.ChannelID{2, 3}})
	s.Step()
	bogus := &Deadlock{Cycle: []int{a, b}, Channels: []topology.ChannelID{1, 3}}
	if err := Verify(s, bogus); err == nil {
		t.Fatal("Verify should reject non-blocked members")
	}
}

func TestChainIntoCycleFound(t *testing.T) {
	// A message outside the cycle waiting on a cycle member: Find must
	// still return the core cycle, not include the chain.
	sc := ringScenario(2)
	// Fifth message wants channel 1 as its first hop (source node 1).
	sc.Msgs = append(sc.Msgs, sim.MessageSpec{
		Src: 1, Dst: 3, Length: 1,
		Path:     []topology.ChannelID{1, 2},
		InjectAt: 2,
	})
	s := sc.NewSim()
	if out := s.Run(100); out.Result != sim.ResultDeadlock {
		t.Fatalf("result = %v", out.Result)
	}
	d := Find(s)
	if d == nil || len(d.Cycle) != 4 {
		t.Fatalf("deadlock = %v; want the 4-cycle", d)
	}
	if err := Verify(s, d); err != nil {
		t.Fatal(err)
	}
}

func TestNilDeadlockString(t *testing.T) {
	var d *Deadlock
	if d.String() != "<no deadlock>" {
		t.Fatalf("String = %q", d.String())
	}
}

func TestFindWithTwoDisjointCycles(t *testing.T) {
	// Two disjoint 4-ring deadlocks in one network: Find returns one valid
	// cycle; the chase must mark finished chains correctly.
	net := topology.New("tworings")
	net.AddNodes(8)
	var chans [8]topology.ChannelID
	for r := 0; r < 2; r++ {
		base := topology.NodeID(4 * r)
		for i := 0; i < 4; i++ {
			chans[4*r+i] = net.AddChannel(base+topology.NodeID(i), base+topology.NodeID((i+1)%4), 0, "")
		}
	}
	s := sim.New(net, sim.Config{})
	for r := 0; r < 2; r++ {
		base := topology.NodeID(4 * r)
		for i := 0; i < 4; i++ {
			s.MustAdd(sim.MessageSpec{
				Src: base + topology.NodeID(i), Dst: base + topology.NodeID((i+2)%4),
				Length: 2,
				Path:   []topology.ChannelID{chans[4*r+i], chans[4*r+(i+1)%4]},
			})
		}
	}
	if out := s.Run(100); out.Result != sim.ResultDeadlock {
		t.Fatalf("result = %v", out.Result)
	}
	d := Find(s)
	if d == nil || len(d.Cycle) != 4 {
		t.Fatalf("deadlock = %v", d)
	}
	if err := Verify(s, d); err != nil {
		t.Fatal(err)
	}
}

func TestBuildGraphWaitsOnAbsent(t *testing.T) {
	net := topology.NewRing(4, false)
	s := sim.New(net, sim.Config{})
	s.MustAdd(sim.MessageSpec{Src: 0, Dst: 1, Length: 1, Path: []topology.ChannelID{0}})
	g := Build(s)
	if _, ok := g.WaitsOn(0); ok {
		t.Fatal("unblocked message should have no wait edge")
	}
}
