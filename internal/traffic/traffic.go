// Package traffic generates synthetic workloads for the wormhole
// simulator: the standard destination patterns of the interconnection
// network literature (uniform random, transpose, bit reversal, hotspot,
// fixed permutation) sampled by a Bernoulli injection process per node per
// cycle. Workloads are deterministic for a fixed seed, so benchmark runs
// are reproducible.
package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Pattern maps a source node to a destination. Returning src means "no
// message this time" (the draw is skipped).
type Pattern func(src topology.NodeID, rng *rand.Rand) topology.NodeID

// Uniform returns the uniform-random pattern over n nodes.
func Uniform(n int) Pattern {
	return func(src topology.NodeID, rng *rand.Rand) topology.NodeID {
		return topology.NodeID(rng.Intn(n))
	}
}

// Transpose returns the matrix-transpose pattern on a square 2-D grid:
// node (x, y) sends to (y, x).
func Transpose(g *topology.Grid) Pattern {
	if len(g.Dims) != 2 || g.Dims[0] != g.Dims[1] {
		panic("traffic: Transpose needs a square 2-D grid")
	}
	return func(src topology.NodeID, _ *rand.Rand) topology.NodeID {
		c := g.Coords(src)
		return g.NodeAt([]int{c[1], c[0]})
	}
}

// BitReversal returns the bit-reversal pattern: the destination is the
// source's index with its bits reversed within the smallest power of two
// covering n. Sources whose reversal falls outside the network send to
// themselves (skipped).
func BitReversal(n int) Pattern {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	return func(src topology.NodeID, _ *rand.Rand) topology.NodeID {
		v := uint(src)
		r := uint(0)
		for i := 0; i < bits; i++ {
			r = r<<1 | (v>>i)&1
		}
		if int(r) >= n {
			return src
		}
		return topology.NodeID(r)
	}
}

// Hotspot returns a pattern that sends to the hot node with probability
// frac and uniformly otherwise.
func Hotspot(n int, hot topology.NodeID, frac float64) Pattern {
	if frac < 0 || frac > 1 {
		panic("traffic: hotspot fraction must be in [0,1]")
	}
	return func(src topology.NodeID, rng *rand.Rand) topology.NodeID {
		if rng.Float64() < frac {
			return hot
		}
		return topology.NodeID(rng.Intn(n))
	}
}

// Permutation returns the fixed-permutation pattern: node i always sends
// to perm[i]. The slice is captured; len(perm) must cover every node.
func Permutation(perm []topology.NodeID) Pattern {
	return func(src topology.NodeID, _ *rand.Rand) topology.NodeID {
		return perm[src]
	}
}

// Workload describes a synthetic load on a routed network.
type Workload struct {
	Alg     routing.Algorithm
	Pattern Pattern
	// Rate is the per-node, per-cycle injection probability in (0, 1].
	Rate float64
	// Length is the message length in flits.
	Length int
	// Duration is the number of cycles during which sources inject.
	Duration int
	// Seed makes the workload deterministic.
	Seed int64
}

// Messages samples the workload into a concrete message list. Messages
// whose pattern destination equals their source, or for which the routing
// algorithm defines no path, are skipped.
func (w Workload) Messages() ([]sim.MessageSpec, error) {
	if w.Rate <= 0 || w.Rate > 1 {
		return nil, fmt.Errorf("traffic: rate %v out of (0,1]", w.Rate)
	}
	if w.Length < 1 {
		return nil, fmt.Errorf("traffic: length %d < 1", w.Length)
	}
	if w.Duration < 1 {
		return nil, fmt.Errorf("traffic: duration %d < 1", w.Duration)
	}
	net := w.Alg.Network()
	rng := rand.New(rand.NewSource(w.Seed))
	var msgs []sim.MessageSpec
	n := net.NumNodes()
	for t := 0; t < w.Duration; t++ {
		for s := 0; s < n; s++ {
			if rng.Float64() >= w.Rate {
				continue
			}
			src := topology.NodeID(s)
			dst := w.Pattern(src, rng)
			if dst == src {
				continue
			}
			path := w.Alg.Path(src, dst)
			if path == nil {
				return nil, fmt.Errorf("traffic: no path %d -> %d under %s", src, dst, w.Alg.Name())
			}
			msgs = append(msgs, sim.MessageSpec{
				Src: src, Dst: dst, Length: w.Length,
				Path:     path,
				InjectAt: t,
				Label:    fmt.Sprintf("t%d.s%d", t, s),
			})
		}
	}
	return msgs, nil
}

// Run samples the workload, simulates it to completion (or maxCycles) and
// returns the simulator statistics together with the outcome.
func (w Workload) Run(cfg sim.Config, maxCycles int) (sim.Stats, sim.Outcome, error) {
	msgs, err := w.Messages()
	if err != nil {
		return sim.Stats{}, sim.Outcome{}, err
	}
	s := sim.New(w.Alg.Network(), cfg)
	for _, m := range msgs {
		if _, err := s.Add(m); err != nil {
			return sim.Stats{}, sim.Outcome{}, err
		}
	}
	out := s.Run(maxCycles)
	return sim.Collect(s), out, nil
}
