package traffic

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func mesh44() (*topology.Grid, routing.Algorithm) {
	g := topology.NewMesh([]int{4, 4}, 1)
	return g, routing.DimensionOrder(g)
}

func TestUniformWorkloadDeterministic(t *testing.T) {
	_, alg := mesh44()
	w := Workload{Alg: alg, Pattern: Uniform(16), Rate: 0.3, Length: 4, Duration: 20, Seed: 7}
	a, err := w.Messages()
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Messages()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic sample: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Src != b[i].Src || a[i].Dst != b[i].Dst || a[i].InjectAt != b[i].InjectAt {
			t.Fatalf("message %d differs", i)
		}
	}
	w.Seed = 8
	c, _ := w.Messages()
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i].Src != c[i].Src || a[i].Dst != c[i].Dst {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds should differ")
		}
	}
}

func TestWorkloadRateRoughlyHonored(t *testing.T) {
	_, alg := mesh44()
	w := Workload{Alg: alg, Pattern: Uniform(16), Rate: 0.5, Length: 1, Duration: 100, Seed: 1}
	msgs, err := w.Messages()
	if err != nil {
		t.Fatal(err)
	}
	// Expected draws: 16 nodes x 100 cycles x 0.5 = 800, minus self-sends
	// (~1/16). Allow a broad band.
	if len(msgs) < 500 || len(msgs) > 900 {
		t.Fatalf("messages = %d; want roughly 750", len(msgs))
	}
	for _, m := range msgs {
		if m.Src == m.Dst {
			t.Fatal("self-send leaked through")
		}
		if m.InjectAt < 0 || m.InjectAt >= 100 {
			t.Fatalf("inject time %d out of range", m.InjectAt)
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	_, alg := mesh44()
	for _, w := range []Workload{
		{Alg: alg, Pattern: Uniform(16), Rate: 0, Length: 1, Duration: 1},
		{Alg: alg, Pattern: Uniform(16), Rate: 1.5, Length: 1, Duration: 1},
		{Alg: alg, Pattern: Uniform(16), Rate: 0.5, Length: 0, Duration: 1},
		{Alg: alg, Pattern: Uniform(16), Rate: 0.5, Length: 1, Duration: 0},
	} {
		if _, err := w.Messages(); err == nil {
			t.Fatalf("workload %+v should be rejected", w)
		}
	}
}

func TestTransposePattern(t *testing.T) {
	g, _ := mesh44()
	p := Transpose(g)
	src := g.NodeAt([]int{1, 3})
	if dst := p(src, nil); dst != g.NodeAt([]int{3, 1}) {
		t.Fatalf("transpose of (1,3) = %v", g.Coords(dst))
	}
	diag := g.NodeAt([]int{2, 2})
	if dst := p(diag, nil); dst != diag {
		t.Fatal("diagonal nodes map to themselves")
	}
}

func TestTransposeRejectsNonSquare(t *testing.T) {
	g := topology.NewMesh([]int{2, 4}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Transpose(g)
}

func TestBitReversalPattern(t *testing.T) {
	p := BitReversal(16)
	// 4 bits: 0b0001 -> 0b1000 = 8.
	if dst := p(1, nil); dst != 8 {
		t.Fatalf("bitrev(1) = %d; want 8", dst)
	}
	if dst := p(6, nil); dst != 6 {
		t.Fatalf("bitrev(6=0110) = %d; want 6", dst)
	}
	// Non-power-of-two: out-of-range reversals collapse to self.
	p10 := BitReversal(10)
	if dst := p10(1, nil); dst != 8 {
		t.Fatalf("bitrev10(1) = %d; want 8", dst)
	}
	if dst := p10(3, nil); dst != 3 { // 0011 -> 1100 = 12 >= 10
		t.Fatalf("bitrev10(3) = %d; want self", dst)
	}
}

func TestHotspotPattern(t *testing.T) {
	_, alg := mesh44()
	w := Workload{Alg: alg, Pattern: Hotspot(16, 5, 0.8), Rate: 0.5, Length: 1, Duration: 50, Seed: 3}
	msgs, err := w.Messages()
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for _, m := range msgs {
		if m.Dst == 5 {
			hot++
		}
	}
	if hot < len(msgs)/2 {
		t.Fatalf("hotspot got %d/%d messages; want most", hot, len(msgs))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad fraction")
		}
	}()
	Hotspot(16, 0, 1.5)
}

func TestPermutationPattern(t *testing.T) {
	perm := make([]topology.NodeID, 16)
	for i := range perm {
		perm[i] = topology.NodeID((i + 1) % 16)
	}
	p := Permutation(perm)
	if dst := p(3, nil); dst != 4 {
		t.Fatalf("perm(3) = %d", dst)
	}
}

func TestWorkloadRunDeliversOnDORMesh(t *testing.T) {
	_, alg := mesh44()
	w := Workload{Alg: alg, Pattern: Uniform(16), Rate: 0.1, Length: 4, Duration: 50, Seed: 11}
	stats, out, err := w.Run(sim.Config{}, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result != sim.ResultDelivered {
		t.Fatalf("outcome = %v; DOR on a mesh cannot deadlock", out.Result)
	}
	if stats.Delivered != stats.Messages || stats.Delivered == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.AvgLatency < 1 {
		t.Fatalf("latency = %v", stats.AvgLatency)
	}
}

func TestWorkloadRunDetectsRingDeadlock(t *testing.T) {
	// Shortest-path routing on a unidirectional ring under heavy uniform
	// load deadlocks quickly.
	net := topology.NewRing(6, false)
	alg := routing.ShortestBFS(net)
	w := Workload{Alg: alg, Pattern: Uniform(6), Rate: 0.9, Length: 6, Duration: 50, Seed: 2}
	_, out, err := w.Run(sim.Config{}, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result != sim.ResultDeadlock {
		t.Fatalf("outcome = %v; want deadlock", out.Result)
	}
}
