package traffic

import (
	"math/rand"

	"repro/internal/topology"
)

// Adversarial and permutation patterns beyond the classic set in
// traffic.go. All of them are deterministic given the seed, so saturation
// sweeps built on them reproduce byte-for-byte.

// Tornado returns the tornado pattern on a grid: each coordinate moves
// just under halfway around its dimension, dst_i = (src_i + ceil(k_i/2) - 1)
// mod k_i. On tori this concentrates load in one rotational direction —
// the classic worst case for dimension-order routing; on meshes it still
// produces long same-direction routes.
func Tornado(g *topology.Grid) Pattern {
	return func(src topology.NodeID, _ *rand.Rand) topology.NodeID {
		c := g.Coords(src)
		out := make([]int, len(c))
		for i, k := range g.Dims {
			out[i] = (c[i] + (k+1)/2 - 1) % k
		}
		return g.NodeAt(out)
	}
}

// Complement returns the dimension-complement pattern: dst_i = k_i-1-src_i
// in every dimension (bit complement on binary radices). Every route
// crosses the network bisection, so it stresses center channels.
func Complement(g *topology.Grid) Pattern {
	return func(src topology.NodeID, _ *rand.Rand) topology.NodeID {
		c := g.Coords(src)
		out := make([]int, len(c))
		for i, k := range g.Dims {
			out[i] = k - 1 - c[i]
		}
		return g.NodeAt(out)
	}
}

// Shuffle returns the perfect-shuffle pattern over n nodes: the
// destination is the source's index rotated left by one bit within the
// smallest power of two covering n. Sources whose image falls outside the
// network send to themselves (skipped).
func Shuffle(n int) Pattern {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	return func(src topology.NodeID, _ *rand.Rand) topology.NodeID {
		if bits == 0 {
			return src
		}
		v := uint(src)
		r := (v<<1 | v>>(bits-1)) & (1<<bits - 1)
		if int(r) >= n {
			return src
		}
		return topology.NodeID(r)
	}
}

// RandomPermutation returns a fixed permutation pattern sampled uniformly
// from S_n by the given seed: node i always sends to perm[i], with any
// fixed points left as self-sends (skipped). Sweeping seeds explores the
// space of adversarial permutations the oblivious-routing literature
// bounds worst-case throughput over.
func RandomPermutation(n int, seed int64) Pattern {
	rng := rand.New(rand.NewSource(seed))
	perm := make([]topology.NodeID, n)
	for i, v := range rng.Perm(n) {
		perm[i] = topology.NodeID(v)
	}
	return Permutation(perm)
}
