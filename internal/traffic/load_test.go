package traffic

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestBernoulliRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Bernoulli(0.3).New()
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if p.Arrive(rng) {
			hits++
		}
	}
	got := float64(hits) / draws
	if got < 0.28 || got > 0.32 {
		t.Fatalf("Bernoulli(0.3) measured rate %v", got)
	}
}

func TestBurstyLongRunRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := Bursty(0.1, 20, 4).New()
	hits := 0
	const draws = 400000
	for i := 0; i < draws; i++ {
		if p.Arrive(rng) {
			hits++
		}
	}
	got := float64(hits) / draws
	if got < 0.085 || got > 0.115 {
		t.Fatalf("Bursty(0.1, 20, 4) long-run rate %v, want ~0.1", got)
	}
}

func TestBurstyBurstsAreClumped(t *testing.T) {
	// The same long-run rate must arrive in clumps: the lag-1
	// autocorrelation of arrivals is strongly positive for MMPP and ~0
	// for Bernoulli.
	count := func(p Process, rng *rand.Rand) (pairs, hits int) {
		prev := false
		for i := 0; i < 200000; i++ {
			cur := p.Arrive(rng)
			if cur {
				hits++
				if prev {
					pairs++
				}
			}
			prev = cur
		}
		return pairs, hits
	}
	bPairs, bHits := count(Bursty(0.1, 20, 5).New(), rand.New(rand.NewSource(3)))
	uPairs, uHits := count(Bernoulli(0.1).New(), rand.New(rand.NewSource(3)))
	bClump := float64(bPairs) / float64(bHits)
	uClump := float64(uPairs) / float64(uHits)
	if bClump < 2*uClump {
		t.Fatalf("bursty arrivals not clumped: P(arrival|prev arrival) bursty=%v bernoulli=%v", bClump, uClump)
	}
}

func TestAdversarialPatterns(t *testing.T) {
	g := topology.NewMesh([]int{4, 4}, 1)
	tor := Tornado(g)
	if got := tor(g.NodeAt([]int{0, 0}), nil); got != g.NodeAt([]int{1, 1}) {
		t.Fatalf("tornado(0,0) = %d, want node (1,1)", got)
	}
	comp := Complement(g)
	if got := comp(g.NodeAt([]int{1, 3}), nil); got != g.NodeAt([]int{2, 0}) {
		t.Fatalf("complement(1,3) = %d, want node (2,0)", got)
	}
	sh := Shuffle(16)
	if got := sh(topology.NodeID(0b0110), nil); got != topology.NodeID(0b1100) {
		t.Fatalf("shuffle(0110) = %04b, want 1100", got)
	}
	if got := sh(topology.NodeID(0b1001), nil); got != topology.NodeID(0b0011) {
		t.Fatalf("shuffle(1001) = %04b, want 0011", got)
	}
	// A random permutation is a bijection and deterministic per seed.
	perm := RandomPermutation(16, 42)
	seen := map[topology.NodeID]bool{}
	for i := 0; i < 16; i++ {
		seen[perm(topology.NodeID(i), nil)] = true
	}
	if len(seen) != 16 {
		t.Fatalf("RandomPermutation not a bijection: %d distinct images", len(seen))
	}
	again := RandomPermutation(16, 42)
	for i := 0; i < 16; i++ {
		if perm(topology.NodeID(i), nil) != again(topology.NodeID(i), nil) {
			t.Fatal("RandomPermutation not deterministic per seed")
		}
	}
}

func TestOpenLoopLowLoadDelivers(t *testing.T) {
	_, alg := mesh44()
	l := Load{
		Alg: alg, Pattern: Uniform(16), Arrivals: Bernoulli(0.02),
		Length: 4, Warmup: 100, Measure: 400, Drain: 2000, Seed: 11,
	}
	r, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked {
		t.Fatalf("DOR mesh deadlocked at 2%% load: %+v", r)
	}
	if r.Generated == 0 || r.Delivered != r.Generated || r.Backlog != 0 {
		t.Fatalf("low load should fully drain: %+v", r)
	}
	if r.LatencySamples == 0 || r.P50Latency < 4 || r.P99Latency < r.P50Latency {
		t.Fatalf("implausible latency stats: %+v", r)
	}
	if r.Throughput <= 0 {
		t.Fatalf("no accepted throughput: %+v", r)
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	_, alg := mesh44()
	l := Load{
		Alg: alg, Pattern: Uniform(16), Arrivals: Bursty(0.05, 10, 3),
		Length: 4, Warmup: 50, Measure: 200, Drain: 1000, Seed: 5,
	}
	a, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("open-loop run not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestOpenLoopSaturationBacklog(t *testing.T) {
	// At an offered load far beyond capacity the source queues must grow:
	// generated >> delivered, backlog large, and queueing-inclusive P99
	// far above the zero-load latency.
	_, alg := mesh44()
	l := Load{
		Alg: alg, Pattern: Uniform(16), Arrivals: Bernoulli(0.9),
		Length: 4, Warmup: 100, Measure: 400, Drain: 0, Seed: 13,
	}
	r, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked {
		t.Fatalf("DOR mesh must not deadlock: %+v", r)
	}
	if r.Backlog == 0 || float64(r.Delivered) > 0.8*float64(r.Generated) {
		t.Fatalf("90%% offered load should saturate a 4x4 mesh: %+v", r)
	}
}

func TestClosedLoopSelfThrottles(t *testing.T) {
	_, alg := mesh44()
	l := Load{
		Alg: alg, Pattern: Transpose(topology.NewMesh([]int{4, 4}, 1)),
		Length: 4, Mode: ClosedLoop, Window: 2,
		Warmup: 100, Measure: 400, Drain: 2000, Seed: 17,
	}
	r, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked {
		t.Fatalf("closed-loop transpose deadlocked: %+v", r)
	}
	if r.Delivered == 0 || r.Throughput <= 0 {
		t.Fatalf("closed loop made no progress: %+v", r)
	}
	// Closed loop cannot build an unbounded backlog: at most Window per
	// source is ever outstanding.
	if r.Backlog > 2*16 {
		t.Fatalf("closed-loop backlog exceeds the window bound: %+v", r)
	}
}

func TestOpenLoopDetectsDeadlock(t *testing.T) {
	// Unrestricted shortest-path routing on a bidirectional ring has a
	// cyclic channel dependency; sustained load must wedge it, and the
	// engine must report deadlock rather than spin to the horizon.
	net := topology.NewRing(8, true)
	alg := routing.ShortestBFS(net)
	l := Load{
		Alg: alg, Pattern: Uniform(8), Arrivals: Bernoulli(0.5),
		Length: 8, Warmup: 200, Measure: 1000, Drain: 0, Seed: 3,
		Config: sim.Config{BufferDepth: 1},
	}
	r, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deadlocked {
		t.Fatalf("expected deadlock on bidirectional ring under load: %+v", r)
	}
	if r.Cycles >= l.Warmup+l.Measure {
		t.Fatalf("deadlock should cut the run short: %+v", r)
	}
}
