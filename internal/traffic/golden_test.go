package traffic

// Golden regression for the sketch-backed latency statistics. The
// expected figures were recorded from the slice-backed implementation on
// the canonical loadtest run (4x4 mesh, DOR, uniform Bernoulli, warmup
// 500 / measure 600 / drain 20000, loadtest's per-point seed schedule),
// so this test pins the replacement contract: swapping the grow-forever
// sample slice for the telemetry sketch changed no published number.

import "testing"

func TestOpenLoopGoldenLatencyStats(t *testing.T) {
	_, alg := mesh44()
	golden := []struct {
		rate               float64
		seed               int64
		samples            int
		avg                float64
		p50, p95, p99, max int
	}{
		{0.05, 1, 452, 23.758849557522122, 19, 55, 78, 91},
		{0.15, 1_000_004, 1328, 1067.1227409638554, 1058, 1584, 1655, 1682},
		{0.25, 2_000_007, 2217, 2285.277852954443, 2270, 3135, 3253, 3315},
	}
	for _, g := range golden {
		l := Load{
			Alg: alg, Pattern: Uniform(16), Arrivals: Bernoulli(g.rate),
			Length: 8, Warmup: 500, Measure: 600, Drain: 20000, Seed: g.seed,
		}
		r, err := l.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.LatencySamples != g.samples || r.AvgLatency != g.avg ||
			r.P50Latency != g.p50 || r.P95Latency != g.p95 ||
			r.P99Latency != g.p99 || r.MaxLatency != g.max {
			t.Errorf("rate %.2f: got samples=%d avg=%v p50=%d p95=%d p99=%d max=%d, want %+v",
				g.rate, r.LatencySamples, r.AvgLatency, r.P50Latency, r.P95Latency, r.P99Latency, r.MaxLatency, g)
		}
		if int(r.Latency.Count()) != r.LatencySamples {
			t.Errorf("rate %.2f: sketch count %d != samples %d", g.rate, r.Latency.Count(), r.LatencySamples)
		}
	}
}
