package traffic

import (
	"fmt"
	"math/rand"
)

// Process models one source's arrival process: each cycle the load engine
// asks whether this source generates a new message. Implementations carry
// per-source state (e.g. the MMPP on/off phase), so every source gets its
// own instance from a Factory.
type Process interface {
	// Arrive reports whether a message is generated this cycle.
	Arrive(rng *rand.Rand) bool
}

// Factory builds one independent Process per source node.
type Factory struct {
	Name string
	New  func() Process
}

type bernoulliProcess struct{ rate float64 }

func (p bernoulliProcess) Arrive(rng *rand.Rand) bool { return rng.Float64() < p.rate }

// Bernoulli returns the memoryless arrival process: a message is generated
// each cycle with probability rate, independently.
func Bernoulli(rate float64) Factory {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("traffic: Bernoulli rate %v out of [0,1]", rate))
	}
	return Factory{
		Name: "bernoulli",
		New:  func() Process { return bernoulliProcess{rate: rate} },
	}
}

type burstyProcess struct {
	onRate float64 // arrival probability while in the ON phase
	toOff  float64 // ON -> OFF switch probability per cycle
	toOn   float64 // OFF -> ON switch probability per cycle
	on     bool
}

func (p *burstyProcess) Arrive(rng *rand.Rand) bool {
	// Phase transition first, then the arrival draw, so a one-cycle burst
	// is possible and the draw order is independent of the outcome.
	if p.on {
		if rng.Float64() < p.toOff {
			p.on = false
		}
	} else {
		if rng.Float64() < p.toOn {
			p.on = true
		}
	}
	return p.on && rng.Float64() < p.onRate
}

// Bursty returns a two-state MMPP (Markov-modulated) arrival process with
// long-run average rate `rate`: the source alternates between an ON phase
// injecting at peak*rate and a silent OFF phase. burstLen is the mean ON
// phase length in cycles; peak > 1 is the ON-phase rate multiplier. The
// OFF phase mean length is burstLen*(peak-1), so the ON-phase duty cycle
// is 1/peak and the average arrival rate works out to exactly rate.
func Bursty(rate, burstLen, peak float64) Factory {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("traffic: Bursty rate %v out of [0,1]", rate))
	}
	if burstLen < 1 {
		panic(fmt.Sprintf("traffic: Bursty burst length %v < 1", burstLen))
	}
	if peak <= 1 {
		panic(fmt.Sprintf("traffic: Bursty peak factor %v must exceed 1", peak))
	}
	onRate := rate * peak
	if onRate > 1 {
		onRate = 1 // saturated bursts: rate is capped, average droops
	}
	return Factory{
		Name: "bursty",
		New: func() Process {
			return &burstyProcess{
				onRate: onRate,
				toOff:  1 / burstLen,
				toOn:   1 / (burstLen * (peak - 1)),
				// Start OFF: warmup absorbs the transient before measurement.
			}
		},
	}
}
