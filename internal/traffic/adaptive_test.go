package traffic

import (
	"testing"

	"repro/internal/adaptive"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestAdaptiveWorkloadDuatoDelivers(t *testing.T) {
	g := topology.NewMesh([]int{4, 4}, 2)
	w := AdaptiveWorkload{
		Alg:     adaptive.DuatoMesh(g),
		Pattern: Uniform(16),
		Rate:    0.1, Length: 4, Duration: 60, Seed: 5,
	}
	stats, out, err := w.Run(sim.Config{}, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result != sim.ResultDelivered {
		t.Fatalf("duato workload outcome = %v", out.Result)
	}
	if stats.Delivered == 0 || stats.Delivered != stats.Messages {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestAdaptiveWorkloadFullyAdaptiveDeadlocks(t *testing.T) {
	g := topology.NewMesh([]int{4, 4}, 1)
	w := AdaptiveWorkload{
		Alg:     adaptive.FullyAdaptiveMinimal(g),
		Pattern: Uniform(16),
		Rate:    0.3, Length: 8, Duration: 40, Seed: 1,
	}
	_, out, err := w.Run(sim.Config{}, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result != sim.ResultDeadlock {
		t.Fatalf("fully adaptive heavy load = %v; want deadlock", out.Result)
	}
}

func TestAdaptiveWorkloadValidation(t *testing.T) {
	g := topology.NewMesh([]int{3, 3}, 1)
	alg := adaptive.FullyAdaptiveMinimal(g)
	for _, w := range []AdaptiveWorkload{
		{Alg: alg, Pattern: Uniform(9), Rate: 0, Length: 1, Duration: 1},
		{Alg: alg, Pattern: Uniform(9), Rate: 0.5, Length: 0, Duration: 1},
		{Alg: alg, Pattern: Uniform(9), Rate: 0.5, Length: 1, Duration: 0},
	} {
		if _, err := w.Messages(); err == nil {
			t.Fatalf("workload %+v should be rejected", w)
		}
	}
}
