package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/adaptive"
	"repro/internal/sim"
	"repro/internal/topology"
)

// AdaptiveWorkload is the adaptive-routing counterpart of Workload: the
// same Bernoulli injection process, routed per hop by an adaptive
// candidate function instead of fixed paths.
type AdaptiveWorkload struct {
	Alg      adaptive.Algorithm
	Pattern  Pattern
	Rate     float64
	Length   int
	Duration int
	Seed     int64
}

// Messages samples the workload into a concrete message list.
func (w AdaptiveWorkload) Messages() ([]sim.MessageSpec, error) {
	if w.Rate <= 0 || w.Rate > 1 {
		return nil, fmt.Errorf("traffic: rate %v out of (0,1]", w.Rate)
	}
	if w.Length < 1 {
		return nil, fmt.Errorf("traffic: length %d < 1", w.Length)
	}
	if w.Duration < 1 {
		return nil, fmt.Errorf("traffic: duration %d < 1", w.Duration)
	}
	rng := rand.New(rand.NewSource(w.Seed))
	var msgs []sim.MessageSpec
	n := w.Alg.Net.NumNodes()
	for t := 0; t < w.Duration; t++ {
		for s := 0; s < n; s++ {
			if rng.Float64() >= w.Rate {
				continue
			}
			src := topology.NodeID(s)
			dst := w.Pattern(src, rng)
			if dst == src {
				continue
			}
			msgs = append(msgs, w.Alg.Spec(src, dst, w.Length, t))
		}
	}
	return msgs, nil
}

// Run samples the workload, simulates it, and returns statistics and the
// outcome.
func (w AdaptiveWorkload) Run(cfg sim.Config, maxCycles int) (sim.Stats, sim.Outcome, error) {
	msgs, err := w.Messages()
	if err != nil {
		return sim.Stats{}, sim.Outcome{}, err
	}
	s := sim.New(w.Alg.Net, cfg)
	for _, m := range msgs {
		if _, err := s.Add(m); err != nil {
			return sim.Stats{}, sim.Outcome{}, err
		}
	}
	out := s.Run(maxCycles)
	return sim.Collect(s), out, nil
}
