package cdg

import (
	"sort"

	"repro/internal/topology"
)

// Cycle is one elementary circuit of the dependency graph: a sequence of
// distinct channels c0, c1, ..., ck-1 with a dependency from each ci to
// c(i+1) mod k. Cycles are canonicalized to start at their smallest channel.
type Cycle []topology.ChannelID

// canonical rotates the cycle so the smallest channel comes first.
func (c Cycle) canonical() Cycle {
	if len(c) == 0 {
		return c
	}
	min := 0
	for i, v := range c {
		if v < c[min] {
			min = i
		}
	}
	out := make(Cycle, 0, len(c))
	out = append(out, c[min:]...)
	out = append(out, c[:min]...)
	return out
}

// Contains reports whether the cycle includes the channel.
func (c Cycle) Contains(ch topology.ChannelID) bool {
	for _, v := range c {
		if v == ch {
			return true
		}
	}
	return false
}

// Cycles enumerates the elementary cycles of the graph using Johnson's
// algorithm, running within each strongly connected component. At most
// limit cycles are returned (limit <= 0 means no bound); the second result
// reports whether enumeration stopped early because the limit was reached.
// Cycles are returned in canonical form, sorted by (length, lexicographic).
func (g *Graph) Cycles(limit int) ([]Cycle, bool) {
	var cycles []Cycle
	truncated := false
	for _, comp := range g.SCCs() {
		if truncated {
			break
		}
		inComp := make(map[topology.ChannelID]bool, len(comp))
		for _, c := range comp {
			inComp[c] = true
		}
		// Johnson: for each start vertex s (ascending), enumerate cycles
		// whose smallest vertex is s, restricted to vertices >= s in the
		// component.
		for _, s := range comp {
			e := &enumerator{
				g:        g,
				start:    s,
				allowed:  func(c topology.ChannelID) bool { return inComp[c] && c >= s },
				blocked:  make(map[topology.ChannelID]bool),
				blockMap: make(map[topology.ChannelID]map[topology.ChannelID]bool),
				limit:    limit,
			}
			e.cycles = cycles
			e.circuit(s)
			cycles = e.cycles
			if limit > 0 && len(cycles) >= limit {
				truncated = true
				break
			}
		}
	}
	if limit > 0 && len(cycles) > limit {
		cycles = cycles[:limit]
	}
	sort.Slice(cycles, func(i, j int) bool {
		if len(cycles[i]) != len(cycles[j]) {
			return len(cycles[i]) < len(cycles[j])
		}
		a, b := cycles[i], cycles[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return cycles, truncated
}

// HasCycle reports whether the dependency graph contains any cycle.
func (g *Graph) HasCycle() bool {
	ok, _ := g.Acyclic()
	return !ok
}

type enumerator struct {
	g        *Graph
	start    topology.ChannelID
	allowed  func(topology.ChannelID) bool
	blocked  map[topology.ChannelID]bool
	blockMap map[topology.ChannelID]map[topology.ChannelID]bool
	path     []topology.ChannelID
	cycles   []Cycle
	limit    int
}

func (e *enumerator) circuit(v topology.ChannelID) bool {
	if e.limit > 0 && len(e.cycles) >= e.limit {
		return true
	}
	found := false
	e.path = append(e.path, v)
	e.blocked[v] = true
	for _, w := range e.g.Successors(v) {
		if !e.allowed(w) {
			continue
		}
		if w == e.start {
			cyc := make(Cycle, len(e.path))
			copy(cyc, e.path)
			e.cycles = append(e.cycles, cyc.canonical())
			found = true
			if e.limit > 0 && len(e.cycles) >= e.limit {
				break
			}
			continue
		}
		if !e.blocked[w] {
			if e.circuit(w) {
				found = true
			}
			if e.limit > 0 && len(e.cycles) >= e.limit {
				break
			}
		}
	}
	if found {
		e.unblock(v)
	} else {
		for _, w := range e.g.Successors(v) {
			if !e.allowed(w) {
				continue
			}
			if e.blockMap[w] == nil {
				e.blockMap[w] = make(map[topology.ChannelID]bool)
			}
			e.blockMap[w][v] = true
		}
	}
	e.path = e.path[:len(e.path)-1]
	return found
}

func (e *enumerator) unblock(v topology.ChannelID) {
	e.blocked[v] = false
	for w := range e.blockMap[v] {
		delete(e.blockMap[v], w)
		if e.blocked[w] {
			e.unblock(w)
		}
	}
}
