package cdg

import (
	"strings"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// unidirectionalRingShortest builds the classic deadlock-prone example:
// shortest-path routing on a unidirectional ring, whose CDG is a single
// cycle through every channel.
func unidirectionalRingShortest(n int) (*topology.Network, routing.Algorithm) {
	net := topology.NewRing(n, false)
	return net, routing.ShortestBFS(net)
}

func TestRingCDGHasCycle(t *testing.T) {
	net, alg := unidirectionalRingShortest(4)
	g := New(alg)
	if g.Network() != net {
		t.Fatal("network not preserved")
	}
	if !g.HasCycle() {
		t.Fatal("unidirectional ring CDG must be cyclic")
	}
	ok, order := g.Acyclic()
	if ok || order != nil {
		t.Fatal("Acyclic should fail with nil numbering")
	}
	sccs := g.SCCs()
	if len(sccs) != 1 || len(sccs[0]) != 4 {
		t.Fatalf("SCCs = %v; want one component of all 4 channels", sccs)
	}
}

func TestRingCycleEnumeration(t *testing.T) {
	_, alg := unidirectionalRingShortest(5)
	g := New(alg)
	cycles, truncated := g.Cycles(0)
	if truncated {
		t.Fatal("unexpected truncation")
	}
	if len(cycles) != 1 {
		t.Fatalf("cycles = %v; want exactly one", cycles)
	}
	if len(cycles[0]) != 5 {
		t.Fatalf("cycle length = %d; want 5", len(cycles[0]))
	}
	if cycles[0][0] != 0 {
		t.Fatalf("cycle not canonical: %v", cycles[0])
	}
	// Verify edges exist around the cycle.
	c := cycles[0]
	for i := range c {
		if g.Dependency(c[i], c[(i+1)%len(c)]) == nil {
			t.Fatalf("missing dependency %d -> %d", c[i], c[(i+1)%len(c)])
		}
	}
}

func TestDORMeshCDGAcyclic(t *testing.T) {
	g2 := topology.NewMesh([]int{4, 4}, 1)
	g := New(routing.DimensionOrder(g2))
	ok, order := g.Acyclic()
	if !ok {
		t.Fatal("DOR mesh CDG must be acyclic")
	}
	// The numbering must certify every edge.
	for _, d := range g.Dependencies() {
		if order[d.From] >= order[d.To] {
			t.Fatalf("numbering does not certify edge %d -> %d", d.From, d.To)
		}
	}
	if len(g.SCCs()) != 0 {
		t.Fatal("acyclic graph should have no nontrivial SCCs")
	}
	cycles, _ := g.Cycles(0)
	if len(cycles) != 0 {
		t.Fatalf("acyclic graph enumerated cycles: %v", cycles)
	}
}

func TestDallySeitzTorusCDGAcyclic(t *testing.T) {
	for _, dims := range [][]int{{4}, {4, 4}, {3, 3}, {5, 3}} {
		tor := topology.NewTorus(dims, 2)
		g := New(routing.DallySeitzTorus(tor))
		if ok, _ := g.Acyclic(); !ok {
			cycles, _ := g.Cycles(3)
			t.Fatalf("dally-seitz CDG on torus %v has cycles, e.g. %v", dims, cycles)
		}
	}
}

func TestTorusWithoutDatelineHasCycles(t *testing.T) {
	// Plain shortest-path routing on a 1-VC torus ring: cyclic CDG. This is
	// the Dally–Seitz motivating example.
	tor := topology.NewTorus([]int{4}, 1)
	g := New(routing.ShortestBFS(tor.Network))
	if !g.HasCycle() {
		t.Fatal("1-VC torus shortest routing should have a cyclic CDG")
	}
}

func TestNegativeFirstCDGAcyclic(t *testing.T) {
	m := topology.NewMesh([]int{3, 3}, 1)
	g := New(routing.NegativeFirst(m))
	if ok, _ := g.Acyclic(); !ok {
		t.Fatal("negative-first CDG must be acyclic")
	}
}

func TestECubeCDGAcyclic(t *testing.T) {
	h := topology.NewHypercube(4)
	g := New(routing.ECube(h))
	if ok, _ := g.Acyclic(); !ok {
		t.Fatal("e-cube CDG must be acyclic")
	}
}

func TestWitnesses(t *testing.T) {
	net, alg := unidirectionalRingShortest(3)
	g := New(alg)
	// Dependency cw0 -> cw1 (channel 0 -> 1) is induced by the pair (0,2).
	d := g.Dependency(0, 1)
	if d == nil {
		t.Fatal("missing dependency 0 -> 1")
	}
	found := false
	for _, w := range d.Witnesses {
		if w.Src == 0 && w.Dst == 2 && w.Hop == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("witness (0,2,hop0) not recorded: %v", d.Witnesses)
	}
	_ = net
}

func TestCycleLimitTruncates(t *testing.T) {
	// A complete graph K4 with all-pairs shortest routing has many cycles
	// in its CDG? Complete network: all paths are single hop, no
	// dependencies at all. Use a bidirectional ring with hub routing which
	// has longer paths.
	net := topology.NewRing(6, true)
	alg := routing.Hub(net, 0)
	g := New(alg)
	all, trunc := g.Cycles(0)
	if trunc {
		t.Fatal("full enumeration should not truncate")
	}
	if len(all) < 2 {
		t.Skipf("hub ring CDG has %d cycles; need >= 2 for truncation test", len(all))
	}
	some, trunc := g.Cycles(1)
	if !trunc || len(some) != 1 {
		t.Fatalf("Cycles(1) = %d cycles, truncated=%v", len(some), trunc)
	}
}

func TestCompleteNetworkNoDependencies(t *testing.T) {
	net := topology.NewComplete(4)
	g := New(routing.ShortestBFS(net))
	if g.NumEdges() != 0 {
		t.Fatalf("single-hop routing should induce no dependencies, got %d", g.NumEdges())
	}
	if g.HasCycle() {
		t.Fatal("empty CDG cannot have cycles")
	}
}

func TestDOTOutput(t *testing.T) {
	_, alg := unidirectionalRingShortest(3)
	g := New(alg)
	dot := g.DOT()
	if !strings.HasPrefix(dot, "digraph") {
		t.Fatalf("DOT = %q", dot)
	}
	if !strings.Contains(dot, "color=red") {
		t.Fatal("cyclic channels should be highlighted")
	}
	if !strings.Contains(dot, "->") {
		t.Fatal("edges missing")
	}
}

func TestCycleContains(t *testing.T) {
	c := Cycle{3, 5, 7}
	if !c.Contains(5) || c.Contains(4) {
		t.Fatal("Contains wrong")
	}
}

func TestCanonicalRotation(t *testing.T) {
	c := Cycle{5, 2, 9}.canonical()
	want := Cycle{2, 9, 5}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("canonical = %v; want %v", c, want)
		}
	}
}

// Shortest-path routing on a bidirectional 5-ring is the classic
// deadlock-prone configuration: although each path is at most 2 hops, the
// paths jointly cover every consecutive channel pair in each direction, so
// the CDG contains exactly two cycles — the full clockwise ring and the
// full counter-clockwise ring.
func TestBidirectionalRingShortest(t *testing.T) {
	net := topology.NewRing(5, true)
	g := New(routing.ShortestBFS(net))
	cycles, trunc := g.Cycles(0)
	if trunc {
		t.Fatal("unexpected truncation")
	}
	if len(cycles) != 2 {
		t.Fatalf("cycles = %v; want the two directional ring cycles", cycles)
	}
	for _, c := range cycles {
		if len(c) != 5 {
			t.Fatalf("cycle %v has length %d; want 5", c, len(c))
		}
	}
}

func TestJohnsonOnDenseComponent(t *testing.T) {
	// Build a custom network whose CDG is a 2-cycle plus a 3-cycle sharing
	// a vertex, via a hand-made table. Simplest: craft the dependency graph
	// directly through paths on a bidirectional triangle with 2 VCs.
	net := topology.New("tri")
	a := net.AddNode("a")
	b := net.AddNode("b")
	c := net.AddNode("c")
	ab := net.AddChannel(a, b, 0, "ab")
	bc := net.AddChannel(b, c, 0, "bc")
	ca := net.AddChannel(c, a, 0, "ca")
	ba := net.AddChannel(b, a, 0, "ba")
	tab := routing.NewTable(net, "dense")
	// Induce ab->bc, bc->ca, ca->ab (3-cycle) and ab->ba? ba's source is b:
	// ab ends at b, ba leaves b: path a->b->a revisits a — SetPath rejects?
	// IsPath allows revisits (it only checks contiguity); use it.
	tab.MustSetPath(a, c, []topology.ChannelID{ab, bc})
	tab.MustSetPath(b, a, []topology.ChannelID{bc, ca})
	tab.MustSetPath(c, b, []topology.ChannelID{ca, ab}) // induces ca->ab
	g := New(tab)
	if !g.HasCycle() {
		t.Fatal("expected cycles")
	}
	cycles, _ := g.Cycles(0)
	if len(cycles) != 1 || len(cycles[0]) != 3 {
		t.Fatalf("cycles = %v; want one 3-cycle", cycles)
	}
	_ = ba
}
