// Package cdg builds and analyzes channel dependency graphs.
//
// The channel dependency graph (Dally & Seitz 1987) of a routing algorithm
// has one vertex per channel and a directed edge from channel a to channel b
// whenever some message is permitted to use b immediately after a. An
// acyclic dependency graph is sufficient for deadlock freedom; the point of
// Schwiebert's paper is that it is not necessary, even for oblivious
// routing. This package constructs the graph from any routing.Algorithm,
// detects and enumerates cycles (Tarjan strongly connected components and
// Johnson elementary-cycle enumeration), certifies acyclicity by exhibiting
// a topological channel numbering, and exports DOT for visual inspection.
package cdg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Witness records one routing-path position that induces a dependency: the
// message from Src to Dst uses the dependency's To channel immediately
// after its From channel, with From at hop index Hop of the path.
type Witness struct {
	Src, Dst topology.NodeID
	Hop      int
}

// Dependency is one edge of the channel dependency graph together with
// every (source, destination) pair whose path induces it.
type Dependency struct {
	From, To  topology.ChannelID
	Witnesses []Witness
}

// Graph is a channel dependency graph. Build it with New.
type Graph struct {
	net  *topology.Network
	name string
	adj  [][]topology.ChannelID // deduplicated successor lists, sorted
	deps map[[2]topology.ChannelID]*Dependency
}

// New builds the channel dependency graph of alg by walking the path of
// every ordered (source, destination) pair. Pairs for which the algorithm
// defines no path contribute nothing.
func New(alg routing.Algorithm) *Graph {
	net := alg.Network()
	g := &Graph{
		net:  net,
		name: alg.Name(),
		adj:  make([][]topology.ChannelID, net.NumChannels()),
		deps: make(map[[2]topology.ChannelID]*Dependency),
	}
	n := net.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			src, dst := topology.NodeID(s), topology.NodeID(d)
			p := alg.Path(src, dst)
			for i := 0; i+1 < len(p); i++ {
				g.addDep(p[i], p[i+1], Witness{Src: src, Dst: dst, Hop: i})
			}
		}
	}
	for from := range g.adj {
		sort.Slice(g.adj[from], func(i, j int) bool { return g.adj[from][i] < g.adj[from][j] })
	}
	return g
}

func (g *Graph) addDep(from, to topology.ChannelID, w Witness) {
	key := [2]topology.ChannelID{from, to}
	dep, ok := g.deps[key]
	if !ok {
		dep = &Dependency{From: from, To: to}
		g.deps[key] = dep
		g.adj[from] = append(g.adj[from], to)
	}
	dep.Witnesses = append(dep.Witnesses, w)
}

// Name returns the name of the routing algorithm the graph was built from.
func (g *Graph) Name() string { return g.name }

// Network returns the underlying interconnection network.
func (g *Graph) Network() *topology.Network { return g.net }

// NumEdges returns the number of distinct dependencies.
func (g *Graph) NumEdges() int { return len(g.deps) }

// Successors returns the channels that may directly follow from. The slice
// is shared; callers must not modify it.
func (g *Graph) Successors(from topology.ChannelID) []topology.ChannelID {
	return g.adj[from]
}

// Dependency returns the edge from -> to, or nil when absent.
func (g *Graph) Dependency(from, to topology.ChannelID) *Dependency {
	return g.deps[[2]topology.ChannelID{from, to}]
}

// Dependencies returns every edge sorted by (From, To).
func (g *Graph) Dependencies() []*Dependency {
	out := make([]*Dependency, 0, len(g.deps))
	for _, d := range g.deps {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Acyclic reports whether the graph has no cycles and, when it does not,
// returns a topological numbering of the channels certifying it: every
// dependency goes from a lower-numbered channel to a higher-numbered one —
// exactly the Dally–Seitz proof obligation. When the graph has a cycle the
// numbering is nil.
func (g *Graph) Acyclic() (bool, []int) {
	n := g.net.NumChannels()
	indeg := make([]int, n)
	for _, d := range g.deps {
		indeg[d.To]++
	}
	order := make([]int, n)
	for i := range order {
		order[i] = -1
	}
	var queue []topology.ChannelID
	for c := 0; c < n; c++ {
		if indeg[c] == 0 {
			queue = append(queue, topology.ChannelID(c))
		}
	}
	next := 0
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		order[c] = next
		next++
		for _, to := range g.adj[c] {
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if next != n {
		return false, nil
	}
	return true, order
}

// SCCs returns the nontrivial strongly connected components (size >= 2, or
// size 1 with a self-loop — self-loops cannot occur in a CDG built from
// simple paths, but are handled for safety). Channels within a component
// are sorted; components are sorted by smallest member.
func (g *Graph) SCCs() [][]topology.ChannelID {
	n := g.net.NumChannels()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []topology.ChannelID
	var result [][]topology.ChannelID
	counter := 0

	// Iterative Tarjan to avoid deep recursion on large graphs.
	type frame struct {
		v     topology.ChannelID
		child int
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{v: topology.ChannelID(start)}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, topology.ChannelID(start))
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.child < len(g.adj[f.v]) {
				w := g.adj[f.v][f.child]
				f.child++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// Post-order: pop the frame.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []topology.ChannelID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) >= 2 || g.hasSelfLoop(comp[0]) {
					sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
					result = append(result, comp)
				}
			}
		}
	}
	sort.Slice(result, func(i, j int) bool { return result[i][0] < result[j][0] })
	return result
}

func (g *Graph) hasSelfLoop(c topology.ChannelID) bool {
	return g.Dependency(c, c) != nil
}

// DOT renders the dependency graph in Graphviz format, highlighting the
// channels that belong to nontrivial strongly connected components.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.name)
	inCycle := make(map[topology.ChannelID]bool)
	for _, comp := range g.SCCs() {
		for _, c := range comp {
			inCycle[c] = true
		}
	}
	for _, c := range g.net.Channels() {
		attrs := ""
		if inCycle[c.ID] {
			attrs = " color=red style=bold"
		}
		fmt.Fprintf(&b, "  c%d [label=%q%s];\n", c.ID, c.String(), attrs)
	}
	for _, d := range g.Dependencies() {
		attrs := ""
		if inCycle[d.From] && inCycle[d.To] {
			attrs = " [color=red]"
		}
		fmt.Fprintf(&b, "  c%d -> c%d%s;\n", d.From, d.To, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}
