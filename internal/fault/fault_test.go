package fault

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "10:stall:c3:25;40:fail:c7;100:router:n2:50;5:freeze:m1:4;200:router:n0"
	sch, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{At: 5, Kind: MessageFreeze, Message: 1, Repair: 4},
		{At: 10, Kind: LinkStall, Channel: 3, Repair: 25},
		{At: 40, Kind: LinkFail, Channel: 7},
		{At: 100, Kind: RouterFail, Node: 2, Repair: 50},
		{At: 200, Kind: RouterFail, Node: 0},
	}
	if !reflect.DeepEqual(sch.Events, want) {
		t.Fatalf("parsed %+v\nwant %+v", sch.Events, want)
	}
	again, err := Parse(sch.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", sch.String(), err)
	}
	if !reflect.DeepEqual(again.Events, sch.Events) {
		t.Fatalf("round trip changed the schedule: %q", sch.String())
	}
}

func TestParseIgnoresEmptySegmentsAndComments(t *testing.T) {
	sch, err := Parse("  ;\n# a comment\n3:fail:c0;;")
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Events) != 1 || sch.Events[0].Kind != LinkFail {
		t.Fatalf("events = %+v; want one fail", sch.Events)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"10:melt:c3",      // unknown kind
		"10:stall:c3",     // stall without duration
		"10:freeze:m0",    // freeze without duration
		"x:fail:c1",       // bad cycle
		"10:fail:n1",      // wrong target prefix
		"10:fail",         // too few fields
		"10:stall:c3:-2",  // negative duration
		"-1:fail:c0",      // negative cycle
		"10:router:n-1:5", // negative id
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted; want error", spec)
		}
	}
}

func TestValidate(t *testing.T) {
	net := topology.NewRing(4, false)
	ok := Schedule{Events: []Event{
		{At: 1, Kind: LinkStall, Channel: 0, Repair: 5},
		{At: 2, Kind: RouterFail, Node: 3, Repair: 10},
		{At: 3, Kind: MessageFreeze, Message: 1, Repair: 2},
	}}
	if err := ok.Validate(net, 2); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []Schedule{
		{Events: []Event{{At: 1, Kind: LinkFail, Channel: topology.ChannelID(net.NumChannels())}}},
		{Events: []Event{{At: 1, Kind: RouterFail, Node: 9}}},
		{Events: []Event{{At: 1, Kind: MessageFreeze, Message: 2, Repair: 1}}},
		{Events: []Event{{At: 1, Kind: LinkStall, Channel: 0}}}, // no repair time
	}
	for i, sch := range bad {
		if err := sch.Validate(net, 2); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	net := topology.NewRing(8, true)
	p := GenParams{Seed: 42, Horizon: 5000, MTBF: 800, MeanRepair: 30, PermanentFraction: 0.2, RouterFraction: 0.1}
	a, err := Generate(net, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(net, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a.Events) == 0 {
		t.Fatal("expected some faults over a 5000-cycle horizon at MTBF 800")
	}
	if err := a.Validate(net, 0); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	p.Seed = 43
	c, err := Generate(net, p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestEventApplyStallAndRepair(t *testing.T) {
	net := topology.NewRing(4, false)
	s := sim.New(net, sim.Config{})
	s.MustAdd(sim.MessageSpec{Src: 0, Dst: 2, Length: 2, Path: []topology.ChannelID{0, 1}})

	Event{At: 0, Kind: LinkStall, Channel: 1, Repair: 3}.Apply(s)
	if !s.ChannelDown(1) {
		t.Fatal("channel 1 should be down after the stall event")
	}
	for s.Now() < 3 {
		s.Step()
	}
	if s.ChannelDown(1) {
		t.Fatalf("channel 1 still down at cycle %d; repair was due at 3", s.Now())
	}

	Event{At: 3, Kind: RouterFail, Node: 3, Repair: 5}.Apply(s)
	for _, c := range net.In(3) {
		if !s.ChannelDown(c) {
			t.Errorf("in-channel %d of failed router still up", c)
		}
	}
	for _, c := range net.Out(3) {
		if !s.ChannelDown(c) {
			t.Errorf("out-channel %d of failed router still up", c)
		}
	}
}
