package fault

import (
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TestVictimSelectionAging: without aging the watchdog kills the youngest
// cycle member; with aging, fairness outranks progress preservation — a
// member that has already been through recovery loses the victim lottery
// to one that never has.
func TestVictimSelectionAging(t *testing.T) {
	s := ringDeadlock(t)
	if out := s.Run(100); out.Result != sim.ResultDeadlock {
		t.Fatalf("setup: result = %v", out.Result)
	}
	cycle := []int{0, 1, 2, 3}
	// Member 3 has been intervened on before (cycle 7); the rest never.
	recoveryStart := []int{-1, -1, -1, 7}

	r := &Runner{Sim: s, Recovery: DefaultRecovery(AbortRetry)}
	r.Recovery.Aging = false
	if got := r.victim(cycle, recoveryStart); got != 3 {
		t.Fatalf("unaged victim = %d; want the youngest member 3", got)
	}
	r.Recovery.Aging = true
	if got := r.victim(cycle, recoveryStart); got != 2 {
		t.Fatalf("aged victim = %d; want 2 (never intervened, youngest tiebreak)", got)
	}
}

// chainStall builds a 3-node chain where a long "holder" message streams
// through the second channel while a short "waiter" blocks behind it: a
// starvation scenario with no Definition 6 cycle anywhere.
func chainStall(t *testing.T, holderLen int) (*sim.Sim, int, int) {
	t.Helper()
	net := topology.New("chain")
	net.AddNodes(3)
	c0 := net.AddChannel(0, 1, 0, "c0")
	c1 := net.AddChannel(1, 2, 0, "c1")
	s := sim.New(net, sim.Config{})
	holder := s.MustAdd(sim.MessageSpec{Src: 1, Dst: 2, Length: holderLen,
		Path: []topology.ChannelID{c1}})
	waiter := s.MustAdd(sim.MessageSpec{Src: 0, Dst: 2, Length: 2,
		Path: []topology.ChannelID{c0, c1}})
	return s, holder, waiter
}

// TestTimeoutClassificationStarvationThenLivelock: the waiter's first
// timeout intervention is a starvation (it never got going); when its
// retry stalls behind the same holder the next intervention is a livelock
// (reset again without progress). Both end up delivered, so the run is
// fair.
func TestTimeoutClassificationStarvationThenLivelock(t *testing.T) {
	s, _, _ := chainStall(t, 300)
	cfg := DefaultRecovery(AbortRetry)
	cfg.Watchdog.Timeout = 16
	r := Runner{Sim: s, Recovery: cfg}
	rep := r.Run(10_000)
	if rep.Outcome.Result != sim.ResultDelivered {
		t.Fatalf("result = %s; want delivered", rep.Result)
	}
	if rep.Starvations == 0 {
		t.Fatal("the waiter's first timeout should classify as starvation")
	}
	if rep.Livelocks == 0 {
		t.Fatal("the waiter's repeat timeout should classify as livelock")
	}
	if rep.DeadlocksDetected != 0 {
		t.Fatalf("%d exact detections; the chain has no Definition 6 cycle", rep.DeadlocksDetected)
	}
	if got := rep.Accounting; got.Delivered != 2 || !got.Fair() {
		t.Fatalf("accounting = %+v; want 2 delivered, zero unaccounted", got)
	}
}

// TestLocalDeadlockClassification: the exact detector catches the ring
// cycle while a disjoint bystander is still streaming flits, so the
// detection must be classified local — the cycle killed a subnetwork, not
// the network.
func TestLocalDeadlockClassification(t *testing.T) {
	net := topology.New("ringplus")
	net.AddNodes(6)
	var chans [4]topology.ChannelID
	for i := 0; i < 4; i++ {
		chans[i] = net.AddChannel(topology.NodeID(i), topology.NodeID((i+1)%4), 0, "")
	}
	side := net.AddChannel(4, 5, 0, "side")
	s := sim.New(net, sim.Config{})
	for i := 0; i < 4; i++ {
		s.MustAdd(sim.MessageSpec{
			Src: topology.NodeID(i), Dst: topology.NodeID((i + 2) % 4),
			Length: 2,
			Path:   []topology.ChannelID{chans[i], chans[(i+1)%4]},
		})
	}
	s.MustAdd(sim.MessageSpec{Src: 4, Dst: 5, Length: 60,
		Path: []topology.ChannelID{side}})

	r := Runner{Sim: s, Recovery: DefaultRecovery(AbortRetry)}
	rep := r.Run(10_000)
	if rep.Outcome.Result != sim.ResultDelivered {
		t.Fatalf("result = %s; want delivered", rep.Result)
	}
	if rep.LocalDeadlocks == 0 {
		t.Fatal("the ring cycle was caught while the bystander streamed; want a local classification")
	}
	if rep.LocalDeadlocks > rep.DeadlocksDetected {
		t.Fatalf("local %d > detected %d", rep.LocalDeadlocks, rep.DeadlocksDetected)
	}
}

// TestGlobalDeadlockNotClassifiedLocal: with nothing outside the cycle the
// detection must stay global.
func TestGlobalDeadlockNotClassifiedLocal(t *testing.T) {
	r := Runner{Sim: ringDeadlock(t), Recovery: DefaultRecovery(AbortRetry)}
	rep := r.Run(10_000)
	if rep.DeadlocksDetected == 0 {
		t.Fatal("the exact detector should have fired")
	}
	if rep.LocalDeadlocks != 0 {
		t.Fatalf("%d local classifications; the pure ring is a global deadlock", rep.LocalDeadlocks)
	}
}

// diamondNet builds the A/B/C/D diamond used by the reroute tests: two
// disjoint A->C routes (via B and via D) plus a return edge for strong
// connectivity.
func diamondNet(t *testing.T) (net *topology.Network, ab, bc, ad, dc topology.ChannelID) {
	t.Helper()
	net = topology.New("diamond")
	a := net.AddNode("A")
	b := net.AddNode("B")
	c := net.AddNode("C")
	d := net.AddNode("D")
	ab = net.AddChannel(a, b, 0, "A->B")
	bc = net.AddChannel(b, c, 0, "B->C")
	ad = net.AddChannel(a, d, 0, "A->D")
	dc = net.AddChannel(d, c, 0, "D->C")
	net.AddChannel(c, a, 0, "C->A")
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	return net, ab, bc, ad, dc
}

// TestRerouteUnreachableDrops: when every route to the destination is
// permanently dead, reroute must degrade to a drop with a warning instead
// of retrying forever.
func TestRerouteUnreachableDrops(t *testing.T) {
	net, ab, bc, _, dc := diamondNet(t)
	s := sim.New(net, sim.Config{})
	id := s.MustAdd(sim.MessageSpec{Src: 0, Dst: 2, Length: 3,
		Path: []topology.ChannelID{ab, bc}})
	sch := Schedule{Events: []Event{
		{At: 0, Kind: LinkFail, Channel: bc},
		{At: 0, Kind: LinkFail, Channel: dc},
	}}
	r := Runner{Sim: s, Schedule: sch, Recovery: DefaultRecovery(Reroute)}
	rep := r.Run(10_000)
	if rep.Outcome.Result != sim.ResultDegraded {
		t.Fatalf("result = %s; want degraded", rep.Result)
	}
	if !s.Dropped(id) {
		t.Fatal("the unreachable message should have been dropped")
	}
	if rep.Drops != 1 || rep.Reroutes != 0 {
		t.Fatalf("drops %d reroutes %d; want 1 drop, no futile reroutes", rep.Drops, rep.Reroutes)
	}
	found := false
	for _, w := range rep.Warnings {
		if w.Msg == id && strings.Contains(w.Text, "unreachable") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no unreachable warning in %v", rep.Warnings)
	}
	if got := rep.Accounting; got.DroppedByPolicy != 1 || !got.Fair() {
		t.Fatalf("accounting = %+v; want the drop accounted", got)
	}
}

// TestRerouteFallsBackToRetryWhenNoLivePath: the victim's own path crosses
// a permanent failure, but the only detour is down transiently — reroute
// finds no live path right now, yet the message is not hopeless, so the
// policy must fall back to plain abort-retry with a warning and win once
// the detour heals.
func TestRerouteFallsBackToRetryWhenNoLivePath(t *testing.T) {
	net, ab, bc, ad, dc := diamondNet(t)
	s := sim.New(net, sim.Config{})
	id := s.MustAdd(sim.MessageSpec{Src: 0, Dst: 2, Length: 3,
		Path: []topology.ChannelID{ab, bc}})
	sch := Schedule{Events: []Event{
		{At: 0, Kind: LinkFail, Channel: bc},
		{At: 0, Kind: LinkStall, Channel: ad, Repair: 300},
	}}
	r := Runner{Sim: s, Schedule: sch, Recovery: DefaultRecovery(Reroute)}
	rep := r.Run(10_000)
	if rep.Outcome.Result != sim.ResultDelivered {
		t.Fatalf("result = %s; want delivered after the detour heals (report %+v)", rep.Result, rep)
	}
	if rep.AbortRetries == 0 {
		t.Fatal("want at least one abort-retry fallback while the detour was down")
	}
	if rep.Reroutes == 0 {
		t.Fatal("want the reroute to land once the detour healed")
	}
	if rep.Drops != 0 {
		t.Fatalf("drops = %d; the message was never hopeless", rep.Drops)
	}
	found := false
	for _, w := range rep.Warnings {
		if w.Msg == id && strings.Contains(w.Text, "no live path") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no fallback warning in %v", rep.Warnings)
	}
	got := s.Message(id).Path
	want := []topology.ChannelID{ad, dc}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("final path = %v; want detour %v", got, want)
	}
}

// TestAccountingFairCampaign: a full randomized campaign under every policy
// accounts for every message — the sum of the ledger buckets equals the
// message count and nothing is unaccounted.
func TestAccountingFairCampaign(t *testing.T) {
	for _, p := range []Policy{AbortRetry, Drop, Reroute} {
		t.Run(p.String(), func(t *testing.T) {
			alg, _, err := cli.Build("mesh", "dor", "4x4", 1)
			if err != nil {
				t.Fatal(err)
			}
			w := traffic.Workload{Alg: alg, Pattern: traffic.Uniform(16), Rate: 0.05, Length: 8, Duration: 150, Seed: 7}
			msgs, err := w.Messages()
			if err != nil {
				t.Fatal(err)
			}
			s := sim.New(alg.Network(), sim.Config{})
			for _, m := range msgs {
				s.MustAdd(m)
			}
			sch, err := Generate(alg.Network(), GenParams{Seed: 11, Horizon: 150, MTBF: 400, MeanRepair: 25, PermanentFraction: 0.2})
			if err != nil {
				t.Fatal(err)
			}
			r := Runner{Sim: s, Schedule: sch, Recovery: DefaultRecovery(p), Alg: alg}
			rep := r.Run(100_000)
			a := rep.Accounting
			if !a.Fair() {
				t.Fatalf("unaccounted messages %v (ledger %+v)", a.Unaccounted, a)
			}
			total := a.Delivered + a.DroppedByPolicy + a.InRecovery + a.Excused
			if total != s.NumMessages() {
				t.Fatalf("ledger sums to %d of %d messages: %+v", total, s.NumMessages(), a)
			}
		})
	}
}
