// Package fault is the fault-injection and deadlock-recovery subsystem for
// the wormhole simulator: deterministic seed-driven fault schedules
// (permanent link failures, transient link stalls with repair times,
// router failures downing every incident channel, and the paper's
// Section 6 per-message freezes), a watchdog combining the exact
// Definition 6 cycle detector with a timeout heuristic for faulted
// networks where exact stability never holds, and recovery policies —
// abort-retry (kill the youngest worm in a detected cycle, drain its
// buffers, reinject after exponential backoff), drop (graceful
// degradation), and reroute (recompute oblivious paths on the degraded
// topology; adaptive messages mask dead candidates in the engine itself).
//
// The subsystem extends Schwiebert's Section 6 fault model — "a message
// may be delayed an arbitrary number of cycles even when its output
// channel is free" — from per-message freezes to channel- and router-level
// faults, and pairs the repo's exact deadlock detection with the practical
// timeout-based watchdogs of the formal-verification literature (Verbeek &
// Schmaltz, arXiv:1110.4677).
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Kind classifies a fault event.
type Kind int

const (
	// LinkFail permanently fails one channel.
	LinkFail Kind = iota
	// LinkStall takes one channel out of service for Repair cycles.
	LinkStall
	// RouterFail downs every channel incident to a node, permanently when
	// Repair == 0, else for Repair cycles.
	RouterFail
	// MessageFreeze freezes one message for Repair cycles: the paper's
	// Section 6 adversarial stall, kept as a schedulable fault kind.
	MessageFreeze
)

// String renders the kind using the schedule-spec keywords.
func (k Kind) String() string {
	switch k {
	case LinkFail:
		return "fail"
	case LinkStall:
		return "stall"
	case RouterFail:
		return "router"
	case MessageFreeze:
		return "freeze"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault.
type Event struct {
	// At is the cycle the fault strikes: it is applied before that cycle's
	// Step, so the network is degraded for the whole of cycle At.
	At   int
	Kind Kind
	// Channel is the victim of LinkFail and LinkStall.
	Channel topology.ChannelID
	// Node is the victim of RouterFail.
	Node topology.NodeID
	// Message is the victim of MessageFreeze.
	Message int
	// Repair is the outage length in cycles for LinkStall, RouterFail and
	// MessageFreeze; 0 means permanent for RouterFail and is invalid for
	// the other two. LinkFail ignores it.
	Repair int
}

// String renders the event in schedule-spec syntax (parseable by Parse).
func (e Event) String() string {
	switch e.Kind {
	case LinkFail:
		return fmt.Sprintf("%d:fail:c%d", e.At, e.Channel)
	case LinkStall:
		return fmt.Sprintf("%d:stall:c%d:%d", e.At, e.Channel, e.Repair)
	case RouterFail:
		if e.Repair == 0 {
			return fmt.Sprintf("%d:router:n%d", e.At, e.Node)
		}
		return fmt.Sprintf("%d:router:n%d:%d", e.At, e.Node, e.Repair)
	case MessageFreeze:
		return fmt.Sprintf("%d:freeze:m%d:%d", e.At, e.Message, e.Repair)
	}
	return fmt.Sprintf("%d:?%d", e.At, int(e.Kind))
}

// Apply injects the event into the simulator, whose clock must be at or
// before the event's cycle. Repairs are implicit: the simulator returns a
// stalled channel to service when its repair cycle is reached.
func (e Event) Apply(s *sim.Sim) {
	switch e.Kind {
	case LinkFail:
		s.FailChannel(e.Channel)
	case LinkStall:
		s.SetChannelDown(e.Channel, e.At+e.Repair)
	case RouterFail:
		until := sim.DownForever
		if e.Repair > 0 {
			until = e.At + e.Repair
		}
		s.FailRouter(e.Node, until)
	case MessageFreeze:
		s.SetFrozen(e.Message, e.Repair)
	}
}

// Schedule is a fault schedule: the full set of events a run will suffer,
// fixed up front so runs are deterministic and replayable.
type Schedule struct {
	Events []Event
}

// Sorted returns a copy with events ordered by cycle (stable within a
// cycle, preserving spec order).
func (sch Schedule) Sorted() Schedule {
	ev := append([]Event(nil), sch.Events...)
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].At < ev[j].At })
	return Schedule{Events: ev}
}

// String renders the schedule in spec syntax, events separated by ";".
func (sch Schedule) String() string {
	parts := make([]string, len(sch.Events))
	for i, e := range sch.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// Validate checks every event against the network and message population.
func (sch Schedule) Validate(net *topology.Network, numMessages int) error {
	for i, e := range sch.Events {
		if e.At < 0 {
			return fmt.Errorf("fault: event %d: negative cycle %d", i, e.At)
		}
		switch e.Kind {
		case LinkFail, LinkStall:
			if e.Channel < 0 || int(e.Channel) >= net.NumChannels() {
				return fmt.Errorf("fault: event %d: channel %d out of range [0,%d)", i, e.Channel, net.NumChannels())
			}
			if e.Kind == LinkStall && e.Repair < 1 {
				return fmt.Errorf("fault: event %d: stall needs a repair time >= 1", i)
			}
		case RouterFail:
			if e.Node < 0 || int(e.Node) >= net.NumNodes() {
				return fmt.Errorf("fault: event %d: node %d out of range [0,%d)", i, e.Node, net.NumNodes())
			}
			if e.Repair < 0 {
				return fmt.Errorf("fault: event %d: negative repair %d", i, e.Repair)
			}
		case MessageFreeze:
			if e.Message < 0 || e.Message >= numMessages {
				return fmt.Errorf("fault: event %d: message %d out of range [0,%d)", i, e.Message, numMessages)
			}
			if e.Repair < 1 {
				return fmt.Errorf("fault: event %d: freeze needs a duration >= 1", i)
			}
		default:
			return fmt.Errorf("fault: event %d: unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Parse reads a schedule spec: events separated by ";" (or newlines), each
// of the form
//
//	<cycle>:fail:c<chan>
//	<cycle>:stall:c<chan>:<repair>
//	<cycle>:router:n<node>[:<repair>]
//	<cycle>:freeze:m<msg>:<cycles>
//
// e.g. "10:stall:c3:25;40:fail:c7;100:router:n2:50". Empty segments are
// ignored, so trailing separators are harmless.
func Parse(spec string) (Schedule, error) {
	var sch Schedule
	spec = strings.ReplaceAll(spec, "\n", ";")
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		e, err := parseEvent(raw)
		if err != nil {
			return Schedule{}, err
		}
		sch.Events = append(sch.Events, e)
	}
	return sch.Sorted(), nil
}

func parseEvent(raw string) (Event, error) {
	parts := strings.Split(raw, ":")
	if len(parts) < 3 {
		return Event{}, fmt.Errorf("fault: event %q: want <cycle>:<kind>:<target>[:<repair>]", raw)
	}
	at, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil || at < 0 {
		return Event{}, fmt.Errorf("fault: event %q: bad cycle %q", raw, parts[0])
	}
	target := strings.TrimSpace(parts[2])
	id := func(prefix string) (int, error) {
		if !strings.HasPrefix(target, prefix) {
			return 0, fmt.Errorf("fault: event %q: target %q must start with %q", raw, target, prefix)
		}
		v, err := strconv.Atoi(target[len(prefix):])
		if err != nil || v < 0 {
			return 0, fmt.Errorf("fault: event %q: bad target %q", raw, target)
		}
		return v, nil
	}
	repair := func(required bool) (int, error) {
		if len(parts) < 4 {
			if required {
				return 0, fmt.Errorf("fault: event %q: missing duration", raw)
			}
			return 0, nil
		}
		v, err := strconv.Atoi(strings.TrimSpace(parts[3]))
		if err != nil || v < 0 {
			return 0, fmt.Errorf("fault: event %q: bad duration %q", raw, parts[3])
		}
		return v, nil
	}
	kind := strings.TrimSpace(parts[1])
	switch kind {
	case "fail":
		c, err := id("c")
		if err != nil {
			return Event{}, err
		}
		return Event{At: at, Kind: LinkFail, Channel: topology.ChannelID(c)}, nil
	case "stall":
		c, err := id("c")
		if err != nil {
			return Event{}, err
		}
		r, err := repair(true)
		if err != nil {
			return Event{}, err
		}
		return Event{At: at, Kind: LinkStall, Channel: topology.ChannelID(c), Repair: r}, nil
	case "router":
		n, err := id("n")
		if err != nil {
			return Event{}, err
		}
		r, err := repair(false)
		if err != nil {
			return Event{}, err
		}
		return Event{At: at, Kind: RouterFail, Node: topology.NodeID(n), Repair: r}, nil
	case "freeze":
		m, err := id("m")
		if err != nil {
			return Event{}, err
		}
		r, err := repair(true)
		if err != nil {
			return Event{}, err
		}
		return Event{At: at, Kind: MessageFreeze, Message: m, Repair: r}, nil
	}
	return Event{}, fmt.Errorf("fault: event %q: unknown kind %q (want fail, stall, router, freeze)", raw, kind)
}
