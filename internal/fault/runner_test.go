package fault

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/papernets"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/waitfor"

	"repro/internal/cli"
)

// ringDeadlock builds the canonical 4-message cycle on a unidirectional
// 4-ring (the sim package's reference deadlock): message i holds channel i
// and waits for channel (i+1) mod 4, held by message i+1.
func ringDeadlock(t *testing.T) *sim.Sim {
	t.Helper()
	net := topology.NewRing(4, false)
	s := sim.New(net, sim.Config{})
	for i := 0; i < 4; i++ {
		s.MustAdd(sim.MessageSpec{
			Src: topology.NodeID(i), Dst: topology.NodeID((i + 2) % 4),
			Length: 2,
			Path:   []topology.ChannelID{topology.ChannelID(i), topology.ChannelID((i + 1) % 4)},
		})
	}
	return s
}

// Acceptance: the reference ring deadlock — unrecoverable under plain Run —
// is detected by the exact watchdog and fully recovered by abort-retry:
// every message is eventually delivered.
func TestAbortRetryRecoversRingDeadlock(t *testing.T) {
	if out := ringDeadlock(t).Run(1000); out.Result != sim.ResultDeadlock {
		t.Fatalf("baseline result = %v; the fixture must deadlock", out.Result)
	}

	s := ringDeadlock(t)
	r := Runner{Sim: s, Schedule: Schedule{}, Recovery: DefaultRecovery(AbortRetry)}
	rep := r.Run(10_000)
	if rep.Outcome.Result != sim.ResultDelivered {
		t.Fatalf("result = %s; want delivered (undelivered %v, dropped %v)",
			rep.Result, rep.Outcome.Undelivered, rep.Outcome.Dropped)
	}
	if rep.Stats.Delivered != 4 || rep.Stats.Dropped != 0 {
		t.Fatalf("delivered %d dropped %d; want 4/0", rep.Stats.Delivered, rep.Stats.Dropped)
	}
	if rep.DeadlocksDetected == 0 {
		t.Fatal("the exact detector should have found the Definition 6 cycle")
	}
	if rep.Stats.Retries == 0 {
		t.Fatal("recovery should have reset at least one message")
	}
	if rep.MeanRecoveryLatency <= 0 {
		t.Fatalf("mean recovery latency = %v; want positive", rep.MeanRecoveryLatency)
	}
}

func TestDropPolicyRingDeadlock(t *testing.T) {
	s := ringDeadlock(t)
	r := Runner{Sim: s, Recovery: DefaultRecovery(Drop)}
	rep := r.Run(10_000)
	if rep.Outcome.Result != sim.ResultDegraded {
		t.Fatalf("result = %s; want degraded", rep.Result)
	}
	if rep.Drops == 0 {
		t.Fatal("drop policy reported zero drops")
	}
	if rep.Stats.Delivered+rep.Stats.Dropped != 4 {
		t.Fatalf("delivered %d + dropped %d != 4", rep.Stats.Delivered, rep.Stats.Dropped)
	}
	if rep.Stats.Delivered == 0 {
		t.Fatal("dropping one cycle member should let the others drain")
	}
}

func TestReroutePolicyRingDeadlock(t *testing.T) {
	s := ringDeadlock(t)
	r := Runner{Sim: s, Recovery: DefaultRecovery(Reroute)}
	rep := r.Run(10_000)
	// On a unidirectional ring the recomputed path equals the original, so
	// reroute degenerates to abort-retry — and must still fully recover.
	if rep.Outcome.Result != sim.ResultDelivered {
		t.Fatalf("result = %s; want delivered", rep.Result)
	}
	if rep.Stats.Delivered != 4 {
		t.Fatalf("delivered %d; want 4", rep.Stats.Delivered)
	}
}

// Acceptance: Theorem 4's reachable deadlock (Figure 2) really deadlocks
// under simultaneous injection, is caught by the watchdog as an exact
// Definition 6 cycle, and abort-retry restores 100% delivery.
func TestFigure2ReachableDeadlockRecovered(t *testing.T) {
	sc := papernets.Figure2().Scenario
	base := sc.NewSim()
	if out := base.Run(10_000); out.Result != sim.ResultDeadlock {
		t.Fatalf("figure 2 baseline = %v; Theorem 4 says deadlock", out.Result)
	}
	if waitfor.Find(base) == nil {
		t.Fatal("no Definition 6 cycle in the deadlocked figure 2 state")
	}

	s := sc.NewSim()
	r := Runner{Sim: s, Recovery: DefaultRecovery(AbortRetry)}
	rep := r.Run(10_000)
	if rep.Outcome.Result != sim.ResultDelivered {
		t.Fatalf("result = %s; want delivered (undelivered %v)", rep.Result, rep.Outcome.Undelivered)
	}
	if rep.DeadlocksDetected == 0 {
		t.Fatal("the watchdog should have detected the deadlock exactly")
	}
	if rep.Stats.Delivered != len(sc.Msgs) {
		t.Fatalf("delivered %d of %d", rep.Stats.Delivered, len(sc.Msgs))
	}
}

// Acceptance: Figure 1's false resource cycle stays deadlock-free under
// transient link stalls — all messages deliver with zero watchdog
// interventions. The schedules are pinned empirically: a stall is exactly
// as powerful as a Section 6 freeze, so badly-timed stalls CAN induce the
// deadlock (see the induced-deadlock test below); these timings do not.
func TestFigure1TransientStallZeroInterventions(t *testing.T) {
	pn := papernets.Figure1()
	schedules := []Schedule{
		// Stall the shared channel cs for 6 cycles starting at cycle 6:
		// every message is delayed, none differentially enough to close the
		// cycle.
		{Events: []Event{{At: 6, Kind: LinkStall, Channel: pn.Shared, Repair: 6}}},
		// Stall M2's first ring channel at injection time.
		{Events: []Event{{At: 0, Kind: LinkStall, Channel: pn.Entrants[1].Arc[0], Repair: 6}}},
	}
	for i, sch := range schedules {
		s := pn.Scenario.NewSim()
		r := Runner{Sim: s, Schedule: sch, Recovery: DefaultRecovery(AbortRetry)}
		rep := r.Run(10_000)
		if rep.Outcome.Result != sim.ResultDelivered {
			t.Fatalf("schedule %d (%s): result = %s; want delivered", i, sch, rep.Result)
		}
		if rep.Interventions != 0 {
			t.Fatalf("schedule %d (%s): %d interventions; the false resource cycle must survive the stall unaided", i, sch, rep.Interventions)
		}
		if rep.FaultsInjected != 1 {
			t.Fatalf("schedule %d: %d faults injected; want 1", i, rep.FaultsInjected)
		}
	}
}

// The Section 6 phenomenon through the channel-fault lens: a transient
// stall of the shared channel at the wrong moment induces the Figure 1
// deadlock — and the recovery layer detects it and still delivers
// everything.
func TestFigure1StallInducedDeadlockRecovered(t *testing.T) {
	pn := papernets.Figure1()
	sch := Schedule{Events: []Event{{At: 0, Kind: LinkStall, Channel: pn.Shared, Repair: 6}}}
	s := pn.Scenario.NewSim()
	r := Runner{Sim: s, Schedule: sch, Recovery: DefaultRecovery(AbortRetry)}
	rep := r.Run(10_000)
	if rep.Outcome.Result != sim.ResultDelivered {
		t.Fatalf("result = %s; want delivered", rep.Result)
	}
	if rep.Interventions == 0 {
		t.Fatal("this stall timing is known to induce the deadlock; expected an intervention")
	}
	if rep.Stats.Delivered != len(pn.Scenario.Msgs) {
		t.Fatalf("delivered %d of %d", rep.Stats.Delivered, len(pn.Scenario.Msgs))
	}
}

// A permanent failure on a message's only path is hopeless for abort-retry:
// the policy must degrade to a drop rather than retry forever.
func TestAbortRetryDropsHopelessMessage(t *testing.T) {
	net := topology.NewRing(4, false)
	s := sim.New(net, sim.Config{})
	id := s.MustAdd(sim.MessageSpec{Src: 0, Dst: 2, Length: 2, Path: []topology.ChannelID{0, 1}})
	sch := Schedule{Events: []Event{{At: 0, Kind: LinkFail, Channel: 1}}}
	r := Runner{Sim: s, Schedule: sch, Recovery: DefaultRecovery(AbortRetry)}
	rep := r.Run(10_000)
	if rep.Outcome.Result != sim.ResultDegraded {
		t.Fatalf("result = %s; want degraded", rep.Result)
	}
	if !s.Dropped(id) {
		t.Fatal("the hopeless message should have been dropped")
	}
	if rep.Drops != 1 || rep.AbortRetries != 0 {
		t.Fatalf("drops %d retries %d; want 1 drop, 0 futile retries", rep.Drops, rep.AbortRetries)
	}
}

// The reroute policy detours an oblivious message around a permanent link
// failure and delivers it.
func TestRerouteAroundPermanentFault(t *testing.T) {
	net := topology.New("diamond")
	a := net.AddNode("A")
	b := net.AddNode("B")
	c := net.AddNode("C")
	d := net.AddNode("D")
	ab := net.AddChannel(a, b, 0, "A->B")
	bc := net.AddChannel(b, c, 0, "B->C")
	ad := net.AddChannel(a, d, 0, "A->D")
	dc := net.AddChannel(d, c, 0, "D->C")
	net.AddChannel(c, a, 0, "C->A") // return edge for strong connectivity
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}

	s := sim.New(net, sim.Config{})
	id := s.MustAdd(sim.MessageSpec{Src: a, Dst: c, Length: 3, Path: []topology.ChannelID{ab, bc}})
	sch := Schedule{Events: []Event{{At: 0, Kind: LinkFail, Channel: bc}}}
	r := Runner{Sim: s, Schedule: sch, Recovery: DefaultRecovery(Reroute)}
	rep := r.Run(10_000)
	if rep.Outcome.Result != sim.ResultDelivered {
		t.Fatalf("result = %s; want delivered", rep.Result)
	}
	if rep.Reroutes != 1 {
		t.Fatalf("reroutes = %d; want 1", rep.Reroutes)
	}
	got := s.Message(id).Path
	want := []topology.ChannelID{ad, dc}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("final path = %v; want detour %v", got, want)
	}
}

// The whole pipeline — workload sampling, schedule generation, recovery —
// is a pure function of its seeds: two identical campaigns produce
// identical reports. This is the property that makes faultsweep's JSON
// byte-stable.
func TestRunnerDeterministic(t *testing.T) {
	run := func() Report {
		alg, _, err := cli.Build("mesh", "dor", "4x4", 1)
		if err != nil {
			t.Fatal(err)
		}
		w := traffic.Workload{Alg: alg, Pattern: traffic.Uniform(16), Rate: 0.05, Length: 8, Duration: 150, Seed: 7}
		msgs, err := w.Messages()
		if err != nil {
			t.Fatal(err)
		}
		s := sim.New(alg.Network(), sim.Config{})
		for _, m := range msgs {
			s.MustAdd(m)
		}
		sch, err := Generate(alg.Network(), GenParams{Seed: 11, Horizon: 150, MTBF: 400, MeanRepair: 25, PermanentFraction: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		r := Runner{Sim: s, Schedule: sch, Recovery: DefaultRecovery(AbortRetry), Alg: alg}
		return r.Run(100_000)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical campaigns diverged:\n%+v\n%+v", a, b)
	}
	if a.FaultsInjected == 0 {
		t.Fatal("campaign injected no faults; the determinism check is vacuous")
	}
}

// MaxRetries bounds abort-retry: once exhausted the victim is dropped, so
// a pathological workload cannot retry forever.
func TestMaxRetriesExhaustedDrops(t *testing.T) {
	s := ringDeadlock(t)
	cfg := DefaultRecovery(AbortRetry)
	cfg.MaxRetries = 1
	// A timeout shorter than the backoff makes every retry look stalled
	// again immediately, forcing repeated interventions on the same worm.
	r := Runner{Sim: s, Recovery: cfg}
	rep := r.Run(10_000)
	if rep.Outcome.Result == sim.ResultTimeout {
		t.Fatalf("run did not terminate: %+v", rep)
	}
	for id := 0; id < s.NumMessages(); id++ {
		if s.Retries(id) > 1 {
			t.Fatalf("message %d retried %d times; cap was 1", id, s.Retries(id))
		}
	}
}

// Heartbeats: with an aggressive interval the runner emits per-cycle
// beats with non-decreasing cycle counts, plus a final beat whose cycle
// matches the report.
func TestRunnerHeartbeats(t *testing.T) {
	s := ringDeadlock(t)
	var beats []Heartbeat
	r := Runner{
		Sim: s, Recovery: DefaultRecovery(AbortRetry),
		Progress:      func(h Heartbeat) { beats = append(beats, h) },
		ProgressEvery: time.Nanosecond,
	}
	rep := r.Run(10_000)
	if len(beats) < 2 {
		t.Fatalf("beats = %d, want per-cycle heartbeats", len(beats))
	}
	for i := 1; i < len(beats); i++ {
		if beats[i].Cycle < beats[i-1].Cycle {
			t.Fatalf("cycle regressed: beat %d = %d, beat %d = %d",
				i-1, beats[i-1].Cycle, i, beats[i].Cycle)
		}
	}
	final := beats[len(beats)-1]
	if final.Cycle != rep.Cycles {
		t.Errorf("final beat cycle = %d, report cycles = %d", final.Cycle, rep.Cycles)
	}
	if final.Messages != 4 || final.Delivered != rep.Stats.Delivered {
		t.Errorf("final beat = %+v, report stats = %+v", final, rep.Stats)
	}
	if final.FaultsInjected != rep.FaultsInjected || final.Interventions != rep.Interventions {
		t.Errorf("final beat counters = %+v, report = faults %d interventions %d",
			final, rep.FaultsInjected, rep.Interventions)
	}
}

// With Progress unset the runner must not spend time on heartbeat
// bookkeeping, and with it set the deterministic Report must be
// unchanged.
func TestRunnerHeartbeatsDoNotChangeReport(t *testing.T) {
	quiet := Runner{Sim: ringDeadlock(t), Recovery: DefaultRecovery(AbortRetry)}
	base := quiet.Run(10_000)

	loud := Runner{
		Sim: ringDeadlock(t), Recovery: DefaultRecovery(AbortRetry),
		Progress:      func(Heartbeat) {},
		ProgressEvery: time.Nanosecond,
	}
	got := loud.Run(10_000)
	if got.Result != base.Result || got.Cycles != base.Cycles ||
		got.Interventions != base.Interventions || got.Drops != base.Drops {
		t.Fatalf("heartbeats changed the report:\n  with    %+v\n  without %+v", got, base)
	}
}
