package fault

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obsv"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/waitfor"
)

// Warning is one structured campaign warning: an event the run survived
// but an operator should see — a reroute that fell back to the old path,
// a recovery that had to drop a message, a Section 6 freeze expiring.
// Warnings are part of the Report, so faultsweep serializes them and
// wormsim prints them instead of staying silent.
type Warning struct {
	Cycle int    `json:"cycle"`
	Msg   int    `json:"msg"` // message ID, -1 when not message-related
	Text  string `json:"text"`
}

// String renders the warning for human consumption.
func (w Warning) String() string {
	if w.Msg >= 0 {
		return fmt.Sprintf("cycle %d: m%d: %s", w.Cycle, w.Msg, w.Text)
	}
	return fmt.Sprintf("cycle %d: %s", w.Cycle, w.Text)
}

// Report is the outcome of a fault-injected, recovery-supervised run.
type Report struct {
	Outcome sim.Outcome `json:"-"`
	Result  string      `json:"result"`
	Cycles  int         `json:"cycles"`
	Stats   sim.Stats   `json:"stats"`

	// Warnings collects the run's structured warnings in cycle order.
	Warnings []Warning `json:"warnings,omitempty"`

	FaultsInjected int `json:"faults_injected"`
	// Interventions counts watchdog actions of any kind.
	Interventions int `json:"interventions"`
	AbortRetries  int `json:"abort_retries"`
	Drops         int `json:"drops"`
	Reroutes      int `json:"reroutes"`
	// DeadlocksDetected counts exact Definition 6 cycle detections;
	// TimeoutSuspicions counts interventions triggered by the no-progress
	// heuristic (including forced sweeps on quiescent stuck states).
	DeadlocksDetected int `json:"deadlocks_detected"`
	TimeoutSuspicions int `json:"timeout_suspicions"`
	// LocalDeadlocks counts exact detections that were local: some message
	// outside the cycle could still advance when the cycle was caught, so
	// the deadlock had killed a subnetwork, not the network.
	LocalDeadlocks int `json:"local_deadlocks"`
	// Livelocks counts timeout interventions on messages that had already
	// been reset at least once — the message keeps being reinjected and
	// re-blocked without ever delivering.
	Livelocks int `json:"livelocks"`
	// Starvations counts timeout interventions on first offenders: the
	// message made no progress at all within the timeout while the rest of
	// the network moved on.
	Starvations int `json:"starvations"`
	// Accounting is the end-of-run fairness ledger; see Accounting.
	Accounting Accounting `json:"accounting"`
	// MeanRecoveryLatency is the mean, over messages that needed at least
	// one intervention and were eventually delivered, of the cycles from
	// first intervention to delivery. 0 when no such message exists.
	MeanRecoveryLatency float64 `json:"mean_recovery_latency"`
}

// Accounting is the recovery layer's fairness ledger: at the end of a run
// every message must fall into exactly one bucket. A message that is none
// of delivered, dropped by policy, under recovery, or legitimately excused
// (frozen, not yet due, stalled behind a transient fault, or still inside
// the watchdog's detection window) is unaccounted — the recovery layer
// lost track of it, which the fairness checker treats as a bug.
type Accounting struct {
	Delivered       int `json:"delivered"`
	DroppedByPolicy int `json:"dropped_by_policy"`
	// InRecovery counts undelivered messages the watchdog has classified
	// and intervened on at least once.
	InRecovery int `json:"in_recovery"`
	// Excused counts undelivered, unclassified messages with a legitimate
	// excuse: frozen, injection not yet due, stalled behind a transient
	// fault, or within Timeout+CheckEvery cycles of their last progress
	// (the watchdog simply has not had time to classify them).
	Excused int `json:"excused"`
	// Unaccounted lists the message IDs in no bucket. Always empty when
	// the recovery layer is fair.
	Unaccounted []int `json:"unaccounted,omitempty"`
}

// Fair reports whether every message is accounted for.
func (a Accounting) Fair() bool { return len(a.Unaccounted) == 0 }

// Runner drives a simulation under a fault schedule with a recovery layer:
// each cycle it applies due fault events, steps the engine, and
// periodically runs the watchdog, intervening on deadlocked or hopelessly
// stalled messages according to the configured policy.
type Runner struct {
	Sim      *sim.Sim
	Schedule Schedule
	Recovery RecoveryConfig
	// Alg, when set, lets the reroute policy prefer the algorithm's own
	// path for fault-bystander messages; nil falls back to plain BFS over
	// live channels.
	Alg routing.Algorithm
	// Tracer, when set, receives fault, recovery and warning events (the
	// simulator's own events flow through Sim.SetTracer separately). Nil
	// disables runner tracing.
	Tracer obsv.Tracer
	// Progress, when set, receives periodic campaign heartbeats, throttled
	// by wall clock to at most one per ProgressEvery, plus one final beat
	// when the run ends. Heartbeats carry wall-clock timings and are
	// interactive telemetry only — they never enter the deterministic
	// trace or the Report.
	Progress func(Heartbeat)
	// ProgressEvery is the minimum wall-clock interval between heartbeats;
	// 0 means a 2s default.
	ProgressEvery time.Duration
}

// Heartbeat is one live progress report from a running campaign.
type Heartbeat struct {
	// Cycle is the simulation clock at the time of the beat.
	Cycle int
	// Messages is the scenario's total message count; Delivered and
	// Dropped count terminal messages so far.
	Messages  int
	Delivered int
	Dropped   int
	// FaultsInjected and Interventions mirror the Report counters.
	FaultsInjected int
	Interventions  int
	// Elapsed is wall-clock time since Run started.
	Elapsed time.Duration
}

// warn records a structured warning on the report and mirrors it to the
// tracer.
func (r *Runner) warn(rep *Report, cycle, msg int, text string) {
	rep.Warnings = append(rep.Warnings, Warning{Cycle: cycle, Msg: msg, Text: text})
	if r.Tracer != nil {
		ev := obsv.Ev(obsv.KindWarning, cycle)
		ev.Msg = msg
		ev.Note = text
		r.Tracer.Event(ev)
	}
}

// Run executes up to maxCycles cycles and reports. The loop guarantees
// progress: a quiescent non-terminal state (an exact deadlock certificate)
// forces an immediate watchdog sweep, and every sweep either resets a
// message (making the state non-quiescent) or drops one (shrinking the
// non-terminal set), so the run always ends in a terminal state or the
// cycle budget.
func (r *Runner) Run(maxCycles int) Report {
	r.Recovery.normalize()
	s := r.Sim
	events := r.Schedule.Sorted().Events
	evIdx := 0

	rep := Report{}
	n := s.NumMessages()
	// progress[id] is a signature of everything a message's forward motion
	// changes; stamp[id] the last cycle it changed (or the message was
	// excused from aging: frozen, not yet due, or stalled on a transient
	// fault).
	progress := make([]int, n)
	stamp := make([]int, n)
	recoveryStart := make([]int, n)
	for i := range recoveryStart {
		recoveryStart[i] = -1
		progress[i] = r.signature(i)
	}
	lastSweep := -1

	frozen := make([]bool, n)
	for i := range frozen {
		frozen[i] = s.Frozen(i) > 0
	}

	// Heartbeats are throttled by wall clock so a tight simulation loop
	// never spends its time reporting. beat scans terminal messages only
	// when it actually emits.
	progressEvery := r.ProgressEvery
	if progressEvery <= 0 {
		progressEvery = 2 * time.Second
	}
	started := time.Now()
	lastBeat := started
	beat := func(rep *Report) {
		delivered, dropped := 0, 0
		for id := 0; id < n; id++ {
			mv := s.Message(id)
			if mv.Delivered {
				delivered++
			} else if mv.Dropped {
				dropped++
			}
		}
		r.Progress(Heartbeat{
			Cycle:          s.Now(),
			Messages:       n,
			Delivered:      delivered,
			Dropped:        dropped,
			FaultsInjected: rep.FaultsInjected,
			Interventions:  rep.Interventions,
			Elapsed:        time.Since(started),
		})
	}

	for c := 0; c < maxCycles; c++ {
		now := s.Now()
		for evIdx < len(events) && events[evIdx].At <= now {
			ev := events[evIdx]
			ev.Apply(s)
			rep.FaultsInjected++
			if r.Tracer != nil {
				te := obsv.Ev(obsv.KindFault, now)
				te.Note = ev.Kind.String()
				te.N = ev.Repair
				switch ev.Kind {
				case LinkFail, LinkStall:
					te.Ch = ev.Channel
				case MessageFreeze:
					te.Msg = ev.Message
				}
				r.Tracer.Event(te)
			}
			evIdx++
		}
		if s.AllTerminal() {
			break
		}
		s.Step()
		now = s.Now()

		if r.Progress != nil && time.Since(lastBeat) >= progressEvery {
			lastBeat = time.Now()
			beat(&rep)
		}

		for id := 0; id < n; id++ {
			f := s.Frozen(id) > 0
			if frozen[id] && !f {
				r.warn(&rep, now, id, "freeze expired; message resumes contention")
			}
			frozen[id] = f
		}

		for id := 0; id < n; id++ {
			mv := s.Message(id)
			if mv.Delivered || mv.Dropped {
				continue
			}
			sig := r.signature(id)
			if sig != progress[id] || mv.Frozen > 0 || now <= mv.Spec.InjectAt {
				progress[id] = sig
				stamp[id] = now
				continue
			}
			if at, blocked := s.FaultBlocked(id); blocked && at != sim.DownForever {
				// Stalled behind a transient fault: the repair, not the
				// watchdog, is the cure. Don't let the stall age the message
				// toward a timeout intervention.
				stamp[id] = now
			}
		}

		forced := !s.AllTerminal() && s.Quiescent()
		if !forced && now-lastSweep < r.Recovery.Watchdog.CheckEvery {
			continue
		}
		lastSweep = now
		r.sweep(&rep, stamp, recoveryStart, forced)
	}

	rep.Outcome = r.finalOutcome()
	rep.Result = rep.Outcome.Result.String()
	rep.Cycles = rep.Outcome.Cycles
	rep.Stats = sim.Collect(s)
	rep.Accounting = r.account(stamp, recoveryStart)
	rep.MeanRecoveryLatency = meanRecoveryLatency(s, recoveryStart)
	if r.Progress != nil {
		beat(&rep)
	}
	return rep
}

// signature condenses a message's forward motion into one comparable int.
// Injection, consumption and (for adaptive messages) route growth all move
// it; a reset changes it too, restarting the stall clock.
func (r *Runner) signature(id int) int {
	mv := r.Sim.Message(id)
	sig := mv.Injected*3 + mv.Consumed*5 + len(mv.Path) + mv.Retries*7
	if mv.HeaderConsumed {
		sig++
	}
	return sig
}

// sweep runs one watchdog pass and intervenes on at most one victim — a
// single victim per sweep avoids the thundering herd of simultaneous
// reinjections rebuilding the deadlock it just broke.
func (r *Runner) sweep(rep *Report, stamp, recoveryStart []int, forced bool) {
	s := r.Sim
	now := s.Now()

	// Exact detector first: a Definition 6 cycle among oblivious messages
	// is a proof of deadlock — no repair can dissolve a closed cycle of
	// waits on owned channels. (A cycle with adaptive members may still
	// dissolve when a bystander frees an alternative candidate, so it is
	// only trusted when the state is quiescent.)
	if d := waitfor.Find(s); d != nil && (forced || r.cycleCertain(d)) {
		rep.DeadlocksDetected++
		if r.Tracer != nil {
			ev := obsv.Ev(obsv.KindDeadlock, now)
			ev.N = len(d.Cycle)
			ev.Note = "definition-6 cycle"
			r.Tracer.Event(ev)
		}
		// Classify the scope: when any message outside the cycle can still
		// advance, the cycle has only killed a subnetwork — a local
		// deadlock in the Stramaglia/Keiren/Zantema sense. (A forced sweep
		// fires on a quiescent state, where nothing advances: global.)
		member := make(map[int]bool, len(d.Cycle))
		for _, id := range d.Cycle {
			member[id] = true
		}
		for id := 0; id < s.NumMessages(); id++ {
			mv := s.Message(id)
			if member[id] || mv.Delivered || mv.Dropped {
				continue
			}
			if s.CanAdvance(id) {
				rep.LocalDeadlocks++
				if r.Tracer != nil {
					ev := obsv.Ev(obsv.KindLocalDeadlock, now)
					ev.N = len(d.Cycle)
					ev.Msg = id
					ev.Note = "cycle with live bystanders"
					r.Tracer.Event(ev)
				}
				break
			}
		}
		r.intervene(rep, recoveryStart, r.victim(d.Cycle, recoveryStart), now)
		return
	}

	// Timeout heuristic: pick the longest-stalled eligible message.
	// Messages stalled behind a permanent fault are eligible without
	// waiting out the timeout — no amount of patience repairs DownForever.
	victim, victimStamp := -1, 0
	for id := 0; id < len(stamp); id++ {
		mv := s.Message(id)
		if mv.Delivered || mv.Dropped || mv.Frozen > 0 {
			continue
		}
		age := now - stamp[id]
		eligible := age >= r.Recovery.Watchdog.Timeout || forced
		if !eligible {
			if at, blocked := s.FaultBlocked(id); blocked && at == sim.DownForever {
				eligible = true
			}
		}
		if !eligible {
			continue
		}
		if victim == -1 || stamp[id] < victimStamp {
			victim, victimStamp = id, stamp[id]
		}
	}
	if victim >= 0 {
		rep.TimeoutSuspicions++
		// Classify the suspicion: a message the recovery layer has already
		// reset at least once and that stalled again is livelocking —
		// reinjection keeps happening, delivery never does. A first
		// offender simply starved.
		if s.Retries(victim) > 0 {
			rep.Livelocks++
			if r.Tracer != nil {
				ev := obsv.Ev(obsv.KindLivelock, now)
				ev.Msg = victim
				ev.N = s.Retries(victim)
				ev.Note = "reset again without progress"
				r.Tracer.Event(ev)
			}
		} else {
			rep.Starvations++
			if r.Tracer != nil {
				ev := obsv.Ev(obsv.KindStarvation, now)
				ev.Msg = victim
				ev.Note = "no progress within timeout"
				r.Tracer.Event(ev)
			}
		}
		r.intervene(rep, recoveryStart, victim, now)
	}
}

// cycleCertain reports whether every member of the cycle routes
// obliviously, making the Definition 6 cycle a permanent deadlock.
func (r *Runner) cycleCertain(d *waitfor.Deadlock) bool {
	for _, id := range d.Cycle {
		if r.Sim.IsAdaptive(id) {
			return false
		}
	}
	return true
}

// victim picks the cycle member to intervene on. Without aging this is the
// classic youngest-first rule. With Aging, fairness outranks progress
// preservation: the member the recovery layer has punished least goes
// first — fewest retries, then never-intervened before already-recovering
// members, then the usual youngest tiebreak — so no single message eats
// every abort while its cycle-mates never pay.
func (r *Runner) victim(cycle []int, recoveryStart []int) int {
	if !r.Recovery.Aging {
		return r.youngest(cycle)
	}
	best := cycle[0]
	for _, id := range cycle[1:] {
		if r.agedBefore(id, best, recoveryStart) {
			best = id
		}
	}
	return best
}

// agedBefore orders two cycle members by how little the recovery layer has
// punished them: fewer retries first, never-intervened first, then the
// youngest rule (latest injection, ties to the highest ID).
func (r *Runner) agedBefore(a, b int, recoveryStart []int) bool {
	if ra, rb := r.Sim.Retries(a), r.Sim.Retries(b); ra != rb {
		return ra < rb
	}
	if na, nb := recoveryStart[a] < 0, recoveryStart[b] < 0; na != nb {
		return na
	}
	if ia, ib := r.Sim.Message(a).InjectedAt, r.Sim.Message(b).InjectedAt; ia != ib {
		return ia > ib
	}
	return a > b
}

// youngest picks the victim from a deadlock cycle: the member injected
// last (ties to the highest ID). Killing the youngest preserves the most
// progress and is the paper-adjacent convention for abort-and-retry.
func (r *Runner) youngest(cycle []int) int {
	best := cycle[0]
	bestAt := r.Sim.Message(best).InjectedAt
	for _, id := range cycle[1:] {
		at := r.Sim.Message(id).InjectedAt
		if at > bestAt || (at == bestAt && id > best) {
			best, bestAt = id, at
		}
	}
	return best
}

// intervene applies the configured policy to the victim.
func (r *Runner) intervene(rep *Report, recoveryStart []int, id, now int) {
	s := r.Sim
	rep.Interventions++
	if recoveryStart[id] < 0 {
		recoveryStart[id] = now
	}

	recovery := func(action string) {
		if r.Tracer != nil {
			ev := obsv.Ev(obsv.KindRecovery, now)
			ev.Msg = id
			ev.Note = action
			r.Tracer.Event(ev)
		}
	}
	drop := func(why string) {
		s.DropMessage(id)
		rep.Drops++
		recovery("drop")
		r.warn(rep, now, id, "message dropped: "+why)
	}

	switch r.Recovery.Policy {
	case Drop:
		drop("drop policy")
		return
	case AbortRetry:
		if r.hopeless(id) {
			drop("path crosses a permanently failed channel")
			return
		}
		if r.retriesExhausted(id) {
			drop("retry budget exhausted")
			return
		}
		s.ResetMessage(id, now+1+r.backoff(id, recoveryStart))
		rep.AbortRetries++
		recovery("abort-retry")
	case Reroute:
		if r.retriesExhausted(id) {
			drop("retry budget exhausted")
			return
		}
		mv := s.Message(id)
		if s.IsAdaptive(mv.ID) {
			// The engine already masks dead candidates for adaptive
			// messages; a reset from the source is the whole reroute.
			if r.hopeless(id) {
				drop("destination unreachable over live channels")
				return
			}
			s.ResetMessage(id, now+1+r.backoff(id, recoveryStart))
			rep.Reroutes++
			recovery("reroute")
			return
		}
		down := func(c topology.ChannelID) bool { return s.ChannelDown(c) }
		var path []topology.ChannelID
		if r.Alg != nil {
			path = routing.Reroute(r.Alg, down, mv.Spec.Src, mv.Spec.Dst)
		} else {
			path = topology.Degraded{Net: s.Network(), Down: down}.ShortestPath(mv.Spec.Src, mv.Spec.Dst)
		}
		if path == nil {
			// Unreachable right now. If only transient faults separate the
			// endpoints a retry on the old path can still win; otherwise the
			// message is lost.
			if r.hopeless(id) {
				drop("destination unreachable over live channels")
				return
			}
			s.ResetMessage(id, now+1+r.backoff(id, recoveryStart))
			rep.AbortRetries++
			recovery("abort-retry")
			r.warn(rep, now, id, "reroute found no live path; retrying the old path")
			return
		}
		s.ResetMessage(id, now+1+r.backoff(id, recoveryStart))
		if err := s.SetMessagePath(id, path); err != nil {
			// The old path stands; the retry alone may still succeed.
			rep.AbortRetries++
			recovery("abort-retry")
			r.warn(rep, now, id, "reroute path rejected ("+err.Error()+"); retrying the old path")
			return
		}
		rep.Reroutes++
		recovery("reroute")
	}
}

// hopeless reports whether no retry can ever deliver the message: for an
// oblivious message, its current path crosses a permanently failed channel
// (reroute can still save it — abort-retry cannot); for an adaptive one,
// the destination is unreachable over channels that are not permanently
// dead.
func (r *Runner) hopeless(id int) bool {
	s := r.Sim
	mv := s.Message(id)
	perm := func(c topology.ChannelID) bool { return s.DownUntil(c) == sim.DownForever }
	if !s.IsAdaptive(id) {
		if r.Recovery.Policy == AbortRetry {
			for _, c := range mv.Path {
				if perm(c) {
					return true
				}
			}
			return false
		}
	}
	return !(topology.Degraded{Net: s.Network(), Down: perm}).Reaches(mv.Spec.Src, mv.Spec.Dst)
}

// retriesExhausted reports whether the victim has used up its retry budget.
func (r *Runner) retriesExhausted(id int) bool {
	return r.Recovery.MaxRetries > 0 && r.Sim.Retries(id) >= r.Recovery.MaxRetries
}

// backoff returns the reinjection delay for the victim's next retry:
// BackoffBase doubled per prior retry, capped at BackoffMax. The growing,
// per-message delays desynchronise the reinjections of repeat offenders.
// Under Aging the oldest outstanding victim is exempt: it reinjects at
// BackoffBase so its own backoff can never starve it behind younger
// traffic.
func (r *Runner) backoff(id int, recoveryStart []int) int {
	if r.Recovery.Aging && r.oldestOutstanding(id, recoveryStart) {
		return r.Recovery.BackoffBase
	}
	b := r.Recovery.BackoffBase
	for i := 0; i < r.Sim.Retries(id); i++ {
		b *= 2
		if b >= r.Recovery.BackoffMax {
			return r.Recovery.BackoffMax
		}
	}
	return b
}

// oldestOutstanding reports whether id is the longest-suffering victim
// still in flight: among undelivered, undropped messages that have been
// intervened on, it has the earliest first intervention (ties to the
// lowest ID).
func (r *Runner) oldestOutstanding(id int, recoveryStart []int) bool {
	for other := range recoveryStart {
		if other == id || recoveryStart[other] < 0 {
			continue
		}
		mv := r.Sim.Message(other)
		if mv.Delivered || mv.Dropped {
			continue
		}
		if recoveryStart[other] < recoveryStart[id] ||
			(recoveryStart[other] == recoveryStart[id] && other < id) {
			return false
		}
	}
	return true
}

// account builds the end-of-run fairness ledger. stamp is the last cycle
// each message made progress or was excused; recoveryStart the cycle of
// each message's first intervention (-1 for none).
func (r *Runner) account(stamp, recoveryStart []int) Accounting {
	s := r.Sim
	now := s.Now()
	grace := r.Recovery.Watchdog.Timeout + r.Recovery.Watchdog.CheckEvery
	var a Accounting
	for id := 0; id < s.NumMessages(); id++ {
		mv := s.Message(id)
		switch {
		case mv.Delivered:
			a.Delivered++
		case mv.Dropped:
			a.DroppedByPolicy++
		case recoveryStart[id] >= 0:
			a.InRecovery++
		case mv.Frozen > 0 || now <= mv.Spec.InjectAt || now-stamp[id] < grace:
			a.Excused++
		default:
			if _, blocked := s.FaultBlocked(id); blocked {
				a.Excused++
				continue
			}
			a.Unaccounted = append(a.Unaccounted, id)
		}
	}
	return a
}

// finalOutcome classifies the end state the way sim.Run would.
func (r *Runner) finalOutcome() sim.Outcome {
	s := r.Sim
	var undelivered, dropped []int
	for id := 0; id < s.NumMessages(); id++ {
		mv := s.Message(id)
		if mv.Dropped {
			dropped = append(dropped, id)
		} else if !mv.Delivered {
			undelivered = append(undelivered, id)
		}
	}
	sort.Ints(undelivered)
	sort.Ints(dropped)
	out := sim.Outcome{Cycles: s.Now(), Undelivered: undelivered, Dropped: dropped}
	switch {
	case len(undelivered) > 0 && s.Quiescent():
		out.Result = sim.ResultDeadlock
	case len(undelivered) > 0:
		out.Result = sim.ResultTimeout
	case len(dropped) > 0:
		out.Result = sim.ResultDegraded
	default:
		out.Result = sim.ResultDelivered
	}
	return out
}

// meanRecoveryLatency averages first-intervention-to-delivery over messages
// that were intervened on and still delivered.
func meanRecoveryLatency(s *sim.Sim, recoveryStart []int) float64 {
	total, count := 0, 0
	for id, start := range recoveryStart {
		if start < 0 {
			continue
		}
		mv := s.Message(id)
		if !mv.Delivered {
			continue
		}
		total += mv.DeliveredAt - start
		count++
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}
