package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/topology"
)

// GenParams parameterises random schedule generation. All randomness comes
// from Seed, so a (network, params) pair always yields the same schedule —
// campaigns are replayable by construction.
type GenParams struct {
	// Seed drives the generator's PRNG.
	Seed int64
	// Horizon is the last cycle (exclusive) at which a fault may strike.
	Horizon int
	// MTBF is the mean number of cycles between successive faults on one
	// channel (exponential inter-arrival). Larger is healthier.
	MTBF float64
	// MeanRepair is the mean outage length of a transient fault, in cycles
	// (exponential, floored at 1).
	MeanRepair float64
	// PermanentFraction of channel faults are permanent failures instead of
	// transient stalls, in [0,1].
	PermanentFraction float64
	// RouterFraction of fault arrivals strike the channel's source router
	// (downing all its incident channels) instead of the channel alone,
	// in [0,1].
	RouterFraction float64
}

// Generate draws a deterministic fault schedule for the network. Each
// channel suffers faults as a Poisson process with mean inter-arrival MTBF;
// an arrival becomes, in order of precedence, a router failure (probability
// RouterFraction, victim = the channel's source node), a permanent link
// failure (probability PermanentFraction), or a transient stall with an
// exponential repair time of mean MeanRepair. Channels are visited in ID
// order off a single PRNG stream, so the schedule is a pure function of
// (network shape, params).
func Generate(net *topology.Network, p GenParams) (Schedule, error) {
	if p.Horizon <= 0 {
		return Schedule{}, fmt.Errorf("fault: generate: horizon must be positive, got %d", p.Horizon)
	}
	if p.MTBF <= 0 {
		return Schedule{}, fmt.Errorf("fault: generate: MTBF must be positive, got %g", p.MTBF)
	}
	if p.MeanRepair <= 0 {
		p.MeanRepair = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var sch Schedule
	for c := 0; c < net.NumChannels(); c++ {
		at := 0
		for {
			at += 1 + int(rng.ExpFloat64()*p.MTBF)
			if at >= p.Horizon {
				break
			}
			e := Event{At: at, Channel: topology.ChannelID(c)}
			switch {
			case rng.Float64() < p.RouterFraction:
				e.Kind = RouterFail
				e.Node = net.Channel(topology.ChannelID(c)).Src
				e.Repair = 1 + int(rng.ExpFloat64()*p.MeanRepair)
			case rng.Float64() < p.PermanentFraction:
				e.Kind = LinkFail
			default:
				e.Kind = LinkStall
				e.Repair = 1 + int(rng.ExpFloat64()*p.MeanRepair)
			}
			sch.Events = append(sch.Events, e)
			if e.Kind == LinkFail {
				break // channel is gone for good; no further arrivals
			}
		}
	}
	return sch.Sorted(), nil
}
