package fault

import (
	"fmt"
	"strings"
)

// Policy selects what the watchdog does to a message it decides to
// intervene on.
type Policy int

const (
	// AbortRetry kills the victim worm, drains its buffers, and reinjects
	// it after an exponential backoff — the classic wormhole recovery
	// (Kim/Liu/Chien-style compressionless flavour) and the policy that
	// restores 100% delivery when the network heals.
	AbortRetry Policy = iota
	// Drop removes the victim permanently and counts the loss: graceful
	// degradation for networks that tolerate message loss.
	Drop
	// Reroute re-plans the victim's path on the degraded topology before
	// reinjecting it: oblivious messages get a BFS detour over live
	// channels, adaptive messages simply benefit from the engine masking
	// dead candidates. Falls back to Drop when the destination is
	// unreachable, and to plain abort-retry when no detour is needed.
	Reroute
)

// String renders the policy using its flag spelling.
func (p Policy) String() string {
	switch p {
	case AbortRetry:
		return "abort-retry"
	case Drop:
		return "drop"
	case Reroute:
		return "reroute"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy reads a policy name as accepted on the command line.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "abort-retry", "abortretry", "retry":
		return AbortRetry, nil
	case "drop":
		return Drop, nil
	case "reroute":
		return Reroute, nil
	}
	return 0, fmt.Errorf("fault: unknown recovery policy %q (want abort-retry, drop, reroute)", s)
}

// Watchdog configures deadlock detection. Two detectors run together:
//
//   - The exact detector: waitfor.Find locates a Definition 6 cycle in the
//     wait-for graph. Sound and complete on its own terms, but a cycle that
//     exists only because a channel is transiently down is not a true
//     deadlock — it dissolves when the repair lands — so the runner only
//     trusts it once the cycle has outlived every pending repair.
//   - The timeout heuristic: any message that has made no progress for
//     Timeout cycles and is not excused (frozen, or stalled behind a known
//     transient fault) is treated as deadlocked. This is the detector real
//     routers ship, and the only one that works when faults keep the
//     network from ever reaching exact stability.
type Watchdog struct {
	// CheckEvery is the sweep period in cycles.
	CheckEvery int
	// Timeout is the no-progress age, in cycles, after which a message
	// becomes eligible for intervention.
	Timeout int
}

// DefaultWatchdog returns the standard watchdog tuning: sweep every 8
// cycles, suspect after 128 cycles without progress.
func DefaultWatchdog() Watchdog { return Watchdog{CheckEvery: 8, Timeout: 128} }

// RecoveryConfig configures the runner's recovery layer.
type RecoveryConfig struct {
	Policy   Policy
	Watchdog Watchdog
	// BackoffBase is the first abort-retry reinjection delay in cycles;
	// each further retry of the same message doubles it up to BackoffMax.
	// Exponential backoff breaks the symmetry that would otherwise rebuild
	// the same deadlock out of the same worms.
	BackoffBase int
	BackoffMax  int
	// MaxRetries bounds abort-retry attempts per message; once exceeded the
	// message is dropped instead. <= 0 means unlimited.
	MaxRetries int
	// Aging makes recovery provably fair. Victim selection prefers the
	// message the recovery layer has punished least (fewest retries, then
	// never-intervened, then the usual youngest rule), and the oldest
	// outstanding victim reinjects at BackoffBase with no exponential
	// penalty — so no message can be starved by repeatedly losing the
	// victim lottery or by its own growing backoff.
	Aging bool
}

// DefaultRecovery returns the standard recovery tuning for the policy:
// fair (aged) victim selection and a bounded retry budget, so every
// message is eventually delivered, dropped by policy, or classified —
// never silently stuck in an unbounded retry loop.
func DefaultRecovery(p Policy) RecoveryConfig {
	return RecoveryConfig{
		Policy:      p,
		Watchdog:    DefaultWatchdog(),
		BackoffBase: 8,
		BackoffMax:  256,
		MaxRetries:  64,
		Aging:       true,
	}
}

func (rc *RecoveryConfig) normalize() {
	if rc.Watchdog.CheckEvery <= 0 {
		rc.Watchdog.CheckEvery = 8
	}
	if rc.Watchdog.Timeout <= 0 {
		rc.Watchdog.Timeout = 128
	}
	if rc.BackoffBase <= 0 {
		rc.BackoffBase = 8
	}
	if rc.BackoffMax < rc.BackoffBase {
		rc.BackoffMax = rc.BackoffBase
	}
}
