package core

import (
	"strings"
	"testing"

	"repro/internal/cdg"
	"repro/internal/mcheck"
	"repro/internal/papernets"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestAnalyzeAcyclicAlgorithms(t *testing.T) {
	cases := []struct {
		name string
		alg  routing.Algorithm
	}{
		{"dor-mesh", routing.DimensionOrder(topology.NewMesh([]int{3, 3}, 1))},
		{"negfirst-mesh", routing.NegativeFirst(topology.NewMesh([]int{3, 3}, 1))},
		{"ecube", routing.ECube(topology.NewHypercube(3))},
		{"dallyseitz", routing.DallySeitzTorus(topology.NewTorus([]int{4, 4}, 2))},
	}
	for _, tc := range cases {
		rep := Analyze(tc.alg, Options{})
		if rep.Verdict != DeadlockFree {
			t.Fatalf("%s: verdict = %v; want deadlock-free", tc.name, rep.Verdict)
		}
		if !rep.Acyclic || rep.Numbering == nil {
			t.Fatalf("%s: expected acyclicity certificate", tc.name)
		}
		if !strings.Contains(rep.Reason, "acyclic") {
			t.Fatalf("%s: reason = %q", tc.name, rep.Reason)
		}
	}
}

func TestAnalyzeRingShortestDeadlockCapable(t *testing.T) {
	// Shortest-path routing on a unidirectional ring: the canonical
	// deadlock-prone algorithm. It is input-channel independent, so the
	// Corollary 1 screen fires.
	rep := Analyze(routing.ShortestBFS(topology.NewRing(4, false)), Options{})
	if rep.Verdict != DeadlockCapable {
		t.Fatalf("verdict = %v; want deadlock-capable", rep.Verdict)
	}
	if rep.Screen == "" {
		t.Fatal("expected a corollary screen for N x N -> C routing")
	}
	if rep.Acyclic {
		t.Fatal("ring CDG must be cyclic")
	}
}

// The paper's headline result, fully automatic: the Cyclic Dependency
// algorithm has a cyclic CDG, is not screened by any corollary, its unique
// cycle decomposes into exactly the four-message configuration, and the
// Section 5 timing analysis proves the configuration unreachable — so the
// algorithm is deadlock-free.
func TestAnalyzeFigure1DeadlockFreeDespiteCycle(t *testing.T) {
	pn := papernets.Figure1()
	rep := Analyze(pn.Alg, Options{})
	if rep.Acyclic {
		t.Fatal("figure 1 CDG must be cyclic")
	}
	if rep.Screen != "" {
		t.Fatalf("no corollary should screen figure 1 (got %q)", rep.Screen)
	}
	if rep.Verdict != DeadlockFree {
		t.Fatalf("verdict = %v (%s); Theorem 1 says deadlock-free", rep.Verdict, rep.Reason)
	}
	if len(rep.Cycles) != 1 {
		t.Fatalf("cycles = %d; want 1", len(rep.Cycles))
	}
	cyc := rep.Cycles[0]
	if cyc.Verdict != ConfigUnreachable {
		t.Fatalf("cycle verdict = %v", cyc.Verdict)
	}
	if len(cyc.Configs) != 1 {
		t.Fatalf("configurations = %d; want the unique four-message tiling", len(cyc.Configs))
	}
	cfg := cyc.Configs[0].Config
	if len(cfg.Members) != 4 {
		t.Fatalf("members = %d; want 4", len(cfg.Members))
	}
	// Members are exactly the four Src -> D_i messages.
	for _, m := range cfg.Members {
		if m.Src != pn.Src {
			t.Fatalf("member source = %d; want Src", m.Src)
		}
	}
}

func TestAnalyzeGenK(t *testing.T) {
	for k := 1; k <= 3; k++ {
		rep := Analyze(papernets.GenK(k).Alg, Options{})
		if rep.Verdict != DeadlockFree {
			t.Fatalf("gen%d: verdict = %v", k, rep.Verdict)
		}
	}
}

func TestAnalyzeFigure2DeadlockCapable(t *testing.T) {
	rep := Analyze(papernets.Figure2().Alg, Options{})
	if rep.Verdict != DeadlockCapable {
		t.Fatalf("verdict = %v; Theorem 4 says deadlock-capable", rep.Verdict)
	}
	// A witness schedule is attached to some reachable configuration.
	found := false
	for _, cyc := range rep.Cycles {
		for _, cfg := range cyc.Configs {
			if cfg.Verdict == ConfigReachable && cfg.Witness != nil {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no witness schedule attached")
	}
}

// Figure 3: the analyzer's static verdicts match the model checker's
// ground truth for all six configurations.
func TestAnalyzeFigure3MatchesModelChecker(t *testing.T) {
	want := map[byte]Freedom{
		'a': DeadlockFree, 'b': DeadlockFree,
		'c': DeadlockCapable, 'd': DeadlockCapable, 'e': DeadlockCapable, 'f': DeadlockCapable,
	}
	for letter := byte('a'); letter <= 'f'; letter++ {
		pn := papernets.Figure3(letter)
		rep := Analyze(pn.Alg, Options{})
		if rep.Verdict != want[letter] {
			t.Fatalf("figure 3(%c): verdict = %v (%s); want %v", letter, rep.Verdict, rep.Reason, want[letter])
		}
	}
}

// Cross-validation: across the three-sharer family, the static analyzer
// and the exhaustive model checker (with interposed copies) agree.
func TestAnalyzeMatchesSearchOnThreeSharerFamily(t *testing.T) {
	ds := [][3]int{{4, 2, 3}, {5, 2, 3}, {6, 2, 3}, {4, 3, 2}}
	cs := [][3]int{{4, 4, 4}, {3, 4, 2}}
	for _, D := range ds {
		for _, C := range cs {
			pn := papernets.ThreeSharer("fam", papernets.ThreeSharerParams{D: D, C: C})
			rep := Analyze(pn.Alg, Options{})
			res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{MaxStates: 10_000_000})
			gotCapable := rep.Verdict == DeadlockCapable
			truthCapable := res.Verdict == mcheck.VerdictDeadlock
			if !truthCapable {
				// Allow for interposed-copy deadlocks, which the static
				// analyzer accounts for via Theorem 5.
				for pos := range pn.Scenario.Msgs {
					sc := pn.Scenario
					sc.Msgs = append(append(sc.Msgs[:0:0], pn.Scenario.Msgs...), pn.Scenario.Msgs[pos])
					if r := mcheck.Search(sc, mcheck.SearchOptions{MaxStates: 10_000_000}); r.Verdict == mcheck.VerdictDeadlock {
						truthCapable = true
						break
					}
				}
			}
			if gotCapable != truthCapable {
				t.Fatalf("D%v C%v: analyzer capable=%v, checker capable=%v (%s)", D, C, gotCapable, truthCapable, rep.Reason)
			}
		}
	}
}

func TestDecomposeRingCycle(t *testing.T) {
	// Unidirectional 4-ring, shortest routing: the 4-channel cycle tiles
	// into configurations of two-hop messages.
	net := topology.NewRing(4, false)
	alg := routing.ShortestBFS(net)
	rep := Analyze(alg, Options{})
	if rep.Screen == "" {
		t.Skip("screened algorithms do not decompose")
	}
}

func TestDecomposeFindsUniqueFigure1Tiling(t *testing.T) {
	pn := papernets.Figure1()
	g := cdg.New(pn.Alg)
	cycles, _ := g.Cycles(0)
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d", len(cycles))
	}
	configs, truncated := decomposeCycle(pn.Alg, cycles[0], 0)
	if truncated {
		t.Fatal("unexpected truncation")
	}
	if len(configs) != 1 {
		t.Fatalf("tilings = %d; want 1", len(configs))
	}
	// Arc lengths must be the paper's 3, 4, 3, 4 in ring order.
	lens := map[int]int{}
	for _, m := range configs[0].Members {
		lens[len(m.Arc)]++
	}
	if lens[3] != 2 || lens[4] != 2 {
		t.Fatalf("arc lengths = %v; want two of 3 and two of 4", lens)
	}
}

func TestFreedomAndConfigVerdictStrings(t *testing.T) {
	if DeadlockFree.String() != "deadlock-free" || DeadlockCapable.String() != "deadlock-capable" || Unknown.String() != "unknown" {
		t.Fatal("Freedom strings wrong")
	}
	if ConfigUnreachable.String() != "unreachable" || ConfigReachable.String() != "reachable" || ConfigUnknown.String() != "unknown" {
		t.Fatal("ConfigVerdict strings wrong")
	}
}

func TestAnalyzeHubRouting(t *testing.T) {
	// Hub routing on a star: every path is at most two hops through the
	// hub; the CDG is acyclic.
	rep := Analyze(routing.Hub(topology.NewStar(5), 0), Options{})
	if rep.Verdict != DeadlockFree || !rep.Acyclic {
		t.Fatalf("star hub routing: %v (acyclic=%v)", rep.Verdict, rep.Acyclic)
	}
}
