package core

import (
	"fmt"

	"repro/internal/cdg"
	"repro/internal/mcheck"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/unreachable"
)

// Freedom is the analyzer's overall verdict on a routing algorithm.
type Freedom int

const (
	// DeadlockFree: the algorithm cannot deadlock — either its CDG is
	// acyclic, or every cycle decomposes only into unreachable (false
	// resource cycle) configurations.
	DeadlockFree Freedom = iota
	// DeadlockCapable: a reachable Definition 6 deadlock exists; the
	// report carries the configuration.
	DeadlockCapable
	// Unknown: some cycle has a configuration outside the geometry the
	// Section 5 theory covers (or enumeration was truncated), and no
	// reachable configuration was found.
	Unknown
)

// String renders the verdict.
func (f Freedom) String() string {
	switch f {
	case DeadlockFree:
		return "deadlock-free"
	case DeadlockCapable:
		return "deadlock-capable"
	}
	return "unknown"
}

// ConfigVerdict classifies one candidate configuration.
type ConfigVerdict int

const (
	// ConfigUnreachable: a false resource cycle.
	ConfigUnreachable ConfigVerdict = iota
	// ConfigReachable: a reachable deadlock.
	ConfigReachable
	// ConfigUnknown: outside the supported geometry.
	ConfigUnknown
)

// String renders the configuration verdict.
func (v ConfigVerdict) String() string {
	switch v {
	case ConfigUnreachable:
		return "unreachable"
	case ConfigReachable:
		return "reachable"
	}
	return "unknown"
}

// ConfigReport is the analysis of one candidate configuration.
type ConfigReport struct {
	Config  Configuration
	Verdict ConfigVerdict
	// Reason names the rule that decided the verdict.
	Reason string
	// Witness is the reachable configuration's schedule, when available.
	Witness *unreachable.Witness
	// SearchResult is the exhaustive model checker's verdict on the
	// configuration's single-instance scenario (see ConfigScenario),
	// populated only when Options.Search is set.
	SearchResult *mcheck.SearchResult
}

// CycleReport is the analysis of one CDG cycle.
type CycleReport struct {
	Cycle   cdg.Cycle
	Configs []ConfigReport
	// Truncated reports that configuration enumeration hit the cap.
	Truncated bool
	// Verdict aggregates the configurations: reachable if any is,
	// unknown if any is unknown (or enumeration truncated) and none
	// reachable, unreachable otherwise.
	Verdict ConfigVerdict
}

// Report is the full analysis of a routing algorithm.
type Report struct {
	Algorithm  string
	Properties routing.Properties

	CDGEdges int
	Acyclic  bool
	// Numbering certifies acyclicity: every dependency goes from a
	// lower-numbered channel to a higher-numbered one. Nil when cyclic.
	Numbering []int

	// Screen names the corollary that short-circuited cycle analysis
	// ("suffix-closed" or "input-channel-independent"), if any: such
	// algorithms cannot have unreachable configurations, so any cycle is
	// a reachable deadlock (Corollaries 1-3).
	Screen string

	Cycles          []CycleReport
	CyclesTruncated bool

	Verdict Freedom
	// Reason summarizes the verdict derivation.
	Reason string
}

// Options bounds the analysis.
type Options struct {
	// MaxCycles caps cycle enumeration (0 = DefaultMaxCycles).
	MaxCycles int
	// MaxConfigs caps configuration tilings per cycle (0 =
	// DefaultMaxConfigs).
	MaxConfigs int
	// Search, when non-nil, cross-checks every classified configuration
	// with the exhaustive state-space model checker: the configuration is
	// instantiated as a scenario (ConfigScenario, one message per member)
	// and mcheck.Search decides deadlock reachability for that message
	// set exactly, under the given options. Results land in
	// ConfigReport.SearchResult; the static verdict is not overridden —
	// disagreements surface in the report for the caller (or a test) to
	// flag. The cross-check multiplies analysis cost by the state-space
	// size, so it is opt-in.
	Search *mcheck.SearchOptions
}

// Default analysis bounds.
const (
	DefaultMaxCycles  = 64
	DefaultMaxConfigs = 256
)

// Analyze runs the full deadlock-freedom analysis on an oblivious routing
// algorithm.
func Analyze(alg routing.Algorithm, opts Options) *Report {
	if opts.MaxCycles <= 0 {
		opts.MaxCycles = DefaultMaxCycles
	}
	if opts.MaxConfigs <= 0 {
		opts.MaxConfigs = DefaultMaxConfigs
	}
	rep := &Report{
		Algorithm:  alg.Name(),
		Properties: routing.CheckAll(alg),
	}
	g := cdg.New(alg)
	rep.CDGEdges = g.NumEdges()
	ok, numbering := g.Acyclic()
	rep.Acyclic = ok
	rep.Numbering = numbering
	if ok {
		rep.Verdict = DeadlockFree
		rep.Reason = "acyclic channel dependency graph (Dally-Seitz); topological numbering certificate attached"
		return rep
	}

	cycles, truncated := g.Cycles(opts.MaxCycles)
	rep.CyclesTruncated = truncated

	// Corollary screen: suffix-closed (Cor 2) or input-channel-independent
	// (Cor 1) algorithms have no unreachable configurations, so a cyclic
	// CDG means a reachable deadlock. The corollary proofs construct the
	// deadlock from the suffix messages, so they only apply to complete
	// algorithms — a partial table can be vacuously suffix-closed.
	if rep.Properties.Complete {
		if rep.Properties.SuffixClosed {
			rep.Screen = "suffix-closed"
		} else if rep.Properties.InputChannelIndependent {
			rep.Screen = "input-channel-independent"
		}
	}
	if rep.Screen != "" {
		rep.Verdict = DeadlockCapable
		rep.Reason = fmt.Sprintf("cyclic CDG and %s routing: by Corollary %s the cycle cannot be unreachable",
			rep.Screen, map[string]string{"suffix-closed": "2", "input-channel-independent": "1"}[rep.Screen])
		for _, cyc := range cycles {
			rep.Cycles = append(rep.Cycles, CycleReport{Cycle: cyc, Verdict: ConfigReachable})
		}
		return rep
	}

	anyReachable := false
	anyUnknown := truncated
	for _, cyc := range cycles {
		cr := analyzeCycle(alg, cyc, opts)
		rep.Cycles = append(rep.Cycles, cr)
		switch cr.Verdict {
		case ConfigReachable:
			anyReachable = true
		case ConfigUnknown:
			anyUnknown = true
		}
	}
	switch {
	case anyReachable:
		rep.Verdict = DeadlockCapable
		rep.Reason = "a cycle admits a reachable Definition 6 configuration"
	case anyUnknown:
		rep.Verdict = Unknown
		rep.Reason = "no reachable configuration found, but some cycles exceed the supported geometry or bounds"
	default:
		rep.Verdict = DeadlockFree
		rep.Reason = "every CDG cycle decomposes only into false resource cycles (unreachable configurations)"
	}
	return rep
}

// analyzeCycle decomposes one cycle and classifies its configurations.
func analyzeCycle(alg routing.Algorithm, cyc cdg.Cycle, opts Options) CycleReport {
	cr := CycleReport{Cycle: cyc}
	configs, truncated := decomposeCycle(alg, cyc, opts.MaxConfigs)
	cr.Truncated = truncated
	if len(configs) == 0 {
		// No message set can produce this cycle at all: the dependencies
		// exist pairwise but no tiling realizes them simultaneously.
		cr.Verdict = ConfigUnreachable
		return cr
	}
	anyReachable, anyUnknown := false, truncated
	for _, cfg := range configs {
		rep := classifyConfiguration(alg, cyc, cfg)
		if opts.Search != nil {
			res := mcheck.Search(ConfigScenario(alg, cfg), *opts.Search)
			rep.SearchResult = &res
		}
		cr.Configs = append(cr.Configs, rep)
		switch rep.Verdict {
		case ConfigReachable:
			anyReachable = true
		case ConfigUnknown:
			anyUnknown = true
		}
	}
	switch {
	case anyReachable:
		cr.Verdict = ConfigReachable
	case anyUnknown:
		cr.Verdict = ConfigUnknown
	default:
		cr.Verdict = ConfigUnreachable
	}
	return cr
}

// classifyConfiguration maps a configuration onto the Section 5 timing
// model when its geometry allows, and classifies it.
func classifyConfiguration(alg routing.Algorithm, cyc cdg.Cycle, cfg Configuration) ConfigReport {
	rep := ConfigReport{Config: cfg}

	// Geometry checks: approaches must avoid the cycle's channels, and
	// pairwise share at most one common channel, which must be the first
	// channel of every approach that uses it.
	inCycle := make(map[topology.ChannelID]bool, len(cyc))
	for _, c := range cyc {
		inCycle[c] = true
	}
	use := make(map[topology.ChannelID]int)
	for _, m := range cfg.Members {
		seen := make(map[topology.ChannelID]bool)
		for _, c := range m.Approach {
			if inCycle[c] {
				rep.Verdict = ConfigUnknown
				rep.Reason = fmt.Sprintf("member approach uses cycle channel %d; outside supported geometry", c)
				return rep
			}
			if seen[c] {
				rep.Verdict = ConfigUnknown
				rep.Reason = "member approach repeats a channel"
				return rep
			}
			seen[c] = true
			use[c]++
		}
	}
	var shared topology.ChannelID = topology.None
	for c, n := range use {
		if n < 2 {
			continue
		}
		if shared != topology.None && shared != c {
			rep.Verdict = ConfigUnknown
			rep.Reason = "multiple shared approach channels; outside supported geometry"
			return rep
		}
		shared = c
	}
	ucfg := unreachable.Config{}
	for _, m := range cfg.Members {
		e := unreachable.Entrant{D: len(m.Approach), C: len(m.Arc)}
		if shared != topology.None {
			for i, c := range m.Approach {
				if c == shared {
					if i != 0 {
						rep.Verdict = ConfigUnknown
						rep.Reason = "shared channel is not the first approach channel; outside supported geometry"
						return rep
					}
					e.Shared = true
				}
			}
		}
		ucfg.Entrants = append(ucfg.Entrants, e)
	}

	// TheoremN generalizes the paper's Theorem 5 to any member count: the
	// single-instance timing system plus the interposed-copy blockability
	// screen.
	tn := unreachable.TheoremN(ucfg)
	switch {
	case tn.SingleInstance == unreachable.DeadlockReachable:
		rep.Verdict = ConfigReachable
		rep.Reason = "timing system feasible (Section 5 model); witness schedule attached"
		rep.Witness = tn.Witness
	case !tn.Unreachable:
		rep.Verdict = ConfigReachable
		rep.Reason = fmt.Sprintf("members %v are blockable outside the cycle by interposed copies (Theorem 4 reduction)", tn.Blockable)
	default:
		rep.Verdict = ConfigUnreachable
		rep.Reason = "timing system infeasible for every shared-channel ordering, and no member is blockable outside the cycle (false resource cycle)"
	}
	return rep
}
