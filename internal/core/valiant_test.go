package core

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Valiant two-phase routing is the textbook case the analyzer should get
// right beyond the paper's own constructions: with both phases on one
// virtual channel the CDG is cyclic and a reachable deadlock configuration
// exists; separating the phases onto two virtual channels makes the CDG
// acyclic and the algorithm certified deadlock-free.
func TestAnalyzeValiantTwoPhase(t *testing.T) {
	g1 := topology.NewMesh([]int{3, 3}, 1)
	rep := Analyze(routing.Valiant(g1, 7, false), Options{})
	if rep.Acyclic {
		t.Fatal("same-VC valiant should have a cyclic CDG")
	}
	if rep.Verdict != DeadlockCapable {
		t.Fatalf("same-VC valiant verdict = %v (%s)", rep.Verdict, rep.Reason)
	}

	g2 := topology.NewMesh([]int{3, 3}, 2)
	rep = Analyze(routing.Valiant(g2, 7, true), Options{})
	if !rep.Acyclic || rep.Verdict != DeadlockFree {
		t.Fatalf("vc-split valiant verdict = %v acyclic=%v", rep.Verdict, rep.Acyclic)
	}
}
