// Package core is the top-level analysis API of the library: given an
// oblivious wormhole routing algorithm, it decides deadlock freedom using
// the full chain of results from Schwiebert (SPAA '97):
//
//  1. build the channel dependency graph (Dally–Seitz);
//  2. if it is acyclic, the algorithm is deadlock-free — a topological
//     channel numbering is produced as the certificate;
//  3. otherwise, screen with the paper's corollaries: a suffix-closed or
//     input-channel-independent (R: N×N -> C) algorithm cannot have
//     unreachable configurations, so any cycle is a reachable deadlock;
//  4. otherwise, decompose each cycle into candidate Definition 6
//     configurations (tilings of the cycle by message arcs) and classify
//     each with the Section 5 timing theory (internal/unreachable):
//     a cycle all of whose configurations are false resource cycles is
//     harmless; if every cycle is harmless the algorithm is deadlock-free
//     even though its dependency graph is cyclic.
//
// The classification in step 4 is exact for the geometry the paper
// studies — configurations whose members share at most one channel, at the
// start of their approaches — and is cross-validated against the
// exhaustive state-space model checker (internal/mcheck) in the test
// suite. Configurations outside that geometry are reported as Unknown
// rather than guessed.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cdg"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Member is one message of a candidate deadlock configuration: the message
// from Src to Dst holds the cycle channels Arc and is blocked at the next
// member's first arc channel.
type Member struct {
	Src, Dst topology.NodeID
	// Arc is the run of consecutive cycle channels this member holds, in
	// path order.
	Arc []topology.ChannelID
	// Approach is the prefix of the member's routing path before Arc.
	Approach []topology.ChannelID
}

// Configuration is a candidate Definition 6 deadlock configuration: a
// tiling of a CDG cycle by member arcs, in ring order.
type Configuration struct {
	Members []Member
}

// decomposeCycle enumerates the ways the cycle can be produced by actual
// messages: tilings of the cycle channels into consecutive arcs, each arc
// realized by a (src, dst) pair whose routing path traverses the arc and
// is then blocked at the next arc's first channel. At most maxConfigs
// tilings are returned (0 = unlimited); the bool reports truncation.
func decomposeCycle(alg routing.Algorithm, cyc cdg.Cycle, maxConfigs int) ([]Configuration, bool) {
	net := alg.Network()
	L := len(cyc)

	// arcRealizers[p][l] lists the (src,dst) pairs realizing the arc of
	// length l starting at cycle position p: the pair's path contains
	// cyc[p..p+l-1] followed by cyc[(p+l)%L], and the arc is entered from
	// outside the cycle (the channel before cyc[p] in the path, if any,
	// is not the cycle predecessor — otherwise the "member" would be a
	// longer arc).
	type realizer struct {
		src, dst topology.NodeID
		approach []topology.ChannelID
	}
	realizers := make([][][]realizer, L)
	for p := range realizers {
		realizers[p] = make([][]realizer, L) // lengths 1..L-1 at index l-1
	}

	// Index: for every pair's path, find occurrences of cycle channels.
	pos := make(map[topology.ChannelID]int, L) // channel -> cycle position
	for i, c := range cyc {
		pos[c] = i
	}
	n := net.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			src, dst := topology.NodeID(s), topology.NodeID(d)
			path := alg.Path(src, dst)
			if path == nil {
				continue
			}
			// Scan maximal runs of cycle channels consistent with cyclic
			// order.
			for i := 0; i < len(path); i++ {
				p, ok := pos[path[i]]
				if !ok {
					continue
				}
				// Is this the start of a run (previous path channel is not
				// the cycle predecessor)?
				if i > 0 {
					if pp, ok2 := pos[path[i-1]]; ok2 && (pp+1)%L == p {
						continue // interior of a longer run
					}
				}
				// Extend the run.
				l := 1
				for i+l < len(path) {
					np, ok2 := pos[path[i+l]]
					if !ok2 || np != (p+l)%L {
						break
					}
					l++
				}
				// A member holding arc length a (1 <= a < l <= L) blocked
				// at cyc[(p+a)%L] requires the path to continue with that
				// channel, i.e. a < l. Every prefix length a of the run
				// with a < l is a realizable arc.
				for a := 1; a < l && a < L; a++ {
					approach := append([]topology.ChannelID(nil), path[:i]...)
					realizers[p][a-1] = append(realizers[p][a-1], realizer{src: src, dst: dst, approach: approach})
				}
				i += l - 1
			}
		}
	}

	// Tile the cycle: choose a first-arc start position only once (fix
	// rotations by requiring every tiling to include an arc starting at
	// position 0 boundary... instead: canonicalize by always cutting at
	// position 0: tilings are sequences of arcs whose boundaries include
	// 0? A tiling's boundaries are arbitrary; rotating the start does not
	// change the set of boundaries, so enumerate boundary sets that
	// include each possible first boundary b0 < L, then dedupe by the
	// boundary set. Simpler: enumerate tilings whose first boundary is
	// the smallest boundary in the set.
	var configs []Configuration
	truncated := false
	var build func(start, covered, first int, members []Member)
	build = func(start, covered, first int, members []Member) {
		if truncated {
			return
		}
		if covered == L {
			cfgMembers := append([]Member(nil), members...)
			configs = append(configs, Configuration{Members: cfgMembers})
			if maxConfigs > 0 && len(configs) >= maxConfigs {
				truncated = true
			}
			return
		}
		for a := 1; a <= L-covered; a++ {
			if a == L {
				break // a single member cannot block itself
			}
			for _, r := range realizers[start][a-1] {
				// Distinct (src,dst) pairs per member.
				dup := false
				for _, m := range members {
					if m.Src == r.src && m.Dst == r.dst {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				arc := make([]topology.ChannelID, a)
				for j := 0; j < a; j++ {
					arc[j] = cyc[(start+j)%L]
				}
				members = append(members, Member{Src: r.src, Dst: r.dst, Arc: arc, Approach: r.approach})
				build((start+a)%L, covered+a, first, members)
				members = members[:len(members)-1]
				if truncated {
					return
				}
			}
		}
	}
	// Fix rotation: only start tilings at the smallest position that is a
	// boundary. Enumerate all start positions but require no arc to cross
	// position `first` other than ending exactly there — achieved by
	// starting at `first` and wrapping; dedupe afterwards on boundary+pair
	// sets.
	seen := make(map[string]bool)
	for first := 0; first < L && !truncated; first++ {
		var members []Member
		before := len(configs)
		build(first, 0, first, members)
		// Dedupe rotations.
		kept := configs[:before]
		for _, cfgc := range configs[before:] {
			key := configKey(cfgc)
			if !seen[key] {
				seen[key] = true
				kept = append(kept, cfgc)
			}
		}
		configs = kept
	}
	return configs, truncated
}

// configKey canonicalizes a configuration for deduplication: the sorted
// set of (src, dst, first arc channel, arc length) member descriptors.
func configKey(c Configuration) string {
	keys := make([]string, len(c.Members))
	for i, m := range c.Members {
		keys[i] = fmt.Sprintf("%d,%d,%d,%d", m.Src, m.Dst, m.Arc[0], len(m.Arc))
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}
