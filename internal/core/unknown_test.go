package core

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// multiSharedNet builds a cycle whose two members share TWO approach
// channels (S->A and A->B) — outside the geometry the Section 5 theory
// covers, so the analyzer must answer Unknown rather than guess.
func multiSharedNet(t *testing.T) routing.Algorithm {
	t.Helper()
	net := topology.New("multishared")
	s := net.AddNode("S")
	a := net.AddNode("A")
	b := net.AddNode("B")
	e1 := net.AddNode("E1")
	n1 := net.AddNode("n1")
	e2 := net.AddNode("E2")
	n2 := net.AddNode("n2")
	sa := net.AddChannel(s, a, 0, "sa")
	ab := net.AddChannel(a, b, 0, "ab")
	be1 := net.AddChannel(b, e1, 0, "be1")
	be2 := net.AddChannel(b, e2, 0, "be2")
	r1 := net.AddChannel(e1, n1, 0, "r1")
	r2 := net.AddChannel(n1, e2, 0, "r2")
	r3 := net.AddChannel(e2, n2, 0, "r3")
	r4 := net.AddChannel(n2, e1, 0, "r4")
	// Return edges for strong connectivity.
	net.AddChannel(n1, s, 0, "ret1")
	net.AddChannel(n2, s, 0, "ret2")
	net.AddChannel(e1, s, 0, "ret3")
	net.AddChannel(e2, s, 0, "ret4")
	net.AddChannel(a, s, 0, "ret5")
	net.AddChannel(b, s, 0, "ret6")
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	tab := routing.NewTable(net, "multishared")
	// m1: S -> ... -> n2 holding arc {r1, r2}, blocked at r3.
	tab.MustSetPath(s, n2, []topology.ChannelID{sa, ab, be1, r1, r2, r3})
	// m2: S -> ... -> n1 holding arc {r3, r4}, blocked at r1.
	tab.MustSetPath(s, n1, []topology.ChannelID{sa, ab, be2, r3, r4, r1})
	return tab
}

func TestAnalyzeUnknownGeometry(t *testing.T) {
	rep := Analyze(multiSharedNet(t), Options{})
	if rep.Acyclic {
		t.Fatal("the construction should have a cyclic CDG")
	}
	if rep.Verdict != Unknown {
		t.Fatalf("verdict = %v (%s); two shared approach channels are outside the supported geometry", rep.Verdict, rep.Reason)
	}
	found := false
	for _, cyc := range rep.Cycles {
		for _, cfg := range cyc.Configs {
			if cfg.Verdict == ConfigUnknown {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no configuration reported unknown")
	}
}
