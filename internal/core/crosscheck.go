package core

import (
	"repro/internal/routing"
	"repro/internal/sim"
)

// ConfigScenario instantiates a candidate configuration as a concrete
// simulation scenario: one message per member, routed by the algorithm
// from the member's source to its destination, with length equal to the
// member's arc so the message can hold exactly its run of cycle channels.
// The scenario is what the exhaustive model checker (internal/mcheck)
// explores when Options.Search is set, and what tests use to cross-check
// the static Section 5 classification against state-space search.
//
// The cross-check is single-instance: it decides reachability for this
// message set (one copy per member), which matches the paper's Definition
// 6 configurations but does not rule out deadlocks that need interposed
// extra copies — those are covered by the Theorem 4 blockability screen in
// the static classifier.
func ConfigScenario(alg routing.Algorithm, cfg Configuration) sim.Scenario {
	sc := sim.Scenario{Name: "config-crosscheck", Net: alg.Network()}
	for _, m := range cfg.Members {
		sc.Msgs = append(sc.Msgs, sim.MessageSpec{
			Src:    m.Src,
			Dst:    m.Dst,
			Length: len(m.Arc),
			Path:   alg.Path(m.Src, m.Dst),
		})
	}
	return sc
}
