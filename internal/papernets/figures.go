package papernets

import "fmt"

// Figure1 builds the paper's Section 4 Cyclic Dependency network: four
// messages M1..M4 from Src share the channel cs = Src -> N* and form the
// unreachable cycle. Parameters follow the paper's Section 6 recap of
// Figure 1: d1 = d3 = 2, d2 = d4 = 3 channels from Src to the cycle, and
// arc lengths (channels each message must hold) c1 = c3 = 3, c2 = c4 = 4,
// with minimal message lengths l_i = c_i. M1 routes through D4 toward D1,
// M2 through D1 toward D2, M3 through D2 toward D3, and M4 through D3
// toward D4, closing the dependency cycle.
func Figure1() *Net {
	pn := GenK(1)
	pn.Name = "figure1"
	pn.Scenario.Name = "figure1"
	return pn
}

// GenK builds the Section 6 generalization: a network in which forming a
// deadlock requires adversarially delaying messages at least k cycles in
// total even though their output channels are free. The parameters widen
// the approach-distance gap between the even and odd messages to k while
// keeping every message's cycle arc k channels longer than its approach:
// d1 = d3 = 2, d2 = d4 = k + 2, c1 = c3 = k + 2, c2 = c4 = k + 3, with
// minimal lengths l_i = c_i. GenK(1) is exactly Figure 1.
//
// The timing argument mirrors the paper's: for M_{i+1} to block M_i, it
// must occupy its first ring channel no later than M_i's header requests
// it; with consecutive uses of the shared channel this forces a stall of
// d_{i+1} - d_i + 1 cycles on M_i whenever d_{i+1} > d_i. Whatever order
// the four messages use the shared channel, at least one ring-adjacent
// pair has the even message following the odd one, so at least k + 1
// stall cycles are required — and k can be made arbitrarily large.
func GenK(k int) *Net {
	if k < 1 {
		panic("papernets: GenK requires k >= 1")
	}
	return Build(fmt.Sprintf("gen%d", k), []Entrant{
		{Shared: true, D: 2, C: k + 2, Label: "M1"},
		{Shared: true, D: k + 2, C: k + 3, Label: "M2"},
		{Shared: true, D: 2, C: k + 2, Label: "M3"},
		{Shared: true, D: k + 2, C: k + 3, Label: "M4"},
	})
}

// Figure2 builds the Theorem 4 configuration: a channel outside the cycle
// shared by exactly two messages. The theorem proves every such cycle is a
// reachable deadlock — injecting the longer-approach message first and the
// other immediately after forms the Definition 6 configuration. The
// specific arc lengths mirror the halves of Figure 1.
func Figure2() *Net {
	return Build("figure2", []Entrant{
		{Shared: true, D: 3, C: 4, Label: "M1"},
		{Shared: true, D: 2, C: 3, Label: "M2"},
	})
}

// ThreeSharerParams parameterizes a pure three-sharer configuration for
// Theorem 5. The three messages are given in ring order; their D values
// determine the paper's M1/M2/M3 labeling (most/middle/fewest channels
// from cs to the cycle).
type ThreeSharerParams struct {
	// D[i] and C[i] are the approach distance (counting cs) and arc
	// length of the i-th message in ring order.
	D [3]int
	C [3]int
}

// ThreeSharer builds a pure three-sharer Theorem 5 network.
func ThreeSharer(name string, p ThreeSharerParams) *Net {
	ents := make([]Entrant, 3)
	for i := 0; i < 3; i++ {
		ents[i] = Entrant{Shared: true, D: p.D[i], C: p.C[i], Label: fmt.Sprintf("S%d", i+1)}
	}
	return Build(name, ents)
}

// Figure3 builds one of the paper's six Figure 3 configurations, selected
// by letter 'a' through 'f'. (a) and (b) are false resource cycles —
// Theorem 5's eight conditions hold and no deadlock is reachable; (c)
// through (f) violate specific conditions and deadlock:
//
//	(a) unreachable: every message uses more channels within the cycle
//	    than from the shared channel to the cycle, and the approach
//	    distances leave no room to stretch the shared-channel sequence.
//	(b) unreachable: the longest-approach message sits exactly at the
//	    blockability boundary — it can be delayed at its cycle entry, but
//	    never long enough to enable the deadlock.
//	(c) deadlock: condition 4 fails — the longest-approach message uses
//	    at least as many channels from cs to the cycle as within it, so an
//	    interposed copy of its ring predecessor blocks it outside the
//	    cycle (the paper's Theorem 4 reduction).
//	(d) deadlock: condition 6 fails — the middle message's approach
//	    exceeds its arc, making it blockable outside the cycle.
//	(e) deadlock: condition 7 fails — the longest approach is so long
//	    that the shared-channel sequence lets the shortest message arrive
//	    in time to block it (d1 >= d3 + c2).
//	(f) deadlock: a fourth message that does not use the shared channel
//	    joins the cycle, breaking the pure three-sharer preconditions.
//
// The concrete parameters were fixed by exhaustively model-checking the
// three-sharer family (see the papernets and unreachable test suites) and
// selecting instances whose condition-violation pattern matches each
// sub-figure's narrative in the paper.
func Figure3(letter byte) *Net {
	switch letter {
	case 'a':
		return ThreeSharer("figure3a", figure3aParams)
	case 'b':
		return ThreeSharer("figure3b", figure3bParams)
	case 'c':
		return ThreeSharer("figure3c", figure3cParams)
	case 'd':
		return ThreeSharer("figure3d", figure3dParams)
	case 'e':
		return ThreeSharer("figure3e", figure3eParams)
	case 'f':
		return Build("figure3f", figure3fEntrants)
	}
	panic(fmt.Sprintf("papernets: Figure3(%q): letter must be 'a'..'f'", letter))
}

// The pinned Figure 3 instances. Ring order is the order of array entries;
// see Figure3 for the narrative each realizes.
var (
	// (a): ring order M1, M3, M2 (D = 4, 2, 3); every C_i comfortably
	// exceeds the approach distances: all eight conditions hold.
	figure3aParams = ThreeSharerParams{D: [3]int{4, 2, 3}, C: [3]int{5, 4, 4}}
	// (b): the boundary case: c1 = d1 and c3 = d3 exactly — every
	// condition still holds (with equality) and the cycle remains
	// unreachable.
	figure3bParams = ThreeSharerParams{D: [3]int{4, 2, 3}, C: [3]int{4, 2, 4}}
	// (c): condition 4 fails: the longest-approach message (d1 = 5) holds
	// only c1 = 3 < 5 channels in the cycle, so it can be blocked outside.
	figure3cParams = ThreeSharerParams{D: [3]int{5, 2, 3}, C: [3]int{3, 4, 4}}
	// (d): condition 6 fails: the middle message's approach (d2 = 4)
	// exceeds its arc (c2 = 3).
	figure3dParams = ThreeSharerParams{D: [3]int{5, 3, 4}, C: [3]int{5, 4, 3}}
	// (e): condition 7 fails: d1 = 6 >= d3 + c2 = 2 + 4.
	figure3eParams = ThreeSharerParams{D: [3]int{6, 2, 3}, C: [3]int{6, 4, 4}}
	// (f): the (a) parameters plus a private fourth entrant that does not
	// use the shared channel.
	figure3fEntrants = []Entrant{
		{Shared: true, D: 4, C: 5, Label: "S1"},
		{Shared: true, D: 2, C: 4, Label: "S2"},
		{Shared: true, D: 3, C: 4, Label: "S3"},
		{Shared: false, D: 2, C: 3, Label: "S4"},
	}
)
