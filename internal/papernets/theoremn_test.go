package papernets

import (
	"fmt"
	"testing"

	"repro/internal/mcheck"
	"repro/internal/sim"
	"repro/internal/unreachable"
)

func gt4(sc sim.Scenario) bool { // true = some deadlock reachable
	if mcheck.Search(sc, mcheck.SearchOptions{MaxStates: 30_000_000}).Verdict == mcheck.VerdictDeadlock {
		return true
	}
	for pos := range sc.Msgs {
		out := sc
		out.Msgs = append(append([]sim.MessageSpec(nil), sc.Msgs...), sc.Msgs[pos])
		if mcheck.Search(out, mcheck.SearchOptions{MaxStates: 30_000_000}).Verdict == mcheck.VerdictDeadlock {
			return true
		}
	}
	return false
}

// TheoremN — the paper's proposed "four messages and beyond" extension —
// agrees with exhaustive model checking (with interposed copies) across
// four-entrant configurations: pure sharers, mixed private members, tied
// and deep approach distances, and the blockable-member mechanism.
func TestTheoremNMatchesGroundTruthOnFourEntrants(t *testing.T) {
	mis, total := 0, 0
	if testing.Short() {
		t.Skip("multi-copy four-entrant searches are expensive")
	}
	cases := [][]Entrant{
		// fig1 family
		{{Shared: true, D: 2, C: 3}, {Shared: true, D: 3, C: 4}, {Shared: true, D: 2, C: 3}, {Shared: true, D: 3, C: 4}},
		// blockable member (c < d)
		{{Shared: true, D: 4, C: 3}, {Shared: true, D: 3, C: 4}, {Shared: true, D: 2, C: 3}, {Shared: true, D: 3, C: 4}},
		// larger gaps
		{{Shared: true, D: 2, C: 4}, {Shared: true, D: 4, C: 5}, {Shared: true, D: 2, C: 4}, {Shared: true, D: 4, C: 5}},
		// overtake-prone: one deep approach
		{{Shared: true, D: 7, C: 7}, {Shared: true, D: 3, C: 4}, {Shared: true, D: 2, C: 3}, {Shared: true, D: 3, C: 4}},
		{{Shared: true, D: 9, C: 9}, {Shared: true, D: 3, C: 4}, {Shared: true, D: 2, C: 3}, {Shared: true, D: 3, C: 4}},
		// mixed private
		{{Shared: true, D: 2, C: 3}, {Shared: true, D: 3, C: 4}, {Shared: true, D: 2, C: 3}, {Shared: false, D: 2, C: 3}},
		{{Shared: true, D: 2, C: 3}, {Shared: true, D: 3, C: 4}, {Shared: false, D: 4, C: 3}, {Shared: true, D: 3, C: 4}},
		// ties
		{{Shared: true, D: 3, C: 4}, {Shared: true, D: 3, C: 4}, {Shared: true, D: 2, C: 3}, {Shared: true, D: 3, C: 4}},
		// all equal
		{{Shared: true, D: 2, C: 3}, {Shared: true, D: 2, C: 3}, {Shared: true, D: 2, C: 3}, {Shared: true, D: 2, C: 3}},
		// big slack everywhere
		{{Shared: true, D: 2, C: 6}, {Shared: true, D: 3, C: 6}, {Shared: true, D: 2, C: 6}, {Shared: true, D: 3, C: 6}},
	}
	for i, ents := range cases {
		pn := Build(fmt.Sprintf("four%d", i), ents)
		rep := unreachable.TheoremN(pn.Configuration())
		truth := gt4(pn.Scenario)
		total++
		if rep.Unreachable == truth {
			mis++
			t.Errorf("case %d: TheoremN unreachable=%v but checker reachable=%v (%s)", i, rep.Unreachable, truth, rep)
		}
	}
	if mis != 0 {
		t.Fatalf("%d/%d mismatches", mis, total)
	}
}
