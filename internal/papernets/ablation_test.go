package papernets

import (
	"testing"

	"repro/internal/mcheck"
)

// The paper argues one-flit buffers and minimal message lengths are the
// hardest case for deadlock freedom: "if a deadlock configuration cannot
// be created when the buffer size is one flit and the messages have their
// minimum length, then the routing algorithm is deadlock-free." These
// ablations confirm the claim computationally: relaxing either knob keeps
// Figure 1 deadlock-free.

func TestTheorem1BufferDepthAblation(t *testing.T) {
	for _, depth := range []int{2, 3} {
		sc := Figure1().Scenario.WithBufferDepth(depth)
		res := mcheck.Search(sc, mcheck.SearchOptions{MaxStates: 20_000_000})
		if res.Verdict != mcheck.VerdictNoDeadlock {
			t.Fatalf("buffer depth %d: %v; deeper buffers cannot introduce deadlock", depth, res.Verdict)
		}
	}
}

func TestTheorem1MessageLengthAblation(t *testing.T) {
	pn := Figure1()
	longer := make([]int, len(pn.Scenario.Msgs))
	for i, m := range pn.Scenario.Msgs {
		longer[i] = m.Length + 2
	}
	sc := pn.Scenario.WithLengths(longer)
	res := mcheck.Search(sc, mcheck.SearchOptions{MaxStates: 20_000_000})
	if res.Verdict != mcheck.VerdictNoDeadlock {
		t.Fatalf("longer messages: %v; want no deadlock", res.Verdict)
	}
}

// Conversely, shorter-than-minimal messages cannot even hold their arcs,
// so they cannot deadlock either (the paper: "if M3 holds less than three
// channels, M3 cannot hold the channel that leads to D2").
func TestTheorem1ShorterMessagesStillFree(t *testing.T) {
	pn := Figure1()
	shorter := make([]int, len(pn.Scenario.Msgs))
	for i, m := range pn.Scenario.Msgs {
		shorter[i] = m.Length - 1
	}
	sc := pn.Scenario.WithLengths(shorter)
	res := mcheck.Search(sc, mcheck.SearchOptions{MaxStates: 20_000_000})
	if res.Verdict != mcheck.VerdictNoDeadlock {
		t.Fatalf("shorter messages: %v; want no deadlock", res.Verdict)
	}
}

// The schedule sweep (concrete injection windows, every priority order)
// agrees with the full state-space search on the paper networks: no
// deadlock for Figure 1, deadlock for Figure 2.
func TestSweepAgreesWithSearch(t *testing.T) {
	f1 := Figure1()
	res := mcheck.Sweep(f1.Scenario, mcheck.SweepOptions{
		Window:   8,
		Arbiters: mcheck.AllPriorityArbiters(len(f1.Scenario.Msgs)),
	})
	if res.Deadlocks != 0 {
		t.Fatalf("figure 1 sweep found %d deadlocks: %v", res.Deadlocks, res.First)
	}
	if res.Runs == 0 {
		t.Fatal("sweep ran nothing")
	}
	f2 := Figure2()
	res = mcheck.Sweep(f2.Scenario, mcheck.SweepOptions{
		Window:   8,
		Arbiters: mcheck.AllPriorityArbiters(len(f2.Scenario.Msgs)),
	})
	if res.Deadlocks == 0 {
		t.Fatal("figure 2 sweep found no deadlock")
	}
}
