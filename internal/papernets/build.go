// Package papernets constructs the concrete networks, routing algorithms
// and message sets of Schwiebert (SPAA '97): the Figure 1 Cyclic Dependency
// network, its Section 6 generalization Gen(k), the Figure 2 two-sharer
// deadlock network, and a parameterized family of three-sharer networks
// covering the Figure 3 configurations of Theorem 5.
//
// All constructions are instances of one generalized builder. The cycle is
// a directed ring of channels; each participating message ("entrant")
// enters the ring at an entry node E_i, holds an arc of C_i ring channels,
// and is destined for the node immediately after the next entrant's entry
// — so the first ring channel of entrant i+1 is exactly the channel that
// blocks entrant i, reproducing the paper's Definition 6 cycle shape:
//
//	M_i holds   E_i -> ... -> E_{i+1}   (C_i channels)
//	M_i waits   E_{i+1} -> D_i          (= M_{i+1}'s first ring channel)
//
// Shared entrants all originate at node Src and reach the ring through the
// single shared channel cs = Src -> N* followed by a private connector
// chain of D_i - 1 channels (D_i counts cs itself, matching the paper's
// "M1 and M3 use two channels from Src to the cycle, M2 and M4 use
// three"). Private entrants (Figure 3(f)'s fourth message) originate at
// their own source with a private chain of D_i channels and never use cs.
//
// Around this skeleton the builder completes the network into the paper's
// star: every node gets a bidirectional channel pair to the hub N*, and
// the routing algorithm sends every non-exceptional (src, dst) pair via
// src -> N* -> dst, exactly as the paper prescribes ("with four
// exceptions, messages ... are routed by sending the message to node N*,
// which then forwards the message directly to the destination").
package papernets

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/unreachable"
)

// Entrant parameterizes one message of the cyclic configuration.
type Entrant struct {
	// Shared selects the source: true = the message originates at Src and
	// uses the shared channel cs; false = it has a private source node and
	// approach chain (Figure 3(f)'s S4).
	Shared bool
	// D is the number of channels from the source to the message's ring
	// entry node. For shared entrants D counts the shared channel cs
	// itself (D >= 1; D == 1 means the entry node is N* itself). For
	// private entrants D is the length of the private chain (D >= 1).
	D int
	// C is the number of ring channels the message must hold to block its
	// successor: the arc from its entry node to the next entrant's entry
	// node. C >= 2.
	C int
	// Label names the message in diagnostics (defaults to M1, M2, ...).
	Label string
}

// EntrantInfo describes one realized entrant.
type EntrantInfo struct {
	Entrant
	Index  int
	Source topology.NodeID
	Dest   topology.NodeID
	Entry  topology.NodeID // ring entry node E_i
	Path   []topology.ChannelID
	// Approach is the prefix of Path before the first ring channel.
	Approach []topology.ChannelID
	// Arc is the C_i ring channels the message holds when blocked.
	Arc []topology.ChannelID
	// BlockedAt is the ring channel the message waits for in the deadlock
	// configuration (the next entrant's first ring channel).
	BlockedAt topology.ChannelID
}

// Net is a fully built paper network: topology, complete oblivious routing
// algorithm, the adversarial message scenario, and structural metadata for
// the Section 5 condition checkers.
type Net struct {
	Name     string
	Network  *topology.Network
	Alg      *routing.Table
	Scenario sim.Scenario

	Src    topology.NodeID
	Hub    topology.NodeID // N*
	Shared topology.ChannelID
	// Ring lists the cycle channels in cyclic order starting at entrant
	// 0's entry channel.
	Ring     []topology.ChannelID
	Entrants []EntrantInfo
}

// Configuration extracts the abstract cyclic configuration (ring order,
// approach distances, arc lengths, sharing flags) for the Section 5
// analyzer in internal/unreachable.
func (pn *Net) Configuration() unreachable.Config {
	cfg := unreachable.Config{}
	for _, e := range pn.Entrants {
		cfg.Entrants = append(cfg.Entrants, unreachable.Entrant{D: e.D, C: e.C, Shared: e.Entrant.Shared})
	}
	return cfg
}

// Build constructs the generalized cyclic-configuration network. It panics
// on invalid parameters; constructions are static fixtures.
func Build(name string, entrants []Entrant) *Net {
	if len(entrants) < 2 {
		panic("papernets: need at least two entrants to form a cycle")
	}
	anyShared := false
	for i, e := range entrants {
		if e.D < 1 {
			panic(fmt.Sprintf("papernets: entrant %d: D = %d < 1", i, e.D))
		}
		if e.Shared && e.D < 2 {
			panic(fmt.Sprintf("papernets: entrant %d: shared entrants need D >= 2 (cs plus at least one connector)", i))
		}
		if e.C < 2 {
			panic(fmt.Sprintf("papernets: entrant %d: C = %d < 2", i, e.C))
		}
		if e.Shared {
			anyShared = true
		}
	}

	net := topology.New(name)
	src := net.AddNode("Src")
	hub := net.AddNode("N*")

	n := len(entrants)
	infos := make([]EntrantInfo, n)

	// Ring nodes: entry node E_i plus C_i - 1 interior nodes per arc. The
	// first interior node of arc i is the destination of entrant i-1.
	entry := make([]topology.NodeID, n)
	interior := make([][]topology.NodeID, n)
	for i, e := range entrants {
		label := e.Label
		if label == "" {
			label = fmt.Sprintf("M%d", i+1)
		}
		entrants[i].Label = label
		entry[i] = net.AddNode(fmt.Sprintf("E%d", i+1))
		interior[i] = make([]topology.NodeID, e.C-1)
		for j := range interior[i] {
			if j == 0 {
				// Destination of the previous entrant.
				prev := (i - 1 + n) % n
				interior[i][j] = net.AddNode(fmt.Sprintf("D%d", prev+1))
			} else {
				interior[i][j] = net.AddNode(fmt.Sprintf("R%d.%d", i+1, j))
			}
		}
	}

	// Ring channels, arc by arc.
	arcs := make([][]topology.ChannelID, n)
	var ring []topology.ChannelID
	for i, e := range entrants {
		nodes := append([]topology.NodeID{entry[i]}, interior[i]...)
		nodes = append(nodes, entry[(i+1)%n])
		arcs[i] = make([]topology.ChannelID, e.C)
		for j := 0; j < e.C; j++ {
			arcs[i][j] = net.AddChannel(nodes[j], nodes[j+1], 0,
				fmt.Sprintf("ring%d.%d(%s->%s)", i+1, j, net.Node(nodes[j]), net.Node(nodes[j+1])))
		}
		ring = append(ring, arcs[i]...)
	}

	// Shared channel and connector chains.
	var shared topology.ChannelID = topology.None
	if anyShared {
		shared = net.AddChannel(src, hub, 0, "cs(Src->N*)")
	}
	for i, e := range entrants {
		info := &infos[i]
		info.Entrant = entrants[i]
		info.Index = i
		info.Entry = entry[i]

		var approach []topology.ChannelID
		if e.Shared {
			info.Source = src
			approach = append(approach, shared)
			at := hub
			for j := 1; j < e.D; j++ {
				var next topology.NodeID
				if j == e.D-1 {
					next = entry[i]
				} else {
					next = net.AddNode(fmt.Sprintf("P%d.%d", i+1, j))
				}
				approach = append(approach, net.AddChannel(at, next, 0,
					fmt.Sprintf("conn%d.%d", i+1, j)))
				at = next
			}
		} else {
			s := net.AddNode(fmt.Sprintf("S%d", i+1))
			info.Source = s
			at := s
			for j := 0; j < e.D; j++ {
				var next topology.NodeID
				if j == e.D-1 {
					next = entry[i]
				} else {
					next = net.AddNode(fmt.Sprintf("Q%d.%d", i+1, j))
				}
				approach = append(approach, net.AddChannel(at, next, 0,
					fmt.Sprintf("priv%d.%d", i+1, j)))
				at = next
			}
		}
		info.Approach = approach
		info.Arc = arcs[i]
		nextArc := arcs[(i+1)%n]
		info.BlockedAt = nextArc[0]
		info.Dest = net.Channel(nextArc[0]).Dst

		info.Path = append(append([]topology.ChannelID(nil), approach...), arcs[i]...)
		info.Path = append(info.Path, nextArc[0])
	}

	// Star completion: bidirectional channels between the hub and every
	// other node (skipping directions that already exist), so the default
	// "route via N*" rule connects all pairs.
	for _, nd := range net.Nodes() {
		if nd.ID == hub {
			continue
		}
		if len(net.ChannelsBetween(nd.ID, hub)) == 0 {
			net.AddChannel(nd.ID, hub, 0, fmt.Sprintf("star(%s->N*)", nd))
		}
		if len(net.ChannelsBetween(hub, nd.ID)) == 0 {
			net.AddChannel(hub, nd.ID, 0, fmt.Sprintf("star(N*->%s)", nd))
		}
	}
	// Reverse ring channels: the paper's Figure 1 channels are
	// bidirectional; the reverse directions exist but are never used by
	// the routing algorithm.
	for _, cid := range ring {
		c := net.Channel(cid)
		if len(net.ChannelsBetween(c.Dst, c.Src)) == 0 {
			net.AddChannel(c.Dst, c.Src, 0, fmt.Sprintf("rev(%s)", c.Label))
		}
	}
	if err := net.Validate(); err != nil {
		panic(fmt.Sprintf("papernets: built network invalid: %v", err))
	}

	// Routing algorithm: hub routing for every pair, then the exceptional
	// cyclic paths overriding their (source, dest) pairs.
	hubAlg := routing.Hub(net, hub)
	tab := routing.NewTable(net, "cyclicdep."+name)
	for s := 0; s < net.NumNodes(); s++ {
		for d := 0; d < net.NumNodes(); d++ {
			if s == d {
				continue
			}
			p := hubAlg.Path(topology.NodeID(s), topology.NodeID(d))
			if p == nil {
				panic(fmt.Sprintf("papernets: hub routing incomplete for (%d,%d)", s, d))
			}
			tab.MustSetPath(topology.NodeID(s), topology.NodeID(d), p)
		}
	}
	pn := &Net{
		Name:     name,
		Network:  net,
		Alg:      tab,
		Src:      src,
		Hub:      hub,
		Shared:   shared,
		Ring:     ring,
		Entrants: infos,
	}
	for _, info := range infos {
		tab.MustSetPath(info.Source, info.Dest, info.Path)
	}

	// The adversarial scenario: each entrant message at its paper-minimal
	// length (just long enough to hold its arc with one-flit buffers:
	// C_i flits), under the paper's aggressive same-cycle channel handoff
	// (Theorem 4's "immediately after M1 has traversed cs, M2 starts
	// traversing cs").
	sc := sim.Scenario{Name: name, Net: net, Cfg: sim.Config{SameCycleHandoff: true}}
	for _, info := range infos {
		sc.Msgs = append(sc.Msgs, sim.MessageSpec{
			Src:    info.Source,
			Dst:    info.Dest,
			Length: info.C,
			Path:   append([]topology.ChannelID(nil), info.Path...),
			Label:  info.Label,
		})
	}
	pn.Scenario = sc
	return pn
}
