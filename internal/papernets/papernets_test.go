package papernets

import (
	"testing"

	"repro/internal/cdg"
	"repro/internal/mcheck"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/unreachable"
	"repro/internal/waitfor"
)

func TestFigure1Structure(t *testing.T) {
	pn := Figure1()
	if err := pn.Network.Validate(); err != nil {
		t.Fatalf("network invalid: %v", err)
	}
	if len(pn.Entrants) != 4 {
		t.Fatalf("entrants = %d", len(pn.Entrants))
	}
	// Paper parameters: d1=d3=2, d2=d4=3; c1=c3=3, c2=c4=4.
	wantD := []int{2, 3, 2, 3}
	wantC := []int{3, 4, 3, 4}
	for i, e := range pn.Entrants {
		if e.D != wantD[i] || e.C != wantC[i] {
			t.Fatalf("entrant %d: d=%d c=%d; want d=%d c=%d", i, e.D, e.C, wantD[i], wantC[i])
		}
		if e.Source != pn.Src {
			t.Fatalf("entrant %d source = %d; want Src", i, e.Source)
		}
		if e.Path[0] != pn.Shared {
			t.Fatalf("entrant %d does not start with the shared channel", i)
		}
		if !pn.Network.IsPath(e.Source, e.Dest, e.Path) {
			t.Fatalf("entrant %d path is not contiguous", i)
		}
		if len(e.Approach) != e.D || len(e.Arc) != e.C {
			t.Fatalf("entrant %d: |approach|=%d |arc|=%d", i, len(e.Approach), len(e.Arc))
		}
	}
	// The ring is closed: each entrant's blocking channel is the next
	// entrant's first arc channel.
	for i, e := range pn.Entrants {
		next := pn.Entrants[(i+1)%4]
		if e.BlockedAt != next.Arc[0] {
			t.Fatalf("entrant %d blocked at %d; want %d", i, e.BlockedAt, next.Arc[0])
		}
	}
	// Ring length = sum of arcs = 14.
	if len(pn.Ring) != 14 {
		t.Fatalf("ring length = %d; want 14", len(pn.Ring))
	}
}

func TestFigure1RoutingProperties(t *testing.T) {
	pn := Figure1()
	props := routing.CheckAll(pn.Alg)
	if !props.Complete {
		t.Fatalf("routing incomplete: %v", props.Violations)
	}
	if !props.RoutingFuncForm {
		t.Fatal("the Cyclic Dependency algorithm must be realizable as R: CxN -> C")
	}
	// The paper's algorithm is deliberately nonminimal and not
	// suffix-closed (Corollary 2: suffix-closed algorithms cannot have
	// unreachable configurations).
	if props.Minimal {
		t.Fatal("the Cyclic Dependency algorithm must not be minimal")
	}
	if props.SuffixClosed {
		t.Fatal("the Cyclic Dependency algorithm must not be suffix-closed")
	}
	if props.Coherent {
		t.Fatal("the Cyclic Dependency algorithm must not be coherent")
	}
}

func TestFigure1CDGHasExactlyOneCycle(t *testing.T) {
	pn := Figure1()
	g := cdg.New(pn.Alg)
	if ok, _ := g.Acyclic(); ok {
		t.Fatal("the CDG must contain a cycle")
	}
	cycles, truncated := g.Cycles(0)
	if truncated || len(cycles) != 1 {
		t.Fatalf("cycles = %d (truncated %v); want exactly 1", len(cycles), truncated)
	}
	if len(cycles[0]) != len(pn.Ring) {
		t.Fatalf("cycle length = %d; want %d", len(cycles[0]), len(pn.Ring))
	}
	for _, c := range pn.Ring {
		if !cycles[0].Contains(c) {
			t.Fatalf("ring channel %d missing from the CDG cycle", c)
		}
	}
}

// Theorem 1: the Cyclic Dependency routing algorithm is deadlock-free. The
// state-space search is exhaustive over all injection timings and
// arbitration outcomes.
func TestTheorem1Figure1DeadlockFree(t *testing.T) {
	res := mcheck.Search(Figure1().Scenario, mcheck.SearchOptions{})
	if res.Verdict != mcheck.VerdictNoDeadlock {
		t.Fatalf("verdict = %v; Theorem 1 says no deadlock", res.Verdict)
	}
	if res.States < 1000 {
		t.Fatalf("suspiciously small exploration: %d states", res.States)
	}
}

// Section 6's observation about Figure 1: the cycle becomes a reachable
// deadlock as soon as a router may delay one in-transit message a single
// cycle while its output channel is free.
func TestFigure1DeadlockWithOneStall(t *testing.T) {
	pn := Figure1()
	res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{StallBudget: 1, FreezeInTransitOnly: true})
	if res.Verdict != mcheck.VerdictDeadlock {
		t.Fatalf("verdict = %v; want deadlock with 1 stall cycle", res.Verdict)
	}
	s := mcheck.Replay(pn.Scenario, res.Trace)
	if err := waitfor.Verify(s, res.Deadlock); err != nil {
		t.Fatalf("witness does not replay: %v", err)
	}
}

// Theorem 1 is robust to richer message populations: extra copies of the
// short messages do not enable a deadlock.
func TestTheorem1WithExtraCopies(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-copy search is expensive")
	}
	pn := Figure1()
	sc := pn.Scenario
	sc.Msgs = append(append([]sim.MessageSpec(nil), sc.Msgs...), sc.Msgs[0], sc.Msgs[2])
	res := mcheck.Search(sc, mcheck.SearchOptions{MaxStates: 30_000_000})
	if res.Verdict != mcheck.VerdictNoDeadlock {
		t.Fatalf("verdict = %v; Theorem 1 with extra copies", res.Verdict)
	}
}

// Section 6: Gen(k) tolerates k-1 cycles of router delay and deadlocks at
// exactly k.
func TestGenKMinimalStall(t *testing.T) {
	maxK := 3
	if testing.Short() {
		maxK = 2
	}
	for k := 1; k <= maxK; k++ {
		pn := GenK(k)
		below := mcheck.Search(pn.Scenario, mcheck.SearchOptions{StallBudget: k - 1, FreezeInTransitOnly: true})
		if below.Verdict != mcheck.VerdictNoDeadlock {
			t.Fatalf("gen%d with budget %d: %v; want no deadlock", k, k-1, below.Verdict)
		}
		at := mcheck.Search(pn.Scenario, mcheck.SearchOptions{StallBudget: k, FreezeInTransitOnly: true})
		if at.Verdict != mcheck.VerdictDeadlock {
			t.Fatalf("gen%d with budget %d: %v; want deadlock", k, k, at.Verdict)
		}
		// The witness delays a single message exactly k cycles.
		frozen := map[int]int{}
		for _, d := range at.Trace {
			for _, id := range d.Freeze {
				frozen[id]++
			}
		}
		total := 0
		for _, n := range frozen {
			total += n
		}
		if total != k || len(frozen) != 1 {
			t.Fatalf("gen%d witness freeze profile = %v; want one message frozen %d cycles", k, frozen, k)
		}
	}
}

func TestGenKRejectsBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GenK(0)
}

// Theorem 4: a channel shared by exactly two messages outside the cycle
// always yields a reachable deadlock — including the equal-distance case,
// which exercises the same-cycle channel handoff.
func TestTheorem4Figure2(t *testing.T) {
	res := mcheck.Search(Figure2().Scenario, mcheck.SearchOptions{})
	if res.Verdict != mcheck.VerdictDeadlock {
		t.Fatalf("figure 2 verdict = %v; Theorem 4 says deadlock", res.Verdict)
	}
	eq := Build("fig2-equal", []Entrant{
		{Shared: true, D: 3, C: 4, Label: "M1"},
		{Shared: true, D: 3, C: 4, Label: "M2"},
	})
	res = mcheck.Search(eq.Scenario, mcheck.SearchOptions{})
	if res.Verdict != mcheck.VerdictDeadlock {
		t.Fatalf("equal-distance two-sharer verdict = %v; want deadlock", res.Verdict)
	}
}

// Theorem 4 across a parameter grid: every two-sharer configuration is
// deadlock-reachable, and the analytic classifier agrees with the search.
func TestTheorem4Family(t *testing.T) {
	for d1 := 2; d1 <= 4; d1++ {
		for d2 := 2; d2 <= 4; d2++ {
			for _, c1 := range []int{2, 4} {
				for _, c2 := range []int{3} {
					pn := Build("two", []Entrant{
						{Shared: true, D: d1, C: c1},
						{Shared: true, D: d2, C: c2},
					})
					v, w := unreachable.Classify(pn.Configuration())
					if v != unreachable.DeadlockReachable || w == nil {
						t.Fatalf("d=(%d,%d) c=(%d,%d): classify = %v", d1, d2, c1, c2, v)
					}
					res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{})
					if res.Verdict != mcheck.VerdictDeadlock {
						t.Fatalf("d=(%d,%d) c=(%d,%d): search = %v", d1, d2, c1, c2, res.Verdict)
					}
				}
			}
		}
	}
}

// groundTruth decides reachability allowing the adversary one extra copy
// of each single message (assumption 1 lets sources repeat messages; the
// paper's conditions 4-6 rely on such interposed copies).
func groundTruth(t *testing.T, sc sim.Scenario) mcheck.Verdict {
	t.Helper()
	res := mcheck.Search(sc, mcheck.SearchOptions{MaxStates: 20_000_000})
	if res.Verdict == mcheck.VerdictDeadlock {
		return mcheck.VerdictDeadlock
	}
	if res.Verdict == mcheck.VerdictExhausted {
		t.Fatal("search exhausted")
	}
	for pos := range sc.Msgs {
		out := sc
		out.Msgs = append(append([]sim.MessageSpec(nil), sc.Msgs...), sc.Msgs[pos])
		r := mcheck.Search(out, mcheck.SearchOptions{MaxStates: 20_000_000})
		if r.Verdict == mcheck.VerdictDeadlock {
			return mcheck.VerdictDeadlock
		}
		if r.Verdict == mcheck.VerdictExhausted {
			t.Fatal("search exhausted")
		}
	}
	return mcheck.VerdictNoDeadlock
}

// Theorem 5 / Figure 3: (a) and (b) are false resource cycles; (c)-(f)
// deadlock. The Theorem 5 condition evaluator agrees on the pure
// three-sharer instances.
func TestFigure3Classifications(t *testing.T) {
	want := map[byte]mcheck.Verdict{
		'a': mcheck.VerdictNoDeadlock,
		'b': mcheck.VerdictNoDeadlock,
		'c': mcheck.VerdictDeadlock,
		'd': mcheck.VerdictDeadlock,
		'e': mcheck.VerdictDeadlock,
		'f': mcheck.VerdictDeadlock,
	}
	for letter := byte('a'); letter <= 'f'; letter++ {
		pn := Figure3(letter)
		got := groundTruth(t, pn.Scenario)
		if got != want[letter] {
			t.Fatalf("figure 3(%c): ground truth = %v; want %v", letter, got, want[letter])
		}
		rep := unreachable.Theorem5(pn.Configuration())
		if letter == 'f' {
			if rep.Applicable {
				t.Fatal("figure 3(f) has a non-sharing member; Theorem 5 should not apply")
			}
			continue
		}
		if !rep.Applicable {
			t.Fatalf("figure 3(%c): Theorem 5 should apply", letter)
		}
		if rep.Unreachable != (want[letter] == mcheck.VerdictNoDeadlock) {
			t.Fatalf("figure 3(%c): Theorem 5 says unreachable=%v; ground truth %v", letter, rep.Unreachable, want[letter])
		}
	}
}

func TestFigure3RejectsBadLetter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Figure3('z')
}

// Theorem 5's iff, mechanically: across a parameter family the condition
// evaluator exactly matches exhaustive model checking with interposed
// copies.
func TestTheorem5MatchesGroundTruthOnFamily(t *testing.T) {
	ds := [][3]int{{4, 2, 3}, {5, 2, 3}, {6, 2, 3}, {5, 3, 4}, {4, 3, 2}, {3, 3, 2}}
	cs := [][3]int{{2, 2, 2}, {4, 4, 4}, {5, 2, 4}, {3, 4, 2}}
	if testing.Short() {
		ds = ds[:3]
		cs = cs[:2]
	}
	for _, D := range ds {
		for _, C := range cs {
			pn := ThreeSharer("fam", ThreeSharerParams{D: D, C: C})
			rep := unreachable.Theorem5(pn.Configuration())
			if !rep.Applicable {
				t.Fatalf("D%v C%v: not applicable", D, C)
			}
			got := groundTruth(t, pn.Scenario)
			wantUnreachable := got == mcheck.VerdictNoDeadlock
			if rep.Unreachable != wantUnreachable {
				t.Fatalf("D%v C%v: Theorem 5 unreachable=%v, ground truth %v (conditions %+v)",
					D, C, rep.Unreachable, got, rep.Conditions)
			}
		}
	}
}

// The single-instance analytic classifier matches the single-instance
// search across mixed shared/private configurations.
func TestClassifyMatchesSearchSingleInstance(t *testing.T) {
	cases := [][]Entrant{
		{{Shared: true, D: 3, C: 4}, {Shared: true, D: 2, C: 3}, {Shared: false, D: 2, C: 3}},
		{{Shared: true, D: 4, C: 3}, {Shared: false, D: 1, C: 2}, {Shared: true, D: 2, C: 5}},
		{{Shared: false, D: 2, C: 3}, {Shared: false, D: 1, C: 2}},
		{{Shared: true, D: 2, C: 3}, {Shared: true, D: 3, C: 4}, {Shared: true, D: 2, C: 3}, {Shared: true, D: 3, C: 4}},
	}
	for i, ents := range cases {
		pn := Build("mix", ents)
		v, _ := unreachable.Classify(pn.Configuration())
		res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{MaxStates: 10_000_000})
		wantReachable := res.Verdict == mcheck.VerdictDeadlock
		if (v == unreachable.DeadlockReachable) != wantReachable {
			t.Fatalf("case %d: classify = %v, search = %v", i, v, res.Verdict)
		}
	}
}

func TestScenarioUsesMinimalLengths(t *testing.T) {
	pn := Figure1()
	for i, m := range pn.Scenario.Msgs {
		if m.Length != pn.Entrants[i].C {
			t.Fatalf("message %d length = %d; want %d", i, m.Length, pn.Entrants[i].C)
		}
	}
	if !pn.Scenario.Cfg.SameCycleHandoff {
		t.Fatal("paper scenarios use the aggressive handoff model")
	}
}

func TestBuildValidation(t *testing.T) {
	cases := [][]Entrant{
		{{Shared: true, D: 2, C: 3}},                             // too few
		{{Shared: true, D: 0, C: 3}, {Shared: true, D: 2, C: 3}}, // D < 1
		{{Shared: true, D: 1, C: 3}, {Shared: true, D: 2, C: 3}}, // shared D < 2
		{{Shared: true, D: 2, C: 1}, {Shared: true, D: 2, C: 3}}, // C < 2
	}
	for i, ents := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			Build("bad", ents)
		}()
	}
}

func TestBuildPrivateOnly(t *testing.T) {
	// All-private configurations (Theorem 2 shape: no sharing at all)
	// build fine and are deadlock-reachable.
	pn := Build("priv", []Entrant{
		{Shared: false, D: 2, C: 3},
		{Shared: false, D: 1, C: 2},
	})
	if pn.Shared != -1 {
		t.Fatalf("shared channel = %d; want none (-1)", pn.Shared)
	}
	res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{})
	if res.Verdict != mcheck.VerdictDeadlock {
		t.Fatalf("verdict = %v; Theorem 2 says reachable", res.Verdict)
	}
}

func TestFigure1IsGen1(t *testing.T) {
	f, g := Figure1(), GenK(1)
	if f.Network.NumNodes() != g.Network.NumNodes() || f.Network.NumChannels() != g.Network.NumChannels() {
		t.Fatal("Figure1 and GenK(1) should be the same construction")
	}
}
