package papernets

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Liveness counterexample gallery. Unlike the Figure/GenK constructions
// these networks are not from the paper: they exercise the liveness
// taxonomy of Stramaglia, Keiren & Zantema — local deadlock, livelock,
// starvation — that the paper's global Definition 6 verdict cannot
// distinguish. They are shared by the mcheck liveness tests and the
// cmd/repro E9 experiment.

// LocalRings builds the canonical local-deadlock scenario: two disjoint
// unidirectional 4-rings in one network. Ring A (channels 0..3) carries
// the classic 4-message ring deadlock — each message enters at node i and
// needs channels i and i+1 mod 4 — while ring B (channels 4..7) carries a
// single long message whose route never touches ring A. Once ring A's
// cycle closes, channels 0..3 are dead forever, yet ring B's traffic still
// flows: a local deadlock whose minimal blocked subnetwork is exactly
// {c0, c1, c2, c3}.
func LocalRings() sim.Scenario {
	net := topology.New("localrings")
	net.AddNodes(8)
	var chans [8]topology.ChannelID
	for r := 0; r < 2; r++ {
		base := topology.NodeID(4 * r)
		for i := 0; i < 4; i++ {
			chans[4*r+i] = net.AddChannel(base+topology.NodeID(i), base+topology.NodeID((i+1)%4), 0, "")
		}
	}
	sc := sim.Scenario{Name: "localrings", Net: net}
	for i := 0; i < 4; i++ {
		sc.Msgs = append(sc.Msgs, sim.MessageSpec{
			Src: topology.NodeID(i), Dst: topology.NodeID((i + 2) % 4),
			Length: 2,
			Path:   []topology.ChannelID{chans[i], chans[(i+1)%4]},
			Label:  "A",
		})
	}
	sc.Msgs = append(sc.Msgs, sim.MessageSpec{
		Src: 4, Dst: 7,
		Length: 3,
		Path:   []topology.ChannelID{chans[4], chans[5], chans[6]},
		Label:  "B",
	})
	return sc
}

// StaleSelection builds the canonical livelock scenario. Four nodes; two
// parallel channels lead from n1 to the adaptive message's destination n2:
//
//	c0: n0 -> n1   (m0's entry)
//	c1: n1 -> n2   (route option A)
//	c2: n1 -> n2   (route option B)
//	c3: n2 -> n0   (m1's return arc)
//	c4: n1 -> n3   (m1's exit)
//
// m0 is adaptive: from n1 its selection function offers both c1 and c2.
// m1 is oblivious with path [c2, c3, c0, c4]. Under plain search the
// scenario is deadlock-free — c1 is wanted by nobody else, so m0 always
// has a free candidate. But a selection function that persistently offers
// the busy c2 while m1 owns it — the liveness engine's stale-selection
// adversary — freezes the whole network: m0 stalls on its stale choice at
// no budget cost, and m1 stays blocked on c0, which m0 holds. The
// resulting lasso starves both messages even though neither is deadlocked
// in the Definition 6 sense (m0's candidate set is never fully occupied).
func StaleSelection() sim.Scenario {
	net := topology.New("staleselection")
	n0 := net.AddNode("n0")
	n1 := net.AddNode("n1")
	n2 := net.AddNode("n2")
	n3 := net.AddNode("n3")
	c0 := net.AddChannel(n0, n1, 0, "c0")
	c1 := net.AddChannel(n1, n2, 0, "c1")
	c2 := net.AddChannel(n1, n2, 0, "c2")
	c3 := net.AddChannel(n2, n0, 0, "c3")
	c4 := net.AddChannel(n1, n3, 0, "c4")
	route := func(at topology.NodeID, in topology.ChannelID, dst topology.NodeID) []topology.ChannelID {
		switch at {
		case n0:
			return []topology.ChannelID{c0}
		case n1:
			return []topology.ChannelID{c1, c2}
		}
		return nil
	}
	return sim.Scenario{
		Name: "staleselection",
		Net:  net,
		Msgs: []sim.MessageSpec{
			{Src: n0, Dst: n2, Length: 2, Route: route, Label: "m0-adaptive"},
			{Src: n1, Dst: n3, Length: 3, Path: []topology.ChannelID{c2, c3, c0, c4}, Label: "m1-oblivious"},
		},
	}
}
