package unreachable

import (
	"strings"
	"testing"
)

func TestTheoremNFigure1Unreachable(t *testing.T) {
	cfg := Config{Entrants: []Entrant{
		{D: 2, C: 3, Shared: true},
		{D: 3, C: 4, Shared: true},
		{D: 2, C: 3, Shared: true},
		{D: 3, C: 4, Shared: true},
	}}
	rep := TheoremN(cfg)
	if !rep.Unreachable {
		t.Fatalf("figure 1 configuration should be unreachable: %s", rep)
	}
	if rep.SingleInstance != FalseResourceCycle || len(rep.Blockable) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "unreachable") {
		t.Fatalf("String = %q", rep.String())
	}
}

func TestTheoremNBlockableMember(t *testing.T) {
	// Like figure 1 but the first member's arc is shorter than its
	// approach: an interposed copy of its predecessor blocks it.
	cfg := Config{Entrants: []Entrant{
		{D: 4, C: 3, Shared: true},
		{D: 3, C: 4, Shared: true},
		{D: 2, C: 3, Shared: true},
		{D: 3, C: 4, Shared: true},
	}}
	rep := TheoremN(cfg)
	if rep.Unreachable {
		t.Fatal("blockable member should make the configuration reachable")
	}
	if rep.SingleInstance != FalseResourceCycle {
		t.Fatalf("single-instance should still be infeasible: %v", rep.SingleInstance)
	}
	if len(rep.Blockable) != 1 || rep.Blockable[0] != 0 {
		t.Fatalf("blockable = %v; want [0]", rep.Blockable)
	}
	if !strings.Contains(rep.String(), "interposed") {
		t.Fatalf("String = %q", rep.String())
	}
}

func TestTheoremNSingleInstanceReachable(t *testing.T) {
	// Two sharers: always reachable without copies (Theorem 4).
	cfg := Config{Entrants: []Entrant{
		{D: 3, C: 4, Shared: true},
		{D: 2, C: 3, Shared: true},
	}}
	rep := TheoremN(cfg)
	if rep.Unreachable || rep.SingleInstance != DeadlockReachable || rep.Witness == nil {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "single-instance") {
		t.Fatalf("String = %q", rep.String())
	}
}

// TheoremN specializes to Theorem 5 on pure three-sharer configurations.
func TestTheoremNAgreesWithTheorem5(t *testing.T) {
	for _, D := range [][3]int{{4, 2, 3}, {5, 2, 3}, {6, 2, 3}, {5, 3, 4}, {4, 3, 2}, {3, 3, 2}} {
		for _, C := range [][3]int{{2, 2, 2}, {4, 4, 4}, {5, 2, 4}, {3, 4, 2}, {6, 3, 3}} {
			cfg := threeSharer(D, C)
			t5 := Theorem5(cfg)
			tn := TheoremN(cfg)
			if t5.Unreachable != tn.Unreachable {
				t.Fatalf("D%v C%v: Theorem5=%v TheoremN=%v", D, C, t5.Unreachable, tn.Unreachable)
			}
		}
	}
}
