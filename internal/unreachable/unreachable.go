// Package unreachable decides whether a cyclic channel-dependency
// configuration is a reachable deadlock or a false resource cycle
// (unreachable configuration), implementing the Section 5 theory of
// Schwiebert (SPAA '97).
//
// # The timing model
//
// A cyclic configuration consists of entrants (messages) m_1 ... m_n in
// ring order. Entrant i approaches the ring over d_i channels (counting
// the shared channel for entrants that use one), then holds an arc of c_i
// ring channels, and is blocked exactly at the next entrant's first ring
// channel. Messages have the paper's minimal length l_i = c_i and flit
// buffers hold one flit, which the paper shows is the hardest case. The
// routers use the aggressive handoff of the paper's proofs: a channel
// whose tail departs in cycle t is acquirable in cycle t, and a header
// arriving at a free channel in the same cycle as a competitor may lose
// the tie (Section 3's adversarial arbitration).
//
// Under this model, if entrant m acquires its first approach channel at
// time x_m, then
//
//   - m's header requests its blocking channel at x_m + d_m + c_m;
//   - m's successor b occupies that channel from x_b + d_b onward
//     (forever, if b is itself blocked in time — the worm length equals
//     the arc length, so a blocked worm covers its arc exactly);
//   - consecutive users of a shared channel are spaced by the message
//     length: x_next >= x_prev + c_prev.
//
// The configuration is a reachable deadlock if and only if the resulting
// difference-constraint system is feasible for some ordering of the
// sharers on each shared channel:
//
//	x_b - x_m <= d_m + c_m - d_b        for every ring pair (m, b)
//	x_t - x_s >= c_s                    for cs-consecutive sharers (s, t)
//
// Feasibility of a difference-constraint system is the absence of a
// negative cycle in its constraint graph (Bellman–Ford).
//
// The paper's Theorems 2-5 are corollaries of this criterion, and the
// package exposes them directly: Theorem 2 (no shared channel outside the
// cycle ⇒ always reachable), Theorem 4 (exactly two sharers ⇒ always
// reachable), and Theorem 5's eight conditions for three sharers. The
// model checker in internal/mcheck provides independent ground truth; the
// test suite verifies the criterion against it across entire parameter
// families.
package unreachable

import "fmt"

// Entrant is one message of a cyclic configuration, in ring order.
type Entrant struct {
	// D is the number of channels from the message's source to its ring
	// entry, counting the shared channel if Shared.
	D int
	// C is the number of ring channels the message holds (= its minimal
	// length in flits).
	C int
	// Shared reports whether the message's approach uses the shared
	// channel.
	Shared bool
}

// Config is a cyclic configuration: entrants in ring order, where entrant
// i is blocked at entrant (i+1)%n's first ring channel. At most one shared
// channel is supported, used by every entrant with Shared = true — the
// shape of all of the paper's constructions.
type Config struct {
	Entrants []Entrant
}

// Verdict classifies a configuration.
type Verdict int

const (
	// FalseResourceCycle: the configuration is unreachable — no schedule
	// of injections and arbitration outcomes produces the deadlock.
	FalseResourceCycle Verdict = iota
	// DeadlockReachable: some schedule produces the Definition 6 deadlock.
	DeadlockReachable
)

// String renders the verdict.
func (v Verdict) String() string {
	if v == FalseResourceCycle {
		return "false-resource-cycle"
	}
	return "deadlock-reachable"
}

// Witness is the schedule certificate for a reachable deadlock: the order
// in which the sharers acquire the shared channel and consistent
// acquisition times for every entrant.
type Witness struct {
	// SharedOrder lists the indices of shared entrants in shared-channel
	// acquisition order.
	SharedOrder []int
	// Times[i] is the cycle entrant i acquires its first approach channel.
	Times []int
}

// Classify decides reachability of the configuration by checking the
// difference-constraint system over every ordering of the sharers. It
// returns a witness for reachable deadlocks.
func Classify(cfg Config) (Verdict, *Witness) {
	n := len(cfg.Entrants)
	if n < 2 {
		panic("unreachable: configuration needs at least two entrants")
	}
	var sharers []int
	for i, e := range cfg.Entrants {
		if e.Shared {
			sharers = append(sharers, i)
		}
	}
	for _, order := range permutations(sharers) {
		if times, ok := feasible(cfg, order); ok {
			return DeadlockReachable, &Witness{SharedOrder: order, Times: times}
		}
	}
	return FalseResourceCycle, nil
}

// feasible solves the difference-constraint system for one shared-channel
// ordering. Constraints of the form x_v - x_u <= w become edges u -> v of
// weight w; the system is feasible iff the graph has no negative cycle,
// and shortest-path distances from a virtual source give a concrete
// solution (shifted to start at zero).
func feasible(cfg Config, order []int) ([]int, bool) {
	n := len(cfg.Entrants)
	type edge struct {
		u, v, w int
	}
	var edges []edge
	// Ring blocking: for pair (m, b = next(m)): x_b - x_m <= d_m + c_m - d_b.
	for m := 0; m < n; m++ {
		b := (m + 1) % n
		em, eb := cfg.Entrants[m], cfg.Entrants[b]
		edges = append(edges, edge{u: m, v: b, w: em.D + em.C - eb.D})
	}
	// Shared-channel sequencing: x_t - x_s >= c_s, i.e. x_s - x_t <= -c_s.
	for j := 0; j+1 < len(order); j++ {
		s, t := order[j], order[j+1]
		edges = append(edges, edge{u: t, v: s, w: -cfg.Entrants[s].C})
	}
	// Bellman–Ford with an implicit virtual source (all distances start at
	// 0). A pass that still relaxes after n-1 full passes proves a
	// negative cycle, i.e. infeasibility.
	dist := make([]int, n)
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range edges {
			if d := dist[e.u] + e.w; d < dist[e.v] {
				dist[e.v] = d
				changed = true
			}
		}
		if !changed {
			break
		}
		if iter == n-1 {
			return nil, false // still relaxing after n passes: negative cycle
		}
	}
	// Shift times to be non-negative.
	min := dist[0]
	for _, d := range dist {
		if d < min {
			min = d
		}
	}
	times := make([]int, n)
	for i, d := range dist {
		times[i] = d - min
	}
	return times, true
}

// permutations enumerates all orderings of ids; the empty and singleton
// cases yield a single ordering.
func permutations(ids []int) [][]int {
	if len(ids) > 8 {
		panic(fmt.Sprintf("unreachable: refusing to permute %d sharers", len(ids)))
	}
	if len(ids) == 0 {
		return [][]int{nil}
	}
	var out [][]int
	var rec func(k int)
	work := append([]int(nil), ids...)
	rec = func(k int) {
		if k == len(work) {
			out = append(out, append([]int(nil), work...))
			return
		}
		for i := k; i < len(work); i++ {
			work[k], work[i] = work[i], work[k]
			rec(k + 1)
			work[k], work[i] = work[i], work[k]
		}
	}
	rec(0)
	return out
}
