package unreachable

import (
	"strings"
	"testing"
	"testing/quick"
)

// threeSharer builds a pure three-sharer configuration with the given ring
// position parameters.
func threeSharer(d, c [3]int) Config {
	var cfg Config
	for i := 0; i < 3; i++ {
		cfg.Entrants = append(cfg.Entrants, Entrant{D: d[i], C: c[i], Shared: true})
	}
	return cfg
}

func TestClassifyFigure1Unreachable(t *testing.T) {
	// Figure 1's parameters: four sharers, d=(2,3,2,3), c=(3,4,3,4).
	cfg := Config{Entrants: []Entrant{
		{D: 2, C: 3, Shared: true},
		{D: 3, C: 4, Shared: true},
		{D: 2, C: 3, Shared: true},
		{D: 3, C: 4, Shared: true},
	}}
	v, w := Classify(cfg)
	if v != FalseResourceCycle {
		t.Fatalf("verdict = %v; Theorem 1 says unreachable", v)
	}
	if w != nil {
		t.Fatal("false resource cycle must not carry a witness")
	}
}

func TestClassifyTwoSharerAlwaysReachable(t *testing.T) {
	// Theorem 4 over a grid.
	for d1 := 2; d1 <= 6; d1++ {
		for d2 := 2; d2 <= 6; d2++ {
			for _, c1 := range []int{2, 3, 5} {
				for _, c2 := range []int{2, 4} {
					cfg := Config{Entrants: []Entrant{
						{D: d1, C: c1, Shared: true},
						{D: d2, C: c2, Shared: true},
					}}
					v, w := Classify(cfg)
					if v != DeadlockReachable {
						t.Fatalf("d=(%d,%d) c=(%d,%d): %v; Theorem 4 says reachable", d1, d2, c1, c2, v)
					}
					verifyWitness(t, cfg, w)
				}
			}
		}
	}
}

func TestClassifyNoSharingAlwaysReachable(t *testing.T) {
	// Theorem 2 / Corollary 1 shape: no shared channel at all.
	cfg := Config{Entrants: []Entrant{
		{D: 2, C: 3}, {D: 1, C: 2}, {D: 4, C: 2},
	}}
	v, w := Classify(cfg)
	if v != DeadlockReachable {
		t.Fatalf("verdict = %v; no-sharing cycles are always reachable", v)
	}
	verifyWitness(t, cfg, w)
}

// verifyWitness independently re-checks the witness against the timing
// constraints the package documents.
func verifyWitness(t *testing.T, cfg Config, w *Witness) {
	t.Helper()
	if w == nil {
		t.Fatal("missing witness")
	}
	n := len(cfg.Entrants)
	if len(w.Times) != n {
		t.Fatalf("witness has %d times for %d entrants", len(w.Times), n)
	}
	for m := 0; m < n; m++ {
		b := (m + 1) % n
		em, eb := cfg.Entrants[m], cfg.Entrants[b]
		if w.Times[b]+eb.D > w.Times[m]+em.D+em.C {
			t.Fatalf("ring pair (%d,%d) violated: x_b=%d d_b=%d vs x_m=%d d_m=%d c_m=%d",
				m, b, w.Times[b], eb.D, w.Times[m], em.D, em.C)
		}
	}
	for j := 0; j+1 < len(w.SharedOrder); j++ {
		s, tt := w.SharedOrder[j], w.SharedOrder[j+1]
		if w.Times[tt] < w.Times[s]+cfg.Entrants[s].C {
			t.Fatalf("cs order violated between %d and %d", s, tt)
		}
	}
	for _, x := range w.Times {
		if x < 0 {
			t.Fatalf("negative time in witness: %v", w.Times)
		}
	}
}

func TestClassifyThreeSharerBoundary(t *testing.T) {
	// Ring order (M1, M3, M2): reachable single-instance iff d1 >= d3 + c2.
	// d1 starts at 4 so the approach distances stay distinct (ties are the
	// condition-3 cases, always reachable).
	for d1 := 4; d1 <= 9; d1++ {
		for _, c2 := range []int{2, 3, 4} {
			cfg := threeSharer([3]int{d1, 2, 3}, [3]int{d1, 3, c2})
			v, _ := Classify(cfg)
			want := FalseResourceCycle
			if d1 >= 2+c2 {
				want = DeadlockReachable
			}
			if v != want {
				t.Fatalf("d1=%d c2=%d: %v; want %v", d1, c2, v, want)
			}
		}
	}
}

func TestClassifyPanicsOnTinyConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Classify(Config{Entrants: []Entrant{{D: 1, C: 2}}})
}

func TestTheorem5Applicability(t *testing.T) {
	if rep := Theorem5(Config{Entrants: []Entrant{{Shared: true, D: 2, C: 2}, {Shared: true, D: 3, C: 2}}}); rep.Applicable {
		t.Fatal("two entrants: not applicable")
	}
	mixed := Config{Entrants: []Entrant{
		{Shared: true, D: 2, C: 2}, {Shared: true, D: 3, C: 2}, {Shared: false, D: 2, C: 2},
	}}
	if rep := Theorem5(mixed); rep.Applicable {
		t.Fatal("non-sharing member: not applicable")
	}
}

func TestTheorem5Labeling(t *testing.T) {
	rep := Theorem5(threeSharer([3]int{4, 2, 3}, [3]int{5, 4, 4}))
	if !rep.Applicable {
		t.Fatal("should apply")
	}
	if rep.M1 != 0 || rep.M3 != 1 || rep.M2 != 2 {
		t.Fatalf("labels M1=%d M2=%d M3=%d; want 0, 2, 1", rep.M1, rep.M2, rep.M3)
	}
	if len(rep.Conditions) != 8 {
		t.Fatalf("conditions = %d; want 8", len(rep.Conditions))
	}
	for i, c := range rep.Conditions {
		if c.Number != i+1 {
			t.Fatalf("condition %d numbered %d", i, c.Number)
		}
		if c.Detail == "" || c.Name == "" {
			t.Fatalf("condition %d lacks detail", c.Number)
		}
	}
	if !rep.Unreachable {
		t.Fatal("figure 3(a) parameters must be unreachable")
	}
}

func TestTheorem5ConditionViolations(t *testing.T) {
	cases := []struct {
		name    string
		d, c    [3]int
		violate string
	}{
		{"order", [3]int{4, 3, 2}, [3]int{5, 4, 4}, "ring-order"},
		{"ties", [3]int{3, 3, 2}, [3]int{5, 4, 4}, "distinct-distances"},
		{"m1-block", [3]int{5, 2, 3}, [3]int{3, 4, 4}, "M1-not-blockable"},
		{"m3-block", [3]int{10, 8, 9}, [3]int{10, 4, 9}, "M3-not-blockable"},
		{"m2-block", [3]int{5, 3, 4}, [3]int{5, 4, 3}, "M2-not-blockable"},
		{"overtake", [3]int{6, 2, 3}, [3]int{6, 4, 4}, "no-cs-overtake"},
	}
	for _, tc := range cases {
		rep := Theorem5(threeSharer(tc.d, tc.c))
		if !rep.Applicable {
			t.Fatalf("%s: not applicable", tc.name)
		}
		if rep.Unreachable {
			t.Fatalf("%s: expected reachable", tc.name)
		}
		found := false
		for _, c := range rep.Conditions {
			if c.Name == tc.violate && !c.Holds {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: condition %q not reported violated: %+v", tc.name, tc.violate, rep.Conditions)
		}
	}
}

func TestVerdictString(t *testing.T) {
	if FalseResourceCycle.String() != "false-resource-cycle" || DeadlockReachable.String() != "deadlock-reachable" {
		t.Fatal("verdict strings wrong")
	}
}

func TestPermutations(t *testing.T) {
	if got := len(permutations([]int{1, 2, 3})); got != 6 {
		t.Fatalf("3! = %d", got)
	}
	if got := permutations(nil); len(got) != 1 || got[0] != nil {
		t.Fatalf("empty permutations = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for > 8 sharers")
		}
	}()
	permutations(make([]int, 9))
}

func TestConditionDetailMentionsNumbers(t *testing.T) {
	rep := Theorem5(threeSharer([3]int{4, 2, 3}, [3]int{5, 4, 4}))
	for _, c := range rep.Conditions {
		if c.Number >= 3 && c.Number <= 7 && !strings.ContainsAny(c.Detail, "0123456789") {
			t.Fatalf("condition %d detail has no arithmetic: %q", c.Number, c.Detail)
		}
	}
}

// Property: every witness Classify returns satisfies its own constraint
// system, for random small configurations.
func TestWitnessSoundnessProperty(t *testing.T) {
	f := func(raw [4]uint8, sharedMask uint8) bool {
		var cfg Config
		for i := 0; i < 4; i++ {
			d := int(raw[i]%4) + 1
			c := int(raw[i]/4%4) + 2
			shared := sharedMask&(1<<i) != 0
			if shared && d < 2 {
				d = 2
			}
			cfg.Entrants = append(cfg.Entrants, Entrant{D: d, C: c, Shared: shared})
		}
		v, w := Classify(cfg)
		if v == FalseResourceCycle {
			return w == nil
		}
		// Inline the witness checks (cannot t.Fatal inside quick.Check).
		n := len(cfg.Entrants)
		for m := 0; m < n; m++ {
			b := (m + 1) % n
			if w.Times[b]+cfg.Entrants[b].D > w.Times[m]+cfg.Entrants[m].D+cfg.Entrants[m].C {
				return false
			}
		}
		for j := 0; j+1 < len(w.SharedOrder); j++ {
			s, tt := w.SharedOrder[j], w.SharedOrder[j+1]
			if w.Times[tt] < w.Times[s]+cfg.Entrants[s].C {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
