package unreachable

import "fmt"

// Condition is one of Theorem 5's requirements for a three-sharer cycle to
// be an unreachable configuration, evaluated on a concrete configuration.
type Condition struct {
	// Number is the paper's condition number (1-8).
	Number int
	// Name is a short slug.
	Name string
	// Holds reports whether the condition is satisfied.
	Holds bool
	// Detail explains the arithmetic.
	Detail string
}

// Theorem5Report is the result of evaluating Theorem 5 on a pure
// three-sharer configuration.
type Theorem5Report struct {
	// Applicable is false when the configuration is not a pure
	// three-sharer cycle (exactly three entrants, all sharing the single
	// channel); Theorem 5 then says nothing and the other fields are
	// zero.
	Applicable bool
	// M1, M2, M3 are the ring indices of the messages with the most,
	// middle and fewest channels from the shared channel to the cycle
	// (the paper's labeling). Valid only when distances are distinct.
	M1, M2, M3 int
	// Conditions lists the evaluated requirements.
	Conditions []Condition
	// Unreachable reports the theorem's verdict: true iff every condition
	// holds, in which case the cycle is a false resource cycle even when
	// sources may send additional copies of the messages.
	Unreachable bool
}

// Theorem5 evaluates the paper's Theorem 5 on a configuration of exactly
// three messages sharing one channel outside the cycle.
//
// The source text of conditions 4-8 is partially corrupted in the
// available copy of the paper, so the arithmetic below is this
// reproduction's reconstruction, phrased in the paper's terms and
// validated mechanically: the test suite checks that the conjunction of
// these conditions agrees with exhaustive model checking (allowing the
// adversary extra copies of each message, per assumption 1) across the
// whole parameter family. The mapping is:
//
//	1  ring order: M1 is followed by M3, with M2 not between them;
//	2  all three messages use the shared channel outside the cycle
//	   (structural in this package's configurations);
//	3  the three approach distances are all different;
//	4  M1 uses more channels within the cycle than from cs to the cycle
//	   (c1 >= d1) — otherwise an interposed copy of M1's ring
//	   predecessor blocks M1 outside the cycle long enough to realign
//	   the shared-channel sequence (the paper's Theorem 4 reduction);
//	5  the analogous bound for M3 (c3 >= d3);
//	6  the analogous bound for M2 (c2 >= d2);
//	7,8  the shared-channel sequence cannot be stretched enough for M1 to
//	   be blocked in time by M3: d1 < d3 + c2, i.e. M1's approach is
//	   shorter than M3's approach plus the channels the interposed M2
//	   occupies in the cycle between them.
func Theorem5(cfg Config) Theorem5Report {
	var rep Theorem5Report
	if len(cfg.Entrants) != 3 {
		return rep
	}
	for _, e := range cfg.Entrants {
		if !e.Shared {
			return rep
		}
	}
	rep.Applicable = true

	// Label by approach distance: M1 = most, M3 = fewest.
	idx := []int{0, 1, 2}
	// Simple selection by D descending with stable tie-breaking.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if cfg.Entrants[idx[j]].D > cfg.Entrants[idx[i]].D {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	rep.M1, rep.M2, rep.M3 = idx[0], idx[1], idx[2]
	e1, e2, e3 := cfg.Entrants[rep.M1], cfg.Entrants[rep.M2], cfg.Entrants[rep.M3]

	add := func(num int, name string, holds bool, detail string) {
		rep.Conditions = append(rep.Conditions, Condition{Number: num, Name: name, Holds: holds, Detail: detail})
	}

	// Condition 1: in ring order, M1 is followed by M3 (ring successor of
	// M1 is M3, equivalently M2 is not between M1 and M3).
	ringNextOfM1 := (rep.M1 + 1) % 3
	c1holds := ringNextOfM1 == rep.M3
	add(1, "ring-order", c1holds,
		fmt.Sprintf("ring successor of M1 (index %d) is index %d; require M3 (index %d)", rep.M1, ringNextOfM1, rep.M3))

	// Condition 2: all messages use the shared channel outside the cycle.
	// Structural here: approaches are disjoint from the ring by
	// construction.
	add(2, "shared-outside-cycle", true, "all approaches use cs before any ring channel")

	// Condition 3: distinct approach distances.
	c3holds := e1.D != e2.D && e2.D != e3.D && e1.D != e3.D
	add(3, "distinct-distances", c3holds,
		fmt.Sprintf("d1=%d d2=%d d3=%d", e1.D, e2.D, e3.D))

	// Conditions 4-6: no message may be blockable outside the cycle: each
	// must use more channels within the cycle (arc plus the channel it is
	// blocked at, c+1) than from the shared channel to the cycle (d).
	add(4, "M1-not-blockable", e1.C >= e1.D, fmt.Sprintf("c1=%d >= d1=%d", e1.C, e1.D))
	add(5, "M3-not-blockable", e3.C >= e3.D, fmt.Sprintf("c3=%d >= d3=%d", e3.C, e3.D))
	add(6, "M2-not-blockable", e2.C >= e2.D, fmt.Sprintf("c2=%d >= d2=%d", e2.C, e2.D))

	// Conditions 7-8: M1 must not be able to out-wait the shared-channel
	// sequence: with order (M1, M2, M3) on cs, M3 reaches M1's blocking
	// channel d3 + c2 cycles of sequence after M1's own arrival budget d1.
	add(7, "no-cs-overtake", e1.D < e3.D+e2.C,
		fmt.Sprintf("d1=%d < d3=%d + c2=%d", e1.D, e3.D, e2.C))
	add(8, "no-cs-overtake-rev", true,
		"absorbed into condition 7 in this geometry (single shared channel, disjoint approaches)")

	rep.Unreachable = true
	for _, c := range rep.Conditions {
		if !c.Holds {
			rep.Unreachable = false
		}
	}
	return rep
}
