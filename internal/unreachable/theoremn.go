package unreachable

import "fmt"

// TheoremNReport generalizes Theorem 5 to cyclic configurations with any
// number of entrants — the extension the paper's conclusion proposes
// ("These results could be extended to the case of four messages and
// beyond").
type TheoremNReport struct {
	// Unreachable reports the verdict: true iff the configuration is a
	// false resource cycle even against adversaries that interpose extra
	// copies of the members.
	Unreachable bool
	// SingleInstance is the verdict ignoring interposed copies (the plain
	// difference-constraint feasibility of Classify).
	SingleInstance Verdict
	// Blockable lists ring indices of members that can be held outside
	// the cycle by an interposed copy of their ring predecessor (their
	// approach is at least as long as their in-cycle holding, c_i < d_i).
	// Any such member makes the configuration reachable.
	Blockable []int
	// Witness carries the schedule when the single-instance system is
	// already feasible.
	Witness *Witness
}

// String renders the report.
func (r TheoremNReport) String() string {
	if r.Unreachable {
		return "unreachable (false resource cycle)"
	}
	if r.SingleInstance == DeadlockReachable {
		return "reachable (single-instance schedule)"
	}
	return fmt.Sprintf("reachable (interposed copies block members %v)", r.Blockable)
}

// TheoremN decides reachability of an arbitrary cyclic configuration
// against the full assumption-1 adversary, which may also send extra
// copies of the member messages:
//
//   - if the single-instance timing system is feasible (Classify), the
//     deadlock is reachable outright;
//   - otherwise, if some member holds fewer channels in the cycle than it
//     uses to reach it (c_i < d_i), an interposed copy of its ring
//     predecessor can occupy the member's entry channel and delay it long
//     enough to re-align the shared-channel sequence — the Theorem 4
//     reduction the paper describes for conditions 4-6 — and the deadlock
//     is reachable;
//   - otherwise the configuration is a false resource cycle.
//
// For three sharers this specializes exactly to Theorem 5's conditions
// (the ring-order and distinctness conditions 1 and 3 are subsumed by
// single-instance feasibility). The test suite validates the criterion
// against exhaustive model checking for two-, three- and four-entrant
// families, including mixed shared/private configurations.
func TheoremN(cfg Config) TheoremNReport {
	var rep TheoremNReport
	v, w := Classify(cfg)
	rep.SingleInstance = v
	rep.Witness = w
	if v == DeadlockReachable {
		return rep
	}
	for i, e := range cfg.Entrants {
		if e.C < e.D {
			rep.Blockable = append(rep.Blockable, i)
		}
	}
	rep.Unreachable = len(rep.Blockable) == 0
	return rep
}
