// Package routing models oblivious wormhole routing algorithms.
//
// Following Schwiebert (SPAA '97), a routing algorithm R_A (Definition 3)
// maps a (source, destination) node pair to the single channel path a
// message follows, and is implemented at each router by a routing function
// R: C×N -> C (Definition 2) that maps the message's input channel and
// destination to the output channel. The package provides:
//
//   - the Algorithm interface and a general table-based implementation;
//   - library algorithms from the literature (dimension-order routing on
//     meshes, e-cube on hypercubes, Dally–Seitz virtual-channel routing on
//     tori, negative-first turn-model routing, hub routing, BFS shortest
//     path routing);
//   - checkers for the structural properties the paper's theorems hinge on:
//     completeness, minimality, prefix closure (Definition 7), suffix
//     closure (Definition 8), coherence (Definition 9), and realizability
//     as a routing function of the forms C×N -> C and N×N -> C.
package routing

import (
	"fmt"

	"repro/internal/topology"
)

// Algorithm is an oblivious routing algorithm: one fixed channel path per
// (source, destination) pair (Definition 3).
type Algorithm interface {
	// Name identifies the algorithm in reports and benchmarks.
	Name() string
	// Network returns the interconnection network the algorithm routes on.
	Network() *topology.Network
	// Path returns the channel path a message from src to dst follows.
	// It returns nil when src == dst. A nil return for distinct nodes means
	// the algorithm does not connect the pair (it is incomplete).
	Path(src, dst topology.NodeID) []topology.ChannelID
}

// Table is an explicit path-per-pair oblivious routing algorithm. It is the
// general representation used for the paper's custom constructions and for
// randomly generated algorithms in property tests.
type Table struct {
	name  string
	net   *topology.Network
	paths map[pairKey][]topology.ChannelID
}

type pairKey struct{ src, dst topology.NodeID }

// NewTable returns an empty routing table for net.
func NewTable(net *topology.Network, name string) *Table {
	return &Table{name: name, net: net, paths: make(map[pairKey][]topology.ChannelID)}
}

// Name implements Algorithm.
func (t *Table) Name() string { return t.name }

// Network implements Algorithm.
func (t *Table) Network() *topology.Network { return t.net }

// Path implements Algorithm. The returned slice is shared; callers must not
// modify it.
func (t *Table) Path(src, dst topology.NodeID) []topology.ChannelID {
	if src == dst {
		return nil
	}
	return t.paths[pairKey{src, dst}]
}

// SetPath records the path from src to dst. It returns an error if the path
// is not a contiguous channel path from src to dst in the network, so a
// Table can never silently hold an illegal route.
func (t *Table) SetPath(src, dst topology.NodeID, path []topology.ChannelID) error {
	if src == dst {
		return fmt.Errorf("routing: SetPath(%d, %d): source equals destination", src, dst)
	}
	if len(path) == 0 {
		return fmt.Errorf("routing: SetPath(%d, %d): empty path", src, dst)
	}
	if !t.net.IsPath(src, dst, path) {
		return fmt.Errorf("routing: SetPath(%d, %d): %v is not a contiguous path", src, dst, path)
	}
	t.paths[pairKey{src, dst}] = append([]topology.ChannelID(nil), path...)
	return nil
}

// MustSetPath is SetPath that panics on error; intended for hand-built
// constructions whose paths are fixed by the paper.
func (t *Table) MustSetPath(src, dst topology.NodeID, path []topology.ChannelID) {
	if err := t.SetPath(src, dst, path); err != nil {
		panic(err)
	}
}

// FillShortest sets every missing (src, dst) pair to one BFS shortest path.
// Existing entries are kept. It returns an error if some pair remains
// unreachable.
func (t *Table) FillShortest() error {
	n := t.net.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			key := pairKey{topology.NodeID(s), topology.NodeID(d)}
			if _, ok := t.paths[key]; ok {
				continue
			}
			p := t.net.ShortestPath(key.src, key.dst)
			if p == nil {
				return fmt.Errorf("routing: FillShortest: no path %d -> %d", s, d)
			}
			t.paths[key] = p
		}
	}
	return nil
}

// funcAlgorithm adapts a per-hop routing rule into an Algorithm by walking
// the rule from each source. It is used by the library algorithms, which
// are most naturally expressed as local decisions.
type funcAlgorithm struct {
	name string
	net  *topology.Network
	// step returns the next channel for a message at `at` heading for `dst`,
	// having arrived on `in` (topology.None at the source).
	step func(at topology.NodeID, in topology.ChannelID, dst topology.NodeID) topology.ChannelID
}

// FromFunc builds an Algorithm from a per-hop routing function of the
// Definition 2 form R: C×N -> C (with the current node supplied for the
// injection case). Paths are materialized by iterating the function; a walk
// longer than maxHops hops is treated as undefined (nil path) so a cyclic
// function cannot hang callers.
func FromFunc(net *topology.Network, name string,
	step func(at topology.NodeID, in topology.ChannelID, dst topology.NodeID) topology.ChannelID) Algorithm {
	return &funcAlgorithm{name: name, net: net, step: step}
}

// Name implements Algorithm.
func (f *funcAlgorithm) Name() string { return f.name }

// Network implements Algorithm.
func (f *funcAlgorithm) Network() *topology.Network { return f.net }

// maxHopsFactor bounds path materialization: a legal oblivious path in these
// networks never needs more than maxHopsFactor × |C| hops; anything longer
// indicates a livelocked routing function.
const maxHopsFactor = 4

// Path implements Algorithm.
func (f *funcAlgorithm) Path(src, dst topology.NodeID) []topology.ChannelID {
	if src == dst {
		return nil
	}
	limit := maxHopsFactor * (f.net.NumChannels() + 1)
	var path []topology.ChannelID
	at := src
	in := topology.None
	for at != dst {
		if len(path) > limit {
			return nil
		}
		next := f.step(at, in, dst)
		if next == topology.None {
			return nil
		}
		c := f.net.Channel(next)
		if c.Src != at {
			return nil
		}
		path = append(path, next)
		at = c.Dst
		in = next
	}
	return path
}

// Materialize copies every pair's path of alg into a Table, which makes
// repeated Path calls cheap and the algorithm mutable. It returns an error
// if alg is incomplete.
func Materialize(alg Algorithm) (*Table, error) {
	net := alg.Network()
	t := NewTable(net, alg.Name())
	n := net.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			p := alg.Path(topology.NodeID(s), topology.NodeID(d))
			if p == nil {
				return nil, fmt.Errorf("routing: Materialize(%s): no path %d -> %d", alg.Name(), s, d)
			}
			if err := t.SetPath(topology.NodeID(s), topology.NodeID(d), p); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}
