package routing

import (
	"fmt"

	"repro/internal/topology"
)

// Violation describes why a property check failed, naming the offending
// source/destination pair. A nil *Violation means the property holds.
type Violation struct {
	Property string
	Src, Dst topology.NodeID
	Detail   string
}

// Error implements the error interface so violations can flow through
// error-returning call sites.
func (v *Violation) Error() string {
	return fmt.Sprintf("routing: %s violated for pair (%d -> %d): %s", v.Property, v.Src, v.Dst, v.Detail)
}

// forEachPair invokes fn for every ordered pair of distinct nodes, stopping
// at the first violation.
func forEachPair(net *topology.Network, fn func(s, d topology.NodeID) *Violation) *Violation {
	n := net.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			if v := fn(topology.NodeID(s), topology.NodeID(d)); v != nil {
				return v
			}
		}
	}
	return nil
}

// CheckComplete verifies the algorithm defines a legal contiguous path for
// every ordered pair of distinct nodes (the algorithm "connects" the
// network).
func CheckComplete(alg Algorithm) *Violation {
	net := alg.Network()
	return forEachPair(net, func(s, d topology.NodeID) *Violation {
		p := alg.Path(s, d)
		if p == nil {
			return &Violation{Property: "complete", Src: s, Dst: d, Detail: "no path defined"}
		}
		if !net.IsPath(s, d, p) {
			return &Violation{Property: "complete", Src: s, Dst: d, Detail: fmt.Sprintf("path %v is not contiguous from source to destination", p)}
		}
		return nil
	})
}

// CheckMinimal verifies every path has length equal to the BFS hop distance
// between its endpoints. Minimality is a hypothesis of Theorem 3.
func CheckMinimal(alg Algorithm) *Violation {
	net := alg.Network()
	dist := net.Distances()
	return forEachPair(net, func(s, d topology.NodeID) *Violation {
		p := alg.Path(s, d)
		if p == nil {
			return &Violation{Property: "minimal", Src: s, Dst: d, Detail: "no path defined"}
		}
		if len(p) != dist[s][d] {
			return &Violation{Property: "minimal", Src: s, Dst: d,
				Detail: fmt.Sprintf("path length %d exceeds shortest distance %d", len(p), dist[s][d])}
		}
		return nil
	})
}

// CheckPrefixClosed verifies Definition 7: if the path from s to d passes
// through an intermediate node m, then the algorithm's path from s to m
// equals the prefix of the s->d path up to the *first* occurrence of m.
func CheckPrefixClosed(alg Algorithm) *Violation {
	net := alg.Network()
	return forEachPair(net, func(s, d topology.NodeID) *Violation {
		p := alg.Path(s, d)
		if p == nil {
			return nil // incompleteness is CheckComplete's concern
		}
		nodes := net.PathNodes(p)
		seen := make(map[topology.NodeID]bool)
		for i := 1; i < len(nodes)-1; i++ {
			m := nodes[i]
			if m == s || seen[m] {
				continue // only the first occurrence defines the prefix
			}
			seen[m] = true
			want := p[:i]
			got := alg.Path(s, m)
			if !equalPaths(got, want) {
				return &Violation{Property: "prefix-closed", Src: s, Dst: d,
					Detail: fmt.Sprintf("path(%d,%d) = %v but prefix to node %d is %v", s, m, got, m, want)}
			}
		}
		return nil
	})
}

// CheckSuffixClosed verifies Definition 8: if the path from s to d passes
// through an intermediate node m, the algorithm's path from m to d equals
// the suffix of the s->d path from m onward.
//
// The check is strict: the suffix from *every* occurrence of m must match.
// A path that visits the same intermediate node twice produces two suffixes
// of different lengths and therefore always fails, which is consistent with
// the paper's observation that every algorithm realizable in the
// input-channel-independent form N×N -> C is suffix-closed (such algorithms
// can never revisit a node without livelocking). All of the paper's
// constructions are revisit-free, where every reading of Definition 8
// coincides with this one.
func CheckSuffixClosed(alg Algorithm) *Violation {
	net := alg.Network()
	return forEachPair(net, func(s, d topology.NodeID) *Violation {
		p := alg.Path(s, d)
		if p == nil {
			return nil
		}
		nodes := net.PathNodes(p)
		for i := 1; i < len(nodes)-1; i++ {
			m := nodes[i]
			if m == d {
				continue
			}
			want := p[i:]
			got := alg.Path(m, d)
			if !equalPaths(got, want) {
				return &Violation{Property: "suffix-closed", Src: s, Dst: d,
					Detail: fmt.Sprintf("path(%d,%d) = %v but suffix from node %d (hop %d) is %v", m, d, got, m, i, want)}
			}
		}
		return nil
	})
}

// CheckNoRevisit verifies no path routes a message through the same node
// more than once (the third clause of coherence, Definition 9).
func CheckNoRevisit(alg Algorithm) *Violation {
	net := alg.Network()
	return forEachPair(net, func(s, d topology.NodeID) *Violation {
		p := alg.Path(s, d)
		if p == nil {
			return nil
		}
		seen := make(map[topology.NodeID]bool)
		for _, nd := range net.PathNodes(p) {
			if seen[nd] {
				return &Violation{Property: "no-revisit", Src: s, Dst: d,
					Detail: fmt.Sprintf("path visits node %d more than once", nd)}
			}
			seen[nd] = true
		}
		return nil
	})
}

// CheckCoherent verifies Definition 9: the algorithm is prefix-closed,
// suffix-closed, and never routes a message through the same node twice.
func CheckCoherent(alg Algorithm) *Violation {
	if v := CheckPrefixClosed(alg); v != nil {
		v.Property = "coherent (" + v.Property + ")"
		return v
	}
	if v := CheckSuffixClosed(alg); v != nil {
		v.Property = "coherent (" + v.Property + ")"
		return v
	}
	if v := CheckNoRevisit(alg); v != nil {
		v.Property = "coherent (" + v.Property + ")"
		return v
	}
	return nil
}

// RoutingFunc is the materialized Definition 2 form R: C×N -> C, plus the
// injection rule at each source node. Inject[src][dst] is the first channel
// a message from src to dst acquires; Next[in][dst] is the channel taken
// after arriving on channel in, or topology.None when dst = the channel's
// destination node.
type RoutingFunc struct {
	Inject map[topology.NodeID]map[topology.NodeID]topology.ChannelID
	Next   map[topology.ChannelID]map[topology.NodeID]topology.ChannelID
}

// AsRoutingFunc attempts to express the algorithm as a routing function of
// the form R: C×N -> C (Definition 2): the output channel must be a
// function of the input channel and the destination alone. It returns the
// materialized function, or a violation naming the first conflicting pair.
// Every oblivious algorithm the paper considers is of this form; a conflict
// means the algorithm needs source- or path-dependent state.
func AsRoutingFunc(alg Algorithm) (*RoutingFunc, *Violation) {
	rf := &RoutingFunc{
		Inject: make(map[topology.NodeID]map[topology.NodeID]topology.ChannelID),
		Next:   make(map[topology.ChannelID]map[topology.NodeID]topology.ChannelID),
	}
	v := forEachPair(alg.Network(), func(s, d topology.NodeID) *Violation {
		p := alg.Path(s, d)
		if p == nil {
			return nil
		}
		if m, ok := rf.Inject[s]; !ok {
			rf.Inject[s] = map[topology.NodeID]topology.ChannelID{d: p[0]}
		} else if prev, ok := m[d]; ok && prev != p[0] {
			return &Violation{Property: "form C×N->C", Src: s, Dst: d,
				Detail: fmt.Sprintf("injection at node %d for destination %d maps to both channel %d and %d", s, d, prev, p[0])}
		} else {
			m[d] = p[0]
		}
		for i := 0; i+1 < len(p); i++ {
			in, out := p[i], p[i+1]
			if m, ok := rf.Next[in]; !ok {
				rf.Next[in] = map[topology.NodeID]topology.ChannelID{d: out}
			} else if prev, ok := m[d]; ok && prev != out {
				return &Violation{Property: "form C×N->C", Src: s, Dst: d,
					Detail: fmt.Sprintf("R(channel %d, dest %d) maps to both channel %d and %d", in, d, prev, out)}
			} else {
				m[d] = out
			}
		}
		return nil
	})
	if v != nil {
		return nil, v
	}
	return rf, nil
}

// CheckInputChannelIndependent reports whether the algorithm is realizable
// in the form R: N×N -> C (Corollary 1): the output channel at every node
// depends only on the current node and the destination, not on the input
// channel. Algorithms of this form cannot have unreachable cyclic
// configurations (Corollary 1).
func CheckInputChannelIndependent(alg Algorithm) *Violation {
	net := alg.Network()
	next := make(map[pairKey]topology.ChannelID) // (current node, dst) -> out
	return forEachPair(net, func(s, d topology.NodeID) *Violation {
		p := alg.Path(s, d)
		if p == nil {
			return nil
		}
		at := s
		for _, out := range p {
			key := pairKey{at, d}
			if prev, ok := next[key]; ok && prev != out {
				return &Violation{Property: "form N×N->C", Src: s, Dst: d,
					Detail: fmt.Sprintf("at node %d for destination %d the algorithm uses both channel %d and %d", at, d, prev, out)}
			}
			next[key] = out
			at = net.Channel(out).Dst
		}
		return nil
	})
}

// Properties is the result of running every checker on an algorithm.
type Properties struct {
	Complete                bool
	Minimal                 bool
	PrefixClosed            bool
	SuffixClosed            bool
	NoRevisit               bool
	Coherent                bool
	RoutingFuncForm         bool // realizable as R: C×N -> C
	InputChannelIndependent bool // realizable as R: N×N -> C
	Violations              []*Violation
}

// CheckAll runs every property checker and collects the violations.
func CheckAll(alg Algorithm) Properties {
	var props Properties
	record := func(ok *bool, v *Violation) {
		*ok = v == nil
		if v != nil {
			props.Violations = append(props.Violations, v)
		}
	}
	record(&props.Complete, CheckComplete(alg))
	record(&props.Minimal, CheckMinimal(alg))
	record(&props.PrefixClosed, CheckPrefixClosed(alg))
	record(&props.SuffixClosed, CheckSuffixClosed(alg))
	record(&props.NoRevisit, CheckNoRevisit(alg))
	props.Coherent = props.PrefixClosed && props.SuffixClosed && props.NoRevisit
	_, v := AsRoutingFunc(alg)
	record(&props.RoutingFuncForm, v)
	record(&props.InputChannelIndependent, CheckInputChannelIndependent(alg))
	return props
}

// String renders the property set compactly for reports.
func (p Properties) String() string {
	mark := func(b bool) byte {
		if b {
			return '+'
		}
		return '-'
	}
	return fmt.Sprintf("complete%c minimal%c prefix%c suffix%c norevisit%c coherent%c CxN%c NxN%c",
		mark(p.Complete), mark(p.Minimal), mark(p.PrefixClosed), mark(p.SuffixClosed),
		mark(p.NoRevisit), mark(p.Coherent), mark(p.RoutingFuncForm), mark(p.InputChannelIndependent))
}

func equalPaths(a, b []topology.ChannelID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
