package routing

import (
	"testing"

	"repro/internal/topology"
)

func TestValiantComplete(t *testing.T) {
	g := topology.NewMesh([]int{3, 3}, 1)
	alg := Valiant(g, 7, false)
	if v := CheckComplete(alg); v != nil {
		t.Fatalf("incomplete: %v", v)
	}
	// Valiant is generally nonminimal (it detours via the intermediate).
	if v := CheckMinimal(alg); v == nil {
		t.Fatal("valiant on a 3x3 mesh should be nonminimal for some pair")
	}
}

func TestValiantDeterministicPerSeed(t *testing.T) {
	g := topology.NewMesh([]int{3, 3}, 1)
	a := Valiant(g, 7, false)
	b := Valiant(g, 7, false)
	c := Valiant(g, 8, false)
	same, diff := true, false
	for s := 0; s < 9; s++ {
		for d := 0; d < 9; d++ {
			if s == d {
				continue
			}
			pa := a.Path(topology.NodeID(s), topology.NodeID(d))
			pb := b.Path(topology.NodeID(s), topology.NodeID(d))
			pc := c.Path(topology.NodeID(s), topology.NodeID(d))
			if !equalPaths(pa, pb) {
				same = false
			}
			if !equalPaths(pa, pc) {
				diff = true
			}
		}
	}
	if !same {
		t.Fatal("same seed must give the same algorithm")
	}
	if !diff {
		t.Fatal("different seeds should differ somewhere on a 3x3 mesh")
	}
}

func TestValiantVCSplitUsesBothLayers(t *testing.T) {
	g := topology.NewMesh([]int{3, 3}, 2)
	alg := Valiant(g, 3, true)
	if v := CheckComplete(alg); v != nil {
		t.Fatal(v)
	}
	// Some path must use a VC1 channel (phase two).
	usesVC1 := false
	for s := 0; s < 9 && !usesVC1; s++ {
		for d := 0; d < 9; d++ {
			if s == d {
				continue
			}
			for _, c := range alg.Path(topology.NodeID(s), topology.NodeID(d)) {
				if g.Channel(c).VC == 1 {
					usesVC1 = true
				}
			}
		}
	}
	if !usesVC1 {
		t.Fatal("vc-split valiant never used the phase-two layer")
	}
}

func TestValiantValidation(t *testing.T) {
	tor := topology.NewTorus([]int{3, 3}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on torus")
		}
	}()
	Valiant(tor, 1, false)
}

func TestValiantVCSplitNeedsTwoVCs(t *testing.T) {
	g := topology.NewMesh([]int{3, 3}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic with 1 VC")
		}
	}()
	Valiant(g, 1, true)
}
