package routing

import (
	"testing"

	"repro/internal/topology"
)

func TestTableSetPathValidation(t *testing.T) {
	net := topology.NewRing(4, false)
	tab := NewTable(net, "t")
	good := net.ShortestPath(0, 2)
	if err := tab.SetPath(0, 2, good); err != nil {
		t.Fatalf("SetPath valid: %v", err)
	}
	if err := tab.SetPath(0, 0, nil); err == nil {
		t.Fatal("SetPath(v,v) should fail")
	}
	if err := tab.SetPath(0, 2, nil); err == nil {
		t.Fatal("SetPath empty should fail")
	}
	if err := tab.SetPath(1, 2, good); err == nil {
		t.Fatal("SetPath discontiguous should fail")
	}
	got := tab.Path(0, 2)
	if len(got) != 2 {
		t.Fatalf("Path = %v", got)
	}
	if tab.Path(0, 0) != nil {
		t.Fatal("Path(v,v) should be nil")
	}
	if tab.Path(2, 0) != nil {
		t.Fatal("unset pair should be nil")
	}
}

func TestTablePathIsolatedFromCaller(t *testing.T) {
	net := topology.NewRing(4, false)
	tab := NewTable(net, "t")
	p := net.ShortestPath(0, 2)
	tab.MustSetPath(0, 2, p)
	p[0] = 99 // mutate the caller's slice
	if tab.Path(0, 2)[0] == 99 {
		t.Fatal("SetPath must copy the path")
	}
}

func TestFillShortestCompletes(t *testing.T) {
	net := topology.NewRing(5, true)
	tab := NewTable(net, "t")
	if err := tab.FillShortest(); err != nil {
		t.Fatal(err)
	}
	if v := CheckComplete(tab); v != nil {
		t.Fatalf("filled table incomplete: %v", v)
	}
	if v := CheckMinimal(tab); v != nil {
		t.Fatalf("filled table not minimal: %v", v)
	}
}

func TestDimensionOrderProperties(t *testing.T) {
	g := topology.NewMesh([]int{3, 3}, 1)
	alg := DimensionOrder(g)
	props := CheckAll(alg)
	if !props.Complete || !props.Minimal || !props.Coherent || !props.InputChannelIndependent {
		t.Fatalf("DOR properties = %v (violations %v)", props, props.Violations)
	}
}

func TestDimensionOrderPathShape(t *testing.T) {
	g := topology.NewMesh([]int{4, 4}, 1)
	alg := DimensionOrder(g)
	src := g.NodeAt([]int{0, 3})
	dst := g.NodeAt([]int{2, 1})
	p := alg.Path(src, dst)
	if len(p) != 4 {
		t.Fatalf("path length = %d; want 4", len(p))
	}
	// Dimension 0 must be fully corrected before dimension 1 moves.
	nodes := g.Network.PathNodes(p)
	sawDim1 := false
	for i := 1; i < len(nodes); i++ {
		prev, cur := g.Coords(nodes[i-1]), g.Coords(nodes[i])
		if prev[0] != cur[0] {
			if sawDim1 {
				t.Fatal("dimension 0 hop after dimension 1 hop")
			}
		} else {
			sawDim1 = true
		}
	}
}

func TestNegativeFirstProperties(t *testing.T) {
	g := topology.NewMesh([]int{3, 3}, 1)
	alg := NegativeFirst(g)
	props := CheckAll(alg)
	if !props.Complete || !props.Minimal {
		t.Fatalf("negative-first should be complete and minimal: %v", props.Violations)
	}
	if !props.InputChannelIndependent {
		t.Fatal("negative-first is a function of (node, dst) only")
	}
	// Path from (0,0) to (2,2) has no negative hops; from (2,2) to (0,0)
	// all hops are negative.
	p := alg.Path(g.NodeAt([]int{0, 2}), g.NodeAt([]int{2, 0}))
	nodes := g.Network.PathNodes(p)
	// First hops must be the dimension-1 negative moves.
	c0 := g.Coords(nodes[0])
	c1 := g.Coords(nodes[1])
	if !(c1[1] == c0[1]-1) {
		t.Fatalf("negative-first should take the negative dim-1 hop first: %v -> %v", c0, c1)
	}
}

func TestECubeProperties(t *testing.T) {
	h := topology.NewHypercube(3)
	alg := ECube(h)
	props := CheckAll(alg)
	if !props.Complete || !props.Minimal || !props.Coherent {
		t.Fatalf("e-cube properties = %v (violations %v)", props, props.Violations)
	}
	p := alg.Path(0, 7)
	if len(p) != 3 {
		t.Fatalf("e-cube path 0->7 length = %d; want 3", len(p))
	}
	// Lowest bit first: 0 -> 1 -> 3 -> 7.
	nodes := h.PathNodes(p)
	want := []topology.NodeID{0, 1, 3, 7}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("e-cube path nodes = %v; want %v", nodes, want)
		}
	}
}

func TestDallySeitzTorusProperties(t *testing.T) {
	g := topology.NewTorus([]int{4, 4}, 2)
	alg := DallySeitzTorus(g)
	props := CheckAll(alg)
	if !props.Complete || !props.Minimal {
		t.Fatalf("dally-seitz should be complete and minimal: %v", props.Violations)
	}
	// Dateline routing picks the virtual channel from the destination, so a
	// prefix of a wrapping path differs from the direct path to the same
	// intermediate node (VC1 vs VC0): the algorithm is NOT prefix-closed
	// and hence not coherent — but it IS suffix-closed, which is the
	// property Corollary 2 needs.
	if props.PrefixClosed {
		t.Fatal("dally-seitz dateline routing should not be prefix-closed")
	}
	if !props.SuffixClosed {
		t.Fatalf("dally-seitz should be suffix-closed: %v", props.Violations)
	}
	if !props.NoRevisit {
		t.Fatalf("dally-seitz should never revisit a node: %v", props.Violations)
	}
}

func TestDallySeitzDatelineVCs(t *testing.T) {
	g := topology.NewTorus([]int{4}, 2)
	alg := DallySeitzTorus(g)
	// 3 -> 1 wraps through the dateline 3->0: first hop VC1, second hop VC0.
	p := alg.Path(3, 1)
	if len(p) != 2 {
		t.Fatalf("path 3->1 length = %d; want 2", len(p))
	}
	if vc := g.Channel(p[0]).VC; vc != 1 {
		t.Fatalf("wrap hop VC = %d; want 1", vc)
	}
	if vc := g.Channel(p[1]).VC; vc != 0 {
		t.Fatalf("post-wrap hop VC = %d; want 0", vc)
	}
	// 0 -> 1 does not wrap: VC0 all the way.
	p = alg.Path(0, 1)
	if vc := g.Channel(p[0]).VC; vc != 0 {
		t.Fatalf("non-wrap hop VC = %d; want 0", vc)
	}
}

func TestHubRouting(t *testing.T) {
	net := topology.NewStar(4)
	alg := Hub(net, 0)
	props := CheckAll(alg)
	if !props.Complete {
		t.Fatalf("hub routing incomplete: %v", props.Violations)
	}
	p := alg.Path(1, 2)
	nodes := net.PathNodes(p)
	if len(nodes) != 3 || nodes[1] != 0 {
		t.Fatalf("leaf-to-leaf path should pass the hub: %v", nodes)
	}
	// Leaf -> hub is direct.
	if p := alg.Path(1, 0); len(p) != 1 {
		t.Fatalf("leaf->hub path = %v", p)
	}
}

func TestHubRoutingOnRing(t *testing.T) {
	net := topology.NewRing(5, true)
	alg := Hub(net, 2)
	if v := CheckComplete(alg); v != nil {
		t.Fatal(v)
	}
	// Path 0 -> 4 must route via node 2 even though 0-4 are adjacent.
	nodes := net.PathNodes(alg.Path(0, 4))
	via := false
	for _, n := range nodes[1 : len(nodes)-1] {
		if n == 2 {
			via = true
		}
	}
	if !via {
		t.Fatalf("hub path should pass node 2: %v", nodes)
	}
	// Hub routing on a ring is not minimal.
	if v := CheckMinimal(alg); v == nil {
		t.Fatal("hub routing on a ring should not be minimal")
	}
}

func TestShortestBFSComplete(t *testing.T) {
	net := topology.NewHypercube(3)
	alg := ShortestBFS(net)
	props := CheckAll(alg)
	if !props.Complete || !props.Minimal {
		t.Fatalf("BFS routing properties: %v", props.Violations)
	}
}

func TestRandomMinimalDeterministicAndMinimal(t *testing.T) {
	net := topology.NewMesh([]int{3, 3}, 1).Network
	a := RandomMinimal(net, 42)
	b := RandomMinimal(net, 42)
	c := RandomMinimal(net, 43)
	if v := CheckMinimal(a); v != nil {
		t.Fatalf("random minimal not minimal: %v", v)
	}
	same := true
	differs := false
	for s := 0; s < net.NumNodes(); s++ {
		for d := 0; d < net.NumNodes(); d++ {
			if s == d {
				continue
			}
			pa := a.Path(topology.NodeID(s), topology.NodeID(d))
			pb := b.Path(topology.NodeID(s), topology.NodeID(d))
			pc := c.Path(topology.NodeID(s), topology.NodeID(d))
			if !equalPaths(pa, pb) {
				same = false
			}
			if !equalPaths(pa, pc) {
				differs = true
			}
		}
	}
	if !same {
		t.Fatal("same seed should give identical algorithms")
	}
	if !differs {
		t.Fatal("different seeds should give different algorithms on a 3x3 mesh")
	}
}

func TestFromFuncLivelockGuard(t *testing.T) {
	net := topology.NewRing(3, false)
	// A pathological rule that never reaches destination 0 from 1: it
	// always forwards clockwise, passing the destination forever is
	// impossible on a ring (it must arrive), so instead route to a channel
	// that exists but loops: always take the clockwise channel even at the
	// destination check level. Simplest livelock: target unreachable rule
	// that returns a wrong-source channel.
	bad := FromFunc(net, "bad", func(at topology.NodeID, _ topology.ChannelID, dst topology.NodeID) topology.ChannelID {
		return net.Out(at)[0] // never terminates guard exercised below
	})
	// From 1 to 0 the rule keeps circling: guard must kick in via the
	// at != dst loop termination... it terminates when passing through 0.
	if p := bad.Path(1, 0); p == nil {
		t.Fatal("circling rule reaches the destination on a ring")
	}
	// A rule that returns a channel not leaving the current node is
	// rejected.
	wrong := FromFunc(net, "wrong", func(at topology.NodeID, _ topology.ChannelID, dst topology.NodeID) topology.ChannelID {
		return net.Out((at + 1) % 3)[0]
	})
	if p := wrong.Path(0, 2); p != nil {
		t.Fatalf("rule emitting non-local channels should yield nil, got %v", p)
	}
	// A rule that ping-pongs forever without reaching dst trips the hop
	// bound.
	bi := topology.NewRing(4, true)
	pingpong := FromFunc(bi, "pingpong", func(at topology.NodeID, in topology.ChannelID, dst topology.NodeID) topology.ChannelID {
		// Bounce between nodes 0 and 1 forever.
		if at == 0 {
			return bi.ChannelsBetween(0, 1)[0]
		}
		return bi.ChannelsBetween(at, at-1)[0]
	})
	if p := pingpong.Path(0, 3); p != nil {
		t.Fatalf("livelocking rule should yield nil, got %v", p)
	}
}

func TestMaterialize(t *testing.T) {
	g := topology.NewMesh([]int{3, 3}, 1)
	alg := DimensionOrder(g)
	tab, err := Materialize(alg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.NumNodes(); s++ {
		for d := 0; d < g.NumNodes(); d++ {
			if s == d {
				continue
			}
			if !equalPaths(tab.Path(topology.NodeID(s), topology.NodeID(d)), alg.Path(topology.NodeID(s), topology.NodeID(d))) {
				t.Fatalf("materialized path differs for (%d,%d)", s, d)
			}
		}
	}
	if tab.Name() != alg.Name() {
		t.Fatal("name not preserved")
	}
}

func TestMaterializeIncomplete(t *testing.T) {
	net := topology.NewRing(3, false)
	partial := NewTable(net, "partial")
	partial.MustSetPath(0, 1, net.ShortestPath(0, 1))
	if _, err := Materialize(partial); err == nil {
		t.Fatal("materializing an incomplete algorithm should fail")
	}
}
