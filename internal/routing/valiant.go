package routing

import (
	"fmt"
	"math/rand"

	"repro/internal/topology"
)

// Valiant returns Valiant-style two-phase oblivious routing on a mesh:
// every message routes dimension-ordered to a per-pair random intermediate
// node, then dimension-ordered to its destination. The randomization is
// fixed per (source, destination) pair by the seed, so the algorithm is
// oblivious (one path per pair).
//
// With vcSplit=false both phases use virtual channel 0 and the channel
// dependency graph is cyclic — phase-two traffic turns against the
// dimension order, closing cycles, and the algorithm can deadlock. With
// vcSplit=true (requires a grid with at least two virtual channels) phase
// one runs on VC0 and phase two on VC1; the per-phase graphs are acyclic
// and phase one only ever feeds phase two, so the whole graph is acyclic
// and the algorithm is deadlock-free.
func Valiant(g *topology.Grid, seed int64, vcSplit bool) Algorithm {
	if g.Wrap {
		panic("routing: Valiant requires a mesh")
	}
	if vcSplit && g.VCs < 2 {
		panic("routing: Valiant with vcSplit requires at least 2 virtual channels")
	}
	rng := rand.New(rand.NewSource(seed))
	name := fmt.Sprintf("valiant%d.%s", seed, g.Name())
	if vcSplit {
		name = fmt.Sprintf("valiant%d.vcsplit.%s", seed, g.Name())
	}
	t := NewTable(g.Network, name)
	n := g.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			src, dst := topology.NodeID(s), topology.NodeID(d)
			mid := topology.NodeID(rng.Intn(n))
			vc2 := 0
			if vcSplit {
				vc2 = 1
			}
			path := append(dorPath(g, src, mid, 0), dorPath(g, mid, dst, vc2)...)
			if len(path) == 0 {
				// mid == src == ... degenerate: route directly.
				path = dorPath(g, src, dst, 0)
			}
			// A path through mid may revisit channels (out to mid and
			// straight back); collapse such immediate backtracks by
			// rerouting directly when the combined path is not simple.
			if !simpleChannelPath(path) {
				path = dorPath(g, src, dst, 0)
			}
			t.MustSetPath(src, dst, path)
		}
	}
	return t
}

// dorPath returns the dimension-order path from src to dst on the given
// virtual channel (empty when src == dst).
func dorPath(g *topology.Grid, src, dst topology.NodeID, vc int) []topology.ChannelID {
	var path []topology.ChannelID
	at := src
	for at != dst {
		ca, cd := g.Coords(at), g.Coords(dst)
		advanced := false
		for d := range g.Dims {
			if ca[d] == cd[d] {
				continue
			}
			dir := 0
			if ca[d] > cd[d] {
				dir = 1
			}
			cid, ok := g.Link(at, d, dir, vc)
			if !ok {
				panic("routing: dorPath: missing mesh link")
			}
			path = append(path, cid)
			at = g.Channel(cid).Dst
			advanced = true
			break
		}
		if !advanced {
			break
		}
	}
	return path
}

// simpleChannelPath reports whether no channel repeats.
func simpleChannelPath(path []topology.ChannelID) bool {
	seen := make(map[topology.ChannelID]bool, len(path))
	for _, c := range path {
		if seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}
