package routing

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// nonMinimalTable builds a small network with a deliberately non-minimal,
// non-coherent routing table for exercising the checkers.
func nonMinimalTable(t *testing.T) (*topology.Network, *Table) {
	t.Helper()
	net := topology.NewRing(4, true)
	tab := NewTable(net, "weird")
	if err := tab.FillShortest(); err != nil {
		t.Fatal(err)
	}
	// Replace the 0 -> 1 path with the long way round: 0 -> 3 -> 2 -> 1.
	long := []topology.ChannelID{}
	for _, hop := range [][2]topology.NodeID{{0, 3}, {3, 2}, {2, 1}} {
		long = append(long, net.ChannelsBetween(hop[0], hop[1])[0])
	}
	tab.MustSetPath(0, 1, long)
	return net, tab
}

func TestCheckMinimalDetectsLongPath(t *testing.T) {
	_, tab := nonMinimalTable(t)
	v := CheckMinimal(tab)
	if v == nil {
		t.Fatal("expected minimality violation")
	}
	if v.Src != 0 || v.Dst != 1 {
		t.Fatalf("violation pair = (%d,%d); want (0,1)", v.Src, v.Dst)
	}
	if !strings.Contains(v.Error(), "minimal") {
		t.Fatalf("error text = %q", v.Error())
	}
}

func TestCheckPrefixClosedDetectsViolation(t *testing.T) {
	_, tab := nonMinimalTable(t)
	// 0->1 goes via 3 and 2, but 0->3 is the direct hop, which IS the
	// prefix. 0->2 goes 0->1->2 (BFS) while the long path's prefix to 2 is
	// 0->3->2 — so prefix closure fails at intermediate node 2 of pair
	// (0,1).
	v := CheckPrefixClosed(tab)
	if v == nil {
		t.Fatal("expected prefix-closure violation")
	}
}

func TestCheckSuffixClosedDetectsViolation(t *testing.T) {
	net := topology.NewRing(4, true)
	tab := NewTable(net, "suffix-broken")
	if err := tab.FillShortest(); err != nil {
		t.Fatal(err)
	}
	// Make 1 -> 3 take the path via 0 while 0...wait: make pair (0,2) route
	// 0->1->2 but pair (1,2) route the long way 1->0->3->2. Then the suffix
	// of path(0,2) from node 1 is 1->2, which differs from path(1,2).
	long := []topology.ChannelID{
		net.ChannelsBetween(1, 0)[0],
		net.ChannelsBetween(0, 3)[0],
		net.ChannelsBetween(3, 2)[0],
	}
	tab.MustSetPath(1, 2, long)
	v := CheckSuffixClosed(tab)
	if v == nil {
		t.Fatal("expected suffix-closure violation")
	}
}

func TestCheckNoRevisitDetectsLoop(t *testing.T) {
	net := topology.NewRing(3, true)
	tab := NewTable(net, "loopy")
	if err := tab.FillShortest(); err != nil {
		t.Fatal(err)
	}
	// 0 -> 1 via a detour that revisits 0: 0->2->0->1 is discontiguous?
	// 0->2 (ccw), 2->0 (cw), 0->1 (cw). Contiguous and revisits 0.
	loop := []topology.ChannelID{
		net.ChannelsBetween(0, 2)[0],
		net.ChannelsBetween(2, 0)[0],
		net.ChannelsBetween(0, 1)[0],
	}
	tab.MustSetPath(0, 1, loop)
	if v := CheckNoRevisit(tab); v == nil {
		t.Fatal("expected no-revisit violation")
	}
	if v := CheckCoherent(tab); v == nil {
		t.Fatal("revisiting algorithm cannot be coherent")
	} else if !strings.Contains(v.Property, "coherent") {
		t.Fatalf("property = %q", v.Property)
	}
}

func TestCheckCompleteDetectsMissingPair(t *testing.T) {
	net := topology.NewRing(3, false)
	tab := NewTable(net, "partial")
	tab.MustSetPath(0, 1, net.ShortestPath(0, 1))
	v := CheckComplete(tab)
	if v == nil {
		t.Fatal("expected completeness violation")
	}
}

func TestAsRoutingFuncAcceptsDOR(t *testing.T) {
	g := topology.NewMesh([]int{3, 3}, 1)
	rf, v := AsRoutingFunc(DimensionOrder(g))
	if v != nil {
		t.Fatalf("DOR should be C×N->C: %v", v)
	}
	if rf == nil || len(rf.Inject) == 0 || len(rf.Next) == 0 {
		t.Fatal("materialized function is empty")
	}
	// Spot-check: injection at (0,0) toward (2,2) takes the +x hop first.
	src := g.NodeAt([]int{0, 0})
	dst := g.NodeAt([]int{2, 2})
	cid := rf.Inject[src][dst]
	if c := g.Channel(cid); g.Coords(c.Dst)[0] != 1 {
		t.Fatalf("first hop goes to %v", g.Coords(c.Dst))
	}
}

func TestAsRoutingFuncDetectsSourceDependence(t *testing.T) {
	// Two sources send to the same destination through the same channel but
	// then diverge: that is path-dependent routing, not C×N -> C.
	net := topology.New("diamond")
	a := net.AddNode("a")
	b := net.AddNode("b")
	m := net.AddNode("m")
	x := net.AddNode("x")
	y := net.AddNode("y")
	d := net.AddNode("d")
	am := net.AddChannel(a, m, 0, "am")
	bm := net.AddChannel(b, m, 0, "bm")
	mx := net.AddChannel(m, x, 0, "mx")
	my := net.AddChannel(m, y, 0, "my")
	xd := net.AddChannel(x, d, 0, "xd")
	yd := net.AddChannel(y, d, 0, "yd")
	// Return channels to keep the network strongly connected.
	net.AddChannel(d, a, 0, "da")
	net.AddChannel(a, b, 0, "ab")
	net.AddChannel(x, m, 0, "xm2")
	net.AddChannel(y, m, 0, "ym2")
	net.AddChannel(m, a, 0, "ma")
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	tab := NewTable(net, "pathdep")
	// Same input channel situation (both arrive at m) but different
	// continuations... note a->m and b->m are DIFFERENT channels, so that
	// alone is legal C×N->C. Make the conflict real: route (a,d) and (b,d)
	// both through channel mx... then they cannot diverge. Instead create
	// input-channel dependence that is fine, then a real conflict:
	// (a,d): a->m->x->d, and make a second pair (a2...) reuse channel am
	// with destination d but different output. With a single table entry
	// per (src,dst) the only way to conflict on (in,dst) is two sources
	// sharing a channel: give (d,?) no role; instead route (b,d) via the
	// SAME channel am? b cannot use am. Use a relay: (x,d) direct, and
	// (a,d) via m,x; then R(mx, d) = xd for pair (a,d) and path (m... )
	// Actually construct conflict on injection: impossible per source.
	// Conflict on channel mx: pair (a,d) continues xd; pair (b,d) goes
	// b->m->x->d, continuing xd too. Diverge by sending (b,d) via y:
	// then R uses my, no conflict. True conflict needs same in-channel,
	// same dst, different out. Let pair (a,d) = a->m->x->d and pair
	// (b,d) = b->m->x->m->y->d? x->m exists (xm2), m->y exists. Then
	// R(mx, d) = xd vs xm2: conflict.
	tab.MustSetPath(a, d, []topology.ChannelID{am, mx, xd})
	xm2, _ := net.FindChannel("xm2")
	tab.MustSetPath(b, d, []topology.ChannelID{bm, mx, xm2, my, yd})
	if _, v := AsRoutingFunc(tab); v == nil {
		t.Fatal("expected C×N->C violation")
	}
	// And it is also not input-channel independent.
	if v := CheckInputChannelIndependent(tab); v == nil {
		t.Fatal("expected N×N->C violation")
	}
}

func TestInputChannelIndependentDetectsDependence(t *testing.T) {
	// Paths that continue differently from the same node based on where
	// the message came from are C×N->C but not N×N->C.
	net := topology.NewRing(4, true)
	tab := NewTable(net, "icd")
	if err := tab.FillShortest(); err != nil {
		t.Fatal(err)
	}
	// Pair (0,2): 0->1->2 (clockwise BFS). Pair (3,2): replace the direct
	// hop with 3->0->1->2? Then at node 1 destination 2 both continue with
	// the same channel — no N×N conflict there; at node 0 destination 2
	// both use 0->1 — also consistent. To force dependence: pair (1,3)
	// goes 1->2->3 and pair (0,3) goes 0->3 direct. At node... no shared
	// node. Make pair (0,3) go 0->1->0->... illegal revisit is allowed
	// structurally; simpler: pair (2,0) via 2->1->0 and pair (3,0) via
	// 3->2->1->0 uses same continuation. Force: pair (2,0) := 2->3->0 and
	// pair (1,0) := 1->2->1? revisit. Use pair (1,3): 1->0->3 vs pair
	// (2,3) BFS := 2->3; node 0 in first path continues 0->3; pair (0,3)
	// BFS := 0->3 same. Hmm. Use ring with vc: add second channel pair.
	c01b := net.AddChannel(0, 1, 1, "cw0b")
	// Pair (0,1) uses vc1 channel; pair (3,1) goes 3->0 then the vc0
	// channel 0->1. At node 0 destination 1: out is c01b for source 0 but
	// vc0 channel for source 3 — input-channel dependent (injection vs
	// arrival), still a legal C×N->C function.
	tab.MustSetPath(0, 1, []topology.ChannelID{c01b})
	tab.MustSetPath(3, 1, []topology.ChannelID{
		net.ChannelsBetween(3, 0)[0],
		net.ChannelsBetween(0, 1)[0], // vc0 copy
	})
	if v := CheckInputChannelIndependent(tab); v == nil {
		t.Fatal("expected N×N->C violation")
	}
	if _, v := AsRoutingFunc(tab); v != nil {
		t.Fatalf("should still be C×N->C: %v", v)
	}
}

func TestCheckAllOnCoherentAlgorithm(t *testing.T) {
	g := topology.NewMesh([]int{3, 2}, 1)
	props := CheckAll(DimensionOrder(g))
	if !props.Coherent || !props.RoutingFuncForm {
		t.Fatalf("props = %v", props)
	}
	s := props.String()
	if !strings.Contains(s, "coherent+") {
		t.Fatalf("String = %q", s)
	}
}

// Property: every RandomMinimal algorithm on a mesh is complete, minimal,
// and realizable as N×N -> C... the latter is NOT guaranteed (different
// pairs can route differently through a node), so only check the guaranteed
// invariants.
func TestRandomMinimalInvariants(t *testing.T) {
	net := topology.NewMesh([]int{3, 3}, 1).Network
	f := func(seed int64) bool {
		alg := RandomMinimal(net, seed%1000)
		return CheckComplete(alg) == nil && CheckMinimal(alg) == nil
	}
	cfg := &quick.Config{MaxCount: 10}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: suffix closure of BFS deterministic routing. BFS parent trees
// are per-source, so BFS routing is generally NOT suffix-closed; but DOR is.
// Check that DOR on random mesh shapes stays coherent.
func TestDORCoherentAcrossShapes(t *testing.T) {
	shapes := [][]int{{2, 2}, {2, 3}, {4, 2}, {3, 3}, {2, 2, 2}, {5}}
	for _, dims := range shapes {
		g := topology.NewMesh(dims, 1)
		if v := CheckCoherent(DimensionOrder(g)); v != nil {
			t.Fatalf("DOR on %v not coherent: %v", dims, v)
		}
	}
}
