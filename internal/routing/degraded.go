package routing

import "repro/internal/topology"

// Reroute computes a replacement oblivious path for (src, dst) on a
// degraded network. It prefers the algorithm's own path when every channel
// on it is live (the message was a bystander of the fault and keeps its
// designed route, preserving whatever structural properties the algorithm
// guarantees); otherwise it falls back to a BFS shortest path over live
// channels only. It returns nil when dst is unreachable on the degraded
// graph — the caller must then drop or park the message until a repair.
func Reroute(alg Algorithm, down func(topology.ChannelID) bool, src, dst topology.NodeID) []topology.ChannelID {
	if p := alg.Path(src, dst); p != nil {
		live := true
		for _, c := range p {
			if down != nil && down(c) {
				live = false
				break
			}
		}
		if live {
			return p
		}
	}
	return topology.Degraded{Net: alg.Network(), Down: down}.ShortestPath(src, dst)
}
