package routing

import (
	"fmt"
	"math/rand"

	"repro/internal/topology"
)

// ShortestBFS returns the oblivious routing algorithm that sends every
// message along the deterministic BFS shortest path between its endpoints.
// It is minimal and complete on any strongly connected network, but not
// necessarily coherent.
func ShortestBFS(net *topology.Network) Algorithm {
	t := NewTable(net, fmt.Sprintf("bfs.%s", net.Name()))
	if err := t.FillShortest(); err != nil {
		panic(err)
	}
	return t
}

// Hub returns hub (star) routing: every message travels from its source to
// the hub node and then from the hub to its destination, each leg along a
// deterministic BFS shortest path. Messages from or to the hub use the
// direct leg. This mirrors the "route via N*" rule the paper's Figure 1
// network uses for all non-exceptional traffic.
func Hub(net *topology.Network, hub topology.NodeID) Algorithm {
	t := NewTable(net, fmt.Sprintf("hub%d.%s", hub, net.Name()))
	n := net.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			src, dst := topology.NodeID(s), topology.NodeID(d)
			if src == dst {
				continue
			}
			var path []topology.ChannelID
			if src == hub || dst == hub {
				path = net.ShortestPath(src, dst)
			} else {
				first := net.ShortestPath(src, hub)
				second := net.ShortestPath(hub, dst)
				if first == nil || second == nil {
					panic(fmt.Sprintf("routing: Hub: hub %d cannot reach pair (%d,%d)", hub, src, dst))
				}
				path = append(append([]topology.ChannelID(nil), first...), second...)
			}
			if path == nil {
				panic(fmt.Sprintf("routing: Hub: no path (%d,%d)", src, dst))
			}
			t.MustSetPath(src, dst, path)
		}
	}
	return t
}

// RandomMinimal returns an oblivious algorithm that assigns each (src, dst)
// pair one uniformly chosen minimal path, using the given seed. It is used
// by property-based tests to exercise the checkers and the analyzer on a
// diverse family of minimal oblivious algorithms. The result is
// deterministic for a fixed seed.
func RandomMinimal(net *topology.Network, seed int64) Algorithm {
	rng := rand.New(rand.NewSource(seed))
	t := NewTable(net, fmt.Sprintf("randmin%d.%s", seed, net.Name()))
	dist := net.Distances()
	n := net.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			src, dst := topology.NodeID(s), topology.NodeID(d)
			if src == dst {
				continue
			}
			path := randomMinimalPath(net, dist, src, dst, rng)
			if path == nil {
				panic(fmt.Sprintf("routing: RandomMinimal: no path (%d,%d)", src, dst))
			}
			t.MustSetPath(src, dst, path)
		}
	}
	return t
}

// randomMinimalPath walks from src to dst choosing uniformly among
// neighbors that stay on a shortest path.
func randomMinimalPath(net *topology.Network, dist [][]int, src, dst topology.NodeID, rng *rand.Rand) []topology.ChannelID {
	if dist[src][dst] < 0 {
		return nil
	}
	var path []topology.ChannelID
	at := src
	for at != dst {
		var options []topology.ChannelID
		for _, cid := range net.Out(at) {
			next := net.Channel(cid).Dst
			if dist[next][dst] == dist[at][dst]-1 {
				options = append(options, cid)
			}
		}
		if len(options) == 0 {
			return nil
		}
		pick := options[rng.Intn(len(options))]
		path = append(path, pick)
		at = net.Channel(pick).Dst
	}
	return path
}
