package routing

import (
	"fmt"

	"repro/internal/topology"
)

// DimensionOrder returns dimension-order (e-cube/XY) routing on a mesh: a
// message fully corrects dimension 0, then dimension 1, and so on, always on
// virtual channel 0. On a 2-D mesh this is the classic XY algorithm. Its
// channel dependency graph is acyclic, and the algorithm is coherent, so by
// the paper's Corollary 3 it can have no unreachable configurations.
func DimensionOrder(g *topology.Grid) Algorithm {
	if g.Wrap {
		panic("routing: DimensionOrder requires a mesh; use DallySeitzTorus for tori")
	}
	return FromFunc(g.Network, fmt.Sprintf("dor.%s", g.Name()),
		func(at topology.NodeID, _ topology.ChannelID, dst topology.NodeID) topology.ChannelID {
			ca, cd := g.Coords(at), g.Coords(dst)
			for d := range g.Dims {
				if ca[d] == cd[d] {
					continue
				}
				dir := 0
				if ca[d] > cd[d] {
					dir = 1
				}
				cid, ok := g.Link(at, d, dir, 0)
				if !ok {
					return topology.None
				}
				return cid
			}
			return topology.None
		})
}

// NegativeFirst returns the oblivious instance of the negative-first turn
// model on a mesh: a message first takes every hop in a negative direction
// (in dimension order), then every positive hop (in dimension order). All
// turns from a positive direction into a negative direction are prohibited,
// which breaks every cycle in the channel dependency graph.
func NegativeFirst(g *topology.Grid) Algorithm {
	if g.Wrap {
		panic("routing: NegativeFirst requires a mesh")
	}
	return FromFunc(g.Network, fmt.Sprintf("negfirst.%s", g.Name()),
		func(at topology.NodeID, _ topology.ChannelID, dst topology.NodeID) topology.ChannelID {
			ca, cd := g.Coords(at), g.Coords(dst)
			// Negative hops first.
			for d := range g.Dims {
				if ca[d] > cd[d] {
					cid, ok := g.Link(at, d, 1, 0)
					if !ok {
						return topology.None
					}
					return cid
				}
			}
			for d := range g.Dims {
				if ca[d] < cd[d] {
					cid, ok := g.Link(at, d, 0, 0)
					if !ok {
						return topology.None
					}
					return cid
				}
			}
			return topology.None
		})
}

// ECube returns e-cube routing on a binary hypercube: the message corrects
// the lowest differing address bit first. The channel ordering by bit
// position makes the dependency graph acyclic.
func ECube(net *topology.Network) Algorithm {
	return FromFunc(net, fmt.Sprintf("ecube.%s", net.Name()),
		func(at topology.NodeID, _ topology.ChannelID, dst topology.NodeID) topology.ChannelID {
			diff := uint(at) ^ uint(dst)
			if diff == 0 {
				return topology.None
			}
			bit := 0
			for diff&1 == 0 {
				diff >>= 1
				bit++
			}
			want := topology.NodeID(uint(at) ^ (1 << bit))
			chans := net.ChannelsBetween(at, want)
			if len(chans) == 0 {
				return topology.None
			}
			return chans[0]
		})
}

// DallySeitzTorus returns dimension-order routing on a torus with the
// Dally–Seitz dateline virtual-channel scheme: each directed ring has a
// dateline edge (the wrap-around link); a message travels on virtual
// channel 1 until it has crossed the dateline, and on virtual channel 0
// afterwards. Minimal-direction routing is used in each dimension (ties go
// to the positive direction). The scheme makes the per-ring dependency
// chains acyclic, hence the whole CDG acyclic; the grid must have at least
// two virtual channels per link.
func DallySeitzTorus(g *topology.Grid) Algorithm {
	if !g.Wrap {
		panic("routing: DallySeitzTorus requires a torus")
	}
	if g.VCs < 2 {
		panic("routing: DallySeitzTorus requires at least 2 virtual channels")
	}
	return FromFunc(g.Network, fmt.Sprintf("dallyseitz.%s", g.Name()),
		func(at topology.NodeID, _ topology.ChannelID, dst topology.NodeID) topology.ChannelID {
			ca, cd := g.Coords(at), g.Coords(dst)
			for d := range g.Dims {
				if ca[d] == cd[d] {
					continue
				}
				k := g.Dims[d]
				fwd := cd[d] - ca[d]
				if fwd < 0 {
					fwd += k
				}
				dir, steps := 0, fwd
				if back := k - fwd; back < fwd {
					dir, steps = 1, back
				}
				// Does the remaining journey in this dimension still cross
				// the dateline? The + dateline is the wrap edge k-1 -> 0;
				// the - dateline is the wrap edge 0 -> k-1.
				crosses := false
				pos := ca[d]
				for s := 0; s < steps; s++ {
					if dir == 0 && pos == k-1 {
						crosses = true
					}
					if dir == 1 && pos == 0 {
						crosses = true
					}
					if dir == 0 {
						pos = (pos + 1) % k
					} else {
						pos = (pos - 1 + k) % k
					}
				}
				vc := 0
				if crosses {
					vc = 1
				}
				cid, ok := g.Link(at, d, dir, vc)
				if !ok {
					return topology.None
				}
				return cid
			}
			return topology.None
		})
}
