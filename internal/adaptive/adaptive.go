// Package adaptive provides adaptive wormhole routing algorithms of the
// form R: C×N -> P(C), the class the paper contrasts with oblivious
// routing and points to as future work ("a more interesting extension of
// this work would be to apply these techniques to ... adaptive routing").
//
// The package includes:
//
//   - FullyAdaptiveMinimal: every minimal-direction channel is a
//     candidate. With a single virtual channel this is the classic
//     deadlock-prone algorithm (Dally & Seitz's motivation).
//   - WestFirst: the turn-model adaptive algorithm on 2-D meshes — all
//     westward hops first, then adaptive among the remaining minimal
//     directions. Deadlock-free: the prohibited turns break every cycle.
//   - DuatoMesh: Duato's protocol on a 2-VC mesh — fully adaptive minimal
//     routing on the adaptive virtual channels, with dimension-order
//     routing on the escape virtual channels always offered as a
//     fallback. Deadlock-free although its channel *dependency* structure
//     is cyclic — the adaptive analogue of the paper's headline
//     phenomenon, established by Duato's sufficiency theorem.
//
// Algorithms produce sim.RouteFunc values for the flit-level simulator.
// The simulator's candidate selection is adversar-independent (lowest
// granted channel); deadlock detection by quiescence remains exact.
package adaptive

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Algorithm is an adaptive routing algorithm: a candidate-set routing
// function plus metadata.
type Algorithm struct {
	Name  string
	Net   *topology.Network
	Route sim.RouteFunc
}

// FullyAdaptiveMinimal routes along any channel that reduces the remaining
// distance, on any virtual channel. On meshes and tori with one virtual
// channel this is deadlock-prone.
func FullyAdaptiveMinimal(g *topology.Grid) Algorithm {
	route := func(at topology.NodeID, _ topology.ChannelID, dst topology.NodeID) []topology.ChannelID {
		var out []topology.ChannelID
		ca, cd := g.Coords(at), g.Coords(dst)
		for d := range g.Dims {
			for dir := 0; dir < 2; dir++ {
				if !reduces(g, ca[d], cd[d], d, dir) {
					continue
				}
				for vc := 0; vc < g.VCs; vc++ {
					if cid, ok := g.Link(at, d, dir, vc); ok {
						out = append(out, cid)
					}
				}
			}
		}
		return out
	}
	return Algorithm{Name: fmt.Sprintf("fulladaptive.%s", g.Name()), Net: g.Network, Route: route}
}

// reduces reports whether one hop in (dim, dir) shrinks the remaining
// distance in that dimension (wrap-aware on tori; ties allow both
// directions).
func reduces(g *topology.Grid, a, b, dim, dir int) bool {
	if a == b {
		return false
	}
	k := g.Dims[dim]
	if !g.Wrap {
		if dir == 0 {
			return a < b
		}
		return a > b
	}
	fwd := (b - a + k) % k
	back := (a - b + k) % k
	if dir == 0 {
		return fwd <= back && fwd > 0
	}
	return back <= fwd && back > 0
}

// WestFirst is the adaptive west-first turn-model algorithm on a 2-D mesh:
// a message first makes all its hops in the negative direction of
// dimension 1 ("west"), with no alternative; afterwards it may route
// adaptively among the remaining minimal directions (east, and either
// direction of dimension 0). Prohibiting the two turns into west breaks
// every cycle, so the algorithm is deadlock-free with a single virtual
// channel.
func WestFirst(g *topology.Grid) Algorithm {
	if g.Wrap || len(g.Dims) != 2 {
		panic("adaptive: WestFirst requires a 2-D mesh")
	}
	route := func(at topology.NodeID, _ topology.ChannelID, dst topology.NodeID) []topology.ChannelID {
		ca, cd := g.Coords(at), g.Coords(dst)
		if ca[1] > cd[1] {
			// West hops first, alone.
			if cid, ok := g.Link(at, 1, 1, 0); ok {
				return []topology.ChannelID{cid}
			}
			return nil
		}
		var out []topology.ChannelID
		if ca[1] < cd[1] {
			if cid, ok := g.Link(at, 1, 0, 0); ok {
				out = append(out, cid)
			}
		}
		if ca[0] < cd[0] {
			if cid, ok := g.Link(at, 0, 0, 0); ok {
				out = append(out, cid)
			}
		} else if ca[0] > cd[0] {
			if cid, ok := g.Link(at, 0, 1, 0); ok {
				out = append(out, cid)
			}
		}
		return out
	}
	return Algorithm{Name: fmt.Sprintf("westfirst.%s", g.Name()), Net: g.Network, Route: route}
}

// DuatoMesh is Duato's protocol on a mesh with at least two virtual
// channels: virtual channels 1..VCs-1 are fully adaptive (any minimal
// direction), and virtual channel 0 is the escape layer running
// dimension-order routing; the escape channel for the message's current
// DOR hop is always among the candidates. Duato's theorem makes the
// algorithm deadlock-free: the escape sub-network's dependency graph is
// acyclic even though the full candidate structure is cyclic.
func DuatoMesh(g *topology.Grid) Algorithm {
	if g.Wrap {
		panic("adaptive: DuatoMesh requires a mesh")
	}
	if g.VCs < 2 {
		panic("adaptive: DuatoMesh requires at least two virtual channels")
	}
	route := func(at topology.NodeID, _ topology.ChannelID, dst topology.NodeID) []topology.ChannelID {
		var out []topology.ChannelID
		ca, cd := g.Coords(at), g.Coords(dst)
		// Adaptive candidates: every minimal direction on VC >= 1.
		for d := range g.Dims {
			dir := -1
			if ca[d] < cd[d] {
				dir = 0
			} else if ca[d] > cd[d] {
				dir = 1
			}
			if dir < 0 {
				continue
			}
			for vc := 1; vc < g.VCs; vc++ {
				if cid, ok := g.Link(at, d, dir, vc); ok {
					out = append(out, cid)
				}
			}
		}
		// Escape candidate: the dimension-order hop on VC 0.
		for d := range g.Dims {
			if ca[d] == cd[d] {
				continue
			}
			dir := 0
			if ca[d] > cd[d] {
				dir = 1
			}
			if cid, ok := g.Link(at, d, dir, 0); ok {
				out = append(out, cid)
			}
			break
		}
		return out
	}
	return Algorithm{Name: fmt.Sprintf("duato.%s", g.Name()), Net: g.Network, Route: route}
}

// Spec builds a simulator message spec routed by the algorithm.
func (a Algorithm) Spec(src, dst topology.NodeID, length, injectAt int) sim.MessageSpec {
	return sim.MessageSpec{
		Src: src, Dst: dst, Length: length,
		Route:    a.Route,
		InjectAt: injectAt,
		Label:    fmt.Sprintf("%s:%d->%d", a.Name, src, dst),
	}
}
