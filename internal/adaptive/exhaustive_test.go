package adaptive

import (
	"testing"

	"repro/internal/mcheck"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Exhaustive verification of the adaptive algorithms on a 2x2 mesh with
// four corner-to-opposite-corner messages, under full adversarial
// nondeterminism including adaptive candidate selection: fully adaptive
// minimal routing with one virtual channel admits a reachable deadlock,
// while Duato's escape-channel protocol and the west-first turn model are
// verified deadlock-free over their entire state spaces.
func TestExhaustiveAdaptiveVerification(t *testing.T) {
	build := func(g *topology.Grid, alg Algorithm, length int) sim.Scenario {
		sc := sim.Scenario{Name: alg.Name, Net: g.Network, Cfg: sim.Config{SameCycleHandoff: true}}
		corners := [][2][2]int{
			{{0, 0}, {1, 1}}, {{1, 1}, {0, 0}}, {{0, 1}, {1, 0}}, {{1, 0}, {0, 1}},
		}
		for _, c := range corners {
			sc.Msgs = append(sc.Msgs, alg.Spec(g.NodeAt(c[0][:]), g.NodeAt(c[1][:]), length, 0))
		}
		return sc
	}
	g1 := topology.NewMesh([]int{2, 2}, 1)
	fa := FullyAdaptiveMinimal(g1)
	res := mcheck.Search(build(g1, fa, 3), mcheck.SearchOptions{MaxStates: 20_000_000})
	if res.Verdict != mcheck.VerdictDeadlock {
		t.Fatalf("fully adaptive 2x2 (1 VC): %v; want deadlock", res.Verdict)
	}

	g3 := topology.NewMesh([]int{2, 2}, 1)
	wf := WestFirst(g3)
	res = mcheck.Search(build(g3, wf, 3), mcheck.SearchOptions{MaxStates: 20_000_000})
	if res.Verdict != mcheck.VerdictNoDeadlock {
		t.Fatalf("west-first 2x2: %v; want no deadlock", res.Verdict)
	}

	if testing.Short() {
		t.Skip("Duato exhaustive verification explores ~430k states")
	}
	g2 := topology.NewMesh([]int{2, 2}, 2)
	du := DuatoMesh(g2)
	res = mcheck.Search(build(g2, du, 3), mcheck.SearchOptions{MaxStates: 50_000_000})
	if res.Verdict != mcheck.VerdictNoDeadlock {
		t.Fatalf("duato 2x2: %v; want no deadlock", res.Verdict)
	}
}
