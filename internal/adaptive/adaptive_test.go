package adaptive

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// stress loads an algorithm with a random burst of messages and runs to
// quiescence.
func stress(t *testing.T, net *topology.Network, alg Algorithm, seed int64, msgs int) sim.Outcome {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := sim.New(net, sim.Config{})
	n := net.NumNodes()
	for i := 0; i < msgs; i++ {
		src := topology.NodeID(rng.Intn(n))
		dst := topology.NodeID(rng.Intn(n))
		if src == dst {
			continue
		}
		s.MustAdd(alg.Spec(src, dst, 4+rng.Intn(8), rng.Intn(20)))
	}
	out := s.Run(200_000)
	if out.Result == sim.ResultTimeout {
		t.Fatalf("seed %d: timeout", seed)
	}
	return out
}

func TestAdaptiveMessageDelivers(t *testing.T) {
	g := topology.NewMesh([]int{4, 4}, 1)
	alg := FullyAdaptiveMinimal(g)
	s := sim.New(g.Network, sim.Config{})
	src := g.NodeAt([]int{0, 0})
	dst := g.NodeAt([]int{3, 3})
	id := s.MustAdd(alg.Spec(src, dst, 5, 0))
	out := s.Run(1000)
	if out.Result != sim.ResultDelivered {
		t.Fatalf("result = %v", out.Result)
	}
	mv := s.Message(id)
	// The materialized path must be minimal (6 hops) and contiguous.
	if len(mv.Path) != 6 {
		t.Fatalf("path length = %d; want 6", len(mv.Path))
	}
	if !g.Network.IsPath(src, dst, mv.Path) {
		t.Fatalf("materialized path not contiguous: %v", mv.Path)
	}
	// Latency = hops + flits - 1.
	if lat := mv.DeliveredAt - mv.InjectedAt + 1; lat != 6+5-1+1 {
		t.Fatalf("latency = %d", lat)
	}
}

func TestAdaptiveDodgesBlockedChannel(t *testing.T) {
	// A long oblivious message camps on one of the two minimal first hops;
	// the adaptive message takes the other and is not delayed.
	g := topology.NewMesh([]int{2, 2}, 1)
	alg := FullyAdaptiveMinimal(g)
	s := sim.New(g.Network, sim.Config{})
	n00 := g.NodeAt([]int{0, 0})
	n01 := g.NodeAt([]int{0, 1})
	n11 := g.NodeAt([]int{1, 1})
	right, _ := g.Link(n00, 1, 0, 0) // (0,0) -> (0,1)
	blocker := s.MustAdd(sim.MessageSpec{
		Src: n00, Dst: n01, Length: 50,
		Path: []topology.ChannelID{right},
	})
	msg := s.MustAdd(alg.Spec(n00, n11, 2, 1))
	out := s.Run(1000)
	if out.Result != sim.ResultDelivered {
		t.Fatalf("result = %v", out.Result)
	}
	mv := s.Message(msg)
	if mv.Path[0] == right {
		t.Fatal("adaptive message should have dodged the blocked channel")
	}
	if mv.DeliveredAt > 10 {
		t.Fatalf("adaptive message was delayed until cycle %d", mv.DeliveredAt)
	}
	_ = blocker
}

// Fully adaptive minimal routing with one virtual channel deadlocks under
// bursty load (the motivation for escape channels); seed 1 is a pinned
// witness on the 4x4 mesh.
func TestFullyAdaptiveMeshDeadlocks(t *testing.T) {
	g := topology.NewMesh([]int{4, 4}, 1)
	alg := FullyAdaptiveMinimal(g)
	out := stress(t, g.Network, alg, 1, 60)
	if out.Result != sim.ResultDeadlock {
		t.Fatalf("pinned seed no longer deadlocks: %v", out.Result)
	}
	if len(out.Undelivered) == 0 {
		t.Fatal("deadlock without undelivered messages")
	}
}

// The same bursty loads never deadlock Duato's protocol (escape channels
// on VC0) or the west-first turn model.
func TestDuatoAndWestFirstSurviveStress(t *testing.T) {
	duatoGrid := topology.NewMesh([]int{4, 4}, 2)
	duato := DuatoMesh(duatoGrid)
	wfGrid := topology.NewMesh([]int{4, 4}, 1)
	wf := WestFirst(wfGrid)
	seeds := 20
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		if out := stress(t, duatoGrid.Network, duato, seed, 60); out.Result != sim.ResultDelivered {
			t.Fatalf("duato seed %d: %v", seed, out.Result)
		}
		if out := stress(t, wfGrid.Network, wf, seed, 60); out.Result != sim.ResultDelivered {
			t.Fatalf("west-first seed %d: %v", seed, out.Result)
		}
	}
}

func TestWestFirstRoutesWestAlone(t *testing.T) {
	g := topology.NewMesh([]int{3, 3}, 1)
	alg := WestFirst(g)
	at := g.NodeAt([]int{0, 2})
	dst := g.NodeAt([]int{2, 0})
	cands := alg.Route(at, topology.None, dst)
	if len(cands) != 1 {
		t.Fatalf("westward candidates = %v; want exactly the west hop", cands)
	}
	if c := g.Channel(cands[0]); g.Coords(c.Dst)[1] != 1 {
		t.Fatalf("candidate goes to %v", g.Coords(c.Dst))
	}
	// After the west phase: adaptive among east/vertical.
	at2 := g.NodeAt([]int{0, 0})
	dst2 := g.NodeAt([]int{2, 2})
	if cands := alg.Route(at2, topology.None, dst2); len(cands) != 2 {
		t.Fatalf("adaptive candidates = %v; want 2", cands)
	}
}

func TestDuatoAlwaysOffersEscape(t *testing.T) {
	g := topology.NewMesh([]int{4, 4}, 2)
	alg := DuatoMesh(g)
	// From any node to any other, one candidate must be the VC0
	// dimension-order hop.
	for s := 0; s < g.NumNodes(); s++ {
		for d := 0; d < g.NumNodes(); d++ {
			if s == d {
				continue
			}
			cands := alg.Route(topology.NodeID(s), topology.None, topology.NodeID(d))
			if len(cands) == 0 {
				t.Fatalf("no candidates %d -> %d", s, d)
			}
			hasEscape := false
			for _, c := range cands {
				if g.Channel(c).VC == 0 {
					hasEscape = true
				}
			}
			if !hasEscape {
				t.Fatalf("no escape candidate %d -> %d: %v", s, d, cands)
			}
		}
	}
}

func TestFullyAdaptiveTies(t *testing.T) {
	// On a torus ring with an even radix, antipodal destinations admit
	// both directions.
	g := topology.NewTorus([]int{4}, 1)
	alg := FullyAdaptiveMinimal(g)
	cands := alg.Route(0, topology.None, 2)
	if len(cands) != 2 {
		t.Fatalf("antipodal candidates = %v; want both directions", cands)
	}
}

func TestConstructorsValidate(t *testing.T) {
	tor := topology.NewTorus([]int{4, 4}, 1)
	for _, fn := range []func(){
		func() { WestFirst(tor) },
		func() { DuatoMesh(tor) },
		func() { DuatoMesh(topology.NewMesh([]int{3, 3}, 1)) },
		func() { WestFirst(topology.NewMesh([]int{3, 3, 3}, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAdaptiveSpecValidation(t *testing.T) {
	g := topology.NewMesh([]int{3, 3}, 1)
	alg := FullyAdaptiveMinimal(g)
	s := sim.New(g.Network, sim.Config{})
	spec := alg.Spec(0, 4, 3, 0)
	spec.Path = []topology.ChannelID{0} // both route and path: invalid
	if _, err := s.Add(spec); err == nil {
		t.Fatal("spec with both Path and Route should be rejected")
	}
}
