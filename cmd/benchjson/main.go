// Command benchjson runs the repository's headline benchmarks (one per
// experiment E1-E7, plus the encoder and allocation microbenches) through
// testing.Benchmark and writes the results as BENCH_mcheck.json. The JSON
// is byte-stable: fixed entry order, fixed field order, integral values —
// only the measured numbers change between runs, so diffs of the artifact
// read as perf deltas. Every benchmark's verdict is asserted before it is
// timed; a wrong verdict (or a panic) exits nonzero, which is what the CI
// bench job keys off.
//
//	benchjson            # writes ./BENCH_mcheck.json
//	benchjson -o -       # writes to stdout
//	benchjson -quick     # ~10x faster, noisier numbers
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/cli"
	"repro/internal/mcheck"
	"repro/internal/obsv/manifest"
	"repro/internal/obsv/serve"
	"repro/internal/obsv/telemetry"
	"repro/internal/papernets"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

type entry struct {
	Name         string `json:"name"`
	NsPerOp      int64  `json:"ns_per_op"`
	AllocsPerOp  int64  `json:"allocs_per_op"`
	BytesPerOp   int64  `json:"bytes_per_op"`
	States       int    `json:"states,omitempty"`
	StatesPerSec int64  `json:"states_per_sec,omitempty"`
	Verdict      string `json:"verdict,omitempty"`
	Reduction    string `json:"reduction,omitempty"`
	StatesPruned int    `json:"states_pruned,omitempty"`
	// Visited-set backend accounting, recorded for non-default backends.
	// Spill bytes are deterministic (the merge inserts states in a fixed
	// order), so the column diffs clean like the state counts do.
	VisitedBackend string `json:"visited_backend,omitempty"`
	SpillBytes     int64  `json:"spill_bytes,omitempty"`
}

type report struct {
	GoMaxProcs int     `json:"go_max_procs"`
	Workers    int     `json:"search_workers"`
	Entries    []entry `json:"benchmarks"`
}

var (
	quick     = flag.Bool("quick", false, "run each benchmark for ~0.1s instead of ~1s")
	reduction = flag.String("reduction", "all", "reduction mode for the *_Reduced rows (none skips them)")
	obsvF     = cli.RegisterObsvFlags()
	obs       *cli.Observer
)

func bench(f func(b *testing.B)) testing.BenchmarkResult {
	return testing.Benchmark(f)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

// searchEntry times an exhaustive search, asserting its verdict first and
// deriving states/sec from the per-op time and the (deterministic) state
// count.
func searchEntry(name string, sc sim.Scenario, opts mcheck.SearchOptions, want mcheck.Verdict) entry {
	// Only the verdict probe reports through the observability sinks; the
	// timed loop below runs with the caller's exact options so tracing or
	// serving never perturbs the measured numbers.
	probeOpts := opts
	probeOpts.Tracer = obs.Tracer
	probeOpts.Metrics = obs.Metrics
	probeOpts.Progress = obs.SearchProgress(name)
	probe := mcheck.Search(sc, probeOpts)
	if probe.Verdict != want {
		fail("%s: verdict %v; want %v", name, probe.Verdict, want)
	}
	r := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mcheck.Search(sc, opts)
		}
	})
	e := entry{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		States:      probe.States,
		Verdict:     probe.Verdict.String(),
	}
	if probe.Reduction != mcheck.RedNone {
		e.Reduction = probe.Reduction.String()
		e.StatesPruned = probe.StatesPruned
	}
	if v := probe.Visited; v.Backend != "" && v.Backend != "mem" {
		e.VisitedBackend = v.Backend
		e.SpillBytes = v.SpillBytes
	}
	if e.NsPerOp > 0 {
		e.StatesPerSec = int64(float64(probe.States) / (float64(e.NsPerOp) / 1e9))
	}
	return e
}

// livenessEntry is searchEntry for the liveness engine.
func livenessEntry(name string, sc sim.Scenario, opts mcheck.SearchOptions, want mcheck.Verdict) entry {
	probeOpts := opts
	probeOpts.Tracer = obs.Tracer
	probeOpts.Metrics = obs.Metrics
	probeOpts.Progress = obs.SearchProgress(name)
	probe := mcheck.SearchLiveness(sc, probeOpts)
	if probe.Verdict != want {
		fail("%s: verdict %v; want %v", name, probe.Verdict, want)
	}
	r := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mcheck.SearchLiveness(sc, opts)
		}
	})
	e := entry{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		States:      probe.States,
		Verdict:     probe.Verdict.String(),
	}
	if e.NsPerOp > 0 {
		e.StatesPerSec = int64(float64(probe.States) / (float64(e.NsPerOp) / 1e9))
	}
	return e
}

func plainEntry(name string, f func(b *testing.B)) entry {
	r := bench(f)
	return entry{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func main() {
	testing.Init() // registers test.benchtime so quick mode can shrink it
	out := flag.String("o", "BENCH_mcheck.json", "output path, or - for stdout")
	flag.Parse()
	if *quick {
		if err := flag.Set("test.benchtime", "100ms"); err != nil {
			fail("set benchtime: %v", err)
		}
	}

	var err error
	obs, err = obsvF.Open("benchjson", nil)
	if err != nil {
		fail("%v", err)
	}

	rep := report{GoMaxProcs: runtime.GOMAXPROCS(0), Workers: runtime.GOMAXPROCS(0)}
	add := func(e entry) {
		rep.Entries = append(rep.Entries, e)
		obs.RecordRun(manifest.Run{
			Name: e.Name, Verdict: e.Verdict,
			States: e.States, StatesPerSec: e.StatesPerSec,
			NsPerOp: e.NsPerOp, AllocsPerOp: e.AllocsPerOp, BytesPerOp: e.BytesPerOp,
			Reduction: e.Reduction, StatesPruned: e.StatesPruned,
			VisitedBackend: e.VisitedBackend, SpillBytes: e.SpillBytes,
		})
		obs.Publish(serve.Snapshot{Source: "run", Name: e.Name, States: e.States, StatesPerSec: e.StatesPerSec})
		fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %10d allocs/op", e.Name, e.NsPerOp, e.AllocsPerOp)
		if e.StatesPerSec > 0 {
			fmt.Fprintf(os.Stderr, " %10d states/sec", e.StatesPerSec)
		}
		fmt.Fprintln(os.Stderr)
	}

	// E1: Theorem 1 — Figure 1 exhaustive search (the headline workload).
	add(searchEntry("E1_Figure1_Search", papernets.Figure1().Scenario,
		mcheck.SearchOptions{}, mcheck.VerdictNoDeadlock))
	// E2: property checkers over the classic algorithm suite.
	add(plainEntry("E2_PropertyChecks", func(b *testing.B) {
		algs := []routing.Algorithm{
			routing.DimensionOrder(topology.NewMesh([]int{4, 4}, 1)),
			routing.ECube(topology.NewHypercube(4)),
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, alg := range algs {
				if !routing.CheckAll(alg).SuffixClosed {
					fail("E2: %s not suffix-closed", alg.Name())
				}
			}
		}
	}))
	// E3: Section 6 skew variant of the Figure 1 search (deadlock at
	// budget 1) — exercises freeze enumeration.
	add(searchEntry("E3_Figure1_Skew1", papernets.Figure1().Scenario,
		mcheck.SearchOptions{StallBudget: 1, FreezeInTransitOnly: true}, mcheck.VerdictDeadlock))
	// E4: Theorem 4 — Figure 2 two-sharer deadlock search.
	add(searchEntry("E4_Figure2_Search", papernets.Figure2().Scenario,
		mcheck.SearchOptions{}, mcheck.VerdictDeadlock))
	// E5: Theorem 5 — the six Figure 3 searches, reported as one op. The
	// stall-budget-0 verdicts below are the recorded single-instance ground
	// truth: (a)-(d) need adversarial skew or interposed copies to deadlock
	// (cmd/repro's E5 exercises those variants via the static analyzer),
	// while (e) and (f) deadlock outright.
	e5Deadlocks := map[byte]bool{'e': true, 'f': true}
	var figs []sim.Scenario
	e5States := 0
	for l := byte('a'); l <= 'f'; l++ {
		sc := papernets.Figure3(l).Scenario
		want := mcheck.VerdictNoDeadlock
		if e5Deadlocks[l] {
			want = mcheck.VerdictDeadlock
		}
		res := mcheck.Search(sc, mcheck.SearchOptions{})
		if res.Verdict != want {
			fail("E5: figure3%c verdict %v; want %v at stall budget 0", l, res.Verdict, want)
		}
		figs = append(figs, sc)
		e5States += res.States
	}
	e5 := plainEntry("E5_Figure3_SearchAll", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, sc := range figs {
				mcheck.Search(sc, mcheck.SearchOptions{})
			}
		}
	})
	e5.States = e5States
	if e5.NsPerOp > 0 {
		e5.StatesPerSec = int64(float64(e5States) / (float64(e5.NsPerOp) / 1e9))
	}
	add(e5)
	// E6: Gen(2) at its minimal deadlocking stall budget.
	add(searchEntry("E6_Gen2_Stall2", papernets.GenK(2).Scenario,
		mcheck.SearchOptions{StallBudget: 2, FreezeInTransitOnly: true}, mcheck.VerdictDeadlock))
	// E7: raw simulator throughput (no search), measured the way the search
	// engine and the load sweeps actually run it — a pooled instance
	// recycled via CopyFrom, so steady-state stepping is what gets timed.
	// This row must stay at 0 allocs/op: the whole hot path lives on the
	// simulator's scratch arenas.
	add(plainEntry("E7_SimThroughput", func(b *testing.B) {
		g := topology.NewMesh([]int{16, 16}, 1)
		alg := routing.DimensionOrder(g)
		src, dst := g.NodeAt([]int{0, 0}), g.NodeAt([]int{15, 15})
		proto := sim.New(g.Network, sim.Config{})
		proto.MustAdd(sim.MessageSpec{Src: src, Dst: dst, Length: 64, Path: alg.Path(src, dst)})
		s := sim.New(g.Network, sim.Config{})
		s.CopyFrom(proto) // warm the pooled instance before timing
		if out := s.Run(10_000); out.Result != sim.ResultDelivered {
			fail("E7: %v", out.Result)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.CopyFrom(proto)
			if out := s.Run(10_000); out.Result != sim.ResultDelivered {
				fail("E7: %v", out.Result)
			}
		}
	}))
	// E7 with the telemetry plane attached at the default stride: the
	// sampled path must also stay at 0 allocs/op, and the ns/op delta
	// against the plain E7 row is the telemetry overhead the CI benchdiff
	// gate watches.
	add(plainEntry("E7_SimThroughput_Telemetry", func(b *testing.B) {
		g := topology.NewMesh([]int{16, 16}, 1)
		alg := routing.DimensionOrder(g)
		src, dst := g.NodeAt([]int{0, 0}), g.NodeAt([]int{15, 15})
		proto := sim.New(g.Network, sim.Config{})
		proto.MustAdd(sim.MessageSpec{Src: src, Dst: dst, Length: 64, Path: alg.Path(src, dst)})
		s := sim.New(g.Network, sim.Config{})
		s.SetTelemetry(telemetry.NewCollector(g.Network.NumChannels(), telemetry.Config{}))
		s.CopyFrom(proto)
		if out := s.Run(10_000); out.Result != sim.ResultDelivered {
			fail("E7_Telemetry: %v", out.Result)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.CopyFrom(proto)
			if out := s.Run(10_000); out.Result != sim.ResultDelivered {
				fail("E7_Telemetry: %v", out.Result)
			}
		}
	}))
	// E8: the liveness engine over the same headline workload as E1 — the
	// DFS with local-deadlock checks and lasso detection, priced against
	// the plain BFS row above.
	add(livenessEntry("E8_LivenessSearch", papernets.Figure1().Scenario,
		mcheck.SearchOptions{}, mcheck.VerdictNoDeadlock))
	// E10: the out-of-core path — the E1 search through the spill backend
	// under a deliberately tiny resident budget, so every level runs the
	// compressed-frontier batch pipeline and the visited set cycles through
	// sorted runs on disk. The verdict and state count must match E1
	// exactly (the backend-parity contract); the ns/op delta against E1 is
	// the price of bounded memory.
	add(searchEntry("E10_SearchOutOfCore", papernets.Figure1().Scenario,
		mcheck.SearchOptions{Visited: mcheck.VisitedConfig{
			Backend:   mcheck.VisitedSpill,
			MemBudget: 64 << 10,
		}}, mcheck.VerdictNoDeadlock))
	// E11: the long-horizon telemetry campaign — one collector fed for the
	// whole benchmark on a monotone cycle clock, with adaptive stride and
	// a delta-compressed window attached. One op is one closed frame:
	// FrameEvery samples filled with a drifting hot-set (the window's
	// worst common case: mostly-small deltas with occasional channel-set
	// churn), the adapt step, the frame close, and the window append —
	// cycling through whole-block evictions once warm. The row prices the
	// long-horizon plane itself and must stay at 0 allocs/op.
	add(plainEntry("E11_TelemetryLongHorizon", func(b *testing.B) {
		const (
			channels = 1024 // 16x16 mesh scale
			perFrame = 4
			hotSet   = 8
		)
		col := telemetry.NewCollector(channels, telemetry.Config{
			Stride: 4, FrameEvery: perFrame, Ring: 8,
			Adaptive: true, MaxStride: 32, WindowBytes: 8 << 10,
		})
		cycle, flits := 0, int64(0)
		frame := func(i int) {
			for s := 0; s < perFrame; s++ {
				busy, occ, _ := col.Accum()
				for h := 0; h < hotSet; h++ {
					c := (i*7 + h*131) % channels
					busy[c]++
					occ[c] += 3
				}
				flits += 16
				cycle += col.CurrentStride()
				col.FinishSample(cycle, flits, hotSet)
			}
		}
		for i := 0; i < 400; i++ { // warm past the first block evictions
			frame(i)
		}
		if col.Window().Stats().Dropped == 0 {
			fail("E11: window never evicted during warmup")
		}
		if col.CurrentStride() <= col.Stride() {
			fail("E11: stride never adapted during warmup")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frame(i)
		}
	}))
	// Encoder microbench: EncodeTo on a mid-flight state.
	add(plainEntry("EncodeTo", func(b *testing.B) {
		s := papernets.Figure1().Scenario.NewSim()
		for i := 0; i < 4; i++ {
			s.Step()
		}
		buf := make([]byte, 0, 256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = buf[:0]
			s.EncodeTo(&buf)
		}
	}))

	// Loadtest: one open-loop saturation point (4x4 mesh, DOR, uniform
	// Bernoulli arrivals below saturation) — the cmd/loadtest unit of work,
	// priced so sweep-cost regressions show up next to the search rows.
	loadPoint := func() traffic.Load {
		g := topology.NewMesh([]int{4, 4}, 1)
		return traffic.Load{
			Alg: routing.DimensionOrder(g), Pattern: traffic.Uniform(g.Network.NumNodes()),
			Arrivals: traffic.Bernoulli(0.10), Length: 8,
			Warmup: 200, Measure: 500, Drain: 5000, Seed: 1,
		}
	}
	if r, err := loadPoint().Run(); err != nil || r.Deadlocked || r.Delivered == 0 {
		fail("Loadtest: probe run delivered=%d deadlocked=%v err=%v", r.Delivered, r.Deadlocked, err)
	}
	add(plainEntry("Loadtest_Saturation", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := loadPoint().Run(); err != nil {
				fail("Loadtest: %v", err)
			}
		}
	}))

	// Unreduced Gen(4) at its minimal deadlocking budget: the baseline the
	// reduction-ratio guard (reduction_guard_test.go) divides against.
	gen4 := papernets.GenK(4).Scenario
	gen4Opts := mcheck.SearchOptions{StallBudget: 4, FreezeInTransitOnly: true}
	add(searchEntry("Gen4_Stall4", gen4, gen4Opts, mcheck.VerdictDeadlock))

	// Reduced variants: the same searches under the state-space
	// reductions (-reduction selects the mode, "none" skips these rows),
	// plus the larger Gen(k) instances the reductions make routine.
	// Unreduced rows keep their historical names, so existing baselines
	// stay directly comparable.
	red, err := mcheck.ParseReduction(*reduction)
	if err != nil {
		fail("%v", err)
	}
	if red != mcheck.RedNone {
		withRed := func(o mcheck.SearchOptions) mcheck.SearchOptions {
			o.Reduction = red
			return o
		}
		add(searchEntry("E1_Figure1_Search_Reduced", papernets.Figure1().Scenario,
			withRed(mcheck.SearchOptions{}), mcheck.VerdictNoDeadlock))
		add(searchEntry("E3_Figure1_Skew1_Reduced", papernets.Figure1().Scenario,
			withRed(mcheck.SearchOptions{StallBudget: 1, FreezeInTransitOnly: true}), mcheck.VerdictDeadlock))
		e5rStates, e5rPruned := 0, 0
		for _, sc := range figs {
			res := mcheck.Search(sc, withRed(mcheck.SearchOptions{}))
			e5rStates += res.States
			e5rPruned += res.StatesPruned
		}
		e5r := plainEntry("E5_Figure3_SearchAll_Reduced", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, sc := range figs {
					mcheck.Search(sc, withRed(mcheck.SearchOptions{}))
				}
			}
		})
		e5r.States = e5rStates
		e5r.Reduction = red.String()
		e5r.StatesPruned = e5rPruned
		if e5r.NsPerOp > 0 {
			e5r.StatesPerSec = int64(float64(e5rStates) / (float64(e5r.NsPerOp) / 1e9))
		}
		add(e5r)
		add(searchEntry("E6_Gen2_Stall2_Reduced", papernets.GenK(2).Scenario,
			withRed(mcheck.SearchOptions{StallBudget: 2, FreezeInTransitOnly: true}), mcheck.VerdictDeadlock))
		add(searchEntry("Gen4_Stall4_Reduced", gen4, withRed(gen4Opts), mcheck.VerdictDeadlock))
		add(searchEntry("Gen5_Stall5_Reduced", papernets.GenK(5).Scenario,
			withRed(mcheck.SearchOptions{StallBudget: 5, FreezeInTransitOnly: true}), mcheck.VerdictDeadlock))
	}

	if err := obs.Close(); err != nil {
		fail("%v", err)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail("marshal: %v", err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fail("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
