// Command deadlock runs the full deadlock-freedom analysis of the library
// on a routing algorithm: properties, channel dependency graph, cycle
// decomposition into candidate Definition 6 configurations, Section 5
// classification, and optional exhaustive verification with the
// state-space model checker. On a paper network -verify searches the
// paper's adversarial message set; on any other network it cross-checks
// every decomposed configuration's single-instance scenario instead.
//
// With -liveness (paper networks only) the liveness engine additionally
// decides local deadlock and livelock: a Definition 6 cycle that kills only
// a subnetwork is reported with its exact blocked channel set, and a
// stale-selection livelock with a replayable stem+loop lasso witness.
//
// Examples:
//
//	deadlock -paper figure1 -verify
//	deadlock -paper gen3 -verify -stall 3
//	deadlock -paper figure2 -liveness
//	deadlock -topo uring -dims 4 -alg bfs -verify
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/mcheck"
	"repro/internal/papernets"
	"repro/internal/routing"
)

func main() {
	var (
		paper   = flag.String("paper", "", "paper network: figure1, figure2, figure3a..f, gen<k>")
		topo    = flag.String("topo", "mesh", "topology (when -paper is empty)")
		dims    = flag.String("dims", "4x4", "dimensions")
		vcs     = flag.Int("vcs", 1, "virtual channels per link")
		algf    = flag.String("alg", "dor", "routing algorithm")
		verify  = flag.Bool("verify", false, "verify the verdict with the exhaustive model checker")
		livens  = flag.Bool("liveness", false, "also run the liveness engine: local-deadlock and livelock search (requires -paper)")
		stall   = flag.Int("stall", 0, "adversarial stall budget for -verify (Section 6 clock-skew model)")
		workers = flag.Int("workers", 0, "search worker goroutines (0 = GOMAXPROCS; the verdict is identical for every value)")
	)
	obsvF := cli.RegisterObsvFlags()
	redF := cli.RegisterReductionFlag()
	visF := cli.RegisterVisitedFlags()
	flag.Parse()
	red := cli.Reduction(*redF)
	visited := visF.Config()
	if *livens && *paper == "" {
		log.Fatal("deadlock: -liveness needs -paper (a concrete scenario for the liveness engine to search)")
	}

	var alg routing.Algorithm
	var pn *papernets.Net
	if *paper != "" {
		var err error
		pn, err = cli.PaperNet(*paper)
		if err != nil {
			log.Fatal(err)
		}
		alg = pn.Alg
	} else {
		var err error
		alg, _, err = cli.Build(*topo, *algf, *dims, *vcs)
		if err != nil {
			log.Fatal(err)
		}
	}

	obsName := *paper
	if obsName == "" {
		obsName = *topo + "/" + *algf
	}
	obs, err := obsvF.Open("deadlock "+obsName, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer obs.Close()

	searchOpts := mcheck.SearchOptions{
		StallBudget:         *stall,
		FreezeInTransitOnly: true,
		Parallelism:         *workers,
		Reduction:           red,
		Visited:             visited,
		Tracer:              obs.Tracer,
		Progress:            obs.SearchProgress(obsName),
		ProgressEvery:       obs.ProgressInterval(),
		Metrics:             obs.Metrics,
	}
	copts := core.Options{}
	if *verify && pn == nil {
		// Without a paper message set, verify each decomposed
		// configuration's own scenario through the analyzer. Complex
		// nonminimal algorithms can decompose into many configurations,
		// so cap each search to keep the command interactive; a capped
		// run reports verdict "exhausted" rather than a certificate.
		cfgOpts := searchOpts
		cfgOpts.MaxStates = 250_000
		copts.Search = &cfgOpts
	}
	rep := core.Analyze(alg, copts)
	fmt.Printf("algorithm:  %s\n", rep.Algorithm)
	fmt.Printf("properties: %s\n", rep.Properties)
	fmt.Printf("CDG:        %d dependencies, acyclic=%v\n", rep.CDGEdges, rep.Acyclic)
	if rep.Screen != "" {
		fmt.Printf("screen:     %s (Corollaries 1-3)\n", rep.Screen)
	}
	for i, cyc := range rep.Cycles {
		fmt.Printf("cycle %d:    len %d, verdict %s, %d configuration(s)\n", i+1, len(cyc.Cycle), cyc.Verdict, len(cyc.Configs))
		for j, cfg := range cyc.Configs {
			fmt.Printf("  config %d: %s — %s\n", j+1, cfg.Verdict, cfg.Reason)
			for _, m := range cfg.Config.Members {
				fmt.Printf("    member %d -> %d: approach %d channels, arc %d channels\n",
					m.Src, m.Dst, len(m.Approach), len(m.Arc))
			}
			if cfg.Witness != nil {
				fmt.Printf("    witness: cs order %v, times %v\n", cfg.Witness.SharedOrder, cfg.Witness.Times)
			}
			if cfg.SearchResult != nil {
				fmt.Printf("    model checker: %s over %d states (%.0f states/sec, peak visited %d)\n",
					cfg.SearchResult.Verdict, cfg.SearchResult.States,
					cfg.SearchResult.StatesPerSec, cfg.SearchResult.PeakVisited)
			}
		}
	}
	fmt.Printf("verdict:    %s\n", rep.Verdict)
	fmt.Printf("reason:     %s\n", rep.Reason)

	if *verify && pn != nil {
		res := mcheck.Search(pn.Scenario, searchOpts)
		obs.PublishSearchDone(obsName, res)
		run := cli.SearchRun(obsName, pn.Scenario.Net, res)
		run.Scenario = pn.Scenario.Name
		obs.RecordRun(run)
		fmt.Printf("verify:     model checker says %s over %d states (stall budget %d)\n",
			res.Verdict, res.States, *stall)
		fmt.Printf("            %.0f states/sec, peak visited %d, %d worker(s), %s\n",
			res.StatesPerSec, res.PeakVisited, res.Workers, res.Elapsed.Round(time.Millisecond))
		v := res.Visited
		switch v.Backend {
		case "bitstate":
			fmt.Printf("            visited %s: %s resident, bloom FP rate %.4f (%d/%d probes rechecked exactly)\n",
				v.Backend, cli.FormatBytes(v.Bytes), v.BloomFPRate, v.BloomHits, v.BloomProbes)
		case "spill":
			fmt.Printf("            visited %s: %s resident, %s in %d run(s) on disk (%d compactions)\n",
				v.Backend, cli.FormatBytes(v.Bytes), cli.FormatBytes(v.SpillBytes), v.SpillRuns, v.Compactions)
		default:
			fmt.Printf("            visited %s: %s resident, peak shard %d entries\n",
				v.Backend, cli.FormatBytes(v.Bytes), v.PeakShardEntries)
		}
		if res.Reduction != mcheck.RedNone {
			fmt.Printf("            reduction %s: %d candidates pruned, %d sleep-set states, symmetry group %d\n",
				res.Reduction, res.StatesPruned, res.SleepSetHits, res.SymmetryGroup)
		}
		for _, w := range res.Warnings {
			fmt.Printf("            warning: %s\n", w)
		}
		if res.Verdict == mcheck.VerdictDeadlock {
			fmt.Printf("            deadlock cycle: %s\n", res.Deadlock)
			fmt.Println("            witness schedule:")
			for cyc, d := range res.Trace {
				if len(d.Activate) == 0 && len(d.Freeze) == 0 && len(d.Picks) == 0 && len(d.Masks) == 0 {
					continue
				}
				fmt.Printf("              cycle %2d:", cyc)
				if len(d.Activate) > 0 {
					fmt.Printf(" inject %v", d.Activate)
				}
				if len(d.Freeze) > 0 {
					fmt.Printf(" stall %v", d.Freeze)
				}
				for ch, id := range d.Picks {
					fmt.Printf(" grant c%d to m%d", ch, id)
				}
				for id, ch := range d.Masks {
					fmt.Printf(" m%d selects c%d", id, ch)
				}
				fmt.Println()
			}
		}
	}

	if *livens && pn != nil {
		res := mcheck.SearchLiveness(pn.Scenario, searchOpts)
		obs.PublishSearchDone(obsName+" liveness", res)
		run := cli.SearchRun(obsName+" liveness", pn.Scenario.Net, res)
		run.Scenario = pn.Scenario.Name
		obs.RecordRun(run)
		fmt.Printf("liveness:   %s over %d states (stall budget %d, %s)\n",
			res.Verdict, res.States, *stall, res.Elapsed.Round(time.Millisecond))
		for _, w := range res.Warnings {
			fmt.Printf("            warning: %s\n", w)
		}
		switch res.Verdict {
		case mcheck.VerdictLocalDeadlock:
			fmt.Printf("            local deadlock: %s\n", res.Local)
			fmt.Printf("            blocked subnetwork: channels %v are dead forever; messages %v still deliverable\n",
				res.Local.Blocked, res.Local.Live)
		case mcheck.VerdictDeadlock:
			if res.Deadlock != nil {
				fmt.Printf("            global deadlock: %s\n", res.Deadlock)
			}
		case mcheck.VerdictLivelock:
			l := res.Lasso
			fmt.Printf("            livelock lasso: stem %d decisions, loop %d decisions, starved messages %v\n",
				len(l.Stem), len(l.Loop), l.Starved)
			if err := mcheck.VerifyLasso(pn.Scenario, l); err != nil {
				fmt.Printf("            lasso verification FAILED: %v\n", err)
			} else {
				fmt.Println("            lasso verified: the loop reproduces its head and no starved message ever advances")
			}
		}
	}
}
