// Command wormsim runs a flit-level wormhole simulation of a synthetic
// workload on a standard topology and prints delivery statistics.
//
// Example:
//
//	wormsim -topo mesh -dims 8x8 -alg dor -pattern transpose -rate 0.1 \
//	        -length 8 -duration 500
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cli"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func main() {
	var (
		topo     = flag.String("topo", "mesh", "topology: mesh, torus, ring, uring, hypercube, star, complete")
		dims     = flag.String("dims", "4x4", "dimensions, e.g. 8x8 (grids) or 8 (others)")
		vcs      = flag.Int("vcs", 1, "virtual channels per link (grids)")
		alg      = flag.String("alg", "dor", "routing: dor, negfirst, dallyseitz, ecube, bfs, valiant, valiantsplit, hub, fulladaptive, westfirst, duato")
		pattern  = flag.String("pattern", "uniform", "traffic: uniform, transpose, bitrev, hotspot")
		rate     = flag.Float64("rate", 0.05, "per-node per-cycle injection probability")
		length   = flag.Int("length", 8, "message length in flits")
		duration = flag.Int("duration", 200, "injection window in cycles")
		seed     = flag.Int64("seed", 1, "workload seed")
		depth    = flag.Int("bufdepth", 1, "flit buffer depth per channel")
		maxCyc   = flag.Int("maxcycles", 1_000_000, "simulation cycle budget")
	)
	flag.Parse()

	if cli.AdaptiveNames[*alg] {
		runAdaptive(*topo, *alg, *dims, *vcs, *pattern, *rate, *length, *duration, *seed, *depth, *maxCyc)
		return
	}
	a, grid, err := cli.Build(*topo, *alg, *dims, *vcs)
	if err != nil {
		log.Fatal(err)
	}
	net := a.Network()
	var pat traffic.Pattern
	switch *pattern {
	case "uniform":
		pat = traffic.Uniform(net.NumNodes())
	case "transpose":
		if grid == nil {
			log.Fatal("wormsim: transpose needs a square 2-D mesh/torus")
		}
		pat = traffic.Transpose(grid)
	case "bitrev":
		pat = traffic.BitReversal(net.NumNodes())
	case "hotspot":
		pat = traffic.Hotspot(net.NumNodes(), 0, 0.3)
	default:
		log.Fatalf("wormsim: unknown pattern %q", *pattern)
	}

	w := traffic.Workload{Alg: a, Pattern: pat, Rate: *rate, Length: *length, Duration: *duration, Seed: *seed}
	stats, out, err := w.Run(sim.Config{BufferDepth: *depth}, *maxCyc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network:    %s (%d nodes, %d channels)\n", net.Name(), net.NumNodes(), net.NumChannels())
	fmt.Printf("routing:    %s\n", a.Name())
	fmt.Printf("outcome:    %s after %d cycles\n", out.Result, stats.Cycles)
	fmt.Printf("messages:   %d delivered of %d\n", stats.Delivered, stats.Messages)
	fmt.Printf("latency:    avg %.2f max %d cycles\n", stats.AvgLatency, stats.MaxLatency)
	fmt.Printf("throughput: %.3f flits/cycle\n", stats.Throughput)
	if out.Result == sim.ResultDeadlock {
		fmt.Printf("deadlocked messages: %v\n", out.Undelivered)
	}
}

// runAdaptive simulates a workload routed by an adaptive algorithm.
func runAdaptive(topo, alg, dims string, vcs int, pattern string, rate float64, length, duration int, seed int64, depth, maxCyc int) {
	a, grid, err := cli.BuildAdaptive(topo, alg, dims, vcs)
	if err != nil {
		log.Fatal(err)
	}
	var pat traffic.Pattern
	switch pattern {
	case "uniform":
		pat = traffic.Uniform(a.Net.NumNodes())
	case "transpose":
		pat = traffic.Transpose(grid)
	case "bitrev":
		pat = traffic.BitReversal(a.Net.NumNodes())
	case "hotspot":
		pat = traffic.Hotspot(a.Net.NumNodes(), 0, 0.3)
	default:
		log.Fatalf("wormsim: unknown pattern %q", pattern)
	}
	w := traffic.AdaptiveWorkload{Alg: a, Pattern: pat, Rate: rate, Length: length, Duration: duration, Seed: seed}
	stats, out, err := w.Run(sim.Config{BufferDepth: depth}, maxCyc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network:    %s (%d nodes, %d channels)\n", a.Net.Name(), a.Net.NumNodes(), a.Net.NumChannels())
	fmt.Printf("routing:    %s (adaptive)\n", a.Name)
	fmt.Printf("outcome:    %s after %d cycles\n", out.Result, stats.Cycles)
	fmt.Printf("messages:   %d delivered of %d\n", stats.Delivered, stats.Messages)
	fmt.Printf("latency:    avg %.2f max %d cycles\n", stats.AvgLatency, stats.MaxLatency)
	fmt.Printf("throughput: %.3f flits/cycle\n", stats.Throughput)
	if out.Result == sim.ResultDeadlock {
		fmt.Printf("deadlocked messages: %v\n", out.Undelivered)
	}
}
